// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON report, used by CI to archive benchmark results as artifacts so the
// perf trajectory of the repository is measurable across PRs.
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem | benchjson -o BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics maps unit → value and includes
// the standard ns/op, B/op, allocs/op plus any b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact written by CI.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   []Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			report.Results = append(report.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine handles the `go test -bench` result format:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op   0.5 custom-unit
//
// Non-benchmark lines (logs, PASS/ok trailers) report ok=false.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       strings.SplitN(fields[0], "-", 2)[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
