// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON report, used by CI to archive benchmark results as artifacts so the
// perf trajectory of the repository is measurable across PRs.
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem | benchjson -o BENCH_ci.json
//
// With -baseline and -gate it additionally compares selected metrics against
// a committed baseline report and exits nonzero on regression:
//
//	... | benchjson -o BENCH_pr4.json -baseline BENCH_pr4.json \
//	        -gate 'BenchmarkDecode:allocs/op,BenchmarkEncode:allocs/op'
//
// -ns-tolerance adds an opt-in time gate on top of the alloc gate: every
// benchmark present in both reports must keep its ns/op within the given
// percentage of the baseline (e.g. -ns-tolerance 25 allows +25%). Wall
// time is only comparable between like machines, so the flag is meant for
// a pinned-runner CI lane or local before/after runs, and the tolerance
// should absorb normal scheduler noise; allocs/op stays the exact,
// machine-independent gate.
//
// -rss-gate is an absolute ceiling, not a baseline comparison: every
// benchmark that reports a peak-rss-bytes metric (via b.ReportMetric, as
// BenchmarkRuntimeSample does) must stay under the given size, accepted
// in human form ("512MiB"). It exists so the resource-observability lane
// can fail a PR whose benchmark process outgrows the memory envelope the
// ROADMAP's large-world work is budgeted against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"spfail/internal/obs"
)

// Result is one benchmark line. Metrics maps unit → value and includes
// the standard ns/op, B/op, allocs/op plus any b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact written by CI.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline report to gate against (JSON from a previous run)")
	gate := flag.String("gate", "", "comma-separated Benchmark:metric pairs that must not regress above the baseline")
	nsTol := flag.Float64("ns-tolerance", 0, "percentage by which ns/op may exceed the baseline before failing (0 disables the time gate)")
	rssGate := flag.String("rss-gate", "", "absolute peak-rss-bytes ceiling (e.g. 512MiB) applied to every benchmark reporting that metric")
	flag.Parse()

	if *nsTol < 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -ns-tolerance must be >= 0")
		os.Exit(1)
	}
	var rssLimit int64
	if *rssGate != "" {
		var err error
		if rssLimit, err = obs.ParseBytes(*rssGate); err != nil || rssLimit <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -rss-gate %q\n", *rssGate)
			os.Exit(1)
		}
	}

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   []Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			report.Results = append(report.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	// Load the baseline before writing: -o and -baseline may name the same
	// file (regenerate the committed artifact while gating against it).
	var base Report
	if *gate != "" || *nsTol > 0 {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate and -ns-tolerance require -baseline")
			os.Exit(1)
		}
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline: %v\n", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	var failures []string
	if *gate != "" {
		failures = append(failures, checkGates(report, base, *gate)...)
	}
	if *nsTol > 0 {
		failures = append(failures, checkNsTolerance(report, base, *nsTol)...)
	}
	if rssLimit > 0 {
		failures = append(failures, checkRSSGate(report, rssLimit)...)
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// checkGates compares each "Benchmark:metric" pair in spec between the
// current and baseline reports. A gate fails when the current value exceeds
// the baseline, when the benchmark or metric is missing from the current
// report, or when the pair is malformed; a pair absent from the baseline is
// skipped (first run establishes it). Additionally, every benchmark present
// in the baseline must appear in the current run — a renamed or deleted
// benchmark silently dropping out of the suite would otherwise retire its
// gate along with it.
func checkGates(cur, base Report, spec string) []string {
	index := func(r Report) map[string]map[string]float64 {
		m := make(map[string]map[string]float64, len(r.Results))
		for _, res := range r.Results {
			m[res.Name] = res.Metrics
		}
		return m
	}
	curIdx, baseIdx := index(cur), index(base)
	var failures []string
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, metric, ok := strings.Cut(pair, ":")
		if !ok {
			failures = append(failures, fmt.Sprintf("malformed gate %q (want Benchmark:metric)", pair))
			continue
		}
		curVal, ok := curIdx[name][metric]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: %s missing from current run", name, metric))
			continue
		}
		baseVal, ok := baseIdx[name][metric]
		if !ok {
			continue // no baseline yet for this pair
		}
		if curVal > baseVal {
			failures = append(failures, fmt.Sprintf("%s: %s regressed %g → %g (baseline max %g)",
				name, metric, baseVal, curVal, baseVal))
		}
	}
	// Coverage check: the current run must include every baseline
	// benchmark, gated or not, so the suite cannot silently shrink.
	for _, res := range base.Results {
		if _, ok := curIdx[res.Name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current run", res.Name))
		}
	}
	return failures
}

// checkNsTolerance compares ns/op for every benchmark present in both
// reports and fails those whose current time exceeds the baseline by more
// than pct percent. Benchmarks absent from either side are skipped — the
// -gate coverage check is what polices suite shrinkage — as are baseline
// entries without an ns/op metric (a zero baseline would make any
// nonzero time a failure, which is noise, not signal).
func checkNsTolerance(cur, base Report, pct float64) []string {
	curNs := make(map[string]float64, len(cur.Results))
	for _, res := range cur.Results {
		if v, ok := res.Metrics["ns/op"]; ok {
			curNs[res.Name] = v
		}
	}
	var failures []string
	for _, res := range base.Results {
		baseVal, ok := res.Metrics["ns/op"]
		if !ok || baseVal <= 0 {
			continue
		}
		curVal, ok := curNs[res.Name]
		if !ok {
			continue
		}
		limit := baseVal * (1 + pct/100)
		if curVal > limit {
			failures = append(failures, fmt.Sprintf("%s: ns/op %g exceeds baseline %g by more than %g%% (limit %g)",
				res.Name, curVal, baseVal, pct, limit))
		}
	}
	return failures
}

// checkRSSGate fails every benchmark whose reported peak-rss-bytes
// metric meets or exceeds the absolute limit. Unlike the baseline gates
// this needs no prior report: the ceiling is the contract. At least one
// benchmark must report the metric — a suite that stops measuring RSS
// must not silently pass its RSS gate.
func checkRSSGate(cur Report, limit int64) []string {
	var failures []string
	seen := false
	for _, res := range cur.Results {
		v, ok := res.Metrics["peak-rss-bytes"]
		if !ok {
			continue
		}
		seen = true
		if v >= float64(limit) {
			failures = append(failures, fmt.Sprintf("%s: peak-rss-bytes %g exceeds ceiling %d", res.Name, v, limit))
		}
	}
	if !seen {
		failures = append(failures, "no benchmark reported peak-rss-bytes; -rss-gate has nothing to enforce")
	}
	return failures
}

// parseLine handles the `go test -bench` result format:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op   0.5 custom-unit
//
// Non-benchmark lines (logs, PASS/ok trailers) report ok=false.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       strings.SplitN(fields[0], "-", 2)[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
