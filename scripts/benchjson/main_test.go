package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSPFCheckHost-8   \t   1234\t    56789 ns/op\t  432 B/op\t  7 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkSPFCheckHost" || r.Iterations != 1234 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 56789 || r.Metrics["B/op"] != 432 || r.Metrics["allocs/op"] != 7 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkTable3Funnel-4 1 123 ns/op 0.47 refused-frac")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Metrics["refused-frac"] != 0.47 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func report(results ...Result) Report { return Report{Results: results} }

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, Iterations: 1, Metrics: metrics}
}

func TestCheckGatesPassAndFail(t *testing.T) {
	base := report(
		res("BenchmarkDecode", map[string]float64{"allocs/op": 0, "ns/op": 120}),
		res("BenchmarkEncode", map[string]float64{"allocs/op": 0}),
	)
	cur := report(
		res("BenchmarkDecode", map[string]float64{"allocs/op": 0, "ns/op": 500}),
		res("BenchmarkEncode", map[string]float64{"allocs/op": 2}),
	)
	spec := "BenchmarkDecode:allocs/op,BenchmarkEncode:allocs/op"
	failures := checkGates(cur, base, spec)
	if len(failures) != 1 {
		t.Fatalf("failures = %v, want exactly the encode regression", failures)
	}
	if got := failures[0]; !strings.Contains(got, "BenchmarkEncode") {
		t.Fatalf("failure = %q", got)
	}
	// ns/op is ungated: its 4× slowdown must not trip anything.
	if f := checkGates(cur, base, "BenchmarkDecode:allocs/op"); len(f) != 0 {
		t.Fatalf("ungated metric caused failures: %v", f)
	}
}

func TestCheckGatesMissingCurrentFails(t *testing.T) {
	base := report(res("BenchmarkDecode", map[string]float64{"allocs/op": 0}))
	cur := report(res("BenchmarkOther", map[string]float64{"allocs/op": 0}))
	// Two failures: the gated pair is missing, and the baseline benchmark
	// is absent from the current run entirely.
	if f := checkGates(cur, base, "BenchmarkDecode:allocs/op"); len(f) != 2 {
		t.Fatalf("missing benchmark should fail the gate, got %v", f)
	}
}

func TestCheckGatesBaselineCoverage(t *testing.T) {
	// A baseline benchmark missing from the current run fails the gate even
	// when no gate pair names it: deleting or renaming a benchmark must not
	// silently retire its gate.
	base := report(
		res("BenchmarkDecode", map[string]float64{"allocs/op": 0}),
		res("BenchmarkRetired", map[string]float64{"allocs/op": 3}),
	)
	cur := report(res("BenchmarkDecode", map[string]float64{"allocs/op": 0}))
	f := checkGates(cur, base, "BenchmarkDecode:allocs/op")
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkRetired") {
		t.Fatalf("ungated baseline benchmark missing from current should fail, got %v", f)
	}
	// A current run that covers the full baseline passes.
	if f := checkGates(base, base, "BenchmarkDecode:allocs/op"); len(f) != 0 {
		t.Fatalf("full coverage should pass, got %v", f)
	}
}

func TestCheckGatesMissingBaselineSkips(t *testing.T) {
	cur := report(res("BenchmarkNew", map[string]float64{"allocs/op": 9}))
	if f := checkGates(cur, report(), "BenchmarkNew:allocs/op"); len(f) != 0 {
		t.Fatalf("pair absent from baseline should be skipped, got %v", f)
	}
}

func TestCheckGatesMalformedSpec(t *testing.T) {
	cur := report(res("BenchmarkX", map[string]float64{"allocs/op": 0}))
	if f := checkGates(cur, cur, "BenchmarkX"); len(f) != 1 {
		t.Fatalf("malformed pair should fail, got %v", f)
	}
}

func TestCheckNsToleranceWithinBudget(t *testing.T) {
	base := report(res("BenchmarkDecode", map[string]float64{"ns/op": 100}))
	cur := report(res("BenchmarkDecode", map[string]float64{"ns/op": 120}))
	if f := checkNsTolerance(cur, base, 25); len(f) != 0 {
		t.Fatalf("+20%% within a 25%% tolerance should pass, got %v", f)
	}
	// Exactly at the limit passes: the gate is `>`, not `>=`.
	cur = report(res("BenchmarkDecode", map[string]float64{"ns/op": 125}))
	if f := checkNsTolerance(cur, base, 25); len(f) != 0 {
		t.Fatalf("exactly at the limit should pass, got %v", f)
	}
}

func TestCheckNsToleranceExceeded(t *testing.T) {
	base := report(
		res("BenchmarkDecode", map[string]float64{"ns/op": 100}),
		res("BenchmarkEncode", map[string]float64{"ns/op": 200}),
	)
	cur := report(
		res("BenchmarkDecode", map[string]float64{"ns/op": 140}),
		res("BenchmarkEncode", map[string]float64{"ns/op": 210}),
	)
	f := checkNsTolerance(cur, base, 25)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkDecode") {
		t.Fatalf("only the +40%% benchmark should fail a 25%% tolerance, got %v", f)
	}
	if !strings.Contains(f[0], "ns/op 140 exceeds baseline 100") {
		t.Fatalf("failure message should carry both values, got %q", f[0])
	}
}

func TestCheckNsToleranceSkipsUnmatched(t *testing.T) {
	// New benchmarks (no baseline), retired benchmarks (no current), and
	// entries without an ns/op metric are all skipped — coverage policing
	// belongs to checkGates.
	base := report(
		res("BenchmarkRetired", map[string]float64{"ns/op": 10}),
		res("BenchmarkAllocOnly", map[string]float64{"allocs/op": 0}),
		res("BenchmarkZeroBase", map[string]float64{"ns/op": 0}),
	)
	cur := report(
		res("BenchmarkNew", map[string]float64{"ns/op": 9999}),
		res("BenchmarkAllocOnly", map[string]float64{"allocs/op": 0, "ns/op": 50}),
		res("BenchmarkZeroBase", map[string]float64{"ns/op": 1}),
	)
	if f := checkNsTolerance(cur, base, 5); len(f) != 0 {
		t.Fatalf("unmatched benchmarks should be skipped, got %v", f)
	}
}

func TestCheckNsToleranceZeroTolerance(t *testing.T) {
	// pct 0 still means "no regression at all" when the caller invokes the
	// check directly; main() treats flag value 0 as disabled before calling.
	base := report(res("BenchmarkDecode", map[string]float64{"ns/op": 100}))
	cur := report(res("BenchmarkDecode", map[string]float64{"ns/op": 101}))
	if f := checkNsTolerance(cur, base, 0); len(f) != 1 {
		t.Fatalf("any slowdown should fail a 0%% tolerance, got %v", f)
	}
	if f := checkNsTolerance(base, base, 0); len(f) != 0 {
		t.Fatalf("identical reports should pass a 0%% tolerance, got %v", f)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \tspfail\t1.2s",
		"--- BENCH: BenchmarkX",
		"BenchmarkBroken notanumber",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q unexpectedly parsed", line)
		}
	}
}

func TestCheckRSSGate(t *testing.T) {
	cur := report(
		res("BenchmarkRuntimeSample", map[string]float64{"peak-rss-bytes": 64 << 20, "allocs/op": 0}),
		res("BenchmarkDecode", map[string]float64{"allocs/op": 0}),
	)
	if f := checkRSSGate(cur, 512<<20); len(f) != 0 {
		t.Fatalf("64MiB peak under a 512MiB ceiling failed: %v", f)
	}
	f := checkRSSGate(cur, 32<<20)
	if len(f) != 1 || !strings.Contains(f[0], "BenchmarkRuntimeSample") {
		t.Fatalf("64MiB peak over a 32MiB ceiling: failures = %v", f)
	}
	// A suite that stops reporting the metric must not pass vacuously.
	none := report(res("BenchmarkDecode", map[string]float64{"allocs/op": 0}))
	if f := checkRSSGate(none, 512<<20); len(f) != 1 {
		t.Fatalf("metric-free report should fail the gate, got %v", f)
	}
}
