package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSPFCheckHost-8   \t   1234\t    56789 ns/op\t  432 B/op\t  7 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkSPFCheckHost" || r.Iterations != 1234 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 56789 || r.Metrics["B/op"] != 432 || r.Metrics["allocs/op"] != 7 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkTable3Funnel-4 1 123 ns/op 0.47 refused-frac")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Metrics["refused-frac"] != 0.47 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \tspfail\t1.2s",
		"--- BENCH: BenchmarkX",
		"BenchmarkBroken notanumber",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q unexpectedly parsed", line)
		}
	}
}
