package geo

import (
	"net/netip"
	"testing"
)

func TestByTLDAndCode(t *testing.T) {
	if c, ok := ByTLD("za"); !ok || c.Name != "South Africa" {
		t.Errorf("ByTLD(za) = %+v, %v", c, ok)
	}
	if c, ok := ByTLD("uk"); !ok || c.Code != "gb" {
		t.Errorf("ByTLD(uk) = %+v, %v", c, ok)
	}
	if _, ok := ByTLD("zz"); ok {
		t.Error("ByTLD(zz) should miss")
	}
	if c, ok := ByCode("kr"); !ok || c.Name != "South Korea" {
		t.Errorf("ByCode(kr) = %+v, %v", c, ok)
	}
}

func TestRegisterAndLocate(t *testing.T) {
	db := NewDB()
	de, _ := ByCode("de")
	addr := netip.MustParseAddr("100.64.1.2")
	db.Register(addr, de)
	loc, ok := db.Locate(addr)
	if !ok || loc.Country != "de" {
		t.Fatalf("Locate = %+v, %v", loc, ok)
	}
	// Jitter is bounded by ±3°.
	if d := loc.Lat - de.Lat; d < -3 || d > 3 {
		t.Errorf("lat jitter %f out of bounds", d)
	}
	if d := loc.Lon - de.Lon; d < -3 || d > 3 {
		t.Errorf("lon jitter %f out of bounds", d)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if _, ok := db.Locate(netip.MustParseAddr("100.64.9.9")); ok {
		t.Error("unregistered address located")
	}
}

func TestJitterDeterministic(t *testing.T) {
	a := netip.MustParseAddr("100.64.1.2")
	l1a, l1o := jitter(a)
	l2a, l2o := jitter(a)
	if l1a != l2a || l1o != l2o {
		t.Error("jitter not deterministic")
	}
}

func TestChoroplethBucketsAndPatchRate(t *testing.T) {
	db := NewDB()
	za, _ := ByCode("za")
	ru, _ := ByCode("ru")
	var zaAddrs, ruAddrs []netip.Addr
	for i := 0; i < 20; i++ {
		a := netip.AddrFrom4([4]byte{100, 64, 1, byte(i)})
		db.Register(a, za)
		zaAddrs = append(zaAddrs, a)
		b := netip.AddrFrom4([4]byte{100, 64, 2, byte(i)})
		db.Register(b, ru)
		ruAddrs = append(ruAddrs, b)
	}
	all := append(append([]netip.Addr(nil), zaAddrs...), ruAddrs...)
	patched := map[netip.Addr]bool{}
	for _, a := range zaAddrs[:16] { // 80% of za patched
		patched[a] = true
	}
	buckets := db.Choropleth(all, 10, func(a netip.Addr) bool { return patched[a] })
	if len(buckets) < 2 {
		t.Fatalf("buckets = %d, want ≥2 (za and ru are far apart)", len(buckets))
	}
	var total, patchedTotal int
	for _, b := range buckets {
		total += b.Total
		patchedTotal += b.Patched
	}
	if total != 40 || patchedTotal != 16 {
		t.Errorf("totals = %d/%d", total, patchedTotal)
	}
	// Buckets are sorted by Total descending.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Total > buckets[i-1].Total {
			t.Error("buckets not sorted by size")
		}
	}
}

func TestByCountryAggregation(t *testing.T) {
	db := NewDB()
	za, _ := ByCode("za")
	tw, _ := ByCode("tw")
	var addrs []netip.Addr
	for i := 0; i < 10; i++ {
		a := netip.AddrFrom4([4]byte{100, 64, 3, byte(i)})
		db.Register(a, za)
		addrs = append(addrs, a)
	}
	for i := 0; i < 5; i++ {
		a := netip.AddrFrom4([4]byte{100, 64, 4, byte(i)})
		db.Register(a, tw)
		addrs = append(addrs, a)
	}
	stats := db.ByCountry(addrs, func(a netip.Addr) bool {
		loc, _ := db.Locate(a)
		return loc.Country == "za" // all za patched, no tw
	})
	if len(stats) != 2 || stats[0].Country != "za" || stats[0].Total != 10 || stats[0].Patched != 10 {
		t.Errorf("stats = %+v", stats)
	}
	if stats[1].Country != "tw" || stats[1].Patched != 0 {
		t.Errorf("tw stats = %+v", stats[1])
	}
	if got := (BucketStats{Total: 10, Patched: 4}).PatchRate(); got != 0.4 {
		t.Errorf("PatchRate = %f", got)
	}
	if got := (BucketStats{}).PatchRate(); got != 0 {
		t.Errorf("empty PatchRate = %f", got)
	}
}
