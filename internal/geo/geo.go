// Package geo provides the deterministic IP geolocation used to reproduce
// the paper's geographic analysis (Figure 3). It substitutes for the DbIP
// database: the population generator registers each host's country at
// creation time, and the choropleth aggregation buckets coordinates exactly
// as the paper does.
package geo

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Country describes one country used in the simulation, with the fields
// the study needs: a map position and the ccTLD it is associated with.
type Country struct {
	Code string // ISO 3166-1 alpha-2, lower case
	Name string
	TLD  string  // ccTLD without dot; may equal Code
	Lat  float64 // representative centroid
	Lon  float64
}

// Countries is the simulation's country table. Coverage concentrates on the
// countries the paper calls out (high/low patch-rate TLDs, vulnerable
// provider homes) plus enough others for a populated map.
var Countries = []Country{
	{"us", "United States", "us", 39.8, -98.6},
	{"de", "Germany", "de", 51.2, 10.4},
	{"ru", "Russia", "ru", 55.8, 37.6},
	{"ir", "Iran", "ir", 35.7, 51.4},
	{"in", "India", "in", 21.0, 78.0},
	{"au", "Australia", "au", -25.3, 133.8},
	{"vn", "Vietnam", "vn", 16.0, 106.0},
	{"co", "Colombia", "co", 4.6, -74.1},
	{"ua", "Ukraine", "ua", 49.0, 31.5},
	{"tr", "Turkey", "tr", 39.0, 35.2},
	{"gb", "United Kingdom", "uk", 54.0, -2.0},
	{"id", "Indonesia", "id", -2.5, 118.0},
	{"ca", "Canada", "ca", 56.1, -106.3},
	{"za", "South Africa", "za", -29.0, 24.0},
	{"gr", "Greece", "gr", 39.0, 22.0},
	{"il", "Israel", "il", 31.5, 34.8},
	{"by", "Belarus", "by", 53.7, 27.9},
	{"tw", "Taiwan", "tw", 23.7, 121.0},
	{"cn", "China", "cn", 35.0, 103.0},
	{"kr", "South Korea", "kr", 36.5, 127.8},
	{"pl", "Poland", "pl", 52.1, 19.4},
	{"cz", "Czechia", "cz", 49.8, 15.5},
	{"fr", "France", "fr", 46.6, 2.4},
	{"it", "Italy", "it", 42.8, 12.8},
	{"es", "Spain", "es", 40.2, -3.7},
	{"nl", "Netherlands", "nl", 52.2, 5.3},
	{"br", "Brazil", "br", -10.8, -52.9},
	{"mx", "Mexico", "mx", 23.6, -102.6},
	{"ar", "Argentina", "ar", -35.4, -65.2},
	{"jp", "Japan", "jp", 36.5, 138.0},
	{"eu", "European Union", "eu", 50.0, 9.0},
}

// ByTLD returns the country associated with a TLD, and whether one exists.
func ByTLD(tld string) (Country, bool) {
	for _, c := range Countries {
		if c.TLD == tld {
			return c, true
		}
	}
	return Country{}, false
}

// ByCode returns the country with the given ISO code.
func ByCode(code string) (Country, bool) {
	for _, c := range Countries {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}

// Location is a geolocated position.
type Location struct {
	Country string // ISO code
	Lat     float64
	Lon     float64
}

// DB is a registry mapping IP addresses to locations. The population
// generator fills it; the study reads it. Safe for concurrent use.
type DB struct {
	mu   sync.RWMutex
	locs map[netip.Addr]Location
}

// NewDB returns an empty geolocation registry.
func NewDB() *DB { return &DB{locs: make(map[netip.Addr]Location)} }

// Register assigns a location to an address. A small deterministic jitter
// derived from the address spreads hosts of one country across nearby
// buckets, as real provider footprints do.
func (d *DB) Register(addr netip.Addr, c Country) {
	jlat, jlon := jitter(addr)
	d.mu.Lock()
	d.locs[addr] = Location{Country: c.Code, Lat: c.Lat + jlat, Lon: c.Lon + jlon}
	d.mu.Unlock()
}

// Locate returns the location of an address.
func (d *DB) Locate(addr netip.Addr) (Location, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	l, ok := d.locs[addr]
	return l, ok
}

// Len returns the number of registered addresses.
func (d *DB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.locs)
}

// jitter derives a stable ±3° offset from the address bytes.
func jitter(addr netip.Addr) (float64, float64) {
	b := addr.As16()
	h1 := uint32(b[12])<<8 | uint32(b[13])
	h2 := uint32(b[14])<<8 | uint32(b[15])
	return (float64(h1%600) - 300) / 100, (float64(h2%600) - 300) / 100
}

// Bucket identifies one cell of the choropleth grid.
type Bucket struct {
	LatIdx int
	LonIdx int
}

// BucketStats aggregates hosts within one grid cell.
type BucketStats struct {
	Bucket  Bucket
	Lat     float64 // cell center
	Lon     float64
	Total   int
	Patched int
}

// PatchRate returns the patched fraction, or 0 when empty.
func (b BucketStats) PatchRate() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Patched) / float64(b.Total)
}

// Choropleth buckets addresses into cellDeg-sized cells. patched reports
// whether a given address was eventually patched (Figure 3b); pass nil for
// the vulnerability-only map (Figure 3a).
func (d *DB) Choropleth(addrs []netip.Addr, cellDeg float64, patched func(netip.Addr) bool) []BucketStats {
	if cellDeg <= 0 {
		cellDeg = 5
	}
	cells := make(map[Bucket]*BucketStats)
	d.mu.RLock()
	for _, a := range addrs {
		loc, ok := d.locs[a]
		if !ok {
			continue
		}
		b := Bucket{LatIdx: int(loc.Lat / cellDeg), LonIdx: int(loc.Lon / cellDeg)}
		st := cells[b]
		if st == nil {
			st = &BucketStats{
				Bucket: b,
				Lat:    (float64(b.LatIdx) + 0.5) * cellDeg,
				Lon:    (float64(b.LonIdx) + 0.5) * cellDeg,
			}
			cells[b] = st
		}
		st.Total++
		if patched != nil && patched(a) {
			st.Patched++
		}
	}
	d.mu.RUnlock()
	out := make([]BucketStats, 0, len(cells))
	for _, st := range cells {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return fmt.Sprint(out[i].Bucket) < fmt.Sprint(out[j].Bucket)
	})
	return out
}

// CountryStats aggregates per-country counts for map rendering and the
// TLD patch-rate table.
type CountryStats struct {
	Country string
	Total   int
	Patched int
}

// ByCountry aggregates addresses per country.
func (d *DB) ByCountry(addrs []netip.Addr, patched func(netip.Addr) bool) []CountryStats {
	agg := make(map[string]*CountryStats)
	d.mu.RLock()
	for _, a := range addrs {
		loc, ok := d.locs[a]
		if !ok {
			continue
		}
		st := agg[loc.Country]
		if st == nil {
			st = &CountryStats{Country: loc.Country}
			agg[loc.Country] = st
		}
		st.Total++
		if patched != nil && patched(a) {
			st.Patched++
		}
	}
	d.mu.RUnlock()
	out := make([]CountryStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Country < out[j].Country
	})
	return out
}
