// Package spfimpl models the spectrum of SPF implementation behaviors the
// SPFail measurement observed in the wild (paper §4.2, §7.9): the
// RFC-compliant expansion, the uniquely erroneous expansion of the
// vulnerable libSPF2, and the non-compliant variants (missing reversal,
// missing truncation, missing expansion entirely).
//
// Every behavior is expressed as an spf.MacroExpander, so a simulated mail
// host runs the *real* parser and evaluator from internal/spf with only the
// macro-expansion stage swapped — exactly the code path where libSPF2's
// bugs live.
package spfimpl

import (
	"context"
	"fmt"
	"strings"

	"spfail/internal/spf"
)

// Behavior names an SPF implementation's macro-expansion behavior.
type Behavior string

// The behaviors of the SPFail taxonomy.
const (
	// BehaviorCompliant follows RFC 7208 exactly.
	BehaviorCompliant Behavior = "compliant"
	// BehaviorVulnLibSPF2 is unpatched libSPF2: reversal+truncation
	// produces the unique duplicated-prefix fingerprint, and URL
	// encoding overflows the heap (CVE-2021-33912/33913).
	BehaviorVulnLibSPF2 Behavior = "libspf2-vulnerable"
	// BehaviorPatchedLibSPF2 is libSPF2 with the fixes applied; its
	// expansion is RFC-compliant.
	BehaviorPatchedLibSPF2 Behavior = "libspf2-patched"
	// BehaviorNoReverse truncates but ignores the 'r' transformer.
	BehaviorNoReverse Behavior = "no-reverse"
	// BehaviorNoTruncate reverses but ignores the digit transformer.
	BehaviorNoTruncate Behavior = "no-truncate"
	// BehaviorRawValue substitutes the raw macro value, ignoring both
	// transformers.
	BehaviorRawValue Behavior = "raw-value"
	// BehaviorNoExpansion sends the macro text literally, unexpanded.
	BehaviorNoExpansion Behavior = "no-expansion"
	// BehaviorSkipMacros resolves only macro-free terms, skipping any
	// mechanism containing a macro (detectable solely via the probe
	// policy's liveness term).
	BehaviorSkipMacros Behavior = "skip-macros"
)

// Vulnerable reports whether the behavior corresponds to the exploitable
// libSPF2 code path.
func (b Behavior) Vulnerable() bool { return b == BehaviorVulnLibSPF2 }

// Erroneous reports whether the behavior deviates from RFC 7208 (the
// paper's "other erroneous" class plus the vulnerable class).
func (b Behavior) Erroneous() bool {
	switch b {
	case BehaviorCompliant, BehaviorPatchedLibSPF2:
		return false
	}
	return true
}

// AllBehaviors lists every modeled behavior, in taxonomy order.
func AllBehaviors() []Behavior {
	return []Behavior{
		BehaviorCompliant,
		BehaviorVulnLibSPF2,
		BehaviorPatchedLibSPF2,
		BehaviorNoReverse,
		BehaviorNoTruncate,
		BehaviorRawValue,
		BehaviorNoExpansion,
	}
}

// ExpanderFor returns the macro expander implementing a behavior.
// The returned LibSPF2Expander for BehaviorVulnLibSPF2 can additionally
// report overflow events; callers needing them should construct it
// directly.
func ExpanderFor(b Behavior) spf.MacroExpander {
	switch b {
	case BehaviorVulnLibSPF2:
		return &LibSPF2Expander{}
	case BehaviorPatchedLibSPF2:
		return &LibSPF2Expander{Patched: true}
	case BehaviorNoReverse:
		return transformOverride{dropReverse: true}
	case BehaviorNoTruncate:
		return transformOverride{dropDigits: true}
	case BehaviorRawValue:
		return transformOverride{dropReverse: true, dropDigits: true}
	case BehaviorNoExpansion:
		return literalExpander{}
	default:
		return spf.Expander{}
	}
}

// NewChecker builds an SPF checker whose macro stage behaves per b.
func NewChecker(b Behavior, r spf.Resolver) *spf.Checker {
	c := &spf.Checker{Resolver: r, Expander: ExpanderFor(b)}
	if b == BehaviorSkipMacros {
		c.SkipMacroMechanisms = true
	}
	return c
}

// transformOverride is a compliant expander with selected transformers
// disabled — the partial implementations of §7.9.
type transformOverride struct {
	dropReverse bool
	dropDigits  bool
}

// Expand implements spf.MacroExpander.
func (o transformOverride) Expand(ctx context.Context, macroStr string, env *spf.MacroEnv, forExp bool) (string, error) {
	toks, err := spf.TokenizeMacroString(macroStr)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range toks {
		if !t.IsMacro {
			b.WriteString(t.Literal)
			continue
		}
		raw, err := spf.MacroValue(ctx, t.Letter, env, forExp)
		if err != nil {
			return "", err
		}
		mod := t
		if o.dropReverse {
			mod.Reverse = false
		}
		if o.dropDigits {
			mod.Digits = 0
		}
		val := spf.ApplyTransformers(raw, mod)
		if t.URLEscape {
			val = spf.URLEscape(val)
		}
		b.WriteString(val)
	}
	return b.String(), nil
}

// literalExpander performs no expansion at all: the macro text goes out as
// a literal DNS label, producing queries like %{d1r}.<id>....
type literalExpander struct{}

// Expand implements spf.MacroExpander.
func (literalExpander) Expand(_ context.Context, macroStr string, _ *spf.MacroEnv, _ bool) (string, error) {
	return macroStr, nil
}

// OverflowEvent records a (simulated) heap overflow triggered during
// expansion — the memory-safe stand-in for the corruption an exploited
// libSPF2 would suffer.
type OverflowEvent struct {
	// CVE identifies which flaw fired.
	CVE string
	// Bytes is how many bytes were written past the modeled allocation.
	Bytes int
	// Macro is the token that triggered it, in %{...} form.
	Macro string
}

// String implements fmt.Stringer.
func (e OverflowEvent) String() string {
	return fmt.Sprintf("%s: %d bytes past end of buffer expanding %s", e.CVE, e.Bytes, e.Macro)
}

// The two published identifiers.
const (
	CVEURLEncoding  = "CVE-2021-33912"
	CVEBufferLength = "CVE-2021-33913"
)

// LibSPF2Expander is a behavioral, memory-safe port of the macro-expansion
// code path of libSPF2 1.2.10 (spf_expand.c). Unpatched, it reproduces:
//
//   - CVE-2021-33913: when a macro specifies label reversal together with
//     a digit transformer, the buffer-length variable is overwritten with
//     the (much smaller) truncated length while the code keeps copying the
//     full reversed value — observable on the wire as the truncation-width
//     prefix of the reversed value duplicated in front of the whole
//     reversed value (%{d1r} on example.com → "com.com.example"), and a
//     heap overflow when URL encoding also forces a re-allocation pass.
//
//   - CVE-2021-33912: URL encoding uses sprintf(p, "%%%02x", *c) with a
//     signed char, so bytes ≥ 0x80 sign-extend and print as eight hex
//     digits ("%ffffffXX"), writing six bytes more than the four the
//     buffer sizing assumed.
//
// With Patched set, both flaws are fixed and expansion is RFC-compliant.
type LibSPF2Expander struct {
	Patched bool
	// OnOverflow, if non-nil, receives each simulated overflow.
	OnOverflow func(OverflowEvent)
}

// Expand implements spf.MacroExpander.
func (l *LibSPF2Expander) Expand(ctx context.Context, macroStr string, env *spf.MacroEnv, forExp bool) (string, error) {
	toks, err := spf.TokenizeMacroString(macroStr)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range toks {
		if !t.IsMacro {
			b.WriteString(t.Literal)
			continue
		}
		raw, err := spf.MacroValue(ctx, t.Letter, env, forExp)
		if err != nil {
			return "", err
		}
		val := l.expandOne(raw, t)
		b.WriteString(val)
	}
	return b.String(), nil
}

// expandOne mirrors the per-macro body of spf_expand.
func (l *LibSPF2Expander) expandOne(raw string, t spf.MacroToken) string {
	if l.Patched {
		val := spf.ApplyTransformers(raw, t)
		if t.URLEscape {
			val = spf.URLEscape(val)
		}
		return val
	}

	delims := t.Delims
	if delims == "" {
		delims = "."
	}
	parts := strings.FieldsFunc(raw, func(r rune) bool {
		return strings.ContainsRune(delims, r)
	})
	if len(parts) == 0 {
		parts = []string{raw}
	}

	var val string
	switch {
	case t.Reverse && t.Digits > 0 && t.Digits < len(parts):
		// CVE-2021-33913 code path. The reversed value is assembled
		// first; then the truncation pass recomputes the buffer length
		// from the *truncated* label count but copies from the start of
		// the reversed buffer, leaving the truncation prefix duplicated
		// ahead of the full reversed value.
		reversed := make([]string, len(parts))
		for i, p := range parts {
			reversed[len(parts)-1-i] = p
		}
		full := strings.Join(reversed, ".")
		prefix := strings.Join(reversed[:t.Digits], ".")
		val = prefix + "." + full
		// intended allocation tracks only the truncated length;
		// the copy writes the prefix plus the full reversed value.
		intended := len(prefix)
		written := len(val)
		if t.URLEscape {
			// The URL-encoding pass re-walks the (overlong) buffer,
			// writing up to 100 bytes of attacker-chosen data past
			// the undersized allocation.
			over := written - intended
			if over > 100 {
				over = 100
			}
			l.overflow(OverflowEvent{CVE: CVEBufferLength, Bytes: over, Macro: macroText(t)})
		}
	case t.Reverse:
		reversed := make([]string, len(parts))
		for i, p := range parts {
			reversed[len(parts)-1-i] = p
		}
		val = strings.Join(reversed, ".")
	default:
		if t.Digits > 0 && t.Digits < len(parts) {
			parts = parts[len(parts)-t.Digits:]
		}
		val = strings.Join(parts, ".")
	}

	if t.URLEscape {
		val = l.urlEscapeSigned(val, t)
	}
	return val
}

// urlEscapeSigned reproduces the sprintf("%%%02x", *p_read) encoding with a
// signed char argument: bytes ≥ 0x80 sign-extend to 32 bits and print as
// eight hex digits, six bytes longer than the expansion the buffer sizing
// assumed (CVE-2021-33912).
func (l *LibSPF2Expander) urlEscapeSigned(s string, t spf.MacroToken) string {
	var b strings.Builder
	overflowed := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
			c == '-' || c == '.' || c == '_' || c == '~':
			b.WriteByte(c)
		case c >= 0x80:
			// signed char sign extension: 0xFE → 0xFFFFFFFE.
			fmt.Fprintf(&b, "%%%08x", 0xFFFFFF00|uint32(c))
			overflowed += 6
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	if overflowed > 0 {
		l.overflow(OverflowEvent{CVE: CVEURLEncoding, Bytes: overflowed, Macro: macroText(t)})
	}
	return b.String()
}

func (l *LibSPF2Expander) overflow(ev OverflowEvent) {
	if l.OnOverflow != nil {
		l.OnOverflow(ev)
	}
}

// macroText reconstructs the %{...} source of a token for diagnostics.
func macroText(t spf.MacroToken) string {
	var b strings.Builder
	b.WriteString("%{")
	letter := byte(t.Letter)
	if t.URLEscape {
		letter -= 'a' - 'A'
	}
	b.WriteByte(letter)
	if t.Digits > 0 {
		fmt.Fprintf(&b, "%d", t.Digits)
	}
	if t.Reverse {
		b.WriteByte('r')
	}
	b.WriteString(t.Delims)
	b.WriteString("}")
	return b.String()
}
