package spfimpl

import (
	"context"
	"net/netip"
	"strings"
	"testing"

	"spfail/internal/spf"
)

func env(sender string) *spf.MacroEnv {
	domain := sender[strings.IndexByte(sender, '@')+1:]
	return &spf.MacroEnv{
		Sender: sender,
		Domain: domain,
		IP:     netip.MustParseAddr("198.51.100.9"),
		HELO:   "probe.example",
	}
}

func expandAs(t *testing.T, b Behavior, spec, sender string) string {
	t.Helper()
	out, err := ExpanderFor(b).Expand(context.Background(), spec, env(sender), false)
	if err != nil {
		t.Fatalf("%s: Expand(%q): %v", b, spec, err)
	}
	return out
}

// TestPaperSection42Expansions verifies the three expansions listed in
// paper §4.2 for mechanism a:%{d1r}.foo.com with sender user@example.com.
func TestPaperSection42Expansions(t *testing.T) {
	const spec = "%{d1r}.foo.com"
	const sender = "user@example.com"
	cases := []struct {
		b    Behavior
		want string
	}{
		{BehaviorCompliant, "example.foo.com"},
		{BehaviorNoTruncate, "com.example.foo.com"},
		{BehaviorVulnLibSPF2, "com.com.example.foo.com"},
	}
	for _, c := range cases {
		if got := expandAs(t, c.b, spec, sender); got != c.want {
			t.Errorf("%s: %q, want %q", c.b, got, c.want)
		}
	}
}

func TestAllBehaviorsDistinctOnProbeRecord(t *testing.T) {
	// The SPFail detector relies on each behavior producing a distinct
	// query for the probe macro. Verify pairwise distinctness (patched
	// libSPF2 collides with compliant by design).
	const spec = "%{d1r}.x7.s1.spf-test.dns-lab.org"
	const sender = "user@x7.s1.spf-test.dns-lab.org"
	seen := map[string]Behavior{}
	for _, b := range AllBehaviors() {
		out := expandAs(t, b, spec, sender)
		if prev, dup := seen[out]; dup {
			okCollision := (b == BehaviorPatchedLibSPF2 && prev == BehaviorCompliant) ||
				(b == BehaviorCompliant && prev == BehaviorPatchedLibSPF2)
			if !okCollision {
				t.Errorf("behaviors %s and %s both expand to %q", prev, b, out)
			}
			continue
		}
		seen[out] = b
	}
}

func TestNoReverseBehavior(t *testing.T) {
	// Truncation without reversal keeps the right-most label of the
	// original order: "com".
	if got := expandAs(t, BehaviorNoReverse, "%{d1r}.foo.com", "user@example.com"); got != "com.foo.com" {
		t.Errorf("no-reverse = %q", got)
	}
}

func TestRawValueBehavior(t *testing.T) {
	if got := expandAs(t, BehaviorRawValue, "%{d1r}.foo.com", "user@example.com"); got != "example.com.foo.com" {
		t.Errorf("raw = %q", got)
	}
}

func TestNoExpansionBehavior(t *testing.T) {
	if got := expandAs(t, BehaviorNoExpansion, "%{d1r}.foo.com", "user@example.com"); got != "%{d1r}.foo.com" {
		t.Errorf("no-expansion = %q", got)
	}
}

func TestPatchedLibSPF2IsCompliant(t *testing.T) {
	specs := []string{"%{d1r}.foo.com", "%{dr}.x.org", "%{d2}.y.net", "%{l}.z.io"}
	for _, spec := range specs {
		want := expandAs(t, BehaviorCompliant, spec, "user@mail.example.com")
		got := expandAs(t, BehaviorPatchedLibSPF2, spec, "user@mail.example.com")
		if got != want {
			t.Errorf("patched(%q) = %q, compliant = %q", spec, got, want)
		}
	}
}

func TestVulnFingerprintWiderDomains(t *testing.T) {
	// Five-label domain, d2r: reversed = e.d.c.b.a → prefix 2 = e.d →
	// buggy output e.d.e.d.c.b.a.
	got := expandAs(t, BehaviorVulnLibSPF2, "%{d2r}.t.example", "u@a.b.c.d.e")
	if got != "e.d.e.d.c.b.a.t.example" {
		t.Errorf("d2r fingerprint = %q", got)
	}
}

func TestVulnNoBugWithoutTruncation(t *testing.T) {
	// Reversal without digits takes the clean code path.
	if got := expandAs(t, BehaviorVulnLibSPF2, "%{dr}.t.example", "u@example.com"); got != "com.example.t.example" {
		t.Errorf("dr = %q", got)
	}
	// Truncation without reversal is also correct in libSPF2.
	if got := expandAs(t, BehaviorVulnLibSPF2, "%{d1}.t.example", "u@example.com"); got != "com.t.example" {
		t.Errorf("d1 = %q", got)
	}
	// Digits >= label count: no truncation happens, no bug.
	if got := expandAs(t, BehaviorVulnLibSPF2, "%{d5r}.t.example", "u@example.com"); got != "com.example.t.example" {
		t.Errorf("d5r = %q", got)
	}
}

func TestCVE202133912SignExtendedEncoding(t *testing.T) {
	var events []OverflowEvent
	l := &LibSPF2Expander{OnOverflow: func(e OverflowEvent) { events = append(events, e) }}
	e := env("user@example.com")
	e.Sender = "caf\xe9@example.com" // 0xE9 high byte in local part
	out, err := l.Expand(context.Background(), "%{L}.t.example", e, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "%ffffffe9") {
		t.Errorf("sign-extended encoding missing: %q", out)
	}
	if len(events) != 1 || events[0].CVE != CVEURLEncoding || events[0].Bytes != 6 {
		t.Errorf("overflow events = %v", events)
	}
}

func TestCVE202133912PatchedEncoding(t *testing.T) {
	var events []OverflowEvent
	l := &LibSPF2Expander{Patched: true, OnOverflow: func(e OverflowEvent) { events = append(events, e) }}
	e := env("user@example.com")
	e.Sender = "caf\xe9@example.com"
	out, err := l.Expand(context.Background(), "%{L}.t.example", e, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(out), "%e9") || strings.Contains(out, "ffffff") {
		t.Errorf("patched encoding = %q", out)
	}
	if len(events) != 0 {
		t.Errorf("patched expander reported overflows: %v", events)
	}
}

func TestCVE202133913OverflowOnReverseWithEncoding(t *testing.T) {
	var events []OverflowEvent
	l := &LibSPF2Expander{OnOverflow: func(e OverflowEvent) { events = append(events, e) }}
	_, err := l.Expand(context.Background(), "%{D1R}.t.example", env("user@mail.corp.example.com"), false)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ev := range events {
		if ev.CVE == CVEBufferLength {
			found = true
			if ev.Bytes <= 0 || ev.Bytes > 100 {
				t.Errorf("overflow bytes = %d, want 1..100", ev.Bytes)
			}
		}
	}
	if !found {
		t.Fatalf("no %s event; got %v", CVEBufferLength, events)
	}
}

func TestNoOverflowWithoutURLEncoding(t *testing.T) {
	var events []OverflowEvent
	l := &LibSPF2Expander{OnOverflow: func(e OverflowEvent) { events = append(events, e) }}
	// Lowercase macro: fingerprint produced, but memory stays intact —
	// this is what makes benign remote detection possible (paper §4.2).
	out, err := l.Expand(context.Background(), "%{d1r}.t.example", env("user@example.com"), false)
	if err != nil {
		t.Fatal(err)
	}
	if out != "com.com.example.t.example" {
		t.Errorf("fingerprint = %q", out)
	}
	if len(events) != 0 {
		t.Errorf("unexpected overflow events: %v", events)
	}
}

func TestBehaviorPredicates(t *testing.T) {
	if !BehaviorVulnLibSPF2.Vulnerable() || BehaviorCompliant.Vulnerable() {
		t.Error("Vulnerable() wrong")
	}
	if !BehaviorNoReverse.Erroneous() || BehaviorPatchedLibSPF2.Erroneous() || BehaviorCompliant.Erroneous() {
		t.Error("Erroneous() wrong")
	}
	if !BehaviorVulnLibSPF2.Erroneous() {
		t.Error("vulnerable should also be erroneous")
	}
}

func TestNewCheckerEndToEnd(t *testing.T) {
	// A vulnerable checker evaluating the probe policy issues the
	// fingerprint lookup through the real evaluator.
	r := &recordingResolver{
		txt: map[string][]string{
			"x7.s1.spf-test.dns-lab.org": {
				"v=spf1 a:%{d1r}.x7.s1.spf-test.dns-lab.org a:b.x7.s1.spf-test.dns-lab.org -all"},
		},
	}
	c := NewChecker(BehaviorVulnLibSPF2, r)
	res := c.CheckHost(context.Background(), netip.MustParseAddr("198.51.100.9"),
		"x7.s1.spf-test.dns-lab.org", "probe@x7.s1.spf-test.dns-lab.org", "probe.example")
	if res.Result != spf.ResultFail {
		t.Fatalf("result = %s (%v)", res.Result, res.Err)
	}
	want := "org.org.dns-lab.spf-test.s1.x7.x7.s1.spf-test.dns-lab.org"
	var sawFingerprint bool
	for _, q := range r.ipQueries {
		if q == want {
			sawFingerprint = true
		}
	}
	if !sawFingerprint {
		t.Errorf("fingerprint query %q not issued; queries = %v", want, r.ipQueries)
	}
}

// recordingResolver records LookupIP targets.
type recordingResolver struct {
	txt       map[string][]string
	ipQueries []string
}

func (r *recordingResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := r.txt[strings.TrimSuffix(name, ".")]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (r *recordingResolver) LookupIP(_ context.Context, _, name string) ([]netip.Addr, error) {
	r.ipQueries = append(r.ipQueries, strings.TrimSuffix(name, "."))
	return nil, spf.ErrNotFound
}

func (r *recordingResolver) LookupMX(context.Context, string) ([]spf.MX, error) {
	return nil, spf.ErrNotFound
}

func (r *recordingResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}
