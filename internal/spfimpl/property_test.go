package spfimpl

import (
	"context"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"spfail/internal/spf"
)

// randomMacroSpec builds a random valid macro-string from lowercase macro
// letters, transformers, and literal labels.
func randomMacroSpec(r *rand.Rand) string {
	letters := []string{"s", "l", "o", "d", "i", "h", "v"}
	var b strings.Builder
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte('.')
		}
		if r.Intn(2) == 0 {
			b.WriteString("lbl")
			continue
		}
		b.WriteString("%{")
		b.WriteString(letters[r.Intn(len(letters))])
		if r.Intn(2) == 0 {
			b.WriteByte(byte('1' + r.Intn(4)))
		}
		if r.Intn(2) == 0 {
			b.WriteByte('r')
		}
		b.WriteByte('}')
	}
	b.WriteString(".base.example")
	return b.String()
}

func randomEnv(r *rand.Rand) *spf.MacroEnv {
	domains := []string{"example.com", "a.b.example.org", "mail.corp.example.co.uk", "x.io"}
	d := domains[r.Intn(len(domains))]
	ip := netip.AddrFrom4([4]byte{198, 51, 100, byte(r.Intn(255))})
	if r.Intn(4) == 0 {
		ip = netip.MustParseAddr("2001:db8::1")
	}
	return &spf.MacroEnv{
		Sender: "user@" + d,
		Domain: d,
		IP:     ip,
		HELO:   "helo." + d,
	}
}

// TestPropertyPatchedLibSPF2EqualsCompliant: the patched expander must be
// byte-identical to the RFC expander on every macro-string.
func TestPropertyPatchedLibSPF2EqualsCompliant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomMacroSpec(r)
		env := randomEnv(r)
		want, err1 := spf.Expander{}.Expand(context.Background(), spec, env, false)
		got, err2 := (&LibSPF2Expander{Patched: true}).Expand(context.Background(), spec, env, false)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVulnExpansionContainsCompliantSuffix: for reverse+truncate
// macros, the buggy output is the compliant truncation prefix glued ahead
// of the full reversed value — so it always *ends* with the no-truncate
// expansion and *starts* with the compliant one.
func TestPropertyVulnFingerprintStructure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		env := randomEnv(r)
		digits := 1 + r.Intn(2)
		spec := "%{d" + string(byte('0'+digits)) + "r}"
		vuln, err := (&LibSPF2Expander{}).Expand(context.Background(), spec, env, false)
		if err != nil {
			return false
		}
		noTrunc, _ := spf.Expander{}.Expand(context.Background(), "%{dr}", env, false)
		parts := strings.Split(env.Domain, ".")
		if digits >= len(parts) {
			// No truncation happens: clean code path, output equals the
			// plain reversal.
			return vuln == noTrunc
		}
		// The duplicated prefix is the first `digits` labels of the
		// reversed sequence — i.e. the domain's last labels in reverse.
		reversed := make([]string, len(parts))
		for i, p := range parts {
			reversed[len(parts)-1-i] = p
		}
		prefix := strings.Join(reversed[:digits], ".")
		return vuln == prefix+"."+noTrunc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNonVulnBehaviorsNeverProduceFingerprint: no non-vulnerable
// behaviour may ever emit the duplicated-prefix pattern for the probe
// macro (that would be a false positive in the detector).
func TestPropertyNonVulnBehaviorsNeverProduceFingerprint(t *testing.T) {
	behaviors := []Behavior{
		BehaviorCompliant, BehaviorPatchedLibSPF2, BehaviorNoReverse,
		BehaviorNoTruncate, BehaviorRawValue, BehaviorNoExpansion,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		env := randomEnv(r)
		vuln, err := (&LibSPF2Expander{}).Expand(context.Background(), "%{d1r}", env, false)
		if err != nil {
			return false
		}
		for _, b := range behaviors {
			out, err := ExpanderFor(b).Expand(context.Background(), "%{d1r}", env, false)
			if err != nil {
				return false
			}
			// Fingerprint collision is only legal when no truncation
			// occurred (single-label domains cannot exist here).
			if out == vuln && strings.Count(env.Domain, ".") >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOverflowOnlyWithURLEncoding: the modeled memory corruption
// must require the URL-encoding path, as §4.2's benign-detection argument
// depends on it.
func TestPropertyOverflowOnlyWithURLEncoding(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		env := randomEnv(r)
		var events []OverflowEvent
		l := &LibSPF2Expander{OnOverflow: func(e OverflowEvent) { events = append(events, e) }}
		// Lowercase (no URL encoding): never overflows.
		if _, err := l.Expand(context.Background(), randomMacroSpec(r), env, false); err != nil {
			return true // syntax-invalid spec; nothing to assert
		}
		return len(events) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
