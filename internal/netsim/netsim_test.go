package netsim

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestFabricTCPEcho(t *testing.T) {
	f := NewFabric()
	server := f.Host("192.0.2.10")
	client := f.Host("198.51.100.7")

	l, err := server.Listen("tcp", ":25")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Addr().String(); got != "192.0.2.10:25" {
		t.Fatalf("listener addr = %q", got)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		if got := c.RemoteAddr().(Addr).Host; got != "198.51.100.7" {
			t.Errorf("server sees remote %q, want client IP", got)
		}
		io.Copy(c, c)
	}()

	c, err := client.DialContext(context.Background(), "tcp", "192.0.2.10:25")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RemoteAddr().String(); got != "192.0.2.10:25" {
		t.Errorf("client sees remote %q", got)
	}
	msg := []byte("EHLO probe.example\r\n")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echo = %q", buf)
	}
	c.Close()
	wg.Wait()
}

func TestFabricDialRefusedWithoutListener(t *testing.T) {
	f := NewFabric()
	_, err := f.Host("10.0.0.1").DialContext(context.Background(), "tcp", "10.9.9.9:25")
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("dial = %v, want ErrRefused", err)
	}
}

func TestFabricDialRefusedAfterClose(t *testing.T) {
	f := NewFabric()
	l, err := f.Host("10.0.0.2").Listen("tcp", ":25")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, err = f.Host("10.0.0.1").DialContext(context.Background(), "tcp", "10.0.0.2:25")
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("dial after close = %v, want ErrRefused", err)
	}
}

func TestFabricListenConflict(t *testing.T) {
	f := NewFabric()
	h := f.Host("10.0.0.3")
	if _, err := h.Listen("tcp", ":25"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen("tcp", ":25"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("second listen = %v, want ErrAddrInUse", err)
	}
}

func TestFabricAcceptAfterCloseFails(t *testing.T) {
	f := NewFabric()
	l, _ := f.Host("10.0.0.4").Listen("tcp", ":25")
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after close = %v, want ErrClosed", err)
	}
}

func TestFabricUDPRoundTrip(t *testing.T) {
	f := NewFabric()
	srv, err := f.Host("192.0.2.53").ListenPacket("udp", ":53")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	go func() {
		buf := make([]byte, 512)
		n, from, err := srv.ReadFrom(buf)
		if err != nil {
			t.Errorf("server ReadFrom: %v", err)
			return
		}
		srv.WriteTo(buf[:n], from) // echo
	}()

	c, err := f.Host("198.51.100.1").DialContext(context.Background(), "udp", "192.0.2.53:53")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("query")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "query" {
		t.Errorf("echo = %q", buf[:n])
	}
}

func TestFabricUDPReadDeadline(t *testing.T) {
	f := NewFabric()
	pc, err := f.Host("10.1.1.1").ListenPacket("udp", ":9999")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	_, _, err = pc.ReadFrom(make([]byte, 16))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("ReadFrom = %v, want timeout net.Error", err)
	}
}

func TestFabricUDPDropHook(t *testing.T) {
	f := NewFabric()
	f.DropUDP = func(from, to Addr) bool { return to.Port == 53 }
	srv, _ := f.Host("10.2.2.2").ListenPacket("udp", ":53")
	defer srv.Close()
	cli, _ := f.Host("10.2.2.3").ListenPacket("udp", ":0")
	defer cli.Close()
	cli.WriteTo([]byte("x"), Addr{Net: "udp", Host: "10.2.2.2", Port: 53})
	srv.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := srv.ReadFrom(make([]byte, 4)); err == nil {
		t.Fatal("datagram should have been dropped")
	}
}

func TestFabricUDPToNowhereDoesNotBlock(t *testing.T) {
	f := NewFabric()
	pc, _ := f.Host("10.3.3.3").ListenPacket("udp", ":1000")
	defer pc.Close()
	done := make(chan struct{})
	go func() {
		pc.WriteTo([]byte("void"), Addr{Net: "udp", Host: "10.255.0.1", Port: 53})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WriteTo to absent endpoint blocked")
	}
}

func TestFabricDialCancelledContext(t *testing.T) {
	f := NewFabric()
	h := f.Host("10.4.4.4")
	l, _ := h.Listen("tcp", ":25")
	defer l.Close()
	// Fill the accept backlog so dial must block, then cancel.
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 16; i++ {
		if _, err := h.DialContext(ctx, "tcp", "10.4.4.4:25"); err != nil {
			t.Fatalf("backlog dial %d: %v", i, err)
		}
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := h.DialContext(ctx, "tcp", "10.4.4.4:25")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("dial = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled dial never returned")
	}
}

func TestHostNetworkQualifiesWildcard(t *testing.T) {
	f := NewFabric()
	l, err := f.Host("203.0.113.9").Listen("tcp", "0.0.0.0:25")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Addr().String(); got != "203.0.113.9:25" {
		t.Fatalf("wildcard listen bound to %q", got)
	}
}

func TestFabricEphemeralPortsDistinct(t *testing.T) {
	f := NewFabric()
	h := f.Host("10.5.5.5")
	a, err := h.ListenPacket("udp", ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := h.ListenPacket("udp", ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.LocalAddr().String() == b.LocalAddr().String() {
		t.Fatalf("ephemeral endpoints collide: %s", a.LocalAddr())
	}
}

func TestConnectedPacketConnFiltersOtherSenders(t *testing.T) {
	f := NewFabric()
	srvA, _ := f.Host("10.6.0.1").ListenPacket("udp", ":53")
	defer srvA.Close()
	intruder, _ := f.Host("10.6.0.66").ListenPacket("udp", ":53")
	defer intruder.Close()

	c, err := f.Host("10.6.0.2").DialContext(context.Background(), "udp", "10.6.0.1:53")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Intruder spoofs a datagram directly into the client's endpoint.
	clientAddr := c.LocalAddr().(Addr)
	intruder.WriteTo([]byte("spoof"), clientAddr)
	// Real peer replies afterwards.
	go func() {
		buf := make([]byte, 64)
		n, from, _ := srvA.ReadFrom(buf)
		srvA.WriteTo(buf[:n], from)
	}()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	c.Write([]byte("legit"))
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "legit" {
		t.Fatalf("connected conn surfaced %q from wrong sender", buf[:n])
	}
}

func TestRealNetworkLoopback(t *testing.T) {
	// Smoke test for the OS-backed implementation.
	var n Real
	l, err := n.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	c, err := n.DialContext(context.Background(), "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("read %q, %v", buf, err)
	}
}
