// Package netsim provides the network fabric abstraction used by every
// protocol component in this repository. A Network hands out connections and
// listeners; the Real implementation delegates to the operating system while
// Fabric is a deterministic in-memory Internet on which thousands of
// simulated mail hosts, DNS servers, and probes exchange genuine byte
// streams and datagrams.
//
// The design follows the substitution rule from DESIGN.md: protocol code
// (SMTP, DNS) is identical whether it runs on real sockets or on the fabric;
// only the dial/listen plumbing differs.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"spfail/internal/clock"
)

// Network abstracts dialing and listening so protocol code can run on the
// real Internet or on an in-memory fabric.
type Network interface {
	// DialContext opens a connection to address ("ip:port").
	// network is "tcp" or "udp".
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
	// Listen starts a stream listener on address.
	Listen(network, address string) (net.Listener, error)
	// ListenPacket starts a datagram endpoint on address.
	ListenPacket(network, address string) (net.PacketConn, error)
}

// Real is a Network backed by the operating system's stack.
type Real struct{}

// DialContext implements Network.
func (Real) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, network, address)
}

// Listen implements Network.
func (Real) Listen(network, address string) (net.Listener, error) {
	return net.Listen(network, address)
}

// ListenPacket implements Network.
func (Real) ListenPacket(network, address string) (net.PacketConn, error) {
	return net.ListenPacket(network, address)
}

// Errors surfaced by the fabric. ErrRefused unwraps from the *net.OpError
// returned by DialContext so callers can use errors.Is.
var (
	ErrRefused     = errors.New("connection refused")
	ErrAddrInUse   = errors.New("address already in use")
	ErrClosed      = net.ErrClosed
	ErrUnreachable = errors.New("host unreachable")
	// ErrReset unwraps from the *net.OpError a fault-injected connection
	// returns once its byte budget is spent.
	ErrReset = errors.New("connection reset by peer")
)

// DialFault tells the fabric how to mistreat one TCP dial. The zero value
// means a healthy dial.
type DialFault struct {
	// Refuse fails the dial with ErrRefused even when a listener exists.
	Refuse bool
	// Blackhole completes the dial but connects it to nothing: every read
	// and write blocks until the connection's deadline expires.
	Blackhole bool
	// Delay tarpits the dial for this long on the fabric clock before it
	// proceeds. Injectors must only delay dials made from goroutines
	// accounted to the simulated clock (in this repository: the prober's
	// port-25 dials), or the clock's bookkeeping is corrupted.
	Delay time.Duration
	// ResetAfter, when positive, resets the connection (ErrReset) after
	// the dialer has read this many bytes.
	ResetAfter int
}

// DatagramVerdict is a fault injector's decision about one datagram.
type DatagramVerdict int

// Datagram verdicts.
const (
	// VerdictPass delivers the (possibly rewritten) datagram normally.
	VerdictPass DatagramVerdict = iota
	// VerdictDrop silently discards the datagram.
	VerdictDrop
	// VerdictReflect bounces the rewritten payload back to the sender as
	// if it came from the destination (used to forge DNS SERVFAILs).
	VerdictReflect
)

// FaultInjector lets a fault engine intercept fabric traffic. Implementations
// must be deterministic functions of stable flow identities — never of the
// fabric clock or of ephemeral ports, both of which depend on goroutine
// interleaving (see internal/faults).
type FaultInjector interface {
	// DialTCP is consulted for every TCP dial; src carries only the
	// dialing host (no port — ephemeral ports are not stable identities).
	DialTCP(src, dst Addr) DialFault
	// Datagram is consulted for every delivered datagram and may rewrite
	// the payload. Returning (nil, VerdictPass) keeps the original bytes.
	Datagram(from, to Addr, payload []byte) ([]byte, DatagramVerdict)
}

// Addr is a fabric address.
type Addr struct {
	Net  string // "tcp" or "udp"
	Host string // IP literal
	Port int
}

// Network implements net.Addr.
func (a Addr) Network() string { return a.Net }

// String implements net.Addr.
func (a Addr) String() string { return net.JoinHostPort(a.Host, strconv.Itoa(a.Port)) }

// Fabric is an in-memory Internet: a switchboard of stream listeners and
// datagram endpoints keyed by "ip:port". The zero value is not usable; call
// NewFabric.
type Fabric struct {
	mu        sync.Mutex
	listeners map[string]*fabricListener
	packet    map[string]*fabricPacketConn
	nextPort  int

	// DropUDP, when non-nil, is consulted for every datagram; returning
	// true silently drops it (used to inject DNS loss in tests).
	DropUDP func(from, to Addr) bool

	// Faults, when non-nil, intercepts dials and datagrams (see
	// internal/faults for the declarative engine). Set before handing out
	// connections.
	Faults FaultInjector

	// Clock is the time source deadlines on fabric connections are
	// enforced against. Campaigns that drive protocol code with a
	// virtual clock set it to the same clock.Sim so deadlines computed
	// as clk.Now().Add(timeout) mean the same thing on both sides. Nil
	// means the real clock. Set before handing out connections.
	Clock clock.Clock
}

func (f *Fabric) clock() clock.Clock {
	if f.Clock != nil {
		return f.Clock
	}
	return clock.Real{}
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		listeners: make(map[string]*fabricListener),
		packet:    make(map[string]*fabricPacketConn),
		nextPort:  40000,
	}
}

// Host returns a Network whose outbound connections originate from ip.
// The source IP is visible to peers via RemoteAddr, which is what SPF
// validation and probe attribution key on.
func (f *Fabric) Host(ip string) Network { return &hostNetwork{f: f, ip: ip} }

type hostNetwork struct {
	f  *Fabric
	ip string
}

func (h *hostNetwork) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return h.f.dial(ctx, h.ip, network, address)
}

func (h *hostNetwork) Listen(network, address string) (net.Listener, error) {
	return h.f.listen(network, h.qualify(address))
}

func (h *hostNetwork) ListenPacket(network, address string) (net.PacketConn, error) {
	return h.f.listenPacket(network, h.qualify(address))
}

// qualify replaces an unspecified host ("", "0.0.0.0", "::") with the host's
// own IP so listeners land on the host's address.
func (h *hostNetwork) qualify(address string) string {
	hostPart, port, err := net.SplitHostPort(address)
	if err != nil {
		return address
	}
	if hostPart == "" || hostPart == "0.0.0.0" || hostPart == "::" {
		return net.JoinHostPort(h.ip, port)
	}
	return address
}

func (f *Fabric) allocPortLocked() int {
	f.nextPort++
	return f.nextPort
}

func splitAddr(network, address string) (Addr, error) {
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: bad address %q: %w", address, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: bad port in %q: %w", address, err)
	}
	return Addr{Net: network, Host: host, Port: port}, nil
}

func (f *Fabric) dial(ctx context.Context, srcIP, network, address string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4", "tcp6":
		return f.dialTCP(ctx, srcIP, address)
	case "udp", "udp4", "udp6":
		return f.dialUDP(srcIP, address)
	default:
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
}

func (f *Fabric) dialTCP(ctx context.Context, srcIP, address string) (net.Conn, error) {
	raddr, err := splitAddr("tcp", address)
	if err != nil {
		return nil, err
	}
	var fault DialFault
	if f.Faults != nil {
		fault = f.Faults.DialTCP(Addr{Net: "tcp", Host: srcIP}, raddr)
	}
	if fault.Delay > 0 {
		if err := f.clock().Sleep(ctx, fault.Delay); err != nil {
			return nil, err
		}
	}
	if fault.Refuse {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: raddr, Err: ErrRefused}
	}
	f.mu.Lock()
	l := f.listeners[raddr.String()]
	laddr := Addr{Net: "tcp", Host: srcIP, Port: f.allocPortLocked()}
	f.mu.Unlock()
	if fault.Blackhole {
		// The dial "succeeds", but the server end of the pipe is discarded:
		// reads and writes hang until the connection deadline expires.
		cli, _ := net.Pipe()
		return &fabricConn{Conn: cli, clk: f.clock(), local: laddr, remote: raddr}, nil
	}
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: raddr, Err: ErrRefused}
	}
	cli, srv := net.Pipe()
	var clientConn net.Conn = &fabricConn{Conn: cli, clk: f.clock(), local: laddr, remote: raddr}
	serverConn := &fabricConn{Conn: srv, clk: f.clock(), local: raddr, remote: laddr}
	if fault.ResetAfter > 0 {
		clientConn = &resetConn{Conn: clientConn, remaining: fault.ResetAfter, raddr: raddr}
	}
	select {
	case l.ch <- serverConn:
		return clientConn, nil
	case <-l.done:
		_ = cli.Close()
		_ = srv.Close()
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: raddr, Err: ErrRefused}
	case <-ctx.Done():
		_ = cli.Close()
		_ = srv.Close()
		return nil, ctx.Err()
	}
}

// resetConn simulates a peer reset: after the dialer has read its byte
// budget, every further read or write fails with ErrReset and the
// underlying pipe is closed so the server side unblocks.
type resetConn struct {
	net.Conn
	raddr Addr

	mu        sync.Mutex
	remaining int
	tripped   bool
}

func (c *resetConn) resetErr(op string) error {
	return &net.OpError{Op: op, Net: "tcp", Addr: c.raddr, Err: ErrReset}
}

// trip closes the wrapped conn once and marks the reset. Caller holds c.mu.
func (c *resetConn) tripLocked() {
	if !c.tripped {
		c.tripped = true
		_ = c.Conn.Close()
	}
}

func (c *resetConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.tripped || c.remaining <= 0 {
		c.tripLocked()
		c.mu.Unlock()
		return 0, c.resetErr("read")
	}
	if len(b) > c.remaining {
		b = b[:c.remaining]
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

func (c *resetConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	tripped := c.tripped
	c.mu.Unlock()
	if tripped {
		return 0, c.resetErr("write")
	}
	return c.Conn.Write(b)
}

// dialUDP returns a connected packet conn presented as a net.Conn.
func (f *Fabric) dialUDP(srcIP, address string) (net.Conn, error) {
	raddr, err := splitAddr("udp", address)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	laddr := Addr{Net: "udp", Host: srcIP, Port: f.allocPortLocked()}
	f.mu.Unlock()
	pc, err := f.listenPacket("udp", laddr.String())
	if err != nil {
		return nil, err
	}
	return &connectedPacketConn{pc: pc.(*fabricPacketConn), remote: raddr}, nil
}

func (f *Fabric) listen(network, address string) (net.Listener, error) {
	if network != "tcp" && network != "tcp4" && network != "tcp6" {
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	addr, err := splitAddr("tcp", address)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if addr.Port == 0 {
		addr.Port = f.allocPortLocked()
	}
	key := addr.String()
	if _, ok := f.listeners[key]; ok {
		return nil, &net.OpError{Op: "listen", Net: "tcp", Addr: addr, Err: ErrAddrInUse}
	}
	l := &fabricListener{
		f:    f,
		addr: addr,
		ch:   make(chan net.Conn, 16),
		done: make(chan struct{}),
	}
	f.listeners[key] = l
	return l, nil
}

func (f *Fabric) listenPacket(network, address string) (net.PacketConn, error) {
	if network != "udp" && network != "udp4" && network != "udp6" {
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	addr, err := splitAddr("udp", address)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if addr.Port == 0 {
		addr.Port = f.allocPortLocked()
	}
	key := addr.String()
	if _, ok := f.packet[key]; ok {
		return nil, &net.OpError{Op: "listen", Net: "udp", Addr: addr, Err: ErrAddrInUse}
	}
	pc := &fabricPacketConn{
		f:    f,
		addr: addr,
		ch:   make(chan datagram, 64),
		done: make(chan struct{}),
	}
	f.packet[key] = pc
	return pc, nil
}

// deliver routes a datagram to its destination endpoint, if any. Datagrams
// to absent endpoints or overflowing inboxes are dropped, as on a real
// network.
func (f *Fabric) deliver(d datagram) {
	if f.DropUDP != nil && f.DropUDP(d.from, d.to) {
		return
	}
	if f.Faults != nil {
		payload, verdict := f.Faults.Datagram(d.from, d.to, d.data)
		switch verdict {
		case VerdictDrop:
			return
		case VerdictReflect:
			d = datagram{from: d.to, to: d.from, data: payload}
		default:
			if payload != nil {
				d.data = payload
			}
		}
	}
	f.mu.Lock()
	pc := f.packet[d.to.String()]
	f.mu.Unlock()
	if pc == nil {
		return
	}
	select {
	case pc.ch <- d:
	case <-pc.done:
	default: // inbox full: drop
	}
}

// fabricConn wraps a net.Pipe end with fabric addresses. Deadlines arrive
// on the fabric clock's timeline and are translated to the wall-clock
// timeline net.Pipe enforces internally; under the real clock the
// translation is the identity.
type fabricConn struct {
	net.Conn
	clk           clock.Clock
	local, remote Addr
}

func (c *fabricConn) LocalAddr() net.Addr  { return c.local }
func (c *fabricConn) RemoteAddr() net.Addr { return c.remote }

// toWall converts a deadline expressed on the fabric clock to the wall
// clock net.Pipe compares against. The remaining budget (t minus virtual
// now) is preserved; a virtual clock that later jumps forward cannot
// retroactively shorten it, which is acceptable for the simulator's
// politeness bounds.
func (c *fabricConn) toWall(t time.Time) time.Time {
	if t.IsZero() {
		return t
	}
	//spfail:allow wallclock translating a virtual deadline onto net.Pipe's wall-clock timeline
	return time.Now().Add(t.Sub(c.clk.Now()))
}

// SetDeadline implements net.Conn on the fabric clock's timeline.
func (c *fabricConn) SetDeadline(t time.Time) error { return c.Conn.SetDeadline(c.toWall(t)) }

// SetReadDeadline implements net.Conn on the fabric clock's timeline.
func (c *fabricConn) SetReadDeadline(t time.Time) error { return c.Conn.SetReadDeadline(c.toWall(t)) }

// SetWriteDeadline implements net.Conn on the fabric clock's timeline.
func (c *fabricConn) SetWriteDeadline(t time.Time) error {
	return c.Conn.SetWriteDeadline(c.toWall(t))
}

// fabricListener implements net.Listener on the fabric.
type fabricListener struct {
	f       *Fabric
	addr    Addr
	ch      chan net.Conn
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

// Accept implements net.Listener.
func (l *fabricListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "tcp", Addr: l.addr, Err: ErrClosed}
	}
}

// Close implements net.Listener.
func (l *fabricListener) Close() error {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.f.mu.Lock()
	delete(l.f.listeners, l.addr.String())
	l.f.mu.Unlock()
	close(l.done)
	return nil
}

// Addr implements net.Listener.
func (l *fabricListener) Addr() net.Addr { return l.addr }

type datagram struct {
	from, to Addr
	data     []byte
}

// fabricPacketConn implements net.PacketConn on the fabric.
type fabricPacketConn struct {
	f    *Fabric
	addr Addr
	ch   chan datagram
	done chan struct{}

	mu       sync.Mutex
	closed   bool
	deadline time.Time
}

// ReadFrom implements net.PacketConn. The deadline is interpreted on the
// fabric clock's timeline: the remaining budget is measured against the
// fabric clock, then waited out in wall time. Fabric datagrams are
// delivered in real microseconds regardless of virtual time, so waiting on
// the virtual clock instead would turn every virtual-time jump (politeness
// sleeps, window gaps) into a scheduling race against in-flight reads.
func (p *fabricPacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	var timeout <-chan time.Time
	clk := p.f.clock()
	p.mu.Lock()
	if !p.deadline.IsZero() {
		d := p.deadline.Sub(clk.Now())
		if d <= 0 {
			p.mu.Unlock()
			return 0, nil, timeoutError{}
		}
		t := time.NewTimer(d) //spfail:allow wallclock virtual budget waited out in wall time; see comment above
		defer t.Stop()
		timeout = t.C
	}
	p.mu.Unlock()
	select {
	case d := <-p.ch:
		n := copy(b, d.data)
		return n, d.from, nil
	case <-p.done:
		return 0, nil, &net.OpError{Op: "read", Net: "udp", Addr: p.addr, Err: ErrClosed}
	case <-timeout:
		return 0, nil, timeoutError{}
	}
}

// WriteTo implements net.PacketConn.
func (p *fabricPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return 0, &net.OpError{Op: "write", Net: "udp", Addr: p.addr, Err: ErrClosed}
	}
	to, err := splitAddr("udp", addr.String())
	if err != nil {
		return 0, err
	}
	p.f.deliver(datagram{from: p.addr, to: to, data: append([]byte(nil), b...)})
	return len(b), nil
}

// Close implements net.PacketConn.
func (p *fabricPacketConn) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	p.f.mu.Lock()
	delete(p.f.packet, p.addr.String())
	p.f.mu.Unlock()
	close(p.done)
	return nil
}

// LocalAddr implements net.PacketConn.
func (p *fabricPacketConn) LocalAddr() net.Addr { return p.addr }

// SetDeadline implements net.PacketConn.
func (p *fabricPacketConn) SetDeadline(t time.Time) error { return p.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (p *fabricPacketConn) SetReadDeadline(t time.Time) error {
	p.mu.Lock()
	p.deadline = t
	p.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.PacketConn. Writes never block.
func (p *fabricPacketConn) SetWriteDeadline(time.Time) error { return nil }

// connectedPacketConn adapts a fabricPacketConn into a connected net.Conn,
// filtering inbound datagrams to the connected peer (as UDP connect does).
type connectedPacketConn struct {
	pc     *fabricPacketConn
	remote Addr
}

// Read implements net.Conn, discarding datagrams from other sources.
func (c *connectedPacketConn) Read(b []byte) (int, error) {
	for {
		n, from, err := c.pc.ReadFrom(b)
		if err != nil {
			return 0, err
		}
		if from.String() == c.remote.String() {
			return n, nil
		}
	}
}

// Write implements net.Conn.
func (c *connectedPacketConn) Write(b []byte) (int, error) {
	return c.pc.WriteTo(b, c.remote)
}

// Close implements net.Conn.
func (c *connectedPacketConn) Close() error { return c.pc.Close() }

// LocalAddr implements net.Conn.
func (c *connectedPacketConn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *connectedPacketConn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *connectedPacketConn) SetDeadline(t time.Time) error { return c.pc.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *connectedPacketConn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *connectedPacketConn) SetWriteDeadline(t time.Time) error { return c.pc.SetWriteDeadline(t) }

// timeoutError matches net.Error semantics for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var (
	_ Network        = Real{}
	_ Network        = (*hostNetwork)(nil)
	_ net.Listener   = (*fabricListener)(nil)
	_ net.PacketConn = (*fabricPacketConn)(nil)
	_ net.Conn       = (*connectedPacketConn)(nil)
	_ net.Error      = timeoutError{}
)
