package netsim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestFabricManyConcurrentSessions exercises the switchboard under the
// kind of load a measurement wave produces: many servers, many clients,
// full-duplex exchanges.
func TestFabricManyConcurrentSessions(t *testing.T) {
	f := NewFabric()
	const servers = 40
	const clientsPerServer = 5

	var listeners []string
	for i := 0; i < servers; i++ {
		ip := fmt.Sprintf("10.10.%d.%d", i/250, i%250+1)
		l, err := f.Host(ip).Listen("tcp", ":25")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		listeners = append(listeners, l.Addr().String())
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func() {
					defer c.Close()
					io.Copy(c, c)
				}()
			}
		}()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, servers*clientsPerServer)
	for i, addr := range listeners {
		for j := 0; j < clientsPerServer; j++ {
			wg.Add(1)
			go func(i, j int, addr string) {
				defer wg.Done()
				cli := f.Host(fmt.Sprintf("10.20.%d.%d", i%200, j+1))
				c, err := cli.DialContext(context.Background(), "tcp", addr)
				if err != nil {
					errCh <- fmt.Errorf("dial %s: %w", addr, err)
					return
				}
				defer c.Close()
				c.SetDeadline(time.Now().Add(10 * time.Second))
				msg := []byte(fmt.Sprintf("hello %d/%d from client", i, j))
				if _, err := c.Write(msg); err != nil {
					errCh <- err
					return
				}
				buf := make([]byte, len(msg))
				if _, err := io.ReadFull(c, buf); err != nil {
					errCh <- err
					return
				}
				if string(buf) != string(msg) {
					errCh <- fmt.Errorf("echo mismatch: %q", buf)
				}
			}(i, j, addr)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestFabricUDPConcurrentEndpoints floods many datagram endpoints.
func TestFabricUDPConcurrentEndpoints(t *testing.T) {
	f := NewFabric()
	const n = 50
	srv, err := f.Host("10.30.0.1").ListenPacket("udp", ":53")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Echo server.
	go func() {
		buf := make([]byte, 1024)
		for {
			rn, from, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			srv.WriteTo(buf[:rn], from)
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := f.Host(fmt.Sprintf("10.30.1.%d", i+1)).DialContext(context.Background(), "udp", "10.30.0.1:53")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			payload := []byte(fmt.Sprintf("q%d", i))
			c.Write(payload)
			buf := make([]byte, 64)
			rn, err := c.Read(buf)
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if string(buf[:rn]) == string(payload) {
				mu.Lock()
				got++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if got != n {
		t.Fatalf("echoed %d/%d datagrams", got, n)
	}
}
