package obs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/telemetry"
)

// DefaultBudgetInterval is the watchdog poll cadence when none is set.
const DefaultBudgetInterval = 250 * time.Millisecond

// DefaultMaxProfiles bounds automatic heap-profile capture per run.
const DefaultMaxProfiles = 3

// Budget is a resident-set-size envelope for a run. Zero limits are
// unenforced; a Budget with neither limit set is disabled.
type Budget struct {
	// SoftRSS, when > 0, is the degradation threshold in bytes: above it
	// the watchdog triggers the soft-breach hook (typically halving the
	// campaign batch size), forces a GC + scavenge, and captures a heap
	// profile into ProfileDir.
	SoftRSS int64
	// HardRSS, when > 0, is the failure threshold: above it the run is
	// stopped with a *BudgetError instead of waiting for the OOM killer.
	HardRSS int64
	// Interval is the poll cadence (DefaultBudgetInterval when ≤ 0).
	Interval time.Duration
	// ProfileDir, when non-empty, receives heap-NNN.pprof captures on
	// soft breaches (at most MaxProfiles per run). Studies point it at
	// the checkpoint directory.
	ProfileDir string
	// MaxProfiles caps captures (DefaultMaxProfiles when 0; negative
	// disables capture).
	MaxProfiles int
}

// Enabled reports whether the budget enforces anything.
func (b Budget) Enabled() bool { return b.SoftRSS > 0 || b.HardRSS > 0 }

// ErrBudgetExceeded is the sentinel all hard-breach errors wrap.
var ErrBudgetExceeded = errors.New("memory budget exceeded")

// BudgetError reports a hard RSS breach.
type BudgetError struct {
	// RSS is the observed resident set; Limit the configured HardRSS.
	RSS, Limit int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("obs: memory budget exceeded: rss %d bytes over hard limit %d bytes", e.RSS, e.Limit)
}

// Unwrap ties BudgetError to ErrBudgetExceeded for errors.Is.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Watchdog polls RSS against a Budget on its own wall-clock goroutine.
// Hooks are invoked from that goroutine, so they must be safe to call
// concurrently with the run they degrade — Campaign.SetBatchSize is.
//
// Budget metrics (budget.soft_breaches, budget.hard_breaches,
// budget.profiles_captured) land in the registry; see docs/telemetry.md.
type Watchdog struct {
	budget Budget
	reg    *telemetry.Registry
	clk    clock.Clock

	mu        sync.Mutex
	onSoft    func(rss int64) // guarded by mu
	onHard    func(err error) // guarded by mu
	profiles  int             // guarded by mu
	hardFired bool            // guarded by mu

	cancel context.CancelFunc
	done   chan struct{}
}

// NewWatchdog builds a watchdog for b publishing breach counters into reg
// and pacing itself on clk (pass clock.Real{} in production; a virtual
// clock makes breaches deterministic in tests).
func NewWatchdog(b Budget, reg *telemetry.Registry, clk clock.Clock) *Watchdog {
	if clk == nil {
		clk = clock.Real{}
	}
	if b.Interval <= 0 {
		b.Interval = DefaultBudgetInterval
	}
	if b.MaxProfiles == 0 {
		b.MaxProfiles = DefaultMaxProfiles
	}
	return &Watchdog{budget: b, reg: reg, clk: clk}
}

// OnSoftBreach installs the degradation hook, called with the observed
// RSS on every soft breach (after the profile capture, before the forced
// GC).
func (w *Watchdog) OnSoftBreach(fn func(rss int64)) {
	w.mu.Lock()
	w.onSoft = fn
	w.mu.Unlock()
}

// OnHardBreach installs the failure hook, called at most once with a
// *BudgetError. The hook typically cancels the run's context.
func (w *Watchdog) OnHardBreach(fn func(err error)) {
	w.mu.Lock()
	w.onHard = fn
	w.mu.Unlock()
}

// Poll takes one enforcement step; the background loop repeats it. It is
// exported for deterministic tests and for callers that want an explicit
// check at a known point.
func (w *Watchdog) Poll() {
	rss := readRSS()
	if w.budget.HardRSS > 0 && rss > w.budget.HardRSS {
		w.mu.Lock()
		fired := w.hardFired
		w.hardFired = true
		fn := w.onHard
		w.mu.Unlock()
		if !fired {
			w.reg.Counter("budget.hard_breaches").Inc()
			if fn != nil {
				fn(&BudgetError{RSS: rss, Limit: w.budget.HardRSS})
			}
		}
		return
	}
	if w.budget.SoftRSS > 0 && rss > w.budget.SoftRSS {
		w.reg.Counter("budget.soft_breaches").Inc()
		w.captureProfile()
		w.mu.Lock()
		fn := w.onSoft
		w.mu.Unlock()
		if fn != nil {
			fn(rss)
		}
		// Two back-to-back collections fully drain every sync.Pool (one
		// moves contents to the victim cache, the next drops it), and the
		// scavenge inside FreeOSMemory returns the freed pages to the OS —
		// which is what moves the RSS this budget is written against.
		runtime.GC()
		debug.FreeOSMemory()
	}
}

// captureProfile writes a numbered heap profile into ProfileDir, up to
// MaxProfiles per run. Failures are recorded (budget.profile_errors) and
// otherwise ignored: profiling is diagnostics, not control flow.
func (w *Watchdog) captureProfile() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.budget.ProfileDir == "" || w.budget.MaxProfiles < 0 || w.profiles >= w.budget.MaxProfiles {
		return
	}
	w.profiles++
	name := filepath.Join(w.budget.ProfileDir, fmt.Sprintf("heap-%03d.pprof", w.profiles))
	f, err := os.Create(name)
	if err != nil {
		w.reg.Counter("budget.profile_errors").Inc()
		return
	}
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		w.reg.Counter("budget.profile_errors").Inc()
		return
	}
	w.reg.Counter("budget.profiles_captured").Inc()
}

// Start launches the polling loop; it is a no-op for a disabled budget.
func (w *Watchdog) Start() {
	if !w.budget.Enabled() || w.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	done := make(chan struct{})
	w.done = done
	go func() {
		defer close(done)
		// One immediate check so even a run shorter than the poll interval
		// enforces its budget at least once (Stop waits on this goroutine,
		// so the check is sequenced before the run reports its metrics).
		w.Poll()
		for {
			if err := w.clk.Sleep(ctx, w.budget.Interval); err != nil {
				return
			}
			w.Poll()
		}
	}()
}

// Stop ends the polling loop.
func (w *Watchdog) Stop() {
	if w.cancel == nil {
		return
	}
	w.cancel()
	<-w.done
	w.cancel = nil
}

// ParseBytes parses a human byte size: a number with an optional binary
// ("512MiB", "2g") or decimal ("500MB") suffix; a bare number is bytes.
// Single-letter suffixes are binary, matching how memory limits are
// usually meant.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("obs: empty byte size")
	}
	mult := float64(1)
	for _, suf := range []struct {
		tag string
		m   float64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30}, {"tib", 1 << 40},
		{"kb", 1e3}, {"mb", 1e6}, {"gb", 1e9}, {"tb", 1e12},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}, {"t", 1 << 40},
		{"b", 1},
	} {
		if strings.HasSuffix(t, suf.tag) {
			mult = suf.m
			t = strings.TrimSpace(strings.TrimSuffix(t, suf.tag))
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("obs: bad byte size %q", s)
	}
	return int64(v * mult), nil
}
