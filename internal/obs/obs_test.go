package obs

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/telemetry"
)

func TestCollectorSamplePublishes(t *testing.T) {
	reg := telemetry.New()
	c := NewCollector(reg, clock.Real{}, time.Second)
	runtime.GC() // guarantee at least one cycle and some pause samples
	c.Sample()

	snap := reg.Snapshot()
	for _, gauge := range []string{
		"runtime.heap.live_bytes",
		"runtime.heap.goal_bytes",
		"runtime.mem.rss_bytes",
		"runtime.sched.goroutines",
	} {
		g, ok := snap.Gauges[gauge]
		if !ok {
			t.Fatalf("gauge %s not published; have %v", gauge, snap.Gauges)
		}
		if g.Value <= 0 {
			t.Errorf("gauge %s = %d, want > 0", gauge, g.Value)
		}
	}
	if got := snap.Counters["runtime.obs.samples"]; got != 1 {
		t.Errorf("runtime.obs.samples = %d, want 1", got)
	}
	if got := snap.Counters["runtime.gc.cycles"]; got < 1 {
		t.Errorf("runtime.gc.cycles = %d, want ≥ 1 after a forced GC", got)
	}
	if got := snap.Counters["runtime.heap.alloc_bytes"]; got <= 0 {
		t.Errorf("runtime.heap.alloc_bytes = %d, want > 0", got)
	}
	if h, ok := snap.Histograms["runtime.gc.pause"]; !ok || h.Count < 1 {
		t.Errorf("runtime.gc.pause count = %+v, want ≥ 1 observation", h)
	}
	if c.RSS() <= 0 {
		t.Errorf("RSS() = %d, want > 0", c.RSS())
	}
	if c.PeakRSS() < c.RSS() {
		t.Errorf("PeakRSS() = %d < RSS() %d", c.PeakRSS(), c.RSS())
	}
}

func TestCollectorStartStop(t *testing.T) {
	reg := telemetry.New()
	c := NewCollector(reg, clock.Real{}, time.Millisecond)
	c.Start()
	c.Start() // idempotent
	deadline := clock.Real{}.Now().Add(5 * time.Second)
	for reg.Counter("runtime.obs.samples").Value() < 2 {
		if (clock.Real{}).Now().After(deadline) {
			t.Fatal("collector loop produced no samples")
		}
		runtime.Gosched()
	}
	c.Stop()
	after := reg.Counter("runtime.obs.samples").Value()
	if after < 3 { // ≥2 from the loop plus the final Stop sample
		t.Fatalf("samples after Stop = %d, want ≥ 3", after)
	}
	c.Stop() // idempotent
}

func TestStageProbeDeltas(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	defer sim.Close()
	p := BeginStage(sim, nil)
	sim.Advance(42 * time.Second)
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.GC()
	res := p.End("initial")
	_ = sink
	if res.Stage != "initial" {
		t.Errorf("Stage = %q", res.Stage)
	}
	if res.AllocBytes < 64*(64<<10) {
		t.Errorf("AllocBytes = %d, want ≥ %d", res.AllocBytes, 64*(64<<10))
	}
	if res.AllocObjects == 0 {
		t.Error("AllocObjects = 0, want > 0")
	}
	if res.GCCycles < 1 {
		t.Errorf("GCCycles = %d, want ≥ 1 after forced GC", res.GCCycles)
	}
	if res.Virtual != 42*time.Second {
		t.Errorf("Virtual = %v, want 42s", res.Virtual)
	}
	if res.Wall < 0 {
		t.Errorf("Wall = %v, want ≥ 0", res.Wall)
	}
	if res.PeakRSS <= 0 {
		t.Errorf("PeakRSS = %d, want > 0", res.PeakRSS)
	}
}

func TestAllocSamplerDelta(t *testing.T) {
	var s AllocSampler
	before := s.Sample()
	buf := make([]byte, 1<<20)
	_ = buf
	after := s.Sample()
	d := after.Sub(before)
	if d.Bytes < 1<<20 {
		t.Errorf("alloc delta = %d bytes, want ≥ 1MiB", d.Bytes)
	}
	if d.Objects == 0 {
		t.Error("alloc delta objects = 0")
	}
}

func TestWatchdogSoftBreach(t *testing.T) {
	reg := telemetry.New()
	dir := t.TempDir()
	w := NewWatchdog(Budget{SoftRSS: 1, ProfileDir: dir, MaxProfiles: 2}, reg, clock.Real{})
	var degraded []int64
	w.OnSoftBreach(func(rss int64) { degraded = append(degraded, rss) })

	w.Poll()
	w.Poll()
	w.Poll()

	if got := reg.Counter("budget.soft_breaches").Value(); got != 3 {
		t.Errorf("budget.soft_breaches = %d, want 3", got)
	}
	if len(degraded) != 3 || degraded[0] <= 1 {
		t.Errorf("degrade hook calls = %v, want 3 calls with rss > 1", degraded)
	}
	if got := reg.Counter("budget.profiles_captured").Value(); got != 2 {
		t.Errorf("budget.profiles_captured = %d, want 2 (capped)", got)
	}
	for _, name := range []string{"heap-001.pprof", "heap-002.pprof"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "heap-003.pprof")); !os.IsNotExist(err) {
		t.Error("profile capture exceeded MaxProfiles")
	}
}

func TestWatchdogHardBreach(t *testing.T) {
	reg := telemetry.New()
	w := NewWatchdog(Budget{SoftRSS: 1, HardRSS: 2}, reg, clock.Real{})
	var hardErr error
	softs := 0
	w.OnSoftBreach(func(int64) { softs++ })
	w.OnHardBreach(func(err error) { hardErr = err })

	w.Poll()
	w.Poll() // hard hook fires once

	if hardErr == nil {
		t.Fatal("hard hook not called")
	}
	if !errors.Is(hardErr, ErrBudgetExceeded) {
		t.Errorf("hard error %v does not wrap ErrBudgetExceeded", hardErr)
	}
	var be *BudgetError
	if !errors.As(hardErr, &be) || be.Limit != 2 || be.RSS <= 2 {
		t.Errorf("hard error = %#v, want BudgetError{RSS>2, Limit:2}", hardErr)
	}
	if got := reg.Counter("budget.hard_breaches").Value(); got != 1 {
		t.Errorf("budget.hard_breaches = %d, want 1 (latched)", got)
	}
	if softs != 0 {
		t.Errorf("soft hook ran %d times above the hard limit, want 0", softs)
	}
}

func TestWatchdogStartStopLoop(t *testing.T) {
	reg := telemetry.New()
	w := NewWatchdog(Budget{SoftRSS: 1, Interval: time.Millisecond, MaxProfiles: -1}, reg, clock.Real{})
	w.Start()
	deadline := clock.Real{}.Now().Add(5 * time.Second)
	for reg.Counter("budget.soft_breaches").Value() == 0 {
		if (clock.Real{}).Now().After(deadline) {
			t.Fatal("watchdog loop never breached a 1-byte soft budget")
		}
		runtime.Gosched()
	}
	w.Stop()
	w.Stop()
	// Disabled budgets must not spin a goroutine.
	idle := NewWatchdog(Budget{}, reg, clock.Real{})
	idle.Start()
	if idle.cancel != nil {
		t.Error("disabled watchdog started a loop")
	}
}

func TestBudgetEnabled(t *testing.T) {
	if (Budget{}).Enabled() {
		t.Error("zero budget reports enabled")
	}
	if !(Budget{SoftRSS: 1}).Enabled() || !(Budget{HardRSS: 1}).Enabled() {
		t.Error("limited budget reports disabled")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1024", 1024, true},
		{"64MiB", 64 << 20, true},
		{"512mib", 512 << 20, true},
		{"2GiB", 2 << 30, true},
		{"1.5g", 3 << 29, true},
		{"500MB", 500_000_000, true},
		{"128k", 128 << 10, true},
		{"10b", 10, true},
		{" 8 MiB ", 8 << 20, true},
		{"", 0, false},
		{"-5", 0, false},
		{"MiB", 0, false},
		{"12q", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseBytes(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestReadRSSPositive(t *testing.T) {
	if got := readRSS(); got <= 0 {
		t.Fatalf("readRSS() = %d, want > 0", got)
	}
}
