package obs

import (
	"runtime/metrics"
	"time"

	"spfail/internal/clock"
)

// StageResources is the resource delta one study stage cost: what the
// process allocated, how the heap moved, how many GC cycles ran, and how
// long the stage took on both timelines. It is the row type of the
// report's resource table and is stored alongside (never inside) the
// deterministic stage payload in checkpoint segments.
type StageResources struct {
	// Stage is the stage name ("resolve", "initial", "round-003", …).
	Stage string `json:"stage"`
	// Wall is the stage's wall-clock duration; Virtual is its span on the
	// study's (possibly simulated) clock.
	Wall    time.Duration `json:"wall_ns"`
	Virtual time.Duration `json:"virtual_ns"`
	// AllocBytes/AllocObjects are process-wide heap allocations performed
	// during the stage (cumulative-counter deltas; freed memory included).
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// HeapGrowth is the change in live heap bytes across the stage —
	// negative when a GC shrank the live set below the starting point.
	HeapGrowth int64 `json:"heap_growth_bytes"`
	// GCCycles is how many collection cycles completed during the stage.
	GCCycles uint64 `json:"gc_cycles"`
	// PeakRSS is the largest resident set observed during the stage: the
	// max of the boundary readings and, when a Collector is polling, its
	// high-water mark over the window.
	PeakRSS int64 `json:"peak_rss_bytes"`
	// Replayed marks rows restored from a checkpoint segment — the
	// resources the stage cost when it originally executed, not in this
	// process.
	Replayed bool `json:"replayed,omitempty"`
}

// StageProbe captures the "before" edge of a stage resource delta. Begin
// it when the stage starts executing, End it at commit.
type StageProbe struct {
	virt clock.Clock
	coll *Collector

	samples [4]metrics.Sample

	wallStart time.Time
	virtStart time.Time
	alloc0    AllocCounts
	heap0     uint64
	gc0       uint64
	rss0      int64
	peak0     int64
}

const (
	stageSlotHeapLive = iota
	stageSlotGCCycles
	stageSlotAllocBytes
	stageSlotAllocObjects
)

func (p *StageProbe) read() (heap, gc uint64, alloc AllocCounts) {
	if p.samples[0].Name == "" {
		p.samples[stageSlotHeapLive].Name = keyHeapLive
		p.samples[stageSlotGCCycles].Name = keyGCCycles
		p.samples[stageSlotAllocBytes].Name = keyAllocBytes
		p.samples[stageSlotAllocObjects].Name = keyAllocObjects
	}
	metrics.Read(p.samples[:])
	return p.samples[stageSlotHeapLive].Value.Uint64(),
		p.samples[stageSlotGCCycles].Value.Uint64(),
		AllocCounts{
			Bytes:   p.samples[stageSlotAllocBytes].Value.Uint64(),
			Objects: p.samples[stageSlotAllocObjects].Value.Uint64(),
		}
}

// BeginStage snapshots the resource baseline for a stage. virt is the
// study's clock (nil leaves Virtual zero); coll, when non-nil, sharpens
// PeakRSS with the collector's polled high-water mark.
func BeginStage(virt clock.Clock, coll *Collector) *StageProbe {
	p := &StageProbe{virt: virt, coll: coll}
	p.heap0, p.gc0, p.alloc0 = p.read()
	p.rss0 = readRSS()
	if coll != nil {
		p.peak0 = coll.PeakRSS()
	}
	p.wallStart = clock.Real{}.Now()
	if virt != nil {
		p.virtStart = virt.Now()
	}
	return p
}

// End closes the window and returns the stage's resource delta.
func (p *StageProbe) End(stage string) StageResources {
	heap1, gc1, alloc1 := p.read()
	rss1 := readRSS()
	peak := p.rss0
	if rss1 > peak {
		peak = rss1
	}
	if p.coll != nil {
		if cp := p.coll.PeakRSS(); cp > p.peak0 && cp > peak {
			peak = cp
		}
	}
	res := StageResources{
		Stage:        stage,
		Wall:         clock.Real{}.Now().Sub(p.wallStart),
		AllocBytes:   alloc1.Bytes - p.alloc0.Bytes,
		AllocObjects: alloc1.Objects - p.alloc0.Objects,
		HeapGrowth:   int64(heap1) - int64(p.heap0),
		GCCycles:     gc1 - p.gc0,
		PeakRSS:      peak,
	}
	if p.virt != nil {
		res.Virtual = p.virt.Now().Sub(p.virtStart)
	}
	return res
}
