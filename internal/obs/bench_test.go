package obs

import (
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/telemetry"
)

// BenchmarkRuntimeSample measures one collector poll: a runtime/metrics
// read plus publishing every runtime.* instrument. The sampler runs once
// a second inside studies, so its own allocation footprint must stay
// flat — CI gates allocs/op on this benchmark.
func BenchmarkRuntimeSample(b *testing.B) {
	reg := telemetry.New()
	c := NewCollector(reg, clock.Real{}, time.Second)
	c.Sample() // warm: histogram buckets and prev slices allocate once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample()
	}
	b.StopTimer()
	b.ReportMetric(float64(c.PeakRSS()), "peak-rss-bytes")
	if testing.AllocsPerRun(10, func() { c.Sample() }) > 8 {
		b.Fatal("Collector.Sample allocates in steady state")
	}
}

// BenchmarkStageProbe measures a full Begin/End stage-attribution pair,
// the per-stage overhead the study runner adds at each commit.
func BenchmarkStageProbe(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := BeginStage(nil, nil)
		_ = p.End("bench")
	}
}
