// Package obs is the runtime resource observability layer: it watches what
// the process itself costs — heap, GC, goroutines, scheduler latency,
// resident set size — the way internal/telemetry watches what the
// measurement does.
//
// Three tiers build on each other:
//
//   - Collector polls runtime/metrics on a wall-clock cadence and publishes
//     runtime.* gauges, counters, and histograms into a telemetry.Registry,
//     so live campaigns expose their resource envelope on /metrics and in
//     --metrics JSON.
//   - StageProbe captures before/after deltas (allocations, heap growth,
//     GC cycles, wall and virtual time, peak RSS) around a study stage,
//     producing the StageResources rows of the report's resource table.
//   - Watchdog enforces a Budget{SoftRSS, HardRSS}: a soft breach triggers
//     graceful degradation (the caller's hook, typically halving the
//     campaign batch size), a forced GC, and an automatic heap profile; a
//     hard breach fails the run with a structured error instead of an OOM
//     kill.
//
// Resource numbers are a side channel by construction: nothing in this
// package feeds the seeded report or trace bytes, so budgeted and
// unbudgeted same-seed runs stay byte-identical.
package obs

import (
	"runtime/metrics"
	"sync"
)

// runtime/metrics keys the package samples. All of them exist since
// go1.20, well below the module's minimum.
const (
	keyHeapLive     = "/memory/classes/heap/objects:bytes"
	keyHeapGoal     = "/gc/heap/goal:bytes"
	keyGoroutines   = "/sched/goroutines:goroutines"
	keyGCCycles     = "/gc/cycles/total:gc-cycles"
	keyAllocBytes   = "/gc/heap/allocs:bytes"
	keyAllocObjects = "/gc/heap/allocs:objects"
	keyGCPauses     = "/gc/pauses:seconds"
	keySchedLat     = "/sched/latencies:seconds"
	keyMemTotal     = "/memory/classes/total:bytes"
)

// AllocCounts is a cumulative heap-allocation reading: total bytes and
// objects allocated since process start (freed memory included — these
// only grow).
type AllocCounts struct {
	Bytes   uint64
	Objects uint64
}

// Sub returns the delta a−b, the allocations performed between the two
// readings.
func (a AllocCounts) Sub(b AllocCounts) AllocCounts {
	return AllocCounts{Bytes: a.Bytes - b.Bytes, Objects: a.Objects - b.Objects}
}

// AllocSampler reads cumulative allocation counters with reusable sample
// storage: after the first call, Sample performs no heap allocations, so
// hot paths (the campaign samples at every batch-wave boundary) can use it
// freely. The zero value is ready to use; a sampler must not be shared
// between goroutines without external locking.
type AllocSampler struct {
	samples [2]metrics.Sample
	ready   bool
}

// Sample returns the current cumulative allocation counters.
func (s *AllocSampler) Sample() AllocCounts {
	if !s.ready {
		s.samples[0].Name = keyAllocBytes
		s.samples[1].Name = keyAllocObjects
		s.ready = true
	}
	metrics.Read(s.samples[:])
	return AllocCounts{
		Bytes:   s.samples[0].Value.Uint64(),
		Objects: s.samples[1].Value.Uint64(),
	}
}

// fallbackRSS approximates the resident set with the Go runtime's total
// mapped memory when the platform offers no direct reading. It undercounts
// non-Go mappings but keeps budget semantics meaningful everywhere.
var (
	fallbackMu     sync.Mutex
	fallbackSample [1]metrics.Sample // guarded by fallbackMu
)

func fallbackRSS() int64 {
	fallbackMu.Lock()
	defer fallbackMu.Unlock()
	if fallbackSample[0].Name == "" {
		fallbackSample[0].Name = keyMemTotal
	}
	metrics.Read(fallbackSample[:])
	return int64(fallbackSample[0].Value.Uint64())
}
