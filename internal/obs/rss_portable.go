//go:build !linux

package obs

// readRSS approximates RSS with the Go runtime's mapped-memory total on
// platforms without a procfs reading.
func readRSS() int64 { return fallbackRSS() }
