package obs

import (
	"context"
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"spfail/internal/clock"
	"spfail/internal/telemetry"
)

// DefaultSampleInterval is the collector cadence when none is configured.
const DefaultSampleInterval = time.Second

// Collector polls runtime/metrics and publishes the readings as
// runtime.* instruments in a telemetry.Registry (see docs/telemetry.md
// for the inventory). Sample storage is allocated once, so steady-state
// polling does not itself disturb the allocation numbers it reports.
//
// The collector runs on the injected clock — production callers pass
// clock.Real{}; a study on a virtual clock still samples on the wall
// timeline, because resource usage is a wall-time phenomenon. Start,
// Stop, and Sample are not safe to call concurrently with each other;
// the accessors (RSS, PeakRSS) are safe from any goroutine.
type Collector struct {
	reg      *telemetry.Registry
	clk      clock.Clock
	interval time.Duration

	mu         sync.Mutex
	samples    []metrics.Sample // guarded by mu
	prevGC     uint64           // guarded by mu
	prevAlloc  uint64           // guarded by mu
	prevPauses []uint64         // guarded by mu
	prevSched  []uint64         // guarded by mu

	lastRSS atomic.Int64
	peakRSS atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
}

// collectorKeys lists the sampled metrics in fixed slot order.
var collectorKeys = [...]string{
	keyHeapLive,
	keyHeapGoal,
	keyGoroutines,
	keyGCCycles,
	keyAllocBytes,
	keyGCPauses,
	keySchedLat,
}

const (
	slotHeapLive = iota
	slotHeapGoal
	slotGoroutines
	slotGCCycles
	slotAllocBytes
	slotGCPauses
	slotSchedLat
)

// NewCollector builds a collector publishing into reg every interval
// (DefaultSampleInterval when interval ≤ 0) on clk's timeline.
func NewCollector(reg *telemetry.Registry, clk clock.Clock, interval time.Duration) *Collector {
	if clk == nil {
		clk = clock.Real{}
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	c := &Collector{reg: reg, clk: clk, interval: interval}
	c.mu.Lock()
	c.samples = make([]metrics.Sample, len(collectorKeys))
	for i, k := range collectorKeys {
		c.samples[i].Name = k
	}
	c.mu.Unlock()
	return c
}

// Sample takes one poll: reads runtime/metrics and RSS, and publishes the
// results. It is the unit the background loop repeats and is exported so
// callers can force a final reading before snapshotting the registry.
func (c *Collector) Sample() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)

	c.reg.Gauge("runtime.heap.live_bytes").Set(int64(c.samples[slotHeapLive].Value.Uint64()))
	c.reg.Gauge("runtime.heap.goal_bytes").Set(int64(c.samples[slotHeapGoal].Value.Uint64()))
	c.reg.Gauge("runtime.sched.goroutines").Set(int64(c.samples[slotGoroutines].Value.Uint64()))

	if gc := c.samples[slotGCCycles].Value.Uint64(); gc > c.prevGC {
		c.reg.Counter("runtime.gc.cycles").Add(int64(gc - c.prevGC))
		c.prevGC = gc
	}
	if alloc := c.samples[slotAllocBytes].Value.Uint64(); alloc > c.prevAlloc {
		c.reg.Counter("runtime.heap.alloc_bytes").Add(int64(alloc - c.prevAlloc))
		c.prevAlloc = alloc
	}

	c.foldHistogram(c.reg.Histogram("runtime.gc.pause"), c.samples[slotGCPauses].Value.Float64Histogram(), &c.prevPauses)
	c.foldHistogram(c.reg.Histogram("runtime.sched.latency"), c.samples[slotSchedLat].Value.Float64Histogram(), &c.prevSched)

	rss := readRSS()
	c.lastRSS.Store(rss)
	raiseMax(&c.peakRSS, rss)
	c.reg.Gauge("runtime.mem.rss_bytes").Set(rss)
	c.reg.Counter("runtime.obs.samples").Inc()
}

// foldHistogram feeds the per-bucket growth of a runtime histogram into a
// telemetry histogram, one RecordN per bucket that moved. Buckets are
// attributed to their upper bound (the runtime's buckets are fine-grained
// enough that the coarser telemetry buckets dominate the rounding).
func (c *Collector) foldHistogram(h *telemetry.Histogram, cur *metrics.Float64Histogram, prev *[]uint64) {
	if cur == nil {
		return
	}
	counts := cur.Counts
	bounds := cur.Buckets
	if len(*prev) != len(counts) {
		*prev = make([]uint64, len(counts))
	}
	for i, n := range counts {
		d := n - (*prev)[i]
		if d == 0 {
			continue
		}
		(*prev)[i] = n
		upper := bounds[i+1]
		if math.IsInf(upper, +1) {
			upper = bounds[i]
		}
		if math.IsInf(upper, -1) || upper < 0 {
			upper = 0
		}
		h.RecordN(time.Duration(upper*float64(time.Second)), int64(d))
	}
}

// RSS returns the resident set size from the latest Sample.
func (c *Collector) RSS() int64 { return c.lastRSS.Load() }

// PeakRSS returns the largest RSS any Sample has observed. Stage probes
// compare it across their window to attribute a peak to a stage.
func (c *Collector) PeakRSS() int64 { return c.peakRSS.Load() }

// Start launches the background sampling loop. Stop (or nothing — the
// goroutine is harmless at process exit) ends it.
func (c *Collector) Start() {
	if c.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	done := make(chan struct{})
	c.done = done
	go func() {
		defer close(done)
		for {
			c.Sample()
			if err := c.clk.Sleep(ctx, c.interval); err != nil {
				return
			}
		}
	}()
}

// Stop ends the background loop and takes one final Sample so registry
// snapshots taken at exit reflect the end state.
func (c *Collector) Stop() {
	if c.cancel == nil {
		return
	}
	c.cancel()
	<-c.done
	c.cancel = nil
	c.Sample()
}

// raiseMax lifts the atomic to at least v.
func raiseMax(a *atomic.Int64, v int64) {
	for {
		m := a.Load()
		if v <= m || a.CompareAndSwap(m, v) {
			return
		}
	}
}
