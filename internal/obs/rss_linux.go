//go:build linux

package obs

import (
	"os"
	"sync"
)

// /proc/self/statm is the cheapest RSS source on Linux: a handful of
// space-separated page counts, readable with one pread and no parsing
// beyond two integer fields. The file is opened once and shared — pread
// is offset-independent, so concurrent readers need no lock.
var (
	statmOnce sync.Once
	statmFile *os.File
	statmPage int64
)

// readRSS returns the process resident set size in bytes, falling back to
// the Go runtime's mapped-memory total if procfs is unavailable (e.g. in
// a stripped-down container).
func readRSS() int64 {
	statmOnce.Do(func() {
		statmPage = int64(os.Getpagesize())
		if f, err := os.Open("/proc/self/statm"); err == nil {
			statmFile = f
		}
	})
	if statmFile == nil {
		return fallbackRSS()
	}
	var buf [96]byte
	n, _ := statmFile.ReadAt(buf[:], 0)
	if n <= 0 {
		return fallbackRSS()
	}
	// Fields: size resident shared text lib data dt — we want the second.
	i := 0
	for i < n && buf[i] != ' ' {
		i++
	}
	i++
	var pages int64
	for i < n && buf[i] >= '0' && buf[i] <= '9' {
		pages = pages*10 + int64(buf[i]-'0')
		i++
	}
	if pages == 0 {
		return fallbackRSS()
	}
	return pages * statmPage
}
