package measure

import (
	"context"
	"net/netip"
	"sort"

	"spfail/internal/core"
	"spfail/internal/mta"
	"spfail/internal/population"
	"spfail/internal/spf"
	"spfail/internal/trace"
)

// defaultAttackerIP is the forged message's source: a TEST-NET-3 address
// no generated policy ever authorizes.
var defaultAttackerIP = netip.MustParseAddr("203.0.113.66")

// SpoofSurvey judges every world domain from the receiver's perspective:
// can an attacker deliver a message forging the domain's From identity?
// Evaluation runs through the rig's real resolution path — check_host
// consumes its RFC 7208 lookup and void budgets against the sim DNS
// server over the wire, then DMARC discovery runs on the same resolver —
// so scenario effects (permerror via the lookup limit, alignment-gap
// deliveries) are measured, not assumed.
type SpoofSurvey struct {
	Rig *Rig
	// AttackerIP overrides the forged source address when valid.
	AttackerIP netip.Addr
}

// Run evaluates all domains in generation order and returns one verdict
// each. Domains are processed serially so the DNS query sequence — and
// with it any traced run's output — is deterministic.
func (s *SpoofSurvey) Run(ctx context.Context) []core.SpoofVerdict {
	ev := &core.VerdictEvaluator{
		Checker: &spf.Checker{Resolver: mta.ResolverAdapter{R: s.Rig.Resolver()}},
		HELO:    "mx.attacker.example",
	}
	attacker := s.AttackerIP
	if !attacker.IsValid() {
		attacker = defaultAttackerIP
	}
	reg := s.Rig.Metrics
	out := make([]core.SpoofVerdict, 0, len(s.Rig.World.Domains))
	for i, d := range s.Rig.World.Domains {
		mailFrom := d.Name
		if pack, ok := population.PackByName(d.Scenario); ok && pack.SpoofMailFromLabel != "" {
			mailFrom = pack.SpoofMailFromLabel + "." + d.Name
		}
		buf := s.Rig.Trace.ProbeBuffer(s.Rig.Clock, "spoof", uint64(i))
		var v core.SpoofVerdict
		if buf == nil {
			v = ev.Evaluate(ctx, attacker, d.Name, mailFrom, d.Scenario)
		} else {
			root := buf.Root("spoof.verdict",
				trace.String("domain", d.Name),
				trace.String("scenario", scenarioLabel(d.Scenario)),
				trace.Int("index", i))
			v = ev.Evaluate(trace.ContextWithSpan(ctx, root), attacker, d.Name, mailFrom, d.Scenario)
			root.SetAttrs(trace.String("spf", string(v.SPF)),
				trace.Bool("dmarc_found", v.DMARC.Found),
				trace.String("outcome", v.Outcome()))
			root.End()
			s.Rig.Trace.FlushBuffer(buf)
		}
		reg.Counter("scenario.spoof.checks").Inc()
		if v.PermError() {
			reg.Counter("scenario.spoof.permerror").Inc()
		}
		if v.Delivered() {
			reg.Counter("scenario.spoof.delivered").Inc()
		}
		if v.DMARC.Found {
			reg.Counter("dmarc.lookups.found").Inc()
		}
		if v.DMARCBlocked() {
			reg.Counter("dmarc.lookups.blocked").Inc()
		}
		out = append(out, v)
	}
	return out
}

// scenarioLabel names a domain's scenario for reports and traces.
func scenarioLabel(s string) string {
	if s == "" {
		return "baseline"
	}
	return s
}

// ScenarioStat aggregates spoof verdicts for one scenario pack.
type ScenarioStat struct {
	// Scenario is the pack name; "baseline" collects unassigned domains.
	Scenario string
	// Domains is how many domains carry the scenario.
	Domains int
	// PermError counts domains whose forged-envelope SPF evaluation
	// ended in permerror.
	PermError int
	// DMARCFail counts domains where DMARC did not block the forgery:
	// no record, a p=none disposition, or an attacker-achieved aligned
	// pass.
	DMARCFail int
	// Delivered counts domains where the forgery gets through a receiver
	// honoring both protocols.
	Delivered int
}

// ScenarioStats rolls verdicts up per scenario, baseline first, then by
// pack name.
func ScenarioStats(verdicts []core.SpoofVerdict) []ScenarioStat {
	byName := make(map[string]*ScenarioStat)
	for _, v := range verdicts {
		label := scenarioLabel(v.Scenario)
		st := byName[label]
		if st == nil {
			st = &ScenarioStat{Scenario: label}
			byName[label] = st
		}
		st.Domains++
		if v.PermError() {
			st.PermError++
		}
		if !v.DMARCBlocked() {
			st.DMARCFail++
		}
		if v.Delivered() {
			st.Delivered++
		}
	}
	out := make([]ScenarioStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Scenario == "baseline", out[j].Scenario == "baseline"
		if bi != bj {
			return bi
		}
		return out[i].Scenario < out[j].Scenario
	})
	return out
}
