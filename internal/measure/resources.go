package measure

import (
	"sync"
	"time"

	"spfail/internal/obs"
)

// shardDelta is one shard worker's contribution to a single batch wave:
// how many probes it ran and how long it held a CPU in wall time. Workers
// fill their own slot and the batch merges them serially, so no locking
// happens on the probe path.
type shardDelta struct {
	probes int64
	wall   time.Duration
}

// ShardStats is the cumulative work one shard index has done across all
// batch waves of the campaign so far.
type ShardStats struct {
	// Shard is the shard index (0 ≤ Shard < Concurrency).
	Shard int
	// Probes is how many probes the shard has completed.
	Probes int64
	// Wall is the total wall-clock time the shard's workers were live.
	Wall time.Duration
}

// Resources is the campaign's resource side table: per-shard work and
// heap-allocation deltas attributed to batch waves. It exists purely for
// observability — nothing in it feeds report or trace bytes — and shows
// where a scaled-up world will spend memory first.
type Resources struct {
	// Shards holds cumulative per-shard work, indexed by shard.
	Shards []ShardStats
	// AllocBytes and AllocObjects are the heap allocations the process
	// performed while batch waves were in flight. The Go runtime has no
	// per-goroutine allocation accounting, so these are process-wide
	// deltas sampled at wave boundaries — concurrent non-campaign work
	// is included, which is the honest bound.
	AllocBytes   uint64
	AllocObjects uint64
	// Batches is how many batch waves contributed to the numbers above.
	Batches int64
}

// campaignStats accumulates Resources across batch waves.
type campaignStats struct {
	mu      sync.Mutex
	shards  []shardDelta    // guarded by mu
	alloc   obs.AllocCounts // guarded by mu
	batches int64           // guarded by mu
}

// absorb folds one batch wave's shard work and allocation delta into the
// running totals.
func (cs *campaignStats) absorb(work []shardDelta, alloc obs.AllocCounts) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(work) > len(cs.shards) {
		grown := make([]shardDelta, len(work))
		copy(grown, cs.shards)
		cs.shards = grown
	}
	for s, w := range work {
		cs.shards[s].probes += w.probes
		cs.shards[s].wall += w.wall
	}
	cs.alloc.Bytes += alloc.Bytes
	cs.alloc.Objects += alloc.Objects
	cs.batches++
}

// Resources returns a snapshot of the campaign's resource side table. It
// is safe to call while a measurement is running; numbers are consistent
// as of the last completed batch wave.
func (c *Campaign) Resources() Resources {
	c.stats.mu.Lock()
	defer c.stats.mu.Unlock()
	out := Resources{
		AllocBytes:   c.stats.alloc.Bytes,
		AllocObjects: c.stats.alloc.Objects,
		Batches:      c.stats.batches,
	}
	if len(c.stats.shards) > 0 {
		out.Shards = make([]ShardStats, len(c.stats.shards))
		for s, w := range c.stats.shards {
			out.Shards[s] = ShardStats{Shard: s, Probes: w.probes, Wall: w.wall}
		}
	}
	return out
}
