package measure

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
)

// TestCampaignBatchWaves verifies that hosts are brought up and torn down
// in waves, never exceeding the batch size.
func TestCampaignBatchWaves(t *testing.T) {
	rig := newTestRig(t, clock.Real{})
	c := fastCampaignWith(rig, func(cfg *Config) { cfg.BatchSize = 7 })

	addrs := rig.World.AllAddrs()
	if len(addrs) > 30 {
		addrs = addrs[:30]
	}
	rcpt := map[netip.Addr]string{}
	for _, a := range addrs {
		if ds := rig.World.DomainsOn(a); len(ds) > 0 {
			rcpt[a] = ds[0].Name
		}
	}
	results, err := c.MeasureAddrs(context.Background(), addrs, rcpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(addrs) {
		t.Fatalf("results = %d, want %d", len(results), len(addrs))
	}
	// After the campaign every wave must have been torn down.
	if n := rig.Manager.RunningCount(); n != 0 {
		t.Fatalf("%d hosts still running after campaign", n)
	}
}

// TestCampaignContextCancellation stops mid-campaign without hanging.
func TestCampaignContextCancellation(t *testing.T) {
	rig := newTestRig(t, clock.Real{})
	c := fastCampaignWith(rig, func(cfg *Config) {
		cfg.BatchSize = 5
		cfg.Concurrency = 2
	})
	ctx, cancel := context.WithCancel(context.Background())

	addrs := rig.World.AllAddrs()
	if len(addrs) > 40 {
		addrs = addrs[:40]
	}
	rcpt := map[netip.Addr]string{}
	type measured struct {
		results map[netip.Addr]core.Outcome
		err     error
	}
	done := make(chan measured, 1)
	go func() {
		results, err := c.MeasureAddrs(ctx, addrs, rcpt)
		done <- measured{results, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case m := <-done:
		switch {
		case m.err == nil:
			t.Logf("campaign finished before cancellation took effect (%d results)", len(m.results))
		case context.Cause(ctx) != nil:
			// Cancellation surfaced as an error, as documented.
		default:
			t.Fatalf("unexpected error: %v", m.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
}

// TestCampaignIdempotentPerRound re-measures the same targets twice and
// verifies both rounds produce the same verdicts for stable hosts.
func TestCampaignStableVerdictsAcrossRounds(t *testing.T) {
	rig := newTestRig(t, clock.Real{})
	c := fastCampaign(rig)

	// Stable (non-flaky, non-blacklisting) vulnerable hosts only.
	var addrs []netip.Addr
	rcpt := map[netip.Addr]string{}
	for _, d := range rig.World.Domains {
		for _, a := range d.Hosts {
			h := rig.World.Hosts[a]
			if h.Listens && !h.RefuseSMTP && h.EverVulnerable() &&
				h.FlakyRate == 0 && h.BlacklistProbesAt.IsZero() && !h.BlankMsgFails {
				if _, ok := rcpt[a]; !ok {
					addrs = append(addrs, a)
					rcpt[a] = d.Name
				}
			}
		}
		if len(addrs) >= 5 {
			break
		}
	}
	if len(addrs) == 0 {
		t.Skip("no stable vulnerable hosts in tiny world")
	}
	r1, err1 := c.MeasureAddrs(context.Background(), addrs, rcpt)
	r2, err2 := c.MeasureAddrs(context.Background(), addrs, rcpt)
	if err1 != nil || err2 != nil {
		t.Fatalf("MeasureAddrs: %v / %v", err1, err2)
	}
	for _, a := range addrs {
		s1, s2 := StatusOf(r1[a]), StatusOf(r2[a])
		if s1 != s2 {
			t.Errorf("%s: round 1 %s vs round 2 %s", a, s1, s2)
		}
		if s1 != IPVulnerable {
			t.Errorf("%s: stable vulnerable host measured %s", a, s1)
		}
	}
}
