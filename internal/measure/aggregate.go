package measure

import (
	"net/netip"
	"time"

	"spfail/internal/core"
)

// IPStatus is the per-round verdict about one address.
type IPStatus string

// The three per-address states of the longitudinal analysis.
const (
	// IPVulnerable: the vulnerable fingerprint was observed.
	IPVulnerable IPStatus = "vulnerable"
	// IPSafe: SPF behaviour was measured and was not the vulnerable
	// fingerprint (for an initially vulnerable host, this means patched
	// or switched libraries).
	IPSafe IPStatus = "safe"
	// IPInconclusive: no conclusive measurement this round.
	IPInconclusive IPStatus = "inconclusive"
)

// StatusOf maps a probe outcome to a status.
func StatusOf(o core.Outcome) IPStatus {
	if o.Status != core.StatusSPFMeasured || !o.Observation.Conclusive() {
		return IPInconclusive
	}
	if o.Observation.Vulnerable() {
		return IPVulnerable
	}
	return IPSafe
}

// DomainStatus is the per-round verdict about a domain, aggregated over
// its initially vulnerable addresses per §5.1: vulnerable while any
// address remains vulnerable; patched once all measure safe; uncertain
// when a vulnerable address cannot be concluded.
type DomainStatus string

// Domain states.
const (
	DomVulnerable DomainStatus = "vulnerable"
	DomPatched    DomainStatus = "patched"
	DomUncertain  DomainStatus = "uncertain"
)

// Analysis holds the longitudinal series for a set of addresses with the
// §7.6 inference rules applied.
type Analysis struct {
	Times []time.Time
	// Raw is the measured status per address per round.
	Raw map[netip.Addr][]IPStatus
	// Inferred additionally applies the two monotonicity rules:
	// vulnerable observations extend backwards to the start, safe
	// observations extend forwards to the end.
	Inferred map[netip.Addr][]IPStatus
}

// Analyze builds the per-address series from measurement rounds.
func Analyze(rounds []Round, addrs []netip.Addr) *Analysis {
	a := &Analysis{
		Raw:      make(map[netip.Addr][]IPStatus, len(addrs)),
		Inferred: make(map[netip.Addr][]IPStatus, len(addrs)),
	}
	for _, r := range rounds {
		a.Times = append(a.Times, r.Time)
	}
	for _, addr := range addrs {
		raw := make([]IPStatus, len(rounds))
		for i, r := range rounds {
			if o, ok := r.Results[addr]; ok {
				raw[i] = StatusOf(o)
			} else {
				raw[i] = IPInconclusive
			}
		}
		a.Raw[addr] = raw
		a.Inferred[addr] = InferSeries(raw)
	}
	return a
}

// InferSeries applies the inference rules of §7.6 to one address's series:
//
//  1. an address measured vulnerable at some point is vulnerable from the
//     beginning of measurements up to that point;
//  2. an address measured safe at some point is safe from that point to
//     the end of measurements.
//
// MTAs are assumed not to regress; if a series nonetheless contains a safe
// observation before a vulnerable one, the raw values win in the
// overlapping span.
func InferSeries(raw []IPStatus) []IPStatus {
	out := append([]IPStatus(nil), raw...)
	lastVuln := -1
	firstSafe := len(raw)
	for i, s := range raw {
		if s == IPVulnerable {
			lastVuln = i
		}
		if s == IPSafe && i < firstSafe {
			firstSafe = i
		}
	}
	for i := range out {
		if out[i] != IPInconclusive {
			continue
		}
		switch {
		case i <= lastVuln:
			out[i] = IPVulnerable
		case i >= firstSafe:
			out[i] = IPSafe
		}
	}
	return out
}

// DomainStatusAt aggregates a domain's initially-vulnerable addresses at
// round i using the inferred series.
func (a *Analysis) DomainStatusAt(addrs []netip.Addr, i int) DomainStatus {
	allSafe := true
	for _, addr := range addrs {
		series, ok := a.Inferred[addr]
		if !ok || i >= len(series) {
			return DomUncertain
		}
		switch series[i] {
		case IPVulnerable:
			return DomVulnerable
		case IPInconclusive:
			allSafe = false
		}
	}
	if allSafe {
		return DomPatched
	}
	return DomUncertain
}

// DomainConclusiveAt reports how a domain's round-i result was obtained:
// measured directly (every address raw-conclusive), by inference (every
// address concluded after inference), or not at all.
func (a *Analysis) DomainConclusiveAt(addrs []netip.Addr, i int) (measured, inferred bool) {
	measured, inferred = true, true
	for _, addr := range addrs {
		raw, ok := a.Raw[addr]
		if !ok || i >= len(raw) {
			return false, false
		}
		if raw[i] == IPInconclusive {
			measured = false
			if a.Inferred[addr][i] == IPInconclusive {
				inferred = false
			}
		}
	}
	return measured, inferred
}

// SeriesPoint is one time point of an aggregated domain series.
type SeriesPoint struct {
	Time time.Time
	// Measured/Inferred are the conclusiveness counts of Figure 5.
	Measured int
	Inferred int
	Total    int
	// Vulnerable/Patched/Uncertain are domain counts (Figures 6–7).
	Vulnerable int
	Patched    int
	Uncertain  int
}

// VulnerableRate is the vulnerable share among concluded domains.
func (p SeriesPoint) VulnerableRate() float64 {
	den := p.Vulnerable + p.Patched
	if den == 0 {
		return 0
	}
	return float64(p.Vulnerable) / float64(den)
}

// DomainSeries aggregates the analysis over a map of domains to their
// initially vulnerable addresses.
func (a *Analysis) DomainSeries(domains map[string][]netip.Addr) []SeriesPoint {
	out := make([]SeriesPoint, len(a.Times))
	for i := range a.Times {
		p := SeriesPoint{Time: a.Times[i], Total: len(domains)}
		for _, addrs := range domains {
			measured, inferred := a.DomainConclusiveAt(addrs, i)
			if measured {
				p.Measured++
			}
			if inferred || measured {
				p.Inferred++
			}
			switch a.DomainStatusAt(addrs, i) {
			case DomVulnerable:
				p.Vulnerable++
			case DomPatched:
				p.Patched++
			default:
				p.Uncertain++
			}
		}
		out[i] = p
	}
	return out
}
