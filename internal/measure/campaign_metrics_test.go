package measure

import (
	"context"
	"net/netip"
	"testing"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/telemetry"
)

// TestCampaignMetricsMatchOutcomes runs a campaign with a private registry
// and checks that the probe-outcome counters agree exactly with the
// returned Outcome map — the invariant the --metrics report relies on.
func TestCampaignMetricsMatchOutcomes(t *testing.T) {
	rig := newTestRig(t, clock.Real{})
	reg := telemetry.New()
	const batchSize, concurrency = 11, 64
	c := fastCampaignWith(rig, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.BatchSize = batchSize
	})

	addrs := rig.World.AllAddrs()
	if len(addrs) > 40 {
		addrs = addrs[:40]
	}
	rcpt := map[netip.Addr]string{}
	for _, a := range addrs {
		if ds := rig.World.DomainsOn(a); len(ds) > 0 {
			rcpt[a] = ds[0].Name
		}
	}
	results, err := c.MeasureAddrs(context.Background(), addrs, rcpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(addrs) {
		t.Fatalf("results = %d, want %d", len(results), len(addrs))
	}

	wantByStatus := map[core.Status]int64{}
	var wantVulnerable int64
	for _, o := range results {
		wantByStatus[o.Status]++
		if o.Vulnerable() {
			wantVulnerable++
		}
	}

	s := reg.Snapshot()
	for status, want := range wantByStatus {
		if got := s.Counters["probe.outcome."+string(status)]; got != want {
			t.Errorf("probe.outcome.%s = %d, want %d", status, got, want)
		}
	}
	for name, v := range s.Counters {
		if len(name) > len("probe.outcome.") && name[:len("probe.outcome.")] == "probe.outcome." {
			status := core.Status(name[len("probe.outcome."):])
			if wantByStatus[status] != v {
				t.Errorf("counter %s = %d has no matching outcomes (want %d)", name, v, wantByStatus[status])
			}
		}
	}
	if got := s.Counters["probe.total"]; got != int64(len(addrs)) {
		t.Errorf("probe.total = %d, want %d", got, len(addrs))
	}
	if got := s.Counters["probe.vulnerable"]; got != wantVulnerable {
		t.Errorf("probe.vulnerable = %d, want %d", got, wantVulnerable)
	}
	if got := s.Counters["campaign.probes_done"]; got != int64(len(addrs)) {
		t.Errorf("campaign.probes_done = %d, want %d", got, len(addrs))
	}
	wantBatches := int64((len(addrs) + batchSize - 1) / batchSize)
	if got := s.Counters["campaign.batches_done"]; got != wantBatches {
		t.Errorf("campaign.batches_done = %d, want %d", got, wantBatches)
	}

	// Scheduling telemetry: nothing in flight afterwards, and the
	// high-water mark can never exceed the configured concurrency.
	in := s.Gauges["campaign.inflight"]
	if in.Value != 0 {
		t.Errorf("campaign.inflight = %d after campaign, want 0", in.Value)
	}
	if in.Max < 1 || in.Max > int64(concurrency) {
		t.Errorf("campaign.inflight max = %d, want within [1,%d]", in.Max, concurrency)
	}

	// The probe latency histogram must have one sample per probe.
	if h := s.Histograms["probe.latency"]; h.Count != int64(len(addrs)) {
		t.Errorf("probe.latency count = %d, want %d", h.Count, len(addrs))
	}

	// Batch events fire once per wave.
	reg2 := telemetry.New()
	c2 := fastCampaignWith(rig, func(cfg *Config) {
		cfg.Metrics = reg2
		cfg.BatchSize = batchSize
	})
	var events int
	reg2.OnEvent(func(ev telemetry.Event) {
		if ev.Name == "campaign.batch" {
			events++
		}
	})
	if _, err := c2.MeasureAddrs(context.Background(), addrs, rcpt); err != nil {
		t.Fatal(err)
	}
	if int64(events) != wantBatches {
		t.Errorf("campaign.batch events = %d, want %d", events, wantBatches)
	}
}
