package measure

import (
	"fmt"
	"time"

	"spfail/internal/retry"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Config is the single validated configuration surface for measurement
// campaigns. It replaces the zero-value-defaulted field sprawl that used to
// live across Campaign, core.Prober, and the rig constructor's positional
// parameters:
// every knob — concurrency, politeness waits, retry policy, circuit
// breaker, metrics — flows through here, and Normalize is the one place
// defaults are filled and invariants checked.
//
// The zero value normalizes to the paper's operational parameters (§6.1):
// 250 concurrent connections, 8-minute greylist backoff, 90-second
// reconnect gap.
type Config struct {
	// Suite labels all probes of the campaign.
	Suite string
	// Concurrency caps simultaneous SMTP probes (paper: 250).
	Concurrency int
	// BatchSize bounds how many simulated hosts run at once; hosts come
	// up and down in waves (memory control at full scale).
	BatchSize int
	// GreylistWait is the pause before retrying a 450 (paper: 8 min).
	GreylistWait time.Duration
	// ReconnectWait is the minimum pause between connections to the same
	// server (paper: 90 s).
	ReconnectWait time.Duration
	// IOTimeout bounds SMTP I/O. It is spent in real time even on a
	// simulated clock, so keep it small in simulation.
	IOTimeout time.Duration
	// Retry reruns transiently failed probes (bounded attempts, seeded
	// jittered backoff on the campaign clock). Zero value: one attempt.
	Retry retry.Policy
	// Breaker configures the campaign's shared per-address circuit
	// breaker. Zero value: disabled.
	Breaker retry.BreakerConfig
	// Metrics overrides the rig's registry for campaign telemetry; nil
	// uses the rig's.
	Metrics *telemetry.Registry
	// Trace overrides the rig's tracer for per-probe span capture; nil
	// uses the rig's (which may itself be nil = tracing disabled).
	Trace *trace.Tracer
}

// DefaultConfig returns the paper's operational parameters, already
// normalized.
func DefaultConfig() Config {
	cfg, err := Config{}.Normalize()
	if err != nil {
		panic("measure: zero Config does not normalize: " + err.Error())
	}
	return cfg
}

// Normalize validates the config and fills the paper defaults. It returns
// the completed config rather than mutating in place, so partially-filled
// literals stay comparable in tests.
func (c Config) Normalize() (Config, error) {
	if c.Concurrency < 0 {
		return c, fmt.Errorf("measure: Concurrency %d is negative", c.Concurrency)
	}
	if c.Concurrency == 0 {
		c.Concurrency = 250
	}
	if c.BatchSize < 0 {
		return c, fmt.Errorf("measure: BatchSize %d is negative", c.BatchSize)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 2000
	}
	if c.GreylistWait < 0 {
		return c, fmt.Errorf("measure: GreylistWait %v is negative", c.GreylistWait)
	}
	if c.GreylistWait == 0 {
		c.GreylistWait = 8 * time.Minute
	}
	if c.ReconnectWait < 0 {
		return c, fmt.Errorf("measure: ReconnectWait %v is negative", c.ReconnectWait)
	}
	if c.ReconnectWait == 0 {
		c.ReconnectWait = 90 * time.Second
	}
	if c.IOTimeout < 0 {
		return c, fmt.Errorf("measure: IOTimeout %v is negative", c.IOTimeout)
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 30 * time.Second
	}
	var err error
	if c.Retry, err = c.Retry.Normalize(); err != nil {
		return c, err
	}
	if c.Breaker, err = c.Breaker.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}
