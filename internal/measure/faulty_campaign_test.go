package measure

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/faults"
	"spfail/internal/population"
	"spfail/internal/retry"
)

// TestFaultyCampaignNoLostProbes is the resilience acceptance test: under
// the aggressive fault preset with retries and a circuit breaker enabled,
// every probed address must still appear in the results — with a real
// outcome or an explicit StatusInconclusive — never silently vanish.
func TestFaultyCampaignNoLostProbes(t *testing.T) {
	sim := clock.NewSim(population.TInitial)
	defer sim.Close()
	w := population.MustGenerate(tinySpec())
	plan, err := faults.Preset("aggressive")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 99
	rig, err := NewRigFromOptions(context.Background(), RigOptions{
		World:  w,
		Clock:  sim,
		Faults: &plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()

	c, err := NewCampaign(rig, Config{
		Suite:       "f01",
		Concurrency: 32,
		BatchSize:   64,
		// Blackholed connections wait out IOTimeout in real time, so keep
		// it small; the politeness waits are virtual and stay paper-sized.
		IOTimeout:     150 * time.Millisecond,
		GreylistWait:  8 * time.Minute,
		ReconnectWait: 90 * time.Second,
		Retry:         retry.Policy{MaxAttempts: 3, BaseDelay: 30 * time.Second, Jitter: 0.2, Seed: 99},
		Breaker:       retry.BreakerConfig{Threshold: 3, Cooldown: 30 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}

	addrs := rig.World.AllAddrs()
	if len(addrs) > 48 {
		addrs = addrs[:48]
	}
	rcpt := map[netip.Addr]string{}
	for _, a := range addrs {
		if ds := rig.World.DomainsOn(a); len(ds) > 0 {
			rcpt[a] = ds[0].Name
		}
	}

	done := make(chan map[netip.Addr]core.Outcome, 1)
	clock.Go(sim, func() {
		results, err := c.MeasureAddrs(context.Background(), addrs, rcpt)
		if err != nil {
			t.Error(err)
		}
		done <- results
	})
	var results map[netip.Addr]core.Outcome
	select {
	case results = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("faulty campaign did not complete")
	}

	if len(results) != len(addrs) {
		t.Fatalf("results = %d, want %d (probes lost under faults)", len(results), len(addrs))
	}
	counts := map[core.Status]int{}
	for _, a := range addrs {
		out, ok := results[a]
		if !ok {
			t.Errorf("%s: no outcome recorded", a)
			continue
		}
		counts[out.Status]++
		if out.Status == core.StatusInconclusive && out.FailReason == "" {
			t.Errorf("%s: inconclusive without a failure reason", a)
		}
		if out.Attempts < 1 {
			t.Errorf("%s: Attempts = %d, want ≥1", a, out.Attempts)
		}
	}
	t.Logf("outcomes under faults: %v", counts)

	// The plan must actually have fired, and the retry machinery must have
	// been exercised — otherwise this test proves nothing.
	s := c.metrics().Snapshot()
	var injected int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "faults.injected.") {
			injected += v
		}
	}
	if injected == 0 {
		t.Error("aggressive plan injected no faults")
	}
	if s.Counters["probe.retries"] == 0 {
		t.Error("no probe retries recorded under the aggressive plan")
	}
}

// TestStatusOfInconclusive pins the classifier mapping for the retry-
// exhaustion status: it must flow into the longitudinal analysis as an
// inconclusive measurement, exactly like the legacy failure statuses.
func TestStatusOfInconclusive(t *testing.T) {
	out := core.Outcome{Status: core.StatusInconclusive, FailReason: "retry budget exhausted"}
	if got := StatusOf(out); got != IPInconclusive {
		t.Fatalf("StatusOf(StatusInconclusive) = %s, want %s", got, IPInconclusive)
	}
}
