// Package measure implements the SPFail measurement campaign: resolving
// domain sets to mail-server addresses through the DNS (as the paper does,
// MX first with A fallback), probing every distinct address once with the
// NoMsg→BlankMsg ladder under the paper's politeness constraints (250
// concurrent connections, 90 s per-host gaps, 8-minute greylist waits),
// re-measuring vulnerable hosts every two days across two windows, and
// applying the inference rules of §7.6 to the resulting series.
package measure

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/dnsclient"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/faults"
	"spfail/internal/netsim"
	"spfail/internal/population"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Rig wires together the measurement-side infrastructure on a fabric: the
// authoritative DNS server (population zones + the dynamic SPF test zone,
// with query logging into the collector) and the prober's vantage point.
type Rig struct {
	Fabric     *netsim.Fabric
	Clock      clock.Clock
	World      *population.World
	Zone       *dnsserver.SPFTestZone
	Collector  *core.Collector
	Classifier *core.Classifier
	Manager    *population.HostManager
	// Metrics aggregates telemetry from every measurement-side layer
	// (DNS server, prober, campaigns). Always non-nil after
	// NewRigFromOptions.
	Metrics *telemetry.Registry
	// Trace, when non-nil, captures per-probe causal spans across the
	// whole rig (prober, MTA-side SPF evaluation, DNS server, fault
	// engine). Nil disables tracing at zero cost.
	Trace *trace.Tracer
	// FaultEngine is the fabric's fault injector when RigOptions.Faults
	// was installed, nil otherwise. Exposed so the study's checkpoint
	// layer can snapshot and restore its event counters across resume.
	FaultEngine *faults.Engine

	// DNSAddr is the single authoritative/resolver address every
	// simulated party uses.
	DNSAddr string
	// ProbeIP is the measurement vantage address.
	ProbeIP string

	dns      *dnsserver.Server
	dnsRetry retry.Policy
}

// Rig addresses.
const (
	defaultDNSIP   = "192.0.2.53"
	defaultProbeIP = "198.51.100.9"
	testZoneBase   = "spf-test.dns-lab.org"
)

// RigOptions configures NewRigFromOptions. Only World and Clock are
// required; everything else has a sensible default, so new knobs can be
// added without another signature break.
type RigOptions struct {
	// World is the synthetic Internet to measure; required.
	World *population.World
	// Clock drives every timeline in the rig; required.
	Clock clock.Clock
	// Metrics aggregates rig-wide telemetry; nil creates a fresh registry.
	Metrics *telemetry.Registry
	// Faults, when non-nil and non-empty, is installed on the fabric as a
	// deterministic fault-injection engine, classified against the
	// world's host classes (see internal/faults).
	Faults *faults.Plan
	// DNSRetry is the retry policy for the probe-side resolver returned
	// by Rig.Resolver (target resolution). Zero value: the dnsclient's
	// legacy immediate retransmits.
	DNSRetry retry.Policy
	// Trace, when non-nil, is threaded through every rig layer for
	// per-probe span capture (see internal/trace).
	Trace *trace.Tracer
	// DNSIP and ProbeIP override the rig's well-known addresses.
	DNSIP   string
	ProbeIP string
}

// NewRigFromOptions builds and starts the measurement infrastructure for a
// world.
func NewRigFromOptions(ctx context.Context, opts RigOptions) (*Rig, error) {
	if opts.World == nil {
		return nil, fmt.Errorf("measure: RigOptions.World is required")
	}
	if opts.Clock == nil {
		return nil, fmt.Errorf("measure: RigOptions.Clock is required")
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = telemetry.New()
	}
	dnsIP := opts.DNSIP
	if dnsIP == "" {
		dnsIP = defaultDNSIP
	}
	probeIP := opts.ProbeIP
	if probeIP == "" {
		probeIP = defaultProbeIP
	}
	w, clk := opts.World, opts.Clock
	fabric := netsim.NewFabric()
	fabric.Clock = clk
	var engine *faults.Engine
	if opts.Faults != nil && !opts.Faults.Empty() {
		var err error
		engine, err = faults.NewEngine(*opts.Faults)
		if err != nil {
			return nil, fmt.Errorf("measure: fault plan: %w", err)
		}
		engine.SetClassifier(w.FaultClassifier())
		engine.SetMetrics(metrics)
		engine.SetTracer(opts.Trace)
		fabric.Faults = engine
	}
	r := &Rig{
		Fabric:      fabric,
		Clock:       clk,
		World:       w,
		Metrics:     metrics,
		Trace:       opts.Trace,
		FaultEngine: engine,
		DNSAddr:     dnsIP + ":53",
		ProbeIP:     probeIP,
		dnsRetry:    opts.DNSRetry,
		Zone: &dnsserver.SPFTestZone{
			Base:  dnsmsg.MustParseName(testZoneBase),
			Addr4: netip.MustParseAddr("192.0.2.80"),
			Addr6: netip.MustParseAddr("2001:db8:80::1"),
		},
	}
	r.Collector = core.NewCollector(r.Zone)
	r.Classifier = core.NewClassifier(r.Zone)

	mux := dnsserver.NewMux(w.BuildZones())
	mux.Handle(r.Zone.Base, r.Zone)
	handler := &dnsserver.LoggingHandler{Inner: mux, Sink: r.Collector, Now: clk.Now}

	r.dns = &dnsserver.Server{Net: r.Fabric.Host(dnsIP), Addr: ":53", Handler: handler, Metrics: metrics, Trace: opts.Trace}
	if err := r.dns.Start(ctx); err != nil {
		return nil, fmt.Errorf("measure: starting DNS: %w", err)
	}
	r.Manager = &population.HostManager{
		World:      w,
		Fabric:     r.Fabric,
		Clock:      clk,
		DNSServer:  r.DNSAddr,
		DNSTimeout: time.Second,
		Trace:      opts.Trace,
	}
	return r, nil
}

// Close stops the DNS server and all running hosts.
func (r *Rig) Close() {
	r.Manager.StopAll()
	r.dns.Stop()
}

// Resolver returns a stub resolver from the probe vantage, carrying the
// rig's DNS retry policy. Callers on a simulated clock must drive it from
// an accounted goroutine (the policy's backoff sleeps on the rig clock).
func (r *Rig) Resolver() *dnsclient.Resolver {
	wire := &dnsclient.Client{
		Net:     r.Fabric.Host(r.ProbeIP),
		Server:  r.DNSAddr,
		Timeout: time.Second,
		Clk:     r.Clock,
		Retry:   r.dnsRetry,
		Metrics: r.Metrics,
	}
	// The pipeline lets ResolveTargets' dual-family lookups travel as one
	// batch per exchanger instead of two dials.
	return dnsclient.NewResolver(&dnsclient.Pipeline{Upstream: wire, Metrics: r.Metrics})
}

// Target is one (domain, addresses) measurement unit discovered via DNS.
type Target struct {
	Domain string
	Addrs  []netip.Addr
	HasMX  bool
}

// ResolveTargets discovers mail-server addresses for domains exactly as
// the paper does: query MX; resolve each exchanger's A/AAAA; when a domain
// has no MX records, fall back to its own A record per RFC 5321.
func (r *Rig) ResolveTargets(ctx context.Context, domains []string) []Target {
	res := r.Resolver()
	out := make([]Target, 0, len(domains))
	for _, d := range domains {
		t := Target{Domain: d}
		mxs, err := res.LookupMX(ctx, d)
		if err == nil && len(mxs) > 0 {
			t.HasMX = true
			for _, mx := range mxs {
				addrs, err := res.LookupIP(ctx, "ip", mx.Host)
				if err != nil {
					continue
				}
				t.Addrs = append(t.Addrs, addrs...)
			}
		} else {
			addrs, err := res.LookupIP(ctx, "ip", d)
			if err == nil {
				t.Addrs = append(t.Addrs, addrs...)
			}
		}
		out = append(out, t)
	}
	return out
}

// UniqueAddrs deduplicates the addresses across targets, preserving first-
// seen order and remembering one representative domain per address (used
// for RCPT TO and for notification addressing).
func UniqueAddrs(targets []Target) ([]netip.Addr, map[netip.Addr]string) {
	var addrs []netip.Addr
	rep := make(map[netip.Addr]string)
	for _, t := range targets {
		for _, a := range t.Addrs {
			if _, ok := rep[a]; !ok {
				rep[a] = t.Domain
				addrs = append(addrs, a)
			}
		}
	}
	return addrs, rep
}
