package measure

import (
	"context"
	"sync"
	"testing"

	"spfail/internal/clock"
)

// Two campaigns running concurrently in one process exercise every shared
// pool under contention — the pipelined Querier's queue, the SMTP session
// buffer pools, the SPF evaluation sessions on the simulated MTAs, and the
// probers' scratch state. Each campaign must still report every address
// exactly once with an independent outcome. Run with -race (CI does).
func TestConcurrentCampaignsThroughPipelinedQuerier(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		rig := newTestRig(t, clock.Real{})
		c := fastCampaign(rig)

		var domains []string
		for _, d := range rig.World.Domains[:20] {
			domains = append(domains, d.Name)
		}
		targets := rig.ResolveTargets(context.Background(), domains)
		addrs, rep := UniqueAddrs(targets)
		if len(addrs) == 0 {
			t.Fatal("no addresses resolved")
		}

		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results, err := c.MeasureAddrs(context.Background(), addrs, rep)
			if err != nil {
				t.Errorf("campaign %d: %v", i, err)
				return
			}
			if len(results) != len(addrs) {
				t.Errorf("campaign %d: %d results for %d addrs", i, len(results), len(addrs))
			}
			for a, o := range results {
				if o.Status == "" {
					t.Errorf("campaign %d: %s has empty outcome", i, a)
				}
			}
		}(i)
	}
	wg.Wait()
}
