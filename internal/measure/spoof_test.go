package measure

import (
	"context"
	"strings"
	"testing"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/dmarc"
	"spfail/internal/mta"
	"spfail/internal/population"
	"spfail/internal/spf"
)

// scenarioRig builds a rig over a small world with every built-in pack in
// the mix, so one survey pass exercises each pack's DNS effect through
// the real lookup and void budgets.
func scenarioRig(t *testing.T) *Rig {
	t.Helper()
	s := population.DefaultSpec()
	s.Scale = 0.002
	s.Seed = 23
	for _, name := range population.PackNames() {
		s.Scenarios = append(s.Scenarios, population.ScenarioPackRef{Name: name, Weight: 0.11})
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	w := population.MustGenerate(s)
	rig, err := NewRigFromOptions(context.Background(), RigOptions{World: w, Clock: clock.Real{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	return rig
}

// TestSpoofSurveyPackEffects runs the spoof survey over a world carrying
// all nine packs and checks, per pack, that the published DNS data drives
// the SPF evaluator and DMARC discovery to the documented verdict. No
// resolver stubbing: every permerror here is a budget genuinely consumed
// against the sim DNS server.
func TestSpoofSurveyPackEffects(t *testing.T) {
	rig := scenarioRig(t)
	survey := &SpoofSurvey{Rig: rig}
	verdicts := survey.Run(context.Background())
	if len(verdicts) != len(rig.World.Domains) {
		t.Fatalf("verdicts = %d, want %d", len(verdicts), len(rig.World.Domains))
	}

	byScenario := map[string][]core.SpoofVerdict{}
	for _, v := range verdicts {
		byScenario[scenarioLabel(v.Scenario)] = append(byScenario[scenarioLabel(v.Scenario)], v)
	}
	get := func(pack string) []core.SpoofVerdict {
		t.Helper()
		vs := byScenario[pack]
		if len(vs) == 0 {
			t.Fatalf("no domains assigned pack %s", pack)
		}
		return vs
	}

	for _, v := range get("plus-all") {
		if v.SPF != spf.ResultPass || !v.Delivered() || v.Outcome() != core.OutcomeDelivered {
			t.Fatalf("plus-all %s: spf=%s outcome=%s, want pass/delivered", v.Domain, v.SPF, v.Outcome())
		}
	}
	for _, v := range get("dangling-include") {
		if v.SPF != spf.ResultPermError {
			t.Fatalf("dangling-include %s: spf=%s (%s), want permerror", v.Domain, v.SPF, v.SPFErr)
		}
	}
	for _, v := range get("nested-include") {
		// The chain resolves; the attacker just is not in it.
		if v.SPF != spf.ResultFail || v.Outcome() != core.OutcomeRejectedSPF {
			t.Fatalf("nested-include %s: spf=%s err=%q, want fail", v.Domain, v.SPF, v.SPFErr)
		}
	}
	for _, v := range get("lookup-limit-buster") {
		if v.SPF != spf.ResultPermError || !strings.Contains(v.SPFErr, "lookup limit") {
			t.Fatalf("lookup-limit-buster %s: spf=%s err=%q, want lookup-limit permerror", v.Domain, v.SPF, v.SPFErr)
		}
	}
	for _, v := range get("void-lookup-heavy") {
		if v.SPF != spf.ResultPermError || !strings.Contains(v.SPFErr, "void lookup") {
			t.Fatalf("void-lookup-heavy %s: spf=%s err=%q, want void-limit permerror", v.Domain, v.SPF, v.SPFErr)
		}
	}
	for _, v := range get("no-dmarc") {
		if v.SPF != spf.ResultFail || v.DMARC.Found || v.Outcome() != core.OutcomeRejectedSPF {
			t.Fatalf("no-dmarc %s: spf=%s dmarc found=%v", v.Domain, v.SPF, v.DMARC.Found)
		}
	}
	for _, v := range get("dmarc-none-relaxed") {
		if !v.DMARC.Found || v.DMARC.Disposition != dmarc.PolicyNone || v.DMARCBlocked() {
			t.Fatalf("dmarc-none-relaxed %s: dmarc=%+v, want found p=none unblocked", v.Domain, v.DMARC)
		}
	}
	for _, v := range get("alignment-gap") {
		// The attacker's MAIL FROM is the +all outbound subdomain; relaxed
		// alignment accepts its pass for the apex From, defeating p=reject.
		if !strings.HasPrefix(v.MailFromDomain, "outbound.") {
			t.Fatalf("alignment-gap %s: mailfrom %s, want outbound subdomain", v.Domain, v.MailFromDomain)
		}
		if v.SPF != spf.ResultPass || !v.DMARC.Pass || v.Outcome() != core.OutcomeDelivered {
			t.Fatalf("alignment-gap %s: spf=%s dmarc=%+v outcome=%s, want delivered despite p=reject",
				v.Domain, v.SPF, v.DMARC, v.Outcome())
		}
	}
	for _, v := range get("alignment-strict") {
		// Same subdomain pass, but aspf=s refuses the unaligned identifier.
		if v.SPF != spf.ResultPass || v.DMARC.Pass || !v.DMARCBlocked() || v.Outcome() != core.OutcomeRejectedDMARC {
			t.Fatalf("alignment-strict %s: spf=%s dmarc=%+v outcome=%s, want rejected-dmarc",
				v.Domain, v.SPF, v.DMARC, v.Outcome())
		}
	}

	stats := ScenarioStats(verdicts)
	if stats[0].Scenario != "baseline" {
		t.Errorf("stats[0] = %s, want baseline first", stats[0].Scenario)
	}
	seen := map[string]ScenarioStat{}
	total := 0
	for _, st := range stats {
		seen[st.Scenario] = st
		total += st.Domains
	}
	if total != len(verdicts) {
		t.Errorf("stats cover %d domains, want %d", total, len(verdicts))
	}
	if st := seen["lookup-limit-buster"]; st.PermError != st.Domains {
		t.Errorf("lookup-limit-buster permerror = %d/%d, want all", st.PermError, st.Domains)
	}
	if st := seen["alignment-gap"]; st.Delivered != st.Domains || st.DMARCFail != st.Domains {
		t.Errorf("alignment-gap delivered = %d dmarcfail = %d of %d, want all",
			st.Delivered, st.DMARCFail, st.Domains)
	}
	if st := seen["alignment-strict"]; st.Delivered != 0 || st.DMARCFail != 0 {
		t.Errorf("alignment-strict delivered = %d dmarcfail = %d, want 0/0", st.Delivered, st.DMARCFail)
	}

	// The survey's counters agree with the verdicts (nil-safe registry
	// aside, the rig always carries one).
	snap := rig.Metrics.Snapshot()
	if got := snap.Counters["scenario.spoof.checks"]; got != int64(len(verdicts)) {
		t.Errorf("scenario.spoof.checks = %d, want %d", got, len(verdicts))
	}
	var wantPerm, wantDeliv, wantFound, wantBlocked int64
	for _, v := range verdicts {
		if v.PermError() {
			wantPerm++
		}
		if v.Delivered() {
			wantDeliv++
		}
		if v.DMARC.Found {
			wantFound++
		}
		if v.DMARCBlocked() {
			wantBlocked++
		}
	}
	for name, want := range map[string]int64{
		"scenario.spoof.permerror": wantPerm,
		"scenario.spoof.delivered": wantDeliv,
		"dmarc.lookups.found":      wantFound,
		"dmarc.lookups.blocked":    wantBlocked,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestNestedIncludeChainResolvesForLegitimateHosts proves the chain is
// functional, not just attacker-rejecting: traffic from the domain's own
// mail host walks every include hop and passes.
func TestNestedIncludeChainResolvesForLegitimateHosts(t *testing.T) {
	rig := scenarioRig(t)
	ev := &core.VerdictEvaluator{
		Checker: &spf.Checker{Resolver: mta.ResolverAdapter{R: rig.Resolver()}},
		HELO:    "mx.self.example",
	}
	checked := 0
	for _, d := range rig.World.Domains {
		if d.Scenario != "nested-include" || len(d.Hosts) == 0 {
			continue
		}
		v := ev.Evaluate(context.Background(), d.Hosts[0], d.Name, d.Name, d.Scenario)
		if v.SPF != spf.ResultPass {
			t.Fatalf("%s from own host %s: spf=%s err=%q, want pass through the chain",
				d.Name, d.Hosts[0], v.SPF, v.SPFErr)
		}
		if checked++; checked >= 3 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no nested-include domains with hosts")
	}
}
