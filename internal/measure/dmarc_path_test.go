package measure

import (
	"context"
	"strings"
	"testing"

	"spfail/internal/dmarc"
	"spfail/internal/mta"
	"spfail/internal/spf"
)

// TestDMARCDiscoveryThroughSimResolver drives dmarc.Evaluate over the
// rig's real resolution path: the subdomain _dmarc lookup gets a genuine
// negative answer from the sim DNS server, discovery falls back to the
// organizational domain, and relaxed alignment accepts an org-matching
// SPF identifier.
func TestDMARCDiscoveryThroughSimResolver(t *testing.T) {
	rig := scenarioRig(t)
	res := mta.ResolverAdapter{R: rig.Resolver()}
	ctx := context.Background()

	var apex *struct{ name string }
	var multiSuffix string
	for _, d := range rig.World.Domains {
		if d.Scenario != "dmarc-none-relaxed" {
			continue
		}
		if apex == nil {
			apex = &struct{ name string }{d.Name}
		}
		// A name whose registrable part spans a multi-label public suffix
		// (loja.com.br style), exercising the PSL table end to end.
		if dmarc.OrganizationalDomain("x."+d.Name) == d.Name && strings.Count(d.Name, ".") == 2 {
			multiSuffix = d.Name
		}
	}
	if apex == nil {
		t.Fatal("no dmarc-none-relaxed domains in world")
	}

	// Org-domain fallback: From a deep subdomain with no _dmarc record of
	// its own; the record published at the apex must be found there.
	from := "newsletter.mail." + apex.name
	r, err := dmarc.Evaluate(ctx, res, from, spf.ResultPass, apex.name)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || r.Domain != apex.name {
		t.Fatalf("fallback discovery = %+v, want record at %s", r, apex.name)
	}
	if !r.Pass {
		t.Fatalf("relaxed alignment rejected org-matching SPF domain: %+v", r)
	}
	// sp=none applies to the subdomain From.
	if r.Disposition != dmarc.PolicyNone {
		t.Fatalf("disposition = %s, want none", r.Disposition)
	}

	if multiSuffix == "" {
		t.Log("no multi-label-suffix dmarc domain at this scale; suffix fallback covered at apex only")
	} else {
		r, err := dmarc.Evaluate(ctx, res, "sub."+multiSuffix, spf.ResultPass, multiSuffix)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Domain != multiSuffix || !r.Pass {
			t.Fatalf("multi-suffix fallback for sub.%s = %+v", multiSuffix, r)
		}
	}

	// Strict alignment over the same wire: alignment-strict publishes
	// aspf=s, so an SPF pass on the outbound subdomain must not align
	// with the apex From.
	for _, d := range rig.World.Domains {
		if d.Scenario != "alignment-strict" {
			continue
		}
		r, err := dmarc.Evaluate(ctx, res, d.Name, spf.ResultPass, "outbound."+d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Pass || r.Disposition != dmarc.PolicyReject {
			t.Fatalf("strict alignment for %s = %+v, want unaligned reject", d.Name, r)
		}
		relaxedFrom, err := dmarc.Evaluate(ctx, res, "outbound."+d.Name, spf.ResultPass, "outbound."+d.Name)
		if err != nil {
			t.Fatal(err)
		}
		// Exact-domain match aligns even under aspf=s; sp=reject governs
		// the subdomain disposition.
		if !relaxedFrom.Pass {
			t.Fatalf("exact match should align under aspf=s: %+v", relaxedFrom)
		}
		return
	}
	t.Fatal("no alignment-strict domains in world")
}
