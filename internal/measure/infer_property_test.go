package measure

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeries(r *rand.Rand) []IPStatus {
	n := 1 + r.Intn(20)
	out := make([]IPStatus, n)
	for i := range out {
		switch r.Intn(3) {
		case 0:
			out[i] = IPVulnerable
		case 1:
			out[i] = IPSafe
		default:
			out[i] = IPInconclusive
		}
	}
	return out
}

// TestPropertyInferIdempotent: applying the inference rules twice changes
// nothing.
func TestPropertyInferIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		raw := randomSeries(r)
		once := InferSeries(raw)
		twice := InferSeries(once)
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInferPreservesObservations: inference never rewrites a
// conclusive measurement, only fills inconclusive slots.
func TestPropertyInferPreservesObservations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		raw := randomSeries(r)
		inf := InferSeries(raw)
		if len(inf) != len(raw) {
			return false
		}
		for i := range raw {
			if raw[i] != IPInconclusive && inf[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInferRuleSoundness: every filled slot is justified by one of
// the two rules — a later vulnerable observation or an earlier safe one.
func TestPropertyInferRuleSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		raw := randomSeries(r)
		inf := InferSeries(raw)
		for i := range raw {
			if raw[i] != IPInconclusive || inf[i] == IPInconclusive {
				continue
			}
			justified := false
			switch inf[i] {
			case IPVulnerable:
				for j := i + 1; j < len(raw); j++ {
					if raw[j] == IPVulnerable {
						justified = true
					}
				}
			case IPSafe:
				for j := 0; j < i; j++ {
					if raw[j] == IPSafe {
						justified = true
					}
				}
			}
			if !justified {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
