package measure

import (
	"context"
	"io"
	"net/netip"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/population"
	"spfail/internal/trace"
)

// BenchmarkCampaignThroughput measures end-to-end probes/op through the
// sharded batch pipeline on the real clock with millisecond politeness
// waits: DNS resolution, SMTP dialogue, classification, and the
// sequence-stamp merge all on the hot path. b.N counts addresses probed.
func BenchmarkCampaignThroughput(b *testing.B) {
	w := population.MustGenerate(tinySpec())
	rig, err := NewRigFromOptions(context.Background(), RigOptions{World: w, Clock: clock.Real{}})
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	c, err := NewCampaign(rig, Config{
		Suite:         "b01",
		Concurrency:   64,
		BatchSize:     500,
		GreylistWait:  time.Millisecond,
		ReconnectWait: time.Millisecond,
		IOTimeout:     2 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}

	all := rig.World.AllAddrs()
	rcpt := map[netip.Addr]string{}
	for _, a := range all {
		if ds := rig.World.DomainsOn(a); len(ds) > 0 {
			rcpt[a] = ds[0].Name
		}
	}

	b.ResetTimer()
	done := 0
	for done < b.N {
		addrs := all
		if rem := b.N - done; rem < len(addrs) {
			addrs = addrs[:rem]
		}
		err := c.MeasureAddrsFunc(context.Background(), addrs, rcpt, func(netip.Addr, core.Outcome) {})
		if err != nil {
			b.Fatal(err)
		}
		done += len(addrs)
	}
}

// BenchmarkTracedCampaignThroughput is BenchmarkCampaignThroughput with a
// full-sample tracer attached (spans discarded at the sink), so the cost
// of span capture — buffer allocation, attribute recording, per-shard
// serialization — shows up as the delta against the untraced baseline.
func BenchmarkTracedCampaignThroughput(b *testing.B) {
	w := population.MustGenerate(tinySpec())
	rig, err := NewRigFromOptions(context.Background(), RigOptions{
		World: w,
		Clock: clock.Real{},
		Trace: trace.New(io.Discard, trace.Options{Seed: 1}),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	c, err := NewCampaign(rig, Config{
		Suite:         "b01",
		Concurrency:   64,
		BatchSize:     500,
		GreylistWait:  time.Millisecond,
		ReconnectWait: time.Millisecond,
		IOTimeout:     2 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}

	all := rig.World.AllAddrs()
	rcpt := map[netip.Addr]string{}
	for _, a := range all {
		if ds := rig.World.DomainsOn(a); len(ds) > 0 {
			rcpt[a] = ds[0].Name
		}
	}

	b.ResetTimer()
	done := 0
	for done < b.N {
		addrs := all
		if rem := b.N - done; rem < len(addrs) {
			addrs = addrs[:rem]
		}
		err := c.MeasureAddrsFunc(context.Background(), addrs, rcpt, func(netip.Addr, core.Outcome) {})
		if err != nil {
			b.Fatal(err)
		}
		done += len(addrs)
	}
}
