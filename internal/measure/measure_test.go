package measure

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/population"
)

func tinySpec() population.Spec {
	s := population.DefaultSpec()
	s.Scale = 0.004 // ~1700 Alexa domains, ~90 2-week, enough structure
	s.Seed = 11
	return s
}

func newTestRig(t *testing.T, clk clock.Clock) *Rig {
	t.Helper()
	w := population.MustGenerate(tinySpec())
	rig, err := NewRigFromOptions(context.Background(), RigOptions{World: w, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	return rig
}

func fastCampaign(rig *Rig) *Campaign {
	return fastCampaignWith(rig, nil)
}

// fastCampaignWith builds the standard fast test campaign, letting the
// caller tweak the config before construction.
func fastCampaignWith(rig *Rig, mutate func(*Config)) *Campaign {
	cfg := Config{
		Suite:         "t01",
		Concurrency:   64,
		BatchSize:     500,
		GreylistWait:  time.Millisecond,
		ReconnectWait: time.Millisecond,
		IOTimeout:     2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCampaign(rig, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func TestResolveTargetsMatchesWorld(t *testing.T) {
	rig := newTestRig(t, clock.Real{})
	var domains []string
	for _, d := range rig.World.Domains[:40] {
		domains = append(domains, d.Name)
	}
	targets := rig.ResolveTargets(context.Background(), domains)
	if len(targets) != len(domains) {
		t.Fatalf("targets = %d", len(targets))
	}
	for _, tgt := range targets {
		d := rig.World.ByName[tgt.Domain]
		if len(tgt.Addrs) != len(d.Hosts) {
			t.Errorf("%s: resolved %d addrs, world has %d", tgt.Domain, len(tgt.Addrs), len(d.Hosts))
			continue
		}
		want := map[netip.Addr]bool{}
		for _, a := range d.Hosts {
			want[a] = true
		}
		for _, a := range tgt.Addrs {
			if !want[a] {
				t.Errorf("%s: unexpected addr %s", tgt.Domain, a)
			}
		}
		if tgt.HasMX != d.HasMX {
			t.Errorf("%s: HasMX = %v, world %v", tgt.Domain, tgt.HasMX, d.HasMX)
		}
	}
}

func TestUniqueAddrs(t *testing.T) {
	a1 := netip.MustParseAddr("100.64.0.1")
	a2 := netip.MustParseAddr("100.64.0.2")
	targets := []Target{
		{Domain: "a.com", Addrs: []netip.Addr{a1, a2}},
		{Domain: "b.com", Addrs: []netip.Addr{a1}},
	}
	addrs, rep := UniqueAddrs(targets)
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
	if rep[a1] != "a.com" || rep[a2] != "a.com" {
		t.Errorf("rep = %v", rep)
	}
}

// TestCampaignDetectsGroundTruth probes a slice of the world and checks
// the detector's verdicts against the generator's ground truth.
func TestCampaignDetectsGroundTruth(t *testing.T) {
	rig := newTestRig(t, clock.Real{})
	c := fastCampaign(rig)

	// Pick addresses with known ground truth: vulnerable, compliant, and
	// refusing hosts.
	var vulnAddr, safeAddr, refusedAddr netip.Addr
	var vulnDom, safeDom, refusedDom string
	for _, d := range rig.World.Domains {
		for _, a := range d.Hosts {
			h := rig.World.Hosts[a]
			switch {
			case !vulnAddr.IsValid() && h.Listens && !h.RefuseSMTP && h.EverVulnerable() && !h.BlankMsgFails &&
				h.FlakyRate == 0 && h.BlacklistProbesAt.IsZero():
				vulnAddr, vulnDom = a, d.Name
			case !safeAddr.IsValid() && h.Listens && !h.RefuseSMTP && !h.BlankMsgFails &&
				h.FlakyRate == 0 && h.BlacklistProbesAt.IsZero() &&
				len(h.Behaviors) == 1 && h.Behaviors[0] == "compliant":
				safeAddr, safeDom = a, d.Name
			case !refusedAddr.IsValid() && !h.Listens:
				refusedAddr, refusedDom = a, d.Name
			}
		}
		if vulnAddr.IsValid() && safeAddr.IsValid() && refusedAddr.IsValid() {
			break
		}
	}
	if !vulnAddr.IsValid() || !safeAddr.IsValid() || !refusedAddr.IsValid() {
		t.Fatal("world too small to find all ground-truth categories")
	}

	addrs := []netip.Addr{vulnAddr, safeAddr, refusedAddr}
	rcpt := map[netip.Addr]string{vulnAddr: vulnDom, safeAddr: safeDom, refusedAddr: refusedDom}
	results, err := c.MeasureAddrs(context.Background(), addrs, rcpt)
	if err != nil {
		t.Fatal(err)
	}

	if got := results[vulnAddr]; !got.Vulnerable() {
		t.Errorf("vulnerable host: %+v", got)
	}
	if got := results[safeAddr]; got.Status != core.StatusSPFMeasured || got.Vulnerable() {
		t.Errorf("compliant host: status %s vuln %v (err %v)", got.Status, got.Vulnerable(), got.Err)
	}
	if got := results[refusedAddr]; got.Status != core.StatusConnectionRefused {
		t.Errorf("refusing host: %+v", got)
	}
}

func TestCampaignOnSimClock(t *testing.T) {
	sim := clock.NewSim(population.TInitial)
	defer sim.Close()
	rig := newTestRig(t, sim)
	c, err := NewCampaign(rig, Config{
		Suite:       "t02",
		Concurrency: 16,
		BatchSize:   100,
		IOTimeout:   2 * time.Second,
		// Paper-faithful waits: virtual time makes them free.
		GreylistWait:  8 * time.Minute,
		ReconnectWait: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := rig.World.AllAddrs()
	if len(addrs) > 60 {
		addrs = addrs[:60]
	}
	rcpt := map[netip.Addr]string{}
	for _, a := range addrs {
		if ds := rig.World.DomainsOn(a); len(ds) > 0 {
			rcpt[a] = ds[0].Name
		}
	}
	done := make(chan map[netip.Addr]core.Outcome, 1)
	clock.Go(sim, func() {
		results, err := c.MeasureAddrs(context.Background(), addrs, rcpt)
		if err != nil {
			t.Error(err)
		}
		done <- results
	})
	select {
	case results := <-done:
		if len(results) != len(addrs) {
			t.Fatalf("results = %d, want %d", len(results), len(addrs))
		}
		var measured int
		for _, o := range results {
			if o.Status == core.StatusSPFMeasured {
				measured++
			}
		}
		if measured == 0 {
			t.Fatal("no host measured on sim clock")
		}
	case <-time.After(120 * time.Second):
		t.Fatal("campaign on sim clock did not complete (virtual-time deadlock?)")
	}
	// Probe pacing runs on per-probe frame clocks anchored at the pass's
	// asOf, so a measurement pass leaves the shared sim timeline where it
	// found it: trace bytes stay independent of batch geometry.
	if !sim.Now().Equal(population.TInitial) {
		t.Errorf("shared sim clock moved to %v during campaign, want pinned at %v",
			sim.Now(), population.TInitial)
	}
	res := c.Resources()
	if res.Batches == 0 || len(res.Shards) == 0 {
		t.Fatalf("campaign resources not recorded: %+v", res)
	}
	var probes int64
	for _, s := range res.Shards {
		probes += s.Probes
	}
	if probes != int64(len(addrs)) {
		t.Errorf("shard probe total = %d, want %d", probes, len(addrs))
	}
	if res.AllocBytes == 0 {
		t.Error("campaign alloc delta = 0, want > 0")
	}
}

func TestCampaignSetBatchSize(t *testing.T) {
	sim := clock.NewSim(population.TInitial)
	defer sim.Close()
	rig := newTestRig(t, sim)
	c, err := NewCampaign(rig, Config{Suite: "t02", BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.BatchSize(); got != 100 {
		t.Fatalf("BatchSize() = %d, want 100", got)
	}
	c.SetBatchSize(50)
	if got := c.BatchSize(); got != 50 {
		t.Errorf("after SetBatchSize(50): %d", got)
	}
	c.SetBatchSize(0) // clamps to 1, never stalls the wave loop
	if got := c.BatchSize(); got != 1 {
		t.Errorf("after SetBatchSize(0): %d, want clamp to 1", got)
	}
}

func TestInferSeriesRules(t *testing.T) {
	v, s, i := IPVulnerable, IPSafe, IPInconclusive
	cases := []struct {
		name string
		in   []IPStatus
		want []IPStatus
	}{
		{"backfill-vulnerable", []IPStatus{i, i, v, i}, []IPStatus{v, v, v, i}},
		{"forwardfill-safe", []IPStatus{v, i, s, i}, []IPStatus{v, i, s, s}},
		{"both", []IPStatus{i, v, i, s, i}, []IPStatus{v, v, i, s, s}},
		{"all-inconclusive", []IPStatus{i, i}, []IPStatus{i, i}},
		{"no-change-needed", []IPStatus{v, v, s}, []IPStatus{v, v, s}},
	}
	for _, c := range cases {
		got := InferSeries(c.in)
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("%s[%d] = %s, want %s", c.name, j, got[j], c.want[j])
			}
		}
	}
}

func TestStatusOf(t *testing.T) {
	vulnObs := core.Observation{
		Patterns: []string{"x"},
		Classes:  []core.BehaviorClass{core.ClassVulnerable},
	}
	if StatusOf(core.Outcome{Status: core.StatusSPFMeasured, Observation: vulnObs}) != IPVulnerable {
		t.Error("vulnerable mapping")
	}
	safeObs := core.Observation{
		Patterns: []string{"x"},
		Classes:  []core.BehaviorClass{core.ClassCompliant},
	}
	if StatusOf(core.Outcome{Status: core.StatusSPFMeasured, Observation: safeObs}) != IPSafe {
		t.Error("safe mapping")
	}
	if StatusOf(core.Outcome{Status: core.StatusConnectionRefused}) != IPInconclusive {
		t.Error("refused mapping")
	}
}

func TestDomainAggregation(t *testing.T) {
	a1 := netip.MustParseAddr("100.64.0.1")
	a2 := netip.MustParseAddr("100.64.0.2")
	mkOutcome := func(cls core.BehaviorClass) core.Outcome {
		return core.Outcome{
			Status: core.StatusSPFMeasured,
			Observation: core.Observation{
				Patterns: []string{"p"},
				Classes:  []core.BehaviorClass{cls},
			},
		}
	}
	t0 := time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC)
	rounds := []Round{
		{Time: t0, Results: map[netip.Addr]core.Outcome{
			a1: mkOutcome(core.ClassVulnerable),
			a2: mkOutcome(core.ClassVulnerable),
		}},
		{Time: t0.Add(48 * time.Hour), Results: map[netip.Addr]core.Outcome{
			a1: mkOutcome(core.ClassCompliant),
			// a2 missing: inconclusive.
		}},
		{Time: t0.Add(96 * time.Hour), Results: map[netip.Addr]core.Outcome{
			a1: mkOutcome(core.ClassCompliant),
			a2: mkOutcome(core.ClassCompliant),
		}},
	}
	an := Analyze(rounds, []netip.Addr{a1, a2})
	domains := map[string][]netip.Addr{"d.example": {a1, a2}}
	series := an.DomainSeries(domains)
	if len(series) != 3 {
		t.Fatalf("series = %d points", len(series))
	}
	if series[0].Vulnerable != 1 || series[0].Measured != 1 {
		t.Errorf("round 0 = %+v", series[0])
	}
	// Round 1: a1 safe, a2 inconclusive (raw) but still vulnerable? No —
	// a2 has no later vulnerable observation, and a later safe one, so
	// inference marks it... safe only from round 2 onward. Round 1 is
	// uncertain.
	if series[1].Vulnerable != 0 || series[1].Patched != 0 || series[1].Uncertain != 1 {
		t.Errorf("round 1 = %+v", series[1])
	}
	if series[1].Measured != 0 || series[1].Inferred != 0 {
		t.Errorf("round 1 conclusiveness = %+v", series[1])
	}
	if series[2].Patched != 1 || series[2].Measured != 1 {
		t.Errorf("round 2 = %+v", series[2])
	}
	if got := series[0].VulnerableRate(); got != 1 {
		t.Errorf("rate round 0 = %f", got)
	}
	if got := series[2].VulnerableRate(); got != 0 {
		t.Errorf("rate round 2 = %f", got)
	}
}

func TestLongitudinalWindowsOnSimClock(t *testing.T) {
	sim := clock.NewSim(population.TInitial)
	defer sim.Close()
	rig := newTestRig(t, sim)
	c, err := NewCampaign(rig, Config{
		Suite: "t03", Concurrency: 16, BatchSize: 100,
		GreylistWait: 8 * time.Minute, ReconnectWait: 90 * time.Second,
		IOTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Choose a few vulnerable hosts as longitudinal targets.
	var targets []netip.Addr
	rcpt := map[netip.Addr]string{}
	for _, d := range rig.World.Domains {
		for _, a := range d.Hosts {
			h := rig.World.Hosts[a]
			if h.Listens && !h.RefuseSMTP && h.EverVulnerable() {
				if _, ok := rcpt[a]; !ok {
					targets = append(targets, a)
					rcpt[a] = d.Name
				}
			}
		}
		if len(targets) >= 8 {
			break
		}
	}
	if len(targets) == 0 {
		t.Skip("no vulnerable hosts in tiny world")
	}
	l := &Longitudinal{
		Campaign:   c,
		Targets:    targets,
		RcptDomain: rcpt,
		Interval:   48 * time.Hour,
	}
	windows := []Window{
		{Start: population.TLongitudinal, End: population.TLongitudinal.Add(6 * 24 * time.Hour)},
		{Start: population.TResume, End: population.TResume.Add(4 * 24 * time.Hour)},
	}
	done := make(chan []Round, 1)
	clock.Go(sim, func() {
		rounds, err := l.Run(context.Background(), windows)
		if err != nil {
			t.Error(err)
		}
		done <- rounds
	})
	select {
	case rounds := <-done:
		// Window 1 fits ~4 biday rounds, window 2 ~3; probe time drifts
		// each round past its nominal slot, so allow one fewer per window.
		if len(rounds) < 5 {
			t.Fatalf("rounds = %d, want ≥5", len(rounds))
		}
		if rounds[0].Time.Before(population.TLongitudinal) {
			t.Errorf("first round at %v", rounds[0].Time)
		}
		last := rounds[len(rounds)-1]
		if last.Time.Before(population.TResume) {
			t.Errorf("last round at %v, want in window 2", last.Time)
		}
		for _, r := range rounds {
			if len(r.Results) != len(targets) {
				t.Errorf("round %v has %d results, want %d", r.Time, len(r.Results), len(targets))
			}
		}
	case <-time.After(120 * time.Second):
		t.Fatal("longitudinal run deadlocked")
	}
}
