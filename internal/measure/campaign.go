package measure

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/obs"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Campaign probes sets of addresses under the paper's operational
// constraints (§6.1): each distinct IP tested once per round, a hard cap
// of 250 concurrent outgoing SMTP connections, 90-second gaps between
// connections to the same server, and 8-minute greylist backoffs.
//
// Construct campaigns with NewCampaign: Config.Normalize is the single
// validation and defaulting path, and every knob — retry policy, circuit
// breaker, tracing — lives on Config.
type Campaign struct {
	Rig *Rig

	cfg      Config
	breakers *retry.Breakers

	// dynBatch is the live batch size. It starts at cfg.BatchSize and can
	// be lowered mid-run by SetBatchSize (the memory-budget watchdog's
	// degradation hook); batch partitioning is a wall-time concern only —
	// probe indices, labels, and per-probe virtual frames are all
	// independent of it — so changing it never perturbs report or trace
	// bytes.
	dynBatch atomic.Int64

	// stats accumulates per-shard and allocation accounting for the
	// resource side table; see Resources.
	stats   campaignStats
	sampler obs.AllocSampler

	labelsOnce sync.Once
	labels     *core.LabelAllocator

	// probeSeq is the campaign-lifetime probe counter feeding deterministic
	// trace IDs and sampling decisions. Campaign measurement entry points
	// are not called concurrently (MeasureAddrsFunc delivers outcomes
	// serially), so a plain field suffices.
	probeSeq uint64

	// shardScratch holds probeBatch's per-shard outcome slices, reused
	// across batches (entry points are serial, like probeSeq).
	shardScratch [][]stampedOutcome
}

// NewCampaign builds a campaign for rig from a validated config.
func NewCampaign(rig *Rig, cfg Config) (*Campaign, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	c := &Campaign{Rig: rig, cfg: norm}
	c.dynBatch.Store(int64(norm.BatchSize))
	if norm.Breaker.Enabled() {
		c.breakers = retry.NewBreakers(norm.Breaker)
	}
	return c, nil
}

func (c *Campaign) metrics() *telemetry.Registry {
	if m := c.cfg.Metrics; m != nil {
		return m
	}
	return c.Rig.Metrics
}

func (c *Campaign) tracer() *trace.Tracer {
	if t := c.cfg.Trace; t != nil {
		return t
	}
	return c.Rig.Trace
}

func (c *Campaign) suite() string { return c.cfg.Suite }

func (c *Campaign) concurrency() int { return c.cfg.Concurrency }

func (c *Campaign) batchSize() int { return int(c.dynBatch.Load()) }

// BatchSize returns the live batch size, which SetBatchSize may have
// lowered below the configured one.
func (c *Campaign) BatchSize() int { return c.batchSize() }

// SetBatchSize changes the batch size used by subsequent batch waves,
// clamped to at least 1. It is safe to call concurrently with a running
// measurement — the new size takes effect at the next wave boundary.
// Batch size only shapes wall-time execution (how many hosts are resident
// at once); it cannot alter probe outcomes, report bytes, or trace bytes.
func (c *Campaign) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	c.dynBatch.Store(int64(n))
}

// labelSeed derives the label-stream seed, mixing the suite in so the
// study's s01 and s02 campaigns draw from disjoint-looking streams.
func (c *Campaign) labelSeed() int64 {
	seed := c.Rig.World.Spec.Seed ^ 0x5bf
	for _, ch := range []byte(c.suite()) {
		seed = seed*131 + int64(ch)
	}
	return seed
}

func (c *Campaign) allocator() *core.LabelAllocator {
	c.labelsOnce.Do(func() {
		c.labels = core.NewLabelAllocator(c.Rig.World.Spec.Seed ^ 0x5bf)
	})
	return c.labels
}

func (c *Campaign) newProber() *core.Prober {
	cfg := c.cfg
	return &core.Prober{
		Net:           c.Rig.Fabric.Host(c.Rig.ProbeIP),
		HELO:          "probe.dns-lab.org",
		Clock:         c.Rig.Clock,
		IOClock:       c.Rig.Clock,
		Zone:          c.Rig.Zone,
		Labels:        c.allocator(),
		Collector:     c.Rig.Collector,
		Classifier:    c.Rig.Classifier,
		Suite:         cfg.Suite,
		GreylistWait:  cfg.GreylistWait,
		ReconnectWait: cfg.ReconnectWait,
		IOTimeout:     cfg.IOTimeout,
		Retry:         cfg.Retry,
		Breakers:      c.breakers,
		Metrics:       c.metrics(),
	}
}

// ProbeSeq returns the campaign-lifetime probe counter — the round
// boundary hook the checkpoint layer records after each measurement
// stage. Probe indices feed trace IDs, sampling decisions, and label
// streams, so a resumed campaign must continue the sequence exactly
// where the checkpointed one stopped.
func (c *Campaign) ProbeSeq() uint64 { return c.probeSeq }

// BreakerSnapshot captures the campaign's circuit-breaker state (nil
// when breakers are disabled or untouched), sorted by key.
func (c *Campaign) BreakerSnapshot() []retry.BreakerSnapshot {
	return c.breakers.Snapshot()
}

// ResumeRound restores the round boundary state a checkpoint recorded:
// the probe counter and the breaker positions. Call it between
// measurement stages only — entry points are serial, and restoring
// mid-batch would corrupt the probe index stream.
func (c *Campaign) ResumeRound(probeSeq uint64, breakers []retry.BreakerSnapshot) {
	c.probeSeq = probeSeq
	c.breakers.Restore(breakers)
}

// MeasureAddrsFunc probes each address once, delivering outcomes to fn one
// batch at a time so callers can checkpoint incrementally instead of
// holding the full result map. fn is invoked serially (no locking needed
// inside) and in input order: probes run concurrently across shards, but
// each batch's outcomes are merged by sequence stamp before delivery.
// Every address passed in is reported to fn exactly once — a probe that
// cannot complete yields a StatusInconclusive outcome rather than
// disappearing — unless ctx is cancelled or host setup fails, both of
// which surface in the returned error.
func (c *Campaign) MeasureAddrsFunc(ctx context.Context, addrs []netip.Addr, rcptDomain map[netip.Addr]string, fn func(netip.Addr, core.Outcome)) error {
	reg := c.metrics()
	// All batches of a round share one effective time: the virtual instant a
	// later batch starts depends on scheduler interleaving, and host
	// behaviour must not (determinism).
	asOf := c.Rig.Clock.Now()
	for start := 0; start < len(addrs); {
		end := start + c.batchSize()
		if end > len(addrs) {
			end = len(addrs)
		}
		batch := addrs[start:end]
		if err := c.Rig.Manager.EnsureAt(ctx, batch, asOf); err != nil {
			return fmt.Errorf("measure: starting batch hosts [%d:%d]: %w", start, end, err)
		}
		c.probeBatch(ctx, batch, asOf, rcptDomain, func(a netip.Addr, o core.Outcome) {
			fn(a, o)
			reg.Counter("campaign.probes_done").Inc()
		})
		c.Rig.Manager.Stop(batch)
		reg.Counter("campaign.batches_done").Inc()
		reg.Emit("campaign.batch", map[string]any{
			"suite": c.suite(),
			"size":  len(batch),
			"done":  end,
			"total": len(addrs),
		})
		if err := ctx.Err(); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// MeasureAddrs probes each address once and returns its outcome. rcptDomain
// supplies the recipient domain used for each address (typically the first
// domain that resolved to it). The results map holds whatever completed
// before the error, if any.
func (c *Campaign) MeasureAddrs(ctx context.Context, addrs []netip.Addr, rcptDomain map[netip.Addr]string) (map[netip.Addr]core.Outcome, error) {
	results := make(map[netip.Addr]core.Outcome, len(addrs))
	err := c.MeasureAddrsFunc(ctx, addrs, rcptDomain, func(a netip.Addr, o core.Outcome) {
		results[a] = o
	})
	return results, err
}

// stampedOutcome is one probe result tagged with its batch sequence number
// so per-shard slices can be merged back into input order. buf carries the
// probe's trace buffer (nil when untraced) so spans flush in the same
// merged order the outcomes are delivered in.
type stampedOutcome struct {
	seq int
	out core.Outcome
	buf *trace.Buffer
}

// probeBatch shards the batch over min(concurrency, len(batch)) worker
// loops: shard s probes sequence numbers s, s+shards, s+2·shards, …
// strictly in order, appending into its own outcome slice — no semaphore,
// no shared mutable state between workers. After every shard drains, the
// per-shard slices are merged by sequence stamp and record is called
// serially in input order, which is what keeps same-seed campaigns
// byte-deterministic regardless of how the shards interleave.
//
// When the rig runs on a simulated clock, the caller must be an accounted
// goroutine (clock.Go); the shard workers are accounted and the final wait
// yields to the virtual scheduler.
//
// Each probe runs on its own clock.Frame anchored at the batch's shared
// asOf, so a probe's virtual timeline — politeness gaps, greylist waits,
// retry backoffs, every traced span timestamp — depends only on the probe
// itself, never on how the batch was partitioned or sharded. SMTP I/O
// deadlines stay on the rig clock (see core.Prober.IOClock) so the fabric
// spends exactly the configured budget.
func (c *Campaign) probeBatch(ctx context.Context, batch []netip.Addr, asOf time.Time, rcptDomain map[netip.Addr]string, record func(netip.Addr, core.Outcome)) {
	if len(batch) == 0 {
		return
	}
	clk := c.Rig.Clock
	inflight := c.metrics().Gauge("campaign.inflight")
	tr := c.tracer()
	suite := c.suite()
	allocMark := c.sampler.Sample()
	// Probe indices within the campaign are assigned before the workers
	// start so trace IDs depend only on input order, never on scheduling.
	probeBase := c.probeSeq
	c.probeSeq += uint64(len(batch))
	shards := c.concurrency()
	if shards > len(batch) {
		shards = len(batch)
	}
	if shards < 1 {
		shards = 1
	}
	if len(c.shardScratch) < shards {
		old := c.shardScratch
		c.shardScratch = make([][]stampedOutcome, shards)
		copy(c.shardScratch, old)
	}
	results := c.shardScratch[:shards]
	shardWork := make([]shardDelta, shards)
	labelSeed := c.labelSeed()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		results[s] = results[s][:0]
		wg.Add(1)
		clock.Go(clk, func() {
			defer wg.Done()
			inflight.Add(1)
			defer inflight.Add(-1)
			wallStart := clock.Real{}.Now()
			// One prober and one label stream serve the whole shard: probe
			// scratch (SMTP client, transaction buffers) is reused across
			// the shard's probes instead of reallocated per probe.
			p := c.newProber()
			stream := core.NewLabelStream(labelSeed, c.allocator())
			p.NextLabel = stream.Next
			for seq := s; seq < len(batch); seq += shards {
				a := batch[seq]
				dom := rcptDomain[a]
				if dom == "" {
					dom = "example.com"
				}
				index := probeBase + uint64(seq)
				// Per-probe deterministic labels: assignment depends only
				// on (seed, suite, probe index), never on how the shards
				// interleave their draws — required for byte-identical
				// traced runs (labels appear in traced DNS query names).
				stream.Reset(index)
				p.Clock = clock.NewFrame(clk, asOf)
				out, buf := c.probeOne(ctx, tr, p, suite, index, a, dom)
				results[s] = append(results[s], stampedOutcome{seq: seq, out: out, buf: buf})
				shardWork[s].probes++
			}
			shardWork[s].wall = clock.Real{}.Now().Sub(wallStart)
		})
	}
	clock.Yield(clk, wg.Wait)
	c.stats.absorb(shardWork, c.sampler.Sample().Sub(allocMark))
	// Merge by sequence stamp: shard seq%shards holds seq at index
	// seq/shards, so this walks every shard slice in lockstep. Trace
	// buffers flush here, in the same serial order, so traced runs stay
	// byte-deterministic.
	for seq := 0; seq < len(batch); seq++ {
		st := results[seq%shards][seq/shards]
		record(batch[st.seq], st.out)
		tr.FlushBuffer(st.buf)
	}
	// Drop buffer/outcome references so the reused scratch does not pin
	// flushed trace buffers across batches.
	for s := range results {
		for i := range results[s] {
			results[s][i] = stampedOutcome{}
		}
	}
}

// probeOne runs a single probe, wrapped in its trace buffer when tracing
// is enabled. The probe's root span adopts the target host for the
// duration, so MTA-side layers (SPF evaluation, the DNS server, the fault
// engine) can attribute their work to this probe by host address.
func (c *Campaign) probeOne(ctx context.Context, tr *trace.Tracer, p *core.Prober, suite string, index uint64, a netip.Addr, dom string) (core.Outcome, *trace.Buffer) {
	buf := tr.ProbeBuffer(p.Clock, suite, index)
	if buf == nil {
		return p.TestIP(ctx, probeAddr(a), dom), nil
	}
	root := buf.Root("probe",
		trace.String("suite", suite),
		trace.Int64("index", int64(index)),
		trace.String("addr", a.String()),
		trace.String("rcpt_domain", dom),
	)
	if d := c.Rig.World.ByName[dom]; d != nil && d.Scenario != "" {
		root.SetAttrs(trace.String("scenario", d.Scenario))
	}
	release := root.Adopt(a.String())
	out := p.TestIP(trace.ContextWithSpan(ctx, root), probeAddr(a), dom)
	release()
	root.SetAttrs(
		trace.String("status", string(out.Status)),
		trace.String("method", string(out.Method)),
		trace.Int("attempts", out.Attempts),
		trace.Bool("vulnerable", out.Vulnerable()),
	)
	if out.FailReason != "" {
		root.SetAttrs(trace.String("fail_reason", out.FailReason))
	}
	if out.FailStage != "" {
		root.SetAttrs(trace.String("fail_stage", out.FailStage))
	}
	if out.Err != nil {
		root.SetAttrs(trace.String("error", out.Err.Error()))
	}
	root.End()
	return out, buf
}

// probeAddr renders "ip:25" for both families.
func probeAddr(a netip.Addr) string {
	return netip.AddrPortFrom(a, 25).String()
}

// Round is one longitudinal measurement pass.
type Round struct {
	Time    time.Time
	Results map[netip.Addr]core.Outcome
}

// Longitudinal runs repeated measurements of a fixed address set across
// measurement windows (paper §5.3: every 2 days, with a pause between
// November 30 and January 15).
type Longitudinal struct {
	Campaign *Campaign
	// Targets is the address set re-measured each round (the initially
	// vulnerable plus re-measurable inconclusive addresses).
	Targets []netip.Addr
	// RcptDomain maps each target to its recipient domain.
	RcptDomain map[netip.Addr]string
	// Interval between rounds (paper: 48h).
	Interval time.Duration
}

// Window is a half-open measurement window.
type Window struct {
	Start time.Time
	End   time.Time
}

// Run executes rounds every Interval within each window, advancing the
// campaign clock. It must run on a goroutine accounted to the simulated
// clock (use clock.Go) or with a real clock. On error the completed rounds
// are returned alongside it.
func (l *Longitudinal) Run(ctx context.Context, windows []Window) ([]Round, error) {
	clk := l.Campaign.Rig.Clock
	var rounds []Round
	for _, w := range windows {
		// Rounds are pinned to an even grid so per-round probe time does
		// not drift the cadence.
		for next := w.Start; !next.After(w.End); next = next.Add(l.Interval) {
			if d := next.Sub(clk.Now()); d > 0 {
				if err := clk.Sleep(ctx, d); err != nil {
					return rounds, err
				}
			}
			results, err := l.Campaign.MeasureAddrs(ctx, l.Targets, l.RcptDomain)
			if err != nil {
				return rounds, err
			}
			rounds = append(rounds, Round{Time: next, Results: results})
			if err := ctx.Err(); err != nil {
				return rounds, err
			}
		}
	}
	return rounds, nil
}
