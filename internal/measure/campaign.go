package measure

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/telemetry"
)

// Campaign probes sets of addresses under the paper's operational
// constraints (§6.1): each distinct IP tested once per round, a hard cap
// of 250 concurrent outgoing SMTP connections, 90-second gaps between
// connections to the same server, and 8-minute greylist backoffs.
type Campaign struct {
	Rig *Rig
	// Suite labels all probes of this campaign.
	Suite string
	// Concurrency caps simultaneous SMTP probes (paper: 250).
	Concurrency int
	// BatchSize bounds how many simulated hosts run at once; hosts are
	// brought up and torn down in waves (memory control at full scale).
	BatchSize int
	// GreylistWait and ReconnectWait override the paper's 8 min / 90 s.
	GreylistWait  time.Duration
	ReconnectWait time.Duration
	// IOTimeout bounds SMTP I/O (real time, keep small in simulation).
	IOTimeout time.Duration
	// Metrics overrides the rig's registry for this campaign's probe and
	// scheduling telemetry; nil uses Rig.Metrics.
	Metrics *telemetry.Registry

	labelsOnce sync.Once
	labels     *core.LabelAllocator
}

func (c *Campaign) metrics() *telemetry.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return c.Rig.Metrics
}

func (c *Campaign) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 250
}

func (c *Campaign) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 2000
}

func (c *Campaign) allocator() *core.LabelAllocator {
	c.labelsOnce.Do(func() {
		c.labels = core.NewLabelAllocator(c.Rig.World.Spec.Seed ^ 0x5bf)
	})
	return c.labels
}

func (c *Campaign) newProber() *core.Prober {
	return &core.Prober{
		Net:           c.Rig.Fabric.Host(c.Rig.ProbeIP),
		HELO:          "probe.dns-lab.org",
		Clock:         c.Rig.Clock,
		Zone:          c.Rig.Zone,
		Labels:        c.allocator(),
		Collector:     c.Rig.Collector,
		Classifier:    c.Rig.Classifier,
		Suite:         c.Suite,
		GreylistWait:  c.GreylistWait,
		ReconnectWait: c.ReconnectWait,
		IOTimeout:     c.IOTimeout,
		Metrics:       c.metrics(),
	}
}

// MeasureAddrs probes each address once and returns its outcome. rcptDomain
// supplies the recipient domain used for each address (typically the first
// domain that resolved to it).
func (c *Campaign) MeasureAddrs(ctx context.Context, addrs []netip.Addr, rcptDomain map[netip.Addr]string) map[netip.Addr]core.Outcome {
	results := make(map[netip.Addr]core.Outcome, len(addrs))
	var mu sync.Mutex

	reg := c.metrics()
	// All batches of a round share one effective time: the virtual instant a
	// later batch starts depends on scheduler interleaving, and host
	// behaviour must not (determinism).
	asOf := c.Rig.Clock.Now()
	for start := 0; start < len(addrs); start += c.batchSize() {
		end := start + c.batchSize()
		if end > len(addrs) {
			end = len(addrs)
		}
		batch := addrs[start:end]
		if err := c.Rig.Manager.EnsureAt(ctx, batch, asOf); err != nil {
			return results
		}
		c.probeBatch(ctx, batch, rcptDomain, func(a netip.Addr, o core.Outcome) {
			mu.Lock()
			results[a] = o
			mu.Unlock()
			reg.Counter("campaign.probes_done").Inc()
		})
		c.Rig.Manager.Stop(batch)
		reg.Counter("campaign.batches_done").Inc()
		reg.Emit("campaign.batch", map[string]any{
			"suite": c.Suite,
			"size":  len(batch),
			"done":  end,
			"total": len(addrs),
		})
		if ctx.Err() != nil {
			break
		}
	}
	return results
}

// probeBatch fans probes over the batch with the concurrency cap. When the
// rig runs on a simulated clock, the caller must be an accounted goroutine
// (clock.Go); the internal waits yield to the virtual scheduler.
func (c *Campaign) probeBatch(ctx context.Context, batch []netip.Addr, rcptDomain map[netip.Addr]string, record func(netip.Addr, core.Outcome)) {
	clk := c.Rig.Clock
	inflight := c.metrics().Gauge("campaign.inflight")
	sem := make(chan struct{}, c.concurrency())
	var wg sync.WaitGroup
	for _, a := range batch {
		a := a
		clock.Yield(clk, func() { sem <- struct{}{} })
		wg.Add(1)
		clock.Go(clk, func() {
			defer wg.Done()
			defer func() { <-sem }()
			inflight.Add(1)
			defer inflight.Add(-1)
			dom := rcptDomain[a]
			if dom == "" {
				dom = "example.com"
			}
			p := c.newProber()
			out := p.TestIP(ctx, probeAddr(a), dom)
			record(a, out)
		})
	}
	clock.Yield(clk, wg.Wait)
}

// probeAddr renders "ip:25" for both families.
func probeAddr(a netip.Addr) string {
	return netip.AddrPortFrom(a, 25).String()
}

// Round is one longitudinal measurement pass.
type Round struct {
	Time    time.Time
	Results map[netip.Addr]core.Outcome
}

// Longitudinal runs repeated measurements of a fixed address set across
// measurement windows (paper §5.3: every 2 days, with a pause between
// November 30 and January 15).
type Longitudinal struct {
	Campaign *Campaign
	// Targets is the address set re-measured each round (the initially
	// vulnerable plus re-measurable inconclusive addresses).
	Targets []netip.Addr
	// RcptDomain maps each target to its recipient domain.
	RcptDomain map[netip.Addr]string
	// Interval between rounds (paper: 48h).
	Interval time.Duration
}

// Window is a half-open measurement window.
type Window struct {
	Start time.Time
	End   time.Time
}

// Run executes rounds every Interval within each window, advancing the
// campaign clock. It must run on a goroutine accounted to the simulated
// clock (use clock.Go) or with a real clock.
func (l *Longitudinal) Run(ctx context.Context, windows []Window) []Round {
	clk := l.Campaign.Rig.Clock
	var rounds []Round
	for _, w := range windows {
		// Rounds are pinned to an even grid so per-round probe time does
		// not drift the cadence.
		for next := w.Start; !next.After(w.End); next = next.Add(l.Interval) {
			if d := next.Sub(clk.Now()); d > 0 {
				if err := clk.Sleep(ctx, d); err != nil {
					return rounds
				}
			}
			results := l.Campaign.MeasureAddrs(ctx, l.Targets, l.RcptDomain)
			rounds = append(rounds, Round{Time: next, Results: results})
			if ctx.Err() != nil {
				return rounds
			}
		}
	}
	return rounds
}
