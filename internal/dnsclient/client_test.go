package dnsclient

import (
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/netsim"
)

func name(s string) dnsmsg.Name { return dnsmsg.MustParseName(s) }

// startServer brings up an authoritative server on the fabric at ip:53.
func startServer(t *testing.T, fabric *netsim.Fabric, ip string, h dnsserver.Handler) {
	t.Helper()
	srv := &dnsserver.Server{Net: fabric.Host(ip), Addr: ":53", Handler: h}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
}

func testZone() *dnsserver.ZoneSet {
	z := dnsserver.NewZoneSet()
	z.Add(dnsmsg.Record{Name: name("example.com"), Class: dnsmsg.ClassIN, TTL: 3600,
		Data: dnsmsg.SOA{MName: name("ns.example.com"), RName: name("root.example.com"), Serial: 1}})
	z.AddTXT(name("example.com"), "v=spf1 mx -all")
	z.AddTXT(name("example.com"), "some other verification string")
	z.AddMX(name("example.com"), 20, name("backup.example.com"))
	z.AddMX(name("example.com"), 10, name("mail.example.com"))
	z.AddA(name("mail.example.com"), netip.MustParseAddr("192.0.2.10"))
	z.AddA(name("mail.example.com"), netip.MustParseAddr("2001:db8::10"))
	z.Add(dnsmsg.Record{Name: name("10.2.0.192.in-addr.arpa"), Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.PTR{Target: name("mail.example.com")}})
	return z
}

// stubResolver builds a Resolver over a bare wire Client — the layering
// every production caller now uses via NewResolver(Querier).
func stubResolver(n netsim.Network, server string, timeout time.Duration) *Resolver {
	return NewResolver(&Client{Net: n, Server: server, Timeout: timeout})
}

func newResolver(t *testing.T) (*Resolver, *netsim.Fabric) {
	fabric := netsim.NewFabric()
	startServer(t, fabric, "192.0.2.53", testZone())
	return stubResolver(fabric.Host("198.51.100.1"), "192.0.2.53:53", 2*time.Second), fabric
}

func TestLookupTXT(t *testing.T) {
	r, _ := newResolver(t)
	txts, err := r.LookupTXT(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(txts) != 2 {
		t.Fatalf("TXT = %v", txts)
	}
	var foundSPF bool
	for _, s := range txts {
		if strings.HasPrefix(s, "v=spf1") {
			foundSPF = true
		}
	}
	if !foundSPF {
		t.Errorf("no SPF string in %v", txts)
	}
}

func TestLookupTXTNXDomain(t *testing.T) {
	r, _ := newResolver(t)
	_, err := r.LookupTXT(context.Background(), "missing.example.com")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want NXDOMAIN taxonomy", err)
	}
}

func TestLookupIPBothFamilies(t *testing.T) {
	r, _ := newResolver(t)
	addrs, err := r.LookupIP(context.Background(), "ip", "mail.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
	a4, err := r.LookupIP(context.Background(), "ip4", "mail.example.com")
	if err != nil || len(a4) != 1 || !a4[0].Is4() {
		t.Fatalf("ip4 = %v, %v", a4, err)
	}
	a6, err := r.LookupIP(context.Background(), "ip6", "mail.example.com")
	if err != nil || len(a6) != 1 || !a6[0].Is6() {
		t.Fatalf("ip6 = %v, %v", a6, err)
	}
}

func TestLookupMXSorted(t *testing.T) {
	r, _ := newResolver(t)
	mxs, err := r.LookupMX(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(mxs) != 2 || mxs[0].Preference != 10 || mxs[0].Host != "mail.example.com." {
		t.Fatalf("MX = %v", mxs)
	}
}

func TestLookupPTR(t *testing.T) {
	r, _ := newResolver(t)
	ptrs, err := r.LookupPTR(context.Background(), netip.MustParseAddr("192.0.2.10"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 1 || ptrs[0] != "mail.example.com." {
		t.Fatalf("PTR = %v", ptrs)
	}
}

func TestExchangeTimeoutIsTemporary(t *testing.T) {
	fabric := netsim.NewFabric()
	// No server at this address: UDP datagrams vanish.
	r := stubResolver(fabric.Host("198.51.100.1"), "192.0.2.99:53", 30*time.Millisecond)
	_, err := r.LookupTXT(context.Background(), "example.com")
	if err == nil {
		t.Fatal("lookup against absent server should fail")
	}
	if !IsTemporary(err) {
		t.Fatalf("err = %v, want temporary taxonomy", err)
	}
}

func TestExchangeTruncationFallsBackToTCP(t *testing.T) {
	z := dnsserver.NewZoneSet()
	// ~40 × 110 bytes of TXT ≈ 4.4 KB: must arrive via TCP.
	for i := 0; i < 40; i++ {
		z.AddTXT(name("big.example.com"), strings.Repeat("y", 100))
	}
	fabric := netsim.NewFabric()
	startServer(t, fabric, "10.0.0.53", z)
	r := stubResolver(fabric.Host("10.0.0.2"), "10.0.0.53:53", 2*time.Second)
	txts, err := r.LookupTXT(context.Background(), "big.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(txts) != 40 {
		t.Fatalf("got %d TXT strings over TCP fallback, want 40", len(txts))
	}
}

func TestExchangeRetriesAfterLoss(t *testing.T) {
	fabric := netsim.NewFabric()
	startServer(t, fabric, "10.0.1.53", testZone())
	var dropped bool
	fabric.DropUDP = func(from, to netsim.Addr) bool {
		if to.Port == 53 && !dropped {
			dropped = true // lose exactly the first query
			return true
		}
		return false
	}
	r := NewResolver(&Client{
		Net:     fabric.Host("10.0.1.2"),
		Server:  "10.0.1.53:53",
		Timeout: 100 * time.Millisecond,
		Retries: 2,
	})
	txts, err := r.LookupTXT(context.Background(), "example.com")
	if err != nil {
		t.Fatalf("retry did not recover from loss: %v", err)
	}
	if len(txts) == 0 {
		t.Fatal("no TXT after retry")
	}
}

func TestClientIgnoresSpoofedResponses(t *testing.T) {
	// An off-path attacker (or misdelivery) injecting a response with the
	// wrong transaction ID must not be accepted; the genuine answer that
	// follows must be.
	fabric := netsim.NewFabric()
	// A raw UDP responder (not dnsserver.Server) so the spoofed datagram
	// can be injected ahead of the genuine one.
	pc, err := fabric.Host("10.7.0.53").ListenPacket("udp", ":53")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 4096)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			q, err := dnsmsg.Unpack(buf[:n])
			if err != nil {
				continue
			}
			// 1. Spoofed response: wrong ID, attacker-controlled answer.
			spoof := q.Reply()
			spoof.Header.ID = q.Header.ID + 1
			spoof.Answers = append(spoof.Answers, dnsmsg.Record{
				Name: q.Questions[0].Name, Class: dnsmsg.ClassIN, TTL: 1,
				Data: dnsmsg.TXT{Strings: []string{"v=spf1 +all"}},
			})
			if pkt, err := spoof.Pack(); err == nil {
				pc.WriteTo(pkt, from)
			}
			// 2. Genuine response.
			real := q.Reply()
			real.Answers = append(real.Answers, dnsmsg.Record{
				Name: q.Questions[0].Name, Class: dnsmsg.ClassIN, TTL: 1,
				Data: dnsmsg.TXT{Strings: []string{"v=spf1 -all"}},
			})
			if pkt, err := real.Pack(); err == nil {
				pc.WriteTo(pkt, from)
			}
		}
	}()
	r := stubResolver(fabric.Host("10.7.0.2"), "10.7.0.53:53", 2*time.Second)
	txts, err := r.LookupTXT(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(txts) != 1 || txts[0] != "v=spf1 -all" {
		t.Fatalf("client accepted spoofed answer: %v", txts)
	}
}

func TestReverseName(t *testing.T) {
	if got := ReverseName(netip.MustParseAddr("192.0.2.10")); got != "10.2.0.192.in-addr.arpa" {
		t.Errorf("v4 reverse = %q", got)
	}
	got := ReverseName(netip.MustParseAddr("2001:db8::1"))
	if !strings.HasSuffix(got, ".ip6.arpa") || !strings.HasPrefix(got, "1.0.0.0.") {
		t.Errorf("v6 reverse = %q", got)
	}
	if len(strings.Split(got, ".")) != 34 {
		t.Errorf("v6 reverse has wrong label count: %q", got)
	}
}

func TestServFailIsTemporary(t *testing.T) {
	fabric := netsim.NewFabric()
	h := dnsserver.HandlerFunc(func(q *dnsmsg.Message, _ net.Addr) *dnsmsg.Message {
		r := q.Reply()
		r.Header.RCode = dnsmsg.RCodeServFail
		return r
	})
	srv := &dnsserver.Server{Net: fabric.Host("10.0.2.53"), Addr: ":53", Handler: h}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	r := stubResolver(fabric.Host("10.0.2.2"), "10.0.2.53:53", time.Second)
	_, err := r.LookupTXT(context.Background(), "example.com")
	if !IsTemporary(err) {
		t.Fatalf("SERVFAIL should map to temporary, got %v", err)
	}
}
