package dnsclient

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"spfail/internal/dnsmsg"
	"spfail/internal/telemetry"
)

// countingBatcher answers every question with a TXT record echoing its own
// name, recording how the questions arrived.
type countingBatcher struct {
	mu        sync.Mutex
	batches   int
	questions int
	maxBatch  int
}

func (c *countingBatcher) Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	res := c.QueryBatch(ctx, []BatchQuestion{{Name: name, Type: typ, Ctx: ctx}})
	return res[0].Msg, res[0].Err
}

func (c *countingBatcher) QueryBatch(ctx context.Context, qs []BatchQuestion) []BatchResult {
	c.mu.Lock()
	c.batches++
	c.questions += len(qs)
	if len(qs) > c.maxBatch {
		c.maxBatch = len(qs)
	}
	c.mu.Unlock()
	out := make([]BatchResult, len(qs))
	for i, q := range qs {
		r := dnsmsg.NewQuery(1, q.Name, q.Type).Reply()
		r.Answers = append(r.Answers, dnsmsg.Record{
			Name: q.Name, Class: dnsmsg.ClassIN, TTL: 60,
			Data: dnsmsg.TXT{Strings: []string{q.Name.String()}},
		})
		out[i] = BatchResult{Msg: r}
	}
	return out
}

// Concurrent callers hammering one Pipeline: every caller must get exactly
// its own answer back (no cross-wiring between coalesced questions), every
// question must reach the upstream exactly once, and no batch may exceed
// MaxBatch. Run with -race (CI does) to verify the queue handoff.
func TestPipelineConcurrentQueries(t *testing.T) {
	up := &countingBatcher{}
	reg := telemetry.New()
	p := &Pipeline{Upstream: up, MaxBatch: 4, Metrics: reg}

	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := name(fmt.Sprintf("w%d-q%d.example.com", w, i))
				msg, err := p.Query(context.Background(), n, dnsmsg.TypeTXT)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", n, err)
					continue
				}
				if len(msg.Answers) != 1 {
					errs <- fmt.Errorf("%s: %d answers", n, len(msg.Answers))
					continue
				}
				txt, ok := msg.Answers[0].Data.(dnsmsg.TXT)
				if !ok || len(txt.Strings) != 1 || txt.Strings[0] != n.String() {
					errs <- fmt.Errorf("%s: got answer %v — cross-wired batch result", n, msg.Answers[0].Data)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if up.questions != workers*perWorker {
		t.Fatalf("upstream saw %d questions, want %d", up.questions, workers*perWorker)
	}
	if up.maxBatch > 4 {
		t.Fatalf("upstream saw a batch of %d, MaxBatch is 4", up.maxBatch)
	}
	if up.batches > up.questions {
		t.Fatalf("batches (%d) exceed questions (%d)", up.batches, up.questions)
	}
	if got := reg.Counter("dns.pipeline.questions").Value(); got != int64(workers*perWorker) {
		t.Fatalf("dns.pipeline.questions = %d, want %d", got, workers*perWorker)
	}
}

// A lone query must dispatch immediately as a batch of one — natural
// batching adds no artificial latency.
func TestPipelineLoneQueryDispatchesAlone(t *testing.T) {
	up := &countingBatcher{}
	p := &Pipeline{Upstream: up}
	if _, err := p.Query(context.Background(), name("solo.example.com"), dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if up.batches != 1 || up.questions != 1 {
		t.Fatalf("batches=%d questions=%d, want 1/1", up.batches, up.questions)
	}
}

// Explicit batches pass through untouched and preserve index order.
func TestPipelineQueryBatchPreservesOrder(t *testing.T) {
	up := &countingBatcher{}
	p := &Pipeline{Upstream: up}
	qs := []BatchQuestion{
		{Name: name("a.example.com"), Type: dnsmsg.TypeA},
		{Name: name("b.example.com"), Type: dnsmsg.TypeAAAA},
		{Name: name("c.example.com"), Type: dnsmsg.TypeTXT},
	}
	res := p.QueryBatch(context.Background(), qs)
	if len(res) != len(qs) {
		t.Fatalf("results = %d, want %d", len(res), len(qs))
	}
	for i, r := range res {
		txt := r.Msg.Answers[0].Data.(dnsmsg.TXT)
		if txt.Strings[0] != qs[i].Name.String() {
			t.Fatalf("index %d: answer %q, want %q", i, txt.Strings[0], qs[i].Name)
		}
	}
	if up.batches != 1 || up.questions != 3 {
		t.Fatalf("batches=%d questions=%d, want 1/3", up.batches, up.questions)
	}
}
