// Package dnsclient implements a stub resolver over UDP with TCP fallback.
// It is the resolver used by simulated mail hosts for SPF validation and by
// the prober for MX resolution, and it satisfies the SPF engine's Resolver
// contract with the RFC 7208 error taxonomy (NXDOMAIN is "no data", SERVFAIL
// and timeouts are temporary errors).
package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/netsim"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Error taxonomy mapped from response codes and transport failures.
var (
	// ErrNotFound corresponds to NXDOMAIN: the name does not exist.
	ErrNotFound = errors.New("dnsclient: no such domain")
	// ErrTemporary corresponds to SERVFAIL, timeouts, and transport
	// errors: the lookup may succeed later.
	ErrTemporary = errors.New("dnsclient: temporary resolution failure")
)

// Client performs DNS transactions against a single server.
type Client struct {
	// Net supplies connectivity; required.
	Net netsim.Network
	// Server is the resolver/authoritative address, e.g. "192.0.2.53:53".
	Server string
	// Timeout bounds each transaction attempt. Defaults to 2s.
	Timeout time.Duration
	// Retries is the number of additional UDP attempts. Defaults to 1.
	// Ignored when Retry is enabled.
	Retries int
	// Retry, when enabled (MaxAttempts > 1), replaces the legacy
	// immediate-retransmit loop: attempts are bounded by the policy and
	// separated by its jittered backoff slept on Clk. Leave zero on
	// resolvers driven by goroutines not accounted to a simulated clock
	// (e.g. MTA hosts): their sleeps would corrupt the clock's
	// bookkeeping.
	Retry retry.Policy
	// Metrics, when non-nil, receives lookup/retry/latency metrics
	// (see docs/telemetry.md).
	Metrics *telemetry.Registry
	// Clk supplies time for deadlines and latency accounting. Defaults
	// to the real clock.
	Clk clock.Clock

	mu     sync.Mutex
	nextID uint16
}

func (c *Client) clock() clock.Clock {
	if c.Clk != nil {
		return c.Clk
	}
	return clock.Real{}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

func (c *Client) id() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// udpBufPool recycles the 64 KiB datagram read buffers: allocating (and
// zeroing) one per exchange dominated the old hot path's allocation profile.
var udpBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64<<10)
	return &b
}}

// Query sends one query and returns the validated response, implementing
// Querier over the wire (UDP with TCP fallback on truncation).
func (c *Client) Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	return c.query(ctx, nil, name, typ)
}

// QueryBatch implements BatchQuerier: the questions share one UDP socket,
// exchanged strictly in order (see BatchQuerier for why serialized order is
// load-bearing), so a multi-question batch costs one dial instead of one
// per question. Per-question contexts keep trace attribution; per-question
// failures fall back to the usual retry/TCP machinery independently.
func (c *Client) QueryBatch(ctx context.Context, qs []BatchQuestion) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	var conn net.Conn
	if len(qs) > 1 {
		if cn, err := c.Net.DialContext(ctx, "udp", c.Server); err == nil {
			conn = cn
			defer cn.Close()
		}
		c.Metrics.Counter("dns.client.batches").Inc()
		c.Metrics.Counter("dns.client.batch_questions").Add(int64(len(qs)))
	}
	for i, bq := range qs {
		qctx := ctx
		if bq.Ctx != nil {
			qctx = bq.Ctx
		}
		out[i].Msg, out[i].Err = c.query(qctx, conn, bq.Name, bq.Type)
	}
	return out
}

// query is the shared transaction body. conn, when non-nil, is a caller-
// owned UDP socket reused across a batch; nil dials per attempt.
func (c *Client) query(ctx context.Context, conn net.Conn, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	c.Metrics.Counter("dns.client.lookups").Inc()
	start := c.clock().Now()
	ctx, qsp := trace.StartSpan(ctx, "dns.query")
	if qsp != nil {
		qsp.SetAttrs(trace.String("name", name.String()), trace.String("type", typ.String()))
	}
	q := dnsmsg.NewQuery(c.id(), name, typ)
	attempts := 1 + c.Retries
	if c.Retries == 0 {
		attempts = 2
	}
	if c.Retry.Enabled() {
		attempts = c.Retry.MaxAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.Metrics.Counter("dns.client.retries").Inc()
			if qsp != nil {
				qsp.Event("dns.client.retry", trace.Int("attempt", i))
			}
			if c.Retry.Enabled() {
				if err := c.Retry.Wait(ctx, c.clock(), c.Server, i); err != nil {
					if lastErr == nil {
						lastErr = err
					}
					break
				}
			}
		}
		resp, err := c.exchangeUDP(ctx, conn, q)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.Truncated {
			c.Metrics.Counter("dns.client.tcp_fallbacks").Inc()
			if qsp != nil {
				qsp.Event("dns.client.tcp_fallback")
			}
			resp, err = c.exchangeTCP(ctx, q)
			if err != nil {
				lastErr = err
				continue
			}
		}
		c.Metrics.Histogram("dns.client.latency").Record(c.clock().Now().Sub(start))
		if qsp != nil {
			qsp.SetAttrs(
				trace.String("rcode", resp.Header.RCode.String()),
				trace.Int("answers", len(resp.Answers)),
			)
			qsp.End()
		}
		return resp, nil
	}
	c.Metrics.Counter("dns.client.failures").Inc()
	if qsp != nil {
		if lastErr != nil {
			qsp.SetAttrs(trace.String("error", lastErr.Error()))
		}
		qsp.End()
	}
	return nil, fmt.Errorf("%w: %v", ErrTemporary, lastErr)
}

func (c *Client) exchangeUDP(ctx context.Context, conn net.Conn, q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if conn == nil {
		cn, err := c.Net.DialContext(ctx, "udp", c.Server)
		if err != nil {
			return nil, err
		}
		defer cn.Close()
		conn = cn
	}
	pkt, err := q.Pack()
	if err != nil {
		return nil, err
	}
	deadline := c.clock().Now().Add(c.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(pkt); err != nil {
		return nil, err
	}
	bufp := udpBufPool.Get().(*[]byte)
	defer udpBufPool.Put(bufp)
	buf := *bufp
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if c.matches(q, resp) {
			return resp, nil
		}
	}
}

func (c *Client) exchangeTCP(ctx context.Context, q *dnsmsg.Message) (*dnsmsg.Message, error) {
	conn, err := c.Net.DialContext(ctx, "tcp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := c.clock().Now().Add(c.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := dnsserver.WriteTCPMessage(conn, q); err != nil {
		return nil, err
	}
	raw, err := dnsserver.ReadTCPMessage(conn)
	if err != nil {
		return nil, err
	}
	resp, err := dnsmsg.Unpack(raw)
	if err != nil {
		return nil, err
	}
	if !c.matches(q, resp) {
		return nil, errors.New("dnsclient: mismatched TCP response")
	}
	return resp, nil
}

// matches validates that a response answers our query (ID and question).
func (c *Client) matches(q, r *dnsmsg.Message) bool {
	if !r.Header.Response || r.Header.ID != q.Header.ID || len(r.Questions) != 1 {
		return false
	}
	return r.Questions[0].Name.Equal(q.Questions[0].Name) &&
		r.Questions[0].Type == q.Questions[0].Type
}

// Resolver provides typed lookups with the RFC 7208 error taxonomy on top
// of any Querier — a bare Client, a SingleFlight, or a CachingClient stack.
type Resolver struct {
	// Querier performs transactions; required.
	Querier Querier
}

// NewResolver builds a resolver over q.
func NewResolver(q Querier) *Resolver {
	return &Resolver{Querier: q}
}

// do performs one transaction via the configured path.
func (r *Resolver) do(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	return r.Querier.Query(ctx, name, typ)
}

// rcodeErr maps response codes to the error taxonomy; nil means usable.
func rcodeErr(r *dnsmsg.Message) error {
	switch r.Header.RCode {
	case dnsmsg.RCodeNoError:
		return nil
	case dnsmsg.RCodeNXDomain:
		return ErrNotFound
	default:
		return fmt.Errorf("%w: rcode %s", ErrTemporary, r.Header.RCode)
	}
}

// LookupTXT returns the text of each TXT record for name, with each
// record's character strings concatenated (RFC 7208 §3.3).
func (r *Resolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	n, err := dnsmsg.ParseName(name)
	if err != nil {
		return nil, err
	}
	resp, err := r.do(ctx, n, dnsmsg.TypeTXT)
	if err != nil {
		return nil, err
	}
	if err := rcodeErr(resp); err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range resp.Answers {
		if txt, ok := rr.Data.(dnsmsg.TXT); ok {
			out = append(out, txt.Joined())
		}
	}
	return out, nil
}

// LookupIP returns A and/or AAAA addresses for name. network is "ip",
// "ip4", or "ip6".
func (r *Resolver) LookupIP(ctx context.Context, network, name string) ([]netip.Addr, error) {
	n, err := dnsmsg.ParseName(name)
	if err != nil {
		return nil, err
	}
	var results []BatchResult
	switch network {
	case "ip4":
		results = r.lookupTypes(ctx, n, dnsmsg.TypeA)
	case "ip6":
		results = r.lookupTypes(ctx, n, dnsmsg.TypeAAAA)
	default:
		// Dual-family lookups travel as one batch — a single virtual
		// round-trip through any batching layer in the stack — instead of
		// an A transaction followed by a AAAA transaction.
		results = r.lookupTypes(ctx, n, dnsmsg.TypeA, dnsmsg.TypeAAAA)
	}
	var out []netip.Addr
	var firstErr error
	for _, res := range results {
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		if err := rcodeErr(res.Msg); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		firstErr = nil
		for _, rr := range res.Msg.Answers {
			switch d := rr.Data.(type) {
			case dnsmsg.A:
				out = append(out, d.Addr)
			case dnsmsg.AAAA:
				out = append(out, d.Addr)
			}
		}
	}
	if len(out) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// lookupTypes queries name for each type, batching when more than one type
// is requested. Results are in types order regardless of transport.
func (r *Resolver) lookupTypes(ctx context.Context, name dnsmsg.Name, types ...dnsmsg.Type) []BatchResult {
	if len(types) == 1 {
		msg, err := r.do(ctx, name, types[0])
		return []BatchResult{{Msg: msg, Err: err}}
	}
	qs := make([]BatchQuestion, len(types))
	for i, typ := range types {
		qs[i] = BatchQuestion{Name: name, Type: typ, Ctx: ctx}
	}
	return queryAll(ctx, r.Querier, qs)
}

// MXRecord is one mail exchanger.
type MXRecord struct {
	Preference uint16
	Host       string
}

// LookupMX returns the MX records for name sorted by preference.
func (r *Resolver) LookupMX(ctx context.Context, name string) ([]MXRecord, error) {
	n, err := dnsmsg.ParseName(name)
	if err != nil {
		return nil, err
	}
	resp, err := r.do(ctx, n, dnsmsg.TypeMX)
	if err != nil {
		return nil, err
	}
	if err := rcodeErr(resp); err != nil {
		return nil, err
	}
	var out []MXRecord
	for _, rr := range resp.Answers {
		if mx, ok := rr.Data.(dnsmsg.MX); ok {
			out = append(out, MXRecord{Preference: mx.Preference, Host: mx.Host.String()})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Preference < out[j].Preference })
	return out, nil
}

// LookupPTR returns PTR targets for the reverse name of addr.
func (r *Resolver) LookupPTR(ctx context.Context, addr netip.Addr) ([]string, error) {
	n, err := dnsmsg.ParseName(ReverseName(addr))
	if err != nil {
		return nil, err
	}
	resp, err := r.do(ctx, n, dnsmsg.TypePTR)
	if err != nil {
		return nil, err
	}
	if err := rcodeErr(resp); err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range resp.Answers {
		if p, ok := rr.Data.(dnsmsg.PTR); ok {
			out = append(out, p.Target.String())
		}
	}
	return out, nil
}

// ReverseName returns the in-addr.arpa / ip6.arpa name for addr.
func ReverseName(addr netip.Addr) string {
	if addr.Is4() {
		b := addr.As4()
		return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", b[3], b[2], b[1], b[0])
	}
	b := addr.As16()
	const hex = "0123456789abcdef"
	out := make([]byte, 0, 72)
	for i := 15; i >= 0; i-- {
		out = append(out, hex[b[i]&0xF], '.', hex[b[i]>>4], '.')
	}
	return string(out) + "ip6.arpa"
}

// IsNotFound reports whether err is the NXDOMAIN taxonomy error.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// IsTemporary reports whether err is a temporary resolution failure; net
// timeouts and dial errors count.
func IsTemporary(err error) bool {
	if errors.Is(err, ErrTemporary) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
