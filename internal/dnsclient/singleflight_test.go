package dnsclient

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"spfail/internal/dnsmsg"
	"spfail/internal/telemetry"
)

// blockingQuerier answers queries only after release is closed, counting
// upstream transactions so coalescing is observable.
type blockingQuerier struct {
	release chan struct{}
	started chan struct{} // one tick per upstream call reaching the querier
	calls   atomic.Int64
	err     error
}

func (b *blockingQuerier) Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	b.calls.Add(1)
	if b.started != nil {
		b.started <- struct{}{}
	}
	<-b.release
	if b.err != nil {
		return nil, b.err
	}
	r := dnsmsg.NewQuery(1, name, typ).Reply()
	r.Answers = append(r.Answers, dnsmsg.Record{
		Name: name, Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.TXT{Strings: []string{"v=spf1 -all"}},
	})
	return r, nil
}

func TestSingleFlightCoalescesConcurrentQueries(t *testing.T) {
	up := &blockingQuerier{release: make(chan struct{}), started: make(chan struct{}, 1)}
	reg := telemetry.New()
	sf := &SingleFlight{Upstream: up, Metrics: reg}
	n := name("coalesce.example.com")

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*dnsmsg.Message, callers)
	errs := make([]error, callers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = sf.Query(context.Background(), n, dnsmsg.TypeTXT)
	}()
	<-up.started // leader is now in flight; everyone else must coalesce
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sf.Query(context.Background(), n, dnsmsg.TypeTXT)
		}(i)
	}
	// Wait until all followers are registered before releasing the leader.
	for {
		sf.mu.Lock()
		c, ok := sf.inflight[cacheKey{name: n.CanonicalKey(), typ: dnsmsg.TypeTXT}]
		sf.mu.Unlock()
		if ok && c != nil && reg.Counter("dns.flight.coalesced").Value() == callers-1 {
			break
		}
	}
	close(up.release)
	wg.Wait()

	if got := up.calls.Load(); got != 1 {
		t.Fatalf("upstream saw %d transactions for %d concurrent callers, want 1", got, callers)
	}
	for i := range results {
		if errs[i] != nil || results[i] == nil {
			t.Fatalf("caller %d: msg=%v err=%v", i, results[i], errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("caller %d got a different message pointer than the leader", i)
		}
	}
	if leaders := reg.Counter("dns.flight.leaders").Value(); leaders != 1 {
		t.Errorf("dns.flight.leaders = %d, want 1", leaders)
	}
	if co := reg.Counter("dns.flight.coalesced").Value(); co != callers-1 {
		t.Errorf("dns.flight.coalesced = %d, want %d", co, callers-1)
	}
}

func TestSingleFlightSharesLeaderError(t *testing.T) {
	boom := errors.New("upstream exploded")
	up := &blockingQuerier{release: make(chan struct{}), started: make(chan struct{}, 1), err: boom}
	sf := &SingleFlight{Upstream: up}
	n := name("fail.example.com")

	var wg sync.WaitGroup
	var leaderErr, followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderErr = sf.Query(context.Background(), n, dnsmsg.TypeA)
	}()
	<-up.started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, followerErr = sf.Query(context.Background(), n, dnsmsg.TypeA)
	}()
	// The follower may still be pre-registration; give it until it either
	// coalesces or becomes a second leader (both paths end the test).
	close(up.release)
	wg.Wait()

	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v", leaderErr)
	}
	if !errors.Is(followerErr, boom) {
		t.Fatalf("follower error = %v, want the leader's", followerErr)
	}
}

func TestSingleFlightFollowerHonorsContext(t *testing.T) {
	up := &blockingQuerier{release: make(chan struct{}), started: make(chan struct{}, 1)}
	sf := &SingleFlight{Upstream: up}
	n := name("stuck.example.com")

	go sf.Query(context.Background(), n, dnsmsg.TypeTXT) // leader, blocked forever
	<-up.started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sf.Query(ctx, n, dnsmsg.TypeTXT)
		done <- err
	}()
	// Spin until the follower has coalesced (it holds no lock while waiting).
	for {
		sf.mu.Lock()
		_, ok := sf.inflight[cacheKey{name: n.CanonicalKey(), typ: dnsmsg.TypeTXT}]
		sf.mu.Unlock()
		if ok {
			break
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower returned %v, want context.Canceled", err)
	}
	close(up.release) // unblock the leader so the goroutine exits
}

func TestSingleFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	up := &blockingQuerier{release: make(chan struct{})}
	close(up.release) // answer immediately
	sf := &SingleFlight{Upstream: up}

	if _, err := sf.Query(context.Background(), name("a.example.com"), dnsmsg.TypeTXT); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Query(context.Background(), name("a.example.com"), dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	// Sequential queries for the same key also each reach upstream: the
	// flight is deregistered before its result is published.
	if _, err := sf.Query(context.Background(), name("a.example.com"), dnsmsg.TypeTXT); err != nil {
		t.Fatal(err)
	}
	if got := up.calls.Load(); got != 3 {
		t.Fatalf("upstream saw %d transactions, want 3", got)
	}
}
