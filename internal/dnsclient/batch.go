package dnsclient

import (
	"context"
	"sync"

	"spfail/internal/dnsmsg"
	"spfail/internal/telemetry"
)

// BatchQuestion is one question of a pipelined batch.
type BatchQuestion struct {
	Name dnsmsg.Name
	Type dnsmsg.Type
	// Ctx, when non-nil, carries this question's cancellation and trace
	// span; a batch built from several callers keeps each caller's
	// attribution. Nil falls back to the batch-level context.
	Ctx context.Context
}

// BatchResult is the outcome for the question at the same index.
type BatchResult struct {
	Msg *dnsmsg.Message
	Err error
}

// BatchQuerier is a Querier that can resolve several questions in one
// virtual round-trip: one socket, one deadline budget, one pass through the
// connection machinery instead of a dial per question.
//
// Within a batch the wire exchanges stay strictly serialized in question
// order. That is deliberate, not a missed optimization: the fault engine
// counts each host's datagrams in sequence and the authoritative server
// attributes trace events per packet, so overlapping in-flight queries from
// one host would make faulty and traced campaign runs depend on scheduler
// interleaving. The batch removes per-question dial and buffer costs while
// keeping every host's datagram order reproducible.
type BatchQuerier interface {
	Querier
	QueryBatch(ctx context.Context, qs []BatchQuestion) []BatchResult
}

// queryAll resolves qs through q, using one QueryBatch call when the layer
// supports batching and falling back to sequential Query calls otherwise.
func queryAll(ctx context.Context, q Querier, qs []BatchQuestion) []BatchResult {
	if bq, ok := q.(BatchQuerier); ok {
		return bq.QueryBatch(ctx, qs)
	}
	out := make([]BatchResult, len(qs))
	for i, bq := range qs {
		qctx := ctx
		if bq.Ctx != nil {
			qctx = bq.Ctx
		}
		out[i].Msg, out[i].Err = q.Query(qctx, bq.Name, bq.Type)
	}
	return out
}

// Pipeline coalesces queries that arrive while an exchange is in flight
// into batches for a BatchQuerier upstream — natural batching, with no
// artificial delay: a lone query dispatches immediately as a batch of one,
// and whatever queued up behind an in-flight dispatch forms the next batch.
// It slots between the wire Client and SingleFlight:
//
//	&Client{...}                          // wire
//	&Pipeline{Upstream: client}           // + query pipelining
//	&SingleFlight{Upstream: pipeline}     // + in-flight dedup
//	NewCachingClient(flight, clk)         // + TTL cache
//	NewResolver(cache)                    // + typed lookups
type Pipeline struct {
	// Upstream executes the batches; required.
	Upstream BatchQuerier
	// MaxBatch caps questions per dispatch. 0 means 16.
	MaxBatch int
	// Metrics, when non-nil, receives dns.pipeline.* counters
	// (see docs/telemetry.md).
	Metrics *telemetry.Registry

	mu    sync.Mutex
	queue []*pipelineCall // guarded by mu
	busy  bool            // guarded by mu
}

type pipelineCall struct {
	q    BatchQuestion
	done chan struct{}
	msg  *dnsmsg.Message
	err  error
}

func (p *Pipeline) maxBatch() int {
	if p.MaxBatch > 0 {
		return p.MaxBatch
	}
	return 16
}

// Query implements Querier. The caller's question joins the queue; if no
// dispatch is running this caller volunteers to drive one, otherwise the
// in-flight dispatcher (or its successor) picks the question up.
func (p *Pipeline) Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	call := &pipelineCall{
		q:    BatchQuestion{Name: name, Type: typ, Ctx: ctx},
		done: make(chan struct{}),
	}
	p.mu.Lock()
	p.queue = append(p.queue, call)
	start := !p.busy
	if start {
		p.busy = true
	}
	p.mu.Unlock()
	if start {
		p.drain()
	}
	select {
	case <-call.done:
		return call.msg, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueryBatch implements BatchQuerier: an explicit batch already has its
// questions together, so it goes straight upstream without queueing.
func (p *Pipeline) QueryBatch(ctx context.Context, qs []BatchQuestion) []BatchResult {
	p.countBatch(len(qs))
	return p.Upstream.QueryBatch(ctx, qs)
}

// drain dispatches one queued batch, then either retires (queue empty) or
// hands the remainder to a fresh goroutine so the caller that volunteered
// as dispatcher returns as soon as its own result is published.
func (p *Pipeline) drain() {
	p.mu.Lock()
	n := len(p.queue)
	if n == 0 {
		p.busy = false
		p.mu.Unlock()
		return
	}
	if max := p.maxBatch(); n > max {
		n = max
	}
	batch := make([]*pipelineCall, n)
	copy(batch, p.queue)
	p.queue = p.queue[n:]
	p.mu.Unlock()

	p.countBatch(len(batch))
	qs := make([]BatchQuestion, len(batch))
	for i, c := range batch {
		qs[i] = c.q
	}
	res := p.Upstream.QueryBatch(context.Background(), qs)
	for i, c := range batch {
		c.msg, c.err = res[i].Msg, res[i].Err
		close(c.done)
	}

	p.mu.Lock()
	if len(p.queue) == 0 {
		p.busy = false
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	go p.drain()
}

func (p *Pipeline) countBatch(n int) {
	p.Metrics.Counter("dns.pipeline.batches").Inc()
	p.Metrics.Counter("dns.pipeline.questions").Add(int64(n))
	if n > 1 {
		p.Metrics.Counter("dns.pipeline.coalesced").Add(int64(n - 1))
	}
}

var _ BatchQuerier = (*Pipeline)(nil)
