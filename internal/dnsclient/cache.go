package dnsclient

import (
	"context"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// CachingClient wraps a Querier with a TTL-respecting message cache, the
// recursive-resolver behaviour real MTAs sit behind. Positive answers are
// cached for the minimum answer TTL; negative answers (NXDOMAIN/empty)
// for the SOA minimum when present.
//
// SPFail's measurement design defeats exactly this layer: every probe
// embeds a fresh unique label, so its lookups can never be served from a
// cache and must arrive at the measurement's authoritative server
// (paper §5.1).
type CachingClient struct {
	// Upstream performs transactions on cache misses; required. Layer a
	// SingleFlight here to also coalesce concurrent misses for one name.
	Upstream Querier
	// Clock supplies cache timestamps (use the simulation clock so TTLs
	// interact correctly with virtual time).
	Clock clock.Clock
	// MaxTTL caps cache lifetimes; 0 means 1 hour.
	MaxTTL time.Duration
	// NegativeTTL is used for negative answers without a SOA; 0 means
	// 60 seconds.
	NegativeTTL time.Duration
	// Metrics receives the dns.cache.hits / dns.cache.misses counters and
	// backs Stats. NewCachingClient installs a private registry when the
	// caller does not supply one.
	Metrics *telemetry.Registry

	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
}

type cacheKey struct {
	name string
	typ  dnsmsg.Type
}

type cacheEntry struct {
	msg     *dnsmsg.Message
	expires time.Time
}

// NewCachingClient builds a caching wrapper around q.
func NewCachingClient(q Querier, clk clock.Clock) *CachingClient {
	if clk == nil {
		clk = clock.Real{}
	}
	return &CachingClient{
		Upstream: q,
		Clock:    clk,
		Metrics:  telemetry.New(),
		entries:  make(map[cacheKey]cacheEntry),
	}
}

func (cc *CachingClient) maxTTL() time.Duration {
	if cc.MaxTTL > 0 {
		return cc.MaxTTL
	}
	return time.Hour
}

func (cc *CachingClient) negTTL() time.Duration {
	if cc.NegativeTTL > 0 {
		return cc.NegativeTTL
	}
	return time.Minute
}

// Query implements Querier: it serves from cache when possible, forwarding
// to Upstream otherwise.
func (cc *CachingClient) Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	key := cacheKey{name: name.CanonicalKey(), typ: typ}
	now := cc.Clock.Now()

	cc.mu.Lock()
	if e, ok := cc.entries[key]; ok && now.Before(e.expires) {
		cc.mu.Unlock()
		cc.Metrics.Counter("dns.cache.hits").Inc()
		if sp := trace.SpanFromContext(ctx); sp != nil {
			sp.Event("dns.cache.hit", trace.String("name", name.String()), trace.String("type", typ.String()))
		}
		return e.msg, nil
	}
	cc.mu.Unlock()
	cc.Metrics.Counter("dns.cache.misses").Inc()
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.Event("dns.cache.miss", trace.String("name", name.String()), trace.String("type", typ.String()))
	}

	msg, err := cc.Upstream.Query(ctx, name, typ)
	if err != nil {
		return nil, err
	}
	ttl := cc.ttlFor(msg)
	if ttl > 0 {
		cc.mu.Lock()
		cc.entries[key] = cacheEntry{msg: msg, expires: now.Add(ttl)}
		cc.mu.Unlock()
	}
	return msg, nil
}

// QueryBatch implements BatchQuerier: cached answers are served in place
// and only the misses travel upstream, as one batch when the upstream can
// batch. Hit/miss accounting and trace events match the single-query path.
func (cc *CachingClient) QueryBatch(ctx context.Context, qs []BatchQuestion) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	now := cc.Clock.Now()
	keys := make([]cacheKey, len(qs))
	var misses []int

	cc.mu.Lock()
	for i, q := range qs {
		keys[i] = cacheKey{name: q.Name.CanonicalKey(), typ: q.Type}
		if e, ok := cc.entries[keys[i]]; ok && now.Before(e.expires) {
			out[i] = BatchResult{Msg: e.msg}
			continue
		}
		misses = append(misses, i)
	}
	cc.mu.Unlock()

	for i, q := range qs {
		qctx := ctx
		if q.Ctx != nil {
			qctx = q.Ctx
		}
		hit := out[i].Msg != nil
		if hit {
			cc.Metrics.Counter("dns.cache.hits").Inc()
		} else {
			cc.Metrics.Counter("dns.cache.misses").Inc()
		}
		if sp := trace.SpanFromContext(qctx); sp != nil {
			ev := "dns.cache.miss"
			if hit {
				ev = "dns.cache.hit"
			}
			sp.Event(ev, trace.String("name", q.Name.String()), trace.String("type", q.Type.String()))
		}
	}
	if len(misses) == 0 {
		return out
	}

	up := make([]BatchQuestion, len(misses))
	for j, i := range misses {
		up[j] = qs[i]
	}
	res := queryAll(ctx, cc.Upstream, up)
	cc.mu.Lock()
	for j, i := range misses {
		out[i] = res[j]
		if res[j].Err != nil {
			continue
		}
		if ttl := cc.ttlFor(res[j].Msg); ttl > 0 {
			cc.entries[keys[i]] = cacheEntry{msg: res[j].Msg, expires: now.Add(ttl)}
		}
	}
	cc.mu.Unlock()
	return out
}

// ttlFor derives the cache lifetime from a response.
func (cc *CachingClient) ttlFor(msg *dnsmsg.Message) time.Duration {
	if msg.Header.RCode != dnsmsg.RCodeNoError && msg.Header.RCode != dnsmsg.RCodeNXDomain {
		return 0 // do not cache server failures
	}
	if len(msg.Answers) == 0 {
		// Negative answer: honor the SOA minimum when present.
		for _, rr := range msg.Authority {
			if soa, ok := rr.Data.(dnsmsg.SOA); ok {
				ttl := time.Duration(soa.Minimum) * time.Second
				if ttl > cc.maxTTL() {
					ttl = cc.maxTTL()
				}
				if ttl > 0 {
					return ttl
				}
			}
		}
		return cc.negTTL()
	}
	min := uint32(1<<31 - 1)
	for _, rr := range msg.Answers {
		if rr.TTL < min {
			min = rr.TTL
		}
	}
	ttl := time.Duration(min) * time.Second
	if ttl > cc.maxTTL() {
		ttl = cc.maxTTL()
	}
	return ttl
}

// Stats returns the cache hit/miss counters, read from the telemetry
// registry (metric names dns.cache.hits / dns.cache.misses, PR 1 naming).
// When the registry is shared, the counts cover every cache publishing to
// it.
func (cc *CachingClient) Stats() (hits, misses int) {
	return int(cc.Metrics.Counter("dns.cache.hits").Value()),
		int(cc.Metrics.Counter("dns.cache.misses").Value())
}

// Flush empties the cache.
func (cc *CachingClient) Flush() {
	cc.mu.Lock()
	cc.entries = make(map[cacheKey]cacheEntry)
	cc.mu.Unlock()
}

var _ BatchQuerier = (*CachingClient)(nil)
