package dnsclient

import (
	"context"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/netsim"
)

// countingSink counts queries reaching the authoritative server.
type countingSink struct{ n int }

func (c *countingSink) Observe(dnsserver.QueryEvent) { c.n++ }

func newCachedSetup(t *testing.T, clk clock.Clock) (*Resolver, *CachingClient, *countingSink) {
	t.Helper()
	fabric := netsim.NewFabric()
	sink := &countingSink{}
	handler := &dnsserver.LoggingHandler{Inner: testZone(), Sink: sink, Now: time.Now}
	srv := &dnsserver.Server{Net: fabric.Host("192.0.2.53"), Addr: ":53", Handler: handler}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	wire := &Client{Net: fabric.Host("198.51.100.1"), Server: "192.0.2.53:53", Timeout: time.Second}
	cache := NewCachingClient(wire, clk)
	return NewResolver(cache), cache, sink
}

func TestCacheServesRepeatsLocally(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	defer sim.Close()
	r, cache, sink := newCachedSetup(t, sim)

	for i := 0; i < 5; i++ {
		txts, err := r.LookupTXT(context.Background(), "example.com")
		if err != nil || len(txts) == 0 {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if sink.n != 1 {
		t.Fatalf("authoritative server saw %d queries, want 1", sink.n)
	}
	hits, misses := cache.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses", hits, misses)
	}
}

func TestCacheExpiresWithTTL(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	defer sim.Close()
	r, _, sink := newCachedSetup(t, sim)

	// testZone records carry TTL 300.
	if _, err := r.LookupTXT(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(299 * time.Second)
	r.LookupTXT(context.Background(), "example.com")
	if sink.n != 1 {
		t.Fatalf("pre-expiry refetch: server saw %d queries", sink.n)
	}
	sim.Advance(2 * time.Second)
	r.LookupTXT(context.Background(), "example.com")
	if sink.n != 2 {
		t.Fatalf("post-expiry: server saw %d queries, want 2", sink.n)
	}
}

func TestCacheNegativeAnswers(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	defer sim.Close()
	r, cache, sink := newCachedSetup(t, sim)

	for i := 0; i < 3; i++ {
		_, err := r.LookupTXT(context.Background(), "missing.example.com")
		if !IsNotFound(err) {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	// Negative answers carry the zone SOA (minimum 0 → fallback TTL), so
	// repeats must be served locally.
	if sink.n != 1 {
		t.Fatalf("negative lookups reached server %d times", sink.n)
	}
	if hits, _ := cache.Stats(); hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestCacheDistinctNamesMiss(t *testing.T) {
	// The SPFail label design: unique names can never be cache hits.
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	defer sim.Close()
	r, cache, sink := newCachedSetup(t, sim)
	names := []string{"example.com", "mail.example.com"}
	for _, n := range names {
		r.LookupTXT(context.Background(), n)
	}
	if sink.n != len(names) {
		t.Fatalf("server saw %d queries for %d distinct names", sink.n, len(names))
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Fatalf("distinct names produced %d cache hits", hits)
	}
}

func TestCacheNegativeHonorsSOAMinimum(t *testing.T) {
	// A zone whose SOA carries a nonzero minimum: negative answers must be
	// cached for exactly that long on the virtual clock, not the fallback.
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	defer sim.Close()
	fabric := netsim.NewFabric()
	sink := &countingSink{}
	z := dnsserver.NewZoneSet()
	z.Add(dnsmsg.Record{Name: dnsmsg.MustParseName("example.org"), Class: dnsmsg.ClassIN, TTL: 3600,
		Data: dnsmsg.SOA{MName: dnsmsg.MustParseName("ns.example.org"),
			RName: dnsmsg.MustParseName("root.example.org"), Serial: 1, Minimum: 120}})
	handler := &dnsserver.LoggingHandler{Inner: z, Sink: sink, Now: time.Now}
	srv := &dnsserver.Server{Net: fabric.Host("192.0.2.53"), Addr: ":53", Handler: handler}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	wire := &Client{Net: fabric.Host("198.51.100.1"), Server: "192.0.2.53:53", Timeout: time.Second}
	r := NewResolver(NewCachingClient(wire, sim))

	if _, err := r.LookupTXT(context.Background(), "nope.example.org"); !IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
	sim.Advance(119 * time.Second)
	r.LookupTXT(context.Background(), "nope.example.org")
	if sink.n != 1 {
		t.Fatalf("within SOA minimum: server saw %d queries, want 1", sink.n)
	}
	sim.Advance(2 * time.Second)
	r.LookupTXT(context.Background(), "nope.example.org")
	if sink.n != 2 {
		t.Fatalf("past SOA minimum: server saw %d queries, want 2", sink.n)
	}
}

func TestCacheFlush(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	defer sim.Close()
	r, cache, sink := newCachedSetup(t, sim)
	r.LookupTXT(context.Background(), "example.com")
	cache.Flush()
	r.LookupTXT(context.Background(), "example.com")
	if sink.n != 2 {
		t.Fatalf("flush did not clear cache: %d server queries", sink.n)
	}
}

func TestCacheTTLCap(t *testing.T) {
	cc := &CachingClient{MaxTTL: 10 * time.Second, Clock: clock.Real{}}
	msg := &dnsmsg.Message{Header: dnsmsg.Header{Response: true}}
	msg.Answers = append(msg.Answers, dnsmsg.Record{
		Name: dnsmsg.MustParseName("x.example"), Class: dnsmsg.ClassIN,
		TTL: 86400, Data: dnsmsg.TXT{Strings: []string{"v"}},
	})
	if ttl := cc.ttlFor(msg); ttl != 10*time.Second {
		t.Fatalf("capped ttl = %v", ttl)
	}
	// SERVFAIL is never cached.
	bad := &dnsmsg.Message{Header: dnsmsg.Header{Response: true, RCode: dnsmsg.RCodeServFail}}
	if ttl := cc.ttlFor(bad); ttl != 0 {
		t.Fatalf("servfail ttl = %v", ttl)
	}
}
