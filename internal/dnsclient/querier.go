package dnsclient

import (
	"context"
	"sync"

	"spfail/internal/dnsmsg"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Querier is the unified query path: one transaction, validated response.
// Client implements it over the wire; CachingClient and SingleFlight
// implement it by composition, so the SPF engine, the MTA path, and the
// prober all stack layers without duplicated Lookup* plumbing:
//
//	&Client{...}                          // wire
//	&SingleFlight{Upstream: client}       // + in-flight dedup
//	NewCachingClient(flight, clk)         // + TTL cache
//	NewResolver(cache)                    // + typed lookups / RFC 7208 taxonomy
type Querier interface {
	Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error)
}

// SingleFlight deduplicates identical in-flight (name, type) queries:
// concurrent callers coalesce onto one upstream transaction and share its
// response. Layer it under CachingClient so a thundering herd of cache
// misses for the same name costs one wire exchange.
//
// Followers wait on the leader in wall time (channel select), never on the
// injected clock: callers may be goroutines that are not accounted to a
// simulated clock (e.g. MTA hosts), exactly like the fabric's I/O waits.
type SingleFlight struct {
	// Upstream performs the actual transaction; required.
	Upstream Querier
	// Metrics, when non-nil, receives dns.flight.* counters
	// (see docs/telemetry.md).
	Metrics *telemetry.Registry

	mu       sync.Mutex
	inflight map[cacheKey]*flightCall // guarded by mu
}

type flightCall struct {
	done chan struct{}
	msg  *dnsmsg.Message
	err  error
}

// Query implements Querier. The first caller for a key becomes the leader
// and performs the upstream query; callers arriving before it completes
// wait for — and share — the leader's result. The shared *dnsmsg.Message
// must be treated as read-only, as with any cached response.
func (sf *SingleFlight) Query(ctx context.Context, name dnsmsg.Name, typ dnsmsg.Type) (*dnsmsg.Message, error) {
	key := cacheKey{name: name.CanonicalKey(), typ: typ}

	sf.mu.Lock()
	if c, ok := sf.inflight[key]; ok {
		sf.mu.Unlock()
		sf.Metrics.Counter("dns.flight.coalesced").Inc()
		if sp := trace.SpanFromContext(ctx); sp != nil {
			sp.Event("dns.flight.coalesced", trace.String("name", name.String()), trace.String("type", typ.String()))
		}
		select {
		case <-c.done:
			return c.msg, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if sf.inflight == nil {
		sf.inflight = make(map[cacheKey]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	sf.inflight[key] = c
	sf.mu.Unlock()

	sf.Metrics.Counter("dns.flight.leaders").Inc()
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.Event("dns.flight.leader", trace.String("name", name.String()), trace.String("type", typ.String()))
	}
	c.msg, c.err = sf.Upstream.Query(ctx, name, typ)

	// Deregister before publishing so a caller arriving after completion
	// starts a fresh flight instead of reading a stale result.
	sf.mu.Lock()
	delete(sf.inflight, key)
	sf.mu.Unlock()
	close(c.done)
	return c.msg, c.err
}

// QueryBatch implements BatchQuerier. Each question registers as leader or
// follower exactly as in Query; the batch's leaders travel upstream as one
// (smaller) batch, and followers — including duplicates within the batch
// itself — share the corresponding leader's result.
func (sf *SingleFlight) QueryBatch(ctx context.Context, qs []BatchQuestion) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	calls := make([]*flightCall, len(qs))
	keys := make([]cacheKey, len(qs))
	isLeader := make([]bool, len(qs))
	var leaders []int

	sf.mu.Lock()
	if sf.inflight == nil {
		sf.inflight = make(map[cacheKey]*flightCall)
	}
	for i, q := range qs {
		keys[i] = cacheKey{name: q.Name.CanonicalKey(), typ: q.Type}
		if c, ok := sf.inflight[keys[i]]; ok {
			calls[i] = c
			continue
		}
		c := &flightCall{done: make(chan struct{})}
		sf.inflight[keys[i]] = c
		calls[i] = c
		isLeader[i] = true
		leaders = append(leaders, i)
	}
	sf.mu.Unlock()

	if len(leaders) > 0 {
		sf.Metrics.Counter("dns.flight.leaders").Add(int64(len(leaders)))
		up := make([]BatchQuestion, len(leaders))
		for j, i := range leaders {
			up[j] = qs[i]
		}
		res := queryAll(ctx, sf.Upstream, up)
		sf.mu.Lock()
		for j, i := range leaders {
			delete(sf.inflight, keys[i])
			calls[i].msg, calls[i].err = res[j].Msg, res[j].Err
		}
		sf.mu.Unlock()
		for _, i := range leaders {
			close(calls[i].done)
		}
	}

	for i, c := range calls {
		if isLeader[i] {
			out[i] = BatchResult{Msg: c.msg, Err: c.err}
			continue
		}
		sf.Metrics.Counter("dns.flight.coalesced").Inc()
		qctx := ctx
		if qs[i].Ctx != nil {
			qctx = qs[i].Ctx
		}
		select {
		case <-c.done:
			out[i] = BatchResult{Msg: c.msg, Err: c.err}
		case <-qctx.Done():
			out[i] = BatchResult{Err: qctx.Err()}
		}
	}
	return out
}

var _ BatchQuerier = (*SingleFlight)(nil)
