// Package dmarc implements the subset of DMARC (RFC 7489) the SPFail
// study touches: record discovery and parsing, organizational-domain
// fallback, and the SPF-identifier alignment check a receiver applies
// before honoring a policy. The measurement's probe source domains publish
// "v=DMARC1; p=reject" so that blank probe emails are discarded rather
// than delivered (paper §6.2); simulated receivers use this package to
// honor that request.
package dmarc

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"spfail/internal/spf"
	"spfail/internal/trace"
)

// Policy is a requested message disposition.
type Policy string

// The three dispositions of RFC 7489 §6.3.
const (
	PolicyNone       Policy = "none"
	PolicyQuarantine Policy = "quarantine"
	PolicyReject     Policy = "reject"
)

// Alignment is the identifier-alignment mode.
type Alignment byte

// Alignment modes.
const (
	AlignRelaxed Alignment = 'r'
	AlignStrict  Alignment = 's'
)

// Record is a parsed DMARC policy record.
type Record struct {
	// Policy is the p= disposition.
	Policy Policy
	// SubdomainPolicy is sp=, falling back to Policy when absent.
	SubdomainPolicy Policy
	// SPFAlignment is aspf= (default relaxed).
	SPFAlignment Alignment
	// DKIMAlignment is adkim= (default relaxed).
	DKIMAlignment Alignment
	// Percent is pct= (default 100).
	Percent int
	// RUA holds aggregate-report URIs (rua=), unvalidated.
	RUA []string
}

// IsDMARCRecord reports whether a TXT string is a DMARC record: it must
// begin with "v=DMARC1" followed by end or a separator.
func IsDMARCRecord(txt string) bool {
	t := strings.TrimSpace(txt)
	if len(t) < 8 || !strings.EqualFold(t[:8], "v=DMARC1") {
		return false
	}
	rest := t[8:]
	return rest == "" || strings.HasPrefix(strings.TrimSpace(rest), ";")
}

// Parse parses a DMARC record's tag-value list.
func Parse(txt string) (*Record, error) {
	if !IsDMARCRecord(txt) {
		return nil, errors.New("dmarc: missing v=DMARC1 tag")
	}
	rec := &Record{
		SPFAlignment:  AlignRelaxed,
		DKIMAlignment: AlignRelaxed,
		Percent:       100,
	}
	sawPolicy := false
	for i, field := range strings.Split(txt, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		eq := strings.IndexByte(field, '=')
		if eq < 0 {
			return nil, fmt.Errorf("dmarc: bad tag %q", field)
		}
		tag := strings.ToLower(strings.TrimSpace(field[:eq]))
		val := strings.TrimSpace(field[eq+1:])
		if i == 0 {
			continue // the v=DMARC1 tag itself
		}
		switch tag {
		case "p":
			p, err := parsePolicy(val)
			if err != nil {
				return nil, err
			}
			rec.Policy = p
			sawPolicy = true
		case "sp":
			p, err := parsePolicy(val)
			if err != nil {
				return nil, err
			}
			rec.SubdomainPolicy = p
		case "aspf":
			a, err := parseAlignment(val)
			if err != nil {
				return nil, err
			}
			rec.SPFAlignment = a
		case "adkim":
			a, err := parseAlignment(val)
			if err != nil {
				return nil, err
			}
			rec.DKIMAlignment = a
		case "pct":
			n := 0
			if _, err := fmt.Sscanf(val, "%d", &n); err != nil || n < 0 || n > 100 {
				return nil, fmt.Errorf("dmarc: bad pct %q", val)
			}
			rec.Percent = n
		case "rua":
			rec.RUA = strings.Split(val, ",")
		default:
			// Unknown tags are ignored per RFC 7489 §6.3.
		}
	}
	if !sawPolicy {
		return nil, errors.New("dmarc: missing required p= tag")
	}
	if rec.SubdomainPolicy == "" {
		rec.SubdomainPolicy = rec.Policy
	}
	return rec, nil
}

func parsePolicy(v string) (Policy, error) {
	switch strings.ToLower(v) {
	case "none":
		return PolicyNone, nil
	case "quarantine":
		return PolicyQuarantine, nil
	case "reject":
		return PolicyReject, nil
	}
	return "", fmt.Errorf("dmarc: unknown policy %q", v)
}

func parseAlignment(v string) (Alignment, error) {
	switch strings.ToLower(v) {
	case "r":
		return AlignRelaxed, nil
	case "s":
		return AlignStrict, nil
	}
	return 0, fmt.Errorf("dmarc: unknown alignment %q", v)
}

// twoLabel holds the two-label public suffixes the study's TLD profiles
// can generate (see population's ccSecondLevel) plus common real-world
// ones; every suffix the generator registers under must appear here or
// relaxed-alignment verdicts for those worlds come out wrong. (A full
// PSL is out of scope.)
var twoLabel = map[string]bool{
	"co.uk": true, "ac.uk": true, "org.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "ne.jp": true, "or.jp": true,
	"com.br": true, "net.br": true, "org.br": true,
	"co.za": true, "org.za": true, "web.za": true,
	"co.il": true, "org.il": true,
	"com.cn": true, "com.tr": true, "com.tw": true,
	"com.mx": true, "com.ar": true,
	"co.in": true, "co.kr": true,
}

// OrganizationalDomain approximates the org domain: the registrable
// two-label suffix, with a small table of common multi-label public
// suffixes.
func OrganizationalDomain(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	labels := strings.Split(domain, ".")
	if len(labels) <= 2 {
		return domain
	}
	suffix2 := strings.Join(labels[len(labels)-2:], ".")
	if twoLabel[suffix2] && len(labels) >= 3 {
		return strings.Join(labels[len(labels)-3:], ".")
	}
	return suffix2
}

// SPFAligned reports whether the SPF-authenticated domain (the MAIL FROM
// domain that produced an SPF pass) aligns with the RFC5322.From domain
// under the record's aspf mode.
func (r *Record) SPFAligned(fromDomain, spfDomain string) bool {
	f := strings.ToLower(strings.TrimSuffix(fromDomain, "."))
	s := strings.ToLower(strings.TrimSuffix(spfDomain, "."))
	if f == s {
		return true
	}
	if r.SPFAlignment == AlignStrict {
		return false
	}
	return OrganizationalDomain(f) == OrganizationalDomain(s)
}

// Result is the outcome of a DMARC evaluation.
type Result struct {
	// Found reports whether any policy record was discovered.
	Found bool
	// Domain is where the record was found (the From domain or its
	// organizational domain).
	Domain string
	// Record is the parsed policy.
	Record *Record
	// Disposition is the applicable policy for this message.
	Disposition Policy
	// Pass reports whether DMARC passed (aligned SPF pass; DKIM is out
	// of scope here).
	Pass bool
}

// Evaluate discovers the policy for fromDomain and applies the SPF-only
// DMARC check: pass when SPF passed and the SPF domain aligns. When the
// context carries a trace, the evaluation is recorded as a
// "dmarc.evaluate" span with the discovery and disposition outcome.
func Evaluate(ctx context.Context, resolver spf.Resolver, fromDomain string, spfResult spf.Result, spfDomain string) (Result, error) {
	ctx, sp := trace.StartSpan(ctx, "dmarc.evaluate")
	if sp != nil {
		sp.SetAttrs(trace.String("from_domain", fromDomain),
			trace.String("spf_result", string(spfResult)))
	}
	out, err := evaluate(ctx, resolver, fromDomain, spfResult, spfDomain)
	if sp != nil {
		sp.SetAttrs(trace.Bool("found", out.Found))
		if err != nil {
			sp.SetAttrs(trace.String("error", err.Error()))
		} else if out.Found {
			sp.SetAttrs(trace.String("policy_domain", out.Domain),
				trace.String("disposition", string(out.Disposition)),
				trace.Bool("pass", out.Pass))
		}
		sp.End()
	}
	return out, err
}

func evaluate(ctx context.Context, resolver spf.Resolver, fromDomain string, spfResult spf.Result, spfDomain string) (Result, error) {
	rec, where, err := Discover(ctx, resolver, fromDomain)
	if err != nil {
		return Result{}, err
	}
	if rec == nil {
		return Result{Found: false, Disposition: PolicyNone}, nil
	}
	out := Result{Found: true, Domain: where, Record: rec}
	out.Pass = spfResult == spf.ResultPass && rec.SPFAligned(fromDomain, spfDomain)
	if out.Pass {
		out.Disposition = PolicyNone
		return out, nil
	}
	if strings.EqualFold(where, fromDomain) || strings.EqualFold(where, strings.TrimSuffix(fromDomain, ".")) {
		out.Disposition = rec.Policy
	} else {
		out.Disposition = rec.SubdomainPolicy
	}
	return out, nil
}

// Discover fetches the DMARC record for a domain: _dmarc.<domain>, then
// _dmarc.<orgdomain> (RFC 7489 §6.6.3).
func Discover(ctx context.Context, resolver spf.Resolver, domain string) (*Record, string, error) {
	candidates := []string{domain}
	if org := OrganizationalDomain(domain); !strings.EqualFold(org, strings.TrimSuffix(strings.ToLower(domain), ".")) {
		candidates = append(candidates, org)
	}
	for _, d := range candidates {
		txts, err := resolver.LookupTXT(ctx, "_dmarc."+strings.TrimSuffix(d, "."))
		if err != nil {
			if errors.Is(err, spf.ErrNotFound) {
				continue
			}
			return nil, "", fmt.Errorf("dmarc: lookup for %s: %w", d, err)
		}
		var found *Record
		for _, t := range txts {
			if !IsDMARCRecord(t) {
				continue
			}
			rec, err := Parse(t)
			if err != nil {
				continue // unparsable records are ignored
			}
			if found != nil {
				return nil, "", errors.New("dmarc: multiple records")
			}
			found = rec
		}
		if found != nil {
			return found, d, nil
		}
	}
	return nil, "", nil
}
