package dmarc

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"spfail/internal/spf"
)

func TestIsDMARCRecord(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"v=DMARC1; p=reject", true},
		{"v=DMARC1", true},
		{"V=dmarc1; p=none", true},
		{"v=DMARC1;p=none", true},
		{"v=DMARC12; p=none", false},
		{"v=spf1 -all", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsDMARCRecord(c.in); got != c.want {
			t.Errorf("IsDMARCRecord(%q) = %v", c.in, got)
		}
	}
}

func TestParseFull(t *testing.T) {
	rec, err := Parse("v=DMARC1; p=quarantine; sp=reject; aspf=s; adkim=r; pct=50; rua=mailto:agg@example.com,mailto:b@example.org")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy != PolicyQuarantine || rec.SubdomainPolicy != PolicyReject {
		t.Errorf("policies = %s/%s", rec.Policy, rec.SubdomainPolicy)
	}
	if rec.SPFAlignment != AlignStrict || rec.DKIMAlignment != AlignRelaxed {
		t.Errorf("alignments = %c/%c", rec.SPFAlignment, rec.DKIMAlignment)
	}
	if rec.Percent != 50 || len(rec.RUA) != 2 {
		t.Errorf("pct=%d rua=%v", rec.Percent, rec.RUA)
	}
}

func TestParseDefaults(t *testing.T) {
	rec, err := Parse("v=DMARC1; p=reject")
	if err != nil {
		t.Fatal(err)
	}
	if rec.SubdomainPolicy != PolicyReject || rec.Percent != 100 ||
		rec.SPFAlignment != AlignRelaxed {
		t.Errorf("defaults = %+v", rec)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"v=DMARC1",                // missing p=
		"v=DMARC1; p=bogus",       // unknown policy
		"v=DMARC1; p=none; pct=x", // bad pct
		"v=DMARC1; p=none; pct=101",
		"v=DMARC1; p=none; aspf=q", // bad alignment
		"v=DMARC1; p=none; junk",   // tag without value
		"not dmarc",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestOrganizationalDomain(t *testing.T) {
	cases := map[string]string{
		"example.com":          "example.com",
		"mail.example.com":     "example.com",
		"a.b.c.example.com":    "example.com",
		"example.co.uk":        "example.co.uk",
		"mail.example.co.uk":   "example.co.uk",
		"www.site.com.au":      "site.com.au",
		"com":                  "com",
		"Sub.EXAMPLE.ORG.":     "example.org",
		"deep.mail.corp.co.za": "corp.co.za",
		// Multi-label public suffixes the population generator emits.
		"mail.loja.com.br":   "loja.com.br",
		"mx.assoc.org.br":    "assoc.org.br",
		"smtp.isp.net.br":    "isp.net.br",
		"www.shop.web.za":    "shop.web.za",
		"mail.firm.co.il":    "firm.co.il",
		"mx.ngo.org.il":      "ngo.org.il",
		"smtp.tienda.com.mx": "tienda.com.mx",
		"mail.pyme.com.ar":   "pyme.com.ar",
		"co.za":              "co.za",
		"x.co.za":            "x.co.za",
	}
	for in, want := range cases {
		if got := OrganizationalDomain(in); got != want {
			t.Errorf("OrganizationalDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSPFAlignment(t *testing.T) {
	relaxed := &Record{SPFAlignment: AlignRelaxed}
	strict := &Record{SPFAlignment: AlignStrict}
	if !relaxed.SPFAligned("example.com", "example.com") {
		t.Error("exact match should align")
	}
	if !relaxed.SPFAligned("example.com", "bounce.example.com") {
		t.Error("relaxed org-domain match should align")
	}
	if strict.SPFAligned("example.com", "bounce.example.com") {
		t.Error("strict subdomain should not align")
	}
	if relaxed.SPFAligned("example.com", "other.net") {
		t.Error("cross-domain should not align")
	}
}

// dmarcResolver serves TXT from a map.
type dmarcResolver struct {
	txt map[string][]string
}

func (r dmarcResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := r.txt[strings.TrimSuffix(name, ".")]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %s", spf.ErrNotFound, name)
}

func (dmarcResolver) LookupIP(context.Context, string, string) ([]netip.Addr, error) {
	return nil, spf.ErrNotFound
}

func (dmarcResolver) LookupMX(context.Context, string) ([]spf.MX, error) {
	return nil, spf.ErrNotFound
}

func (dmarcResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}

func TestDiscoverDirect(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{
		"_dmarc.example.com": {"v=DMARC1; p=reject"},
	}}
	rec, where, err := Discover(context.Background(), r, "example.com")
	if err != nil || rec == nil || where != "example.com" {
		t.Fatalf("Discover = %+v, %q, %v", rec, where, err)
	}
	if rec.Policy != PolicyReject {
		t.Errorf("policy = %s", rec.Policy)
	}
}

func TestDiscoverOrgFallback(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{
		"_dmarc.example.com": {"v=DMARC1; p=quarantine; sp=none"},
	}}
	rec, where, err := Discover(context.Background(), r, "deep.mail.example.com")
	if err != nil || rec == nil {
		t.Fatalf("Discover = %v, %v", rec, err)
	}
	if where != "example.com" {
		t.Errorf("found at %q", where)
	}
}

func TestDiscoverNothing(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{}}
	rec, _, err := Discover(context.Background(), r, "example.com")
	if err != nil || rec != nil {
		t.Fatalf("Discover = %v, %v", rec, err)
	}
}

func TestDiscoverIgnoresNonDMARCAndUnparsable(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{
		"_dmarc.example.com": {"verification=xyz", "v=DMARC1; p=bogus", "v=DMARC1; p=none"},
	}}
	rec, _, err := Discover(context.Background(), r, "example.com")
	if err != nil || rec == nil || rec.Policy != PolicyNone {
		t.Fatalf("Discover = %+v, %v", rec, err)
	}
}

func TestEvaluateRejectUnaligned(t *testing.T) {
	// The SPFail probe scenario (§6.2): SPF fails, DMARC says reject —
	// blank probe emails are discarded.
	r := dmarcResolver{txt: map[string][]string{
		"_dmarc.x7.s01.spf-test.dns-lab.org": {"v=DMARC1; p=reject; aspf=s"},
	}}
	res, err := Evaluate(context.Background(), r,
		"x7.s01.spf-test.dns-lab.org", spf.ResultFail, "x7.s01.spf-test.dns-lab.org")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Pass || res.Disposition != PolicyReject {
		t.Fatalf("res = %+v", res)
	}
}

func TestEvaluatePassAligned(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{
		"_dmarc.example.com": {"v=DMARC1; p=reject"},
	}}
	res, err := Evaluate(context.Background(), r, "example.com", spf.ResultPass, "bounce.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || res.Disposition != PolicyNone {
		t.Fatalf("res = %+v", res)
	}
}

func TestEvaluateSubdomainPolicy(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{
		"_dmarc.example.com": {"v=DMARC1; p=reject; sp=quarantine"},
	}}
	res, err := Evaluate(context.Background(), r, "sub.example.com", spf.ResultFail, "sub.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != PolicyQuarantine {
		t.Fatalf("subdomain disposition = %s", res.Disposition)
	}
}

func TestEvaluateNoRecord(t *testing.T) {
	r := dmarcResolver{txt: map[string][]string{}}
	res, err := Evaluate(context.Background(), r, "example.com", spf.ResultFail, "example.com")
	if err != nil || res.Found || res.Disposition != PolicyNone {
		t.Fatalf("res = %+v, %v", res, err)
	}
}
