package faults

import (
	"testing"
	"time"

	"spfail/internal/dnsmsg"
	"spfail/internal/netsim"
	"spfail/internal/telemetry"
)

func addr(host string, port int, network string) netsim.Addr {
	return netsim.Addr{Net: network, Host: host, Port: port}
}

func packedQuery(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	q := dnsmsg.NewQuery(id, dnsmsg.MustParseName(name), dnsmsg.TypeTXT)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return pkt
}

func packedResponse(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	q := dnsmsg.NewQuery(id, dnsmsg.MustParseName(name), dnsmsg.TypeTXT)
	r := q.Reply()
	r.Answers = append(r.Answers, dnsmsg.Record{
		Name:  q.Questions[0].Name,
		Class: dnsmsg.ClassIN,
		TTL:   60,
		Data:  dnsmsg.TXT{Strings: []string{"v=spf1 -all"}},
	})
	pkt, err := r.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return pkt
}

// TestEngineDeterminism: two engines built from the same plan make
// identical decisions for identical event sequences.
func TestEngineDeterminism(t *testing.T) {
	plan := Plan{Seed: 99, Rules: []Rule{
		{Kind: KindDropUDP, Rate: 0.5},
		{Kind: KindConnRefuse, Rate: 0.4},
	}}
	run := func() ([]netsim.DatagramVerdict, []bool) {
		e, err := NewEngine(plan)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		var verdicts []netsim.DatagramVerdict
		var refusals []bool
		for i := 0; i < 200; i++ {
			host := []string{"203.0.113.1", "203.0.113.2", "203.0.113.3"}[i%3]
			_, v := e.Datagram(addr(host, 30000, "udp"), addr("192.0.2.53", 53, "udp"), packedQuery(t, uint16(i), "example.com"))
			verdicts = append(verdicts, v)
			refusals = append(refusals, e.DialTCP(addr("198.51.100.9", 0, "tcp"), addr(host, 25, "tcp")).Refuse)
		}
		return verdicts, refusals
	}
	v1, r1 := run()
	v2, r2 := run()
	varied := false
	for i := range v1 {
		if v1[i] != v2[i] || r1[i] != r2[i] {
			t.Fatalf("event %d: decisions diverged across same-plan engines", i)
		}
		if v1[i] == netsim.VerdictDrop || r1[i] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("rate 0.5/0.4 rules never fired in 200 events")
	}
}

// TestServfailForgery: a matching query is reflected as a SERVFAIL reply
// with the query's ID and question.
func TestServfailForgery(t *testing.T) {
	e, err := NewEngine(Plan{Rules: []Rule{{Kind: KindDNSServfail}}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	reg := telemetry.New()
	e.SetMetrics(reg)
	payload, v := e.Datagram(addr("203.0.113.7", 31000, "udp"), addr("192.0.2.53", 53, "udp"), packedQuery(t, 7777, "victim.example"))
	if v != netsim.VerdictReflect {
		t.Fatalf("verdict = %v, want reflect", v)
	}
	m, err := dnsmsg.Unpack(payload)
	if err != nil {
		t.Fatalf("Unpack forged reply: %v", err)
	}
	if !m.Header.Response || m.Header.ID != 7777 || m.Header.RCode != dnsmsg.RCodeServFail {
		t.Fatalf("forged reply header = %+v, want SERVFAIL response id 7777", m.Header)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name.String() != "victim.example." {
		t.Fatalf("forged reply questions = %v", m.Questions)
	}
	snap := reg.Snapshot()
	if snap.Counters["faults.injected.dns-servfail"] != 1 {
		t.Fatalf("injection counter = %v, want 1", snap.Counters)
	}

	// Responses are not queries: the rule must not touch them.
	if _, v := e.Datagram(addr("192.0.2.53", 53, "udp"), addr("203.0.113.7", 31000, "udp"), packedResponse(t, 7778, "victim.example")); v != netsim.VerdictPass {
		t.Fatalf("servfail rule touched a response (verdict %v)", v)
	}
}

// TestTruncateResponse: responses to matching hosts get TC set and answers
// stripped; queries pass untouched.
func TestTruncateResponse(t *testing.T) {
	e, err := NewEngine(Plan{Rules: []Rule{{Kind: KindDNSTruncate}}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	payload, v := e.Datagram(addr("192.0.2.53", 53, "udp"), addr("203.0.113.7", 31000, "udp"), packedResponse(t, 5, "example.com"))
	if v != netsim.VerdictPass || payload == nil {
		t.Fatalf("truncate verdict = %v payload nil=%v, want pass with rewritten payload", v, payload == nil)
	}
	m, err := dnsmsg.Unpack(payload)
	if err != nil {
		t.Fatalf("Unpack truncated: %v", err)
	}
	if !m.Header.Truncated || len(m.Answers) != 0 {
		t.Fatalf("truncated response = %+v (TC %v, %d answers)", m.Header, m.Header.Truncated, len(m.Answers))
	}
	if payload, _ := e.Datagram(addr("203.0.113.7", 31000, "udp"), addr("192.0.2.53", 53, "udp"), packedQuery(t, 6, "example.com")); payload != nil {
		t.Fatal("truncate rule rewrote a query")
	}
}

// TestBurstWindow: Burst N fires the rule on exactly the first N events per
// subject host, independently per host.
func TestBurstWindow(t *testing.T) {
	e, err := NewEngine(Plan{Rules: []Rule{{Kind: KindDNSTimeout, Burst: 2}}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for _, host := range []string{"203.0.113.1", "203.0.113.2"} {
		for i := 0; i < 5; i++ {
			_, v := e.Datagram(addr(host, 29000, "udp"), addr("192.0.2.53", 53, "udp"), packedQuery(t, uint16(i), "example.com"))
			want := netsim.VerdictDrop
			if i >= 2 {
				want = netsim.VerdictPass
			}
			if v != want {
				t.Fatalf("host %s event %d: verdict %v, want %v", host, i, v, want)
			}
		}
	}
}

// TestDialFaultScope: SMTP rules only touch port-25 dials, compose across
// rules, and honour Host/Class selectors.
func TestDialFaultScope(t *testing.T) {
	e, err := NewEngine(Plan{Rules: []Rule{
		{Kind: KindSMTPTarpit, Host: "203.0.113.9", Delay: 5 * time.Second},
		{Kind: KindConnReset, Host: "203.0.113.9"},
		{Kind: KindSMTPBlackhole, Class: "flaky"},
	}})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.SetClassifier(func(host string) string {
		if host == "203.0.113.44" {
			return "flaky"
		}
		return "validating"
	})
	src := addr("198.51.100.9", 0, "tcp")

	f := e.DialTCP(src, addr("203.0.113.9", 25, "tcp"))
	if f.Delay != 5*time.Second || f.ResetAfter != 48 || f.Blackhole || f.Refuse {
		t.Fatalf("composed fault = %+v, want 5s delay + default 48B reset", f)
	}
	if f := e.DialTCP(src, addr("203.0.113.9", 53, "tcp")); f != (netsim.DialFault{}) {
		t.Fatalf("port-53 dial got fault %+v", f)
	}
	if f := e.DialTCP(src, addr("203.0.113.44", 25, "tcp")); !f.Blackhole {
		t.Fatalf("class-matched host missing blackhole: %+v", f)
	}
	if f := e.DialTCP(src, addr("203.0.113.50", 25, "tcp")); f != (netsim.DialFault{}) {
		t.Fatalf("unmatched host got fault %+v", f)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Kind: "nope"}}},
		{Rules: []Rule{{Kind: KindDropUDP, Rate: 1.5}}},
		{Rules: []Rule{{Kind: KindDropUDP, Rate: -0.1}}},
		{Rules: []Rule{{Kind: KindDropUDP, Burst: -1}}},
		{Rules: []Rule{{Kind: KindDropUDP, Host: "not-an-ip"}}},
		{Rules: []Rule{{Kind: KindDropUDP, Delay: time.Second}}},
		{Rules: []Rule{{Kind: KindSMTPTarpit, ResetAfter: 10}}},
	}
	for i, p := range bad {
		if _, err := p.Normalize(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	for _, name := range PresetNames {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if _, err := p.Normalize(); err != nil {
			t.Fatalf("preset %q does not normalize: %v", name, err)
		}
	}
	if _, err := Preset("bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
