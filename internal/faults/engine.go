package faults

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"spfail/internal/dnsmsg"
	"spfail/internal/netsim"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Engine applies a Plan to fabric traffic. It implements
// netsim.FaultInjector; install it with fabric.Faults = engine.
//
// All decisions are pure hashes of (plan seed, rule index, subject host,
// per-(rule, host) sequence number) — see the package comment for why.
type Engine struct {
	plan     Plan
	classify func(host string) string
	metrics  *telemetry.Registry
	tracer   *trace.Tracer

	mu  sync.Mutex
	seq map[string]uint64
}

// NewEngine normalizes plan and builds an engine for it.
func NewEngine(plan Plan) (*Engine, error) {
	p, err := plan.Normalize()
	if err != nil {
		return nil, err
	}
	return &Engine{plan: p, seq: make(map[string]uint64)}, nil
}

// SetClassifier installs the host → class mapping rules with a Class
// selector match against (population.World.FaultClassifier). fn must be
// safe for concurrent use. Without a classifier, Class-scoped rules match
// nothing.
func (e *Engine) SetClassifier(fn func(host string) string) { e.classify = fn }

// SetMetrics routes per-kind injection counters (faults.injected.<kind>)
// into reg; nil disables counting.
func (e *Engine) SetMetrics(reg *telemetry.Registry) { e.metrics = reg }

// SetTracer routes injection decisions as host-keyed trace events onto the
// span of whichever probe currently owns the subject host; nil disables.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Plan returns the normalized plan the engine runs.
func (e *Engine) Plan() Plan { return e.plan }

// SeqEntry is one (rule, host) event counter, the engine's only mutable
// state. Fault decisions hash the per-key sequence number, so a resumed
// study must restore these counters for later rounds to draw the same
// decisions an uninterrupted run would.
type SeqEntry struct {
	Key string `json:"key"`
	Seq uint64 `json:"seq"`
}

// Snapshot returns the event counters sorted by key, for checkpointing.
func (e *Engine) Snapshot() []SeqEntry {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.seq) == 0 {
		return nil
	}
	out := make([]SeqEntry, 0, len(e.seq))
	for k, s := range e.seq {
		out = append(out, SeqEntry{Key: k, Seq: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore replaces the event counters with a snapshot taken by Snapshot.
func (e *Engine) Restore(snap []SeqEntry) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq = make(map[string]uint64, len(snap))
	for _, s := range snap {
		e.seq[s.Key] = s.Seq
	}
}

// inject records one fired fault against the subject host: the per-kind
// counter plus (when tracing) a fault.injected event on the host's span.
func (e *Engine) inject(subject string, rule int, k Kind) {
	e.metrics.Counter("faults.injected." + string(k)).Inc()
	if sp := e.tracer.HostSpan(subject); sp != nil {
		sp.Event("fault.injected", trace.String("kind", string(k)), trace.Int("rule", rule))
	}
}

// matches applies a rule's static Host/Class selectors to the subject.
func (e *Engine) matches(r Rule, host string) bool {
	if r.Host != "" && r.Host != host {
		return false
	}
	if r.Class != "" {
		if e.classify == nil || e.classify(host) != r.Class {
			return false
		}
	}
	return true
}

// decide consumes one event for (rule i, subject host) and reports whether
// the fault fires. The sequence number makes burst windows count-based and
// the hash makes rate decisions reproducible.
func (e *Engine) decide(i int, r Rule, host string) bool {
	key := string(r.Kind) + "|" + strconv.Itoa(i) + "|" + host
	e.mu.Lock()
	seq := e.seq[key]
	e.seq[key] = seq + 1
	e.mu.Unlock()
	if r.Burst > 0 && seq >= uint64(r.Burst) {
		return false
	}
	rate := r.Rate
	if rate <= 0 {
		rate = 1
	}
	if rate >= 1 {
		return true
	}
	h := decisionHash(e.plan.Seed, key, seq)
	return float64(h%1_000_000)/1_000_000 < rate
}

// DialTCP implements netsim.FaultInjector. Only port-25 (SMTP) dials are
// faultable: those originate from prober goroutines accounted to the
// simulated clock, so a tarpit's virtual sleep is safe there and only
// there.
func (e *Engine) DialTCP(src, dst netsim.Addr) netsim.DialFault {
	var f netsim.DialFault
	if dst.Port != 25 || e.plan.Empty() {
		return f
	}
	for i, r := range e.plan.Rules {
		if !smtpKind(r.Kind) || !e.matches(r, dst.Host) || !e.decide(i, r, dst.Host) {
			continue
		}
		e.inject(dst.Host, i, r.Kind)
		switch r.Kind {
		case KindConnRefuse:
			f.Refuse = true
		case KindConnReset:
			if f.ResetAfter == 0 || r.ResetAfter < f.ResetAfter {
				f.ResetAfter = r.ResetAfter
			}
		case KindSMTPTarpit:
			f.Delay += r.Delay
		case KindSMTPBlackhole:
			f.Blackhole = true
		}
	}
	return f
}

// Datagram implements netsim.FaultInjector. The subject host is the
// non-DNS endpoint (the MTA or probe doing the lookup), whose traffic is
// sequential and therefore safe to count; keying on the shared DNS server
// would interleave every host's events nondeterministically.
func (e *Engine) Datagram(from, to netsim.Addr, payload []byte) ([]byte, netsim.DatagramVerdict) {
	if e.plan.Empty() {
		return nil, netsim.VerdictPass
	}
	query := to.Port == 53 && from.Port != 53
	response := from.Port == 53 && to.Port != 53
	subject := from.Host
	if response {
		subject = to.Host
	}
	for i, r := range e.plan.Rules {
		switch r.Kind {
		case KindDropUDP:
			if !e.matches(r, subject) || !e.decide(i, r, subject) {
				continue
			}
			e.inject(subject, i, r.Kind)
			return nil, netsim.VerdictDrop
		case KindDNSTimeout:
			if !query || !e.matches(r, subject) || !e.decide(i, r, subject) {
				continue
			}
			e.inject(subject, i, r.Kind)
			return nil, netsim.VerdictDrop
		case KindDNSServfail:
			if !query || !e.matches(r, subject) || !e.decide(i, r, subject) {
				continue
			}
			forged := servfailResponse(payload)
			if forged == nil {
				continue // unparseable; leave the datagram alone
			}
			e.inject(subject, i, r.Kind)
			return forged, netsim.VerdictReflect
		case KindDNSTruncate:
			if !response || !e.matches(r, subject) || !e.decide(i, r, subject) {
				continue
			}
			truncated := truncateResponse(payload)
			if truncated == nil {
				continue
			}
			e.inject(subject, i, r.Kind)
			return truncated, netsim.VerdictPass
		}
	}
	return nil, netsim.VerdictPass
}

// servfailResponse forges a SERVFAIL reply to the query in payload, or nil
// when payload is not a usable query.
func servfailResponse(payload []byte) []byte {
	q, err := dnsmsg.Unpack(payload)
	if err != nil || q.Header.Response || len(q.Questions) == 0 {
		return nil
	}
	r := q.Reply()
	r.Header.RCode = dnsmsg.RCodeServFail
	out, err := r.Pack()
	if err != nil {
		return nil
	}
	return out
}

// truncateResponse sets the TC bit and strips every record section so the
// client falls back to TCP, or nil when payload is not a response worth
// mangling.
func truncateResponse(payload []byte) []byte {
	m, err := dnsmsg.Unpack(payload)
	if err != nil || !m.Header.Response || m.Header.Truncated {
		return nil
	}
	m.Header.Truncated = true
	m.Answers, m.Authority, m.Additional = nil, nil, nil
	out, err := m.Pack()
	if err != nil {
		return nil
	}
	return out
}

// decisionHash mixes the decision inputs with FNV-1a.
func decisionHash(seed int64, key string, seq uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	for i := 0; i < 8; i++ {
		b[i] = byte(seq >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

var _ netsim.FaultInjector = (*Engine)(nil)
