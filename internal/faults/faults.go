// Package faults is a seeded, deterministic fault-injection engine for the
// netsim fabric. A declarative Plan describes which flows misbehave and how
// (packet loss, DNS SERVFAIL/timeout bursts, truncation storms, connection
// refusals/resets, SMTP tarpits and blackholes); the Engine implements
// netsim.FaultInjector and applies the plan to live traffic.
//
// Determinism contract: every fault decision is a pure hash of stable flow
// identities — the plan seed, the rule index, the subject host IP, and a
// per-(rule, host) event sequence number. Decisions never consult the
// clock (the virtual instant at which concurrent traffic is observed is
// scheduler-dependent) and never key on ephemeral ports (the fabric's port
// allocator is a global counter whose values depend on goroutine
// interleaving). Because each subject host's traffic is sequential in this
// simulator — one prober goroutine per address, sequential DNS lookups per
// MTA resolver — per-host sequence numbers are identical across same-seed
// runs, so same-seed campaigns under a fault plan stay byte-deterministic.
package faults

import (
	"fmt"
	"net/netip"
	"time"
)

// Kind names one fault behaviour.
type Kind string

// The fault kinds.
const (
	// KindDropUDP drops matching datagrams (generic packet loss).
	KindDropUDP Kind = "drop-udp"
	// KindDNSServfail answers matching hosts' DNS queries with a forged
	// SERVFAIL instead of delivering them to the server.
	KindDNSServfail Kind = "dns-servfail"
	// KindDNSTimeout silently drops matching hosts' DNS queries, so the
	// client burns its full timeout.
	KindDNSTimeout Kind = "dns-timeout"
	// KindDNSTruncate sets the TC bit on (and strips the answers from)
	// DNS responses to matching hosts, forcing TCP fallback.
	KindDNSTruncate Kind = "dns-truncate"
	// KindConnRefuse refuses TCP dials to matching hosts' port 25.
	KindConnRefuse Kind = "conn-refuse"
	// KindConnReset resets SMTP connections to matching hosts after the
	// dialer has read ResetAfter bytes.
	KindConnReset Kind = "conn-reset"
	// KindSMTPTarpit delays SMTP dials to matching hosts by Delay on the
	// fabric clock (added latency / tarpitting).
	KindSMTPTarpit Kind = "smtp-tarpit"
	// KindSMTPBlackhole completes SMTP dials to matching hosts but
	// connects them to nothing; I/O hangs until the deadline.
	KindSMTPBlackhole Kind = "smtp-blackhole"
)

var validKinds = map[Kind]bool{
	KindDropUDP: true, KindDNSServfail: true, KindDNSTimeout: true,
	KindDNSTruncate: true, KindConnRefuse: true, KindConnReset: true,
	KindSMTPTarpit: true, KindSMTPBlackhole: true,
}

// smtpKind reports whether k targets TCP dials to port 25.
func smtpKind(k Kind) bool {
	switch k {
	case KindConnRefuse, KindConnReset, KindSMTPTarpit, KindSMTPBlackhole:
		return true
	}
	return false
}

// Rule matches a set of flows and applies one fault kind to them. The
// subject of a rule is always the client-side host: the MTA performing DNS
// lookups for DNS kinds, the dialed mail server for SMTP kinds, and the
// non-DNS endpoint for generic packet loss.
type Rule struct {
	// Kind selects the fault behaviour; required.
	Kind Kind
	// Host restricts the rule to one subject IP (exact match); "" matches
	// any host, subject to Class.
	Host string
	// Class restricts the rule to hosts of one behaviour class as named
	// by the engine's classifier (see population.World.FaultClassifier:
	// "unreachable", "refusing", "greylisting", "flaky", "silent",
	// "validating"); "" matches any class.
	Class string
	// Rate is the per-event fault probability in (0, 1]; 0 means 1
	// (always, within Burst).
	Rate float64
	// Burst, when positive, limits the rule to the first Burst matching
	// events per subject host — a deterministic burst at the start of
	// each host's flow history.
	Burst int
	// Delay is the tarpit duration for KindSMTPTarpit (default 10s).
	Delay time.Duration
	// ResetAfter is the read-byte budget for KindConnReset (default 48,
	// roughly one SMTP banner).
	ResetAfter int
}

func (r Rule) validate(i int) error {
	if !validKinds[r.Kind] {
		return fmt.Errorf("faults: rule %d: unknown kind %q", i, r.Kind)
	}
	if r.Host != "" {
		if _, err := netip.ParseAddr(r.Host); err != nil {
			return fmt.Errorf("faults: rule %d: bad host %q: %v", i, r.Host, err)
		}
	}
	if r.Rate < 0 || r.Rate > 1 {
		return fmt.Errorf("faults: rule %d: rate %v outside [0,1]", i, r.Rate)
	}
	if r.Burst < 0 {
		return fmt.Errorf("faults: rule %d: negative burst %d", i, r.Burst)
	}
	if r.Delay < 0 {
		return fmt.Errorf("faults: rule %d: negative delay %v", i, r.Delay)
	}
	if r.Delay != 0 && r.Kind != KindSMTPTarpit {
		return fmt.Errorf("faults: rule %d: Delay only applies to %s", i, KindSMTPTarpit)
	}
	if r.ResetAfter < 0 {
		return fmt.Errorf("faults: rule %d: negative ResetAfter %d", i, r.ResetAfter)
	}
	if r.ResetAfter != 0 && r.Kind != KindConnReset {
		return fmt.Errorf("faults: rule %d: ResetAfter only applies to %s", i, KindConnReset)
	}
	return nil
}

// Plan is a declarative fault schedule: a seed and an ordered rule list.
// The zero value is a valid empty plan (no faults).
type Plan struct {
	// Seed feeds every probabilistic decision; two engines built from
	// identical plans make identical decisions.
	Seed int64
	// Rules are evaluated in order for each event; for datagrams the
	// first rule that fires wins, for dials all firing rules compose.
	Rules []Rule
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Rules) == 0 }

// Normalize validates the plan and fills per-rule defaults (10s tarpit,
// 48-byte reset budget).
func (p Plan) Normalize() (Plan, error) {
	out := p
	out.Rules = append([]Rule(nil), p.Rules...)
	for i := range out.Rules {
		if err := out.Rules[i].validate(i); err != nil {
			return p, err
		}
		if out.Rules[i].Kind == KindSMTPTarpit && out.Rules[i].Delay == 0 {
			out.Rules[i].Delay = 10 * time.Second
		}
		if out.Rules[i].Kind == KindConnReset && out.Rules[i].ResetAfter == 0 {
			out.Rules[i].ResetAfter = 48
		}
	}
	return out, nil
}

// PresetNames lists the built-in plans, mildest first.
var PresetNames = []string{"none", "mild", "aggressive"}

// Preset returns a named built-in plan (seed zero; callers set Plan.Seed).
// Known names are "none" (empty), "mild" (light transient loss), and
// "aggressive" (the full fault menagerie the resilience tests run under).
func Preset(name string) (Plan, error) {
	switch name {
	case "", "none":
		return Plan{}, nil
	case "mild":
		return Plan{Rules: []Rule{
			{Kind: KindDropUDP, Rate: 0.05},
			{Kind: KindDNSServfail, Burst: 1},
			{Kind: KindConnRefuse, Rate: 0.05},
		}}, nil
	case "aggressive":
		return Plan{Rules: []Rule{
			{Kind: KindDNSServfail, Burst: 2},
			{Kind: KindDNSTruncate, Rate: 0.25},
			{Kind: KindDropUDP, Rate: 0.2},
			{Kind: KindConnRefuse, Rate: 0.2},
			{Kind: KindConnReset, Rate: 0.15, ResetAfter: 64},
			{Kind: KindSMTPTarpit, Rate: 0.25, Delay: 20 * time.Second},
			{Kind: KindSMTPBlackhole, Rate: 0.1},
		}}, nil
	default:
		return Plan{}, fmt.Errorf("faults: unknown preset %q (have %v)", name, PresetNames)
	}
}
