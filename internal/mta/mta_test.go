package mta

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/netsim"
	"spfail/internal/smtp"
	"spfail/internal/spf"
	"spfail/internal/spfimpl"
)

// world bundles a fabric, an authoritative DNS server with the SPF test
// zone, and a query log — the measurement-side infrastructure.
type world struct {
	fabric *netsim.Fabric
	log    *dnsserver.QueryLog
	zone   *dnsserver.SPFTestZone
}

const dnsIP = "192.0.2.53"

func newWorld(t *testing.T) *world { return newWorldClock(t, nil) }

// newWorldClock builds a world whose fabric enforces deadlines against clk
// (nil: the real clock). The clock must be fixed here, before the DNS
// server starts reading from fabric connections.
func newWorldClock(t *testing.T, clk clock.Clock) *world {
	t.Helper()
	w := &world{
		fabric: netsim.NewFabric(),
		log:    &dnsserver.QueryLog{},
		zone: &dnsserver.SPFTestZone{
			Base:  dnsmsg.MustParseName("spf-test.dns-lab.org"),
			Addr4: netip.MustParseAddr("192.0.2.80"),
		},
	}
	w.fabric.Clock = clk
	handler := &dnsserver.LoggingHandler{
		Inner: w.zone,
		Sink:  w.log,
		Now:   time.Now,
	}
	srv := &dnsserver.Server{Net: w.fabric.Host(dnsIP), Addr: ":53", Handler: handler}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return w
}

func (w *world) newHost(t *testing.T, ip string, cfg Config) *Host {
	t.Helper()
	cfg.Hostname = "mx." + ip + ".example"
	cfg.IP = netip.MustParseAddr(ip)
	cfg.Net = w.fabric.Host(ip)
	cfg.DNSServer = dnsIP + ":53"
	cfg.DNSTimeout = time.Second
	h := New(cfg)
	if err := h.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	return h
}

// probe runs a full BlankMsg-style transaction against the host.
func (w *world) probe(t *testing.T, hostIP, mailDomain string, full bool) error {
	t.Helper()
	cli := &smtp.Client{Net: w.fabric.Host("198.51.100.9"), HELO: "probe.dns-lab.org"}
	conn, err := cli.Dial(context.Background(), hostIP+":25")
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Hello(); err != nil {
		return err
	}
	if err := conn.Mail("mmj7yzdm0tbk@" + mailDomain); err != nil {
		return err
	}
	if err := conn.Rcpt("noreply@" + hostIP + ".example"); err != nil {
		return err
	}
	if err := conn.Data(); err != nil {
		return err
	}
	if !full {
		return conn.Close() // NoMsg termination
	}
	r, err := conn.SendMessage(nil) // BlankMsg
	if err != nil {
		return err
	}
	if !r.Positive() {
		return &smtp.ReplyError{Reply: *r}
	}
	return nil
}

// queriesFor extracts query names containing the given id label.
func (w *world) queriesFor(id string) []string {
	var out []string
	for _, ev := range w.log.Snapshot() {
		if id2, _, ok := w.zone.ExtractIDSuite(ev.Name); ok && id2 == id {
			out = append(out, ev.Name.String())
		}
	}
	return out
}

func TestVulnerableHostEmitsFingerprint(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.10", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: ValidateAtMailFrom,
	})
	mailDomain := "xk91.t01.spf-test.dns-lab.org"
	if err := w.probe(t, "203.0.113.10", mailDomain, false); err != nil {
		t.Fatalf("probe: %v", err)
	}
	qs := w.queriesFor("xk91")
	// Expect TXT for the mail domain, the vulnerable fingerprint A query,
	// and the liveness A query.
	want := "org.org.dns-lab.spf-test.t01.xk91.xk91.t01.spf-test.dns-lab.org."
	var sawFingerprint, sawLiveness bool
	for _, q := range qs {
		if q == want {
			sawFingerprint = true
		}
		if q == "b.xk91.t01.spf-test.dns-lab.org." {
			sawLiveness = true
		}
	}
	if !sawFingerprint {
		t.Errorf("fingerprint query missing; got %v", qs)
	}
	if !sawLiveness {
		t.Errorf("liveness query missing; got %v", qs)
	}
}

func TestCompliantHostExpandsCorrectly(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.11", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorCompliant},
		ValidateAt: ValidateAtMailFrom,
	})
	if err := w.probe(t, "203.0.113.11", "ab42.t01.spf-test.dns-lab.org", false); err != nil {
		t.Fatalf("probe: %v", err)
	}
	qs := w.queriesFor("ab42")
	var sawCompliant bool
	for _, q := range qs {
		if q == "ab42.ab42.t01.spf-test.dns-lab.org." {
			sawCompliant = true
		}
		if strings.Contains(q, "org.org.") {
			t.Errorf("compliant host emitted vulnerable pattern: %s", q)
		}
	}
	if !sawCompliant {
		t.Errorf("compliant expansion missing; got %v", qs)
	}
}

func TestValidateAtDataRequiresBlankMsg(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.12", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: ValidateAtData,
	})
	// NoMsg probe: no SPF queries.
	if err := w.probe(t, "203.0.113.12", "cd77.t01.spf-test.dns-lab.org", false); err != nil {
		t.Fatalf("NoMsg probe: %v", err)
	}
	if qs := w.queriesFor("cd77"); len(qs) != 0 {
		t.Fatalf("NoMsg probe should trigger nothing at a data-validating host; got %v", qs)
	}
	// BlankMsg probe: queries appear.
	if err := w.probe(t, "203.0.113.12", "cd78.t01.spf-test.dns-lab.org", true); err != nil {
		t.Fatalf("BlankMsg probe: %v", err)
	}
	if qs := w.queriesFor("cd78"); len(qs) == 0 {
		t.Fatal("BlankMsg probe should trigger SPF at a data-validating host")
	}
}

func TestPatchChangesFingerprint(t *testing.T) {
	w := newWorld(t)
	h := w.newHost(t, "203.0.113.13", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: ValidateAtMailFrom,
	})
	if !h.Vulnerable() {
		t.Fatal("host should start vulnerable")
	}
	h.Patch()
	if h.Vulnerable() {
		t.Fatal("host should be patched")
	}
	if err := w.probe(t, "203.0.113.13", "ef55.t01.spf-test.dns-lab.org", false); err != nil {
		t.Fatalf("probe: %v", err)
	}
	for _, q := range w.queriesFor("ef55") {
		if strings.HasPrefix(q, "org.org.") {
			t.Errorf("patched host still emits vulnerable pattern: %s", q)
		}
	}
}

func TestMultipleBehaviorsEmitMultiplePatterns(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.14", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2, spfimpl.BehaviorCompliant},
		ValidateAt: ValidateAtMailFrom,
	})
	if err := w.probe(t, "203.0.113.14", "gh33.t01.spf-test.dns-lab.org", false); err != nil {
		t.Fatalf("probe: %v", err)
	}
	qs := w.queriesFor("gh33")
	var vuln, compliant bool
	for _, q := range qs {
		if strings.HasPrefix(q, "org.org.") {
			vuln = true
		}
		if q == "gh33.gh33.t01.spf-test.dns-lab.org." {
			compliant = true
		}
	}
	if !vuln || !compliant {
		t.Errorf("multi-impl host patterns: vuln=%v compliant=%v queries=%v", vuln, compliant, qs)
	}
}

func TestRefuseSMTPHost(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.15", Config{RefuseSMTP: true})
	err := w.probe(t, "203.0.113.15", "ij11.t01.spf-test.dns-lab.org", false)
	if smtp.ReplyCode(err) != 421 {
		t.Fatalf("probe err = %v, want 421", err)
	}
}

func TestBlacklistActivatesAtTime(t *testing.T) {
	sim := clock.NewSim(time.Date(2021, 10, 11, 0, 0, 0, 0, time.UTC))
	defer sim.Close()
	// Deadlines on fabric connections are enforced against the fabric
	// clock; a Sim-clocked host needs the fabric on the same timeline.
	w := newWorldClock(t, sim)
	w.newHost(t, "203.0.113.16", Config{
		Clock:             sim,
		Behaviors:         []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt:        ValidateAtMailFrom,
		BlacklistProbesAt: time.Date(2021, 11, 15, 0, 0, 0, 0, time.UTC),
	})
	if err := w.probe(t, "203.0.113.16", "kl22.t01.spf-test.dns-lab.org", false); err != nil {
		t.Fatalf("pre-blacklist probe: %v", err)
	}
	sim.Advance(60 * 24 * time.Hour)
	err := w.probe(t, "203.0.113.16", "kl23.t01.spf-test.dns-lab.org", false)
	if smtp.ReplyCode(err) != 421 {
		t.Fatalf("post-blacklist probe = %v, want 421", err)
	}
}

func TestGreylistFirstAttempt(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.17", Config{Greylist: true, ValidateAt: ValidateNever})
	err := w.probe(t, "203.0.113.17", "mn44.t01.spf-test.dns-lab.org", true)
	if smtp.ReplyCode(err) != 450 {
		t.Fatalf("first attempt = %v, want 450", err)
	}
	if err := w.probe(t, "203.0.113.17", "mn44.t01.spf-test.dns-lab.org", true); err != nil {
		t.Fatalf("retry should succeed: %v", err)
	}
}

func TestRejectOnFailStillMeasurable(t *testing.T) {
	// A host that rejects on SPF fail still performed the lookups —
	// the paper's observation that rejected transactions were often
	// conclusive anyway.
	w := newWorld(t)
	w.newHost(t, "203.0.113.18", Config{
		Behaviors:    []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt:   ValidateAtMailFrom,
		RejectOnFail: true,
	})
	err := w.probe(t, "203.0.113.18", "op66.t01.spf-test.dns-lab.org", false)
	if smtp.ReplyCode(err) != 550 {
		t.Fatalf("probe = %v, want 550 SPF rejection", err)
	}
	if qs := w.queriesFor("op66"); len(qs) == 0 {
		t.Fatal("rejection should not prevent SPF queries from being observed")
	}
}

func TestRcptUserFiltering(t *testing.T) {
	w := newWorld(t)
	w.newHost(t, "203.0.113.19", Config{
		AcceptedLocals: map[string]bool{"postmaster": true},
		ValidateAt:     ValidateNever,
	})
	cli := &smtp.Client{Net: w.fabric.Host("198.51.100.9"), HELO: "probe"}
	conn, err := cli.Dial(context.Background(), "203.0.113.19:25")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Hello()
	conn.Mail("probe@x.t.spf-test.dns-lab.org")
	if err := conn.Rcpt("noreply@example.com"); smtp.ReplyCode(err) != 550 {
		t.Fatalf("unknown user = %v, want 550", err)
	}
	if err := conn.Rcpt("postmaster@example.com"); err != nil {
		t.Fatalf("postmaster should be accepted: %v", err)
	}
}

func TestDMARCEnforcementDiscardsBlankProbe(t *testing.T) {
	// A host enforcing DMARC at end-of-data: the probe's SPF queries are
	// still observable, but the blank message itself is rejected because
	// the probe domain publishes p=reject (§6.2) — it never reaches an
	// inbox.
	w := newWorld(t)
	h := w.newHost(t, "203.0.113.21", Config{
		Behaviors:    []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt:   ValidateAtData,
		EnforceDMARC: true,
	})
	err := w.probe(t, "203.0.113.21", "st99.t01.spf-test.dns-lab.org", true)
	if smtp.ReplyCode(err) != 550 {
		t.Fatalf("blank probe = %v, want 550 DMARC rejection", err)
	}
	if qs := w.queriesFor("st99"); len(qs) == 0 {
		t.Fatal("SPF queries should precede the DMARC rejection")
	}
	if len(h.Inbox()) != 0 {
		t.Fatal("rejected probe must not be delivered")
	}
	// Sanity: without enforcement the same probe is delivered.
	h2 := w.newHost(t, "203.0.113.22", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: ValidateAtData,
	})
	if err := w.probe(t, "203.0.113.22", "st98.t01.spf-test.dns-lab.org", true); err != nil {
		t.Fatalf("unenforced probe: %v", err)
	}
	if len(h2.Inbox()) != 1 {
		t.Fatal("unenforced probe should be delivered")
	}
}

func TestValidationRecordsAndOverflows(t *testing.T) {
	w := newWorld(t)
	h := w.newHost(t, "203.0.113.20", Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: ValidateAtMailFrom,
	})
	if err := w.probe(t, "203.0.113.20", "qr88.t01.spf-test.dns-lab.org", false); err != nil {
		t.Fatal(err)
	}
	vals := h.Validations()
	if len(vals) != 1 {
		t.Fatalf("validations = %v", vals)
	}
	v := vals[0]
	if v.Behavior != spfimpl.BehaviorVulnLibSPF2 || v.Result != spf.ResultFail {
		t.Errorf("validation = %+v", v)
	}
	if v.ClientIP.String() != "198.51.100.9" {
		t.Errorf("client IP = %s", v.ClientIP)
	}
	// The benign probe policy uses lowercase %{d1r}: no overflow events.
	if ov := h.Overflows(); len(ov) != 0 {
		t.Errorf("benign probe caused overflows: %v", ov)
	}
}
