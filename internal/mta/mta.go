// Package mta assembles a simulated mail host: an SMTP server whose policy
// hooks run genuine SPF validation through one (or, like 6% of hosts the
// paper measured, more than one) SPF implementation behavior, a DNS stub
// resolver pointed at the simulation's authoritative server, and a
// behaviour plan covering the operational quirks the SPFail measurement had
// to contend with — greylisting, probe blacklisting, validation deferred
// until after message data, and patching mid-study.
package mta

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dmarc"
	"spfail/internal/dnsclient"
	"spfail/internal/netsim"
	"spfail/internal/smtp"
	"spfail/internal/spf"
	"spfail/internal/spfimpl"
	"spfail/internal/trace"
)

// ValidationPoint says when a host triggers SPF validation.
type ValidationPoint string

// The observed trigger points (paper §5.1: hosts that validated at MAIL
// FROM were measurable with the NoMsg probe; hosts deferring until data
// required BlankMsg; some never validate).
const (
	ValidateAtMailFrom ValidationPoint = "mailfrom"
	ValidateAtData     ValidationPoint = "data"
	ValidateNever      ValidationPoint = "never"
)

// Config describes a simulated mail host.
type Config struct {
	Hostname string
	// IP is the host's address on the fabric.
	IP netip.Addr
	// Net provides connectivity (typically fabric.Host(IP)).
	Net netsim.Network
	// Clock drives greylist windows and blacklist activation.
	Clock clock.Clock
	// DNSServer is the resolver address, e.g. "192.0.2.53:53".
	DNSServer string
	// ListenAddr overrides the SMTP listen address (default ":25";
	// real-socket deployments on unprivileged ports set e.g. ":2525").
	ListenAddr string

	// Behaviors is the ordered list of SPF implementations this host
	// runs (multiple entries model stacked filters such as an MTA plus
	// SpamAssassin). Empty means the host performs no SPF validation.
	Behaviors []spfimpl.Behavior
	// ValidateAt selects the trigger point.
	ValidateAt ValidationPoint
	// RejectOnFail makes the host reject the transaction with 550 when
	// the first behavior's validation fails.
	RejectOnFail bool
	// Greylist makes the first delivery attempt from each (client IP,
	// sender) pair fail with 450.
	Greylist bool
	// RefuseSMTP makes the host answer every session with 421 after the
	// banner (the paper's "SMTP failure" outcome class).
	RefuseSMTP bool
	// RejectData makes the host permanently reject message content with
	// 554 (the BlankMsg-stage SMTP failures of Table 3).
	RejectData bool
	// EnforceDMARC makes the host honor the sender domain's DMARC policy
	// at end-of-data when SPF did not pass — the reason the study's
	// blank probe messages (whose source domains publish p=reject,
	// §6.2) were mostly discarded rather than delivered.
	EnforceDMARC bool
	// AcceptedLocals restricts RCPT TO local parts; nil accepts all.
	AcceptedLocals map[string]bool
	// BlacklistProbesAt, when non-zero, makes the host reject sessions
	// with 421 from that instant on — the dominant cause of the
	// longitudinal study's inconclusive measurements (paper §7.6).
	BlacklistProbesAt time.Time
	// BlacklistProbesUntil, when non-zero, ends the blacklist window
	// (reputation decay); zero means the blacklist never lifts.
	BlacklistProbesUntil time.Time
	// FlakyRate is the per-session probability of answering 421 —
	// intermittent failures that make longitudinal measurements
	// fluctuate (paper Figure 5).
	FlakyRate float64
	// FlakySeed makes the flakiness deterministic per host.
	FlakySeed int64

	// DNSTimeout bounds resolver transactions (keep small in simulation).
	DNSTimeout time.Duration

	// Trace, when non-nil, attributes the host's SPF evaluations (and the
	// DNS traffic underneath them) to whichever probe span currently owns
	// this host's IP (see trace.Span.Adopt).
	Trace *trace.Tracer
}

// Validation records one SPF validation performed by the host.
type Validation struct {
	Time     time.Time
	Sender   string
	HELO     string
	ClientIP netip.Addr
	Behavior spfimpl.Behavior
	Result   spf.Result
}

// Host is a running simulated mail host.
type Host struct {
	cfg    Config
	server *smtp.Server

	mu          sync.Mutex
	behaviors   []spfimpl.Behavior
	checkers    []*spf.Checker // parallel to behaviors; built lazily, reset on change
	greySeen    map[string]bool
	validations []Validation
	overflows   []spfimpl.OverflowEvent
	inbox       [][]byte
	flaky       *rand.Rand

	// res is the host's resolver with its local TTL cache, like the
	// recursive resolver a real MTA sits behind. SPFail's unique probe
	// labels exist precisely to defeat this layer.
	res spf.Resolver
}

// New builds a host from cfg. Call Start to serve.
func New(cfg Config) *Host {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.DNSTimeout == 0 {
		cfg.DNSTimeout = 2 * time.Second
	}
	h := &Host{
		cfg:       cfg,
		behaviors: append([]spfimpl.Behavior(nil), cfg.Behaviors...),
		greySeen:  make(map[string]bool),
	}
	if cfg.FlakyRate > 0 {
		h.flaky = rand.New(rand.NewSource(cfg.FlakySeed))
	}
	// Client → Pipeline → SingleFlight → CachingClient → Resolver: the wire
	// client under query pipelining, in-flight dedup, and the MTA's local
	// TTL cache, composed via the shared Querier interface. The pipeline
	// lets a validation's dual-family (A+AAAA) lookups ride one socket as a
	// single virtual round-trip.
	wire := &dnsclient.Client{
		Net:     cfg.Net,
		Server:  cfg.DNSServer,
		Timeout: cfg.DNSTimeout,
		Clk:     cfg.Clock,
	}
	pipe := &dnsclient.Pipeline{Upstream: wire}
	flight := &dnsclient.SingleFlight{Upstream: pipe}
	cached := dnsclient.NewCachingClient(flight, cfg.Clock)
	h.res = ResolverAdapter{R: dnsclient.NewResolver(cached)}
	listen := cfg.ListenAddr
	if listen == "" {
		listen = ":25"
	}
	h.server = &smtp.Server{
		Hostname: cfg.Hostname,
		Net:      cfg.Net,
		Addr:     listen,
		Handler:  (*hostHandler)(h),
		Clk:      cfg.Clock,
	}
	return h
}

// Start binds port 25.
func (h *Host) Start(ctx context.Context) error { return h.server.Start(ctx) }

// Stop shuts the SMTP listener down.
func (h *Host) Stop() { h.server.Stop() }

// Patch replaces every vulnerable or erroneous behavior with the patched
// libSPF2, modeling a package upgrade. The stack is replaced wholesale (not
// mutated in place) so snapshots handed to in-flight validations stay
// immutable.
func (h *Host) Patch() {
	h.mu.Lock()
	defer h.mu.Unlock()
	bs := append([]spfimpl.Behavior(nil), h.behaviors...)
	for i, b := range bs {
		if b == spfimpl.BehaviorVulnLibSPF2 {
			bs[i] = spfimpl.BehaviorPatchedLibSPF2
		}
	}
	h.behaviors = bs
	h.checkers = nil
}

// SetBehaviors replaces the validation stack (used by patch plans that
// switch libraries entirely).
func (h *Host) SetBehaviors(bs []spfimpl.Behavior) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.behaviors = append([]spfimpl.Behavior(nil), bs...)
	h.checkers = nil
}

// Behaviors returns the current validation stack.
func (h *Host) Behaviors() []spfimpl.Behavior {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]spfimpl.Behavior(nil), h.behaviors...)
}

// Vulnerable reports whether any current behavior is exploitable.
func (h *Host) Vulnerable() bool {
	for _, b := range h.Behaviors() {
		if b.Vulnerable() {
			return true
		}
	}
	return false
}

// Validations returns a copy of the validations performed.
func (h *Host) Validations() []Validation {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Validation(nil), h.validations...)
}

// Overflows returns the simulated heap overflows the host has suffered.
func (h *Host) Overflows() []spfimpl.OverflowEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]spfimpl.OverflowEvent(nil), h.overflows...)
}

// Inbox returns messages accepted by the host.
func (h *Host) Inbox() [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([][]byte, len(h.inbox))
	for i, m := range h.inbox {
		out[i] = append([]byte(nil), m...)
	}
	return out
}

// resolver returns the host's cached SPF-facing resolver.
func (h *Host) resolver() spf.Resolver { return h.res }

// newChecker builds the long-lived checker for one behavior.
func (h *Host) newChecker(b spfimpl.Behavior) *spf.Checker {
	checker := &spf.Checker{Resolver: h.res, Receiver: h.cfg.Hostname}
	switch b {
	case spfimpl.BehaviorVulnLibSPF2:
		checker.Expander = &spfimpl.LibSPF2Expander{OnOverflow: func(ev spfimpl.OverflowEvent) {
			h.mu.Lock()
			h.overflows = append(h.overflows, ev)
			h.mu.Unlock()
		}}
	case spfimpl.BehaviorSkipMacros:
		checker.SkipMacroMechanisms = true
	default:
		checker.Expander = spfimpl.ExpanderFor(b)
	}
	return checker
}

// behaviorCheckers snapshots the behavior stack with a matching slice of
// long-lived checkers, building checkers lazily after any behavior change.
// Reusing checkers across validations lets the SPF engine's parsed-record
// memo and pooled evaluation sessions amortize; a fresh checker per
// validation would re-parse every policy and re-allocate every walk. Both
// returned slices are immutable snapshots: Patch and SetBehaviors replace
// the stack wholesale rather than mutating it.
func (h *Host) behaviorCheckers() ([]spfimpl.Behavior, []*spf.Checker) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.checkers == nil {
		h.checkers = make([]*spf.Checker, len(h.behaviors))
		for i, b := range h.behaviors {
			h.checkers[i] = h.newChecker(b)
		}
	}
	return h.behaviors, h.checkers
}

// validate runs every configured behavior's validation for a transaction.
func (h *Host) validate(sender, helo string, remote net.Addr) spf.Result {
	domain := smtp.AddressDomain(sender)
	if domain == "" {
		return spf.ResultNone
	}
	clientIP := remoteIP(remote)

	// Attribute the evaluation (and the DNS lookups under it) to the probe
	// span that currently owns this host, when a campaign is tracing.
	ctx := context.Background()
	var vsp *trace.Span
	if h.cfg.Trace != nil {
		if sp := h.cfg.Trace.HostSpan(h.cfg.IP.String()); sp != nil {
			vsp = sp.Child("mta.validate",
				trace.String("sender", sender),
				trace.String("helo", helo),
			)
			ctx = trace.ContextWithSpan(ctx, vsp)
		}
	}

	first := spf.ResultNone
	behaviors, checkers := h.behaviorCheckers()
	for i, b := range behaviors {
		out := checkers[i].CheckHost(ctx, clientIP, domain, sender, helo)
		h.mu.Lock()
		h.validations = append(h.validations, Validation{
			Time:     h.cfg.Clock.Now(),
			Sender:   sender,
			HELO:     helo,
			ClientIP: clientIP,
			Behavior: b,
			Result:   out.Result,
		})
		h.mu.Unlock()
		if vsp != nil {
			vsp.Event("mta.behavior",
				trace.String("behavior", string(b)),
				trace.String("result", string(out.Result)),
			)
		}
		if i == 0 {
			first = out.Result
		}
	}
	if vsp != nil {
		vsp.SetAttrs(trace.String("result", string(first)))
		vsp.End()
	}
	return first
}

func remoteIP(remote net.Addr) netip.Addr {
	if remote == nil {
		return netip.Addr{}
	}
	host, _, err := net.SplitHostPort(remote.String())
	if err != nil {
		host = remote.String()
	}
	a, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}
	}
	return a
}

// hostHandler implements smtp.Handler on Host.
type hostHandler Host

func (hh *hostHandler) host() *Host { return (*Host)(hh) }

// OnConnect implements smtp.Handler.
func (hh *hostHandler) OnConnect(remote net.Addr) *smtp.Reply {
	h := hh.host()
	if h.cfg.RefuseSMTP {
		return smtp.ReplyShuttingDown
	}
	if h.flaky != nil {
		h.mu.Lock()
		drop := h.flaky.Float64() < h.cfg.FlakyRate
		h.mu.Unlock()
		if drop {
			return smtp.ReplyShuttingDown
		}
	}
	if !h.cfg.BlacklistProbesAt.IsZero() {
		now := h.cfg.Clock.Now()
		inWindow := !now.Before(h.cfg.BlacklistProbesAt) &&
			(h.cfg.BlacklistProbesUntil.IsZero() || now.Before(h.cfg.BlacklistProbesUntil))
		if inWindow {
			return smtp.ReplyShuttingDown
		}
	}
	return nil
}

// OnHelo implements smtp.Handler.
func (hh *hostHandler) OnHelo(string, bool) *smtp.Reply { return nil }

// OnMailFrom implements smtp.Handler.
func (hh *hostHandler) OnMailFrom(from string, remote net.Addr, helo string) *smtp.Reply {
	h := hh.host()
	if from == "" {
		return nil // null reverse-path: bounces are always accepted
	}
	if h.cfg.ValidateAt == ValidateAtMailFrom {
		result := h.validate(from, helo, remote)
		if h.cfg.RejectOnFail && result == spf.ResultFail {
			return smtp.Replyf(550, "SPF check failed for %s", from)
		}
	}
	return nil
}

// OnRcptTo implements smtp.Handler.
func (hh *hostHandler) OnRcptTo(to string) *smtp.Reply {
	h := hh.host()
	if h.cfg.AcceptedLocals != nil && !h.cfg.AcceptedLocals[smtp.AddressLocal(to)] {
		return smtp.ReplyNoSuchUser
	}
	return nil
}

// OnData implements smtp.Handler.
func (hh *hostHandler) OnData(from string, rcpts []string, msg []byte, remote net.Addr, helo string) *smtp.Reply {
	h := hh.host()
	if h.cfg.Greylist {
		// Keyed by client IP: like common greylisters, the host admits
		// the client once it has come back after the initial deferral.
		key := remoteIP(remote).String()
		h.mu.Lock()
		seen := h.greySeen[key]
		h.greySeen[key] = true
		h.mu.Unlock()
		if !seen {
			return smtp.ReplyGreylisted
		}
	}
	spfResult := spf.ResultNone
	if h.cfg.ValidateAt == ValidateAtData && from != "" {
		spfResult = h.validate(from, helo, remote)
		if h.cfg.RejectOnFail && spfResult == spf.ResultFail {
			return smtp.Replyf(550, "SPF check failed for %s", from)
		}
	}
	if h.cfg.RejectData {
		return smtp.ReplyRejectedPolicy
	}
	if h.cfg.EnforceDMARC && from != "" && spfResult != spf.ResultPass {
		domain := smtp.AddressDomain(from)
		res, err := dmarc.Evaluate(context.Background(), h.resolver(), domain, spfResult, domain)
		if err == nil && res.Disposition == dmarc.PolicyReject {
			return smtp.Replyf(550, "message rejected per DMARC policy of %s", domain)
		}
	}
	h.mu.Lock()
	h.inbox = append(h.inbox, append([]byte(nil), msg...))
	h.mu.Unlock()
	return nil
}

// OnAbort implements smtp.Handler.
func (hh *hostHandler) OnAbort(string) {}

// ResolverAdapter translates dnsclient's API and error taxonomy into the
// SPF engine's Resolver contract.
type ResolverAdapter struct {
	R *dnsclient.Resolver
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, dnsclient.ErrNotFound):
		return fmt.Errorf("%w: %v", spf.ErrNotFound, err)
	default:
		return fmt.Errorf("%w: %v", spf.ErrTemporary, err)
	}
}

// LookupTXT implements spf.Resolver.
func (a ResolverAdapter) LookupTXT(ctx context.Context, name string) ([]string, error) {
	out, err := a.R.LookupTXT(ctx, name)
	return out, mapErr(err)
}

// LookupIP implements spf.Resolver.
func (a ResolverAdapter) LookupIP(ctx context.Context, network, name string) ([]netip.Addr, error) {
	out, err := a.R.LookupIP(ctx, network, name)
	if err == nil && len(out) == 0 {
		return nil, fmt.Errorf("%w: no %s addresses for %s", spf.ErrNotFound, network, name)
	}
	return out, mapErr(err)
}

// LookupMX implements spf.Resolver.
func (a ResolverAdapter) LookupMX(ctx context.Context, name string) ([]spf.MX, error) {
	mxs, err := a.R.LookupMX(ctx, name)
	if err != nil {
		return nil, mapErr(err)
	}
	if len(mxs) == 0 {
		return nil, fmt.Errorf("%w: no MX for %s", spf.ErrNotFound, name)
	}
	out := make([]spf.MX, len(mxs))
	for i, m := range mxs {
		out[i] = spf.MX{Preference: m.Preference, Host: m.Host}
	}
	return out, nil
}

// LookupPTR implements spf.Resolver.
func (a ResolverAdapter) LookupPTR(ctx context.Context, addr netip.Addr) ([]string, error) {
	out, err := a.R.LookupPTR(ctx, addr)
	return out, mapErr(err)
}

var _ spf.Resolver = ResolverAdapter{}
