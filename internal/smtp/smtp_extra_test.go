package smtp

import (
	"context"
	"strings"
	"testing"

	"spfail/internal/netsim"
)

func TestVrfyAndNoop(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	if r, err := conn.cmd("NOOP"); err != nil || r.Code != 250 {
		t.Fatalf("NOOP = %v, %v", r, err)
	}
	if r, err := conn.cmd("VRFY postmaster"); err != nil || r.Code != 252 {
		t.Fatalf("VRFY = %v, %v", r, err)
	}
}

func TestUnknownCommandGets500(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	if r, err := conn.cmd("TURN"); err != nil || r.Code != 500 {
		t.Fatalf("TURN = %v, %v", r, err)
	}
	if r, err := conn.cmd(""); err != nil || r.Code != 500 {
		t.Fatalf("empty line = %v, %v", r, err)
	}
}

func TestHeloWithoutArgumentGets501(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	if r, err := conn.cmd("EHLO"); err != nil || r.Code != 501 {
		t.Fatalf("bare EHLO = %v, %v", r, err)
	}
}

func TestMailWithESMTPParams(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	if r, err := conn.cmd("MAIL FROM:<a@b.example> SIZE=1000 BODY=8BITMIME"); err != nil || !r.Positive() {
		t.Fatalf("MAIL with params = %v, %v", r, err)
	}
	got := h.snapshot()
	if len(got.mails) != 1 || got.mails[0] != "a@b.example" {
		t.Errorf("mails = %v", got.mails)
	}
}

func TestNullReversePathAccepted(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	if r, err := conn.cmd("MAIL FROM:<>"); err != nil || !r.Positive() {
		t.Fatalf("null reverse-path = %v, %v", r, err)
	}
	got := h.snapshot()
	if len(got.mails) != 1 || got.mails[0] != "" {
		t.Errorf("mails = %v", got.mails)
	}
}

func TestDoubleMailFromRejected(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	conn.Mail("a@b.example")
	if err := conn.Mail("c@d.example"); ReplyCode(err) != 503 {
		t.Fatalf("second MAIL = %v, want 503", err)
	}
}

func TestMessageTooLargeAborts(t *testing.T) {
	h := &recordingHandler{}
	fabric := netsim.NewFabric()
	srv := &Server{
		Hostname:        "mx.example.com",
		Net:             fabric.Host("192.0.2.26"),
		Addr:            ":25",
		Handler:         h,
		MaxMessageBytes: 64,
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	conn := dial(t, fabric, "192.0.2.26:25")
	defer conn.Close()
	conn.Hello()
	conn.Mail("a@b.example")
	conn.Rcpt("x@example.com")
	if err := conn.Data(); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("spam spam spam\r\n", 64)
	if _, err := conn.SendMessage([]byte(big)); err == nil {
		t.Fatal("oversized message should break the session")
	}
	if len(h.snapshot().datas) != 0 {
		t.Error("oversized message must not reach OnData")
	}
}

func TestMultipleRecipients(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	conn.Mail("a@b.example")
	for _, rcpt := range []string{"one@example.com", "two@example.com", "three@example.com"} {
		if err := conn.Rcpt(rcpt); err != nil {
			t.Fatal(err)
		}
	}
	conn.Data()
	conn.SendMessage([]byte("hi"))
	got := h.snapshot()
	if len(got.rcpts) != 3 {
		t.Errorf("rcpts = %v", got.rcpts)
	}
}

func TestSecondTransactionOnSameConnection(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	for i := 0; i < 2; i++ {
		if err := conn.Mail("a@b.example"); err != nil {
			t.Fatalf("transaction %d MAIL: %v", i, err)
		}
		if err := conn.Rcpt("x@example.com"); err != nil {
			t.Fatalf("transaction %d RCPT: %v", i, err)
		}
		if err := conn.Data(); err != nil {
			t.Fatalf("transaction %d DATA: %v", i, err)
		}
		if _, err := conn.SendMessage([]byte("msg")); err != nil {
			t.Fatalf("transaction %d message: %v", i, err)
		}
	}
	got := h.snapshot()
	if len(got.datas) != 2 {
		t.Errorf("datas = %d, want 2 transactions", len(got.datas))
	}
}

func TestClientReadsMultilineGreetingServer(t *testing.T) {
	// A raw server that sends a multi-line banner and replies.
	fabric := netsim.NewFabric()
	l, err := fabric.Host("192.0.2.30").Listen("tcp", ":25")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("220-mx.example.com welcomes you\r\n220-no really\r\n220 go ahead\r\n"))
		buf := make([]byte, 256)
		c.Read(buf)
		c.Write([]byte("250-mx.example.com\r\n250-SIZE 1000\r\n250 OK\r\n"))
		c.Read(buf)
	}()
	cli := &Client{Net: fabric.Host("198.51.100.9"), HELO: "probe"}
	conn, err := cli.Dial(context.Background(), "192.0.2.30:25")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if len(conn.Greet.Lines) != 3 {
		t.Errorf("greeting lines = %v", conn.Greet.Lines)
	}
	if err := conn.Hello(); err != nil {
		t.Fatalf("multiline EHLO reply: %v", err)
	}
}

func TestReplyErrorMessage(t *testing.T) {
	err := &ReplyError{Reply: *ReplyGreylisted}
	if !strings.Contains(err.Error(), "450") {
		t.Errorf("error text = %q", err.Error())
	}
	if ReplyCode(err) != 450 {
		t.Errorf("ReplyCode = %d", ReplyCode(err))
	}
	if ReplyCode(context.Canceled) != 0 {
		t.Error("ReplyCode of non-reply error should be 0")
	}
}
