package smtp

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"

	"spfail/internal/netsim"
)

// recordingHandler captures hook invocations.
type recordingHandler struct {
	NopHandler
	mu       sync.Mutex
	mails    []string
	rcpts    []string
	datas    []string
	aborts   []string
	helos    []string
	mailResp *Reply
	rcptResp *Reply
	dataResp *Reply
	connResp *Reply
}

func (h *recordingHandler) OnConnect(net.Addr) *Reply { return h.connResp }

func (h *recordingHandler) OnHelo(helo string, ehlo bool) *Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.helos = append(h.helos, helo)
	return nil
}

func (h *recordingHandler) OnMailFrom(from string, _ net.Addr, _ string) *Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mails = append(h.mails, from)
	return h.mailResp
}

func (h *recordingHandler) OnRcptTo(to string) *Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rcpts = append(h.rcpts, to)
	return h.rcptResp
}

func (h *recordingHandler) OnData(from string, rcpts []string, msg []byte, _ net.Addr, _ string) *Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.datas = append(h.datas, string(msg))
	return h.dataResp
}

func (h *recordingHandler) OnAbort(state string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.aborts = append(h.aborts, state)
}

func (h *recordingHandler) snapshot() recordingHandler {
	h.mu.Lock()
	defer h.mu.Unlock()
	return recordingHandler{
		mails:  append([]string(nil), h.mails...),
		rcpts:  append([]string(nil), h.rcpts...),
		datas:  append([]string(nil), h.datas...),
		aborts: append([]string(nil), h.aborts...),
		helos:  append([]string(nil), h.helos...),
	}
}

func startServer(t *testing.T, h Handler) (*netsim.Fabric, string) {
	t.Helper()
	fabric := netsim.NewFabric()
	srv := &Server{
		Hostname: "mx.example.com",
		Net:      fabric.Host("192.0.2.25"),
		Addr:     ":25",
		Handler:  h,
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return fabric, "192.0.2.25:25"
}

func dial(t *testing.T, fabric *netsim.Fabric, addr string) *Conn {
	t.Helper()
	cli := &Client{Net: fabric.Host("198.51.100.9"), HELO: "probe.dns-lab.org"}
	conn, err := cli.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestFullTransaction(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()

	if conn.Greet.Code != 220 || !strings.Contains(conn.Greet.Lines[0], "mx.example.com") {
		t.Errorf("banner = %+v", conn.Greet)
	}
	if err := conn.Hello(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Mail("alice@sender.example"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rcpt("postmaster@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Data(); err != nil {
		t.Fatal(err)
	}
	r, err := conn.SendMessage([]byte("Subject: hi\r\n\r\nbody line\r\n.leading dot\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Positive() {
		t.Fatalf("final reply = %+v", r)
	}
	if err := conn.Quit(); err != nil {
		t.Fatal(err)
	}

	got := h.snapshot()
	if len(got.mails) != 1 || got.mails[0] != "alice@sender.example" {
		t.Errorf("mails = %v", got.mails)
	}
	if len(got.rcpts) != 1 || got.rcpts[0] != "postmaster@example.com" {
		t.Errorf("rcpts = %v", got.rcpts)
	}
	if len(got.datas) != 1 {
		t.Fatalf("datas = %v", got.datas)
	}
	if !strings.Contains(got.datas[0], "body line") {
		t.Errorf("message = %q", got.datas[0])
	}
	if !strings.Contains(got.datas[0], "\r\n.leading dot") {
		t.Errorf("dot-stuffing broken: %q", got.datas[0])
	}
	if len(got.helos) != 1 || got.helos[0] != "probe.dns-lab.org" {
		t.Errorf("helos = %v", got.helos)
	}
	if len(got.aborts) != 0 {
		t.Errorf("aborts = %v", got.aborts)
	}
}

func TestNoMsgProbeAbortsAfterData(t *testing.T) {
	// The NoMsg probe: MAIL, RCPT, DATA, then terminate before any
	// message content. The server must see the abort in the data state.
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	if err := conn.Hello(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Mail("probe@x.s.spf-test.dns-lab.org"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rcpt("noreply@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Data(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Abort is observed asynchronously; wait for the handler.
	deadline := make(chan struct{})
	go func() {
		for {
			if len(h.snapshot().aborts) > 0 {
				close(deadline)
				return
			}
		}
	}()
	<-deadline
	got := h.snapshot()
	if len(got.datas) != 0 {
		t.Errorf("NoMsg probe delivered data: %v", got.datas)
	}
	if got.aborts[0] != StateData {
		t.Errorf("abort state = %q, want %q", got.aborts[0], StateData)
	}
}

func TestBlankMsgProbeDeliversEmptyMessage(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	if err := conn.Hello(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Mail("probe@x.s.spf-test.dns-lab.org"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rcpt("noreply@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Data(); err != nil {
		t.Fatal(err)
	}
	r, err := conn.SendMessage(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Positive() {
		t.Fatalf("blank message rejected: %+v", r)
	}
	got := h.snapshot()
	if len(got.datas) != 1 || got.datas[0] != "" {
		t.Errorf("blank message content = %q", got.datas)
	}
}

func TestConnectionRefusedByPolicy(t *testing.T) {
	h := &recordingHandler{connResp: ReplyShuttingDown}
	fabric, addr := startServer(t, h)
	cli := &Client{Net: fabric.Host("198.51.100.9"), HELO: "probe"}
	_, err := cli.Dial(context.Background(), addr)
	if ReplyCode(err) != 421 {
		t.Fatalf("dial err = %v, want 421", err)
	}
}

func TestMailFromRejected(t *testing.T) {
	h := &recordingHandler{mailResp: ReplyRejectedPolicy}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	err := conn.Mail("spammer@bad.example")
	if ReplyCode(err) != 554 {
		t.Fatalf("mail err = %v, want 554", err)
	}
}

func TestRcptGreylisted(t *testing.T) {
	h := &recordingHandler{rcptResp: ReplyGreylisted}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	conn.Mail("a@b.example")
	err := conn.Rcpt("user@example.com")
	if ReplyCode(err) != 450 {
		t.Fatalf("rcpt err = %v, want 450", err)
	}
}

func TestBadSequenceEnforced(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	// RCPT before MAIL.
	err := conn.Rcpt("user@example.com")
	if ReplyCode(err) != 503 {
		t.Fatalf("out-of-order rcpt = %v, want 503", err)
	}
	// DATA before RCPT.
	conn.Mail("a@b.example")
	if err := conn.Data(); ReplyCode(err) != 503 {
		t.Fatalf("premature DATA = %v, want 503", err)
	}
}

func TestRsetClearsTransaction(t *testing.T) {
	h := &recordingHandler{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	conn.Hello()
	conn.Mail("a@b.example")
	if _, err := conn.cmd("RSET"); err != nil {
		t.Fatal(err)
	}
	// After RSET, MAIL is accepted again.
	if err := conn.Mail("c@d.example"); err != nil {
		t.Fatal(err)
	}
	got := h.snapshot()
	if len(got.mails) != 2 {
		t.Errorf("mails = %v", got.mails)
	}
}

func TestEHLOFallbackToHELO(t *testing.T) {
	// Handler rejecting EHLO should make the client retry with HELO.
	h := &ehloRejector{}
	fabric, addr := startServer(t, h)
	conn := dial(t, fabric, addr)
	defer conn.Close()
	if err := conn.Hello(); err != nil {
		t.Fatalf("Hello with EHLO-rejecting server: %v", err)
	}
	if h.sawHELO != 1 {
		t.Errorf("HELO fallback count = %d", h.sawHELO)
	}
}

type ehloRejector struct {
	NopHandler
	sawHELO int
}

func (h *ehloRejector) OnHelo(helo string, ehlo bool) *Reply {
	if ehlo {
		return ReplyNotImplemented
	}
	h.sawHELO++
	return nil
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"<user@example.com>", "user@example.com", false},
		{"user@example.com", "user@example.com", false},
		{"<>", "", false},
		{"<user@example.com> SIZE=1000", "user@example.com", false},
		{"<@relay.example:user@example.com>", "user@example.com", false},
		{"<unbalanced@example.com", "", true},
		{"nodomain", "", true},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParsePath(%q) = %q, %v; want %q, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestAddressHelpers(t *testing.T) {
	if AddressDomain("User@Example.COM") != "example.com" {
		t.Error("AddressDomain case folding")
	}
	if AddressLocal("user@example.com") != "user" {
		t.Error("AddressLocal")
	}
	if AddressDomain("nodomain") != "" {
		t.Error("AddressDomain without @")
	}
}

func TestReplyStringMultiline(t *testing.T) {
	r := &Reply{Code: 250, Lines: []string{"mx.example.com", "8BITMIME", "OK"}}
	got := r.String()
	want := "250-mx.example.com\r\n250-8BITMIME\r\n250 OK"
	if got != want {
		t.Errorf("multiline = %q, want %q", got, want)
	}
}

func TestReplyPredicates(t *testing.T) {
	if !NewReply(250, "x").Positive() || !NewReply(354, "x").Positive() {
		t.Error("positive predicates")
	}
	if !ReplyGreylisted.Transient() || ReplyGreylisted.Permanent() {
		t.Error("450 classification")
	}
	if !ReplyNoSuchUser.Permanent() || ReplyNoSuchUser.Transient() {
		t.Error("550 classification")
	}
}
