package smtp

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/netsim"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Client dials SMTP servers and drives probe transactions.
type Client struct {
	Net netsim.Network
	// HELO is the identity announced in EHLO/HELO.
	HELO string
	// IOTimeout bounds each read/write; 0 means 30s.
	IOTimeout time.Duration
	// Metrics, when non-nil, receives session and per-command failure
	// counters (see docs/telemetry.md).
	Metrics *telemetry.Registry
	// Clk supplies time for I/O deadlines. Defaults to the real clock.
	Clk clock.Clock
}

func (c *Client) clock() clock.Clock {
	if c.Clk != nil {
		return c.Clk
	}
	return clock.Real{}
}

// fail counts one failed client command.
func (c *Client) fail(verb string) {
	c.Metrics.Counter("smtp.client.cmd_failures." + verb).Inc()
}

func (c *Client) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return 30 * time.Second
}

// Session buffer pools: probe campaigns open and tear down one short SMTP
// session per transaction, so the 4 KiB bufio buffers are recycled instead
// of reallocated per dial. Buffers return to the pool on Close/Quit (or a
// failed Dial); release resets them against nil first so a pooled buffer
// can never reach a connection it no longer owns.
var (
	brPool = sync.Pool{New: func() any { return bufio.NewReader(nil) }}
	bwPool = sync.Pool{New: func() any { return bufio.NewWriter(nil) }}
)

// Conn is an established SMTP session.
type Conn struct {
	c       *Client
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	Greet   Reply // the 220/421 banner
	didEHLO bool
	sp      *trace.Span // the dialing context's span; nil when untraced
}

// event records one command/reply exchange on the session's span.
func (co *Conn) event(verb string, r *Reply, err error) {
	if co.sp == nil {
		return
	}
	attrs := make([]trace.Attr, 0, 3)
	attrs = append(attrs, trace.String("verb", verb))
	if r != nil {
		attrs = append(attrs, trace.Int("code", r.Code))
	}
	if err != nil {
		attrs = append(attrs, trace.String("error", err.Error()))
	}
	co.sp.Event("smtp.cmd", attrs...)
}

// Dial connects and consumes the banner. A non-positive banner is returned
// as *ReplyError alongside the connection (which is closed).
func (c *Client) Dial(ctx context.Context, addr string) (*Conn, error) {
	c.Metrics.Counter("smtp.client.sessions").Inc()
	sp := trace.SpanFromContext(ctx)
	nc, err := c.Net.DialContext(ctx, "tcp", addr)
	if err != nil {
		c.Metrics.Counter("smtp.client.dial_failures").Inc()
		if sp != nil {
			sp.Event("smtp.dial", trace.String("addr", addr), trace.String("error", err.Error()))
		}
		return nil, err
	}
	if sp != nil {
		sp.Event("smtp.dial", trace.String("addr", addr))
	}
	br := brPool.Get().(*bufio.Reader)
	br.Reset(nc)
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(nc)
	conn := &Conn{c: c, conn: nc, br: br, bw: bw, sp: sp}
	r, err := conn.readReply()
	conn.event("banner", r, err)
	if err != nil {
		_ = nc.Close()
		conn.release()
		c.fail("banner")
		return nil, err
	}
	conn.Greet = *r
	if !r.Positive() {
		_ = nc.Close()
		conn.release()
		c.fail("banner")
		return nil, &ReplyError{Reply: *r}
	}
	return conn, nil
}

// release returns the session's buffers to their pools. Idempotent, so the
// prober's defer Close after an explicit Close/Quit stays harmless. The
// session is unusable afterwards.
func (co *Conn) release() {
	if co.br != nil {
		co.br.Reset(nil)
		brPool.Put(co.br)
		co.br = nil
	}
	if co.bw != nil {
		co.bw.Reset(nil)
		bwPool.Put(co.bw)
		co.bw = nil
	}
}

// Close terminates the underlying connection without QUIT — the NoMsg
// probe's deliberate mid-transaction termination.
func (co *Conn) Close() error {
	err := co.conn.Close()
	co.release()
	return err
}

// Quit sends QUIT and closes. A close failure is reported only when the
// QUIT exchange itself succeeded.
func (co *Conn) Quit() error {
	_, err := co.cmd("QUIT")
	if cerr := co.conn.Close(); err == nil {
		err = cerr
	}
	co.release()
	return err
}

// Hello negotiates EHLO, falling back to HELO on rejection.
func (co *Conn) Hello() error {
	r, err := co.cmd("EHLO %s", co.c.HELO)
	if err == nil && r.Positive() {
		co.didEHLO = true
		return nil
	}
	if err != nil {
		if _, ok := err.(*ReplyError); !ok {
			co.c.fail("helo")
			return err
		}
	}
	r, err = co.cmd("HELO %s", co.c.HELO)
	if err != nil {
		co.c.fail("helo")
		return err
	}
	if !r.Positive() {
		co.c.fail("helo")
		return &ReplyError{Reply: *r}
	}
	return nil
}

// Mail sends MAIL FROM.
func (co *Conn) Mail(from string) error {
	return co.countFail("mail", co.expectPositive("MAIL FROM:<%s>", from))
}

// Rcpt sends RCPT TO.
func (co *Conn) Rcpt(to string) error {
	return co.countFail("rcpt", co.expectPositive("RCPT TO:<%s>", to))
}

// Data sends the DATA command, expecting 354.
func (co *Conn) Data() error {
	r, err := co.cmd("DATA")
	if err != nil {
		co.c.fail("data")
		return err
	}
	if r.Code != 354 {
		co.c.fail("data")
		return &ReplyError{Reply: *r}
	}
	return nil
}

// countFail records a command failure and passes the error through.
func (co *Conn) countFail(verb string, err error) error {
	if err != nil {
		co.c.fail(verb)
	}
	return err
}

// SendMessage transmits message content (dot-stuffed) and the terminator,
// returning the server's final reply. An empty msg produces the BlankMsg
// probe's entirely empty email.
func (co *Conn) SendMessage(msg []byte) (*Reply, error) {
	if err := co.conn.SetWriteDeadline(co.c.clock().Now().Add(co.c.ioTimeout())); err != nil {
		return nil, err
	}
	lines := strings.Split(string(msg), "\n")
	for _, line := range lines {
		line = strings.TrimSuffix(line, "\r")
		if line == "" && len(msg) == 0 {
			break // no body at all
		}
		if strings.HasPrefix(line, ".") {
			line = "." + line
		}
		if _, err := co.bw.WriteString(line + "\r\n"); err != nil {
			return nil, err
		}
	}
	if _, err := co.bw.WriteString(".\r\n"); err != nil {
		co.c.fail("message")
		return nil, err
	}
	if err := co.bw.Flush(); err != nil {
		co.c.fail("message")
		return nil, err
	}
	r, err := co.readReply()
	co.event("message", r, err)
	if err != nil || !r.Positive() {
		co.c.fail("message")
	}
	return r, err
}

// expectPositive sends a command and converts negative replies to errors.
func (co *Conn) expectPositive(format string, args ...interface{}) error {
	r, err := co.cmd(format, args...)
	if err != nil {
		return err
	}
	if !r.Positive() {
		return &ReplyError{Reply: *r}
	}
	return nil
}

// cmd writes one command line and reads the reply.
func (co *Conn) cmd(format string, args ...interface{}) (*Reply, error) {
	if err := co.conn.SetWriteDeadline(co.c.clock().Now().Add(co.c.ioTimeout())); err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(co.bw, format+"\r\n", args...); err != nil {
		return nil, err
	}
	if err := co.bw.Flush(); err != nil {
		return nil, err
	}
	r, err := co.readReply()
	if co.sp != nil {
		verb := format
		if i := strings.IndexAny(verb, " %"); i >= 0 {
			verb = strings.TrimRight(verb[:i], " ")
		}
		co.event(verb, r, err)
	}
	return r, err
}

// readReply parses a (possibly multi-line) SMTP reply.
func (co *Conn) readReply() (*Reply, error) {
	var reply Reply
	for {
		if err := co.conn.SetReadDeadline(co.c.clock().Now().Add(co.c.ioTimeout())); err != nil {
			return nil, err
		}
		line, err := co.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if len(line) < 3 {
			return nil, fmt.Errorf("smtp: short reply line %q", line)
		}
		code, err := strconv.Atoi(line[:3])
		if err != nil {
			return nil, fmt.Errorf("smtp: bad reply code in %q", line)
		}
		if reply.Code == 0 {
			reply.Code = code
		} else if reply.Code != code {
			return nil, fmt.Errorf("smtp: inconsistent codes %d vs %d", reply.Code, code)
		}
		cont := len(line) > 3 && line[3] == '-'
		text := ""
		if len(line) > 4 {
			text = line[4:]
		}
		reply.Lines = append(reply.Lines, text)
		if !cont {
			return &reply, nil
		}
	}
}

// ReplyCode extracts the SMTP code from a *ReplyError, or 0.
func ReplyCode(err error) int {
	if re, ok := err.(*ReplyError); ok {
		return re.Reply.Code
	}
	return 0
}
