package smtp

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/netsim"
	"spfail/internal/telemetry"
)

// Handler receives the policy decision points of an SMTP session. Any hook
// may return a nil reply to accept with the default response. Returning a
// reply with code 421 or 554 on OnConnect refuses the session after the
// banner.
//
// This is where simulated MTAs wire in SPF validation: hosts that validate
// at MAIL FROM issue their DNS lookups inside OnMailFrom (visible to the
// NoMsg probe); hosts that defer validation until a message has been
// received issue them inside OnData (reachable only by the BlankMsg probe).
type Handler interface {
	// OnConnect is called before the banner. Returning a non-positive
	// reply sends it and closes the session.
	OnConnect(remote net.Addr) *Reply
	// OnHelo is called for HELO/EHLO.
	OnHelo(helo string, ehlo bool) *Reply
	// OnMailFrom is called with the parsed reverse-path.
	OnMailFrom(from string, remote net.Addr, helo string) *Reply
	// OnRcptTo is called with each parsed forward-path.
	OnRcptTo(to string) *Reply
	// OnData is called with the complete message (possibly empty).
	OnData(from string, rcpts []string, msg []byte, remote net.Addr, helo string) *Reply
	// OnAbort is called when the client drops the connection mid-
	// transaction (the NoMsg probe does this deliberately).
	OnAbort(state string)
}

// NopHandler accepts everything and may be embedded to override selected
// hooks.
type NopHandler struct{}

// OnConnect implements Handler.
func (NopHandler) OnConnect(net.Addr) *Reply { return nil }

// OnHelo implements Handler.
func (NopHandler) OnHelo(string, bool) *Reply { return nil }

// OnMailFrom implements Handler.
func (NopHandler) OnMailFrom(string, net.Addr, string) *Reply { return nil }

// OnRcptTo implements Handler.
func (NopHandler) OnRcptTo(string) *Reply { return nil }

// OnData implements Handler.
func (NopHandler) OnData(string, []string, []byte, net.Addr, string) *Reply { return nil }

// OnAbort implements Handler.
func (NopHandler) OnAbort(string) {}

// Server is an SMTP server bound to a Network.
type Server struct {
	// Hostname appears in the banner and EHLO response.
	Hostname string
	Net      netsim.Network
	Addr     string // listen address, typically ":25"
	Handler  Handler
	// MaxMessageBytes caps DATA size; 0 means 10 MiB.
	MaxMessageBytes int
	// IOTimeout bounds each read/write; 0 means 30s.
	IOTimeout time.Duration
	// Metrics, when non-nil, receives session/abort/per-command failure
	// counters (see docs/telemetry.md). Set before Start.
	Metrics *telemetry.Registry
	// Clk supplies time for I/O deadlines. Defaults to the real clock.
	Clk clock.Clock

	mu  sync.Mutex
	l   net.Listener
	wg  sync.WaitGroup
	run bool
}

func (s *Server) maxMsg() int {
	if s.MaxMessageBytes > 0 {
		return s.MaxMessageBytes
	}
	return 10 << 20
}

func (s *Server) ioTimeout() time.Duration {
	if s.IOTimeout > 0 {
		return s.IOTimeout
	}
	return 30 * time.Second
}

func (s *Server) clock() clock.Clock {
	if s.Clk != nil {
		return s.Clk
	}
	return clock.Real{}
}

// Start binds the listener and serves until Stop or ctx cancellation.
func (s *Server) Start(ctx context.Context) error {
	l, err := s.Net.Listen("tcp", s.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.l = l
	s.run = true
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	if ctx != nil {
		go func() {
			<-ctx.Done()
			s.Stop()
		}()
	}
	return nil
}

// Stop closes the listener and waits for sessions to finish.
func (s *Server) Stop() {
	s.mu.Lock()
	if !s.run {
		s.mu.Unlock()
		return
	}
	s.run = false
	l := s.l
	s.mu.Unlock()
	_ = l.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
		}()
	}
}

// session state names passed to OnAbort.
const (
	StateGreeting = "greeting"
	StateHelo     = "helo"
	StateMail     = "mail"
	StateRcpt     = "rcpt"
	StateData     = "data"
)

func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	s.Metrics.Counter("smtp.server.sessions").Inc()
	sess := &serverSession{
		srv:    s,
		conn:   c,
		br:     bufio.NewReader(c),
		bw:     bufio.NewWriter(c),
		remote: c.RemoteAddr(),
		state:  StateGreeting,
	}
	sess.run()
}

type serverSession struct {
	srv    *Server
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	remote net.Addr

	state string
	verb  string // command being served, for failure attribution
	helo  string
	from  string
	haveF bool // MAIL FROM accepted (distinguishes empty reverse-path)
	rcpts []string
}

func (ss *serverSession) send(r *Reply) error {
	if !r.Positive() && ss.verb != "" {
		ss.srv.Metrics.Counter("smtp.server.cmd_failures." + strings.ToLower(ss.verb)).Inc()
	}
	if err := ss.conn.SetWriteDeadline(ss.srv.clock().Now().Add(ss.srv.ioTimeout())); err != nil {
		return err
	}
	if _, err := ss.bw.WriteString(r.String() + "\r\n"); err != nil {
		return err
	}
	return ss.bw.Flush()
}

func (ss *serverSession) readLine() (string, error) {
	if err := ss.conn.SetReadDeadline(ss.srv.clock().Now().Add(ss.srv.ioTimeout())); err != nil {
		return "", err
	}
	line, err := ss.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (ss *serverSession) abortIfMidTransaction(err error) {
	if err == nil {
		return
	}
	// EOF or reset mid-session: report the state we were in so MTA
	// simulations can distinguish NoMsg-style terminations.
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || isClosedPipe(err) {
		ss.srv.Metrics.Counter("smtp.server.aborts." + ss.state).Inc()
		ss.srv.Handler.OnAbort(ss.state)
	}
}

// isClosedPipe detects net.Pipe's "io: read/write on closed pipe".
func isClosedPipe(err error) bool {
	return err != nil && strings.Contains(err.Error(), "closed pipe")
}

func (ss *serverSession) run() {
	h := ss.srv.Handler
	if r := h.OnConnect(ss.remote); r != nil && !r.Positive() {
		ss.send(r)
		return
	}
	if err := ss.send(Replyf(220, "%s ESMTP ready", ss.srv.Hostname)); err != nil {
		return
	}
	for {
		line, err := ss.readLine()
		if err != nil {
			ss.abortIfMidTransaction(err)
			return
		}
		verb, arg := splitCommand(line)
		ss.verb = verb
		switch verb {
		case "HELO", "EHLO":
			ss.cmdHelo(verb == "EHLO", arg)
		case "MAIL":
			ss.cmdMail(arg)
		case "RCPT":
			ss.cmdRcpt(arg)
		case "DATA":
			if done := ss.cmdData(); done {
				return
			}
		case "RSET":
			ss.reset()
			ss.send(ReplyOK)
		case "NOOP":
			ss.send(ReplyOK)
		case "VRFY":
			ss.send(NewReply(252, "Cannot VRFY user, but will accept message"))
		case "QUIT":
			ss.send(ReplyBye)
			return
		case "":
			ss.send(ReplySyntaxError)
		default:
			ss.send(ReplySyntaxError)
		}
	}
}

func splitCommand(line string) (verb, arg string) {
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(line), ""
}

func (ss *serverSession) reset() {
	ss.from = ""
	ss.haveF = false
	ss.rcpts = nil
	if ss.helo != "" {
		ss.state = StateHelo
	} else {
		ss.state = StateGreeting
	}
}

func (ss *serverSession) cmdHelo(ehlo bool, arg string) {
	if arg == "" {
		ss.send(ReplyParamError)
		return
	}
	if r := ss.srv.Handler.OnHelo(arg, ehlo); r != nil && !r.Positive() {
		ss.send(r)
		return
	}
	ss.helo = arg
	ss.reset()
	ss.state = StateHelo
	if ehlo {
		ss.send(&Reply{Code: 250, Lines: []string{ss.srv.Hostname, "8BITMIME", "SIZE 10485760", "PIPELINING"}})
	} else {
		ss.send(Replyf(250, "%s", ss.srv.Hostname))
	}
}

func (ss *serverSession) cmdMail(arg string) {
	upper := strings.ToUpper(arg)
	if !strings.HasPrefix(upper, "FROM:") {
		ss.send(ReplyParamError)
		return
	}
	if ss.haveF {
		ss.send(ReplyBadSequence)
		return
	}
	path, err := ParsePath(arg[len("FROM:"):])
	if err != nil {
		ss.send(ReplyParamError)
		return
	}
	if r := ss.srv.Handler.OnMailFrom(path, ss.remote, ss.helo); r != nil && !r.Positive() {
		ss.send(r)
		return
	}
	ss.from = path
	ss.haveF = true
	ss.state = StateMail
	ss.send(ReplyOK)
}

func (ss *serverSession) cmdRcpt(arg string) {
	upper := strings.ToUpper(arg)
	if !strings.HasPrefix(upper, "TO:") {
		ss.send(ReplyParamError)
		return
	}
	if !ss.haveF {
		ss.send(ReplyBadSequence)
		return
	}
	path, err := ParsePath(arg[len("TO:"):])
	if err != nil || path == "" {
		ss.send(ReplyParamError)
		return
	}
	if r := ss.srv.Handler.OnRcptTo(path); r != nil && !r.Positive() {
		ss.send(r)
		return
	}
	ss.rcpts = append(ss.rcpts, path)
	ss.state = StateRcpt
	ss.send(ReplyOK)
}

// cmdData runs the DATA phase. It returns true when the session must end
// (client vanished mid-data).
func (ss *serverSession) cmdData() bool {
	if !ss.haveF || len(ss.rcpts) == 0 {
		ss.send(ReplyBadSequence)
		return false
	}
	if err := ss.send(ReplyStartMail); err != nil {
		return true
	}
	ss.state = StateData
	msg, err := ss.readData()
	if err != nil {
		ss.abortIfMidTransaction(err)
		return true
	}
	r := ss.srv.Handler.OnData(ss.from, ss.rcpts, msg, ss.remote, ss.helo)
	if r == nil {
		r = NewReply(250, "OK: queued")
	}
	ss.send(r)
	ss.reset()
	return false
}

// readData consumes dot-stuffed message content up to the lone-dot
// terminator.
func (ss *serverSession) readData() ([]byte, error) {
	var buf []byte
	for {
		line, err := ss.readLine()
		if err != nil {
			return nil, err
		}
		if line == "." {
			return buf, nil
		}
		if strings.HasPrefix(line, "..") {
			line = line[1:] // un-stuff
		}
		buf = append(buf, line...)
		buf = append(buf, '\r', '\n')
		if len(buf) > ss.srv.maxMsg() {
			return nil, errors.New("smtp: message too large")
		}
	}
}
