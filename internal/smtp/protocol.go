// Package smtp implements the subset of RFC 5321 needed on both sides of
// the SPFail measurement: a server framework with policy hooks at the
// points where real MTAs trigger SPF validation (MAIL FROM and
// end-of-data), and a client capable of the paper's two probe transactions
// — NoMsg (terminate before sending any message) and BlankMsg (transmit an
// entirely empty message).
package smtp

import (
	"fmt"
	"strings"
)

// Reply is an SMTP response: a three-digit code and one or more text lines.
type Reply struct {
	Code  int
	Lines []string
}

// NewReply builds a single-line reply.
func NewReply(code int, text string) *Reply {
	return &Reply{Code: code, Lines: []string{text}}
}

// Replyf builds a single-line reply with formatting.
func Replyf(code int, format string, args ...interface{}) *Reply {
	return NewReply(code, fmt.Sprintf(format, args...))
}

// Common replies.
var (
	ReplyOK             = NewReply(250, "OK")
	ReplyStartMail      = NewReply(354, "Start mail input; end with <CRLF>.<CRLF>")
	ReplyBye            = NewReply(221, "Bye")
	ReplyGreylisted     = NewReply(450, "Greylisted, try again later")
	ReplyNoSuchUser     = NewReply(550, "No such user here")
	ReplyBadSequence    = NewReply(503, "Bad sequence of commands")
	ReplySyntaxError    = NewReply(500, "Syntax error, command unrecognized")
	ReplyParamError     = NewReply(501, "Syntax error in parameters or arguments")
	ReplyNotImplemented = NewReply(502, "Command not implemented")
	ReplyShuttingDown   = NewReply(421, "Service not available, closing transmission channel")
	ReplyRejectedPolicy = NewReply(554, "Transaction failed: policy rejection")
)

// Positive reports whether the code is a 2xx/3xx success.
func (r *Reply) Positive() bool { return r.Code >= 200 && r.Code < 400 }

// Transient reports a 4xx temporary failure (greylisting, load shedding).
func (r *Reply) Transient() bool { return r.Code >= 400 && r.Code < 500 }

// Permanent reports a 5xx rejection.
func (r *Reply) Permanent() bool { return r.Code >= 500 }

// String renders the reply's wire form without trailing CRLF on the last
// line.
func (r *Reply) String() string {
	if len(r.Lines) == 0 {
		return fmt.Sprintf("%d", r.Code)
	}
	var b strings.Builder
	for i, line := range r.Lines {
		sep := " "
		if i < len(r.Lines)-1 {
			sep = "-"
		}
		if i > 0 {
			b.WriteString("\r\n")
		}
		fmt.Fprintf(&b, "%d%s%s", r.Code, sep, line)
	}
	return b.String()
}

// ReplyError wraps a negative reply as an error, preserving the code so
// the prober can categorize where a transaction failed.
type ReplyError struct {
	Reply Reply
}

// Error implements error.
func (e *ReplyError) Error() string {
	return fmt.Sprintf("smtp: server replied %s", e.Reply.String())
}

// ParsePath extracts the mailbox from a MAIL FROM / RCPT TO argument:
// "<user@example.com>" (angle brackets optional, ESMTP parameters after the
// path are ignored). An empty path "<>" is allowed for MAIL FROM.
func ParsePath(arg string) (string, error) {
	arg = strings.TrimSpace(arg)
	if i := strings.IndexByte(arg, ' '); i >= 0 {
		arg = arg[:i] // strip ESMTP parameters (SIZE=..., BODY=...)
	}
	if strings.HasPrefix(arg, "<") {
		if !strings.HasSuffix(arg, ">") {
			return "", fmt.Errorf("smtp: unbalanced angle brackets in %q", arg)
		}
		arg = arg[1 : len(arg)-1]
	}
	// Strip source route ("@a,@b:user@dom") if present.
	if strings.HasPrefix(arg, "@") {
		if i := strings.IndexByte(arg, ':'); i >= 0 {
			arg = arg[i+1:]
		}
	}
	if arg == "" {
		return "", nil // null reverse-path
	}
	if !strings.Contains(arg, "@") {
		return "", fmt.Errorf("smtp: path %q has no domain", arg)
	}
	return arg, nil
}

// AddressDomain returns the domain part of a mailbox, lower-cased.
func AddressDomain(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 {
		return strings.ToLower(addr[i+1:])
	}
	return ""
}

// AddressLocal returns the local part of a mailbox.
func AddressLocal(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 {
		return addr[:i]
	}
	return addr
}
