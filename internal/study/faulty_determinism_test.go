package study_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"spfail/internal/faults"
	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/retry"
	"spfail/internal/study"
	"spfail/internal/trace"
)

// TestFaultySameSeedProducesIdenticalReports extends the determinism
// regression to the fault-injection path: two same-seed runs under a
// non-trivial fault plan — SERVFAIL bursts, DNS truncation, refused and
// reset connections, SMTP tarpits — with retries and a circuit breaker
// enabled must still render byte-identical reports. Any diff means a fault
// decision, backoff schedule, or breaker transition depends on scheduler
// interleaving or the wall clock.
//
// The plan deliberately omits drop-udp and smtp-blackhole: those wait out
// I/O timeouts in real time (see netsim deadline translation), which at
// study scale would cost minutes of wall clock for no extra coverage —
// TestFaultyCampaignNoLostProbes exercises them at campaign scale.
func TestFaultySameSeedProducesIdenticalReports(t *testing.T) {
	plan := faults.Plan{
		Seed: 13,
		Rules: []faults.Rule{
			{Kind: faults.KindDNSServfail, Burst: 2},
			{Kind: faults.KindDNSTruncate, Rate: 0.2},
			{Kind: faults.KindConnRefuse, Rate: 0.15},
			{Kind: faults.KindConnReset, Rate: 0.1, ResetAfter: 64},
			{Kind: faults.KindSMTPTarpit, Rate: 0.25, Delay: 20 * time.Second},
		},
	}
	render := func() ([]byte, []byte) {
		t.Helper()
		spec := population.DefaultSpec()
		spec.Scale = 0.002
		spec.Seed = 9
		// The scenario mix rides along: the spoof survey's serial DNS walk
		// must replay exactly even when the fabric injects faults.
		spec.Scenarios = scenarioMix()
		var traceBuf bytes.Buffer
		res, err := study.Run(context.Background(), study.Config{
			Config: measure.Config{
				Concurrency: 64,
				BatchSize:   400,
				IOTimeout:   2 * time.Second,
				Retry:       retry.Policy{MaxAttempts: 3, BaseDelay: 30 * time.Second, Jitter: 0.2},
				Breaker:     retry.BreakerConfig{Threshold: 4},
				Trace:       trace.New(&traceBuf, trace.Options{Seed: spec.Seed}),
			},
			Spec:     spec,
			Interval: 4 * 24 * time.Hour,
			DNSRetry: retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Second, Jitter: 0.2},
			Faults:   &plan,
		})
		if err != nil {
			t.Fatalf("faulty study run: %v", err)
		}
		var buf bytes.Buffer
		report.All(&buf, res)
		return buf.Bytes(), traceBuf.Bytes()
	}

	first, firstTrace := render()
	second, secondTrace := render()
	if !bytes.Contains(firstTrace, []byte(`"fault.injected"`)) {
		t.Error("faulty traced study recorded no fault.injected events")
	}
	if !bytes.Contains(firstTrace, []byte(`"retry.wait"`)) {
		t.Error("faulty traced study recorded no retry.wait events")
	}
	if !bytes.Equal(firstTrace, secondTrace) {
		t.Errorf("same-seed faulty runs emitted different trace JSONL:\n--- first ---\n%s\n--- second ---\n%s",
			firstDiffContext(firstTrace, secondTrace), firstDiffContext(secondTrace, firstTrace))
	}
	if !bytes.Equal(first, second) {
		t.Errorf("same-seed faulty runs rendered different reports:\n--- first ---\n%s\n--- second ---\n%s",
			firstDiffContext(first, second), firstDiffContext(second, first))
	}
}
