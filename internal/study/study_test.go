package study

import (
	"context"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/measure"
	"spfail/internal/netsim"
	"spfail/internal/population"
)

// runTinyStudy executes a full study at a very small scale, shared across
// the tests in this file.
var tinyResults *Results

func tinyStudy(t *testing.T) *Results {
	t.Helper()
	if tinyResults != nil {
		return tinyResults
	}
	spec := population.DefaultSpec()
	spec.Scale = 0.004
	spec.Seed = 3
	res, err := Run(context.Background(), Config{
		Config:   measure.Config{Concurrency: 64, BatchSize: 400},
		Spec:     spec,
		Interval: 4 * 24 * time.Hour, // coarser cadence keeps the test quick
	})
	if err != nil {
		t.Fatalf("study run: %v", err)
	}
	tinyResults = res
	return res
}

func TestStudyEndToEnd(t *testing.T) {
	r := tinyStudy(t)

	if len(r.Targets) == 0 || len(r.Initial) == 0 {
		t.Fatal("no initial measurement")
	}
	if len(r.VulnAddrs) == 0 {
		t.Fatal("no vulnerable addresses found")
	}
	if len(r.VulnDomains) == 0 {
		t.Fatal("no vulnerable domains found")
	}
	if len(r.Rounds) < 10 {
		t.Fatalf("rounds = %d, want a two-window longitudinal series", len(r.Rounds))
	}
	// Rounds must span both windows with the pause gap.
	var inWindow1, inWindow2 bool
	for _, round := range r.Rounds {
		if round.Time.Before(population.TPause) {
			inWindow1 = true
		}
		if round.Time.After(population.TResume) {
			inWindow2 = true
		}
		if round.Time.After(population.TPause.Add(24*time.Hour)) && round.Time.Before(population.TResume) {
			t.Errorf("round at %v falls inside the measurement pause", round.Time)
		}
	}
	if !inWindow1 || !inWindow2 {
		t.Error("rounds missing from a measurement window")
	}
	if len(r.Snapshot) == 0 {
		t.Error("no final snapshot")
	}
	if !r.SnapshotTime.Equal(population.TEnd) {
		t.Errorf("snapshot at %v, want %v", r.SnapshotTime, population.TEnd)
	}
}

func TestStudyDetectionAgreesWithGroundTruth(t *testing.T) {
	r := tinyStudy(t)
	// Every address the detector flagged as vulnerable must actually run
	// unpatched libSPF2 at the initial time — zero false positives.
	for _, a := range r.VulnAddrs {
		h := r.World.Hosts[a]
		if h == nil || !h.Vulnerable(population.TInitial) {
			t.Errorf("false positive: %s flagged vulnerable, ground truth %+v", a, h)
		}
	}
	// Detection coverage: every reachable, measurable vulnerable host
	// with MAIL FROM or DATA validation should be found.
	flagged := map[string]bool{}
	for _, a := range r.VulnAddrs {
		flagged[a.String()] = true
	}
	var missed int
	for a, h := range r.World.Hosts {
		if h.EverVulnerable() && h.Listens && !h.RefuseSMTP && !h.BlankMsgFails && !flagged[a.String()] {
			// Only count hosts actually in the measured targets.
			if _, ok := r.Initial[a]; ok {
				missed++
			}
		}
	}
	if missed > len(r.VulnAddrs)/10 {
		t.Errorf("missed %d measurable vulnerable hosts (found %d)", missed, len(r.VulnAddrs))
	}
}

func TestStudyPatchingVisibleInSeries(t *testing.T) {
	r := tinyStudy(t)
	series := SetSeries(r, 0)
	if len(series) != len(r.Rounds) {
		t.Fatalf("series = %d points for %d rounds", len(series), len(r.Rounds))
	}
	first, last := series[0], series[len(series)-1]
	if first.Vulnerable == 0 {
		t.Fatal("no vulnerable domains at series start")
	}
	if last.Patched < first.Patched {
		t.Error("patched count should not decrease")
	}
	// The final vulnerable share should stay high (paper: ~80%).
	rate := last.VulnerableRate()
	if rate < 0.5 || rate > 0.98 {
		t.Errorf("final vulnerable rate = %.2f, want high (~0.8)", rate)
	}
}

func TestStudyNotificationFunnel(t *testing.T) {
	r := tinyStudy(t)
	n := r.Notification
	if n.Sent == 0 {
		t.Fatal("no notifications sent")
	}
	if n.Bounced == 0 {
		t.Error("expected some bounces (31.6% rate)")
	}
	if n.Delivered != n.Sent-n.Bounced {
		t.Error("delivered arithmetic broken")
	}
	bounceRate := float64(n.Bounced) / float64(n.Sent)
	if bounceRate < 0.15 || bounceRate > 0.55 {
		t.Errorf("bounce rate = %.2f, want ≈0.32", bounceRate)
	}
	if n.Opened > n.Delivered {
		t.Error("more opens than deliveries")
	}
	if n.OpenedAndPatched > n.Opened || n.OpenedPatchedBetweenDisclosures > n.OpenedAndPatched {
		t.Errorf("funnel ordering broken: %+v", n)
	}
}

func TestStudyExperimentsProduceData(t *testing.T) {
	r := tinyStudy(t)

	t1 := Table1(r.World)
	if len(t1) != 9 {
		t.Errorf("Table1 cells = %d", len(t1))
	}
	for _, c := range t1 {
		if c.Row == c.Col && c.Count == 0 {
			t.Errorf("Table1 diagonal %s is zero", c.Row)
		}
	}

	t2 := Table2(r.World, population.SetAlexaTopList, 15)
	if len(t2) == 0 || t2[0].TLD != "com" {
		t.Errorf("Table2 top TLD = %+v", t2)
	}

	f := Table3(r, population.SetAlexaTopList)
	if f.Addresses == 0 || f.AddrRefused == 0 || f.AddrTotalMeasured == 0 {
		t.Errorf("Table3 funnel = %+v", f)
	}
	if f.AddrNoMsgRun != f.Addresses-f.AddrRefused {
		t.Errorf("NoMsg rung arithmetic: %d run, %d addrs, %d refused",
			f.AddrNoMsgRun, f.Addresses, f.AddrRefused)
	}

	b := Table4(r, 0)
	if b.Measured == 0 || b.Vulnerable == 0 || b.Compliant == 0 {
		t.Errorf("Table4 = %+v", b)
	}
	if b.Vulnerable+b.ErroneousOther+b.Compliant != b.Measured {
		t.Errorf("Table4 does not sum: %+v", b)
	}
	vulnShare := float64(b.Vulnerable) / float64(b.Measured)
	if vulnShare < 0.08 || vulnShare > 0.30 {
		t.Errorf("vulnerable share = %.2f, want ≈1/6", vulnShare)
	}

	t5 := Table5(r, 1)
	if len(t5) == 0 {
		t.Error("Table5 empty")
	}

	t6 := Table6()
	if len(t6) != 9 || t6[0].Manager != "Debian" {
		t.Errorf("Table6 = %+v", t6)
	}

	t7 := Table7(r)
	if t7.TotalMeasured == 0 || len(t7.Rows) < 2 {
		t.Errorf("Table7 = %+v", t7)
	}

	f2 := Figure2(r)
	if len(f2) != 4 {
		t.Errorf("Figure2 rows = %d", len(f2))
	}
	combined := f2[len(f2)-1]
	if combined.Vulnerable+combined.Patched+combined.Unknown != len(r.VulnDomains) {
		t.Errorf("Figure2 combined does not sum to vulnerable domains")
	}

	buckets, countries := Figure3(r, 5)
	if len(buckets) == 0 || len(countries) == 0 {
		t.Error("Figure3 empty")
	}

	f4 := Figure4(r, population.SetAlexaTopList, 20)
	if len(f4) != 20 {
		t.Errorf("Figure4 buckets = %d", len(f4))
	}
	var f4Total int
	for _, rb := range f4 {
		f4Total += rb.Vulnerable
	}
	if f4Total == 0 {
		t.Error("Figure4 has no vulnerable domains")
	}

	s := SetSeries(r, population.SetAlexaTopList)
	if len(s) == 0 {
		t.Error("Figure6/7 series empty")
	}
	w1 := WindowSeries(s, population.TLongitudinal, population.TPause)
	if len(w1) == 0 || len(w1) >= len(s) {
		t.Errorf("window filter: %d of %d", len(w1), len(s))
	}
}

func TestPatchTimingBreakdown(t *testing.T) {
	r := tinyStudy(t)
	pt := PatchTimingBreakdown(r)
	if pt.Total != len(r.VulnDomains) {
		t.Fatalf("total = %d, want %d", pt.Total, len(r.VulnDomains))
	}
	sum := pt.PreNotification + pt.BetweenDisclosures + pt.PostDisclosure + pt.SnapshotOnly + pt.Never
	if sum != pt.Total {
		t.Fatalf("breakdown does not sum: %+v", pt)
	}
	if pt.Never == 0 {
		t.Error("most domains should never patch (paper: ~80%)")
	}
	// The paper's core finding: disclosure-driven patching dominates the
	// notification window.
	if pt.PostDisclosure < pt.BetweenDisclosures {
		t.Errorf("post-disclosure (%d) should exceed notification-window (%d) patching",
			pt.PostDisclosure, pt.BetweenDisclosures)
	}
}

func TestTrackerRecordsOpens(t *testing.T) {
	fabric := netsim.NewFabric()
	tr := &Tracker{Net: fabric.Host("192.0.2.90"), Addr: ":80", Clk: clock.Real{}}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	if err := FetchPixel(context.Background(), nil, fabric.Host("10.0.0.5"), "192.0.2.90:80", "abc123"); err != nil {
		t.Fatal(err)
	}
	// Duplicate opens keep the first timestamp.
	if err := FetchPixel(context.Background(), nil, fabric.Host("10.0.0.5"), "192.0.2.90:80", "abc123"); err != nil {
		t.Fatal(err)
	}
	opens := tr.Opens()
	if len(opens) != 1 {
		t.Fatalf("opens = %v", opens)
	}
	if _, ok := opens["abc123"]; !ok {
		t.Fatal("open id not recorded")
	}
}

func TestTrackerRejectsBadPaths(t *testing.T) {
	fabric := netsim.NewFabric()
	tr := &Tracker{Net: fabric.Host("192.0.2.91"), Addr: ":80"}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	err := FetchPixel(context.Background(), nil, fabric.Host("10.0.0.6"), "192.0.2.91:80", "../etc/passwd")
	if err != nil {
		t.Skip("path traversal blocked at fetch level")
	}
	// Direct bad request.
	c, err := fabric.Host("10.0.0.6").DialContext(context.Background(), "tcp", "192.0.2.91:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("POST /px/x.gif HTTP/1.0\r\n\r\n"))
	buf := make([]byte, 64)
	n, _ := c.Read(buf)
	if n == 0 || string(buf[:12]) != "HTTP/1.0 405" {
		t.Errorf("POST response = %q", buf[:n])
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	rows := Table6()
	byName := map[string]Table6Row{}
	for _, r := range rows {
		byName[r.Manager] = r
	}
	if r := byName["Debian"]; r.CVE20314Days != 0 || r.CVE33912Days != 0 || r.CVE33912Open {
		t.Errorf("Debian = %+v", r)
	}
	if r := byName["Alpine"]; r.CVE33912Days != 51 && r.CVE33912Days != 50 {
		t.Errorf("Alpine days = %d, want ≈50", r.CVE33912Days)
	}
	if r := byName["RedHat"]; !r.IncludedStar || r.CVE20314Days != 42 {
		t.Errorf("RedHat = %+v", r)
	}
	if r := byName["Arch Linux"]; r.CVE20314Days != 103 {
		t.Errorf("Arch = %+v", r)
	}
	for _, name := range []string{"Ubuntu", "FreeBSD Ports", "NetBSD", "SUSE Hub"} {
		if r := byName[name]; !r.CVE20314Open || !r.CVE33912Open {
			t.Errorf("%s should be unpatched: %+v", name, r)
		}
	}
	// Unpatched rows sort last.
	if rows[len(rows)-1].CVE20314Open != true {
		t.Error("unpatched rows should sort last")
	}
}

func TestDistroPatchDate(t *testing.T) {
	if DistroPatchDate("debian").IsZero() || !DistroPatchDate("ubuntu").IsZero() {
		t.Error("distro patch dates wrong")
	}
	if DistroPatchDate("alpine").Before(population.TEnd) {
		t.Error("alpine patched only after the study window")
	}
}

func TestFinalDomainStatusPrefersSnapshot(t *testing.T) {
	r := tinyStudy(t)
	// Sanity: every vulnerable domain has some final status.
	var vuln, patched, unknown int
	for d := range r.VulnDomains {
		switch r.FinalDomainStatus(d) {
		case measure.DomVulnerable:
			vuln++
		case measure.DomPatched:
			patched++
		default:
			unknown++
		}
	}
	if vuln == 0 {
		t.Error("no domains remain vulnerable — paper has ~80%")
	}
	t.Logf("final: %d vulnerable, %d patched, %d unknown", vuln, patched, unknown)
}

func TestStatusOfRoundTripThroughStudyTypes(t *testing.T) {
	o := core.Outcome{Status: core.StatusSPFMeasured,
		Observation: core.Observation{Patterns: []string{"x"}, Classes: []core.BehaviorClass{core.ClassVulnerable}}}
	if measure.StatusOf(o) != measure.IPVulnerable {
		t.Error("status mapping")
	}
}
