package study_test

import (
	"bytes"
	"context"
	"os"
	"testing"
	"time"

	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/study"
	"spfail/internal/trace"
)

// TestSameSeedProducesIdenticalReports is the determinism regression test:
// two runs of the same campaign spec must render byte-identical reports.
// Everything that could diverge — world generation, probe label allocation,
// bounce/open sampling, virtual-clock timeouts — is seeded or clocked, so
// any diff here means a wall-clock read or an unseeded random source crept
// back in.
// The trace JSONL is held to the same standard: a traced run must emit a
// byte-identical span stream, since buffers flush in merged input order and
// every timestamp comes from the virtual clock.
func TestSameSeedProducesIdenticalReports(t *testing.T) {
	render := func() ([]byte, []byte) {
		t.Helper()
		spec := population.DefaultSpec()
		spec.Scale = 0.003
		spec.Seed = 7
		var traceBuf bytes.Buffer
		res, err := study.Run(context.Background(), study.Config{
			Config: measure.Config{
				Concurrency: 64,
				BatchSize:   400,
				Trace:       trace.New(&traceBuf, trace.Options{Seed: spec.Seed}),
			},
			Spec:     spec,
			Interval: 4 * 24 * time.Hour,
		})
		if err != nil {
			t.Fatalf("study run: %v", err)
		}
		var buf bytes.Buffer
		report.All(&buf, res)
		return buf.Bytes(), traceBuf.Bytes()
	}

	first, firstTrace := render()
	second, secondTrace := render()
	if len(firstTrace) == 0 {
		t.Fatal("traced study produced no spans")
	}
	if !bytes.Equal(firstTrace, secondTrace) {
		t.Errorf("same-seed runs emitted different trace JSONL:\n--- first ---\n%s\n--- second ---\n%s",
			firstDiffContext(firstTrace, secondTrace), firstDiffContext(secondTrace, firstTrace))
	}
	if !bytes.Equal(first, second) {
		a, _ := os.CreateTemp("", "spfail-report-a-*.txt")
		b, _ := os.CreateTemp("", "spfail-report-b-*.txt")
		a.Write(first)
		b.Write(second)
		a.Close()
		b.Close()
		t.Errorf("same-seed runs rendered different reports (dumped to %s and %s):\n--- first ---\n%s\n--- second ---\n%s",
			a.Name(), b.Name(), firstDiffContext(first, second), firstDiffContext(second, first))
	}
}

// firstDiffContext returns a window of a around the first byte where a and
// b differ, to keep failure output readable.
func firstDiffContext(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo, hi := i-200, i+200
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
