package study_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spfail/internal/measure"
	"spfail/internal/obs"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/study"
	"spfail/internal/trace"
)

func budgetRun(t *testing.T, budget obs.Budget) (*study.Results, []byte, []byte) {
	t.Helper()
	spec := population.DefaultSpec()
	spec.Scale = 0.003
	spec.Seed = 11
	var traceBuf bytes.Buffer
	res, err := study.Run(context.Background(), study.Config{
		Config: measure.Config{
			Concurrency: 32,
			BatchSize:   200,
			Trace:       trace.New(&traceBuf, trace.Options{Seed: spec.Seed}),
		},
		Spec:     spec,
		Interval: 4 * 24 * time.Hour,
		Budget:   budget,
	})
	if err != nil {
		t.Fatalf("study run: %v", err)
	}
	var rep bytes.Buffer
	report.All(&rep, res)
	return res, rep.Bytes(), traceBuf.Bytes()
}

// TestBudgetSoftDegradationDeterminism is the PR's headline acceptance
// check: a run whose soft budget is breached immediately — so the
// watchdog is halving the batch size, draining pools, forcing GCs, and
// capturing heap profiles throughout — must produce a report and trace
// byte-identical to the same-seed unbudgeted run.
func TestBudgetSoftDegradationDeterminism(t *testing.T) {
	dir := t.TempDir()
	refRes, refReport, refTrace := budgetRun(t, obs.Budget{})
	gotRes, gotReport, gotTrace := budgetRun(t, obs.Budget{
		SoftRSS:    1, // every poll breaches
		Interval:   5 * time.Millisecond,
		ProfileDir: dir,
	})

	if !bytes.Equal(refReport, gotReport) {
		t.Error("report bytes differ between budgeted and unbudgeted runs")
	}
	if !bytes.Equal(refTrace, gotTrace) {
		t.Error("trace bytes differ between budgeted and unbudgeted runs")
	}
	if got := gotRes.Metrics.Counter("budget.soft_breaches").Value(); got == 0 {
		t.Error("soft budget never breached — degradation was not exercised")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	profiles := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "heap-") && strings.HasSuffix(e.Name(), ".pprof") {
			profiles++
		}
	}
	if profiles == 0 {
		t.Error("no heap profile captured on soft breach")
	}
	if refRes.Metrics.Counter("budget.soft_breaches").Value() != 0 {
		t.Error("unbudgeted run recorded soft breaches")
	}
}

// TestBudgetHardBreachFailsRun checks that a hard breach stops the run
// with a structured error instead of an OOM kill.
func TestBudgetHardBreachFailsRun(t *testing.T) {
	spec := population.DefaultSpec()
	spec.Scale = 0.003
	spec.Seed = 11
	res, err := study.Run(context.Background(), study.Config{
		Config:   measure.Config{Concurrency: 32, BatchSize: 200},
		Spec:     spec,
		Interval: 4 * 24 * time.Hour,
		Budget: obs.Budget{
			HardRSS:  1, // any live process exceeds this
			Interval: time.Millisecond,
		},
	})
	if !errors.Is(err, obs.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want wrap of obs.ErrBudgetExceeded", err)
	}
	var be *obs.BudgetError
	if !errors.As(err, &be) || be.Limit != 1 {
		t.Errorf("err = %#v, want *obs.BudgetError with Limit 1", err)
	}
	if got := res.Metrics.Counter("budget.hard_breaches").Value(); got != 1 {
		t.Errorf("budget.hard_breaches = %d, want 1", got)
	}
}

// TestStageResourceTable checks the per-stage accounting surface: every
// executed stage contributes a row with non-zero deltas, and the
// renderer emits them.
func TestStageResourceTable(t *testing.T) {
	res, _, _ := budgetRun(t, obs.Budget{})
	if len(res.Resources) == 0 {
		t.Fatal("no stage resource rows recorded")
	}
	stages := map[string]bool{}
	for _, sr := range res.Resources {
		stages[sr.Stage] = true
		if sr.Replayed {
			t.Errorf("stage %s marked replayed in a live run", sr.Stage)
		}
		if sr.AllocBytes == 0 || sr.AllocObjects == 0 {
			t.Errorf("stage %s: zero alloc delta (%d bytes / %d objects)",
				sr.Stage, sr.AllocBytes, sr.AllocObjects)
		}
		if sr.Wall <= 0 {
			t.Errorf("stage %s: wall duration %v, want > 0", sr.Stage, sr.Wall)
		}
		if sr.PeakRSS <= 0 {
			t.Errorf("stage %s: peak RSS %d, want > 0", sr.Stage, sr.PeakRSS)
		}
	}
	for _, want := range []string{"resolve", "initial", "round-000", "snapshot"} {
		if !stages[want] {
			t.Errorf("no resource row for stage %q (have %v)", want, stages)
		}
	}
	if len(res.CampaignResources.Shards) == 0 {
		t.Error("campaign shard stats empty")
	}

	var buf bytes.Buffer
	report.ResourceTable(&buf, res)
	out := buf.String()
	for _, want := range []string{"Resource usage by stage", "resolve", "snapshot", "total", "Probe work by shard"} {
		if !strings.Contains(out, want) {
			t.Errorf("ResourceTable output missing %q", want)
		}
	}
}

// TestBudgetResumeAcrossBudgetChange checks that Budget stays outside
// the checkpoint fingerprint: a store written under a tight soft budget
// resumes cleanly in an unbudgeted run, and replayed stages surface
// their originally-recorded resource rows flagged as replayed.
func TestBudgetResumeAcrossBudgetChange(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	spec := population.DefaultSpec()
	spec.Scale = 0.003
	spec.Seed = 11
	cfg := study.Config{
		Config:        measure.Config{Concurrency: 32, BatchSize: 200},
		Spec:          spec,
		Interval:      4 * 24 * time.Hour,
		CheckpointDir: ckpt,
		Budget:        obs.Budget{SoftRSS: 1, Interval: 5 * time.Millisecond, ProfileDir: dir},
		Kill: func(point string) bool {
			return point == "commit:initial"
		},
	}
	if _, err := study.Run(context.Background(), cfg); !errors.Is(err, study.ErrKilled) {
		t.Fatalf("first run err = %v, want ErrKilled", err)
	}

	cfg.Budget = obs.Budget{}
	cfg.Kill = nil
	cfg.Resume = true
	res, err := study.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	replayed := 0
	for _, sr := range res.Resources {
		if sr.Replayed {
			replayed++
			if sr.AllocBytes == 0 {
				t.Errorf("replayed stage %s lost its recorded alloc delta", sr.Stage)
			}
		}
	}
	if replayed == 0 {
		t.Error("resume surfaced no replayed resource rows")
	}
}
