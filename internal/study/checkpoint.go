package study

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"sync"

	"spfail/internal/checkpoint"
	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/measure"
	"spfail/internal/obs"
)

// runner threads the study's per-run state — rig, campaign, checkpoint
// store — through the stage machinery. Everything except capture and
// killed is touched only from the single clock-accounted run goroutine.
type runner struct {
	cfg       Config
	res       *Results
	rig       *measure.Rig
	campaign  *measure.Campaign
	clk       clock.Clock
	tracker   *Tracker
	trackerIP string
	progress  func(string)
	cancel    context.CancelFunc
	// coll sharpens per-stage peak-RSS attribution with the collector's
	// polled high-water mark.
	coll *obs.Collector

	// store is nil when checkpointing is disabled; pending is the tail
	// of committed segments a resume has not consumed yet.
	store   *checkpoint.Store
	pending []checkpoint.SegmentMeta
	// capture tees the tracer's output between stage cuts; nil when
	// checkpointing or tracing is off.
	capture *captureBuffer
	// killed latches once the injected Kill hook fires; Run reports
	// ErrKilled in place of whatever error the unwinding produced.
	killed bool
}

// stage executes one checkpointable unit of the study. When a pending
// committed segment is next, the stage replays instead of executing:
// restore rebuilds its results from the segment, and the generic
// round-boundary state — probe-label counter, circuit breakers, fault
// counters, trace bytes, virtual clock — is put back exactly where the
// committed run left it. Otherwise exec runs the stage live, and (when
// checkpointing) its payload is committed before the study moves on.
//
// The exec callback fills the stage payload's stage-specific fields
// (Targets, Outcomes, Extra); the generic fields are captured here so no
// stage can forget one.
func (r *runner) stage(ctx context.Context, name string, exec, restore func(*checkpoint.Stage) error) error {
	if len(r.pending) > 0 {
		meta := r.pending[0]
		if meta.Name != name {
			return fmt.Errorf("study: %w: store's next segment is %q, this run expects %q (control-flow drift despite matching fingerprint)",
				checkpoint.ErrResumeImpossible, meta.Name, name)
		}
		r.pending = r.pending[1:]
		payload, err := r.store.Read(meta)
		if err != nil {
			return fmt.Errorf("study: %w", err)
		}
		st, err := checkpoint.DecodeStage(payload)
		if err != nil {
			return fmt.Errorf("study: %w", err)
		}
		if err := restore(st); err != nil {
			return err
		}
		r.restoreResources(name, st)
		r.campaign.ResumeRound(st.ProbeSeq, st.Breakers)
		r.rig.FaultEngine.Restore(st.Faults)
		// Replayed bytes go straight to the output stream, bypassing the
		// capture tee — they already live in this segment.
		r.cfg.Trace.WriteRaw(st.Trace)
		if d := st.Clock.Sub(r.clk.Now()); d > 0 {
			if err := r.clk.Sleep(ctx, d); err != nil {
				return err
			}
		}
		r.rig.Metrics.Counter("checkpoint.resume.segments").Inc()
		return nil
	}

	st := &checkpoint.Stage{}
	probe := obs.BeginStage(r.clk, r.coll)
	if err := exec(st); err != nil {
		return err
	}
	sr := probe.End(name)
	r.res.Resources = append(r.res.Resources, sr)
	if r.store == nil {
		return nil
	}
	// Resource rows are a side channel: committed alongside the
	// deterministic payload, never inside it.
	if b, err := json.Marshal(sr); err == nil {
		st.Resources = b
	}
	st.Clock = r.clk.Now()
	st.ProbeSeq = r.campaign.ProbeSeq()
	st.Breakers = r.campaign.BreakerSnapshot()
	st.Faults = r.rig.FaultEngine.Snapshot()
	if r.capture != nil {
		st.Trace = r.capture.cut()
	}
	payload, err := checkpoint.EncodeStage(st)
	if err != nil {
		return err
	}
	if _, err := r.store.Commit(name, len(st.Outcomes), payload); err != nil {
		return err
	}
	if r.kill("commit:" + name) {
		return ErrKilled
	}
	return nil
}

// restoreResources surfaces a replayed segment's resource row in the
// results, flagged as replayed: the costs are what the stage consumed
// when it originally executed, not in this process. Segments from builds
// predating resource accounting simply have no row.
func (r *runner) restoreResources(name string, st *checkpoint.Stage) {
	if len(st.Resources) == 0 {
		return
	}
	var sr obs.StageResources
	if err := json.Unmarshal(st.Resources, &sr); err != nil {
		return
	}
	sr.Stage = name
	sr.Replayed = true
	r.res.Resources = append(r.res.Resources, sr)
}

// progressf reports a coarse stage update, formatting only when a sink
// is installed — studies run with Progress nil far more often than not,
// and the fmt work showed up in profiles.
func (r *runner) progressf(format string, args ...any) {
	if r.progress == nil {
		return
	}
	if len(args) == 0 {
		r.progress(format)
		return
	}
	r.progress(fmt.Sprintf(format, args...))
}

// kill consults the injected crash hook at a named point. The first fire
// latches and cancels the run context so in-flight campaign work
// unwinds; Run maps whatever error surfaces to ErrKilled.
func (r *runner) kill(point string) bool {
	if r.killed {
		return true
	}
	if r.cfg.Kill == nil || !r.cfg.Kill(point) {
		return false
	}
	r.killed = true
	r.cancel()
	return true
}

// captureBuffer is the tracer's tee target while checkpointing: every
// record FlushBuffer emits is appended here, and each stage commit cuts
// the accumulated bytes into its segment, so a resumed run can replay
// the trace stream byte-for-byte. The tracer writes from whichever
// goroutine flushes a probe buffer, hence the lock.
type captureBuffer struct {
	mu  sync.Mutex
	buf []byte // guarded by mu
}

// Write implements io.Writer; it never fails.
func (b *captureBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf = append(b.buf, p...)
	b.mu.Unlock()
	return len(p), nil
}

// cut returns the bytes accumulated since the previous cut.
func (b *captureBuffer) cut() []byte {
	b.mu.Lock()
	out := b.buf
	b.buf = nil
	b.mu.Unlock()
	return out
}

// targetRows converts resolved targets to their serialized segment form.
func targetRows(ts []measure.Target) []checkpoint.TargetRow {
	rows := make([]checkpoint.TargetRow, len(ts))
	for i, t := range ts {
		row := checkpoint.TargetRow{Domain: t.Domain, HasMX: t.HasMX}
		for _, a := range t.Addrs {
			row.Addrs = append(row.Addrs, a.String())
		}
		rows[i] = row
	}
	return rows
}

// restoreTargets is the inverse of targetRows.
func restoreTargets(rows []checkpoint.TargetRow) ([]measure.Target, error) {
	ts := make([]measure.Target, len(rows))
	for i, row := range rows {
		addrs, err := row.TargetAddrs()
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
		ts[i] = measure.Target{Domain: row.Domain, Addrs: addrs, HasMX: row.HasMX}
	}
	return ts, nil
}

// restoreOutcomesInto rebuilds an address-keyed outcome map from
// serialized stage rows. Outcome.Addr is the probe's dial string
// ("ip:25"), so the port is stripped to recover the campaign's map key.
func restoreOutcomesInto(rows []checkpoint.OutcomeRow, into map[netip.Addr]core.Outcome) error {
	for _, o := range checkpoint.RestoreOutcomes(rows) {
		a, err := netip.ParseAddr(o.Addr)
		if err != nil {
			ap, err2 := netip.ParseAddrPort(o.Addr)
			if err2 != nil {
				return fmt.Errorf("study: %w: outcome address %q: %v", checkpoint.ErrResumeImpossible, o.Addr, err)
			}
			a = ap.Addr()
		}
		into[a] = o
	}
	return nil
}

// decodeExtra parses a stage's Extra payload, mapping failures to the
// resume-impossible class.
func decodeExtra(extra []byte, v any) error {
	if err := json.Unmarshal(extra, v); err != nil {
		return fmt.Errorf("study: %w: stage extra payload: %v", checkpoint.ErrResumeImpossible, err)
	}
	return nil
}
