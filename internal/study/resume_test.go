package study_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spfail/internal/checkpoint"
	"spfail/internal/faults"
	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/retry"
	"spfail/internal/study"
	"spfail/internal/trace"
)

// resumeVariant is one kill-anywhere crash-recovery scenario: a study
// configuration factory (fresh trace sink per run, since a killed run's
// buffer is abandoned) plus how many randomized kill points to exercise.
type resumeVariant struct {
	name  string
	kills int
	cfg   func(traceBuf *bytes.Buffer) study.Config
}

func resumeVariants() []resumeVariant {
	return []resumeVariant{
		{name: "plain", kills: 3, cfg: func(tb *bytes.Buffer) study.Config {
			spec := population.DefaultSpec()
			spec.Scale = 0.002
			spec.Seed = 5
			return study.Config{
				Config: measure.Config{
					Concurrency: 64,
					BatchSize:   400,
					Trace:       trace.New(tb, trace.Options{Seed: spec.Seed}),
				},
				Spec:     spec,
				Interval: 4 * 24 * time.Hour,
			}
		}},
		{name: "faulty", kills: 2, cfg: func(tb *bytes.Buffer) study.Config {
			plan := faults.Plan{
				Seed: 13,
				Rules: []faults.Rule{
					{Kind: faults.KindDNSServfail, Burst: 2},
					{Kind: faults.KindDNSTruncate, Rate: 0.2},
					{Kind: faults.KindConnRefuse, Rate: 0.15},
					{Kind: faults.KindConnReset, Rate: 0.1, ResetAfter: 64},
					{Kind: faults.KindSMTPTarpit, Rate: 0.25, Delay: 20 * time.Second},
				},
			}
			spec := population.DefaultSpec()
			spec.Scale = 0.002
			spec.Seed = 9
			return study.Config{
				Config: measure.Config{
					Concurrency: 64,
					BatchSize:   400,
					IOTimeout:   2 * time.Second,
					Retry:       retry.Policy{MaxAttempts: 3, BaseDelay: 30 * time.Second, Jitter: 0.2},
					Breaker:     retry.BreakerConfig{Threshold: 4},
					Trace:       trace.New(tb, trace.Options{Seed: spec.Seed}),
				},
				Spec:     spec,
				Interval: 4 * 24 * time.Hour,
				DNSRetry: retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Second, Jitter: 0.2},
				Faults:   &plan,
			}
		}},
		{name: "scenario", kills: 2, cfg: func(tb *bytes.Buffer) study.Config {
			spec := population.DefaultSpec()
			spec.Scale = 0.003
			spec.Seed = 7
			spec.Scenarios = scenarioMix()
			return study.Config{
				Config: measure.Config{
					Concurrency: 64,
					BatchSize:   400,
					Trace:       trace.New(tb, trace.Options{Seed: spec.Seed}),
				},
				Spec:     spec,
				Interval: 4 * 24 * time.Hour,
			}
		}},
	}
}

// renderStudy runs cfg to completion and returns the rendered report and
// the trace JSONL that accumulated in traceBuf.
func renderStudy(t *testing.T, cfg study.Config, traceBuf *bytes.Buffer) ([]byte, []byte) {
	t.Helper()
	res, err := study.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("study run: %v", err)
	}
	var buf bytes.Buffer
	report.All(&buf, res)
	return buf.Bytes(), traceBuf.Bytes()
}

// TestKillAnywhereResumeByteIdentical is the tentpole regression: for
// each variant it renders an uncheckpointed reference, proves an
// uninterrupted checkpointed run matches it byte for byte, then crashes
// runs at randomized kill points — both durable commit boundaries and
// mid-stage probe callbacks — and asserts every resumed run reproduces
// the reference report AND trace stream exactly.
func TestKillAnywhereResumeByteIdentical(t *testing.T) {
	for _, v := range resumeVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			var refTraceBuf bytes.Buffer
			refReport, refTrace := renderStudy(t, v.cfg(&refTraceBuf), &refTraceBuf)

			// An uninterrupted checkpointed run must not perturb output;
			// its observed kill-point stream enumerates every crash site.
			var (
				mu     sync.Mutex
				points []string
			)
			var fullTraceBuf bytes.Buffer
			fullCfg := v.cfg(&fullTraceBuf)
			fullDir := t.TempDir()
			fullCfg.CheckpointDir = fullDir
			fullCfg.Kill = func(p string) bool {
				mu.Lock()
				points = append(points, p)
				mu.Unlock()
				return false
			}
			fullReport, fullTrace := renderStudy(t, fullCfg, &fullTraceBuf)
			if !bytes.Equal(refReport, fullReport) {
				t.Fatalf("checkpointed run perturbed the report:\n%s", firstDiffContext(refReport, fullReport))
			}
			if !bytes.Equal(refTrace, fullTrace) {
				t.Fatalf("checkpointed run perturbed the trace stream:\n%s", firstDiffContext(refTrace, fullTrace))
			}

			var commits, probes []string
			for _, p := range points {
				if strings.HasPrefix(p, "commit:") {
					commits = append(commits, p)
				} else {
					probes = append(probes, p)
				}
			}
			if len(commits) == 0 || len(probes) == 0 {
				t.Fatalf("kill-point stream incomplete: %d commit points, %d probe points", len(commits), len(probes))
			}

			// At least one commit-boundary kill and one mid-stage probe
			// kill per variant; extra picks draw from the full stream.
			rng := rand.New(rand.NewSource(int64(len(points))))
			picks := []string{
				commits[rng.Intn(len(commits))],
				probes[rng.Intn(len(probes))],
			}
			for len(picks) < v.kills {
				picks = append(picks, points[rng.Intn(len(points))])
			}
			for _, point := range picks {
				point := point
				t.Run(point, func(t *testing.T) {
					dir := t.TempDir()
					var killedTraceBuf bytes.Buffer
					killedCfg := v.cfg(&killedTraceBuf)
					killedCfg.CheckpointDir = dir
					killedCfg.Kill = func(p string) bool { return p == point }
					if _, err := study.Run(context.Background(), killedCfg); !errors.Is(err, study.ErrKilled) {
						t.Fatalf("killed run returned %v, want ErrKilled", err)
					}

					var resumeTraceBuf bytes.Buffer
					resumeCfg := v.cfg(&resumeTraceBuf)
					resumeCfg.CheckpointDir = dir
					resumeCfg.Resume = true
					gotReport, gotTrace := renderStudy(t, resumeCfg, &resumeTraceBuf)
					if !bytes.Equal(refReport, gotReport) {
						t.Errorf("resume after kill at %s: report differs from uninterrupted run:\n%s",
							point, firstDiffContext(refReport, gotReport))
					}
					if !bytes.Equal(refTrace, gotTrace) {
						t.Errorf("resume after kill at %s: trace stream differs from uninterrupted run:\n%s",
							point, firstDiffContext(refTrace, gotTrace))
					}
				})
			}

			// Resuming a store that already holds the complete run replays
			// every stage and still renders the identical report.
			if v.name == "plain" {
				var replayTraceBuf bytes.Buffer
				replayCfg := v.cfg(&replayTraceBuf)
				replayCfg.CheckpointDir = fullDir
				replayCfg.Resume = true
				gotReport, gotTrace := renderStudy(t, replayCfg, &replayTraceBuf)
				if !bytes.Equal(refReport, gotReport) {
					t.Errorf("full replay: report differs:\n%s", firstDiffContext(refReport, gotReport))
				}
				if !bytes.Equal(refTrace, gotTrace) {
					t.Errorf("full replay: trace stream differs:\n%s", firstDiffContext(refTrace, gotTrace))
				}
			}
		})
	}
}

// killedPlainStore runs the plain variant with a kill right after the
// named segment commits and returns the store directory.
func killedPlainStore(t *testing.T, killAt string) (string, study.Config) {
	t.Helper()
	v := resumeVariants()[0]
	dir := t.TempDir()
	var tb bytes.Buffer
	cfg := v.cfg(&tb)
	cfg.CheckpointDir = dir
	cfg.Kill = func(p string) bool { return p == "commit:"+killAt }
	if _, err := study.Run(context.Background(), cfg); !errors.Is(err, study.ErrKilled) {
		t.Fatalf("killed run returned %v, want ErrKilled", err)
	}
	var tb2 bytes.Buffer
	resumeCfg := v.cfg(&tb2)
	resumeCfg.CheckpointDir = dir
	resumeCfg.Resume = true
	return dir, resumeCfg
}

// TestResumeRejectsConfigDrift pins the fingerprint guard: resuming a
// store with a different seed (hence a different world) must fail with
// ErrResumeImpossible instead of splicing two incompatible runs.
func TestResumeRejectsConfigDrift(t *testing.T) {
	_, resumeCfg := killedPlainStore(t, "round-000")
	resumeCfg.Spec.Seed = 6
	_, err := study.Run(context.Background(), resumeCfg)
	if !errors.Is(err, checkpoint.ErrResumeImpossible) {
		t.Fatalf("drifted resume returned %v, want ErrResumeImpossible", err)
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("error should name the fingerprint mismatch: %v", err)
	}
}

// TestResumeRejectsCorruptSegment pins store verification at the study
// level: a truncated segment file fails resume with a clean
// ErrResumeImpossible that names the damaged segment.
func TestResumeRejectsCorruptSegment(t *testing.T) {
	dir, resumeCfg := killedPlainStore(t, "round-000")
	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in killed store: %v (%d)", err, len(segs))
	}
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = study.Run(context.Background(), resumeCfg)
	if !errors.Is(err, checkpoint.ErrResumeImpossible) {
		t.Fatalf("corrupt resume returned %v, want ErrResumeImpossible", err)
	}
}

// TestResumeWithoutStoreFails pins the flag contract: Resume without a
// CheckpointDir is a configuration error, and Resume against a missing
// directory cannot invent a store.
func TestResumeWithoutStoreFails(t *testing.T) {
	v := resumeVariants()[0]
	var tb bytes.Buffer
	cfg := v.cfg(&tb)
	cfg.Resume = true
	if _, err := study.Run(context.Background(), cfg); err == nil {
		t.Error("Resume without CheckpointDir should fail")
	}
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "absent")
	if _, err := study.Run(context.Background(), cfg); !errors.Is(err, checkpoint.ErrResumeImpossible) {
		t.Errorf("Resume against a missing store returned %v, want ErrResumeImpossible", err)
	}
}
