package study_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/study"
	"spfail/internal/trace"
)

// TestBatchGeometryDeterminism pins the invariant the memory-budget
// watchdog depends on: batch size is a wall-time concern only. Probe
// pacing runs on per-probe frame clocks anchored at the pass's asOf, so
// repartitioning the address list — which is exactly what a soft-budget
// breach does mid-run via Campaign.SetBatchSize — must not move a single
// byte of the report or the trace JSONL.
func TestBatchGeometryDeterminism(t *testing.T) {
	render := func(batch, concurrency int) ([]byte, []byte) {
		t.Helper()
		spec := population.DefaultSpec()
		spec.Scale = 0.003
		spec.Seed = 7
		var traceBuf bytes.Buffer
		res, err := study.Run(context.Background(), study.Config{
			Config: measure.Config{
				Concurrency: concurrency,
				BatchSize:   batch,
				Trace:       trace.New(&traceBuf, trace.Options{Seed: spec.Seed}),
			},
			Spec:     spec,
			Interval: 4 * 24 * time.Hour,
		})
		if err != nil {
			t.Fatalf("study run (batch=%d conc=%d): %v", batch, concurrency, err)
		}
		var buf bytes.Buffer
		report.All(&buf, res)
		return buf.Bytes(), traceBuf.Bytes()
	}
	refReport, refTrace := render(400, 64)
	for _, alt := range []struct {
		name               string
		batch, concurrency int
	}{
		{"quartered-batch", 100, 64},
		{"degraded-batch-low-concurrency", 25, 8},
	} {
		gotReport, gotTrace := render(alt.batch, alt.concurrency)
		if !bytes.Equal(refReport, gotReport) {
			t.Errorf("%s: report bytes differ from batch=400 run", alt.name)
		}
		if !bytes.Equal(refTrace, gotTrace) {
			t.Errorf("%s: trace bytes differ from batch=400 run", alt.name)
		}
	}
}
