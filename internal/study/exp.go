package study

import (
	"net/netip"
	"sort"
	"time"

	"spfail/internal/core"
	"spfail/internal/geo"
	"spfail/internal/measure"
	"spfail/internal/population"
)

// This file extracts, from a Results, the data behind every table and
// figure of the paper. Rendering lives in internal/report; benchmarks in
// bench_test.go regenerate each experiment through these functions.

// ---- Table 1: domain-set overlaps ----

// Table1Cell is the count of domains in set Row that are also in Col.
type Table1Cell struct {
	Row, Col population.Set
	Count    int
}

// Table1 computes the overlap matrix across the three measured sets.
func Table1(w *population.World) []Table1Cell {
	sets := []population.Set{population.SetTwoWeekMX, population.SetAlexa1000, population.SetAlexaTopList}
	var out []Table1Cell
	for _, row := range sets {
		for _, col := range sets {
			n := 0
			for _, d := range w.Domains {
				if d.Sets.Has(row) && d.Sets.Has(col) {
					n++
				}
			}
			out = append(out, Table1Cell{Row: row, Col: col, Count: n})
		}
	}
	return out
}

// ---- Table 2: TLD frequency ----

// TLDCount is one row of a TLD frequency table.
type TLDCount struct {
	TLD   string
	Count int
}

// Table2 returns the top-n TLDs of a set by frequency.
func Table2(w *population.World, set population.Set, n int) []TLDCount {
	counts := map[string]int{}
	for _, d := range w.DomainsIn(set) {
		counts[d.TLD]++
	}
	out := make([]TLDCount, 0, len(counts))
	for tld, c := range counts {
		out = append(out, TLDCount{TLD: tld, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TLD < out[j].TLD
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ---- Table 3: probe outcome funnel ----

// Funnel is the Table 3 outcome breakdown for one domain set, by address
// and by domain.
type Funnel struct {
	Set population.Set

	Addresses         int
	AddrRefused       int
	AddrNoMsgRun      int
	AddrNoMsgSMTPFail int
	AddrNoMsgMeasured int
	AddrNoMsgNotMeas  int
	AddrBlankRun      int
	AddrBlankSMTPFail int
	AddrBlankMeasured int
	AddrBlankNotMeas  int
	AddrTotalMeasured int

	Domains        int
	DomRefused     int
	DomSMTPFailure int
	DomMeasured    int
	DomNotMeasured int
}

// Table3 computes the funnel for a set from the initial measurement.
func Table3(r *Results, set population.Set) Funnel {
	f := Funnel{Set: set}
	inSet := func(domain string) bool { return r.DomainSet(domain).Has(set) }

	seen := map[netip.Addr]bool{}
	for _, t := range r.Targets {
		if !inSet(t.Domain) {
			continue
		}
		f.Domains++
		domBest := 0 // 0 refused, 1 smtp fail, 2 not measured, 3 measured
		for _, a := range t.Addrs {
			o, ok := r.Initial[a]
			if !ok {
				continue
			}
			rank := outcomeRank(o)
			if rank > domBest {
				domBest = rank
			}
			if seen[a] {
				continue
			}
			seen[a] = true
			f.Addresses++
			switch o.Status {
			case core.StatusConnectionRefused:
				f.AddrRefused++
				continue
			}
			f.AddrNoMsgRun++
			noMsgMeasured := o.Status == core.StatusSPFMeasured && o.Method == core.MethodNoMsg
			switch {
			case noMsgMeasured:
				f.AddrNoMsgMeasured++
			case o.Status == core.StatusSMTPFailure && !o.BlankMsgRan:
				f.AddrNoMsgSMTPFail++
			default:
				f.AddrNoMsgNotMeas++
			}
			if o.BlankMsgRan {
				f.AddrBlankRun++
				switch {
				case o.Status == core.StatusSPFMeasured && o.Method == core.MethodBlankMsg:
					f.AddrBlankMeasured++
				case o.Status == core.StatusSMTPFailure:
					f.AddrBlankSMTPFail++
				default:
					f.AddrBlankNotMeas++
				}
			}
			if o.Status == core.StatusSPFMeasured {
				f.AddrTotalMeasured++
			}
		}
		switch domBest {
		case 3:
			f.DomMeasured++
		case 2:
			f.DomNotMeasured++
		case 1:
			f.DomSMTPFailure++
		default:
			f.DomRefused++
		}
	}
	return f
}

func outcomeRank(o core.Outcome) int {
	switch o.Status {
	case core.StatusSPFMeasured:
		return 3
	case core.StatusSPFNotMeasured:
		return 2
	case core.StatusSMTPFailure:
		return 1
	default:
		return 0
	}
}

// ---- Table 4: initial vulnerability breakdown ----

// Breakdown is the Table 4 classification of SPF-measured addresses.
type Breakdown struct {
	Set population.Set
	// Measured addresses with conclusive SPF behaviour.
	Measured int
	// Vulnerable carries the libSPF2 fingerprint.
	Vulnerable int
	// ErroneousOther expanded incorrectly in some other way.
	ErroneousOther int
	// Compliant expanded per RFC 7208.
	Compliant int
	// Domains measured / vulnerable, for the domain columns.
	DomainsMeasured   int
	DomainsVulnerable int
}

// Table4 computes the initial-results breakdown for one set (use
// population.Set(0) mask == match-all via SetAny).
func Table4(r *Results, set population.Set) Breakdown {
	b := Breakdown{Set: set}
	counted := map[netip.Addr]bool{}
	for _, t := range r.Targets {
		if set != 0 && !r.DomainSet(t.Domain).Has(set) {
			continue
		}
		domMeasured, domVuln := false, false
		for _, a := range t.Addrs {
			o, ok := r.Initial[a]
			if !ok || o.Status != core.StatusSPFMeasured {
				continue
			}
			domMeasured = true
			if o.Observation.Vulnerable() {
				domVuln = true
			}
			if counted[a] {
				continue
			}
			counted[a] = true
			b.Measured++
			switch {
			case o.Observation.Vulnerable():
				b.Vulnerable++
			case o.Observation.DominantClass().Erroneous():
				b.ErroneousOther++
			default:
				b.Compliant++
			}
		}
		if domMeasured {
			b.DomainsMeasured++
		}
		if domVuln {
			b.DomainsVulnerable++
		}
	}
	return b
}

// ---- Table 5: TLD patch rates ----

// TLDPatch is one row of the patch-rate-by-TLD table.
type TLDPatch struct {
	TLD        string
	Vulnerable int
	Patched    int
}

// Rate is the patched share.
func (t TLDPatch) Rate() float64 {
	if t.Vulnerable == 0 {
		return 0
	}
	return float64(t.Patched) / float64(t.Vulnerable)
}

// Table5 computes per-TLD patch rates over initially vulnerable domains,
// sorted by rate descending; minVulnerable filters noise rows (paper: 50).
func Table5(r *Results, minVulnerable int) []TLDPatch {
	agg := map[string]*TLDPatch{}
	for domain := range r.VulnDomains {
		d := r.World.ByName[domain]
		if d == nil {
			continue
		}
		row := agg[d.TLD]
		if row == nil {
			row = &TLDPatch{TLD: d.TLD}
			agg[d.TLD] = row
		}
		row.Vulnerable++
		if r.FinalDomainStatus(domain) == measure.DomPatched {
			row.Patched++
		}
	}
	var out []TLDPatch
	for _, row := range agg {
		if row.Vulnerable >= minVulnerable {
			out = append(out, *row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate() != out[j].Rate() {
			return out[i].Rate() > out[j].Rate()
		}
		return out[i].TLD < out[j].TLD
	})
	return out
}

// ---- Table 7: macro-expansion behaviour taxonomy ----

// BehaviorCount is one row of the Table 7 taxonomy.
type BehaviorCount struct {
	Class core.BehaviorClass
	Count int
}

// Table7Result carries the taxonomy plus the multi-pattern statistic.
type Table7Result struct {
	Rows             []BehaviorCount
	MultiplePatterns int
	TotalMeasured    int
}

// Table7 classifies every measured address by its dominant behaviour.
func Table7(r *Results) Table7Result {
	counts := map[core.BehaviorClass]int{}
	res := Table7Result{}
	for _, o := range r.Initial {
		if o.Status != core.StatusSPFMeasured {
			continue
		}
		res.TotalMeasured++
		counts[o.Observation.DominantClass()]++
		if o.Observation.MultiplePatterns() {
			res.MultiplePatterns++
		}
	}
	order := []core.BehaviorClass{
		core.ClassCompliant, core.ClassVulnerable, core.ClassNoExpansion,
		core.ClassNoTruncate, core.ClassNoReverse, core.ClassRawValue,
		core.ClassMacroSkipped, core.ClassOther,
	}
	for _, c := range order {
		if counts[c] > 0 {
			res.Rows = append(res.Rows, BehaviorCount{Class: c, Count: counts[c]})
		}
	}
	return res
}

// ---- Figure 2: final patched/vulnerable/unknown split ----

// FinalSplit is one set's final-state distribution.
type FinalSplit struct {
	Set        population.Set
	Vulnerable int
	Patched    int
	Unknown    int
}

// Figure2 computes the February 2022 distribution for each set over the
// initially vulnerable domains.
func Figure2(r *Results) []FinalSplit {
	sets := []population.Set{population.SetAlexaTopList, population.SetAlexa1000, population.SetTwoWeekMX}
	out := make([]FinalSplit, 0, len(sets)+1)
	combined := FinalSplit{}
	counted := map[string]bool{}
	for _, set := range sets {
		fs := FinalSplit{Set: set}
		for domain := range r.VulnDomains {
			if !r.DomainSet(domain).Has(set) {
				continue
			}
			st := r.FinalDomainStatus(domain)
			switch st {
			case measure.DomPatched:
				fs.Patched++
			case measure.DomVulnerable:
				fs.Vulnerable++
			default:
				fs.Unknown++
			}
			if !counted[domain] {
				counted[domain] = true
				switch st {
				case measure.DomPatched:
					combined.Patched++
				case measure.DomVulnerable:
					combined.Vulnerable++
				default:
					combined.Unknown++
				}
			}
		}
		out = append(out, fs)
	}
	// Domains outside the three sets (provider-only) join the combined row.
	for domain := range r.VulnDomains {
		if counted[domain] {
			continue
		}
		switch r.FinalDomainStatus(domain) {
		case measure.DomPatched:
			combined.Patched++
		case measure.DomVulnerable:
			combined.Vulnerable++
		default:
			combined.Unknown++
		}
	}
	out = append(out, combined) // Set == 0 marks "all domains"
	return out
}

// ---- Figure 3: geographic distribution ----

// Figure3 returns the choropleth buckets for (a) vulnerable addresses and
// (b) their patch rates, plus per-country aggregates.
func Figure3(r *Results, cellDeg float64) (buckets []geo.BucketStats, countries []geo.CountryStats) {
	patched := func(a netip.Addr) bool {
		o, ok := r.Snapshot[a]
		if ok && measure.StatusOf(o) == measure.IPSafe {
			return true
		}
		// Fall back to the longitudinal end state.
		if r.Analysis != nil {
			if series, ok := r.Analysis.Inferred[a]; ok && len(series) > 0 {
				return series[len(series)-1] == measure.IPSafe
			}
		}
		return false
	}
	buckets = r.World.Geo.Choropleth(r.VulnAddrs, cellDeg, patched)
	countries = r.World.Geo.ByCountry(r.VulnAddrs, patched)
	return buckets, countries
}

// ---- Figure 4: vulnerability by site ranking ----

// RankBucket is one of the 20 rank partitions.
type RankBucket struct {
	Index      int
	Lo, Hi     int // rank range (inclusive) or usage-rank range
	Vulnerable int
	Patched    int
}

// Figure4 buckets initially vulnerable domains by rank. For the Alexa set
// the explicit rank is used; for the 2-Week MX set domains are ranked by
// their observed MX-query counts.
func Figure4(r *Results, set population.Set, buckets int) []RankBucket {
	if buckets <= 0 {
		buckets = 20
	}
	type ranked struct {
		domain string
		rank   int
	}
	var all []ranked
	for _, d := range r.World.DomainsIn(set) {
		rk := d.Rank
		if set == population.SetTwoWeekMX {
			rk = -d.MXQueries // more queries = higher usage rank
		}
		all = append(all, ranked{domain: d.Name, rank: rk})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank < all[j].rank })
	out := make([]RankBucket, buckets)
	for i := range out {
		lo := i * len(all) / buckets
		hi := (i+1)*len(all)/buckets - 1
		out[i] = RankBucket{Index: i, Lo: lo + 1, Hi: hi + 1}
	}
	for pos, entry := range all {
		b := pos * buckets / len(all)
		if b >= buckets {
			b = buckets - 1
		}
		if _, vulnerable := r.VulnDomains[entry.domain]; !vulnerable {
			continue
		}
		out[b].Vulnerable++
		if r.FinalDomainStatus(entry.domain) == measure.DomPatched {
			out[b].Patched++
		}
	}
	return out
}

// ---- Figures 5–8: longitudinal series ----

// SetSeries returns the longitudinal domain series for a set (Figures
// 5/6/7; pass population.SetAlexa1000 for Figure 8).
func SetSeries(r *Results, set population.Set) []measure.SeriesPoint {
	domains := map[string][]netip.Addr{}
	for d, addrs := range r.VulnDomains {
		if set == 0 || r.DomainSet(d).Has(set) {
			domains[d] = addrs
		}
	}
	if r.Analysis == nil {
		return nil
	}
	return r.Analysis.DomainSeries(domains)
}

// WindowSeries filters a series to a time window.
func WindowSeries(points []measure.SeriesPoint, from, to time.Time) []measure.SeriesPoint {
	var out []measure.SeriesPoint
	for _, p := range points {
		if !p.Time.Before(from) && !p.Time.After(to) {
			out = append(out, p)
		}
	}
	return out
}

// ---- §7.6/§7.7 narrative: when did patching happen? ----

// PatchTiming breaks the measured patch events down by disclosure window,
// the quantities behind the paper's conclusion that public disclosure
// correlated with far more patching than private notification.
type PatchTiming struct {
	// PreNotification: first measured patched before November 15
	// (proactive package-update monitoring).
	PreNotification int
	// BetweenDisclosures: between the private notification and the
	// public CVE disclosure.
	BetweenDisclosures int
	// PostDisclosure: on or after January 19.
	PostDisclosure int
	// SnapshotOnly: never measured patched in the longitudinal series
	// but conclusively patched in the final snapshot.
	SnapshotOnly int
	// Never: still vulnerable (or unknown) at the end.
	Never int
	Total int
}

// PatchTimingBreakdown classifies every initially vulnerable domain by
// when its patch was first measured.
func PatchTimingBreakdown(r *Results) PatchTiming {
	var out PatchTiming
	for domain := range r.VulnDomains {
		out.Total++
		at := r.DomainPatchedAt(domain)
		switch {
		case at.IsZero():
			if r.FinalDomainStatus(domain) == measure.DomPatched {
				out.SnapshotOnly++
			} else {
				out.Never++
			}
		case at.Before(population.TNotification):
			out.PreNotification++
		case at.Before(population.TDisclosure):
			out.BetweenDisclosures++
		default:
			out.PostDisclosure++
		}
	}
	return out
}
