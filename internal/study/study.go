package study

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"time"

	"spfail/internal/checkpoint"
	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/faults"
	"spfail/internal/measure"
	"spfail/internal/obs"
	"spfail/internal/population"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
)

// Config parameterizes a full study run. The campaign-level knobs —
// concurrency, batch size, politeness waits, probe retry and breaker
// policy, metrics, tracing — are the embedded measure.Config; the fields
// declared here are the study-only surface: the world spec, the
// longitudinal cadence, the fault plan, the checkpoint store, and the
// observer hooks. Suite on the embedded config is ignored: the study
// stamps its own suites (s01 for the main campaign, s02 for the final
// snapshot).
type Config struct {
	measure.Config

	Spec population.Spec
	// Interval is the longitudinal cadence (paper: 48h).
	Interval time.Duration
	// DNSRetry is the probe-side resolver's retry policy. A zero Seed is
	// filled from Spec.Seed, like the embedded probe Retry.
	DNSRetry retry.Policy
	// Faults, when non-nil and non-empty, is installed on the fabric as
	// a deterministic fault-injection plan. A zero Plan.Seed is filled
	// from Spec.Seed.
	Faults *faults.Plan
	// Observe, if non-nil, receives every probe outcome batch by batch,
	// in input order within each batch. It is called serially, and only
	// for probes actually executed: outcomes replayed from a checkpoint
	// on resume are not re-observed.
	Observe func(suite string, addr netip.Addr, out core.Outcome)
	// Progress, if non-nil, receives coarse stage updates.
	Progress func(stage string)

	// CheckpointDir, when non-empty, enables the durable incremental
	// checkpoint store: every completed stage (resolution, spoof survey,
	// initial measurement, notification, each longitudinal round, the
	// final snapshot) commits a segment there (see internal/checkpoint
	// and docs/checkpoints.md).
	CheckpointDir string
	// Resume restarts from CheckpointDir's committed segments instead of
	// clearing them: completed stages replay from disk and execution
	// picks up at the first missing one, producing results, trace, and
	// report byte-identical to an uninterrupted run. The run must use
	// the same Spec and knobs as the one that wrote the store — the
	// store's fingerprint enforces that.
	Resume bool
	// Budget, when enabled, puts the run under a resident-memory envelope
	// enforced by an obs.Watchdog: a soft breach halves the campaign batch
	// size (floor 16), drains pools, forces a GC, and captures a heap
	// profile (to Budget.ProfileDir, defaulting to CheckpointDir); a hard
	// breach stops the run with an error wrapping obs.ErrBudgetExceeded.
	// Batch geometry is a wall-time-only concern — probe pacing runs on
	// per-probe frame clocks — so degradation never moves a report or
	// trace byte, and Budget is deliberately outside the checkpoint
	// fingerprint: budgeted and unbudgeted runs are mutually resumable.
	Budget obs.Budget

	// Kill, if non-nil, is the crash-injection test hook: it is
	// consulted with a point name after every segment commit
	// ("commit:<segment>") and every delivered probe outcome
	// ("<segment>:probe:<n>"), and the first true return aborts the run
	// with ErrKilled, exactly as a kill -9 at that instant would
	// (everything since the last commit is lost).
	Kill func(point string) bool
}

// ErrKilled is returned by Run when the injected Kill hook fired. The
// checkpoint store is left exactly as a real crash at that point would
// leave it, so a Resume run picks up from the last committed segment.
var ErrKilled = errors.New("study: killed at injected crash point")

// Normalize fills study defaults and delegates the campaign-level knobs
// to the embedded measure.Config.Normalize (which it shadows). The study
// overrides one campaign default: IOTimeout falls back to 5s rather than
// the operational 30s, because simulated runs spend it in real time.
func (c Config) Normalize() (Config, error) {
	if c.Interval < 0 {
		return c, fmt.Errorf("study: Interval %v is negative", c.Interval)
	}
	if c.Interval == 0 {
		c.Interval = 48 * time.Hour
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 5 * time.Second
	}
	if c.Retry.Seed == 0 {
		c.Retry.Seed = c.Spec.Seed
	}
	if c.DNSRetry.Seed == 0 {
		c.DNSRetry.Seed = c.Spec.Seed
	}
	if c.Faults != nil && !c.Faults.Empty() {
		p := *c.Faults
		if p.Seed == 0 {
			p.Seed = c.Spec.Seed
		}
		c.Faults = &p
	} else {
		c.Faults = nil
	}
	var err error
	if c.Config, err = c.Config.Normalize(); err != nil {
		return c, fmt.Errorf("study: %w", err)
	}
	if c.Resume && c.CheckpointDir == "" {
		return c, fmt.Errorf("study: Resume requires CheckpointDir")
	}
	return c, nil
}

// campaignConfig stamps the campaign config for one probe suite.
func (c *Config) campaignConfig(suite string) measure.Config {
	mc := c.Config
	mc.Suite = suite
	return mc
}

// fingerprint hashes every output-affecting knob of a normalized config.
// It is stamped into the checkpoint store at creation and checked on
// resume: a run whose knobs differ would diverge from the committed
// segments, so it must not consume them. Tracer options are not part of
// the config surface and thus not covered — resume with the same trace
// flags, as docs/checkpoints.md spells out.
func (c *Config) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "spec=%+v|interval=%v|concurrency=%d|batch=%d|greylist=%v|reconnect=%v|io=%v|",
		c.Spec, c.Interval, c.Concurrency, c.BatchSize, c.GreylistWait, c.ReconnectWait, c.IOTimeout)
	fmt.Fprintf(h, "retry=%+v|dnsretry=%+v|breaker=%+v|", c.Retry, c.DNSRetry, c.Breaker)
	if c.Faults != nil {
		fmt.Fprintf(h, "faults=%+v", *c.Faults)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Results carries everything the experiments section consumes.
type Results struct {
	World *population.World

	// Metrics is the run's telemetry registry (see docs/telemetry.md).
	Metrics *telemetry.Registry

	// Targets is the DNS-resolved measurement set; AddrDomains indexes
	// domains by address; RepDomain is the representative domain used in
	// RCPT TO for each address.
	Targets     []measure.Target
	AddrDomains map[netip.Addr][]string
	RepDomain   map[netip.Addr]string

	// Initial is the full-population measurement of October 11.
	InitialTime time.Time
	Initial     map[netip.Addr]core.Outcome

	// VulnAddrs were measured vulnerable initially; RetryAddrs were
	// inconclusive but considered re-measurable (paper: 7,212 + 721).
	VulnAddrs  []netip.Addr
	RetryAddrs []netip.Addr
	// VulnDomains maps each initially vulnerable domain to its
	// vulnerable addresses.
	VulnDomains map[string][]netip.Addr

	// Rounds is the longitudinal series; Analysis applies inference.
	Rounds   []measure.Round
	Analysis *measure.Analysis

	// Notification is the §7.7 funnel.
	Notification NotificationResult

	// Spoof holds the receiver-perspective spoofing verdicts, one per
	// world domain, when the spec enables scenario packs; ScenarioStats
	// aggregates them per pack for the misconfiguration-prevalence
	// table.
	SpoofTime     time.Time
	Spoof         []core.SpoofVerdict
	ScenarioStats []measure.ScenarioStat

	// Snapshot is the final re-resolved measurement of February 14.
	SnapshotTime time.Time
	Snapshot     map[netip.Addr]core.Outcome

	// Resources is the per-stage resource accounting, one row per
	// executed (or checkpoint-replayed) stage in commit order, plus the
	// campaign's per-shard breakdown. Pure side channel: nothing here
	// feeds the seeded report or trace bytes.
	Resources         []obs.StageResources
	CampaignResources measure.Resources
}

// Run executes the complete study on a simulated clock starting at the
// paper's initial measurement date. With Config.CheckpointDir set, every
// completed stage is durably committed, and with Config.Resume the run
// restarts from those commitments instead of re-probing.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	world, err := population.Generate(norm.Spec)
	if err != nil {
		return nil, fmt.Errorf("study: %w", err)
	}
	if norm.Metrics == nil {
		norm.Metrics = telemetry.New()
	}

	// Resource observability rides the wall clock even though the study
	// itself runs on a simulated one: memory and GC are wall-time
	// phenomena. The collector feeds runtime.* instruments and sharpens
	// per-stage peak-RSS attribution.
	coll := obs.NewCollector(norm.Metrics, clock.Real{}, 0)
	coll.Start()
	defer coll.Stop()

	var store *checkpoint.Store
	if norm.CheckpointDir != "" {
		fp := norm.fingerprint()
		if norm.Resume {
			store, err = checkpoint.Open(norm.CheckpointDir, fp, norm.Metrics)
		} else {
			store, err = checkpoint.Create(norm.CheckpointDir, fp, norm.Metrics)
		}
		if err != nil {
			return nil, fmt.Errorf("study: %w", err)
		}
	}

	sim := clock.NewSim(population.TInitial)
	defer sim.Close()

	rig, err := measure.NewRigFromOptions(ctx, measure.RigOptions{
		World:    world,
		Clock:    sim,
		Metrics:  norm.Metrics,
		Faults:   norm.Faults,
		DNSRetry: norm.DNSRetry,
		Trace:    norm.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer rig.Close()

	const trackerIP = "192.0.2.90"
	tracker := &Tracker{Net: rig.Fabric.Host(trackerIP), Addr: ":80", Clk: sim}
	if err := tracker.Start(); err != nil {
		return nil, err
	}
	defer tracker.Stop()

	res := &Results{World: world, Metrics: rig.Metrics}
	campaign, err := measure.NewCampaign(rig, norm.campaignConfig("s01"))
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &runner{
		cfg:       norm,
		res:       res,
		rig:       rig,
		campaign:  campaign,
		clk:       sim,
		tracker:   tracker,
		trackerIP: trackerIP,
		progress:  norm.Progress,
		cancel:    cancel,
		store:     store,
		coll:      coll,
	}

	// The budget watchdog degrades the campaign from its own wall-clock
	// goroutine. Halving the batch only repartitions the address list —
	// probe pacing runs on per-probe frames — so this is byte-safe by
	// construction (TestBatchGeometryDeterminism pins it).
	var budget budgetState
	if norm.Budget.Enabled() {
		b := norm.Budget
		if b.ProfileDir == "" {
			b.ProfileDir = norm.CheckpointDir
		}
		wd := obs.NewWatchdog(b, norm.Metrics, clock.Real{})
		wd.OnSoftBreach(func(int64) {
			n := campaign.BatchSize() / 2
			if n < minDegradedBatch {
				n = minDegradedBatch
			}
			campaign.SetBatchSize(n)
		})
		wd.OnHardBreach(func(err error) {
			budget.fail(err)
			cancel()
		})
		wd.Start()
		defer wd.Stop()
	}
	if store != nil {
		r.pending = store.Segments()
		if norm.Trace != nil {
			r.capture = &captureBuffer{}
			norm.Trace.SetCapture(r.capture)
			defer norm.Trace.SetCapture(nil)
		}
	}

	done := make(chan error, 1)
	clock.Go(sim, func() {
		done <- r.run(runCtx)
	})
	select {
	case err := <-done:
		res.CampaignResources = r.campaign.Resources()
		if r.killed {
			return res, ErrKilled
		}
		if berr := budget.err(); berr != nil {
			// The hard breach cancelled the run context; the unwind error
			// is just the cancellation echo — report the cause.
			return res, fmt.Errorf("study: %w", berr)
		}
		return res, err
	case <-ctx.Done():
		return res, ctx.Err()
	}
}

// minDegradedBatch is the floor soft-breach degradation will not halve
// the campaign batch below: smaller waves stop helping RSS and only
// multiply scheduling overhead.
const minDegradedBatch = 16

// budgetState carries the hard-breach error from the watchdog goroutine
// to Run's result without racing the run unwind.
type budgetState struct {
	mu sync.Mutex
	e  error // guarded by mu
}

func (b *budgetState) fail(err error) {
	b.mu.Lock()
	if b.e == nil {
		b.e = err
	}
	b.mu.Unlock()
}

func (b *budgetState) err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.e
}

// run is the study driver; it executes on a clock-accounted goroutine.
// Every probing phase goes through runner.stage, so the flow reads the
// same whether stages execute live or replay from committed segments.
func (r *runner) run(ctx context.Context) error {
	clk := r.rig.Clock
	world := r.rig.World
	res := r.res
	cfg := &r.cfg

	// 1. Resolve every domain's mail hosts through the DNS.
	r.progressf("resolving targets")
	var domainNames []string
	for _, d := range world.Domains {
		domainNames = append(domainNames, d.Name)
	}
	if err := r.stage(ctx, "resolve",
		func(st *checkpoint.Stage) error {
			res.Targets = r.rig.ResolveTargets(ctx, domainNames)
			if r.store != nil {
				st.Targets = targetRows(res.Targets)
			}
			return nil
		},
		func(st *checkpoint.Stage) error {
			var err error
			res.Targets, err = restoreTargets(st.Targets)
			return err
		}); err != nil {
		return err
	}
	addrs, rep := measure.UniqueAddrs(res.Targets)
	res.RepDomain = rep
	res.AddrDomains = make(map[netip.Addr][]string)
	for _, t := range res.Targets {
		for _, a := range t.Addrs {
			res.AddrDomains[a] = append(res.AddrDomains[a], t.Domain)
		}
	}

	// 1b. Receiver-perspective spoofing verdict survey, when the world
	// carries scenario packs: judge every domain's SPF policy and DMARC
	// posture against a forged envelope, through the real resolution
	// path (the lookup/void budgets are consumed against the sim DNS).
	if len(cfg.Spec.Scenarios) > 0 {
		r.progressf("spoofing verdict survey of %d domains", len(world.Domains))
		res.SpoofTime = clk.Now()
		if err := r.stage(ctx, "spoof",
			func(st *checkpoint.Stage) error {
				survey := &measure.SpoofSurvey{Rig: r.rig}
				res.Spoof = survey.Run(ctx)
				if r.store == nil {
					return nil
				}
				var err error
				st.Extra, err = json.Marshal(res.Spoof)
				return err
			},
			func(st *checkpoint.Stage) error {
				return decodeExtra(st.Extra, &res.Spoof)
			}); err != nil {
			return err
		}
		res.ScenarioStats = measure.ScenarioStats(res.Spoof)
	}

	// 2. Initial full measurement (October 11).
	r.progressf("initial measurement of %d addresses", len(addrs))
	res.InitialTime = clk.Now()
	res.Initial = make(map[netip.Addr]core.Outcome, len(addrs))
	if err := r.measureStage(ctx, "initial", "s01", r.campaign, addrs, rep, res.Initial); err != nil {
		return err
	}

	// 3. Select longitudinal targets.
	res.VulnDomains = make(map[string][]netip.Addr)
	for _, a := range addrs {
		out := res.Initial[a]
		switch {
		case out.Vulnerable():
			res.VulnAddrs = append(res.VulnAddrs, a)
			for _, d := range res.AddrDomains[a] {
				res.VulnDomains[d] = append(res.VulnDomains[d], a)
			}
		case out.Status == core.StatusSMTPFailure && out.FailStage != core.StageDial:
			// Reached but failed: re-measurable (the paper's 721).
			res.RetryAddrs = append(res.RetryAddrs, a)
		}
	}
	targets := append(append([]netip.Addr(nil), res.VulnAddrs...), res.RetryAddrs...)
	sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })

	// 4. Longitudinal windows with the notification event in between.
	r.progressf("longitudinal measurement of %d addresses", len(targets))
	notifier := &Notifier{
		Rig:         r.rig,
		Tracker:     r.tracker,
		TrackerAddr: r.trackerIP + ":80",
		SenderIP:    "198.51.100.77",
		Seed:        cfg.Spec.Seed ^ 0x707,
	}
	notified := false
	runWindow := func(start, end time.Time) error {
		// Rounds are pinned to an even grid (paper: "evenly-spaced
		// measurements every 2 days") regardless of how long each round's
		// probing takes.
		for next := start; !next.After(end); next = next.Add(cfg.Interval) {
			if d := next.Sub(clk.Now()); d > 0 {
				if err := clk.Sleep(ctx, d); err != nil {
					return err
				}
			}
			if !notified && !clk.Now().Before(population.TNotification) {
				r.progressf("sending private notifications")
				if err := r.stage(ctx, "notify",
					func(st *checkpoint.Stage) error {
						if err := r.rig.Manager.Ensure(ctx, res.VulnAddrs); err != nil {
							return err
						}
						res.Notification = notifier.Notify(ctx, res.VulnDomains)
						r.rig.Manager.Stop(res.VulnAddrs)
						if r.store == nil {
							return nil
						}
						var err error
						st.Extra, err = json.Marshal(&res.Notification)
						return err
					},
					func(st *checkpoint.Stage) error {
						return decodeExtra(st.Extra, &res.Notification)
					}); err != nil {
					return err
				}
				notified = true
			}
			results := make(map[netip.Addr]core.Outcome, len(targets))
			name := fmt.Sprintf("round-%03d", len(res.Rounds))
			if err := r.measureStage(ctx, name, "s01", r.campaign, targets, res.RepDomain, results); err != nil {
				return err
			}
			res.Rounds = append(res.Rounds, measure.Round{Time: next, Results: results})
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		return nil
	}
	if err := runWindow(population.TLongitudinal, population.TPause); err != nil {
		return err
	}
	if err := runWindow(population.TResume, population.TEnd.Add(-24*time.Hour)); err != nil {
		return err
	}

	// 5. Final snapshot with re-resolved addresses (February 14).
	r.progressf("final snapshot")
	if d := population.TEnd.Sub(clk.Now()); d > 0 {
		if err := clk.Sleep(ctx, d); err != nil {
			return err
		}
	}
	res.SnapshotTime = clk.Now()
	var vulnDomainNames []string
	for d := range res.VulnDomains {
		vulnDomainNames = append(vulnDomainNames, d)
	}
	sort.Strings(vulnDomainNames)
	res.Snapshot = make(map[netip.Addr]core.Outcome)
	if err := r.stage(ctx, "snapshot",
		func(st *checkpoint.Stage) error {
			snapTargets := r.rig.ResolveTargets(ctx, vulnDomainNames)
			snapAddrs, snapRep := measure.UniqueAddrs(snapTargets)
			snapCampaign, err := measure.NewCampaign(r.rig, cfg.campaignConfig("s02"))
			if err != nil {
				return err
			}
			if r.store != nil {
				st.Targets = targetRows(snapTargets)
			}
			return r.measureInto(ctx, "snapshot", "s02", snapCampaign, snapAddrs, snapRep, res.Snapshot, st)
		},
		func(st *checkpoint.Stage) error {
			return restoreOutcomesInto(st.Outcomes, res.Snapshot)
		}); err != nil {
		return err
	}

	// 6. Aggregate. Recomputed on every path — resumes replay raw stage
	// rows, never frozen aggregates.
	r.progressf("aggregating")
	res.Analysis = measure.Analyze(res.Rounds, targets)
	res.Notification.Finalize(res.DomainPatchedAt)
	return nil
}

// measureStage runs one measurement pass over addrs as a checkpointable
// stage, filling into keyed by address.
func (r *runner) measureStage(ctx context.Context, name, suite string, c *measure.Campaign, addrs []netip.Addr, rep map[netip.Addr]string, into map[netip.Addr]core.Outcome) error {
	return r.stage(ctx, name,
		func(st *checkpoint.Stage) error {
			return r.measureInto(ctx, name, suite, c, addrs, rep, into, st)
		},
		func(st *checkpoint.Stage) error {
			return restoreOutcomesInto(st.Outcomes, into)
		})
}

// measureInto executes probes live, streaming each outcome into the
// result map, the Observe hook, the kill hook, and (when checkpointing)
// the stage payload.
func (r *runner) measureInto(ctx context.Context, name, suite string, c *measure.Campaign, addrs []netip.Addr, rep map[netip.Addr]string, into map[netip.Addr]core.Outcome, st *checkpoint.Stage) error {
	sink := &probeSink{r: r, name: name, suite: suite, into: into}
	if r.store != nil {
		sink.outs = make([]core.Outcome, 0, len(addrs))
	}
	if err := c.MeasureAddrsFunc(ctx, addrs, rep, sink.observe); err != nil {
		return err
	}
	st.Outcomes = checkpoint.OutcomeRows(sink.outs)
	return nil
}

// probeSink is the campaign's per-outcome delivery target for one
// measurement stage. A struct with a method value (rather than a
// capturing closure) keeps the per-probe path visible to the
// hotpathalloc pass.
type probeSink struct {
	r     *runner
	name  string
	suite string
	into  map[netip.Addr]core.Outcome
	outs  []core.Outcome
	n     int
}

// observe runs once per probed address, on the delivery path of every
// measurement stage. The kill-point label is built only when a crash
// hook is actually installed — production runs skip the per-probe
// string work entirely.
//
//spfail:hotpath
func (s *probeSink) observe(a netip.Addr, o core.Outcome) {
	s.into[a] = o
	if s.r.store != nil {
		s.outs = append(s.outs, o)
	}
	if s.r.cfg.Observe != nil {
		s.r.cfg.Observe(s.suite, a, o)
	}
	if s.r.cfg.Kill != nil {
		s.r.kill(s.name + ":probe:" + strconv.Itoa(s.n))
	}
	s.n++
}

// DomainPatchedAt returns the first longitudinal round time at which the
// domain measured patched (zero when it never did).
func (r *Results) DomainPatchedAt(domain string) time.Time {
	addrs := r.VulnDomains[domain]
	if len(addrs) == 0 || r.Analysis == nil {
		return time.Time{}
	}
	for i, t := range r.Analysis.Times {
		if r.Analysis.DomainStatusAt(addrs, i) == measure.DomPatched {
			return t
		}
	}
	return time.Time{}
}

// FinalDomainStatus combines the longitudinal end state with the final
// snapshot: snapshot evidence wins when conclusive (it re-resolved
// addresses and reached hosts the longitudinal probes could not — §7.2).
func (r *Results) FinalDomainStatus(domain string) measure.DomainStatus {
	addrs := r.VulnDomains[domain]
	if len(addrs) == 0 {
		return measure.DomUncertain
	}
	// Snapshot verdict.
	snapConclusive := true
	snapVulnerable := false
	for _, a := range addrs {
		o, ok := r.Snapshot[a]
		if !ok || measure.StatusOf(o) == measure.IPInconclusive {
			snapConclusive = false
			break
		}
		if measure.StatusOf(o) == measure.IPVulnerable {
			snapVulnerable = true
		}
	}
	if snapConclusive {
		if snapVulnerable {
			return measure.DomVulnerable
		}
		return measure.DomPatched
	}
	// Fall back to the last longitudinal state.
	if r.Analysis != nil && len(r.Analysis.Times) > 0 {
		return r.Analysis.DomainStatusAt(addrs, len(r.Analysis.Times)-1)
	}
	return measure.DomUncertain
}

// DomainSet returns a domain's set membership from the world.
func (r *Results) DomainSet(domain string) population.Set {
	if d := r.World.ByName[domain]; d != nil {
		return d.Sets
	}
	return 0
}
