package study

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/faults"
	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Config parameterizes a full study run.
type Config struct {
	Spec population.Spec
	// Concurrency caps simultaneous probes (paper: 250).
	Concurrency int
	// BatchSize bounds simultaneously running simulated hosts.
	BatchSize int
	// Interval is the longitudinal cadence (paper: 48h).
	Interval time.Duration
	// IOTimeout bounds per-probe SMTP I/O (default 5s). It is spent in
	// real time even on the virtual clock, so shrink it when the fault
	// plan blackholes connections.
	IOTimeout time.Duration
	// Retry reruns transiently failed probes (see retry.Policy); zero
	// keeps single attempts. A zero Seed is filled from Spec.Seed so
	// same-seed studies share jitter schedules.
	Retry retry.Policy
	// DNSRetry is the probe-side resolver's retry policy.
	DNSRetry retry.Policy
	// Breaker configures the campaigns' per-address circuit breaker.
	Breaker retry.BreakerConfig
	// Faults, when non-nil and non-empty, is installed on the fabric as
	// a deterministic fault-injection plan. A zero Plan.Seed is filled
	// from Spec.Seed.
	Faults *faults.Plan
	// Observe, if non-nil, receives every probe outcome batch by batch,
	// in input order within each batch — the incremental checkpoint hook
	// for long campaigns. It is called serially.
	Observe func(suite string, addr netip.Addr, out core.Outcome)
	// Progress, if non-nil, receives coarse stage updates.
	Progress func(stage string)
	// Metrics, if non-nil, aggregates telemetry from every layer of the
	// run (callers can watch it live); nil creates a private registry,
	// exposed afterwards as Results.Metrics.
	Metrics *telemetry.Registry
	// Trace, if non-nil, captures per-probe causal spans from every layer
	// of the run (see internal/trace and docs/tracing.md). Build it with
	// trace.Options{Seed: Spec.Seed} so same-seed runs emit byte-identical
	// JSONL.
	Trace *trace.Tracer
}

func (c *Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 48 * time.Hour
}

func (c *Config) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return 5 * time.Second
}

// retrySeeded returns the probe retry policy with its jitter seed pinned
// to the world seed when unset, so same-seed runs share backoff schedules.
func (c *Config) retrySeeded() retry.Policy {
	r := c.Retry
	if r.Seed == 0 {
		r.Seed = c.Spec.Seed
	}
	return r
}

// faultsSeeded returns the fault plan with its seed pinned to the world
// seed when unset.
func (c *Config) faultsSeeded() *faults.Plan {
	if c.Faults == nil || c.Faults.Empty() {
		return nil
	}
	p := *c.Faults
	if p.Seed == 0 {
		p.Seed = c.Spec.Seed
	}
	return &p
}

// campaignConfig builds the measure.Config for one probe suite.
func (c *Config) campaignConfig(suite string) measure.Config {
	return measure.Config{
		Suite:       suite,
		Concurrency: c.Concurrency,
		BatchSize:   c.BatchSize,
		IOTimeout:   c.ioTimeout(),
		Retry:       c.retrySeeded(),
		Breaker:     c.Breaker,
	}
}

// Results carries everything the experiments section consumes.
type Results struct {
	World *population.World

	// Metrics is the run's telemetry registry (see docs/telemetry.md).
	Metrics *telemetry.Registry

	// Targets is the DNS-resolved measurement set; AddrDomains indexes
	// domains by address; RepDomain is the representative domain used in
	// RCPT TO for each address.
	Targets     []measure.Target
	AddrDomains map[netip.Addr][]string
	RepDomain   map[netip.Addr]string

	// Initial is the full-population measurement of October 11.
	InitialTime time.Time
	Initial     map[netip.Addr]core.Outcome

	// VulnAddrs were measured vulnerable initially; RetryAddrs were
	// inconclusive but considered re-measurable (paper: 7,212 + 721).
	VulnAddrs  []netip.Addr
	RetryAddrs []netip.Addr
	// VulnDomains maps each initially vulnerable domain to its
	// vulnerable addresses.
	VulnDomains map[string][]netip.Addr

	// Rounds is the longitudinal series; Analysis applies inference.
	Rounds   []measure.Round
	Analysis *measure.Analysis

	// Notification is the §7.7 funnel.
	Notification NotificationResult

	// Spoof holds the receiver-perspective spoofing verdicts, one per
	// world domain, when the spec enables scenario packs; ScenarioStats
	// aggregates them per pack for the misconfiguration-prevalence
	// table.
	SpoofTime     time.Time
	Spoof         []core.SpoofVerdict
	ScenarioStats []measure.ScenarioStat

	// Snapshot is the final re-resolved measurement of February 14.
	SnapshotTime time.Time
	Snapshot     map[netip.Addr]core.Outcome
}

// Run executes the complete study on a simulated clock starting at the
// paper's initial measurement date.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("study: %w", err)
	}
	world := population.Generate(cfg.Spec)
	sim := clock.NewSim(population.TInitial)
	defer sim.Close()

	rig, err := measure.NewRigFromOptions(ctx, measure.RigOptions{
		World:    world,
		Clock:    sim,
		Metrics:  cfg.Metrics,
		Faults:   cfg.faultsSeeded(),
		DNSRetry: cfg.DNSRetry,
		Trace:    cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer rig.Close()

	const trackerIP = "192.0.2.90"
	tracker := &Tracker{Net: rig.Fabric.Host(trackerIP), Addr: ":80", Clk: sim}
	if err := tracker.Start(); err != nil {
		return nil, err
	}
	defer tracker.Stop()

	res := &Results{World: world, Metrics: rig.Metrics}
	campaign, err := measure.NewCampaign(rig, cfg.campaignConfig("s01"))
	if err != nil {
		return nil, err
	}

	done := make(chan error, 1)
	clock.Go(sim, func() {
		done <- run(ctx, cfg, res, rig, campaign, tracker, trackerIP, progress)
	})
	select {
	case err := <-done:
		return res, err
	case <-ctx.Done():
		return res, ctx.Err()
	}
}

// run is the study driver; it executes on a clock-accounted goroutine.
func run(ctx context.Context, cfg Config, res *Results, rig *measure.Rig, campaign *measure.Campaign, tracker *Tracker, trackerIP string, progress func(string)) error {
	clk := rig.Clock
	world := rig.World

	// 1. Resolve every domain's mail hosts through the DNS.
	progress("resolving targets")
	var domainNames []string
	for _, d := range world.Domains {
		domainNames = append(domainNames, d.Name)
	}
	res.Targets = rig.ResolveTargets(ctx, domainNames)
	addrs, rep := measure.UniqueAddrs(res.Targets)
	res.RepDomain = rep
	res.AddrDomains = make(map[netip.Addr][]string)
	for _, t := range res.Targets {
		for _, a := range t.Addrs {
			res.AddrDomains[a] = append(res.AddrDomains[a], t.Domain)
		}
	}

	// 1b. Receiver-perspective spoofing verdict survey, when the world
	// carries scenario packs: judge every domain's SPF policy and DMARC
	// posture against a forged envelope, through the real resolution
	// path (the lookup/void budgets are consumed against the sim DNS).
	if len(cfg.Spec.Scenarios) > 0 {
		progress(fmt.Sprintf("spoofing verdict survey of %d domains", len(world.Domains)))
		res.SpoofTime = clk.Now()
		survey := &measure.SpoofSurvey{Rig: rig}
		res.Spoof = survey.Run(ctx)
		res.ScenarioStats = measure.ScenarioStats(res.Spoof)
	}

	// 2. Initial full measurement (October 11), streamed so callers can
	// checkpoint incrementally.
	progress(fmt.Sprintf("initial measurement of %d addresses", len(addrs)))
	res.InitialTime = clk.Now()
	res.Initial = make(map[netip.Addr]core.Outcome, len(addrs))
	if err := campaign.MeasureAddrsFunc(ctx, addrs, rep, func(a netip.Addr, o core.Outcome) {
		res.Initial[a] = o
		if cfg.Observe != nil {
			cfg.Observe("s01", a, o)
		}
	}); err != nil {
		return err
	}

	// 3. Select longitudinal targets.
	res.VulnDomains = make(map[string][]netip.Addr)
	for _, a := range addrs {
		out := res.Initial[a]
		switch {
		case out.Vulnerable():
			res.VulnAddrs = append(res.VulnAddrs, a)
			for _, d := range res.AddrDomains[a] {
				res.VulnDomains[d] = append(res.VulnDomains[d], a)
			}
		case out.Status == core.StatusSMTPFailure && out.FailStage != core.StageDial:
			// Reached but failed: re-measurable (the paper's 721).
			res.RetryAddrs = append(res.RetryAddrs, a)
		}
	}
	targets := append(append([]netip.Addr(nil), res.VulnAddrs...), res.RetryAddrs...)
	sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })

	// 4. Longitudinal windows with the notification event in between.
	progress(fmt.Sprintf("longitudinal measurement of %d addresses", len(targets)))
	notifier := &Notifier{
		Rig:         rig,
		Tracker:     tracker,
		TrackerAddr: trackerIP + ":80",
		SenderIP:    "198.51.100.77",
		Seed:        cfg.Spec.Seed ^ 0x707,
	}
	notified := false
	runWindow := func(start, end time.Time) error {
		// Rounds are pinned to an even grid (paper: "evenly-spaced
		// measurements every 2 days") regardless of how long each round's
		// probing takes.
		for next := start; !next.After(end); next = next.Add(cfg.interval()) {
			if d := next.Sub(clk.Now()); d > 0 {
				if err := clk.Sleep(ctx, d); err != nil {
					return err
				}
			}
			if !notified && !clk.Now().Before(population.TNotification) {
				progress("sending private notifications")
				if err := rig.Manager.Ensure(ctx, res.VulnAddrs); err != nil {
					return err
				}
				res.Notification = notifier.Notify(ctx, res.VulnDomains)
				rig.Manager.Stop(res.VulnAddrs)
				notified = true
			}
			results := make(map[netip.Addr]core.Outcome, len(targets))
			if err := campaign.MeasureAddrsFunc(ctx, targets, res.RepDomain, func(a netip.Addr, o core.Outcome) {
				results[a] = o
				if cfg.Observe != nil {
					cfg.Observe("s01", a, o)
				}
			}); err != nil {
				return err
			}
			res.Rounds = append(res.Rounds, measure.Round{Time: next, Results: results})
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		return nil
	}
	if err := runWindow(population.TLongitudinal, population.TPause); err != nil {
		return err
	}
	if err := runWindow(population.TResume, population.TEnd.Add(-24*time.Hour)); err != nil {
		return err
	}

	// 5. Final snapshot with re-resolved addresses (February 14).
	progress("final snapshot")
	if d := population.TEnd.Sub(clk.Now()); d > 0 {
		if err := clk.Sleep(ctx, d); err != nil {
			return err
		}
	}
	res.SnapshotTime = clk.Now()
	var vulnDomainNames []string
	for d := range res.VulnDomains {
		vulnDomainNames = append(vulnDomainNames, d)
	}
	sort.Strings(vulnDomainNames)
	snapTargets := rig.ResolveTargets(ctx, vulnDomainNames)
	snapAddrs, snapRep := measure.UniqueAddrs(snapTargets)
	snapCampaign, err := measure.NewCampaign(rig, cfg.campaignConfig("s02"))
	if err != nil {
		return err
	}
	res.Snapshot = make(map[netip.Addr]core.Outcome, len(snapAddrs))
	if err := snapCampaign.MeasureAddrsFunc(ctx, snapAddrs, snapRep, func(a netip.Addr, o core.Outcome) {
		res.Snapshot[a] = o
		if cfg.Observe != nil {
			cfg.Observe("s02", a, o)
		}
	}); err != nil {
		return err
	}

	// 6. Aggregate.
	progress("aggregating")
	res.Analysis = measure.Analyze(res.Rounds, targets)
	res.Notification.Finalize(res.DomainPatchedAt)
	return nil
}

// DomainPatchedAt returns the first longitudinal round time at which the
// domain measured patched (zero when it never did).
func (r *Results) DomainPatchedAt(domain string) time.Time {
	addrs := r.VulnDomains[domain]
	if len(addrs) == 0 || r.Analysis == nil {
		return time.Time{}
	}
	for i, t := range r.Analysis.Times {
		if r.Analysis.DomainStatusAt(addrs, i) == measure.DomPatched {
			return t
		}
	}
	return time.Time{}
}

// FinalDomainStatus combines the longitudinal end state with the final
// snapshot: snapshot evidence wins when conclusive (it re-resolved
// addresses and reached hosts the longitudinal probes could not — §7.2).
func (r *Results) FinalDomainStatus(domain string) measure.DomainStatus {
	addrs := r.VulnDomains[domain]
	if len(addrs) == 0 {
		return measure.DomUncertain
	}
	// Snapshot verdict.
	snapConclusive := true
	snapVulnerable := false
	for _, a := range addrs {
		o, ok := r.Snapshot[a]
		if !ok || measure.StatusOf(o) == measure.IPInconclusive {
			snapConclusive = false
			break
		}
		if measure.StatusOf(o) == measure.IPVulnerable {
			snapVulnerable = true
		}
	}
	if snapConclusive {
		if snapVulnerable {
			return measure.DomVulnerable
		}
		return measure.DomPatched
	}
	// Fall back to the last longitudinal state.
	if r.Analysis != nil && len(r.Analysis.Times) > 0 {
		return r.Analysis.DomainStatusAt(addrs, len(r.Analysis.Times)-1)
	}
	return measure.DomUncertain
}

// DomainSet returns a domain's set membership from the world.
func (r *Results) DomainSet(domain string) population.Set {
	if d := r.World.ByName[domain]; d != nil {
		return d.Sets
	}
	return 0
}
