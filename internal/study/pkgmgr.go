package study

import (
	"sort"
	"time"
)

// PackageManager models one distribution's libSPF2 patch response
// (Table 6). A zero time means the package was never patched during the
// observation period.
type PackageManager struct {
	Name string
	// CVE20314PatchedAt is when the fix for CVE-2021-20314 (the earlier
	// Jeitner et al. stack overflow) shipped.
	CVE20314PatchedAt time.Time
	// CVE33912PatchedAt is when the fix for CVE-2021-33912/33913
	// shipped. Several distributions picked up our fixes while packaging
	// the earlier CVE's patch (IncludedInEarlier).
	CVE33912PatchedAt time.Time
	// IncludedInEarlier marks distros whose CVE-2021-20314 update
	// already contained our fixes (the 0* rows of Table 6).
	IncludedInEarlier bool
	// Orphaned marks packages with no assigned maintainer — the factor
	// §7.8 identifies behind never-patching distros.
	Orphaned bool
}

// Disclosure dates for the two CVE groups.
var (
	// CVE20314Disclosed is the public disclosure of CVE-2021-20314.
	CVE20314Disclosed = time.Date(2021, 8, 11, 0, 0, 0, 0, time.UTC)
	// CVE33912Disclosed is the public disclosure of CVE-2021-33912/13.
	CVE33912Disclosed = time.Date(2022, 1, 19, 0, 0, 0, 0, time.UTC)
	// ObservationEnd bounds the "days to patch" accounting ("230+",
	// "70+" rows).
	ObservationEnd = time.Date(2022, 3, 30, 0, 0, 0, 0, time.UTC)
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// PackageManagers reproduces Table 6.
var PackageManagers = []PackageManager{
	// Debian's update coincided with the public disclosure day (§7.6).
	{Name: "Debian", CVE20314PatchedAt: date(2021, 8, 11), CVE33912PatchedAt: date(2022, 1, 19), Orphaned: true},
	{Name: "Alpine", CVE20314PatchedAt: date(2021, 8, 11), CVE33912PatchedAt: date(2022, 3, 11), Orphaned: true},
	{Name: "RedHat", CVE20314PatchedAt: date(2021, 9, 22), CVE33912PatchedAt: date(2021, 9, 22), IncludedInEarlier: true},
	{Name: "Gentoo", CVE20314PatchedAt: date(2021, 10, 25), CVE33912PatchedAt: date(2021, 10, 25), IncludedInEarlier: true, Orphaned: true},
	{Name: "Arch Linux", CVE20314PatchedAt: date(2021, 11, 22), CVE33912PatchedAt: date(2021, 11, 22), IncludedInEarlier: true},
	{Name: "Ubuntu", Orphaned: true},
	{Name: "FreeBSD Ports", Orphaned: true},
	{Name: "NetBSD", Orphaned: true},
	{Name: "SUSE Hub", Orphaned: true},
}

// DaysToPatch returns the day count between a disclosure and a patch
// date; open reports a still-unpatched package (rendered as "N+").
func DaysToPatch(disclosed, patched time.Time) (days int, open bool) {
	if patched.IsZero() {
		return int(ObservationEnd.Sub(disclosed).Hours() / 24), true
	}
	d := int(patched.Sub(disclosed).Hours() / 24)
	if d < 0 {
		d = 0 // patched before public disclosure (pre-notified)
	}
	return d, false
}

// Table6Row is one rendered row of the package-manager table.
type Table6Row struct {
	Manager      string
	CVE20314Days int
	CVE20314Open bool
	CVE20314Date time.Time
	CVE33912Days int
	CVE33912Open bool
	CVE33912Date time.Time
	IncludedStar bool
}

// Table6 computes the rows, ordered as the paper does (days between
// disclosure and patch for the earlier CVE, unpatched rows last).
func Table6() []Table6Row {
	rows := make([]Table6Row, 0, len(PackageManagers))
	for _, pm := range PackageManagers {
		r := Table6Row{Manager: pm.Name, IncludedStar: pm.IncludedInEarlier}
		r.CVE20314Days, r.CVE20314Open = DaysToPatch(CVE20314Disclosed, pm.CVE20314PatchedAt)
		r.CVE20314Date = pm.CVE20314PatchedAt
		if pm.IncludedInEarlier {
			r.CVE33912Days, r.CVE33912Open = 0, false
			r.CVE33912Date = pm.CVE33912PatchedAt
		} else {
			r.CVE33912Days, r.CVE33912Open = DaysToPatch(CVE33912Disclosed, pm.CVE33912PatchedAt)
			r.CVE33912Date = pm.CVE33912PatchedAt
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].CVE20314Open != rows[j].CVE20314Open {
			return !rows[i].CVE20314Open
		}
		return rows[i].CVE20314Days < rows[j].CVE20314Days
	})
	return rows
}

// DistroPatchDate returns when a host tracking the given distro would
// receive the libSPF2 fix for our CVEs (zero: never during the study).
func DistroPatchDate(distro string) time.Time {
	switch distro {
	case "debian":
		return date(2022, 1, 19)
	case "alpine":
		return date(2022, 3, 11) // after the measurement window
	case "redhat":
		return date(2021, 9, 22)
	case "gentoo":
		return date(2021, 10, 25)
	case "arch":
		return date(2021, 11, 22)
	default:
		return time.Time{}
	}
}
