package study_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/study"
	"spfail/internal/trace"
)

// scenarioMix is the ≥6-pack mix the scenario regressions run under.
func scenarioMix() []population.ScenarioPackRef {
	return []population.ScenarioPackRef{
		{Name: "plus-all", Weight: 0.08},
		{Name: "dangling-include", Weight: 0.08},
		{Name: "nested-include", Weight: 0.08},
		{Name: "lookup-limit-buster", Weight: 0.08},
		{Name: "void-lookup-heavy", Weight: 0.08},
		{Name: "dmarc-none-relaxed", Weight: 0.08},
		{Name: "alignment-gap", Weight: 0.08},
	}
}

// TestScenarioSameSeedProducesIdenticalReports extends the determinism
// regression to scenario-enabled runs: the spoof survey's serial DNS
// walk, the scenario prevalence table, and the per-domain scenario trace
// attributes must all replay byte-identically for the same seed.
func TestScenarioSameSeedProducesIdenticalReports(t *testing.T) {
	render := func() ([]byte, []byte, *study.Results) {
		t.Helper()
		spec := population.DefaultSpec()
		spec.Scale = 0.003
		spec.Seed = 7
		spec.Scenarios = scenarioMix()
		var traceBuf bytes.Buffer
		res, err := study.Run(context.Background(), study.Config{
			Config: measure.Config{
				Concurrency: 64,
				BatchSize:   400,
				Trace:       trace.New(&traceBuf, trace.Options{Seed: spec.Seed}),
			},
			Spec:     spec,
			Interval: 4 * 24 * time.Hour,
		})
		if err != nil {
			t.Fatalf("study run: %v", err)
		}
		var buf bytes.Buffer
		report.All(&buf, res)
		return buf.Bytes(), traceBuf.Bytes(), res
	}

	first, firstTrace, res := render()
	second, secondTrace, _ := render()
	if !bytes.Equal(first, second) {
		t.Errorf("same-seed scenario runs rendered different reports:\n--- first ---\n%s\n--- second ---\n%s",
			firstDiffContext(first, second), firstDiffContext(second, first))
	}
	if !bytes.Equal(firstTrace, secondTrace) {
		t.Errorf("same-seed scenario runs emitted different trace JSONL:\n%s",
			firstDiffContext(firstTrace, secondTrace))
	}

	// The scenario survey actually ran and its table is in the report.
	if len(res.Spoof) != len(res.World.Domains) {
		t.Fatalf("spoof verdicts = %d, want %d", len(res.Spoof), len(res.World.Domains))
	}
	if !bytes.Contains(first, []byte("Scenario prevalence")) {
		t.Error("report missing scenario prevalence table")
	}
	covered := map[string]bool{}
	for _, st := range res.ScenarioStats {
		covered[st.Scenario] = true
	}
	for _, ref := range scenarioMix() {
		if !covered[ref.Name] {
			t.Errorf("pack %s got no domains in the study world", ref.Name)
		}
	}
	if !covered["baseline"] {
		t.Error("no baseline domains left at this mix")
	}

	// Trace stream carries the new spans and attributes.
	for _, want := range []string{`"spoof.verdict"`, `"dmarc.evaluate"`, `"scenario"`} {
		if !strings.Contains(string(firstTrace), want) {
			t.Errorf("trace JSONL missing %s", want)
		}
	}

	// The scenario-off world must be byte-identical to the base: the
	// plain-run regression in determinism_test.go pins that; here we pin
	// that the scenario run keeps the same domain population.
	base := population.MustGenerate(func() population.Spec {
		s := population.DefaultSpec()
		s.Scale = 0.003
		s.Seed = 7
		return s
	}())
	if len(base.Domains) != len(res.World.Domains) {
		t.Fatalf("scenario world has %d domains, base %d", len(res.World.Domains), len(base.Domains))
	}
	for i := range base.Domains {
		if base.Domains[i].Name != res.World.Domains[i].Name {
			t.Fatalf("domain %d: %s vs %s", i, base.Domains[i].Name, res.World.Domains[i].Name)
		}
	}
}
