package study

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/smtp"
)

// NotificationResult summarizes the private-notification campaign (§7.7).
type NotificationResult struct {
	// Sent is the number of notification emails dispatched.
	Sent int
	// Bounced is how many were returned/refused (paper: 2,054 = 31.6%).
	Bounced int
	// Delivered = Sent - Bounced.
	Delivered int
	// Opened is how many loaded the tracking pixel (paper: 512 = 12%).
	Opened int
	// OpenedAndPatched is openers that patched at any point (paper: 177).
	OpenedAndPatched int
	// OpenedPatchedBetweenDisclosures is openers patching between the
	// private notification and the public disclosure (paper: 9).
	OpenedPatchedBetweenDisclosures int
	// UndeliveredPatchedBetween is non-recipients patching in the same
	// window — attributable to package updates, not to us (paper: 37).
	UndeliveredPatchedBetween int
	// PerDomain records each domain's funnel state.
	PerDomain map[string]NotificationState
}

// NotificationState is one domain's path through the funnel.
type NotificationState struct {
	Bounced  bool
	Opened   bool
	OpenedAt time.Time
}

// Notifier runs the notification campaign over the simulated network:
// one email per vulnerable domain to postmaster@<domain>, sent from a
// vantage distinct from the measurement prober, with an embedded tracking
// pixel served by Tracker.
type Notifier struct {
	Rig     *measure.Rig
	Tracker *Tracker
	// TrackerAddr is where recipients fetch pixels, e.g. "192.0.2.90:80".
	TrackerAddr string
	// SenderIP is the notification vantage (≠ probe IP, per §7.7).
	SenderIP string
	// Seed drives the bounce/open sampling.
	Seed int64
}

// Notify sends one notification per vulnerable domain. vulnDomains maps
// domain → its vulnerable addresses; domains sharing all their addresses
// with an earlier domain receive no duplicate mail (§7.7). The open
// simulation is driven by the world's notification rates, with openers
// biased toward domains that would patch anyway — matching the paper's
// observed correlation.
func (n *Notifier) Notify(ctx context.Context, vulnDomains map[string][]netip.Addr) NotificationResult {
	res := NotificationResult{PerDomain: make(map[string]NotificationState)}
	rng := rand.New(rand.NewSource(n.Seed))
	spec := n.Rig.World.Spec
	clk := n.Rig.Clock

	domains := make([]string, 0, len(vulnDomains))
	for d := range vulnDomains {
		domains = append(domains, d)
	}
	sort.Strings(domains)

	// Deduplicate by address set: one email per distinct MX footprint.
	seenFootprint := map[string]bool{}
	var toNotify []string
	for _, d := range domains {
		addrs := vulnDomains[d]
		key := footprint(addrs)
		if seenFootprint[key] {
			continue
		}
		seenFootprint[key] = true
		toNotify = append(toNotify, d)
	}

	client := &smtp.Client{
		Net:       n.Rig.Fabric.Host(n.SenderIP),
		HELO:      "notify.dns-lab.org",
		IOTimeout: 5 * time.Second,
		Clk:       clk,
	}

	for i, d := range toNotify {
		addrs := vulnDomains[d]
		res.Sent++
		st := NotificationState{}

		// Sampled hard-bounce rate models mailboxes that reject or
		// return postmaster mail; delivery failures on the wire add to
		// it naturally.
		delivered := false
		if rng.Float64() >= spec.NotificationBounceRate {
			pixelID := fmt.Sprintf("n%06d", i)
			delivered = n.deliver(ctx, client, d, addrs, pixelID)
			if delivered {
				st.Bounced = false
				// Decide whether this recipient opens the email.
				if n.shouldOpen(rng, addrs) {
					// The recipient's mail client fetches the pixel from
					// the domain's own vantage.
					from := addrs[0].String()
					if err := FetchPixel(ctx, clk, n.Rig.Fabric.Host(from), n.TrackerAddr, pixelID); err == nil {
						st.Opened = true
						st.OpenedAt = clk.Now()
					}
				}
			}
		}
		if !delivered {
			st.Bounced = true
			res.Bounced++
		}
		res.PerDomain[d] = st
	}
	res.Delivered = res.Sent - res.Bounced
	for _, st := range res.PerDomain {
		if st.Opened {
			res.Opened++
		}
	}
	return res
}

// deliver attempts the actual SMTP delivery of the notification to
// postmaster@domain via the domain's first reachable address.
func (n *Notifier) deliver(ctx context.Context, client *smtp.Client, domain string, addrs []netip.Addr, pixelID string) bool {
	if len(addrs) == 0 {
		return false
	}
	// Hosts must be running to receive mail; the campaign brings up the
	// longitudinal targets, which include every vulnerable address.
	addr := netip.AddrPortFrom(addrs[0], 25).String()
	conn, err := client.Dial(ctx, addr)
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := conn.Hello(); err != nil {
		return false
	}
	if err := conn.Mail("disclosure@notify.dns-lab.org"); err != nil {
		return false
	}
	if err := conn.Rcpt("postmaster@" + domain); err != nil {
		return false
	}
	if err := conn.Data(); err != nil {
		return false
	}
	body := notificationBody(domain, PixelURL(n.TrackerAddr, pixelID))
	r, err := conn.SendMessage([]byte(body))
	if err != nil || !r.Positive() {
		return false
	}
	conn.Quit()
	return true
}

// shouldOpen samples the open decision, biased so that recipients whose
// hosts are on a notification-window patch plan always open — reproducing
// the paper's (weak) correlation between opens and patching.
func (n *Notifier) shouldOpen(rng *rand.Rand, addrs []netip.Addr) bool {
	for _, a := range addrs {
		if h := n.Rig.World.Hosts[a]; h != nil && h.PatchVia == population.PatchNotification {
			return true
		}
	}
	return rng.Float64() < n.Rig.World.Spec.NotificationOpenRate
}

// notificationBody renders the disclosure email: multipart-style with a
// plain-text section and an HTML section embedding the tracking image,
// as §7.7 describes.
func notificationBody(domain, pixelURL string) string {
	return fmt.Sprintf(`From: SPF Vulnerability Research <disclosure@notify.dns-lab.org>
To: postmaster@%[1]s
Subject: Vulnerable libSPF2 on mail servers for %[1]s
MIME-Version: 1.0
Content-Type: multipart/alternative; boundary=BOUND

--BOUND
Content-Type: text/plain

Our measurements indicate that a mail server handling email for %[1]s
uses a version of libSPF2 containing two remotely exploitable heap
overflows (to be published as CVE-2021-33912 and CVE-2021-33913).
Please upgrade libSPF2 or switch SPF validation libraries before the
public disclosure on 2022-01-19.

--BOUND
Content-Type: text/html

<html><body><p>Our measurements indicate that a mail server handling
email for %[1]s uses a vulnerable version of libSPF2. Please patch
before the public disclosure on 2022-01-19.</p>
<img src="%[2]s" width="1" height="1" alt=""></body></html>

--BOUND--
`, domain, pixelURL)
}

// footprint canonicalizes an address set.
func footprint(addrs []netip.Addr) string {
	ss := make([]string, len(addrs))
	for i, a := range addrs {
		ss[i] = a.String()
	}
	sort.Strings(ss)
	key := ""
	for _, s := range ss {
		key += s + ","
	}
	return key
}

// Finalize computes the patch-correlation fields once the longitudinal
// analysis is available. patchedAt reports when a domain's hosts all
// patched (zero time = never).
func (r *NotificationResult) Finalize(patchedAt func(domain string) time.Time) {
	for d, st := range r.PerDomain {
		at := patchedAt(d)
		patchedEver := !at.IsZero() && !at.After(population.TEnd)
		patchedBetween := !at.IsZero() &&
			at.After(population.TNotification) && at.Before(population.TDisclosure)
		if st.Opened {
			if patchedEver {
				r.OpenedAndPatched++
			}
			if patchedBetween {
				r.OpenedPatchedBetweenDisclosures++
			}
		}
		if st.Bounced && patchedBetween {
			r.UndeliveredPatchedBetween++
		}
	}
}
