// Package study runs the complete SPFail reproduction end to end: the
// initial full-population measurement, the two-window longitudinal
// campaign, the private-notification mailing with its tracking pixel, the
// package-manager patch timeline, the final re-resolved snapshot, and the
// aggregation that yields every table and figure of the paper.
package study

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/netsim"
)

// Tracker is the minimal HTTP server that serves the notification emails'
// tracking pixel (paper §7.7). Each pixel URL embeds a unique identifier;
// a request for it is the study's evidence that the notification was
// opened.
type Tracker struct {
	Net  netsim.Network
	Addr string // listen address, e.g. ":80"
	Clk  clock.Clock
	// Timeout bounds each pixel request; 0 means 10s.
	Timeout time.Duration

	mu    sync.Mutex
	l     net.Listener
	wg    sync.WaitGroup
	opens map[string]time.Time
}

func (t *Tracker) clock() clock.Clock {
	if t.Clk != nil {
		return t.Clk
	}
	return clock.Real{}
}

func (t *Tracker) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 10 * time.Second
}

// opened1x1 is a 1×1 GIF, the classic tracking pixel.
var opened1x1 = []byte("GIF89a\x01\x00\x01\x00\x80\x00\x00\x00\x00\x00\xff\xff\xff!\xf9\x04\x01\x00\x00\x00\x00,\x00\x00\x00\x00\x01\x00\x01\x00\x00\x02\x02D\x01\x00;")

// Start binds the tracker's listener.
func (t *Tracker) Start() error {
	l, err := t.Net.Listen("tcp", t.Addr)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.l = l
	t.opens = make(map[string]time.Time)
	t.mu.Unlock()
	t.wg.Add(1)
	go t.serve(l)
	return nil
}

// Stop closes the listener and waits for in-flight requests.
func (t *Tracker) Stop() {
	t.mu.Lock()
	l := t.l
	t.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	t.wg.Wait()
}

func (t *Tracker) serve(l net.Listener) {
	defer t.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			defer c.Close()
			t.handle(c)
		}(c)
	}
}

// handle processes one HTTP request: GET /px/<id>.gif.
func (t *Tracker) handle(c net.Conn) {
	if err := c.SetDeadline(t.clock().Now().Add(t.timeout())); err != nil {
		return
	}
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	// Drain headers up to the blank line.
	for {
		h, err := br.ReadString('\n')
		if err != nil || h == "\r\n" || h == "\n" {
			break
		}
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "GET" {
		fmt.Fprintf(c, "HTTP/1.0 405 Method Not Allowed\r\nContent-Length: 0\r\n\r\n")
		return
	}
	path := fields[1]
	const prefix = "/px/"
	if !strings.HasPrefix(path, prefix) || !strings.HasSuffix(path, ".gif") {
		fmt.Fprintf(c, "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n")
		return
	}
	id := strings.TrimSuffix(strings.TrimPrefix(path, prefix), ".gif")
	now := t.clock().Now()
	t.mu.Lock()
	if _, seen := t.opens[id]; !seen {
		t.opens[id] = now
	}
	t.mu.Unlock()
	fmt.Fprintf(c, "HTTP/1.0 200 OK\r\nContent-Type: image/gif\r\nContent-Length: %d\r\n\r\n", len(opened1x1))
	_, _ = c.Write(opened1x1)
}

// Opens returns a copy of the recorded open events (id → first open time).
func (t *Tracker) Opens() map[string]time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Time, len(t.opens))
	for k, v := range t.opens {
		out[k] = v
	}
	return out
}

// PixelURL renders the tracking URL embedded in a notification.
func PixelURL(host, id string) string {
	return fmt.Sprintf("http://%s/px/%s.gif", host, id)
}

// FetchPixel performs the HTTP GET a mail client makes when rendering the
// notification — used by the simulation to "open" an email from the
// recipient host's vantage. clk supplies the deadline base; nil means the
// real clock.
func FetchPixel(ctx context.Context, clk clock.Clock, n netsim.Network, addr, id string) error {
	if clk == nil {
		clk = clock.Real{}
	}
	c, err := n.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.SetDeadline(clk.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	fmt.Fprintf(c, "GET /px/%s.gif HTTP/1.0\r\nHost: tracker\r\n\r\n", id)
	br := bufio.NewReader(c)
	status, err := br.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.Contains(status, "200") {
		return fmt.Errorf("study: tracker returned %q", strings.TrimSpace(status))
	}
	return nil
}
