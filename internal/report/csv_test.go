package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"net/netip"

	"spfail/internal/core"
	"spfail/internal/geo"
	"spfail/internal/measure"
)

func TestSeriesCSV(t *testing.T) {
	points := []measure.SeriesPoint{
		{Time: time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC),
			Measured: 10, Inferred: 12, Vulnerable: 11, Patched: 1, Uncertain: 2, Total: 14},
		{Time: time.Date(2021, 10, 28, 0, 0, 0, 0, time.UTC),
			Measured: 9, Inferred: 12, Vulnerable: 10, Patched: 2, Uncertain: 2, Total: 14},
	}
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "date,measured,inferred,vulnerable,patched,uncertain,vulnerable_rate" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2021-10-26,10,12,11,1,2,0.91") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestChoroplethCSV(t *testing.T) {
	buckets := []geo.BucketStats{
		{Lat: 52.5, Lon: 12.5, Total: 7, Patched: 3},
	}
	var buf bytes.Buffer
	if err := ChoroplethCSV(&buf, buckets); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "52.5,12.5,7,3,0.4286") {
		t.Errorf("csv = %q", out)
	}
}

// TestInconclusiveOutcomeReachesCSV walks the retry-exhaustion status
// through the full reporting path: a StatusInconclusive outcome must
// classify as an inconclusive measurement, count as uncertain in the
// domain series, and land in the rendered CSV row.
func TestInconclusiveOutcomeReachesCSV(t *testing.T) {
	a1 := netip.MustParseAddr("100.64.9.1")
	t0 := time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC)
	rounds := []measure.Round{
		{Time: t0, Results: map[netip.Addr]core.Outcome{
			a1: {Status: core.StatusInconclusive, FailReason: "retry budget exhausted", Attempts: 3},
		}},
	}
	an := measure.Analyze(rounds, []netip.Addr{a1})
	series := an.DomainSeries(map[string][]netip.Addr{"d.example": {a1}})
	if len(series) != 1 {
		t.Fatalf("series = %d points", len(series))
	}
	if series[0].Uncertain != 1 || series[0].Measured != 0 {
		t.Fatalf("inconclusive outcome classified as %+v, want 1 uncertain / 0 measured", series[0])
	}
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "2021-10-26,0,0,0,0,1") {
		t.Errorf("row = %q, want uncertain=1 and no measured/vulnerable counts", lines[1])
	}
}
