package report

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"spfail/internal/core"
)

// TestOutcomeWriterColumns pins the checkpoint CSV schema: both Attempts
// and FailReason must survive into the output for inconclusive probes.
func TestOutcomeWriterColumns(t *testing.T) {
	var buf bytes.Buffer
	ow := NewOutcomeWriter(&buf)
	if err := ow.Write("s01", netip.MustParseAddr("203.0.113.7"), core.Outcome{
		Status:   core.StatusSPFMeasured,
		Method:   core.MethodNoMsg,
		Attempts: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := ow.Write("s01", netip.MustParseAddr("203.0.113.8"), core.Outcome{
		Status:     core.StatusInconclusive,
		Attempts:   3,
		FailReason: "retry budget exhausted",
	}); err != nil {
		t.Fatal(err)
	}
	if err := ow.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "suite,addr,status,method,attempts,fail_reason" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "s01,203.0.113.7,spf-measured,NoMsg,1," {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "s01,203.0.113.8,inconclusive,,3,retry budget exhausted" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

// TestOutcomeWriterEmpty leaves an empty file when nothing was probed.
func TestOutcomeWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	ow := NewOutcomeWriter(&buf)
	if err := ow.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty writer produced %q", buf.String())
	}
}
