// Package report renders the reproduction's tables and figures as aligned
// text, in the same shape the paper presents them. The renderers are used
// by cmd/spfail-study and by the benchmark harness in the repository root.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Percent renders n/d as "12.3%", or "-" when d is zero.
func Percent(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
}

// Count renders an integer with thousands separators.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var b strings.Builder
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(c)
	}
	return b.String()
}

// Bar renders a horizontal bar of width proportional to value/max.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Series renders a labeled time series as rows of "label value bar".
type Series struct {
	Title  string
	Labels []string
	Values []float64
	// Format formats a value; nil means %.1f.
	Format func(float64) string
}

// Render writes the series with proportional bars.
func (s *Series) Render(w io.Writer) {
	format := s.Format
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.1f", v) }
	}
	max := 0.0
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if s.Title != "" {
		fmt.Fprintf(w, "%s\n", s.Title)
	}
	labelW := 0
	for _, l := range s.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range s.Values {
		label := ""
		if i < len(s.Labels) {
			label = s.Labels[i]
		}
		fmt.Fprintf(w, "  %s  %8s  %s\n", pad(label, labelW), format(v), Bar(v, max, 40))
	}
}
