package report

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/study"
)

var (
	microOnce sync.Once
	microRes  *study.Results
	microErr  error
)

func microStudy(t *testing.T) *study.Results {
	t.Helper()
	microOnce.Do(func() {
		spec := population.DefaultSpec()
		spec.Scale = 0.003
		spec.Seed = 5
		microRes, microErr = study.Run(context.Background(), study.Config{
			Config:   measure.Config{Concurrency: 64, BatchSize: 400},
			Spec:     spec,
			Interval: 5 * 24 * time.Hour,
		})
	})
	if microErr != nil {
		t.Fatalf("micro study: %v", microErr)
	}
	return microRes
}

func TestRenderAllExperiments(t *testing.T) {
	r := microStudy(t)
	var buf bytes.Buffer
	All(&buf, r)
	out := buf.String()
	for _, want := range []string{
		"Table 1:", "Table 2:", "Table 3:", "Table 4:", "Table 5:",
		"Table 6:", "Table 7:", "Figure 2:", "Figure 3:", "Figure 4",
		"Figure 5:", "Figure 6:", "Figure 7:", "Figure 8:",
		"notification funnel",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	if strings.Contains(out, "%!") {
		t.Error("format verb leak in rendered output")
	}
}

func TestRenderTable1Diagonal(t *testing.T) {
	r := microStudy(t)
	var buf bytes.Buffer
	Table1(&buf, r.World)
	out := buf.String()
	// Three diagonal cells plus Alexa1000∩AlexaTopList (a strict subset).
	if c := strings.Count(out, "(100.0%)"); c != 4 {
		t.Errorf("full-overlap cells = %d, want 4\n%s", c, out)
	}
}

func TestRenderTable6ExactRows(t *testing.T) {
	var buf bytes.Buffer
	Table6(&buf)
	out := buf.String()
	for _, want := range []string{
		"Debian", "0 (2021-08-11)", "0 (2022-01-19)",
		"Alpine", "RedHat", "0* (2021-09-22)",
		"Ubuntu", "Unpatched",
		"* Patches included in CVE-2021-20314 fix",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 6 missing %q\n%s", want, out)
		}
	}
}

func TestRenderFigureSeriesEmpty(t *testing.T) {
	var buf bytes.Buffer
	FigureSeries(&buf, "empty", nil)
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty series rendering = %q", buf.String())
	}
}

func TestRenderNotificationFunnelArithmetic(t *testing.T) {
	r := microStudy(t)
	var buf bytes.Buffer
	Notification(&buf, r)
	out := buf.String()
	if !strings.Contains(out, "Notifications sent") || !strings.Contains(out, "100%") {
		t.Errorf("funnel rendering:\n%s", out)
	}
}

func TestSetNames(t *testing.T) {
	cases := map[population.Set]string{
		population.SetAlexaTopList: "Alexa Top List",
		population.SetAlexa1000:    "Alexa 1000",
		population.SetTwoWeekMX:    "2-Week MX",
		population.SetTopProviders: "Top Email Providers",
		0:                          "All Domains",
	}
	for set, want := range cases {
		if got := setName(set); got != want {
			t.Errorf("setName(%v) = %q, want %q", set, got, want)
		}
	}
}
