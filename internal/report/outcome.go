package report

import (
	"encoding/csv"
	"io"
	"net/netip"
	"strconv"

	"spfail/internal/core"
)

// outcomeHeader is the per-probe checkpoint CSV schema. Attempts rides
// along with FailReason so inconclusive probes (retry budget exhausted,
// breaker open) are auditable from the checkpoint alone.
var outcomeHeader = []string{"suite", "addr", "status", "method", "attempts", "fail_reason"}

// OutcomeWriter streams per-probe outcomes as CSV — the incremental
// checkpoint format of spfail-study -checkpoint. The header is written
// lazily on the first record, so an empty campaign leaves an empty file.
type OutcomeWriter struct {
	cw     *csv.Writer
	headed bool
}

// NewOutcomeWriter wraps w. Call Flush when the campaign ends.
func NewOutcomeWriter(w io.Writer) *OutcomeWriter {
	return &OutcomeWriter{cw: csv.NewWriter(w)}
}

// Write appends one probe outcome row.
func (ow *OutcomeWriter) Write(suite string, addr netip.Addr, out core.Outcome) error {
	if !ow.headed {
		if err := ow.cw.Write(outcomeHeader); err != nil {
			return err
		}
		ow.headed = true
	}
	return ow.cw.Write([]string{
		suite,
		addr.String(),
		string(out.Status),
		string(out.Method),
		strconv.Itoa(out.Attempts),
		out.FailReason,
	})
}

// Flush drains buffered rows and reports the first underlying error.
func (ow *OutcomeWriter) Flush() error {
	ow.cw.Flush()
	return ow.cw.Error()
}
