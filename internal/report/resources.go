package report

import (
	"fmt"
	"io"
	"time"

	"spfail/internal/measure"
	"spfail/internal/obs"
	"spfail/internal/study"
)

// ResourceTable renders the run's per-stage resource accounting: where
// wall time, allocations, GC work, and peak RSS went. It is deliberately
// NOT part of All — resource numbers vary run to run, and All's output
// is held byte-identical across same-seed runs. Callers print this to a
// diagnostic stream (spfail-study uses stderr).
func ResourceTable(w io.Writer, r *study.Results) {
	if len(r.Resources) == 0 {
		return
	}
	t := &Table{
		Title:   "Resource usage by stage",
		Headers: []string{"Stage", "Wall", "Virtual", "Allocs", "Objects", "Heap Δ", "GC", "Peak RSS"},
	}
	var total obs.StageResources
	for _, sr := range r.Resources {
		name := sr.Stage
		if sr.Replayed {
			name += " (replayed)"
		}
		t.AddRow(name,
			Duration(sr.Wall),
			Duration(sr.Virtual),
			Bytes(int64(sr.AllocBytes)),
			Count(int(sr.AllocObjects)),
			signedBytes(sr.HeapGrowth),
			Count(int(sr.GCCycles)),
			Bytes(sr.PeakRSS))
		total.Wall += sr.Wall
		total.Virtual += sr.Virtual
		total.AllocBytes += sr.AllocBytes
		total.AllocObjects += sr.AllocObjects
		total.HeapGrowth += sr.HeapGrowth
		total.GCCycles += sr.GCCycles
		if sr.PeakRSS > total.PeakRSS {
			total.PeakRSS = sr.PeakRSS
		}
	}
	t.AddRow("total",
		Duration(total.Wall),
		Duration(total.Virtual),
		Bytes(int64(total.AllocBytes)),
		Count(int(total.AllocObjects)),
		signedBytes(total.HeapGrowth),
		Count(int(total.GCCycles)),
		Bytes(total.PeakRSS))
	t.Render(w)

	cr := r.CampaignResources
	if len(cr.Shards) == 0 {
		return
	}
	fmt.Fprintf(w, "\nCampaign: %s allocated across %s probes in %s batches\n",
		Bytes(int64(cr.AllocBytes)), Count(int(totalProbes(cr))), Count(int(cr.Batches)))
	st := &Table{
		Title:   "Probe work by shard",
		Headers: []string{"Shard", "Probes", "Busy"},
	}
	for _, s := range cr.Shards {
		st.AddRow(fmt.Sprintf("%d", s.Shard), Count(int(s.Probes)), Duration(s.Wall))
	}
	st.Render(w)
}

func totalProbes(cr measure.Resources) int64 {
	var n int64
	for _, s := range cr.Shards {
		n += s.Probes
	}
	return n
}

// Bytes renders a byte count with a binary-unit suffix.
func Bytes(n int64) string {
	neg := ""
	if n < 0 {
		neg, n = "-", -n
	}
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%s%.2f GiB", neg, float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%s%.1f MiB", neg, float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%s%.1f KiB", neg, float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%s%d B", neg, n)
	}
}

// signedBytes renders a heap delta with an explicit sign.
func signedBytes(n int64) string {
	if n > 0 {
		return "+" + Bytes(n)
	}
	return Bytes(n)
}

// Duration renders a duration at a table-friendly precision.
func Duration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fh", d.Hours())
	}
}
