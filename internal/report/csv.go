package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"spfail/internal/geo"
	"spfail/internal/measure"
)

// SeriesCSV writes a longitudinal series in CSV form for external
// plotting (the figures' underlying data).
func SeriesCSV(w io.Writer, points []measure.SeriesPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"date", "measured", "inferred", "vulnerable", "patched", "uncertain", "vulnerable_rate"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Time.Format("2006-01-02"),
			strconv.Itoa(p.Measured),
			strconv.Itoa(p.Inferred),
			strconv.Itoa(p.Vulnerable),
			strconv.Itoa(p.Patched),
			strconv.Itoa(p.Uncertain),
			fmt.Sprintf("%.4f", p.VulnerableRate()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScenarioCSV writes the misconfiguration-prevalence table as CSV.
func ScenarioCSV(w io.Writer, stats []measure.ScenarioStat) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "prevalence", "permerror_rate", "dmarc_fail_rate"}); err != nil {
		return err
	}
	total := 0
	for _, s := range stats {
		total += s.Domains
	}
	rate := func(n, d int) string {
		if d == 0 {
			return "0.0000"
		}
		return fmt.Sprintf("%.4f", float64(n)/float64(d))
	}
	for _, s := range stats {
		rec := []string{
			s.Scenario,
			rate(s.Domains, total),
			rate(s.PermError, s.Domains),
			rate(s.DMARCFail, s.Domains),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ChoroplethCSV writes geographic bucket data (Figure 3) as CSV.
func ChoroplethCSV(w io.Writer, buckets []geo.BucketStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lat", "lon", "vulnerable", "patched", "patch_rate"}); err != nil {
		return err
	}
	for _, b := range buckets {
		rec := []string{
			fmt.Sprintf("%.1f", b.Lat),
			fmt.Sprintf("%.1f", b.Lon),
			strconv.Itoa(b.Total),
			strconv.Itoa(b.Patched),
			fmt.Sprintf("%.4f", b.PatchRate()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
