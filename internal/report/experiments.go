package report

import (
	"fmt"
	"io"

	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/study"
)

// setName renders a set label like the paper's column heads.
func setName(s population.Set) string {
	switch s {
	case population.SetAlexaTopList:
		return "Alexa Top List"
	case population.SetAlexa1000:
		return "Alexa 1000"
	case population.SetTwoWeekMX:
		return "2-Week MX"
	case population.SetTopProviders:
		return "Top Email Providers"
	case 0:
		return "All Domains"
	default:
		return s.String()
	}
}

// Table1 renders the domain-set overlap matrix.
func Table1(w io.Writer, world *population.World) {
	cells := study.Table1(world)
	sets := []population.Set{population.SetTwoWeekMX, population.SetAlexa1000, population.SetAlexaTopList}
	t := &Table{
		Title:   "Table 1: Overlap in domain measurement sets",
		Headers: []string{"Domain Set", setName(sets[0]), setName(sets[1]), setName(sets[2])},
	}
	byRow := map[population.Set]map[population.Set]int{}
	diag := map[population.Set]int{}
	for _, c := range cells {
		if byRow[c.Row] == nil {
			byRow[c.Row] = map[population.Set]int{}
		}
		byRow[c.Row][c.Col] = c.Count
		if c.Row == c.Col {
			diag[c.Row] = c.Count
		}
	}
	for _, row := range sets {
		cellsOut := []string{setName(row)}
		for _, col := range sets {
			n := byRow[row][col]
			cellsOut = append(cellsOut, fmt.Sprintf("%s (%s)", Count(n), Percent(n, diag[row])))
		}
		t.AddRow(cellsOut...)
	}
	t.Render(w)
}

// Table2 renders the most common TLDs for both sets side by side.
func Table2(w io.Writer, world *population.World, n int) {
	alexa := study.Table2(world, population.SetAlexaTopList, n)
	twoWeek := study.Table2(world, population.SetTwoWeekMX, n)
	t := &Table{
		Title:   "Table 2: Most common TLDs",
		Headers: []string{"Alexa TLD", "Count", "2-Week MX TLD", "Count"},
	}
	for i := 0; i < n; i++ {
		var c [4]string
		if i < len(alexa) {
			c[0], c[1] = alexa[i].TLD, Count(alexa[i].Count)
		}
		if i < len(twoWeek) {
			c[2], c[3] = twoWeek[i].TLD, Count(twoWeek[i].Count)
		}
		t.AddRow(c[0], c[1], c[2], c[3])
	}
	t.Render(w)
}

// Table3 renders the probe outcome funnel for the given sets.
func Table3(w io.Writer, r *study.Results, sets ...population.Set) {
	t := &Table{
		Title:   "Table 3: NoMsg/BlankMsg test outcomes by domain set",
		Headers: []string{"Outcome", "", ""},
	}
	t.Headers = []string{"Outcome"}
	funnels := make([]study.Funnel, len(sets))
	for i, s := range sets {
		funnels[i] = study.Table3(r, s)
		t.Headers = append(t.Headers, setName(s)+" Addrs", setName(s)+" Doms")
	}
	row := func(label string, addr func(study.Funnel) (int, int), dom func(study.Funnel) (int, int)) {
		cells := []string{label}
		for _, f := range funnels {
			n, d := addr(f)
			cells = append(cells, fmt.Sprintf("%s (%s)", Count(n), Percent(n, d)))
			if dom != nil {
				n, d = dom(f)
				cells = append(cells, fmt.Sprintf("%s (%s)", Count(n), Percent(n, d)))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	row("Total Tested",
		func(f study.Funnel) (int, int) { return f.Addresses, f.Addresses },
		func(f study.Funnel) (int, int) { return f.Domains, f.Domains })
	row("Connection Refused",
		func(f study.Funnel) (int, int) { return f.AddrRefused, f.Addresses },
		func(f study.Funnel) (int, int) { return f.DomRefused, f.Domains })
	row("NoMsg Test",
		func(f study.Funnel) (int, int) { return f.AddrNoMsgRun, f.Addresses },
		nil)
	row("  SMTP Failure",
		func(f study.Funnel) (int, int) { return f.AddrNoMsgSMTPFail, f.AddrNoMsgRun },
		func(f study.Funnel) (int, int) { return f.DomSMTPFailure, f.Domains })
	row("  SPF Measured",
		func(f study.Funnel) (int, int) { return f.AddrNoMsgMeasured, f.AddrNoMsgRun },
		nil)
	row("  SPF Not Measured",
		func(f study.Funnel) (int, int) { return f.AddrNoMsgNotMeas, f.AddrNoMsgRun },
		nil)
	row("BlankMsg Test",
		func(f study.Funnel) (int, int) { return f.AddrBlankRun, f.Addresses },
		nil)
	row("  SMTP Failure",
		func(f study.Funnel) (int, int) { return f.AddrBlankSMTPFail, f.AddrBlankRun },
		nil)
	row("  SPF Measured",
		func(f study.Funnel) (int, int) { return f.AddrBlankMeasured, f.AddrBlankRun },
		nil)
	row("  SPF Not Measured",
		func(f study.Funnel) (int, int) { return f.AddrBlankNotMeas, f.AddrBlankRun },
		nil)
	row("Total SPF Measured",
		func(f study.Funnel) (int, int) { return f.AddrTotalMeasured, f.Addresses },
		func(f study.Funnel) (int, int) { return f.DomMeasured, f.Domains })
	t.Render(w)
}

// Table4 renders the initial vulnerability breakdown.
func Table4(w io.Writer, r *study.Results) {
	t := &Table{
		Title:   "Table 4: SPF initial results breakdown (by IP address)",
		Headers: []string{"Set", "SPF Measured", "Vulnerable", "Other Erroneous", "Compliant", "Doms Measured", "Doms Vulnerable"},
	}
	for _, set := range []population.Set{0, population.SetAlexaTopList, population.SetTwoWeekMX} {
		b := study.Table4(r, set)
		t.AddRow(setName(set),
			Count(b.Measured),
			fmt.Sprintf("%s (%s)", Count(b.Vulnerable), Percent(b.Vulnerable, b.Measured)),
			fmt.Sprintf("%s (%s)", Count(b.ErroneousOther), Percent(b.ErroneousOther, b.Measured)),
			fmt.Sprintf("%s (%s)", Count(b.Compliant), Percent(b.Compliant, b.Measured)),
			Count(b.DomainsMeasured),
			fmt.Sprintf("%s (%s)", Count(b.DomainsVulnerable), Percent(b.DomainsVulnerable, b.DomainsMeasured)))
	}
	t.Render(w)
}

// Table5 renders best/worst TLD patch rates.
func Table5(w io.Writer, r *study.Results, minVulnerable, topBottom int) {
	rows := study.Table5(r, minVulnerable)
	t := &Table{
		Title:   fmt.Sprintf("Table 5: Best/worst patch rates for TLDs with ≥%d initially vulnerable domains", minVulnerable),
		Headers: []string{"TLD", "# Patched", "# Initially Vulnerable", "% Patched"},
	}
	emit := func(row study.TLDPatch) {
		t.AddRow("."+row.TLD, Count(row.Patched), Count(row.Vulnerable), Percent(row.Patched, row.Vulnerable))
	}
	if len(rows) <= 2*topBottom {
		for _, row := range rows {
			emit(row)
		}
	} else {
		for _, row := range rows[:topBottom] {
			emit(row)
		}
		t.AddRow("...", "", "", "")
		for _, row := range rows[len(rows)-topBottom:] {
			emit(row)
		}
	}
	t.Render(w)
}

// Table6 renders the package-manager patch timeline.
func Table6(w io.Writer) {
	t := &Table{
		Title:   "Table 6: Patch timeline for package managers (days from disclosure to patch)",
		Headers: []string{"Package Manager", "CVE-2021-20314", "CVE-2021-33912/13"},
	}
	for _, row := range study.Table6() {
		c1 := fmt.Sprintf("%d (%s)", row.CVE20314Days, row.CVE20314Date.Format("2006-01-02"))
		if row.CVE20314Open {
			c1 = fmt.Sprintf("%d+ (Unpatched)", row.CVE20314Days)
		}
		c2 := fmt.Sprintf("%d (%s)", row.CVE33912Days, row.CVE33912Date.Format("2006-01-02"))
		if row.IncludedStar {
			c2 = fmt.Sprintf("0* (%s)", row.CVE33912Date.Format("2006-01-02"))
		}
		if row.CVE33912Open {
			c2 = fmt.Sprintf("%d+ (Unpatched)", row.CVE33912Days)
		}
		t.AddRow(row.Manager, c1, c2)
	}
	t.Render(w)
	fmt.Fprintln(w, "  * Patches included in CVE-2021-20314 fix")
}

// Table7 renders the macro-expansion behaviour taxonomy.
func Table7(w io.Writer, r *study.Results) {
	res := study.Table7(r)
	t := &Table{
		Title:   "Table 7: Behaviors in SPF macro expansion by IP address",
		Headers: []string{"Behavior", "Count", "% of Measured"},
	}
	for _, row := range res.Rows {
		t.AddRow(string(row.Class), Count(row.Count), Percent(row.Count, res.TotalMeasured))
	}
	t.AddRow("≥2 distinct patterns", Count(res.MultiplePatterns), Percent(res.MultiplePatterns, res.TotalMeasured))
	t.Render(w)
}

// Figure2 renders the final patched/vulnerable/unknown split.
func Figure2(w io.Writer, r *study.Results) {
	t := &Table{
		Title:   "Figure 2: Final vulnerability distribution of initially vulnerable domains (Feb 2022)",
		Headers: []string{"Set", "Patched", "Vulnerable", "Unknown"},
	}
	for _, fs := range study.Figure2(r) {
		total := fs.Patched + fs.Vulnerable + fs.Unknown
		t.AddRow(setName(fs.Set),
			fmt.Sprintf("%s (%s)", Count(fs.Patched), Percent(fs.Patched, total)),
			fmt.Sprintf("%s (%s)", Count(fs.Vulnerable), Percent(fs.Vulnerable, total)),
			fmt.Sprintf("%s (%s)", Count(fs.Unknown), Percent(fs.Unknown, total)))
	}
	t.Render(w)
}

// Figure3 renders the geographic distributions as per-country tables (the
// text stand-in for the choropleth maps).
func Figure3(w io.Writer, r *study.Results, topN int) {
	_, countries := study.Figure3(r, 5)
	t := &Table{
		Title:   "Figure 3: Geographic distribution of vulnerable (a) and patched (b) addresses",
		Headers: []string{"Country", "Vulnerable IPs", "Patched IPs", "Patch Rate"},
	}
	for i, c := range countries {
		if i >= topN {
			break
		}
		t.AddRow(c.Country, Count(c.Total), Count(c.Patched), Percent(c.Patched, c.Total))
	}
	t.Render(w)
}

// Figure4 renders the rank-bucket distribution.
func Figure4(w io.Writer, r *study.Results, set population.Set) {
	buckets := study.Figure4(r, set, 20)
	max := 0.0
	for _, b := range buckets {
		if float64(b.Vulnerable) > max {
			max = float64(b.Vulnerable)
		}
	}
	fmt.Fprintf(w, "Figure 4 (%s): vulnerable and (patched) domains by rank bucket\n", setName(set))
	for _, b := range buckets {
		fmt.Fprintf(w, "  bucket %2d  %5d (%4d patched)  %s\n",
			b.Index+1, b.Vulnerable, b.Patched, Bar(float64(b.Vulnerable), max, 40))
	}
}

// FigureSeries renders a longitudinal series: conclusive counts (Figures
// 5/8) and the vulnerable rate (Figures 6/7).
func FigureSeries(w io.Writer, title string, points []measure.SeriesPoint) {
	fmt.Fprintf(w, "%s\n", title)
	if len(points) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	fmt.Fprintf(w, "  %-12s %9s %9s %9s %9s %8s\n",
		"date", "measured", "inferred", "vuln", "patched", "rate")
	for _, p := range points {
		fmt.Fprintf(w, "  %-12s %9d %9d %9d %9d %7.1f%%  %s\n",
			p.Time.Format("2006-01-02"), p.Measured, p.Inferred,
			p.Vulnerable, p.Patched, 100*p.VulnerableRate(),
			Bar(p.VulnerableRate(), 1, 30))
	}
}

// Notification renders the §7.7 funnel.
func Notification(w io.Writer, r *study.Results) {
	n := r.Notification
	t := &Table{
		Title:   "Private notification funnel (§7.7)",
		Headers: []string{"Stage", "Count", "Share"},
	}
	t.AddRow("Notifications sent", Count(n.Sent), "100%")
	t.AddRow("Returned undelivered", Count(n.Bounced), Percent(n.Bounced, n.Sent))
	t.AddRow("Delivered", Count(n.Delivered), Percent(n.Delivered, n.Sent))
	t.AddRow("Opened (tracking pixel)", Count(n.Opened), Percent(n.Opened, n.Delivered))
	t.AddRow("Opened and eventually patched", Count(n.OpenedAndPatched), Percent(n.OpenedAndPatched, n.Opened))
	t.AddRow("Opened, patched before disclosure", Count(n.OpenedPatchedBetweenDisclosures), Percent(n.OpenedPatchedBetweenDisclosures, n.Opened))
	t.AddRow("Undelivered but patched before disclosure", Count(n.UndeliveredPatchedBetween), Percent(n.UndeliveredPatchedBetween, n.Bounced))
	t.Render(w)
}

// PatchTiming renders the when-did-patching-happen breakdown behind the
// paper's §7.6/§7.7 conclusions.
func PatchTiming(w io.Writer, r *study.Results) {
	pt := study.PatchTimingBreakdown(r)
	t := &Table{
		Title:   "Patch timing of initially vulnerable domains (first measured patched)",
		Headers: []string{"Window", "Domains", "Share"},
	}
	t.AddRow("Before private notification (proactive)", Count(pt.PreNotification), Percent(pt.PreNotification, pt.Total))
	t.AddRow("Between private and public disclosure", Count(pt.BetweenDisclosures), Percent(pt.BetweenDisclosures, pt.Total))
	t.AddRow("After public disclosure", Count(pt.PostDisclosure), Percent(pt.PostDisclosure, pt.Total))
	t.AddRow("Final snapshot only", Count(pt.SnapshotOnly), Percent(pt.SnapshotOnly, pt.Total))
	t.AddRow("Never (still vulnerable/unknown)", Count(pt.Never), Percent(pt.Never, pt.Total))
	t.Render(w)
}

// ScenarioTable renders the misconfiguration-prevalence table: how each
// scenario pack's domains fare against a forged envelope — the share of
// the population they are, how often their SPF policy dies in permerror,
// how often DMARC fails to block the forgery, and how often the spoof is
// outright deliverable.
func ScenarioTable(w io.Writer, r *study.Results) {
	stats := r.ScenarioStats
	total := 0
	for _, s := range stats {
		total += s.Domains
	}
	t := &Table{
		Title:   "Scenario prevalence and spoofing verdicts",
		Headers: []string{"Scenario", "Domains", "Prevalence", "PermError rate", "DMARC fail rate", "Spoof delivered"},
	}
	for _, s := range stats {
		t.AddRow(s.Scenario, Count(s.Domains), Percent(s.Domains, total),
			Percent(s.PermError, s.Domains), Percent(s.DMARCFail, s.Domains),
			Percent(s.Delivered, s.Domains))
	}
	t.Render(w)
}

// All renders every table and figure to w.
func All(w io.Writer, r *study.Results) {
	Table1(w, r.World)
	fmt.Fprintln(w)
	Table2(w, r.World, 15)
	fmt.Fprintln(w)
	Table3(w, r, population.SetAlexaTopList, population.SetTwoWeekMX, population.SetTopProviders)
	fmt.Fprintln(w)
	Table4(w, r)
	fmt.Fprintln(w)
	Table5(w, r, 5, 5)
	fmt.Fprintln(w)
	Table6(w)
	fmt.Fprintln(w)
	Table7(w, r)
	fmt.Fprintln(w)
	Figure2(w, r)
	fmt.Fprintln(w)
	Figure3(w, r, 15)
	fmt.Fprintln(w)
	Figure4(w, r, population.SetAlexaTopList)
	fmt.Fprintln(w)
	Figure4(w, r, population.SetTwoWeekMX)
	fmt.Fprintln(w)
	FigureSeries(w, "Figure 5: conclusive results over time (all initially vulnerable domains)", study.SetSeries(r, 0))
	fmt.Fprintln(w)
	FigureSeries(w, "Figure 6: first-window vulnerability rates (Alexa Top List)",
		study.WindowSeries(study.SetSeries(r, population.SetAlexaTopList), population.TLongitudinal, population.TPause))
	fmt.Fprintln(w)
	FigureSeries(w, "Figure 7: full-period vulnerability rates (Alexa Top List)", study.SetSeries(r, population.SetAlexaTopList))
	fmt.Fprintln(w)
	FigureSeries(w, "Figure 7b: full-period vulnerability rates (2-Week MX)", study.SetSeries(r, population.SetTwoWeekMX))
	fmt.Fprintln(w)
	FigureSeries(w, "Figure 8: conclusive results over time (Alexa Top 1000)", study.SetSeries(r, population.SetAlexa1000))
	fmt.Fprintln(w)
	Notification(w, r)
	fmt.Fprintln(w)
	PatchTiming(w, r)
	// Scenario-off runs emit byte-identical output to previous releases:
	// the table only appears when a scenario mix produced stats.
	if len(r.ScenarioStats) > 0 {
		fmt.Fprintln(w)
		ScenarioTable(w, r)
	}
}
