package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Headers: []string{"Name", "Value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("much-longer-name", "22,222")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  ---") {
		t.Errorf("separator = %q", lines[2])
	}
	// Value column should start at the same offset on each row.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22,222")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestPercent(t *testing.T) {
	cases := []struct {
		n, d int
		want string
	}{
		{1, 2, "50.0%"},
		{0, 10, "0.0%"},
		{10, 10, "100.0%"},
		{1, 0, "-"},
		{316, 1000, "31.6%"},
	}
	for _, c := range cases {
		if got := Percent(c.n, c.d); got != c.want {
			t.Errorf("Percent(%d,%d) = %q, want %q", c.n, c.d, got, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{418842, "418,842"},
		{1234567, "1,234,567"},
		{-5, "-5"},
	}
	for _, c := range cases {
		if got := Count(c.n); got != c.want {
			t.Errorf("Count(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar(5,10,10) = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("overflow bar = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("zero-max bar = %q", got)
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Errorf("zero bar = %q", got)
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{
		Title:  "rates",
		Labels: []string{"2021-10-26", "2021-11-15"},
		Values: []float64{1.0, 0.5},
	}
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "rates\n") {
		t.Errorf("series title missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The full value's bar should be longer than the half value's.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
}
