package spf

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// MacroLetter identifies a macro variable (RFC 7208 §7.2).
type MacroLetter byte

// The macro letters. Lowercase only; URL escaping is carried separately.
const (
	MacroSender       MacroLetter = 's' // sender email address
	MacroLocalPart    MacroLetter = 'l' // local-part of sender
	MacroSenderDomain MacroLetter = 'o' // domain of sender
	MacroDomain       MacroLetter = 'd' // current domain under test
	MacroIP           MacroLetter = 'i' // client IP, dot-format
	MacroPTRDomain    MacroLetter = 'p' // validated reverse domain of IP
	MacroIPVersion    MacroLetter = 'v' // "in-addr" or "ip6"
	MacroHELO         MacroLetter = 'h' // HELO/EHLO identity
	MacroSMTPClientIP MacroLetter = 'c' // exp only: readable client IP
	MacroReceiver     MacroLetter = 'r' // exp only: receiving host domain
	MacroTimestamp    MacroLetter = 't' // exp only: unix timestamp
)

// MacroToken is one element of a tokenized macro-string: either a literal
// run of bytes or a macro expansion spec.
type MacroToken struct {
	// Literal holds raw text when IsMacro is false.
	Literal string
	IsMacro bool
	// Macro fields (valid when IsMacro):
	Letter    MacroLetter
	URLEscape bool   // uppercase letter form
	Digits    int    // 0 = keep all labels
	Reverse   bool   // 'r' transformer
	Delims    string // split delimiters; "" means "."
}

// TokenizeMacroString splits a macro-string into tokens, handling the %%,
// %_, and %- literal escapes. It is exported because the deliberately buggy
// expanders in internal/spfimpl share this front end with the compliant one.
func TokenizeMacroString(s string) ([]MacroToken, error) {
	var out []MacroToken
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			out = append(out, MacroToken{Literal: lit.String()})
			lit.Reset()
		}
	}
	for i := 0; i < len(s); {
		c := s[i]
		if c != '%' {
			lit.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(s) {
			return nil, &SyntaxError{Term: s, Msg: "trailing %"}
		}
		switch s[i+1] {
		case '%':
			lit.WriteByte('%')
			i += 2
		case '_':
			lit.WriteByte(' ')
			i += 2
		case '-':
			lit.WriteString("%20")
			i += 2
		case '{':
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				return nil, &SyntaxError{Term: s, Msg: "unterminated macro"}
			}
			tok, err := parseMacroBody(s[i+2 : i+end])
			if err != nil {
				return nil, err
			}
			flush()
			out = append(out, tok)
			i += end + 1
		default:
			return nil, &SyntaxError{Term: s, Msg: fmt.Sprintf("bad macro escape %%%c", s[i+1])}
		}
	}
	flush()
	return out, nil
}

// parseMacroBody parses the inside of %{...}: letter, digits, 'r', delims.
func parseMacroBody(body string) (MacroToken, error) {
	if body == "" {
		return MacroToken{}, &SyntaxError{Msg: "empty macro"}
	}
	tok := MacroToken{IsMacro: true}
	c := body[0]
	lower := c | 0x20
	switch MacroLetter(lower) {
	case MacroSender, MacroLocalPart, MacroSenderDomain, MacroDomain, MacroIP,
		MacroPTRDomain, MacroIPVersion, MacroHELO, MacroSMTPClientIP,
		MacroReceiver, MacroTimestamp:
		tok.Letter = MacroLetter(lower)
	default:
		return MacroToken{}, &SyntaxError{Msg: fmt.Sprintf("unknown macro letter %q", c)}
	}
	tok.URLEscape = c >= 'A' && c <= 'Z'
	rest := body[1:]
	// digits
	j := 0
	for j < len(rest) && isDigit(rest[j]) {
		j++
	}
	if j > 0 {
		n := 0
		for _, d := range rest[:j] {
			n = n*10 + int(d-'0')
			if n > 128 {
				n = 128 // clamp; no name has more labels
			}
		}
		if n == 0 {
			return MacroToken{}, &SyntaxError{Msg: "macro digit transformer of 0"}
		}
		tok.Digits = n
	}
	rest = rest[j:]
	if strings.HasPrefix(rest, "r") || strings.HasPrefix(rest, "R") {
		tok.Reverse = true
		rest = rest[1:]
	}
	for _, d := range rest {
		switch d {
		case '.', '-', '+', ',', '/', '_', '=':
			tok.Delims += string(d)
		default:
			return MacroToken{}, &SyntaxError{Msg: fmt.Sprintf("bad macro delimiter %q", d)}
		}
	}
	return tok, nil
}

// MacroEnv carries the per-transaction values that macros expand to.
type MacroEnv struct {
	// Sender is the MAIL FROM address ("user@example.com"). When the
	// local part is empty, "postmaster" is used per RFC 7208 §4.3.
	Sender string
	// Domain is the domain whose policy is being evaluated (changes
	// across include/redirect).
	Domain string
	// IP is the SMTP client address.
	IP netip.Addr
	// HELO is the HELO/EHLO identity.
	HELO string
	// Receiver is the receiving MTA's domain (exp text only).
	Receiver string
	// Now supplies %{t}; nil means time.Now.
	Now func() time.Time
	// LookupPTR supplies %{p} validation; nil degrades to "unknown".
	LookupPTR func(ctx context.Context, addr netip.Addr) ([]string, error)
}

// LocalPart returns the sender's local part, defaulting to "postmaster".
func (e *MacroEnv) LocalPart() string {
	if i := strings.LastIndexByte(e.Sender, '@'); i > 0 {
		return e.Sender[:i]
	}
	return "postmaster"
}

// SenderDomain returns the domain of the sender address, falling back to
// the HELO identity when the sender has no domain.
func (e *MacroEnv) SenderDomain() string {
	if i := strings.LastIndexByte(e.Sender, '@'); i >= 0 && i+1 < len(e.Sender) {
		return e.Sender[i+1:]
	}
	return e.HELO
}

// MacroExpander turns a macro-string into a target domain (or exp text).
// The compliant implementation is Expander; internal/spfimpl supplies the
// non-compliant and vulnerable variants observed in the wild.
type MacroExpander interface {
	// Expand evaluates the macro-string. forExp enables the exp-only
	// macros (c, r, t).
	Expand(ctx context.Context, macroStr string, env *MacroEnv, forExp bool) (string, error)
}

// Expander is the RFC 7208-compliant macro expander.
type Expander struct{}

// Expand implements MacroExpander. Macro-free specs are returned as-is;
// everything else expands through a pooled arena, so the only allocation on
// the hot path is the result string itself.
func (Expander) Expand(ctx context.Context, macroStr string, env *MacroEnv, forExp bool) (string, error) {
	if !strings.Contains(macroStr, "%") {
		return macroStr, nil
	}
	sc := macroScratchPool.Get().(*macroScratch)
	//spfail:allow poolhygiene arena is scrubbed on Put, so the checked-out buf is already truncated; this reuses its capacity
	b, err := appendMacroString(sc.buf[:0], sc, ctx, macroStr, env, forExp)
	var out string
	if err == nil {
		out = string(b)
	}
	sc.buf = b // recapture the possibly-grown backing array before scrubbing
	sc.scrub()
	macroScratchPool.Put(sc)
	return out, err
}

// MacroValue returns the raw (untransformed) value of a macro letter.
func MacroValue(ctx context.Context, letter MacroLetter, env *MacroEnv, forExp bool) (string, error) {
	switch letter {
	case MacroSender:
		if strings.Contains(env.Sender, "@") {
			return env.Sender, nil
		}
		return "postmaster@" + env.SenderDomain(), nil
	case MacroLocalPart:
		return env.LocalPart(), nil
	case MacroSenderDomain:
		return env.SenderDomain(), nil
	case MacroDomain:
		return env.Domain, nil
	case MacroIP:
		return dotFormatIP(env.IP), nil
	case MacroIPVersion:
		if env.IP.Is4() {
			return "in-addr", nil
		}
		return "ip6", nil
	case MacroHELO:
		return env.HELO, nil
	case MacroPTRDomain:
		return validatedPTRDomain(ctx, env), nil
	case MacroSMTPClientIP, MacroReceiver, MacroTimestamp:
		if !forExp {
			return "", &SyntaxError{Msg: fmt.Sprintf("macro %%{%c} is only valid in exp text", letter)}
		}
		switch letter {
		case MacroSMTPClientIP:
			return env.IP.String(), nil
		case MacroReceiver:
			return env.Receiver, nil
		default:
			// Envelopes built by the simulator always carry a clocked
			// Now; the fallback only serves real-Internet use.
			now := time.Now //spfail:allow wallclock RFC 7208 %{t} fallback when the envelope has no clock
			if env.Now != nil {
				now = env.Now
			}
			return fmt.Sprintf("%d", now().Unix()), nil
		}
	}
	return "", &SyntaxError{Msg: "unknown macro letter"}
}

// ApplyTransformers applies the digit/reverse/delimiter transformations of
// a macro token to a raw value (RFC 7208 §7.3): split on the delimiters,
// optionally reverse, keep the right-most Digits parts, rejoin with dots.
func ApplyTransformers(raw string, t MacroToken) string {
	delims := t.Delims
	if delims == "" {
		delims = "."
	}
	parts := strings.FieldsFunc(raw, func(r rune) bool {
		return strings.ContainsRune(delims, r)
	})
	if len(parts) == 0 {
		parts = []string{raw}
	}
	if t.Reverse {
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
	}
	if t.Digits > 0 && t.Digits < len(parts) {
		parts = parts[len(parts)-t.Digits:]
	}
	return strings.Join(parts, ".")
}

// URLEscape percent-encodes everything outside the RFC 3986 unreserved
// set, as uppercase macro letters require.
func URLEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if isAlpha(c) || isDigit(c) || c == '-' || c == '.' || c == '_' || c == '~' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// dotFormatIP renders an address for %{i}: dotted quad for IPv4, dotted
// nibbles for IPv6 (RFC 7208 §7.3).
func dotFormatIP(a netip.Addr) string {
	if !a.IsValid() {
		return "invalid"
	}
	if a.Is4() || a.Is4In6() {
		return a.Unmap().String()
	}
	const hex = "0123456789abcdef"
	b16 := a.As16()
	out := make([]byte, 0, 63)
	for i, by := range b16 {
		if i > 0 {
			out = append(out, '.')
		}
		out = append(out, hex[by>>4], '.', hex[by&0xF])
	}
	return string(out)
}

// validatedPTRDomain performs the %{p} procedure: reverse-resolve the IP
// and return a PTR target that forward-resolves back to the IP; "unknown"
// otherwise.
func validatedPTRDomain(ctx context.Context, env *MacroEnv) string {
	if env.LookupPTR == nil || !env.IP.IsValid() {
		return "unknown"
	}
	names, err := env.LookupPTR(ctx, env.IP)
	if err != nil || len(names) == 0 {
		return "unknown"
	}
	// The full forward-confirmation is performed by the evaluator for the
	// ptr mechanism; for the macro we accept the first PTR target, per
	// the "use the first one" latitude of §7.3.
	return strings.TrimSuffix(names[0], ".")
}
