package spf

import (
	"fmt"
	"net/netip"
	"strings"
)

// MechanismKind identifies one of the eight RFC 7208 mechanisms.
type MechanismKind string

// The mechanisms of RFC 7208 §5.
const (
	MechAll     MechanismKind = "all"
	MechInclude MechanismKind = "include"
	MechA       MechanismKind = "a"
	MechMX      MechanismKind = "mx"
	MechPTR     MechanismKind = "ptr"
	MechIP4     MechanismKind = "ip4"
	MechIP6     MechanismKind = "ip6"
	MechExists  MechanismKind = "exists"
)

// NeedsDNS reports whether evaluating the mechanism consumes one of the
// ten permitted DNS-querying terms (RFC 7208 §4.6.4).
func (k MechanismKind) NeedsDNS() bool {
	switch k {
	case MechInclude, MechA, MechMX, MechPTR, MechExists:
		return true
	}
	return false
}

// Mechanism is one directive in a policy.
type Mechanism struct {
	Qualifier Qualifier
	Kind      MechanismKind
	// Domain is the domain-spec (possibly containing macros). Empty for
	// a/mx/ptr means "use the current domain".
	Domain string
	// IP and Prefix4/Prefix6 depend on the kind: ip4/ip6 carry IP and one
	// prefix; a/mx carry the dual-CIDR lengths applied to resolved
	// addresses.
	IP      netip.Addr
	Prefix4 int // -1 when unspecified
	Prefix6 int // -1 when unspecified

	// str is the pre-rendered record syntax, filled for records that pass
	// through the Checker's parse memo so the hot path's matched-mechanism
	// String() call costs nothing. Empty on hand-built mechanisms.
	str string
}

// String renders the mechanism in record syntax.
func (m Mechanism) String() string {
	if m.str != "" {
		return m.str
	}
	return m.render()
}

func (m Mechanism) render() string {
	var b strings.Builder
	if m.Qualifier != QPass {
		b.WriteByte(byte(m.Qualifier))
	}
	b.WriteString(string(m.Kind))
	switch m.Kind {
	case MechIP4:
		fmt.Fprintf(&b, ":%s", m.IP)
		if m.Prefix4 >= 0 {
			fmt.Fprintf(&b, "/%d", m.Prefix4)
		}
	case MechIP6:
		fmt.Fprintf(&b, ":%s", m.IP)
		if m.Prefix6 >= 0 {
			fmt.Fprintf(&b, "/%d", m.Prefix6)
		}
	default:
		if m.Domain != "" {
			fmt.Fprintf(&b, ":%s", m.Domain)
		}
		if m.Prefix4 >= 0 {
			fmt.Fprintf(&b, "/%d", m.Prefix4)
		}
		if m.Prefix6 >= 0 {
			fmt.Fprintf(&b, "//%d", m.Prefix6)
		}
	}
	return b.String()
}

// Modifier is a name=value term (redirect, exp, or unknown).
type Modifier struct {
	Name  string // lower-cased
	Value string // macro-string, unexpanded
}

// String renders the modifier in record syntax.
func (m Modifier) String() string { return m.Name + "=" + m.Value }

// Record is a parsed SPF policy.
type Record struct {
	// Mechanisms in evaluation order.
	Mechanisms []Mechanism
	// Redirect is the redirect= modifier value, if present.
	Redirect string
	// Exp is the exp= modifier value, if present.
	Exp string
	// Unknown preserves unrecognized modifiers (ignored per RFC 7208
	// §6, but kept for round-tripping and diagnostics).
	Unknown []Modifier
}

// String renders the record, starting with the version tag.
func (r *Record) String() string {
	parts := []string{"v=spf1"}
	for _, m := range r.Mechanisms {
		parts = append(parts, m.String())
	}
	if r.Redirect != "" {
		parts = append(parts, "redirect="+r.Redirect)
	}
	if r.Exp != "" {
		parts = append(parts, "exp="+r.Exp)
	}
	for _, u := range r.Unknown {
		parts = append(parts, u.String())
	}
	return strings.Join(parts, " ")
}

// precomputeTerms renders every mechanism's record syntax once, so shared
// cached records serve String() without allocating and without any lazy
// write that could race between concurrent evaluations.
func (r *Record) precomputeTerms() {
	for i := range r.Mechanisms {
		m := &r.Mechanisms[i]
		m.str = m.render()
	}
}

// LookupTerms counts the DNS-consuming terms in this record alone
// (mechanisms plus redirect), useful for linting policies against the
// 10-term budget.
func (r *Record) LookupTerms() int {
	n := 0
	for _, m := range r.Mechanisms {
		if m.Kind.NeedsDNS() {
			n++
		}
	}
	if r.Redirect != "" {
		n++
	}
	return n
}
