package spf

import (
	"strings"
	"testing"
)

func TestIsSPFRecord(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"v=spf1 -all", true},
		{"v=spf1", true},
		{"V=SPF1 -all", true},
		{"v=spf10 -all", false},
		{"v=spf1-all", false},
		{"spf1 -all", false},
		{"", false},
		{"some verification token", false},
	}
	for _, c := range cases {
		if got := IsSPFRecord(c.in); got != c.want {
			t.Errorf("IsSPFRecord(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParsePaperExamplePolicy(t *testing.T) {
	// The example policy from SPFail §2.2.
	rec, err := Parse("v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Mechanisms) != 4 {
		t.Fatalf("mechanisms = %d", len(rec.Mechanisms))
	}
	m := rec.Mechanisms
	if m[0].Kind != MechA || m[0].Domain != "foo.example.com" || m[0].Qualifier != QPass {
		t.Errorf("m0 = %+v", m[0])
	}
	if m[1].Kind != MechIP4 || m[1].IP.String() != "192.0.2.1" || m[1].Prefix4 != -1 {
		t.Errorf("m1 = %+v", m[1])
	}
	if m[2].Kind != MechInclude || m[2].Domain != "bar.org" {
		t.Errorf("m2 = %+v", m[2])
	}
	if m[3].Kind != MechAll || m[3].Qualifier != QFail {
		t.Errorf("m3 = %+v", m[3])
	}
}

func TestParseMacroMechanism(t *testing.T) {
	// The probe policy served by the SPFail test zone.
	rec, err := Parse("v=spf1 a:%{d1r}.x.s.spf-test.dns-lab.org a:b.x.s.spf-test.dns-lab.org -all")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mechanisms[0].Domain != "%{d1r}.x.s.spf-test.dns-lab.org" {
		t.Errorf("macro domain = %q", rec.Mechanisms[0].Domain)
	}
}

func TestParseQualifiers(t *testing.T) {
	rec, err := Parse("v=spf1 +a -mx ~ptr ?exists:%{i}.rbl.example.org")
	if err != nil {
		t.Fatal(err)
	}
	want := []Qualifier{QPass, QFail, QSoftFail, QNeutral}
	for i, q := range want {
		if rec.Mechanisms[i].Qualifier != q {
			t.Errorf("mechanism %d qualifier = %c, want %c", i, rec.Mechanisms[i].Qualifier, q)
		}
	}
}

func TestParseDualCIDR(t *testing.T) {
	rec, err := Parse("v=spf1 a/24 mx:example.org/24//64 a:host.example.com//48")
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Mechanisms
	if m[0].Prefix4 != 24 || m[0].Prefix6 != -1 || m[0].Domain != "" {
		t.Errorf("a/24 = %+v", m[0])
	}
	if m[1].Domain != "example.org" || m[1].Prefix4 != 24 || m[1].Prefix6 != 64 {
		t.Errorf("mx dual = %+v", m[1])
	}
	if m[2].Domain != "host.example.com" || m[2].Prefix4 != -1 || m[2].Prefix6 != 48 {
		t.Errorf("a//48 = %+v", m[2])
	}
}

func TestParseIPMechanisms(t *testing.T) {
	rec, err := Parse("v=spf1 ip4:192.0.2.0/24 ip6:2001:db8::/32 ip4:198.51.100.7")
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Mechanisms
	if m[0].Prefix4 != 24 || m[1].Prefix6 != 32 || m[2].Prefix4 != -1 {
		t.Errorf("prefixes = %d %d %d", m[0].Prefix4, m[1].Prefix6, m[2].Prefix4)
	}
}

func TestParseModifiers(t *testing.T) {
	rec, err := Parse("v=spf1 mx redirect=_spf.example.com exp=explain.%{d} custom=x")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Redirect != "_spf.example.com" {
		t.Errorf("redirect = %q", rec.Redirect)
	}
	if rec.Exp != "explain.%{d}" {
		t.Errorf("exp = %q", rec.Exp)
	}
	if len(rec.Unknown) != 1 || rec.Unknown[0].Name != "custom" {
		t.Errorf("unknown = %v", rec.Unknown)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"not spf at all",
		"v=spf1 bogus",
		"v=spf1 all:arg",
		"v=spf1 include",
		"v=spf1 include:",
		"v=spf1 exists",
		"v=spf1 ip4:999.1.1.1",
		"v=spf1 ip4:2001:db8::1",
		"v=spf1 ip6:192.0.2.1",
		"v=spf1 ip4:192.0.2.1/33",
		"v=spf1 ip6:2001:db8::/129",
		"v=spf1 a/xx",
		"v=spf1 a:/24",
		"v=spf1 redirect= mx",
		"v=spf1 redirect=a redirect=b",
		"v=spf1 exp=a exp=b",
		"v=spf1 ptr:",
		"v=spf1 ptrx",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestRecordStringRoundTrip(t *testing.T) {
	in := "v=spf1 a:foo.example.com/24//64 ip4:192.0.2.0/24 ip6:2001:db8::1 include:bar.org ~all redirect=_spf.example.net"
	rec, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	out := rec.String()
	rec2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if rec2.String() != out {
		t.Errorf("String not stable: %q vs %q", out, rec2.String())
	}
	if !strings.Contains(out, "~all") || !strings.Contains(out, "redirect=_spf.example.net") {
		t.Errorf("String dropped terms: %q", out)
	}
}

func TestLookupTermsCount(t *testing.T) {
	rec, err := Parse("v=spf1 ip4:192.0.2.1 a mx include:x.org exists:%{i}.e.org ptr -all redirect=y.org")
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.LookupTerms(); got != 6 {
		t.Errorf("LookupTerms = %d, want 6 (a mx include exists ptr redirect)", got)
	}
}
