package spf

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// IsSPFRecord reports whether a TXT string is an SPF version-1 policy:
// exactly "v=spf1" followed by end-of-string or a space (RFC 7208 §4.5).
func IsSPFRecord(txt string) bool {
	if len(txt) == 6 {
		return strings.EqualFold(txt, "v=spf1")
	}
	return len(txt) > 6 && strings.EqualFold(txt[:6], "v=spf1") && txt[6] == ' '
}

// SyntaxError describes a policy that cannot be interpreted; evaluation
// maps it to permerror.
type SyntaxError struct {
	Term string
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	if e.Term == "" {
		return "spf: " + e.Msg
	}
	return fmt.Sprintf("spf: term %q: %s", e.Term, e.Msg)
}

// Parse parses the text of an SPF policy record.
func Parse(txt string) (*Record, error) {
	if !IsSPFRecord(txt) {
		return nil, &SyntaxError{Msg: "missing v=spf1 version tag"}
	}
	rec := &Record{}
	body := txt[6:]
	// Pre-size Mechanisms by counting space-separated terms, then walk the
	// fields in place — no intermediate []string, no append regrowth.
	if n := countFields(body); n > 0 {
		rec.Mechanisms = make([]Mechanism, 0, n)
	}
	for i := 0; i < len(body); {
		if isSpaceByte(body[i]) {
			i++
			continue
		}
		j := i
		for j < len(body) && !isSpaceByte(body[j]) {
			j++
		}
		if err := parseTerm(rec, body[i:j]); err != nil {
			return nil, err
		}
		i = j
	}
	return rec, nil
}

// isSpaceByte matches the ASCII whitespace strings.Fields splits on.
func isSpaceByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// countFields counts whitespace-separated fields, mirroring the loop in
// Parse.
func countFields(s string) int {
	n, in := 0, false
	for i := 0; i < len(s); i++ {
		sep := isSpaceByte(s[i])
		if !sep && !in {
			n++
		}
		in = !sep
	}
	return n
}

func parseTerm(rec *Record, term string) error {
	// Modifier? name=value with name starting alphabetic.
	if i := strings.IndexByte(term, '='); i > 0 && isModifierName(term[:i]) {
		name := strings.ToLower(term[:i])
		val := term[i+1:]
		switch name {
		case "redirect":
			if rec.Redirect != "" {
				return &SyntaxError{Term: term, Msg: "duplicate redirect modifier"}
			}
			if val == "" {
				return &SyntaxError{Term: term, Msg: "empty redirect target"}
			}
			rec.Redirect = val
		case "exp":
			if rec.Exp != "" {
				return &SyntaxError{Term: term, Msg: "duplicate exp modifier"}
			}
			if val == "" {
				return &SyntaxError{Term: term, Msg: "empty exp target"}
			}
			rec.Exp = val
		default:
			rec.Unknown = append(rec.Unknown, Modifier{Name: name, Value: val})
		}
		return nil
	}

	m := Mechanism{Qualifier: QPass, Prefix4: -1, Prefix6: -1}
	rest := term
	if len(rest) > 0 {
		switch Qualifier(rest[0]) {
		case QPass, QFail, QSoftFail, QNeutral:
			m.Qualifier = Qualifier(rest[0])
			rest = rest[1:]
		}
	}
	if rest == "" {
		return &SyntaxError{Term: term, Msg: "empty mechanism"}
	}

	nameEnd := len(rest)
	if i := strings.IndexAny(rest, ":/"); i >= 0 {
		nameEnd = i
	}
	kind := MechanismKind(strings.ToLower(rest[:nameEnd]))
	arg := rest[nameEnd:]

	switch kind {
	case MechAll:
		if arg != "" {
			return &SyntaxError{Term: term, Msg: "all takes no argument"}
		}
		m.Kind = MechAll
	case MechInclude, MechExists:
		if !strings.HasPrefix(arg, ":") || len(arg) == 1 {
			return &SyntaxError{Term: term, Msg: string(kind) + " requires a domain"}
		}
		m.Kind = kind
		m.Domain = arg[1:]
	case MechPTR:
		m.Kind = MechPTR
		if strings.HasPrefix(arg, ":") {
			if len(arg) == 1 {
				return &SyntaxError{Term: term, Msg: "empty ptr domain"}
			}
			m.Domain = arg[1:]
		} else if arg != "" {
			return &SyntaxError{Term: term, Msg: "bad ptr argument"}
		}
	case MechA, MechMX:
		m.Kind = kind
		if err := parseDualCIDR(&m, arg); err != nil {
			return &SyntaxError{Term: term, Msg: err.Error()}
		}
	case MechIP4:
		m.Kind = MechIP4
		if err := parseIPArg(&m, arg, false); err != nil {
			return &SyntaxError{Term: term, Msg: err.Error()}
		}
	case MechIP6:
		m.Kind = MechIP6
		if err := parseIPArg(&m, arg, true); err != nil {
			return &SyntaxError{Term: term, Msg: err.Error()}
		}
	default:
		return &SyntaxError{Term: term, Msg: "unknown mechanism"}
	}
	rec.Mechanisms = append(rec.Mechanisms, m)
	return nil
}

// isModifierName reports whether s is a valid modifier name: ALPHA
// *( ALPHA / DIGIT / "-" / "_" / "." ).
func isModifierName(s string) bool {
	if s == "" || !isAlpha(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !isAlpha(c) && !isDigit(c) && c != '-' && c != '_' && c != '.' {
			return false
		}
	}
	return true
}

func isAlpha(c byte) bool { return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' }
func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// parseDualCIDR parses a/mx arguments: [":"domain]["/"n[//m]] .
func parseDualCIDR(m *Mechanism, arg string) error {
	if strings.HasPrefix(arg, ":") {
		arg = arg[1:]
		slash := strings.IndexByte(arg, '/')
		if slash == 0 {
			return fmt.Errorf("empty domain before CIDR")
		}
		if slash < 0 {
			if arg == "" {
				return fmt.Errorf("empty domain")
			}
			m.Domain = arg
			return nil
		}
		m.Domain = arg[:slash]
		arg = arg[slash:]
	}
	if arg == "" {
		return nil
	}
	if !strings.HasPrefix(arg, "/") {
		return fmt.Errorf("bad dual-CIDR %q", arg)
	}
	arg = arg[1:]
	// Forms: "n", "n//m", "/m" (v6 only: written as "//m" overall).
	if strings.HasPrefix(arg, "/") {
		return parsePrefix(arg[1:], &m.Prefix6, 128)
	}
	if i := strings.Index(arg, "//"); i >= 0 {
		if err := parsePrefix(arg[:i], &m.Prefix4, 32); err != nil {
			return err
		}
		return parsePrefix(arg[i+2:], &m.Prefix6, 128)
	}
	return parsePrefix(arg, &m.Prefix4, 32)
}

func parsePrefix(s string, dst *int, max int) error {
	if s == "" {
		return fmt.Errorf("empty CIDR length")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > max {
		return fmt.Errorf("bad CIDR length %q", s)
	}
	*dst = n
	return nil
}

// parseIPArg parses ip4:addr[/n] or ip6:addr[/n].
func parseIPArg(m *Mechanism, arg string, v6 bool) error {
	if !strings.HasPrefix(arg, ":") || len(arg) == 1 {
		return fmt.Errorf("ip mechanism requires an address")
	}
	arg = arg[1:]
	addrStr := arg
	var prefixStr string
	if i := strings.IndexByte(arg, '/'); i >= 0 {
		addrStr, prefixStr = arg[:i], arg[i+1:]
	}
	addr, err := netip.ParseAddr(addrStr)
	if err != nil {
		return fmt.Errorf("bad IP %q", addrStr)
	}
	if v6 == addr.Is4() {
		return fmt.Errorf("address family mismatch for %q", addrStr)
	}
	m.IP = addr
	if prefixStr != "" {
		if v6 {
			return parsePrefix(prefixStr, &m.Prefix6, 128)
		}
		return parsePrefix(prefixStr, &m.Prefix4, 32)
	}
	return nil
}
