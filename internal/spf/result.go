// Package spf implements the Sender Policy Framework (RFC 7208): policy
// record parsing, the full macro language, and the check_host() evaluation
// algorithm with its DNS-lookup limits.
//
// The package is the substrate that both sides of the SPFail study stand
// on: simulated mail hosts validate inbound mail with it (or with the
// deliberately buggy variants in internal/spfimpl that share this package's
// parser and evaluator), and the probe policies served by the measurement
// DNS zone are expressed in its record syntax.
package spf

import "errors"

// Result is the outcome of check_host() (RFC 7208 §2.6).
type Result string

// The seven SPF results.
const (
	// ResultNone means no policy was found (or no checkable domain).
	ResultNone Result = "none"
	// ResultNeutral means the policy makes no assertion about the sender.
	ResultNeutral Result = "neutral"
	// ResultPass means the client is authorized to send for the domain.
	ResultPass Result = "pass"
	// ResultFail means the client is not authorized.
	ResultFail Result = "fail"
	// ResultSoftFail means the client is probably not authorized.
	ResultSoftFail Result = "softfail"
	// ResultTempError means a transient error (typically DNS) occurred.
	ResultTempError Result = "temperror"
	// ResultPermError means the policy could not be correctly interpreted.
	ResultPermError Result = "permerror"
)

// Qualifier is a mechanism's result-on-match prefix (RFC 7208 §4.6.1).
type Qualifier byte

// The four qualifiers.
const (
	QPass     Qualifier = '+'
	QFail     Qualifier = '-'
	QSoftFail Qualifier = '~'
	QNeutral  Qualifier = '?'
)

// Result maps the qualifier to the result returned when its mechanism
// matches.
func (q Qualifier) Result() Result {
	switch q {
	case QFail:
		return ResultFail
	case QSoftFail:
		return ResultSoftFail
	case QNeutral:
		return ResultNeutral
	default:
		return ResultPass
	}
}

// String implements fmt.Stringer.
func (q Qualifier) String() string { return string(q) }

// Sentinel errors that Resolver implementations wrap so the evaluator can
// distinguish "name does not exist" from "try again later".
var (
	// ErrNotFound reports a nonexistent name or an empty answer
	// (NXDOMAIN / NODATA).
	ErrNotFound = errors.New("spf: domain not found")
	// ErrTemporary reports a transient resolution failure (SERVFAIL,
	// timeout, unreachable server).
	ErrTemporary = errors.New("spf: temporary DNS failure")
)
