package spf

import (
	"context"
	"net/netip"
	"testing"
)

// BenchmarkCheckHost evaluates a realistic multi-mechanism policy — the
// shape SPFail's vulnerable-domain population carries (a, mx, ip4, include,
// -all) — against a map-backed resolver, so the number measures the
// evaluator itself rather than DNS transport.
func BenchmarkCheckHost(b *testing.B) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a mx ip4:203.0.113.0/24 include:_spf.example.net -all"}
	f.txt["_spf.example.net"] = []string{"v=spf1 ip4:198.51.100.0/24 ip6:2001:db8::/32 -all"}
	f.a["example.com"] = []netip.Addr{netip.MustParseAddr("192.0.2.10")}
	f.mx["example.com"] = []MX{{Host: "mail.example.com", Preference: 10}}
	f.a["mail.example.com"] = []netip.Addr{netip.MustParseAddr("192.0.2.25")}

	c := &Checker{Resolver: f}
	ip := netip.MustParseAddr("198.51.100.77") // matches inside the include
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.CheckHost(ctx, ip, "example.com", "user@example.com", "mail.example.com")
		if res.Result != ResultPass {
			b.Fatalf("result = %s, want pass", res.Result)
		}
	}
}
