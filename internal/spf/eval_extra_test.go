package spf

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
)

func TestCheckHostSkipMacroMechanisms(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a:%{d1r}.t.example a:static.example.com -all"}
	f.a["static.example.com"] = []netip.Addr{ip1}
	c := &Checker{Resolver: f, SkipMacroMechanisms: true}
	res := c.CheckHost(context.Background(), ip1, "example.com", "u@example.com", "h")
	if res.Result != ResultPass {
		t.Fatalf("result = %s (%v); macro term should be skipped, static term matched", res.Result, res.Err)
	}
	// The macro target must never have been resolved.
	for k := range f.a {
		if k != "static.example.com" && k != "example.com" {
			t.Errorf("unexpected resolution of %q", k)
		}
	}
}

func TestCheckHostCaseInsensitiveTerms(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"V=SPF1 IP4:192.0.2.0/24 -ALL"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("uppercase record = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostSenderWithoutLocalPart(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 exists:%{l}.users.example.com -all"}
	f.a["postmaster.users.example.com"] = []netip.Addr{netip.MustParseAddr("127.0.0.2")}
	c := &Checker{Resolver: f}
	// HELO check form: sender is the bare domain.
	res := c.CheckHost(context.Background(), ip1, "example.com", "example.com", "example.com")
	if res.Result != ResultPass {
		t.Fatalf("postmaster default = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostMXLimitExceeded(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 mx -all"}
	var mxs []MX
	for i := 0; i < 11; i++ {
		mxs = append(mxs, MX{Preference: uint16(i), Host: fmt.Sprintf("mx%d.example.com", i)})
	}
	f.mx["example.com"] = mxs
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPermError {
		t.Fatalf("11 MX records = %s, want permerror", res.Result)
	}
}

func TestCheckHostRedirectSelfLoopHitsBudget(t *testing.T) {
	f := newFakeResolver()
	f.txt["loop.example"] = []string{"v=spf1 redirect=loop.example"}
	if res := check(t, f, ip1, "loop.example"); res.Result != ResultPermError {
		t.Fatalf("redirect self-loop = %s, want permerror via lookup budget", res.Result)
	}
}

func TestCheckHostIncludeSelfLoopHitsBudget(t *testing.T) {
	f := newFakeResolver()
	f.txt["loop.example"] = []string{"v=spf1 include:loop.example -all"}
	if res := check(t, f, ip1, "loop.example"); res.Result != ResultPermError {
		t.Fatalf("include self-loop = %s, want permerror", res.Result)
	}
}

func TestCheckHostIPv6AMechanism(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a -all"}
	f.a["example.com"] = []netip.Addr{ip6}
	if res := check(t, f, ip6, "example.com"); res.Result != ResultPass {
		t.Fatalf("v6 a = %s (%v)", res.Result, res.Err)
	}
	// v4 client against a v6-only host list fails.
	if res := check(t, f, ip1, "example.com"); res.Result != ResultFail {
		t.Fatalf("v4-vs-v6 a = %s", res.Result)
	}
}

func TestCheckHostDualCIDRIPv6(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a//64 -all"}
	f.a["example.com"] = []netip.Addr{netip.MustParseAddr("2001:db8::99")}
	// Same /64 as 2001:db8::1.
	if res := check(t, f, ip6, "example.com"); res.Result != ResultPass {
		t.Fatalf("a//64 = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostExistsUsesAEvenForV6Client(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 exists:flag.example.com -all"}
	// Only an A record exists; per RFC 7208 §5.7 exists always queries A.
	f.a["flag.example.com"] = []netip.Addr{netip.MustParseAddr("127.0.0.2")}
	if res := check(t, f, ip6, "example.com"); res.Result != ResultPass {
		t.Fatalf("v6 exists = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostSPFRecordAmongOtherTXT(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{
		"google-site-verification=abc123",
		"v=spf1 ip4:192.0.2.1 -all",
		"some other junk",
	}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("mixed TXT = %s", res.Result)
	}
}

func TestCheckHostExplanationFailuresAreSilent(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 -all exp=missing.example.com"}
	res := check(t, f, ip1, "example.com")
	if res.Result != ResultFail {
		t.Fatalf("result = %s", res.Result)
	}
	if res.Explanation != "" {
		t.Errorf("explanation from missing record = %q", res.Explanation)
	}
	// Multiple TXT at the exp target also yields no explanation.
	f.txt["example.com"] = []string{"v=spf1 -all exp=two.example.com"}
	f.txt["two.example.com"] = []string{"a", "b"}
	res = check(t, f, ip1, "example.com")
	if res.Explanation != "" {
		t.Errorf("explanation from ambiguous record = %q", res.Explanation)
	}
}

func TestCheckHostDisableExp(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 -all exp=why.example.com"}
	f.txt["why.example.com"] = []string{"denied"}
	c := &Checker{Resolver: f, DisableExp: true}
	res := c.CheckHost(context.Background(), ip1, "example.com", "u@example.com", "h")
	if res.Explanation != "" {
		t.Errorf("DisableExp leaked explanation %q", res.Explanation)
	}
	if f.calls != 1 {
		t.Errorf("exp target should not be fetched; %d calls", f.calls)
	}
}

func TestCheckHostCustomLimits(t *testing.T) {
	f := newFakeResolver()
	f.txt["d0.example"] = []string{"v=spf1 include:d1.example -all"}
	f.txt["d1.example"] = []string{"v=spf1 include:d2.example -all"}
	f.txt["d2.example"] = []string{"v=spf1 +all"}
	c := &Checker{Resolver: f, MaxLookups: 1}
	res := c.CheckHost(context.Background(), ip1, "d0.example", "u@d0.example", "h")
	if res.Result != ResultPermError {
		t.Fatalf("MaxLookups=1 over 2-deep include = %s", res.Result)
	}
	c = &Checker{Resolver: f, MaxLookups: 5}
	res = c.CheckHost(context.Background(), ip1, "d0.example", "u@d0.example", "h")
	if res.Result != ResultPass {
		t.Fatalf("MaxLookups=5 = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostMacroExpandedTargetTruncation(t *testing.T) {
	f := newFakeResolver()
	// An expansion longer than 253 chars must drop left-most labels.
	longLocal := ""
	for i := 0; i < 30; i++ {
		longLocal += "aaaaaaaaa."
	}
	longLocal += "x"
	f.txt["example.com"] = []string{"v=spf1 exists:%{l}.check.example -all"}
	c := &Checker{Resolver: f}
	res := c.CheckHost(context.Background(), ip1, "example.com", longLocal+"@example.com", "h")
	// NXDOMAIN on the (truncated) target is just no-match → -all fail;
	// the point is that no over-length name reached the resolver.
	if res.Result != ResultFail {
		t.Fatalf("result = %s (%v)", res.Result, res.Err)
	}
	for name := range f.a {
		if len(name) > 253 {
			t.Errorf("over-length lookup reached resolver: %d chars", len(name))
		}
	}
}

func TestCheckHostMXTargetOverride(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 mx:other.example -all"}
	f.mx["other.example"] = []MX{{10, "mail.other.example"}}
	f.a["mail.other.example"] = []netip.Addr{ip1}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("mx:domain = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostPTRWithTargetDomain(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ptr:trusted.example -all"}
	f.ptr[ip1.String()] = []string{"host.trusted.example."}
	f.a["host.trusted.example"] = []netip.Addr{ip1}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("ptr:domain = %s (%v)", res.Result, res.Err)
	}
}

func TestQualifierResults(t *testing.T) {
	cases := map[Qualifier]Result{
		QPass: ResultPass, QFail: ResultFail,
		QSoftFail: ResultSoftFail, QNeutral: ResultNeutral,
	}
	for q, want := range cases {
		if got := q.Result(); got != want {
			t.Errorf("%c.Result() = %s, want %s", q, got, want)
		}
	}
}
