package spf

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// macroScratch is the per-expansion arena: the output byte buffer and the
// transformer's label-splitting scratch, recycled across expansions so the
// compliant expander allocates only the final result string (and nothing at
// all for macro-free specs). Scratch never escapes an expansion — parts
// holds substrings of the raw macro value, and buf is copied into the
// returned string before release.
type macroScratch struct {
	buf   []byte
	parts []string
}

var macroScratchPool = sync.Pool{New: func() any { return new(macroScratch) }}

// scrub readies the arena for recycling: the grown backing arrays are the
// asset, so they are truncated rather than dropped. parts aliases
// substrings of caller-owned macro values, so its dead capacity is
// cleared to avoid pinning those strings for the lifetime of the pool
// entry.
func (sc *macroScratch) scrub() {
	sc.buf = sc.buf[:0]
	clear(sc.parts[:cap(sc.parts)])
	sc.parts = sc.parts[:0]
}

// appendMacroString expands s into dst. It is the allocation-free core of
// Expander.Expand, semantically identical to tokenizing with
// TokenizeMacroString and expanding token by token: a first pass reports
// any syntax error (so syntax errors precede value errors exactly as the
// tokenizing front end ordered them), then a second pass streams literals
// and expanded macros into dst.
func appendMacroString(dst []byte, sc *macroScratch, ctx context.Context, s string, env *MacroEnv, forExp bool) ([]byte, error) {
	// Pass 1: syntax validation, mirroring TokenizeMacroString's errors.
	for i := 0; i < len(s); {
		if s[i] != '%' {
			i++
			continue
		}
		if i+1 >= len(s) {
			return dst, &SyntaxError{Term: s, Msg: "trailing %"}
		}
		switch s[i+1] {
		case '%', '_', '-':
			i += 2
		case '{':
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				return dst, &SyntaxError{Term: s, Msg: "unterminated macro"}
			}
			if _, err := parseMacroBody(s[i+2 : i+end]); err != nil {
				return dst, err
			}
			i += end + 1
		default:
			return dst, &SyntaxError{Term: s, Msg: fmt.Sprintf("bad macro escape %%%c", s[i+1])}
		}
	}
	// Pass 2: expansion. Syntax is known-good, so escapes cannot fail here.
	for i := 0; i < len(s); {
		c := s[i]
		if c != '%' {
			dst = append(dst, c)
			i++
			continue
		}
		switch s[i+1] {
		case '%':
			dst = append(dst, '%')
			i += 2
		case '_':
			dst = append(dst, ' ')
			i += 2
		case '-':
			dst = append(dst, "%20"...)
			i += 2
		default: // '{'
			end := strings.IndexByte(s[i:], '}')
			tok, _ := parseMacroBody(s[i+2 : i+end])
			raw, err := MacroValue(ctx, tok.Letter, env, forExp)
			if err != nil {
				return dst, err
			}
			dst = appendTransformed(dst, sc, raw, tok)
			i += end + 1
		}
	}
	return dst, nil
}

// appendTransformed applies a token's digit/reverse/delimiter transformers
// (RFC 7208 §7.3) and optional URL escaping to raw, appending the result to
// dst. It produces byte-identical output to ApplyTransformers + URLEscape —
// escaping part-by-part is equivalent because '.' is in the unreserved set —
// while splitting into the arena's reusable parts slice instead of
// allocating with strings.FieldsFunc and Join.
func appendTransformed(dst []byte, sc *macroScratch, raw string, t MacroToken) []byte {
	delims := t.Delims
	if delims == "" {
		delims = "."
	}
	parts := sc.parts[:0]
	start := -1
	for i := 0; i < len(raw); i++ {
		if strings.IndexByte(delims, raw[i]) >= 0 {
			if start >= 0 {
				parts = append(parts, raw[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		parts = append(parts, raw[start:])
	}
	if len(parts) == 0 {
		parts = append(parts, raw)
	}
	full := parts // keep the base array so trimming below cannot leak capacity
	if t.Reverse {
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
	}
	if t.Digits > 0 && t.Digits < len(parts) {
		parts = parts[len(parts)-t.Digits:]
	}
	for i, p := range parts {
		if i > 0 {
			dst = append(dst, '.')
		}
		if t.URLEscape {
			dst = appendURLEscaped(dst, p)
		} else {
			dst = append(dst, p...)
		}
	}
	sc.parts = full[:0]
	return dst
}

// appendURLEscaped percent-encodes s into dst exactly as URLEscape does.
func appendURLEscaped(dst []byte, s string) []byte {
	const hexUpper = "0123456789ABCDEF"
	for i := 0; i < len(s); i++ {
		c := s[i]
		if isAlpha(c) || isDigit(c) || c == '-' || c == '.' || c == '_' || c == '~' {
			dst = append(dst, c)
		} else {
			dst = append(dst, '%', hexUpper[c>>4], hexUpper[c&0xF])
		}
	}
	return dst
}
