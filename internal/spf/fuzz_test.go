package spf

import (
	"context"
	"net/netip"
	"testing"
)

// FuzzParse checks that the record parser never panics and that accepted
// records render and re-parse stably.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"v=spf1 -all",
		"v=spf1 a mx ptr ip4:192.0.2.0/24 ip6:2001:db8::/32 include:x.org exists:%{ir}.rbl.example -all",
		"v=spf1 a:%{d1r}.x.s.spf-test.dns-lab.org a:b.x.s.spf-test.dns-lab.org -all",
		"v=spf1 redirect=_spf.example.com exp=e.%{d}",
		"v=spf1 ~all ?a +mx -ptr:x.example",
		"v=spf1 a/24//64",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rec, err := Parse(s)
		if err != nil {
			return
		}
		out := rec.String()
		rec2, err := Parse(out)
		if err != nil {
			t.Fatalf("rendered record %q does not re-parse: %v", out, err)
		}
		if rec2.String() != out {
			t.Fatalf("String not a fixed point: %q vs %q", out, rec2.String())
		}
	})
}

// FuzzTokenizeAndExpand checks macro tokenization and expansion for
// panics across arbitrary macro-strings.
func FuzzTokenizeAndExpand(f *testing.F) {
	for _, s := range []string{
		"%{d1r}.foo.com", "%{s}", "%{L2r-}", "%%x%_%-", "%{ir}.%{v}.arpa",
		"%{p}", "plain.example",
	} {
		f.Add(s)
	}
	env := &MacroEnv{
		Sender: "user@example.com",
		Domain: "example.com",
		IP:     netip.MustParseAddr("192.0.2.1"),
		HELO:   "helo.example.com",
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks, err := TokenizeMacroString(s)
		if err != nil {
			return
		}
		// Every token must be well-formed.
		for _, tok := range toks {
			if tok.IsMacro && tok.Letter == 0 {
				t.Fatal("macro token with zero letter")
			}
		}
		if _, err := (Expander{}).Expand(context.Background(), s, env, true); err != nil {
			// Expansion of tokenizable input may still fail for exp-only
			// macros misuse etc. — but not here, since forExp is true and
			// tokenization succeeded.
			t.Fatalf("expand of tokenizable %q failed: %v", s, err)
		}
	})
}
