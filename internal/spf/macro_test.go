package spf

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func testEnv() *MacroEnv {
	return &MacroEnv{
		Sender:   "user@example.com",
		Domain:   "example.com",
		IP:       netip.MustParseAddr("192.0.2.3"),
		HELO:     "mta.example.com",
		Receiver: "rx.example.net",
		Now:      func() time.Time { return time.Unix(1634000000, 0) },
	}
}

func expand(t *testing.T, spec string) string {
	t.Helper()
	out, err := (Expander{}).Expand(context.Background(), spec, testEnv(), false)
	if err != nil {
		t.Fatalf("Expand(%q): %v", spec, err)
	}
	return out
}

// TestPaperMacroExamples verifies the exact macro translations listed in
// SPFail §2.2 for sender user@example.com.
func TestPaperMacroExamples(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"%{l}", "user"},
		{"%{d}", "example.com"},
		{"%{d2}", "example.com"},
		{"%{d1}", "com"},
		{"%{dr}", "com.example"},
		{"%{d1r}", "example"},
	}
	for _, c := range cases {
		if got := expand(t, c.spec); got != c.want {
			t.Errorf("expand(%q) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestMacroD1RInTargetDomain(t *testing.T) {
	// The compliant expansion from §4.2: a:%{d1r}.foo.com for
	// user@example.com yields example.foo.com.
	if got := expand(t, "%{d1r}.foo.com"); got != "example.foo.com" {
		t.Errorf("got %q, want example.foo.com", got)
	}
}

func TestMacroSenderAndParts(t *testing.T) {
	if got := expand(t, "%{s}"); got != "user@example.com" {
		t.Errorf("%%{s} = %q", got)
	}
	if got := expand(t, "%{o}"); got != "example.com" {
		t.Errorf("%%{o} = %q", got)
	}
	if got := expand(t, "%{h}"); got != "mta.example.com" {
		t.Errorf("%%{h} = %q", got)
	}
}

func TestMacroEmptyLocalPartDefaultsPostmaster(t *testing.T) {
	env := testEnv()
	env.Sender = "example.com" // no local part
	out, err := (Expander{}).Expand(context.Background(), "%{l}", env, false)
	if err != nil || out != "postmaster" {
		t.Errorf("%%{l} = %q, %v; want postmaster", out, err)
	}
	out, err = (Expander{}).Expand(context.Background(), "%{s}", env, false)
	if err != nil || !strings.HasPrefix(out, "postmaster@") {
		t.Errorf("%%{s} = %q, %v", out, err)
	}
}

func TestMacroIPv4(t *testing.T) {
	if got := expand(t, "%{i}"); got != "192.0.2.3" {
		t.Errorf("%%{i} = %q", got)
	}
	if got := expand(t, "%{ir}"); got != "3.2.0.192" {
		t.Errorf("%%{ir} = %q", got)
	}
	if got := expand(t, "%{v}"); got != "in-addr" {
		t.Errorf("%%{v} = %q", got)
	}
	if got := expand(t, "%{ir}.%{v}.arpa"); got != "3.2.0.192.in-addr.arpa" {
		t.Errorf("reverse zone = %q", got)
	}
}

func TestMacroIPv6DotFormat(t *testing.T) {
	env := testEnv()
	env.IP = netip.MustParseAddr("2001:db8::cb01")
	out, err := (Expander{}).Expand(context.Background(), "%{i}", env, false)
	if err != nil {
		t.Fatal(err)
	}
	// RFC 7208 §7.4 example format: dotted nibbles.
	if !strings.HasPrefix(out, "2.0.0.1.0.d.b.8.") || !strings.HasSuffix(out, "c.b.0.1") {
		t.Errorf("%%{i} v6 = %q", out)
	}
	if len(strings.Split(out, ".")) != 32 {
		t.Errorf("v6 dot format has %d nibbles", len(strings.Split(out, ".")))
	}
	v, _ := (Expander{}).Expand(context.Background(), "%{v}", env, false)
	if v != "ip6" {
		t.Errorf("%%{v} v6 = %q", v)
	}
}

func TestMacroCustomDelimiters(t *testing.T) {
	env := testEnv()
	env.Sender = "strong-bad@email.example.com"
	// RFC 7208 §7.4 examples for local part "strong-bad".
	cases := []struct{ spec, want string }{
		{"%{l}", "strong-bad"},
		{"%{l-}", "strong.bad"},
		{"%{lr}", "strong-bad"},
		{"%{lr-}", "bad.strong"},
		{"%{l1r-}", "strong"},
	}
	for _, c := range cases {
		out, err := (Expander{}).Expand(context.Background(), c.spec, env, false)
		if err != nil {
			t.Fatalf("Expand(%q): %v", c.spec, err)
		}
		if out != c.want {
			t.Errorf("expand(%q) = %q, want %q", c.spec, out, c.want)
		}
	}
}

func TestMacroLiteralEscapes(t *testing.T) {
	if got := expand(t, "a%%b"); got != "a%b" {
		t.Errorf("%%%% = %q", got)
	}
	if got := expand(t, "a%_b"); got != "a b" {
		t.Errorf("%%_ = %q", got)
	}
	if got := expand(t, "a%-b"); got != "a%20b" {
		t.Errorf("%%- = %q", got)
	}
}

func TestMacroURLEscapeUppercase(t *testing.T) {
	env := testEnv()
	env.Sender = "strange user+tag@example.com"
	out, err := (Expander{}).Expand(context.Background(), "%{L}", env, false)
	if err != nil {
		t.Fatal(err)
	}
	// space → %20, '+' → %2B; '+' is also a delimiter char but not used here.
	if out != "strange%20user%2Btag" {
		t.Errorf("%%{L} = %q", out)
	}
}

func TestMacroExpOnlyLettersRejectedInDomain(t *testing.T) {
	for _, spec := range []string{"%{c}", "%{r}", "%{t}"} {
		if _, err := (Expander{}).Expand(context.Background(), spec, testEnv(), false); err == nil {
			t.Errorf("%q should be rejected outside exp", spec)
		}
	}
}

func TestMacroExpOnlyLettersInExp(t *testing.T) {
	env := testEnv()
	out, err := (Expander{}).Expand(context.Background(), "ip %{c} at %{t} to %{r}", env, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "192.0.2.3") || !strings.Contains(out, "1634000000") ||
		!strings.Contains(out, "rx.example.net") {
		t.Errorf("exp text = %q", out)
	}
}

func TestMacroSyntaxErrors(t *testing.T) {
	bad := []string{"%{d", "%", "%x", "%{q}", "%{d0}", "%{d2x}", "%{}"}
	for _, s := range bad {
		if _, err := TokenizeMacroString(s); err == nil {
			t.Errorf("TokenizeMacroString(%q) should fail", s)
		}
	}
}

func TestTokenizeStructure(t *testing.T) {
	toks, err := TokenizeMacroString("%{d1r}.foo.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 {
		t.Fatalf("tokens = %v", toks)
	}
	m := toks[0]
	if !m.IsMacro || m.Letter != MacroDomain || m.Digits != 1 || !m.Reverse || m.URLEscape {
		t.Errorf("macro token = %+v", m)
	}
	if toks[1].IsMacro || toks[1].Literal != ".foo.com" {
		t.Errorf("literal token = %+v", toks[1])
	}
}

func TestApplyTransformersEdgeCases(t *testing.T) {
	// Digits larger than label count keeps everything.
	if got := ApplyTransformers("a.b", MacroToken{Digits: 9}); got != "a.b" {
		t.Errorf("digits overflow = %q", got)
	}
	// Value with no delimiter occurrences is a single part.
	if got := ApplyTransformers("abc", MacroToken{Reverse: true}); got != "abc" {
		t.Errorf("single part reverse = %q", got)
	}
}

func TestMacroPTRUnknownWithoutResolver(t *testing.T) {
	if got := expand(t, "%{p}"); got != "unknown" {
		t.Errorf("%%{p} without resolver = %q", got)
	}
}

func TestMacroPTRWithResolver(t *testing.T) {
	env := testEnv()
	env.LookupPTR = func(ctx context.Context, addr netip.Addr) ([]string, error) {
		return []string{"mail.example.com."}, nil
	}
	out, err := (Expander{}).Expand(context.Background(), "%{p}", env, false)
	if err != nil || out != "mail.example.com" {
		t.Errorf("%%{p} = %q, %v", out, err)
	}
}
