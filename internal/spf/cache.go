package spf

import "sync"

// maxCachedRecords bounds a Checker's parsed-record memo. SPFail's own
// measurement defeats caching by construction — every probe's policy embeds
// a fresh label, so those texts never repeat — but stable real-world
// policies (and every include/redirect target) hit the memo on all but the
// first evaluation. When the memo fills with never-repeating texts it is
// dropped wholesale: parsing is pure, so eviction can only cost time, never
// correctness or determinism.
const maxCachedRecords = 4096

// cachedParse is one memoized Parse outcome. Failures are cached too, so a
// world full of malformed policies does not reparse them every probe.
type cachedParse struct {
	rec *Record
	err error
}

// recordCache memoizes Parse keyed by exact policy text. Records handed out
// are shared across goroutines and must be treated as immutable, which
// Parse guarantees: nothing in evaluation mutates a Record after parse.
type recordCache struct {
	mu sync.RWMutex
	m  map[string]cachedParse
}

// parse returns the memoized parse of policy, parsing and inserting on miss.
func (rc *recordCache) parse(policy string) (*Record, error) {
	rc.mu.RLock()
	e, ok := rc.m[policy]
	rc.mu.RUnlock()
	if ok {
		return e.rec, e.err
	}
	rec, err := Parse(policy)
	if rec != nil {
		rec.precomputeTerms()
	}
	rc.mu.Lock()
	if rc.m == nil || len(rc.m) >= maxCachedRecords {
		rc.m = make(map[string]cachedParse)
	}
	// A concurrent parser of the same text may have inserted first; prefer
	// the published record so all callers share one copy.
	if e, ok := rc.m[policy]; ok {
		rc.mu.Unlock()
		return e.rec, e.err
	}
	rc.m[policy] = cachedParse{rec: rec, err: err}
	rc.mu.Unlock()
	return rec, err
}
