package spf

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"spfail/internal/trace"
)

// Evaluation limits from RFC 7208 §4.6.4.
const (
	// DefaultMaxLookups is the budget of DNS-querying terms per check.
	DefaultMaxLookups = 10
	// DefaultMaxVoidLookups is the budget of lookups returning no data.
	DefaultMaxVoidLookups = 2
	// DefaultMaxMXAddrs caps the MX hosts resolved per mx mechanism.
	DefaultMaxMXAddrs = 10
	// DefaultMaxPTRNames caps the PTR targets validated per ptr/%{p}.
	DefaultMaxPTRNames = 10
	// maxDomainLen is the presentation-format limit for expanded targets.
	maxDomainLen = 253
)

// MX is a mail exchanger as returned by a Resolver, in preference order.
type MX struct {
	Preference uint16
	Host       string
}

// Resolver performs the DNS lookups the evaluator needs. Implementations
// signal nonexistent names with errors matching ErrNotFound and transient
// failures with errors matching ErrTemporary (use errors.Is-compatible
// wrapping).
type Resolver interface {
	LookupTXT(ctx context.Context, name string) ([]string, error)
	// LookupIP resolves addresses; network is "ip", "ip4", or "ip6".
	LookupIP(ctx context.Context, network, name string) ([]netip.Addr, error)
	LookupMX(ctx context.Context, name string) ([]MX, error)
	LookupPTR(ctx context.Context, addr netip.Addr) ([]string, error)
}

// Checker evaluates SPF policies. The zero value is not usable; populate
// Resolver. All other fields have working defaults.
//
// A Checker is safe for concurrent use and memoizes parsed policy records
// (see cache.go), so callers on hot paths should reuse one Checker per
// resolver/behavior pair instead of constructing one per evaluation.
type Checker struct {
	Resolver Resolver
	// Expander performs macro expansion; nil means the RFC-compliant
	// Expander. The SPFail vulnerability study swaps this for the buggy
	// implementations in internal/spfimpl.
	Expander MacroExpander
	// MaxLookups, MaxVoidLookups, MaxMXAddrs, MaxPTRNames override the
	// RFC limits when positive.
	MaxLookups     int
	MaxVoidLookups int
	MaxMXAddrs     int
	MaxPTRNames    int
	// Receiver is this host's domain, used in %{r} explanation text.
	Receiver string
	// Now supplies %{t}; nil means time.Now.
	Now func() time.Time
	// DisableExp skips fetching explanation strings on fail.
	DisableExp bool
	// SkipMacroMechanisms makes mechanisms whose domain-spec contains a
	// macro never match and consume no lookup — modeling the partial
	// implementations §7.9 observed that resolve only macro-free terms.
	SkipMacroMechanisms bool

	// records memoizes Parse results keyed by policy text (bounded; see
	// cache.go). Parsing is pure, so sharing cached records across
	// concurrent evaluations is safe — records are immutable after parse.
	records recordCache

	// ptrOnce/ptrFn cache the Resolver.LookupPTR method value so building
	// the per-evaluation MacroEnv does not allocate a closure per check.
	ptrOnce sync.Once
	ptrFn   func(ctx context.Context, addr netip.Addr) ([]string, error)
}

// CheckResult is the outcome of CheckHost.
type CheckResult struct {
	Result Result
	// Mechanism is the matched mechanism's text, "default" when no
	// mechanism matched, or "" for none/temperror/permerror.
	Mechanism string
	// Explanation carries expanded exp= text on fail, when available.
	Explanation string
	// Err explains temperror/permerror results.
	Err error
}

func (c *Checker) expander() MacroExpander {
	if c.Expander != nil {
		return c.Expander
	}
	return Expander{}
}

func (c *Checker) limit(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// sessionPool recycles per-evaluation state across CheckHost calls: the
// session struct itself plus the macro scratch hanging off it. Sessions are
// reset on release (poison-proof; see pool_test.go), following the pooled
// codec pattern in internal/dnsmsg.
var sessionPool = sync.Pool{New: func() any { return new(session) }}

// CheckHost implements check_host() (RFC 7208 §4): it evaluates the policy
// of domain for a message from sender arriving from ip, with helo as the
// SMTP HELO/EHLO identity.
//
//spfail:hotpath
func (c *Checker) CheckHost(ctx context.Context, ip netip.Addr, domain, sender, helo string) CheckResult {
	if !validDomain(domain) {
		//spfail:allow hotpathalloc terminal validation failure; the evaluation never starts
		return CheckResult{Result: ResultNone, Err: fmt.Errorf("spf: invalid domain %q", domain)}
	}
	//spfail:allow hotpathalloc sync.Once initialization closure runs once per Checker lifetime
	c.ptrOnce.Do(func() {
		if c.Resolver != nil {
			c.ptrFn = c.Resolver.LookupPTR
		}
	})
	s := sessionPool.Get().(*session)
	s.c = c
	s.ctx = ctx
	s.maxLookups = c.limit(c.MaxLookups, DefaultMaxLookups)
	s.maxVoid = c.limit(c.MaxVoidLookups, DefaultMaxVoidLookups)
	s.maxMX = c.limit(c.MaxMXAddrs, DefaultMaxMXAddrs)
	s.maxPTR = c.limit(c.MaxPTRNames, DefaultMaxPTRNames)
	s.env = MacroEnv{
		Sender:    sender,
		IP:        ip,
		HELO:      helo,
		Receiver:  c.Receiver,
		Now:       c.Now,
		LookupPTR: c.ptrFn,
	}
	out := s.check(domain)
	s.release()
	return out
}

// session carries per-check state shared across include/redirect recursion.
// Sessions are pooled; release zeroes every field so recycled sessions can
// never leak a previous evaluation's sender, IP, or lookup budget.
type session struct {
	c          *Checker
	ctx        context.Context
	lookups    int
	voids      int
	maxLookups int
	maxVoid    int
	maxMX      int
	maxPTR     int
	depth      int // include/redirect recursion depth, for tracing
	env        MacroEnv
}

// release resets the session and returns it to the pool.
func (s *session) release() {
	*s = session{}
	sessionPool.Put(s)
}

// errBudget marks lookup-limit exhaustion (maps to permerror).
var errBudget = errors.New("spf: DNS lookup limit exceeded")

func (s *session) countLookup() error {
	s.lookups++
	if s.lookups > s.maxLookups {
		return errBudget
	}
	return nil
}

// countVoid records a returned-no-data lookup.
func (s *session) countVoid() error {
	s.voids++
	if s.voids > s.maxVoid {
		return fmt.Errorf("%w: void lookup limit exceeded", errBudget)
	}
	return nil
}

// check wraps checkInner with the per-evaluation trace span. Include and
// redirect recursion re-enters here, so nested policies produce nested
// spf.check_host spans with increasing depth; s.ctx is swapped for the
// span-carrying context for the duration so DNS-layer events nest underneath.
func (s *session) check(domain string) CheckResult {
	prevCtx := s.ctx
	ctx, sp := trace.StartSpan(s.ctx, "spf.check_host")
	if sp != nil {
		sp.SetAttrs(trace.String("domain", domain), trace.Int("depth", s.depth))
		s.ctx = ctx
	}
	s.depth++
	out := s.checkInner(domain)
	s.depth--
	if sp != nil {
		sp.SetAttrs(trace.String("result", string(out.Result)))
		if out.Mechanism != "" {
			sp.SetAttrs(trace.String("mechanism", out.Mechanism))
		}
		if out.Err != nil {
			sp.SetAttrs(trace.String("error", out.Err.Error()))
		}
		sp.End()
		s.ctx = prevCtx
	}
	return out
}

func (s *session) checkInner(domain string) CheckResult {
	rec, res := s.fetchRecord(domain)
	if rec == nil {
		return res
	}
	s.env.Domain = domain

	for i := range rec.Mechanisms {
		m := &rec.Mechanisms[i]
		prevCtx := s.ctx
		mctx, msp := trace.StartSpan(s.ctx, "spf.mechanism")
		if msp != nil {
			msp.SetAttrs(trace.String("term", m.String()))
			s.ctx = mctx
		}
		matched, err := s.matches(m, domain)
		if msp != nil {
			msp.SetAttrs(trace.Bool("matched", matched))
			if err != nil {
				msp.SetAttrs(trace.String("error", err.Error()))
			}
			msp.End()
			s.ctx = prevCtx
		}
		if err != nil {
			return s.errorResult(err)
		}
		if matched {
			out := CheckResult{Result: m.Qualifier.Result(), Mechanism: m.String()}
			if out.Result == ResultFail && rec.Exp != "" && !s.c.DisableExp {
				out.Explanation = s.explanation(rec.Exp, domain)
			}
			return out
		}
	}

	if rec.Redirect != "" {
		if err := s.countLookup(); err != nil {
			return s.errorResult(err)
		}
		target, err := s.expandDomain(rec.Redirect, domain)
		if err != nil {
			return s.errorResult(err)
		}
		out := s.check(target)
		if out.Result == ResultNone {
			out = CheckResult{Result: ResultPermError,
				Err: fmt.Errorf("spf: redirect target %q has no policy", target)}
		}
		return out
	}
	return CheckResult{Result: ResultNeutral, Mechanism: "default"}
}

// fetchRecord retrieves and parses the policy for domain. A nil record
// means the returned CheckResult is final. Parsed records are memoized on
// the Checker keyed by policy text, so repeated evaluations of stable
// policies (the common real-world shape) skip Parse entirely.
func (s *session) fetchRecord(domain string) (*Record, CheckResult) {
	txts, err := s.c.Resolver.LookupTXT(s.ctx, domain)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, CheckResult{Result: ResultNone}
		}
		return nil, CheckResult{Result: ResultTempError, Err: err}
	}
	policy, npolicies := "", 0
	for _, t := range txts {
		if IsSPFRecord(t) {
			if npolicies++; npolicies == 1 {
				policy = t
			}
		}
	}
	switch npolicies {
	case 0:
		return nil, CheckResult{Result: ResultNone}
	case 1:
	default:
		return nil, CheckResult{Result: ResultPermError,
			Err: fmt.Errorf("spf: %d SPF records for %q", npolicies, domain)}
	}
	rec, err := s.c.records.parse(policy)
	if err != nil {
		return nil, CheckResult{Result: ResultPermError, Err: err}
	}
	return rec, CheckResult{}
}

// errorResult maps an evaluation error onto temperror/permerror.
func (s *session) errorResult(err error) CheckResult {
	if errors.Is(err, ErrTemporary) {
		return CheckResult{Result: ResultTempError, Err: err}
	}
	return CheckResult{Result: ResultPermError, Err: err}
}

// expandDomain expands a domain-spec macro-string against the current
// domain and applies the RFC 7208 §7.3 length truncation. Macro-free specs
// under the compliant expander short-circuit: the RFC expander is the
// identity on strings without '%', so no tokenization or scratch is needed.
// Swapped-in expanders (internal/spfimpl's buggy variants) always run, as
// their divergence from the RFC is exactly what the study measures.
func (s *session) expandDomain(spec, current string) (string, error) {
	var out string
	if s.c.Expander == nil && !strings.Contains(spec, "%") {
		out = spec
	} else {
		env := s.env
		env.Domain = current
		expanded, err := s.c.expander().Expand(s.ctx, spec, &env, false)
		if err != nil {
			return "", err
		}
		out = expanded
	}
	out = strings.TrimSuffix(out, ".")
	for len(out) > maxDomainLen {
		dot := strings.IndexByte(out, '.')
		if dot < 0 {
			break
		}
		out = out[dot+1:]
	}
	if strings.Contains(spec, "%") {
		if sp := trace.SpanFromContext(s.ctx); sp != nil {
			sp.Event("spf.macro_expand", trace.String("spec", spec), trace.String("expanded", out))
		}
	}
	return out, nil
}

// matches evaluates one mechanism.
func (s *session) matches(m *Mechanism, domain string) (bool, error) {
	if s.c.SkipMacroMechanisms && strings.Contains(m.Domain, "%") {
		return false, nil
	}
	switch m.Kind {
	case MechAll:
		return true, nil
	case MechIP4, MechIP6:
		return matchIP(s.env.IP, m), nil
	case MechInclude:
		return s.matchInclude(m, domain)
	case MechA:
		return s.matchA(m, domain)
	case MechMX:
		return s.matchMX(m, domain)
	case MechExists:
		return s.matchExists(m, domain)
	case MechPTR:
		return s.matchPTR(m, domain)
	}
	return false, fmt.Errorf("spf: unknown mechanism kind %q", m.Kind)
}

func (s *session) matchInclude(m *Mechanism, domain string) (bool, error) {
	if err := s.countLookup(); err != nil {
		return false, err
	}
	target, err := s.expandDomain(m.Domain, domain)
	if err != nil {
		return false, err
	}
	sub := s.check(target)
	switch sub.Result {
	case ResultPass:
		return true, nil
	case ResultFail, ResultSoftFail, ResultNeutral:
		return false, nil
	case ResultTempError:
		return false, fmt.Errorf("%w: include %q", ErrTemporary, target)
	default: // none, permerror
		return false, fmt.Errorf("spf: include %q evaluated to %s", target, sub.Result)
	}
}

// targetDomain resolves a mechanism's effective domain.
func (s *session) targetDomain(m *Mechanism, domain string) (string, error) {
	if m.Domain == "" {
		return domain, nil
	}
	return s.expandDomain(m.Domain, domain)
}

func (s *session) matchA(m *Mechanism, domain string) (bool, error) {
	if err := s.countLookup(); err != nil {
		return false, err
	}
	target, err := s.targetDomain(m, domain)
	if err != nil {
		return false, err
	}
	addrs, err := s.lookupIPCounted(target)
	if err != nil {
		return false, err
	}
	return anyPrefixMatch(s.env.IP, addrs, m), nil
}

func (s *session) matchMX(m *Mechanism, domain string) (bool, error) {
	if err := s.countLookup(); err != nil {
		return false, err
	}
	target, err := s.targetDomain(m, domain)
	if err != nil {
		return false, err
	}
	mxs, err := s.c.Resolver.LookupMX(s.ctx, target)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			if verr := s.countVoid(); verr != nil {
				return false, verr
			}
			return false, nil
		}
		return false, fmt.Errorf("%w: MX %q: %v", ErrTemporary, target, err)
	}
	if len(mxs) > s.maxMX {
		return false, fmt.Errorf("spf: more than %d MX records for %q", s.maxMX, target)
	}
	for _, mx := range mxs {
		addrs, err := s.lookupIPNoVoid(strings.TrimSuffix(mx.Host, "."))
		if err != nil {
			return false, err
		}
		if anyPrefixMatch(s.env.IP, addrs, m) {
			return true, nil
		}
	}
	return false, nil
}

func (s *session) matchExists(m *Mechanism, domain string) (bool, error) {
	if err := s.countLookup(); err != nil {
		return false, err
	}
	target, err := s.expandDomain(m.Domain, domain)
	if err != nil {
		return false, err
	}
	// exists: always queries A regardless of the client address family.
	addrs, err := s.c.Resolver.LookupIP(s.ctx, "ip4", target)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			if verr := s.countVoid(); verr != nil {
				return false, verr
			}
			return false, nil
		}
		return false, fmt.Errorf("%w: exists %q: %v", ErrTemporary, target, err)
	}
	if len(addrs) == 0 {
		if verr := s.countVoid(); verr != nil {
			return false, verr
		}
		return false, nil
	}
	return true, nil
}

func (s *session) matchPTR(m *Mechanism, domain string) (bool, error) {
	if err := s.countLookup(); err != nil {
		return false, err
	}
	target := domain
	if m.Domain != "" {
		var err error
		if target, err = s.expandDomain(m.Domain, domain); err != nil {
			return false, err
		}
	}
	names, err := s.c.Resolver.LookupPTR(s.ctx, s.env.IP)
	if err != nil {
		// Any PTR failure means no match, not an error (RFC 7208 §5.5).
		return false, nil
	}
	if len(names) > s.maxPTR {
		names = names[:s.maxPTR]
	}
	for _, n := range names {
		host := strings.TrimSuffix(n, ".")
		addrs, err := s.c.Resolver.LookupIP(s.ctx, ipNetwork(s.env.IP), host)
		if err != nil {
			continue
		}
		var confirmed bool
		for _, a := range addrs {
			if a == s.env.IP {
				confirmed = true
				break
			}
		}
		if !confirmed {
			continue
		}
		if domainIsSuffix(host, target) {
			return true, nil
		}
	}
	return false, nil
}

// lookupIPCounted resolves addresses in the client's family, counting void
// results against the void-lookup budget.
func (s *session) lookupIPCounted(target string) ([]netip.Addr, error) {
	addrs, err := s.c.Resolver.LookupIP(s.ctx, ipNetwork(s.env.IP), target)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			if verr := s.countVoid(); verr != nil {
				return nil, verr
			}
			return nil, nil
		}
		return nil, fmt.Errorf("%w: A/AAAA %q: %v", ErrTemporary, target, err)
	}
	if len(addrs) == 0 {
		if verr := s.countVoid(); verr != nil {
			return nil, verr
		}
	}
	return addrs, nil
}

// lookupIPNoVoid resolves MX target hosts; empty answers are not void
// lookups per §4.6.4 (the MX lookup itself was counted).
func (s *session) lookupIPNoVoid(target string) ([]netip.Addr, error) {
	addrs, err := s.c.Resolver.LookupIP(s.ctx, ipNetwork(s.env.IP), target)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: A/AAAA %q: %v", ErrTemporary, target, err)
	}
	return addrs, nil
}

// explanation fetches and expands the exp= text; failures yield "".
func (s *session) explanation(spec, domain string) string {
	target, err := s.expandDomain(spec, domain)
	if err != nil {
		return ""
	}
	txts, err := s.c.Resolver.LookupTXT(s.ctx, target)
	if err != nil || len(txts) != 1 {
		return ""
	}
	env := s.env
	env.Domain = domain
	out, err := s.c.expander().Expand(s.ctx, txts[0], &env, true)
	if err != nil {
		return ""
	}
	return out
}

// matchIP implements ip4/ip6 prefix matching.
func matchIP(client netip.Addr, m *Mechanism) bool {
	if !client.IsValid() || !m.IP.IsValid() {
		return false
	}
	client = client.Unmap()
	if client.Is4() != m.IP.Is4() {
		return false
	}
	bits := m.Prefix4
	full := 32
	if m.Kind == MechIP6 {
		bits = m.Prefix6
		full = 128
	}
	if bits < 0 {
		bits = full
	}
	p, err := m.IP.Prefix(bits)
	if err != nil {
		return false
	}
	return p.Contains(client)
}

// anyPrefixMatch applies the dual-CIDR comparison of a/mx mechanisms.
func anyPrefixMatch(client netip.Addr, addrs []netip.Addr, m *Mechanism) bool {
	if !client.IsValid() {
		return false
	}
	client = client.Unmap()
	bits := m.Prefix4
	full := 32
	if client.Is6() {
		bits = m.Prefix6
		full = 128
	}
	if bits < 0 {
		bits = full
	}
	for _, a := range addrs {
		a = a.Unmap()
		if a.Is4() != client.Is4() {
			continue
		}
		p, err := a.Prefix(bits)
		if err != nil {
			continue
		}
		if p.Contains(client) {
			return true
		}
	}
	return false
}

// ipNetwork returns the LookupIP network selector for the client family.
func ipNetwork(a netip.Addr) string {
	if a.Unmap().Is4() {
		return "ip4"
	}
	return "ip6"
}

// domainIsSuffix reports whether child equals parent or is a subdomain of
// it (case-insensitive, ignoring trailing dots).
func domainIsSuffix(child, parent string) bool {
	c := strings.ToLower(strings.TrimSuffix(child, "."))
	p := strings.ToLower(strings.TrimSuffix(parent, "."))
	if c == p {
		return true
	}
	return strings.HasSuffix(c, "."+p)
}

// validDomain applies the sanity checks of RFC 7208 §4.3. It scans labels
// in place rather than splitting, so the per-evaluation entry check never
// allocates.
func validDomain(domain string) bool {
	domain = strings.TrimSuffix(domain, ".")
	if domain == "" || len(domain) > maxDomainLen {
		return false
	}
	labels, start := 0, 0
	for i := 0; i <= len(domain); i++ {
		if i < len(domain) && domain[i] != '.' {
			continue
		}
		if l := i - start; l == 0 || l > 63 {
			return false
		}
		labels++
		start = i + 1
	}
	return labels >= 2 // must have at least two labels to be checkable
}
