package spf

import (
	"context"
	"net/netip"
	"testing"
)

// Poison-then-reuse hygiene for the pooled evaluation session: release must
// scrub every field, so a recycled session can never leak a previous
// evaluation's sender, IP, lookup budget, or recursion depth into the next
// CheckHost call.
func TestSessionReleaseScrubsAllState(t *testing.T) {
	s := sessionPool.Get().(*session)
	s.c = &Checker{}
	s.ctx = context.Background()
	s.lookups = 9
	s.voids = 2
	s.maxLookups = 1 // poisoned budget: would permerror any real evaluation
	s.depth = 7
	s.env = MacroEnv{
		Sender: "poison@evil.example",
		IP:     netip.MustParseAddr("203.0.113.66"),
		HELO:   "poison.helo",
	}
	s.release()

	if s.c != nil || s.ctx != nil {
		t.Fatalf("release kept checker/context: %+v", s)
	}
	if s.lookups != 0 || s.voids != 0 || s.maxLookups != 0 || s.depth != 0 {
		t.Fatalf("release kept budget state: %+v", s)
	}
	if s.env.Sender != "" || s.env.HELO != "" || s.env.IP.IsValid() {
		t.Fatalf("release kept macro environment: %+v", s.env)
	}
}

// A poisoned-then-released session must not influence the next evaluation
// drawn from the pool: back-to-back CheckHost calls with different
// identities produce independent, correct results.
func TestSessionPoolReuseAcrossEvaluations(t *testing.T) {
	f := newFakeResolver()
	f.txt["pass.example"] = []string{"v=spf1 ip4:192.0.2.0/24 -all"}
	f.txt["fail.example"] = []string{"v=spf1 -all"}
	c := &Checker{Resolver: f}

	for i := 0; i < 8; i++ {
		if r := c.CheckHost(context.Background(), ip1, "pass.example", "a@pass.example", "h1"); r.Result != ResultPass {
			t.Fatalf("iteration %d: pass.example = %s (%v)", i, r.Result, r.Err)
		}
		if r := c.CheckHost(context.Background(), ip1, "fail.example", "b@fail.example", "h2"); r.Result != ResultFail {
			t.Fatalf("iteration %d: fail.example = %s (%v)", i, r.Result, r.Err)
		}
	}
}

// Poison-then-reuse hygiene for the macro-expansion arena: garbage left in
// a pooled scratch's buffer and parts slices must never reach an expansion
// that reuses it.
func TestMacroScratchPoisonedReuse(t *testing.T) {
	sc := macroScratchPool.Get().(*macroScratch)
	sc.buf = append(sc.buf[:0], "POISONPOISONPOISON"...)
	sc.parts = append(sc.parts[:0], "poison.a", "poison.b", "poison.c")
	macroScratchPool.Put(sc)

	env := &MacroEnv{
		Sender: "user@example.com",
		Domain: "example.com",
		IP:     netip.MustParseAddr("192.0.2.1"),
		HELO:   "mail.example.com",
	}
	// Repeat enough times that the poisoned scratch is drawn with high
	// probability on this P's private pool slot.
	for i := 0; i < 4; i++ {
		got, err := (Expander{}).Expand(context.Background(), "%{ir}.%{l1r-}._spf.%{d2}", env, false)
		if err != nil {
			t.Fatal(err)
		}
		if want := "1.2.0.192.user._spf.example.com"; got != want {
			t.Fatalf("expansion %d = %q, want %q", i, got, want)
		}
	}
}
