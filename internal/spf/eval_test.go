package spf

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"
)

// fakeResolver serves lookups from maps, counting calls.
type fakeResolver struct {
	txt   map[string][]string
	a     map[string][]netip.Addr
	mx    map[string][]MX
	ptr   map[string][]string
	temp  map[string]bool // names that SERVFAIL
	calls int
}

func newFakeResolver() *fakeResolver {
	return &fakeResolver{
		txt:  map[string][]string{},
		a:    map[string][]netip.Addr{},
		mx:   map[string][]MX{},
		ptr:  map[string][]string{},
		temp: map[string]bool{},
	}
}

func (f *fakeResolver) key(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

func (f *fakeResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	f.calls++
	k := f.key(name)
	if f.temp[k] {
		return nil, fmt.Errorf("%w: injected", ErrTemporary)
	}
	if v, ok := f.txt[k]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
}

func (f *fakeResolver) LookupIP(_ context.Context, network, name string) ([]netip.Addr, error) {
	f.calls++
	k := f.key(name)
	if f.temp[k] {
		return nil, fmt.Errorf("%w: injected", ErrTemporary)
	}
	v, ok := f.a[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	match := func(a netip.Addr) bool {
		switch network {
		case "ip4":
			return a.Is4()
		case "ip6":
			return a.Is6() && !a.Is4In6()
		}
		return true
	}
	all := true
	for _, a := range v {
		if !match(a) {
			all = false
			break
		}
	}
	if all {
		return v, nil
	}
	var out []netip.Addr
	for _, a := range v {
		if match(a) {
			out = append(out, a)
		}
	}
	return out, nil
}

func (f *fakeResolver) LookupMX(_ context.Context, name string) ([]MX, error) {
	f.calls++
	k := f.key(name)
	if f.temp[k] {
		return nil, fmt.Errorf("%w: injected", ErrTemporary)
	}
	if v, ok := f.mx[k]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
}

func (f *fakeResolver) LookupPTR(_ context.Context, addr netip.Addr) ([]string, error) {
	f.calls++
	if v, ok := f.ptr[addr.String()]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, addr)
}

var (
	ip1 = netip.MustParseAddr("192.0.2.1")
	ip2 = netip.MustParseAddr("192.0.2.200")
	ip6 = netip.MustParseAddr("2001:db8::1")
)

func check(t *testing.T, r Resolver, ip netip.Addr, domain string) CheckResult {
	t.Helper()
	c := &Checker{Resolver: r}
	return c.CheckHost(context.Background(), ip, domain, "user@"+domain, "helo."+domain)
}

func TestCheckHostPassIP4(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ip4:192.0.2.0/24 -all"}
	res := check(t, f, ip1, "example.com")
	if res.Result != ResultPass {
		t.Fatalf("result = %s (%v)", res.Result, res.Err)
	}
	if res.Mechanism != "ip4:192.0.2.0/24" {
		t.Errorf("mechanism = %q", res.Mechanism)
	}
}

func TestCheckHostFailAll(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ip4:198.51.100.0/24 -all"}
	res := check(t, f, ip1, "example.com")
	if res.Result != ResultFail || res.Mechanism != "-all" {
		t.Fatalf("result = %s via %q", res.Result, res.Mechanism)
	}
}

func TestCheckHostNoneWithoutRecord(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"unrelated txt"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultNone {
		t.Fatalf("result = %s", res.Result)
	}
	// NXDOMAIN is also none.
	if res := check(t, f, ip1, "missing.example"); res.Result != ResultNone {
		t.Fatalf("nxdomain result = %s", res.Result)
	}
}

func TestCheckHostMultipleRecordsPermError(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 -all", "v=spf1 +all"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPermError {
		t.Fatalf("result = %s", res.Result)
	}
}

func TestCheckHostSyntaxPermError(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 bogus:mech"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPermError {
		t.Fatalf("result = %s", res.Result)
	}
}

func TestCheckHostTempError(t *testing.T) {
	f := newFakeResolver()
	f.temp["example.com"] = true
	if res := check(t, f, ip1, "example.com"); res.Result != ResultTempError {
		t.Fatalf("result = %s", res.Result)
	}
}

func TestCheckHostAMechanism(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a -all"}
	f.a["example.com"] = []netip.Addr{ip1}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("a self = %s (%v)", res.Result, res.Err)
	}
	if res := check(t, f, ip2, "example.com"); res.Result != ResultFail {
		t.Fatalf("a mismatch = %s", res.Result)
	}
}

func TestCheckHostATargetAndCIDR(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a:hosts.example.com/24 -all"}
	f.a["hosts.example.com"] = []netip.Addr{netip.MustParseAddr("192.0.2.99")}
	// 192.0.2.1 is inside 192.0.2.99/24.
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("a/24 = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostMX(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 mx -all"}
	f.mx["example.com"] = []MX{{10, "mail.example.com."}}
	f.a["mail.example.com"] = []netip.Addr{ip1}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("mx = %s (%v)", res.Result, res.Err)
	}
	if res := check(t, f, ip2, "example.com"); res.Result != ResultFail {
		t.Fatalf("mx mismatch = %s", res.Result)
	}
}

func TestCheckHostIP6(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ip6:2001:db8::/32 -all"}
	if res := check(t, f, ip6, "example.com"); res.Result != ResultPass {
		t.Fatalf("ip6 = %s", res.Result)
	}
	// IPv4 client never matches ip6.
	if res := check(t, f, ip1, "example.com"); res.Result != ResultFail {
		t.Fatalf("ip4-vs-ip6 = %s", res.Result)
	}
}

func TestCheckHostInclude(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 include:bar.org -all"}
	f.txt["bar.org"] = []string{"v=spf1 ip4:192.0.2.1 -all"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("include pass = %s (%v)", res.Result, res.Err)
	}
	// Fail inside include does not match; outer -all applies.
	if res := check(t, f, ip2, "example.com"); res.Result != ResultFail {
		t.Fatalf("include fail = %s", res.Result)
	}
}

func TestCheckHostIncludeMissingIsPermError(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 include:absent.org -all"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPermError {
		t.Fatalf("include none = %s", res.Result)
	}
}

func TestCheckHostIncludeTempError(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 include:flaky.org -all"}
	f.temp["flaky.org"] = true
	if res := check(t, f, ip1, "example.com"); res.Result != ResultTempError {
		t.Fatalf("include temperror = %s", res.Result)
	}
}

func TestCheckHostRedirect(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 redirect=_spf.example.com"}
	f.txt["_spf.example.com"] = []string{"v=spf1 ip4:192.0.2.1 -all"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("redirect = %s (%v)", res.Result, res.Err)
	}
	if res := check(t, f, ip2, "example.com"); res.Result != ResultFail {
		t.Fatalf("redirect fail = %s", res.Result)
	}
}

func TestCheckHostRedirectToNothingIsPermError(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 redirect=void.example.net"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPermError {
		t.Fatalf("redirect none = %s", res.Result)
	}
}

func TestCheckHostRedirectIgnoredWhenMechanismMatches(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ip4:192.0.2.1 redirect=void.example.net"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("result = %s", res.Result)
	}
}

func TestCheckHostExists(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 exists:%{ir}.rbl.example.org -all"}
	f.a["1.2.0.192.rbl.example.org"] = []netip.Addr{netip.MustParseAddr("127.0.0.2")}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("exists = %s (%v)", res.Result, res.Err)
	}
	if res := check(t, f, ip2, "example.com"); res.Result != ResultFail {
		t.Fatalf("exists miss = %s", res.Result)
	}
}

func TestCheckHostPTR(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ptr -all"}
	f.ptr[ip1.String()] = []string{"mail.example.com."}
	f.a["mail.example.com"] = []netip.Addr{ip1}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultPass {
		t.Fatalf("ptr = %s (%v)", res.Result, res.Err)
	}
	// PTR exists but forward confirmation fails → no match.
	f2 := newFakeResolver()
	f2.txt["example.com"] = []string{"v=spf1 ptr -all"}
	f2.ptr[ip1.String()] = []string{"mail.example.com."}
	f2.a["mail.example.com"] = []netip.Addr{ip2}
	if res := check(t, f2, ip1, "example.com"); res.Result != ResultFail {
		t.Fatalf("unconfirmed ptr = %s", res.Result)
	}
	// PTR for a different domain → no match.
	f3 := newFakeResolver()
	f3.txt["example.com"] = []string{"v=spf1 ptr -all"}
	f3.ptr[ip1.String()] = []string{"mail.other.net."}
	f3.a["mail.other.net"] = []netip.Addr{ip1}
	if res := check(t, f3, ip1, "example.com"); res.Result != ResultFail {
		t.Fatalf("foreign ptr = %s", res.Result)
	}
}

func TestCheckHostLookupLimit(t *testing.T) {
	f := newFakeResolver()
	// Chain of 12 includes exceeds the 10-term budget.
	for i := 0; i < 12; i++ {
		f.txt[fmt.Sprintf("d%d.example", i)] = []string{
			fmt.Sprintf("v=spf1 include:d%d.example -all", i+1)}
	}
	res := check(t, f, ip1, "d0.example")
	if res.Result != ResultPermError {
		t.Fatalf("deep include chain = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostVoidLookupLimit(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 a:v1.example a:v2.example a:v3.example +all"}
	// All three targets are NXDOMAIN: third void lookup exceeds limit 2.
	res := check(t, f, ip1, "example.com")
	if res.Result != ResultPermError {
		t.Fatalf("void limit = %s (%v)", res.Result, res.Err)
	}
}

func TestCheckHostNeutralDefault(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ip4:198.51.100.1"}
	res := check(t, f, ip1, "example.com")
	if res.Result != ResultNeutral || res.Mechanism != "default" {
		t.Fatalf("default = %s via %q", res.Result, res.Mechanism)
	}
}

func TestCheckHostSoftFailAndNeutralQualifiers(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 ~all"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultSoftFail {
		t.Fatalf("~all = %s", res.Result)
	}
	f.txt["example.com"] = []string{"v=spf1 ?all"}
	if res := check(t, f, ip1, "example.com"); res.Result != ResultNeutral {
		t.Fatalf("?all = %s", res.Result)
	}
}

func TestCheckHostExplanation(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 -all exp=why.example.com"}
	f.txt["why.example.com"] = []string{"%{i} is not allowed to send for %{d}"}
	c := &Checker{Resolver: f}
	res := c.CheckHost(context.Background(), ip1, "example.com", "u@example.com", "h.example.com")
	if res.Result != ResultFail {
		t.Fatalf("result = %s", res.Result)
	}
	if res.Explanation != "192.0.2.1 is not allowed to send for example.com" {
		t.Errorf("explanation = %q", res.Explanation)
	}
}

func TestCheckHostInvalidDomain(t *testing.T) {
	f := newFakeResolver()
	for _, d := range []string{"", "com", strings.Repeat("a", 300), "a..b"} {
		if res := check(t, f, ip1, d); res.Result != ResultNone {
			t.Errorf("CheckHost(%q) = %s, want none", d, res.Result)
		}
	}
}

func TestCheckHostMacroTargetUsesDetectionPolicy(t *testing.T) {
	// End-to-end over the evaluator: the SPFail probe policy triggers a
	// compliant %{d1r} lookup.
	f := newFakeResolver()
	domain := "x7k2.s01.spf-test.dns-lab.org"
	policy := "v=spf1 a:%{d1r}." + domain + " a:b." + domain + " -all"
	f.txt[domain] = []string{policy}
	f.a["x7k2."+domain] = []netip.Addr{} // compliant expansion target
	f.a["b."+domain] = []netip.Addr{}    // liveness target
	c := &Checker{Resolver: f}
	res := c.CheckHost(context.Background(), ip2, domain, "mmj7yzdm0tbk@"+domain, "probe.example")
	if res.Result != ResultFail {
		t.Fatalf("probe policy = %s (%v)", res.Result, res.Err)
	}
	// The compliant expansion must have been queried.
	if _, ok := f.a["x7k2."+domain]; !ok {
		t.Fatal("test setup broken")
	}
}

func TestCheckResultErrSurfacesForPermError(t *testing.T) {
	f := newFakeResolver()
	f.txt["example.com"] = []string{"v=spf1 include:absent.org -all"}
	res := check(t, f, ip1, "example.com")
	if res.Err == nil {
		t.Fatal("permerror should carry an explanatory error")
	}
}
