package retry

import (
	"context"
	"testing"
	"time"

	"spfail/internal/clock"
)

// TestBackoffDeterminism: the jittered schedule is a pure function of
// (policy, key, attempt) — same seed, same delays, across fresh Policy
// values and regardless of evaluation order.
func TestBackoffDeterminism(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		keys []string
	}{
		{
			name: "jittered exponential",
			p:    Policy{MaxAttempts: 5, BaseDelay: 500 * time.Millisecond, MaxDelay: 30 * time.Second, Multiplier: 2, Jitter: 0.3, Seed: 42},
			keys: []string{"198.51.100.7:25", "203.0.113.9:25", "dns:192.0.2.53"},
		},
		{
			name: "no jitter",
			p:    Policy{MaxAttempts: 4, BaseDelay: time.Second, Multiplier: 3},
			keys: []string{"a", "b"},
		},
		{
			name: "capped",
			p:    Policy{MaxAttempts: 8, BaseDelay: time.Second, MaxDelay: 4 * time.Second, Multiplier: 2, Jitter: 0.5, Seed: -9},
			keys: []string{"x"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, key := range tc.keys {
				var first []time.Duration
				for attempt := 1; attempt < tc.p.MaxAttempts; attempt++ {
					first = append(first, tc.p.Backoff(key, attempt))
				}
				// Re-evaluate via a copied policy in reverse order.
				q := tc.p
				for attempt := tc.p.MaxAttempts - 1; attempt >= 1; attempt-- {
					got := q.Backoff(key, attempt)
					if got != first[attempt-1] {
						t.Fatalf("key %q attempt %d: %v != %v (schedule not deterministic)", key, attempt, got, first[attempt-1])
					}
				}
			}
		})
	}
}

// TestBackoffJitterBounds: jitter stays within ±Jitter of the nominal delay
// and actually varies across keys (otherwise it is not jitter).
func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: time.Second, Multiplier: 2, Jitter: 0.25, Seed: 7}
	nominal := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second}
	distinct := false
	var prev time.Duration
	for i, want := range nominal {
		attempt := i + 1
		for _, key := range []string{"h1", "h2", "h3", "h4"} {
			got := p.Backoff(key, attempt)
			lo := time.Duration(float64(want) * (1 - p.Jitter))
			hi := time.Duration(float64(want) * (1 + p.Jitter))
			if got < lo || got > hi {
				t.Fatalf("attempt %d key %q: backoff %v outside [%v, %v]", attempt, key, got, lo, hi)
			}
			if prev != 0 && got != prev {
				distinct = true
			}
			prev = got
		}
	}
	if !distinct {
		t.Fatal("jittered backoffs identical across keys; jitter is not being applied")
	}
}

// TestBackoffSeedChangesSchedule: different seeds produce different
// schedules (else the seed knob is dead).
func TestBackoffSeedChangesSchedule(t *testing.T) {
	a := Policy{MaxAttempts: 5, BaseDelay: time.Second, Multiplier: 2, Jitter: 0.4, Seed: 1}
	b := a
	b.Seed = 2
	same := true
	for attempt := 1; attempt < a.MaxAttempts; attempt++ {
		if a.Backoff("host", attempt) != b.Backoff("host", attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestBackoffZeroValue(t *testing.T) {
	var p Policy
	if p.Enabled() {
		t.Fatal("zero Policy must be disabled")
	}
	if d := p.Backoff("k", 1); d != 0 {
		t.Fatalf("zero Policy backoff = %v, want 0", d)
	}
}

func TestPolicyNormalize(t *testing.T) {
	cases := []struct {
		name    string
		in      Policy
		wantErr bool
	}{
		{"zero ok", Policy{}, false},
		{"filled ok", Policy{MaxAttempts: 3, BaseDelay: time.Second, Jitter: 0.2}, false},
		{"negative attempts", Policy{MaxAttempts: -1}, true},
		{"negative base", Policy{BaseDelay: -1}, true},
		{"negative max", Policy{MaxDelay: -1}, true},
		{"max below base", Policy{BaseDelay: 2 * time.Second, MaxDelay: time.Second}, true},
		{"jitter too big", Policy{Jitter: 1}, true},
		{"negative jitter", Policy{Jitter: -0.1}, true},
		{"negative multiplier", Policy{Multiplier: -2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.in.Normalize()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Normalize(%+v) = %+v, want error", tc.in, out)
				}
				return
			}
			if err != nil {
				t.Fatalf("Normalize(%+v) error: %v", tc.in, err)
			}
			if out.MaxAttempts < 1 {
				t.Fatalf("normalized MaxAttempts %d < 1", out.MaxAttempts)
			}
			if out.Multiplier == 0 {
				t.Fatal("normalized Multiplier still 0")
			}
		})
	}
}

// TestWaitOnSimClock: Wait sleeps exactly the deterministic backoff on the
// virtual clock.
func TestWaitOnSimClock(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.5, Seed: 11}
	want := p.Backoff("host:25", 2)
	sim := clock.NewSim(time.Unix(0, 0))
	defer sim.Close()
	start := sim.Now()
	done := make(chan error, 1)
	clock.Go(sim, func() {
		done <- p.Wait(context.Background(), sim, "host:25", 2)
	})
	if err := <-done; err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := sim.Now().Sub(start); got != want {
		t.Fatalf("virtual time advanced %v, want backoff %v", got, want)
	}
}

func TestWaitCancelled(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim := clock.NewSim(time.Unix(0, 0))
	defer sim.Close()
	done := make(chan error, 1)
	clock.Go(sim, func() {
		done <- p.Wait(ctx, sim, "k", 1)
	})
	if err := <-done; err == nil {
		t.Fatal("Wait with cancelled ctx returned nil")
	}
}

// TestBreakerTransitions walks the closed → open → half-open → closed and
// half-open → open paths.
func TestBreakerTransitions(t *testing.T) {
	cfg, err := BreakerConfig{Threshold: 3, Cooldown: time.Minute}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	b := NewBreakers(cfg)
	t0 := time.Unix(1000, 0)
	const key = "198.51.100.7"

	// Closed: admits, counts failures, opens at the threshold.
	for i := 0; i < 2; i++ {
		if !b.Allow(key, t0) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		if b.Failure(key, t0) {
			t.Fatalf("breaker opened after %d failures (threshold 3)", i+1)
		}
	}
	if st := b.State(key, t0); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	if !b.Failure(key, t0) {
		t.Fatal("third failure did not open the breaker")
	}
	if st := b.State(key, t0); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Open: rejects until the cooldown elapses.
	if b.Allow(key, t0.Add(59*time.Second)) {
		t.Fatal("open breaker admitted before cooldown")
	}
	// Cooldown elapsed: half-open admits one trial.
	if !b.Allow(key, t0.Add(time.Minute)) {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if st := b.State(key, t0.Add(time.Minute)); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}

	// Half-open trial fails → reopens immediately for a fresh cooldown.
	t1 := t0.Add(time.Minute)
	if !b.Failure(key, t1) {
		t.Fatal("half-open failure did not reopen the breaker")
	}
	if b.Allow(key, t1.Add(30*time.Second)) {
		t.Fatal("reopened breaker admitted before its new cooldown")
	}

	// Second trial succeeds → closed, counter reset.
	t2 := t1.Add(time.Minute)
	if !b.Allow(key, t2) {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.Success(key)
	if st := b.State(key, t2); st != BreakerClosed {
		t.Fatalf("state after success = %v, want closed", st)
	}
	// Counter was reset: two failures do not reopen.
	b.Failure(key, t2)
	if b.Failure(key, t2) {
		t.Fatal("breaker reopened after 2 post-reset failures (threshold 3)")
	}

	// Other keys are independent.
	if !b.Allow("203.0.113.1", t0) {
		t.Fatal("unrelated key affected by breaker state")
	}
}

func TestBreakersDisabledAndNil(t *testing.T) {
	var nilB *Breakers
	now := time.Unix(0, 0)
	if !nilB.Allow("k", now) {
		t.Fatal("nil Breakers must always allow")
	}
	nilB.Success("k")
	if nilB.Failure("k", now) {
		t.Fatal("nil Breakers reported open")
	}
	zero := NewBreakers(BreakerConfig{})
	for i := 0; i < 100; i++ {
		if zero.Failure("k", now) {
			t.Fatal("disabled breaker opened")
		}
	}
	if !zero.Allow("k", now) {
		t.Fatal("disabled breaker refused")
	}
}

func TestBreakerConfigNormalize(t *testing.T) {
	if _, err := (BreakerConfig{Cooldown: -1}).Normalize(); err == nil {
		t.Fatal("negative cooldown accepted")
	}
	got, err := BreakerConfig{Threshold: 2}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if got.Cooldown != 30*time.Minute {
		t.Fatalf("default cooldown = %v, want 30m", got.Cooldown)
	}
}
