// Package retry is the shared fault-tolerance policy layer for the probing
// stack: bounded attempts with exponential backoff, seeded deterministic
// jitter computed on whatever clock the caller injects, and a per-key
// circuit breaker. The paper's four-month campaign survived SERVFAIL
// bursts, greylisting tarpits, and flaky MTAs only because every layer
// retried with discipline; this package gives internal/dnsclient and
// internal/core.Prober one policy vocabulary so campaigns stay
// byte-deterministic under the virtual clock (same seed → same jittered
// delays, same breaker transitions).
package retry

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/trace"
)

// Policy is a bounded exponential-backoff schedule. The zero value means
// "one attempt, no waits", so unconfigured components keep their current
// fail-fast behaviour.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values ≤ 1 disable retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. 0 means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay per retry; values ≤ 1 mean constant
	// delay, 0 defaults to 2.
	Multiplier float64
	// Jitter spreads each delay by ±Jitter fraction (e.g. 0.2 → ±20%),
	// derived deterministically from Seed, the caller's key, and the
	// attempt number — never from a shared RNG stream, so concurrent
	// probes cannot perturb each other's schedules.
	Jitter float64
	// Seed feeds the jitter hash.
	Seed int64
}

// Enabled reports whether the policy performs any retries.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// Normalize validates the policy and fills defaults. The zero value
// normalizes to a single attempt.
func (p Policy) Normalize() (Policy, error) {
	if p.MaxAttempts < 0 {
		return p, fmt.Errorf("retry: MaxAttempts %d is negative", p.MaxAttempts)
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay < 0 {
		return p, fmt.Errorf("retry: BaseDelay %v is negative", p.BaseDelay)
	}
	if p.MaxDelay < 0 {
		return p, fmt.Errorf("retry: MaxDelay %v is negative", p.MaxDelay)
	}
	if p.MaxDelay > 0 && p.MaxDelay < p.BaseDelay {
		return p, fmt.Errorf("retry: MaxDelay %v is below BaseDelay %v", p.MaxDelay, p.BaseDelay)
	}
	if p.Multiplier < 0 {
		return p, fmt.Errorf("retry: Multiplier %v is negative", p.Multiplier)
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return p, fmt.Errorf("retry: Jitter %v outside [0,1)", p.Jitter)
	}
	return p, nil
}

// Backoff returns the delay before retry number attempt (1-based: attempt 1
// is the wait after the first failure) for the given key. It is a pure
// function of (policy, key, attempt): two runs with the same seed produce
// identical jittered schedules regardless of scheduler interleaving.
func (p Policy) Backoff(key string, attempt int) time.Duration {
	if attempt < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult == 0 {
		mult = 2
	}
	if mult < 1 {
		mult = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// Map the hash onto [-1, 1) and scale by the jitter fraction.
		frac := float64(int64(hash64(p.Seed, key, uint64(attempt))%2_000_001)-1_000_000) / 1_000_000
		d *= 1 + p.Jitter*frac
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// Wait sleeps the backoff for attempt on clk. It returns ctx.Err() when the
// context ends first, nil otherwise (including a zero-length backoff).
func (p Policy) Wait(ctx context.Context, clk clock.Clock, key string, attempt int) error {
	d := p.Backoff(key, attempt)
	if d <= 0 {
		return ctx.Err()
	}
	if clk == nil {
		clk = clock.Real{}
	}
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.Event("retry.wait",
			trace.String("key", key),
			trace.Int("attempt", attempt),
			trace.Duration("delay", d),
		)
	}
	return clk.Sleep(ctx, d)
}

// hash64 is an FNV-1a mix of the jitter inputs.
func hash64(seed int64, key string, n uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// BreakerState is a circuit breaker's position.
type BreakerState string

// The three classical breaker states.
const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one trial request probes whether the target
	// recovered; success closes the breaker, failure reopens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig parameterizes the per-key circuit breakers.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens a breaker;
	// values ≤ 0 disable breaking entirely.
	Threshold int
	// Cooldown is how long an open breaker rejects before moving to
	// half-open.
	Cooldown time.Duration
}

// Enabled reports whether breakers ever open.
func (c BreakerConfig) Enabled() bool { return c.Threshold > 0 }

// Normalize validates the config and fills defaults (30 min cooldown).
func (c BreakerConfig) Normalize() (BreakerConfig, error) {
	if c.Cooldown < 0 {
		return c, fmt.Errorf("retry: breaker Cooldown %v is negative", c.Cooldown)
	}
	if c.Enabled() && c.Cooldown == 0 {
		c.Cooldown = 30 * time.Minute
	}
	return c, nil
}

// breaker is the state for one key.
type breaker struct {
	state     BreakerState
	failures  int
	openUntil time.Time
}

// Breakers is a set of circuit breakers keyed by string (the probing stack
// keys them by target address). The zero value and the nil pointer are
// both usable and never open, so unwired components pay nothing.
//
// Time flows in from the caller (the campaign's clock), keeping breaker
// transitions on the virtual timeline and therefore deterministic.
type Breakers struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*breaker
}

// NewBreakers builds a breaker set; cfg should be normalized.
func NewBreakers(cfg BreakerConfig) *Breakers {
	return &Breakers{cfg: cfg}
}

func (b *Breakers) get(key string) *breaker {
	if b.m == nil {
		b.m = make(map[string]*breaker)
	}
	st := b.m[key]
	if st == nil {
		st = &breaker{state: BreakerClosed}
		b.m[key] = st
	}
	return st
}

// Allow reports whether a request for key may proceed at time now. An open
// breaker whose cooldown has elapsed transitions to half-open and admits
// the caller as its trial request.
func (b *Breakers) Allow(key string, now time.Time) bool {
	if b == nil || !b.cfg.Enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.get(key)
	switch st.state {
	case BreakerOpen:
		if now.Before(st.openUntil) {
			return false
		}
		st.state = BreakerHalfOpen
		return true
	default:
		return true
	}
}

// Success records a successful request, closing the breaker.
func (b *Breakers) Success(key string) {
	if b == nil || !b.cfg.Enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.get(key)
	st.state = BreakerClosed
	st.failures = 0
}

// Failure records a failed request at time now. In half-open it reopens
// immediately; in closed it opens once Threshold consecutive failures
// accumulate. It reports whether the breaker is now open.
func (b *Breakers) Failure(key string, now time.Time) bool {
	if b == nil || !b.cfg.Enabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.get(key)
	if st.state == BreakerHalfOpen {
		st.state = BreakerOpen
		st.openUntil = now.Add(b.cfg.Cooldown)
		return true
	}
	st.failures++
	if st.failures >= b.cfg.Threshold {
		st.state = BreakerOpen
		st.openUntil = now.Add(b.cfg.Cooldown)
		return true
	}
	return false
}

// BreakerSnapshot is one breaker's serializable state, used by the
// checkpoint store to carry breaker positions across a crash/resume
// boundary (breaker state accumulates across longitudinal rounds, so a
// resumed study must restore it to stay byte-identical).
type BreakerSnapshot struct {
	Key       string       `json:"key"`
	State     BreakerState `json:"state"`
	Failures  int          `json:"failures,omitempty"`
	OpenUntil time.Time    `json:"open_until"`
}

// Snapshot returns every breaker's state, sorted by key so the encoding
// is deterministic. A nil or disabled set snapshots to nil.
func (b *Breakers) Snapshot() []BreakerSnapshot {
	if b == nil || !b.cfg.Enabled() {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.m) == 0 {
		return nil
	}
	out := make([]BreakerSnapshot, 0, len(b.m))
	for key, st := range b.m {
		out = append(out, BreakerSnapshot{Key: key, State: st.state, Failures: st.failures, OpenUntil: st.openUntil})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore replaces the set's state with a snapshot taken by Snapshot.
// Unknown states are normalized to closed rather than rejected: a
// checkpoint from a newer version must fail loudly at decode time, not
// silently corrupt breaker positions here.
func (b *Breakers) Restore(snap []BreakerSnapshot) {
	if b == nil || !b.cfg.Enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = make(map[string]*breaker, len(snap))
	for _, s := range snap {
		state := s.State
		switch state {
		case BreakerClosed, BreakerOpen, BreakerHalfOpen:
		default:
			state = BreakerClosed
		}
		b.m[s.Key] = &breaker{state: state, failures: s.Failures, openUntil: s.OpenUntil}
	}
}

// State returns the breaker state for key at time now (resolving an
// elapsed cooldown to half-open without mutating it).
func (b *Breakers) State(key string, now time.Time) BreakerState {
	if b == nil || !b.cfg.Enabled() {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.m[key]
	if !ok {
		return BreakerClosed
	}
	if st.state == BreakerOpen && !now.Before(st.openUntil) {
		return BreakerHalfOpen
	}
	return st.state
}
