package dnsserver

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"spfail/internal/dnsmsg"
)

// ParseZoneFile reads a simplified RFC 1035 master file into a ZoneSet.
// Supported: $ORIGIN and $TTL directives; relative and absolute owner
// names; "@" for the origin; blank owner repeating the previous one;
// ";" comments; optional TTL and class fields; record types SOA, NS, MX,
// A, AAAA, TXT (with one or more quoted strings), CNAME, and PTR.
//
// It exists so lab deployments of cmd/spfail-dns can serve operator-
// provided records next to the dynamic measurement zone, and so tests can
// express zone content legibly.
func ParseZoneFile(r io.Reader) (*ZoneSet, error) {
	z := NewZoneSet()
	p := &zoneParser{zone: z, defaultTTL: 300}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := p.line(sc.Text()); err != nil {
			return nil, fmt.Errorf("dnsserver: zone file line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return z, nil
}

// ParseZoneString is ParseZoneFile over a string.
func ParseZoneString(s string) (*ZoneSet, error) {
	return ParseZoneFile(strings.NewReader(s))
}

type zoneParser struct {
	zone       *ZoneSet
	origin     dnsmsg.Name
	hasOrigin  bool
	defaultTTL uint32
	lastOwner  dnsmsg.Name
	hasOwner   bool
}

// line processes one master-file line.
func (p *zoneParser) line(raw string) error {
	// Strip comments outside quotes.
	line := stripComment(raw)
	if strings.TrimSpace(line) == "" {
		return nil
	}
	fields, err := splitQuoted(line)
	if err != nil {
		return err
	}
	if len(fields) == 0 {
		return nil
	}

	switch strings.ToUpper(fields[0]) {
	case "$ORIGIN":
		if len(fields) != 2 {
			return fmt.Errorf("$ORIGIN wants one argument")
		}
		n, err := dnsmsg.ParseName(fields[1])
		if err != nil {
			return err
		}
		p.origin = n
		p.hasOrigin = true
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return fmt.Errorf("$TTL wants one argument")
		}
		ttl, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad $TTL %q", fields[1])
		}
		p.defaultTTL = uint32(ttl)
		return nil
	}

	// Owner field: present unless the line starts with whitespace.
	idx := 0
	owner := p.lastOwner
	if !startsWithSpace(raw) {
		n, err := p.name(fields[0])
		if err != nil {
			return fmt.Errorf("bad owner %q: %w", fields[0], err)
		}
		owner = n
		p.lastOwner = n
		p.hasOwner = true
		idx = 1
	} else if !p.hasOwner {
		return fmt.Errorf("record with no previous owner")
	}

	ttl := p.defaultTTL
	// Optional TTL and/or class, in either order.
	for idx < len(fields) {
		f := strings.ToUpper(fields[idx])
		if f == "IN" {
			idx++
			continue
		}
		if v, err := strconv.ParseUint(fields[idx], 10, 32); err == nil && !isTypeToken(f) {
			ttl = uint32(v)
			idx++
			continue
		}
		break
	}
	if idx >= len(fields) {
		return fmt.Errorf("missing record type")
	}
	typ := strings.ToUpper(fields[idx])
	args := fields[idx+1:]

	data, err := p.rdata(typ, args)
	if err != nil {
		return err
	}
	p.zone.Add(dnsmsg.Record{Name: owner, Class: dnsmsg.ClassIN, TTL: ttl, Data: data})
	return nil
}

func (p *zoneParser) rdata(typ string, args []string) (dnsmsg.RData, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d fields, got %d", typ, n, len(args))
		}
		return nil
	}
	switch typ {
	case "A":
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(args[0])
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("bad A address %q", args[0])
		}
		return dnsmsg.A{Addr: a}, nil
	case "AAAA":
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(args[0])
		if err != nil || !a.Is6() {
			return nil, fmt.Errorf("bad AAAA address %q", args[0])
		}
		return dnsmsg.AAAA{Addr: a}, nil
	case "MX":
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", args[0])
		}
		host, err := p.name(args[1])
		if err != nil {
			return nil, err
		}
		return dnsmsg.MX{Preference: uint16(pref), Host: host}, nil
	case "TXT":
		if len(args) == 0 {
			return nil, fmt.Errorf("TXT wants at least one string")
		}
		return dnsmsg.TXT{Strings: args}, nil
	case "CNAME":
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(args[0])
		if err != nil {
			return nil, err
		}
		return dnsmsg.CNAME{Target: n}, nil
	case "NS":
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(args[0])
		if err != nil {
			return nil, err
		}
		return dnsmsg.NS{Host: n}, nil
	case "PTR":
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(args[0])
		if err != nil {
			return nil, err
		}
		return dnsmsg.PTR{Target: n}, nil
	case "SOA":
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := p.name(args[0])
		if err != nil {
			return nil, err
		}
		rname, err := p.name(args[1])
		if err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i, s := range args[2:] {
			v, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", s)
			}
			nums[i] = uint32(v)
		}
		return dnsmsg.SOA{
			MName: mname, RName: rname,
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	default:
		return nil, fmt.Errorf("unsupported record type %q", typ)
	}
}

// name resolves a possibly-relative owner/target against the origin.
func (p *zoneParser) name(s string) (dnsmsg.Name, error) {
	if s == "@" {
		if !p.hasOrigin {
			return dnsmsg.Name{}, fmt.Errorf("@ with no $ORIGIN")
		}
		return p.origin, nil
	}
	if strings.HasSuffix(s, ".") {
		return dnsmsg.ParseName(s)
	}
	if !p.hasOrigin {
		return dnsmsg.Name{}, fmt.Errorf("relative name %q with no $ORIGIN", s)
	}
	rel, err := dnsmsg.ParseName(s)
	if err != nil {
		return dnsmsg.Name{}, err
	}
	labels := append(rel.Labels(), p.origin.Labels()...)
	return dnsmsg.NewName(labels...)
}

// stripComment removes a trailing ;-comment, honoring quotes.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// splitQuoted splits on whitespace, keeping quoted strings as single
// fields (quotes removed, \" unescaped).
func splitQuoted(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuote {
				out = append(out, cur.String()) // may be empty string
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case c == '\\' && inQuote && i+1 < len(line):
			i++
			cur.WriteByte(line[i])
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return out, nil
}

func startsWithSpace(s string) bool {
	return len(s) > 0 && (s[0] == ' ' || s[0] == '\t')
}

func isTypeToken(s string) bool {
	switch s {
	case "A", "AAAA", "MX", "TXT", "CNAME", "NS", "PTR", "SOA":
		return true
	}
	return false
}
