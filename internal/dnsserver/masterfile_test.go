package dnsserver

import (
	"strings"
	"testing"

	"spfail/internal/dnsmsg"
)

const sampleZone = `
$ORIGIN example.com.
$TTL 300
@       IN  SOA ns1 hostmaster 2021101100 7200 900 86400 60
@       IN  NS  ns1
@           MX  10 mail
        IN  MX  20 backup.other.net.
mail    60  A   192.0.2.1
mail    IN  AAAA 2001:db8::1
@       IN  TXT "v=spf1 mx -all"           ; the policy
multi   IN  TXT "part one " "part two"
www     IN  CNAME mail
quoted  IN  TXT "semi;colon \"inside\" quotes"
`

func TestParseZoneFileBasics(t *testing.T) {
	z, err := ParseZoneString(sampleZone)
	if err != nil {
		t.Fatal(err)
	}
	apex := name("example.com")

	soa, _ := z.Lookup(apex, dnsmsg.TypeSOA)
	if len(soa) != 1 {
		t.Fatalf("SOA = %v", soa)
	}
	s := soa[0].Data.(dnsmsg.SOA)
	if !s.MName.Equal(name("ns1.example.com")) || s.Serial != 2021101100 || s.Minimum != 60 {
		t.Errorf("SOA = %+v", s)
	}

	mx, _ := z.Lookup(apex, dnsmsg.TypeMX)
	if len(mx) != 2 {
		t.Fatalf("MX = %v", mx)
	}
	if !mx[0].Data.(dnsmsg.MX).Host.Equal(name("mail.example.com")) {
		t.Errorf("relative MX target = %v", mx[0].Data)
	}
	if !mx[1].Data.(dnsmsg.MX).Host.Equal(name("backup.other.net")) {
		t.Errorf("absolute MX target = %v", mx[1].Data)
	}

	a, _ := z.Lookup(name("mail.example.com"), dnsmsg.TypeA)
	if len(a) != 1 || a[0].TTL != 60 {
		t.Fatalf("A = %v", a)
	}
	aaaa, _ := z.Lookup(name("mail.example.com"), dnsmsg.TypeAAAA)
	if len(aaaa) != 1 {
		t.Fatalf("AAAA = %v", aaaa)
	}

	txt, _ := z.Lookup(apex, dnsmsg.TypeTXT)
	if len(txt) != 1 || txt[0].Data.(dnsmsg.TXT).Joined() != "v=spf1 mx -all" {
		t.Errorf("TXT = %v", txt)
	}
	if txt[0].TTL != 300 {
		t.Errorf("default TTL = %d", txt[0].TTL)
	}

	multi, _ := z.Lookup(name("multi.example.com"), dnsmsg.TypeTXT)
	if got := multi[0].Data.(dnsmsg.TXT).Joined(); got != "part one part two" {
		t.Errorf("multi-string TXT = %q", got)
	}

	cname, _ := z.Lookup(name("www.example.com"), dnsmsg.TypeCNAME)
	if len(cname) != 1 {
		t.Fatalf("CNAME = %v", cname)
	}

	q, _ := z.Lookup(name("quoted.example.com"), dnsmsg.TypeTXT)
	if got := q[0].Data.(dnsmsg.TXT).Joined(); got != `semi;colon "inside" quotes` {
		t.Errorf("quoted TXT = %q", got)
	}
}

func TestParseZoneFileBlankOwnerRepeats(t *testing.T) {
	z, err := ParseZoneString(`$ORIGIN x.example.
host IN A 192.0.2.1
     IN A 192.0.2.2
`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := z.Lookup(name("host.x.example"), dnsmsg.TypeA)
	if len(a) != 2 {
		t.Fatalf("repeated-owner A records = %v", a)
	}
}

func TestParseZoneFileErrors(t *testing.T) {
	bad := []string{
		`host IN A 192.0.2.1`, // relative name without origin
		"$ORIGIN x.example.\nhost IN A 999.1.1.1",
		"$ORIGIN x.example.\nhost IN AAAA 192.0.2.1",
		"$ORIGIN x.example.\nhost IN MX ten mail",
		"$ORIGIN x.example.\nhost IN FOO bar",
		"$ORIGIN x.example.\nhost IN TXT \"unterminated",
		"$ORIGIN x.example.\nhost IN",
		"$TTL abc",
		"$ORIGIN",
		"$ORIGIN x.example.\n   IN A 192.0.2.1", // blank owner with no previous
	}
	for _, s := range bad {
		if _, err := ParseZoneString(s); err == nil {
			t.Errorf("ParseZoneString(%q) should fail", s)
		}
	}
}

func TestParsedZoneServes(t *testing.T) {
	z, err := ParseZoneString(strings.ReplaceAll(sampleZone, "\t", "  "))
	if err != nil {
		t.Fatal(err)
	}
	resp := z.ServeDNS(dnsmsg.NewQuery(9, name("example.com"), dnsmsg.TypeTXT), nil)
	if len(resp.Answers) != 1 {
		t.Fatalf("served answers = %v", resp.Answers)
	}
	// NXDOMAIN gets the file's SOA.
	resp = z.ServeDNS(dnsmsg.NewQuery(9, name("missing.example.com"), dnsmsg.TypeA), nil)
	if resp.Header.RCode != dnsmsg.RCodeNXDomain || len(resp.Authority) != 1 {
		t.Fatalf("negative answer = %+v", resp)
	}
}
