// Package dnsserver implements an authoritative DNS server that runs on any
// netsim.Network (the real Internet or the in-memory fabric). It serves
// static zones, and — central to SPFail — a dynamic test zone that
// synthesizes per-probe SPF policies and logs every inbound query so the
// detector can fingerprint how remote mail servers expand SPF macros.
package dnsserver

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"spfail/internal/dnsmsg"
	"spfail/internal/netsim"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// MaxUDPPayload is the classic 512-byte UDP response limit (RFC 1035
// §4.2.1); larger responses are truncated with TC=1 to force TCP retry.
const MaxUDPPayload = 512

// Handler answers DNS queries. Implementations must be safe for concurrent
// use.
type Handler interface {
	// ServeDNS produces a response for the query. from identifies the
	// client (used for query logging and attribution). A nil return is
	// answered with SERVFAIL.
	ServeDNS(q *dnsmsg.Message, from net.Addr) *dnsmsg.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q *dnsmsg.Message, from net.Addr) *dnsmsg.Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(q *dnsmsg.Message, from net.Addr) *dnsmsg.Message {
	return f(q, from)
}

// Server serves DNS over UDP and TCP.
type Server struct {
	Net     netsim.Network
	Addr    string // "ip:port", typically ":53"
	Handler Handler
	// Metrics, when non-nil, receives query/error/qtype counters
	// (see docs/telemetry.md). Set before Start.
	Metrics *telemetry.Registry
	// Trace, when non-nil, records per-query events on the span of the
	// probe that owns the querying host (host-routed; see internal/trace).
	// Set before Start.
	Trace *trace.Tracer

	mu  sync.Mutex
	pc  net.PacketConn
	l   net.Listener
	wg  sync.WaitGroup
	run bool
}

// Start begins serving on both transports. It returns once listeners are
// bound; serving continues until Stop or ctx cancellation.
func (s *Server) Start(ctx context.Context) error {
	pc, err := s.Net.ListenPacket("udp", s.Addr)
	if err != nil {
		return err
	}
	l, err := s.Net.Listen("tcp", s.Addr)
	if err != nil {
		_ = pc.Close()
		return err
	}
	s.mu.Lock()
	s.pc, s.l, s.run = pc, l, true
	s.mu.Unlock()

	s.wg.Add(2)
	go s.serveUDP(pc)
	go s.serveTCP(l)
	if ctx != nil {
		go func() {
			<-ctx.Done()
			s.Stop()
		}()
	}
	return nil
}

// Stop closes the listeners and waits for in-flight handlers.
func (s *Server) Stop() {
	s.mu.Lock()
	if !s.run {
		s.mu.Unlock()
		return
	}
	s.run = false
	pc, l := s.pc, s.l
	s.mu.Unlock()
	_ = pc.Close()
	_ = l.Close()
	s.wg.Wait()
}

func (s *Server) serveUDP(pc net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	out := make([]byte, 0, MaxUDPPayload)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		// Template fast path: answer inline from precompiled wire bytes,
		// with no packet copy, no goroutine, and no decode/encode.
		var hit bool
		if out, hit = s.ServeQuery(out[:0], buf[:n], from); hit {
			_, _ = pc.WriteTo(out, from)
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		s.wg.Add(1)
		go func(pkt []byte, from net.Addr) {
			defer s.wg.Done()
			resp := s.respond(pkt, from)
			if resp == nil {
				return
			}
			out, err := resp.Pack()
			if err != nil {
				return
			}
			if len(out) > MaxUDPPayload {
				// Truncate to header + question and signal TC.
				s.Metrics.Counter("dns.server.truncated").Inc()
				tr := &dnsmsg.Message{Header: resp.Header, Questions: resp.Questions}
				tr.Header.Truncated = true
				if out, err = tr.Pack(); err != nil {
					return
				}
			}
			pc.WriteTo(out, from)
		}(pkt, from)
	}
}

func (s *Server) serveTCP(l net.Listener) {
	defer s.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(c net.Conn) {
			defer s.wg.Done()
			defer c.Close()
			for {
				pkt, err := ReadTCPMessage(c)
				if err != nil {
					return
				}
				resp := s.respond(pkt, c.RemoteAddr())
				if resp == nil {
					return
				}
				if err := WriteTCPMessage(c, resp); err != nil {
					return
				}
			}
		}(c)
	}
}

// respond decodes, dispatches, and encodes one transaction.
func (s *Server) respond(pkt []byte, from net.Addr) *dnsmsg.Message {
	q, err := dnsmsg.Unpack(pkt)
	if err != nil || q.Header.Response || len(q.Questions) == 0 {
		s.Metrics.Counter("dns.server.decode_errors").Inc()
		return nil
	}
	if q.Header.OpCode != dnsmsg.OpCodeQuery {
		r := q.Reply()
		r.Header.RCode = dnsmsg.RCodeNotImp
		return r
	}
	s.Metrics.Counter("dns.server.queries").Inc()
	s.Metrics.Counter("dns.server.qtype." + q.Questions[0].Type.String()).Inc()
	resp := s.Handler.ServeDNS(q, from)
	if resp == nil {
		resp = q.Reply()
		resp.Header.RCode = dnsmsg.RCodeServFail
	}
	if resp.Header.RCode == dnsmsg.RCodeServFail {
		s.Metrics.Counter("dns.server.servfail").Inc()
	}
	if s.Trace != nil {
		if sp := s.Trace.HostSpan(clientHost(from)); sp != nil {
			sp.Event("dns.server.query",
				trace.String("name", q.Questions[0].Name.String()),
				trace.String("type", q.Questions[0].Type.String()),
				trace.String("rcode", resp.Header.RCode.String()),
			)
		}
	}
	return resp
}

// clientHost strips the port from a client address for host-routed trace
// attribution. Only called when tracing is enabled.
func clientHost(from net.Addr) string {
	host, _, err := net.SplitHostPort(from.String())
	if err != nil {
		return from.String()
	}
	return host
}

// ReadTCPMessage reads one length-prefixed DNS message (RFC 1035 §4.2.2).
func ReadTCPMessage(c net.Conn) ([]byte, error) {
	var lb [2]byte
	if _, err := io.ReadFull(c, lb[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(lb[:]))
	if n == 0 {
		return nil, errors.New("dnsserver: zero-length TCP message")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(c net.Conn, m *dnsmsg.Message) error {
	body, err := m.Pack()
	if err != nil {
		return err
	}
	out := make([]byte, 2+len(body))
	binary.BigEndian.PutUint16(out, uint16(len(body)))
	copy(out[2:], body)
	_, err = c.Write(out)
	return err
}

// QueryEvent is one observed query, the raw material of SPFail detection.
type QueryEvent struct {
	Time time.Time
	From string // client "ip:port"
	Name dnsmsg.Name
	Type dnsmsg.Type
}

// Sink receives query events as they arrive.
type Sink interface {
	Observe(ev QueryEvent)
}

// QueryLog is a thread-safe append-only log of observed queries with
// optional fan-out to sinks.
type QueryLog struct {
	mu     sync.Mutex
	events []QueryEvent
	sinks  []Sink
}

// Observe implements Sink so logs can be chained.
func (l *QueryLog) Observe(ev QueryEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	sinks := l.sinks
	l.mu.Unlock()
	for _, s := range sinks {
		s.Observe(ev)
	}
}

// AddSink registers an additional receiver for future events.
func (l *QueryLog) AddSink(s Sink) {
	l.mu.Lock()
	l.sinks = append(l.sinks, s)
	l.mu.Unlock()
}

// Snapshot returns a copy of all events observed so far.
func (l *QueryLog) Snapshot() []QueryEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]QueryEvent(nil), l.events...)
}

// Len returns the number of events observed.
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all recorded events (sinks are kept).
func (l *QueryLog) Reset() {
	l.mu.Lock()
	l.events = nil
	l.mu.Unlock()
}
