package dnsserver

import (
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"spfail/internal/dnsmsg"
	"spfail/internal/netsim"
)

func name(s string) dnsmsg.Name { return dnsmsg.MustParseName(s) }

func newTestZone() *ZoneSet {
	z := NewZoneSet()
	z.Add(dnsmsg.Record{Name: name("example.com"), Class: dnsmsg.ClassIN, TTL: 3600,
		Data: dnsmsg.SOA{MName: name("ns.example.com"), RName: name("host.example.com"), Serial: 1}})
	z.AddMX(name("example.com"), 10, name("mail.example.com"))
	z.AddA(name("mail.example.com"), netip.MustParseAddr("192.0.2.1"))
	z.AddTXT(name("example.com"), "v=spf1 ip4:192.0.2.0/24 -all")
	z.Add(dnsmsg.Record{Name: name("www.example.com"), Class: dnsmsg.ClassIN, TTL: 60,
		Data: dnsmsg.CNAME{Target: name("mail.example.com")}})
	return z
}

func TestZoneSetLookup(t *testing.T) {
	z := newTestZone()
	rrs, exists := z.Lookup(name("example.com"), dnsmsg.TypeMX)
	if !exists || len(rrs) != 1 {
		t.Fatalf("MX lookup = %v, %v", rrs, exists)
	}
	if _, exists := z.Lookup(name("absent.example.com"), dnsmsg.TypeA); exists {
		t.Error("absent name should not exist")
	}
	// Existing name, missing type.
	rrs, exists = z.Lookup(name("mail.example.com"), dnsmsg.TypeTXT)
	if !exists || len(rrs) != 0 {
		t.Errorf("empty-type lookup = %v, %v", rrs, exists)
	}
}

func TestZoneSetCNAMEChase(t *testing.T) {
	z := newTestZone()
	rrs, exists := z.Lookup(name("www.example.com"), dnsmsg.TypeA)
	if !exists {
		t.Fatal("www should exist")
	}
	var gotCNAME, gotA bool
	for _, rr := range rrs {
		switch rr.Data.(type) {
		case dnsmsg.CNAME:
			gotCNAME = true
		case dnsmsg.A:
			gotA = true
		}
	}
	if !gotCNAME || !gotA {
		t.Errorf("CNAME chase returned %v", rrs)
	}
}

func TestZoneSetServeDNSNXDomain(t *testing.T) {
	z := newTestZone()
	q := dnsmsg.NewQuery(1, name("nope.example.com"), dnsmsg.TypeA)
	resp := z.ServeDNS(q, nil)
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 {
		t.Fatalf("authority = %v, want SOA", resp.Authority)
	}
	if _, ok := resp.Authority[0].Data.(dnsmsg.SOA); !ok {
		t.Fatal("authority should be SOA")
	}
}

func TestServerUDPEndToEnd(t *testing.T) {
	fabric := netsim.NewFabric()
	srv := &Server{Net: fabric.Host("192.0.2.53"), Addr: ":53", Handler: newTestZone()}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn, err := fabric.Host("198.51.100.1").DialContext(context.Background(), "udp", "192.0.2.53:53")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnsmsg.NewQuery(99, name("example.com"), dnsmsg.TypeTXT)
	pkt, _ := q.Pack()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	conn.Write(pkt)
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 99 || !resp.Header.Response || !resp.Header.Authoritative {
		t.Errorf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if got := resp.Answers[0].Data.(dnsmsg.TXT).Joined(); !strings.HasPrefix(got, "v=spf1") {
		t.Errorf("TXT = %q", got)
	}
}

func TestServerTCPEndToEnd(t *testing.T) {
	fabric := netsim.NewFabric()
	srv := &Server{Net: fabric.Host("192.0.2.53"), Addr: ":53", Handler: newTestZone()}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn, err := fabric.Host("198.51.100.1").DialContext(context.Background(), "tcp", "192.0.2.53:53")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnsmsg.NewQuery(7, name("mail.example.com"), dnsmsg.TypeA)
	if err := WriteTCPMessage(conn, q); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if got := resp.Answers[0].Data.(dnsmsg.A).Addr.String(); got != "192.0.2.1" {
		t.Errorf("A = %s", got)
	}
}

func TestServerTruncatesOversizedUDP(t *testing.T) {
	z := NewZoneSet()
	// 40 TXT records of 100 bytes each — far beyond 512 bytes.
	for i := 0; i < 40; i++ {
		z.AddTXT(name("big.example.com"), strings.Repeat("x", 100))
	}
	fabric := netsim.NewFabric()
	srv := &Server{Net: fabric.Host("10.0.0.53"), Addr: ":53", Handler: z}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn, _ := fabric.Host("10.0.0.2").DialContext(context.Background(), "udp", "10.0.0.53:53")
	defer conn.Close()
	q := dnsmsg.NewQuery(3, name("big.example.com"), dnsmsg.TypeTXT)
	pkt, _ := q.Pack()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	conn.Write(pkt)
	buf := make([]byte, 64<<10)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated {
		t.Error("oversized response should set TC")
	}
	if len(resp.Answers) != 0 {
		t.Error("truncated response should carry no answers")
	}
}

func TestMuxRouting(t *testing.T) {
	var hitA, hitB, hitFallback bool
	mk := func(hit *bool) Handler {
		return HandlerFunc(func(q *dnsmsg.Message, _ net.Addr) *dnsmsg.Message {
			*hit = true
			return q.Reply()
		})
	}
	m := NewMux(mk(&hitFallback))
	m.Handle(name("dns-lab.org"), mk(&hitA))
	m.Handle(name("spf-test.dns-lab.org"), mk(&hitB))

	m.ServeDNS(dnsmsg.NewQuery(1, name("x.spf-test.dns-lab.org"), dnsmsg.TypeA), nil)
	if !hitB || hitA {
		t.Error("longest suffix should win")
	}
	m.ServeDNS(dnsmsg.NewQuery(1, name("other.dns-lab.org"), dnsmsg.TypeA), nil)
	if !hitA {
		t.Error("shorter suffix should catch non-matching subdomain")
	}
	m.ServeDNS(dnsmsg.NewQuery(1, name("example.net"), dnsmsg.TypeA), nil)
	if !hitFallback {
		t.Error("fallback should catch unrouted names")
	}
}

func TestMuxRefusesWithoutFallback(t *testing.T) {
	m := NewMux(nil)
	resp := m.ServeDNS(dnsmsg.NewQuery(1, name("x.org"), dnsmsg.TypeA), nil)
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
}

func TestQueryLogAndSink(t *testing.T) {
	var log QueryLog
	var forwarded []QueryEvent
	log.AddSink(sinkFunc(func(ev QueryEvent) { forwarded = append(forwarded, ev) }))
	lh := &LoggingHandler{
		Inner: newTestZone(),
		Sink:  &log,
		Now:   func() time.Time { return time.Unix(1000, 0) },
	}
	lh.ServeDNS(dnsmsg.NewQuery(1, name("example.com"), dnsmsg.TypeMX), netsim.Addr{Net: "udp", Host: "10.0.0.9", Port: 555})
	if log.Len() != 1 {
		t.Fatalf("log len = %d", log.Len())
	}
	ev := log.Snapshot()[0]
	if ev.From != "10.0.0.9:555" || !ev.Name.Equal(name("example.com")) || ev.Type != dnsmsg.TypeMX {
		t.Errorf("event = %+v", ev)
	}
	if len(forwarded) != 1 {
		t.Error("sink did not receive event")
	}
	log.Reset()
	if log.Len() != 0 {
		t.Error("Reset did not clear log")
	}
}

type sinkFunc func(QueryEvent)

func (f sinkFunc) Observe(ev QueryEvent) { f(ev) }

func TestSPFTestZonePolicy(t *testing.T) {
	z := &SPFTestZone{
		Base:  name("spf-test.dns-lab.org"),
		Addr4: netip.MustParseAddr("192.0.2.25"),
	}
	md, err := z.MailDomain("x7k2", "s01")
	if err != nil {
		t.Fatal(err)
	}
	want := "v=spf1 a:%{d1r}.x7k2.s01.spf-test.dns-lab.org a:b.x7k2.s01.spf-test.dns-lab.org -all"
	if got := z.PolicyFor(md); got != want {
		t.Errorf("PolicyFor = %q, want %q", got, want)
	}

	resp := z.ServeDNS(dnsmsg.NewQuery(1, md, dnsmsg.TypeTXT), nil)
	if len(resp.Answers) != 1 {
		t.Fatalf("TXT answers = %v", resp.Answers)
	}
	if got := resp.Answers[0].Data.(dnsmsg.TXT).Joined(); got != want {
		t.Errorf("served policy = %q", got)
	}
}

func TestSPFTestZoneExtractIDSuite(t *testing.T) {
	z := &SPFTestZone{Base: name("spf-test.dns-lab.org")}
	cases := []struct {
		qname     string
		id, suite string
		ok        bool
	}{
		{"x7k2.s01.spf-test.dns-lab.org", "x7k2", "s01", true},
		{"b.x7k2.s01.spf-test.dns-lab.org", "x7k2", "s01", true},
		{"org.org.dns-lab.spf-test.s01.x7k2.x7k2.s01.spf-test.dns-lab.org", "x7k2", "s01", true},
		{"spf-test.dns-lab.org", "", "", false},
		{"unrelated.example.net", "", "", false},
	}
	for _, c := range cases {
		id, suite, ok := z.ExtractIDSuite(name(c.qname))
		if id != c.id || suite != c.suite || ok != c.ok {
			t.Errorf("ExtractIDSuite(%s) = %q,%q,%v; want %q,%q,%v",
				c.qname, id, suite, ok, c.id, c.suite, c.ok)
		}
	}
}

func TestSPFTestZoneARecords(t *testing.T) {
	z := &SPFTestZone{
		Base:  name("spf-test.dns-lab.org"),
		Addr4: netip.MustParseAddr("192.0.2.25"),
		Addr6: netip.MustParseAddr("2001:db8::25"),
	}
	resp := z.ServeDNS(dnsmsg.NewQuery(1, name("b.x.s.spf-test.dns-lab.org"), dnsmsg.TypeA), nil)
	if len(resp.Answers) != 1 {
		t.Fatalf("A answers = %v", resp.Answers)
	}
	resp = z.ServeDNS(dnsmsg.NewQuery(1, name("b.x.s.spf-test.dns-lab.org"), dnsmsg.TypeAAAA), nil)
	if len(resp.Answers) != 1 {
		t.Fatalf("AAAA answers = %v", resp.Answers)
	}
	// TXT for an expansion target (≥3 extra labels) is empty.
	resp = z.ServeDNS(dnsmsg.NewQuery(1, name("b.x.s.spf-test.dns-lab.org"), dnsmsg.TypeTXT), nil)
	if len(resp.Answers) != 0 {
		t.Errorf("expansion-target TXT = %v", resp.Answers)
	}
	// Out-of-zone queries are refused.
	resp = z.ServeDNS(dnsmsg.NewQuery(1, name("example.net"), dnsmsg.TypeA), nil)
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Errorf("out-of-zone rcode = %v", resp.Header.RCode)
	}
}

func TestSPFTestZoneDMARCReject(t *testing.T) {
	z := &SPFTestZone{Base: name("spf-test.dns-lab.org")}
	resp := z.ServeDNS(dnsmsg.NewQuery(1, name("_dmarc.x.s.spf-test.dns-lab.org"), dnsmsg.TypeTXT), nil)
	if len(resp.Answers) != 1 {
		t.Fatalf("DMARC answers = %v", resp.Answers)
	}
	txt := resp.Answers[0].Data.(dnsmsg.TXT).Joined()
	if !strings.HasPrefix(txt, "v=DMARC1") || !strings.Contains(txt, "p=reject") {
		t.Errorf("DMARC policy = %q", txt)
	}
	// _dmarc of the bare base (extra=1) gets no answer.
	resp = z.ServeDNS(dnsmsg.NewQuery(1, name("_dmarc.spf-test.dns-lab.org"), dnsmsg.TypeTXT), nil)
	if len(resp.Answers) != 0 {
		t.Errorf("base _dmarc answers = %v", resp.Answers)
	}
}
