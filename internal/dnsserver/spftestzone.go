package dnsserver

import (
	"fmt"
	"net"
	"net/netip"

	"spfail/internal/dnsmsg"
)

// SPFTestZone is the dynamic authoritative zone at the center of SPFail's
// remote detection (paper §5.1). For any MAIL FROM domain of the form
// <id>.<suite>.<base>, it synthesizes the probe policy
//
//	v=spf1 a:%{d1r}.<id>.<suite>.<base> a:b.<id>.<suite>.<base> -all
//
// echoing the id and suite labels from the query name. When the probed mail
// server retrieves this policy, the way it expands %{d1r} is revealed by its
// follow-up A/AAAA queries — which this zone answers (and which the
// enclosing LoggingHandler records). The second, macro-free mechanism
// (a:b.<id>...) serves as a liveness marker: its lookup proves the policy
// was parsed even if the macro term was skipped.
type SPFTestZone struct {
	// Base is the zone apex, e.g. spf-test.dns-lab.org.
	Base dnsmsg.Name
	// Addr4 is returned for A queries under Base.
	Addr4 netip.Addr
	// Addr6, if valid, is returned for AAAA queries under Base.
	Addr6 netip.Addr
}

// PolicyFor returns the SPF policy text served for a MAIL FROM domain.
func (z *SPFTestZone) PolicyFor(mailDomain dnsmsg.Name) string {
	d := mailDomain.String() // trailing dot form
	d = d[:len(d)-1]
	return fmt.Sprintf("v=spf1 a:%%{d1r}.%s a:b.%s -all", d, d)
}

// MailDomain constructs the probe MAIL FROM domain for an id and suite.
func (z *SPFTestZone) MailDomain(id, suite string) (dnsmsg.Name, error) {
	labels := append([]string{id, suite}, z.Base.Labels()...)
	return dnsmsg.NewName(labels...)
}

// ExtractIDSuite pulls the <id> and <suite> labels out of any query name
// under the zone: they are the two labels immediately preceding the base.
func (z *SPFTestZone) ExtractIDSuite(qname dnsmsg.Name) (id, suite string, ok bool) {
	if !qname.HasSuffix(z.Base) {
		return "", "", false
	}
	extra := qname.NumLabels() - z.Base.NumLabels()
	if extra < 2 {
		return "", "", false
	}
	return qname.Label(extra - 2), qname.Label(extra - 1), true
}

// ServeDNS implements Handler.
func (z *SPFTestZone) ServeDNS(q *dnsmsg.Message, _ net.Addr) *dnsmsg.Message {
	resp := q.Reply()
	resp.Header.Authoritative = true
	qq := q.Questions[0]
	if !qq.Name.HasSuffix(z.Base) {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return resp
	}
	extra := qq.Name.NumLabels() - z.Base.NumLabels()
	switch qq.Type {
	case dnsmsg.TypeTXT:
		switch {
		case extra == 2:
			// The MAIL FROM domain itself carries the probe policy; TXT
			// for expansion targets is empty.
			id, suite, _ := z.ExtractIDSuite(qq.Name)
			md, err := z.MailDomain(id, suite)
			if err == nil {
				resp.Answers = append(resp.Answers, dnsmsg.Record{
					Name: qq.Name, Class: dnsmsg.ClassIN, TTL: 1,
					Data: dnsmsg.SplitTXT(z.PolicyFor(md)),
				})
			}
		case extra == 3 && qq.Name.Label(0) == "_dmarc":
			// Per §6.2, the probe source domains publish a DMARC reject
			// policy so that any blank probe email that slips through is
			// discarded rather than delivered.
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: qq.Name, Class: dnsmsg.ClassIN, TTL: 1,
				Data: dnsmsg.SplitTXT("v=DMARC1; p=reject; aspf=s; adkim=s"),
			})
		}
	case dnsmsg.TypeA:
		if extra >= 1 && z.Addr4.IsValid() {
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: qq.Name, Class: dnsmsg.ClassIN, TTL: 1,
				Data: dnsmsg.A{Addr: z.Addr4},
			})
		}
	case dnsmsg.TypeAAAA:
		if extra >= 1 && z.Addr6.IsValid() {
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: qq.Name, Class: dnsmsg.ClassIN, TTL: 1,
				Data: dnsmsg.AAAA{Addr: z.Addr6},
			})
		}
	case dnsmsg.TypeMX:
		// No MX under the test zone: senders fall back to A per RFC 5321.
	}
	return resp
}
