package dnsserver

import (
	"net"

	"spfail/internal/dnsmsg"
	"spfail/internal/trace"
)

// maxTemplates bounds the per-ZoneSet template cache. Static zones in the
// probing stack hold at most a few hundred entries; when the cap is hit new
// (name, qtype) pairs simply take the slow path.
const maxTemplates = 4096

// WireHandler is implemented by handlers that can answer straight from
// precompiled wire templates, skipping decode and encode entirely. ServeWire
// appends the complete response packet to dst and reports whether it could
// answer; ok == false means the caller must fall back to ServeDNS.
type WireHandler interface {
	ServeWire(dst []byte, pkt []byte, wq dnsmsg.WireQuery) ([]byte, bool)
}

// ServeQuery is the server's template fast path: if pkt is a plain query
// and the handler can answer from a precompiled template, the response
// packet is appended to dst with only the ID, RD bit, and qname case echo
// patched in. ok == false means the caller must take the full
// decode/dispatch/encode path. The from parameter mirrors Handler.ServeDNS
// and is reserved for wire handlers that attribute queries.
//
//spfail:hotpath
func (s *Server) ServeQuery(dst []byte, pkt []byte, from net.Addr) ([]byte, bool) {
	wq, ok := dnsmsg.ParseWireQuery(pkt)
	if !ok {
		return dst, false
	}
	wh, ok := s.Handler.(WireHandler)
	if !ok {
		return dst, false
	}
	out, ok := wh.ServeWire(dst, pkt, wq)
	if !ok {
		return dst, false
	}
	s.Metrics.Counter("dns.server.queries").Inc()
	//spfail:allow metricnames qtypeCounterName mints only constants from the documented dns.server.qtype.<TYPE> family
	s.Metrics.Counter(qtypeCounterName(wq.Type)).Inc()
	s.Metrics.Counter("dns.server.template_hits").Inc()
	// Tracing is the only consumer of the client address here; the qname
	// is decoded from the wire only on traced queries so the untraced fast
	// path stays allocation-free.
	if s.Trace != nil {
		if sp := s.Trace.HostSpan(clientHost(from)); sp != nil {
			name, _, err := dnsmsg.ReadWireName(wq.NameWire)
			qname := ""
			if err == nil {
				qname = name.String()
			}
			sp.Event("dns.server.query",
				trace.String("name", qname),
				trace.String("type", wq.Type.String()),
				trace.Bool("template_hit", true),
			)
		}
	}
	return out, true
}

// qtypeCounterName returns the per-qtype counter name without allocating
// for the types the probing stack actually queries.
func qtypeCounterName(t dnsmsg.Type) string {
	switch t {
	case dnsmsg.TypeA:
		return "dns.server.qtype.A"
	case dnsmsg.TypeAAAA:
		return "dns.server.qtype.AAAA"
	case dnsmsg.TypeMX:
		return "dns.server.qtype.MX"
	case dnsmsg.TypeTXT:
		return "dns.server.qtype.TXT"
	case dnsmsg.TypeNS:
		return "dns.server.qtype.NS"
	case dnsmsg.TypeSOA:
		return "dns.server.qtype.SOA"
	case dnsmsg.TypePTR:
		return "dns.server.qtype.PTR"
	case dnsmsg.TypeCNAME:
		return "dns.server.qtype.CNAME"
	case dnsmsg.TypeANY:
		return "dns.server.qtype.ANY"
	default:
		return "dns.server.qtype." + t.String()
	}
}

// ServeWire implements WireHandler by patching a precompiled answer
// template: the template is keyed by (case-folded qname wire, qtype), and
// on a hit only the transaction ID, the RD flag, and the qname bytes (to
// echo the client's case) are rewritten. Case-insensitively equal names
// have identical wire lengths, so the patch never moves compression
// pointers.
func (z *ZoneSet) ServeWire(dst []byte, pkt []byte, wq dnsmsg.WireQuery) ([]byte, bool) {
	if wq.Class != dnsmsg.ClassIN {
		return dst, false
	}
	var kb [dnsmsg.MaxNameLen + 2]byte
	key := templateKey(kb[:0], wq.NameWire, wq.Type)

	z.mu.RLock()
	tmpl, ok := z.templates[string(key)]
	z.mu.RUnlock()
	if !ok {
		tmpl, ok = z.buildTemplate(key, wq)
		if !ok {
			return dst, false
		}
	}
	if len(tmpl) == 0 {
		return dst, false // sentinel: response not templatable (e.g. >512B)
	}
	out := append(dst, tmpl...)
	out[0], out[1] = pkt[0], pkt[1] // transaction ID
	out[2] = out[2]&^1 | pkt[2]&1   // echo RD (low bit of the first flag byte)
	copy(out[12:], wq.NameWire)     // echo the client's qname case
	return out, true
}

// templateKey appends the case-folded qname wire bytes and the qtype to
// dst. Length bytes are at most 63 and therefore outside the ASCII
// uppercase range, so folding every byte is safe.
func templateKey(dst, nameWire []byte, typ dnsmsg.Type) []byte {
	for _, b := range nameWire {
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		dst = append(dst, b)
	}
	return append(dst, byte(typ>>8), byte(typ))
}

// buildTemplate compiles the response for (qname, qtype) through the
// regular ServeDNS path and caches its packed form. Only names that exist
// in the zone are cached, keeping the table bounded by zone size rather
// than by the (unbounded) stream of NXDOMAIN probe names.
func (z *ZoneSet) buildTemplate(key []byte, wq dnsmsg.WireQuery) ([]byte, bool) {
	name, _, err := dnsmsg.ReadWireName(wq.NameWire)
	if err != nil {
		return nil, false
	}
	z.mu.RLock()
	_, exists := z.records[name.CanonicalKey()]
	full := len(z.templates) >= maxTemplates
	gen := z.tmplGen
	z.mu.RUnlock()
	if !exists || full {
		return nil, false
	}

	q := &dnsmsg.Message{
		Header:    dnsmsg.Header{ID: wq.ID},
		Questions: []dnsmsg.Question{{Name: name, Type: wq.Type, Class: dnsmsg.ClassIN}},
	}
	resp := z.ServeDNS(q, nil)
	tmpl, err := resp.Pack()
	if err != nil || len(tmpl) > MaxUDPPayload {
		tmpl = nil // store the sentinel: always use the slow path
	}
	z.mu.Lock()
	if z.tmplGen == gen {
		if z.templates == nil {
			z.templates = make(map[string][]byte)
		}
		if len(z.templates) < maxTemplates {
			z.templates[string(key)] = tmpl
		}
	}
	z.mu.Unlock()
	return tmpl, true
}

// invalidateTemplates drops every compiled template; callers hold z.mu.
func (z *ZoneSet) invalidateTemplates() {
	z.templates = nil
	z.tmplGen++
}

// ServeWire implements WireHandler by routing exactly like ServeDNS —
// longest matching suffix wins — and delegating when the winning handler is
// itself wire-capable. Handlers that must observe decoded queries (the
// logging wrapper, the dynamic SPF test zone) do not implement WireHandler
// and therefore keep the full slow path.
func (m *Mux) ServeWire(dst []byte, pkt []byte, wq dnsmsg.WireQuery) ([]byte, bool) {
	m.mu.RLock()
	var best Handler
	bestLen := -1
	for _, r := range m.routes {
		if dnsmsg.WireNameHasSuffix(wq.NameWire, r.suffix) && r.suffix.NumLabels() > bestLen {
			best, bestLen = r.handler, r.suffix.NumLabels()
		}
	}
	if best == nil {
		best = m.fallback
	}
	m.mu.RUnlock()
	if wh, ok := best.(WireHandler); ok {
		return wh.ServeWire(dst, pkt, wq)
	}
	return dst, false
}
