package dnsserver

import (
	"net"
	"net/netip"
	"sync"
	"time"

	"spfail/internal/dnsmsg"
)

// ZoneSet is a Handler serving a static set of records, keyed by canonical
// owner name. It answers authoritatively: names with no records at all get
// NXDOMAIN; names with records of other types get an empty NOERROR. CNAMEs
// are chased within the set.
type ZoneSet struct {
	mu      sync.RWMutex
	records map[string][]dnsmsg.Record
	soa     map[string]dnsmsg.Record // apex key → SOA for negative answers
	// templates caches packed responses for the ServeWire fast path, keyed
	// by case-folded qname wire bytes + qtype (see template.go). Any zone
	// mutation drops the whole cache and bumps tmplGen so in-flight builds
	// against the old zone contents are discarded.
	templates map[string][]byte
	tmplGen   uint64
}

// NewZoneSet returns an empty zone set.
func NewZoneSet() *ZoneSet {
	return &ZoneSet{
		records: make(map[string][]dnsmsg.Record),
		soa:     make(map[string]dnsmsg.Record),
	}
}

// Add inserts a record.
func (z *ZoneSet) Add(r dnsmsg.Record) {
	z.mu.Lock()
	defer z.mu.Unlock()
	key := r.Name.CanonicalKey()
	z.records[key] = append(z.records[key], r)
	if r.Data.Type() == dnsmsg.TypeSOA {
		z.soa[key] = r
	}
	z.invalidateTemplates()
}

// AddA is a convenience for adding an A or AAAA record for name.
func (z *ZoneSet) AddA(name dnsmsg.Name, addr netip.Addr) {
	var data dnsmsg.RData
	if addr.Is4() {
		data = dnsmsg.A{Addr: addr}
	} else {
		data = dnsmsg.AAAA{Addr: addr}
	}
	z.Add(dnsmsg.Record{Name: name, Class: dnsmsg.ClassIN, TTL: 300, Data: data})
}

// AddMX is a convenience for adding an MX record.
func (z *ZoneSet) AddMX(name dnsmsg.Name, pref uint16, host dnsmsg.Name) {
	z.Add(dnsmsg.Record{Name: name, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.MX{Preference: pref, Host: host}})
}

// AddTXT is a convenience for adding a TXT record, splitting long strings.
func (z *ZoneSet) AddTXT(name dnsmsg.Name, text string) {
	z.Add(dnsmsg.Record{Name: name, Class: dnsmsg.ClassIN, TTL: 300,
		Data: dnsmsg.SplitTXT(text)})
}

// Remove deletes all records for a name.
func (z *ZoneSet) Remove(name dnsmsg.Name) {
	z.mu.Lock()
	defer z.mu.Unlock()
	delete(z.records, name.CanonicalKey())
	z.invalidateTemplates()
}

// Lookup returns records of the given type owned by name, chasing one level
// of CNAME. exists reports whether the name owns any records at all.
func (z *ZoneSet) Lookup(name dnsmsg.Name, typ dnsmsg.Type) (rrs []dnsmsg.Record, exists bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.lookupLocked(name, typ, 0)
}

func (z *ZoneSet) lookupLocked(name dnsmsg.Name, typ dnsmsg.Type, depth int) ([]dnsmsg.Record, bool) {
	owned, ok := z.records[name.CanonicalKey()]
	if !ok {
		return nil, false
	}
	var out []dnsmsg.Record
	for _, r := range owned {
		t := r.Data.Type()
		if t == typ || typ == dnsmsg.TypeANY {
			out = append(out, r)
		}
		if t == dnsmsg.TypeCNAME && typ != dnsmsg.TypeCNAME && typ != dnsmsg.TypeANY && depth < 4 {
			out = append(out, r)
			target, _ := z.lookupLocked(r.Data.(dnsmsg.CNAME).Target, typ, depth+1)
			out = append(out, target...)
		}
	}
	return out, true
}

// ServeDNS implements Handler.
func (z *ZoneSet) ServeDNS(q *dnsmsg.Message, _ net.Addr) *dnsmsg.Message {
	resp := q.Reply()
	resp.Header.Authoritative = true
	qq := q.Questions[0]
	if qq.Class != dnsmsg.ClassIN && qq.Class != dnsmsg.ClassANY {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return resp
	}
	rrs, exists := z.Lookup(qq.Name, qq.Type)
	if !exists {
		resp.Header.RCode = dnsmsg.RCodeNXDomain
		resp.Authority = z.negativeAuthority(qq.Name)
		return resp
	}
	resp.Answers = rrs
	if len(rrs) == 0 {
		resp.Authority = z.negativeAuthority(qq.Name)
	}
	return resp
}

// negativeAuthority finds the closest enclosing SOA for negative responses.
func (z *ZoneSet) negativeAuthority(name dnsmsg.Name) []dnsmsg.Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for n := name; ; n = n.Parent() {
		if soa, ok := z.soa[n.CanonicalKey()]; ok {
			return []dnsmsg.Record{soa}
		}
		if n.IsRoot() {
			return nil
		}
	}
}

// LoggingHandler wraps a Handler, publishing every query to a Sink before
// dispatch. Now supplies event timestamps (typically clock.Clock.Now).
type LoggingHandler struct {
	Inner Handler
	Sink  Sink
	Now   func() time.Time
}

// ServeDNS implements Handler.
func (h *LoggingHandler) ServeDNS(q *dnsmsg.Message, from net.Addr) *dnsmsg.Message {
	qq := q.Questions[0]
	var at time.Time
	if h.Now != nil {
		at = h.Now()
	}
	fromStr := ""
	if from != nil {
		fromStr = from.String()
	}
	h.Sink.Observe(QueryEvent{Time: at, From: fromStr, Name: qq.Name, Type: qq.Type})
	return h.Inner.ServeDNS(q, from)
}

// Mux routes queries by name suffix to registered handlers, falling back to
// a default. The longest matching suffix wins.
type Mux struct {
	mu       sync.RWMutex
	routes   []muxRoute
	fallback Handler
}

type muxRoute struct {
	suffix  dnsmsg.Name
	handler Handler
}

// NewMux returns a Mux with the given fallback handler (may be nil, in
// which case unmatched queries get REFUSED).
func NewMux(fallback Handler) *Mux { return &Mux{fallback: fallback} }

// Handle routes queries for suffix (and all names under it) to h.
func (m *Mux) Handle(suffix dnsmsg.Name, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes = append(m.routes, muxRoute{suffix: suffix, handler: h})
}

// ServeDNS implements Handler.
func (m *Mux) ServeDNS(q *dnsmsg.Message, from net.Addr) *dnsmsg.Message {
	qname := q.Questions[0].Name
	m.mu.RLock()
	var best Handler
	bestLen := -1
	for _, r := range m.routes {
		if qname.HasSuffix(r.suffix) && r.suffix.NumLabels() > bestLen {
			best, bestLen = r.handler, r.suffix.NumLabels()
		}
	}
	fallback := m.fallback
	m.mu.RUnlock()
	if best != nil {
		return best.ServeDNS(q, from)
	}
	if fallback != nil {
		return fallback.ServeDNS(q, from)
	}
	resp := q.Reply()
	resp.Header.RCode = dnsmsg.RCodeRefused
	return resp
}
