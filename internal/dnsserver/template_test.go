package dnsserver

import (
	"bytes"
	"net"
	"testing"

	"spfail/internal/dnsmsg"
	"spfail/internal/telemetry"
)

func packQuery(t testing.TB, id uint16, qname string, typ dnsmsg.Type) []byte {
	t.Helper()
	pkt, err := dnsmsg.NewQuery(id, dnsmsg.MustParseName(qname), typ).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestServeQueryMatchesSlowPath compares the template fast path against the
// full decode/dispatch/encode path for every templatable query shape.
func TestServeQueryMatchesSlowPath(t *testing.T) {
	z := newTestZone()
	srv := &Server{Handler: z, Metrics: telemetry.New()}
	cases := []struct {
		qname string
		typ   dnsmsg.Type
	}{
		{"example.com", dnsmsg.TypeTXT},
		{"example.com", dnsmsg.TypeMX},
		{"example.com", dnsmsg.TypeSOA},
		{"mail.example.com", dnsmsg.TypeA},
		{"www.example.com", dnsmsg.TypeA},    // CNAME chase
		{"mail.example.com", dnsmsg.TypeTXT}, // empty NOERROR + SOA authority
	}
	for _, tc := range cases {
		pkt := packQuery(t, 0xBEEF, tc.qname, tc.typ)
		out, ok := srv.ServeQuery(nil, pkt, nil)
		if !ok {
			t.Errorf("%s %s: fast path missed", tc.qname, tc.typ)
			continue
		}
		// Run twice more: the first call compiled the template, later calls
		// must patch it identically.
		out2, ok := srv.ServeQuery(nil, pkt, nil)
		if !ok || !bytes.Equal(out, out2) {
			t.Errorf("%s %s: template hit differs from build path", tc.qname, tc.typ)
		}

		got, err := dnsmsg.Unpack(out)
		if err != nil {
			t.Fatalf("%s %s: fast response does not decode: %v", tc.qname, tc.typ, err)
		}
		want := srv.respond(pkt, nil)
		if got.Header != want.Header {
			t.Errorf("%s %s: header = %+v, want %+v", tc.qname, tc.typ, got.Header, want.Header)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("%s %s: answers = %d, want %d", tc.qname, tc.typ, len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			if got.Answers[i].String() != want.Answers[i].String() {
				t.Errorf("%s %s: answer %d = %q, want %q", tc.qname, tc.typ, i, got.Answers[i], want.Answers[i])
			}
		}
		if len(got.Authority) != len(want.Authority) {
			t.Errorf("%s %s: authority = %d, want %d", tc.qname, tc.typ, len(got.Authority), len(want.Authority))
		}
	}
	s := srv.Metrics.Snapshot()
	if s.Counters["dns.server.template_hits"] == 0 {
		t.Error("no template hits counted")
	}
	if s.Counters["dns.server.queries"] == 0 {
		t.Error("fast path must keep counting dns.server.queries")
	}
}

// TestServeQueryEchoesCaseAndID checks the only bytes the patch may change:
// transaction ID, RD bit, and the qname's case as sent by the client.
func TestServeQueryEchoesCaseAndID(t *testing.T) {
	srv := &Server{Handler: newTestZone()}
	warm := packQuery(t, 1, "example.com", dnsmsg.TypeTXT)
	if _, ok := srv.ServeQuery(nil, warm, nil); !ok {
		t.Fatal("warm-up miss")
	}
	pkt := packQuery(t, 0x7A7A, "ExAmPlE.CoM", dnsmsg.TypeTXT)
	out, ok := srv.ServeQuery(nil, pkt, nil)
	if !ok {
		t.Fatal("case-variant query missed the shared template")
	}
	if out[0] != 0x7A || out[1] != 0x7A {
		t.Errorf("ID = %x%x, want 7a7a", out[0], out[1])
	}
	wq, _ := dnsmsg.ParseWireQuery(pkt)
	if !bytes.Equal(out[12:12+len(wq.NameWire)], wq.NameWire) {
		t.Error("response does not echo the client's qname case")
	}
	got, err := dnsmsg.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name.String() != "ExAmPlE.CoM." {
		t.Errorf("question = %q", got.Questions[0].Name)
	}
	// Compression pointers in the answers resolve through the patched
	// qname, so answer owner names follow the echoed case too.
	if !got.Answers[0].Name.Equal(dnsmsg.MustParseName("example.com")) {
		t.Errorf("answer owner = %q", got.Answers[0].Name)
	}
	if !got.Header.RecursionDesired {
		t.Error("RD bit not echoed")
	}
}

// TestServeQueryFallsBack enumerates the shapes that must take the slow
// path: unknown names (unbounded NXDOMAIN space), non-IN classes, packets
// with extra sections, non-wire handlers, and responses over 512 bytes.
func TestServeQueryFallsBack(t *testing.T) {
	z := newTestZone()
	srv := &Server{Handler: z}

	if _, ok := srv.ServeQuery(nil, packQuery(t, 1, "absent.example.com", dnsmsg.TypeA), nil); ok {
		t.Error("NXDOMAIN name must not be templated")
	}

	pkt := packQuery(t, 1, "example.com", dnsmsg.TypeTXT)
	pkt[11] = 1 // claim one additional record (EDNS-style)
	if _, ok := srv.ServeQuery(nil, pkt, nil); ok {
		t.Error("packet with additional section must fall back")
	}

	// A handler that is not wire-capable must always decline.
	plain := &Server{Handler: HandlerFunc(func(q *dnsmsg.Message, _ net.Addr) *dnsmsg.Message { return q.Reply() })}
	if _, ok := plain.ServeQuery(nil, packQuery(t, 1, "example.com", dnsmsg.TypeTXT), nil); ok {
		t.Error("non-wire handler must fall back")
	}

	// A TXT record too large for UDP must not be served from a template;
	// the slow path handles truncation.
	big := NewZoneSet()
	long := make([]byte, 600)
	for i := range long {
		long[i] = 'x'
	}
	big.AddTXT(dnsmsg.MustParseName("big.example"), string(long))
	bsrv := &Server{Handler: big}
	if _, ok := bsrv.ServeQuery(nil, packQuery(t, 1, "big.example", dnsmsg.TypeTXT), nil); ok {
		t.Error("oversized response must not fast-path")
	}
}

// TestServeWireInvalidation checks that zone mutations drop templates.
func TestServeWireInvalidation(t *testing.T) {
	z := newTestZone()
	srv := &Server{Handler: z}
	pkt := packQuery(t, 5, "example.com", dnsmsg.TypeTXT)
	out, ok := srv.ServeQuery(nil, pkt, nil)
	if !ok {
		t.Fatal("miss")
	}
	before, _ := dnsmsg.Unpack(out)

	z.AddTXT(dnsmsg.MustParseName("example.com"), "second-string")
	out, ok = srv.ServeQuery(nil, pkt, nil)
	if !ok {
		t.Fatal("miss after mutation")
	}
	after, err := dnsmsg.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Answers) != len(before.Answers)+1 {
		t.Errorf("answers after Add = %d, want %d (stale template served)",
			len(after.Answers), len(before.Answers)+1)
	}
}

// TestMuxServeWire checks wire-level routing: suffix match delegates to a
// wire-capable handler, everything else declines.
func TestMuxServeWire(t *testing.T) {
	z := newTestZone()
	mux := NewMux(nil)
	mux.Handle(dnsmsg.MustParseName("example.com"), z)
	mux.Handle(dnsmsg.MustParseName("dyn.example"), HandlerFunc(func(q *dnsmsg.Message, _ net.Addr) *dnsmsg.Message {
		return q.Reply()
	}))
	srv := &Server{Handler: mux}

	if _, ok := srv.ServeQuery(nil, packQuery(t, 1, "MAIL.example.COM", dnsmsg.TypeA), nil); !ok {
		t.Error("suffix-routed query should fast-path")
	}
	if _, ok := srv.ServeQuery(nil, packQuery(t, 1, "x.dyn.example", dnsmsg.TypeA), nil); ok {
		t.Error("non-wire handler must decline")
	}
	if _, ok := srv.ServeQuery(nil, packQuery(t, 1, "elsewhere.org", dnsmsg.TypeA), nil); ok {
		t.Error("unrouted query must decline (REFUSED comes from the slow path)")
	}
}

// BenchmarkServeQuery measures the template fast path end to end: parse,
// route, patch — the per-query cost of the authoritative server under
// campaign load.
func BenchmarkServeQuery(b *testing.B) {
	srv := &Server{Handler: newTestZone()}
	pkt := packQuery(b, 77, "example.com", dnsmsg.TypeTXT)
	out, ok := srv.ServeQuery(nil, pkt, nil)
	if !ok {
		b.Fatal("fast path missed")
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(out)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, ok = srv.ServeQuery(out[:0], pkt, nil); !ok {
			b.Fatal("miss")
		}
	}
}
