package dnsmsg

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNameBasics(t *testing.T) {
	cases := []struct {
		in     string
		labels []string
		str    string
	}{
		{"example.com", []string{"example", "com"}, "example.com."},
		{"example.com.", []string{"example", "com"}, "example.com."},
		{"", nil, "."},
		{".", nil, "."},
		{"a.b.c.d.e", []string{"a", "b", "c", "d", "e"}, "a.b.c.d.e."},
		{"%{d1r}.x7f3.s1.spf-test.dns-lab.org", []string{"%{d1r}", "x7f3", "s1", "spf-test", "dns-lab", "org"}, "%{d1r}.x7f3.s1.spf-test.dns-lab.org."},
	}
	for _, c := range cases {
		n, err := ParseName(c.in)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(n.Labels(), c.labels) && !(len(n.Labels()) == 0 && len(c.labels) == 0) {
			t.Errorf("ParseName(%q).Labels() = %v, want %v", c.in, n.Labels(), c.labels)
		}
		if got := n.String(); got != c.str {
			t.Errorf("ParseName(%q).String() = %q, want %q", c.in, got, c.str)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	long := strings.Repeat("a", 64)
	if _, err := ParseName(long + ".com"); err != ErrLabelTooLong {
		t.Errorf("63+ label: got %v, want ErrLabelTooLong", err)
	}
	if _, err := ParseName("a..com"); err != ErrEmptyLabel {
		t.Errorf("empty label: got %v, want ErrEmptyLabel", err)
	}
	big := strings.Repeat(strings.Repeat("a", 62)+".", 5)
	if _, err := ParseName(big); err != ErrNameTooLong {
		t.Errorf("long name: got %v, want ErrNameTooLong", err)
	}
}

func TestNameEqualCaseInsensitive(t *testing.T) {
	a := MustParseName("Example.COM")
	b := MustParseName("example.com")
	if !a.Equal(b) {
		t.Error("Example.COM should equal example.com")
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("canonical keys differ for case variants")
	}
	if a.Equal(MustParseName("example.org")) {
		t.Error("example.com should not equal example.org")
	}
}

func TestNameHasSuffix(t *testing.T) {
	base := MustParseName("spf-test.dns-lab.org")
	sub := MustParseName("x7.s1.SPF-TEST.dns-lab.ORG")
	if !sub.HasSuffix(base) {
		t.Error("subdomain should have suffix")
	}
	if !base.HasSuffix(base) {
		t.Error("name should have itself as suffix")
	}
	if base.HasSuffix(sub) {
		t.Error("parent should not have child as suffix")
	}
	if !base.HasSuffix(Name{}) {
		t.Error("every name is under the root")
	}
}

func TestNameParentChildTLD(t *testing.T) {
	n := MustParseName("mail.example.com")
	if got := n.Parent().String(); got != "example.com." {
		t.Errorf("Parent = %q", got)
	}
	if got := n.TLD(); got != "com" {
		t.Errorf("TLD = %q", got)
	}
	c, err := MustParseName("example.com").Child("mail")
	if err != nil || !c.Equal(n) {
		t.Errorf("Child = %v, %v", c, err)
	}
	if !(Name{}).Parent().IsRoot() {
		t.Error("parent of root should be root")
	}
	if (Name{}).TLD() != "" {
		t.Error("TLD of root should be empty")
	}
}

func TestNameRoundTripWire(t *testing.T) {
	for _, s := range []string{"example.com", ".", "a.b.c", "with-dash.x0.org"} {
		n := MustParseName(s)
		buf, err := appendName(nil, n, nil)
		if err != nil {
			t.Fatalf("appendName(%q): %v", s, err)
		}
		got, end, err := readName(buf, 0)
		if err != nil {
			t.Fatalf("readName(%q): %v", s, err)
		}
		if !got.Equal(n) {
			t.Errorf("round trip %q → %q", n, got)
		}
		if end != len(buf) {
			t.Errorf("end = %d, want %d", end, len(buf))
		}
	}
}

func TestNameCompressionPointer(t *testing.T) {
	cmp := new(compressor)
	buf, err := appendName(nil, MustParseName("mail.example.com"), cmp)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = appendName(buf, MustParseName("smtp.example.com"), cmp)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should use a pointer: "smtp" label (5 bytes) + 2-byte ptr.
	if got := len(buf) - first; got != 7 {
		t.Errorf("compressed name used %d bytes, want 7", got)
	}
	n, _, err := readName(buf, first)
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "smtp.example.com." {
		t.Errorf("decoded %q", n)
	}
}

func TestReadNamePointerLoop(t *testing.T) {
	// A pointer pointing at itself.
	msg := []byte{0xC0, 0x00}
	if _, _, err := readName(msg, 0); err == nil {
		t.Fatal("self-referential pointer should error")
	}
}

func TestReadNameTruncated(t *testing.T) {
	for _, msg := range [][]byte{
		{},            // empty
		{5, 'a', 'b'}, // label runs past end
		{0xC0},        // pointer missing second byte
		{1, 'a'},      // missing terminator
		{0x80, 0x01},  // reserved label type
		{0xC0, 0x7F},  // pointer past end
	} {
		if _, _, err := readName(msg, 0); err == nil {
			t.Errorf("readName(%v) should error", msg)
		}
	}
}

// quickName generates a random valid Name for property tests.
func quickName(r *rand.Rand) Name {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-_%{}"
	nl := 1 + r.Intn(5)
	labels := make([]string, nl)
	for i := range labels {
		ll := 1 + r.Intn(20)
		b := make([]byte, ll)
		for j := range b {
			b[j] = alpha[r.Intn(len(alpha))]
		}
		labels[i] = string(b)
	}
	n, err := NewName(labels...)
	if err != nil {
		return Name{}
	}
	return n
}

func TestPropertyNameWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := quickName(r)
		buf, err := appendName(nil, n, nil)
		if err != nil {
			return false
		}
		got, end, err := readName(buf, 0)
		return err == nil && got.Equal(n) && end == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompressedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		names := make([]Name, 1+r.Intn(6))
		for i := range names {
			names[i] = quickName(r)
		}
		cmp := new(compressor)
		var buf []byte
		offsets := make([]int, len(names))
		var err error
		for i, n := range names {
			offsets[i] = len(buf)
			if buf, err = appendName(buf, n, cmp); err != nil {
				return false
			}
		}
		for i, n := range names {
			got, _, err := readName(buf, offsets[i])
			if err != nil || !got.Equal(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
