package dnsmsg

import (
	"encoding/binary"
	"fmt"
)

// Header flag bits (RFC 1035 §4.1.1).
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Header is the fixed 12-byte DNS message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a DNS question section entry.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String implements fmt.Stringer.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// NewQuery builds a recursion-desired query for (name, type).
func NewQuery(id uint16, name Name, typ Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassIN}},
	}
}

// Reply builds a response header echoing the query's ID, opcode, question,
// and RD bit.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Append encodes the message onto buf and returns the extended slice.
// Name compression is applied across the whole message.
func (m *Message) Append(buf []byte) ([]byte, error) {
	base := len(buf)
	var flags uint16
	if m.Header.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= flagAA
	}
	if m.Header.Truncated {
		flags |= flagTC
	}
	if m.Header.RecursionDesired {
		flags |= flagRD
	}
	if m.Header.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.Header.RCode & 0xF)

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authority)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additional)))

	// Compression offsets are relative to the start of the DNS message,
	// which must be the start of buf growth for pointers to be valid.
	// We track offsets relative to base and require base == 0 for pointer
	// emission to stay correct; when base != 0 compression is disabled.
	var cmp map[string]int
	if base == 0 {
		cmp = make(map[string]int)
	}

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, cmp); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if buf, err = appendRecord(buf, rr, cmp); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// Pack encodes the message into a fresh buffer.
func (m *Message) Pack() ([]byte, error) {
	return m.Append(make([]byte, 0, 512))
}

func appendRecord(buf []byte, rr Record, cmp map[string]int) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, cmp); err != nil {
		return nil, err
	}
	if rr.Data == nil {
		return nil, fmt.Errorf("dnsmsg: record %s has nil data", rr.Name)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Data.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if buf, err = rr.Data.appendTo(buf, cmp); err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnsmsg: RDATA of %d bytes exceeds 65535", rdlen)
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a complete DNS message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncatedMessage
	}
	flags := binary.BigEndian.Uint16(msg[2:])
	m := &Message{Header: Header{
		ID:                 binary.BigEndian.Uint16(msg[0:]),
		Response:           flags&flagQR != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&flagAA != 0,
		Truncated:          flags&flagTC != 0,
		RecursionDesired:   flags&flagRD != 0,
		RecursionAvailable: flags&flagRA != 0,
		RCode:              RCode(flags & 0xF),
	}}
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))

	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		if n+4 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(msg[n:])),
			Class: Class(binary.BigEndian.Uint16(msg[n+2:])),
		})
		off = n + 4
	}
	var err error
	if m.Answers, off, err = readRecords(msg, off, an); err != nil {
		return nil, err
	}
	if m.Authority, off, err = readRecords(msg, off, ns); err != nil {
		return nil, err
	}
	if m.Additional, _, err = readRecords(msg, off, ar); err != nil {
		return nil, err
	}
	return m, nil
}

func readRecords(msg []byte, off, count int) ([]Record, int, error) {
	var out []Record
	for i := 0; i < count; i++ {
		name, n, err := readName(msg, off)
		if err != nil {
			return nil, 0, err
		}
		if n+10 > len(msg) {
			return nil, 0, ErrTruncatedMessage
		}
		typ := Type(binary.BigEndian.Uint16(msg[n:]))
		class := Class(binary.BigEndian.Uint16(msg[n+2:]))
		ttl := binary.BigEndian.Uint32(msg[n+4:])
		rdlen := int(binary.BigEndian.Uint16(msg[n+8:]))
		data, err := decodeRData(msg, n+10, rdlen, typ)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, Record{Name: name, Class: class, TTL: ttl, Data: data})
		off = n + 10 + rdlen
	}
	return out, off, nil
}
