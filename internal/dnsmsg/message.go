package dnsmsg

import (
	"encoding/binary"
	"fmt"
)

// Header flag bits (RFC 1035 §4.1.1).
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Header is the fixed 12-byte DNS message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a DNS question section entry.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String implements fmt.Stringer.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// NewQuery builds a recursion-desired query for (name, type).
func NewQuery(id uint16, name Name, typ Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassIN}},
	}
}

// Reply builds a response header echoing the query's ID, opcode, question,
// and RD bit.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Append encodes the message onto buf and returns the extended slice.
// Name compression is applied across the whole message.
//
//spfail:hotpath
func (m *Message) Append(buf []byte) ([]byte, error) {
	base := len(buf)
	var flags uint16
	if m.Header.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= flagAA
	}
	if m.Header.Truncated {
		flags |= flagTC
	}
	if m.Header.RecursionDesired {
		flags |= flagRD
	}
	if m.Header.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.Header.RCode & 0xF)

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authority)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additional)))

	// Compression offsets are relative to the start of the DNS message,
	// which must be the start of buf growth for pointers to be valid.
	// When base != 0 compression is disabled. The compressor comes from a
	// pool so a fully-warmed Append into a caller-supplied buffer is
	// allocation-free.
	var cmp *compressor
	if base == 0 {
		cmp = compressorPool.Get().(*compressor)
		cmp.reset()
		defer compressorPool.Put(cmp)
	}

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, cmp); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, rr := range m.Answers {
		if buf, err = appendRecord(buf, rr, cmp); err != nil {
			return nil, err
		}
	}
	for _, rr := range m.Authority {
		if buf, err = appendRecord(buf, rr, cmp); err != nil {
			return nil, err
		}
	}
	for _, rr := range m.Additional {
		if buf, err = appendRecord(buf, rr, cmp); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Pack encodes the message into a fresh buffer.
func (m *Message) Pack() ([]byte, error) {
	return m.Append(make([]byte, 0, 512))
}

func appendRecord(buf []byte, rr Record, cmp *compressor) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, cmp); err != nil {
		return nil, err
	}
	if rr.Data == nil {
		return nil, fmt.Errorf("dnsmsg: record %s has nil data", rr.Name)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Data.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if buf, err = rr.Data.appendTo(buf, cmp); err != nil {
		return nil, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnsmsg: RDATA of %d bytes exceeds 65535", rdlen)
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a complete DNS message into freshly-allocated structures
// that the caller may retain indefinitely. Hot paths that can bound the
// message's lifetime should use a pooled Decoder instead.
func Unpack(msg []byte) (*Message, error) {
	d := &Decoder{retained: true}
	return d.Decode(msg)
}
