package dnsmsg

import "fmt"

// Type is a DNS RR type code.
type Type uint16

// RR types used by the SPF/SMTP measurement pipeline.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeSPF   Type = 99 // obsolete SPF RR type (RFC 7208 §3.1)
	TypeANY   Type = 255
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeSPF:
		return "SPF"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code.
type RCode uint16

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String implements fmt.Stringer.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint16(r))
	}
}

// OpCode is a DNS operation code; only Query is implemented.
type OpCode uint16

// Operation codes.
const (
	OpCodeQuery OpCode = 0
)
