package dnsmsg

import (
	"encoding/binary"
	"sync"
)

// Cache bounds for a reused Decoder. When an interning table grows past its
// bound (a flood of unique probe labels, exactly what SPFail campaigns
// generate) it is dropped and rebuilt, so memory stays proportional to the
// working set of distinct names, not to campaign length.
const (
	maxInternedLabels = 4096
	maxCachedRData    = 1024
)

// Decoder decodes DNS messages with amortized zero allocation. It reuses
// one Message (including every Name's label backing array) across calls,
// interns label strings, and caches the RData boxes of context-free record
// types (A, AAAA, TXT — types whose RDATA never embeds compression
// pointers into the surrounding message).
//
// The *Message returned by Decode is owned by the Decoder: it is valid
// only until the next Decode or PutDecoder call. Callers that need to
// retain the message indefinitely should use Unpack instead.
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	//spfail:allow poolhygiene message slots and label arrays are the warm cache; recycling them is the point
	msg Message
	//spfail:allow poolhygiene interning table deliberately survives recycling; bounded by maxInternedLabels
	labels map[string]string // interned name labels
	//spfail:allow poolhygiene RData box cache deliberately survives recycling; bounded by maxCachedRData
	a4 map[string]RData // cached A boxes keyed by raw RDATA
	//spfail:allow poolhygiene RData box cache deliberately survives recycling; bounded by maxCachedRData
	a6 map[string]RData // cached AAAA boxes keyed by raw RDATA
	//spfail:allow poolhygiene RData box cache deliberately survives recycling; bounded by maxCachedRData
	txt map[string]RData // cached TXT boxes keyed by raw RDATA

	// retained disables slot reuse, interning, and RData caching so the
	// returned Message owns all its memory (the Unpack contract).
	retained bool
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// NewDecoder returns a fresh Decoder for a long-lived owner (for example a
// server read loop). Most callers should pair GetDecoder with PutDecoder.
func NewDecoder() *Decoder { return new(Decoder) }

// GetDecoder fetches a pooled Decoder.
func GetDecoder() *Decoder {
	//spfail:allow poolhygiene Decode truncates every reused slot before filling it; the warm caches are the product
	return decoderPool.Get().(*Decoder)
}

// PutDecoder returns d to the pool. Any *Message previously returned by
// d.Decode must no longer be referenced.
func PutDecoder(d *Decoder) {
	if d != nil && !d.retained {
		d.scrub()
		decoderPool.Put(d)
	}
}

// scrub prepares d for recycling. Unlike most pooled types the Decoder
// keeps its caches on purpose — the interning table and RData boxes are
// what make repeat decodes allocation-free, and Decode bounds and
// truncates them itself — so scrub only clears per-checkout state.
func (d *Decoder) scrub() {
	d.retained = false
}

// Decode decodes a complete DNS message. The returned Message is valid
// until the next Decode or PutDecoder call on this Decoder.
//
//spfail:hotpath
func (d *Decoder) Decode(msg []byte) (*Message, error) {
	if len(d.labels) > maxInternedLabels {
		d.labels = nil
	}
	if len(d.a4) > maxCachedRData {
		d.a4 = nil
	}
	if len(d.a6) > maxCachedRData {
		d.a6 = nil
	}
	if len(d.txt) > maxCachedRData {
		d.txt = nil
	}

	if len(msg) < 12 {
		return nil, ErrTruncatedMessage
	}
	m := &d.msg
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]

	flags := binary.BigEndian.Uint16(msg[2:])
	m.Header = Header{
		ID:                 binary.BigEndian.Uint16(msg[0:]),
		Response:           flags&flagQR != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&flagAA != 0,
		Truncated:          flags&flagTC != 0,
		RecursionDesired:   flags&flagRD != 0,
		RecursionAvailable: flags&flagRA != 0,
		RCode:              RCode(flags & 0xF),
	}
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		m.Questions = growQuestions(m.Questions)
		q := &m.Questions[len(m.Questions)-1]
		if q.Name.labels, off, err = d.readNameInto(msg, off, q.Name.labels); err != nil {
			return nil, err
		}
		if off+4 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
	}
	if off, err = d.readRecordsInto(&m.Answers, msg, off, an); err != nil {
		return nil, err
	}
	if off, err = d.readRecordsInto(&m.Authority, msg, off, ns); err != nil {
		return nil, err
	}
	if _, err = d.readRecordsInto(&m.Additional, msg, off, ar); err != nil {
		return nil, err
	}
	return m, nil
}

// growQuestions extends s by one reusable slot without clearing the slot's
// existing backing memory (the Name label array is recycled).
func growQuestions(s []Question) []Question {
	if len(s) < cap(s) {
		return s[:len(s)+1]
	}
	return append(s, Question{})
}

func growRecords(s []Record) []Record {
	if len(s) < cap(s) {
		return s[:len(s)+1]
	}
	return append(s, Record{})
}

func (d *Decoder) readRecordsInto(dst *[]Record, msg []byte, off, count int) (int, error) {
	for i := 0; i < count; i++ {
		*dst = growRecords(*dst)
		r := &(*dst)[len(*dst)-1]
		var n int
		var err error
		if r.Name.labels, n, err = d.readNameInto(msg, off, r.Name.labels); err != nil {
			return 0, err
		}
		if n+10 > len(msg) {
			return 0, ErrTruncatedMessage
		}
		typ := Type(binary.BigEndian.Uint16(msg[n:]))
		r.Class = Class(binary.BigEndian.Uint16(msg[n+2:]))
		r.TTL = binary.BigEndian.Uint32(msg[n+4:])
		rdlen := int(binary.BigEndian.Uint16(msg[n+8:]))
		if r.Data, err = d.decodeRDataCached(msg, n+10, rdlen, typ); err != nil {
			return 0, err
		}
		off = n + 10 + rdlen
	}
	return off, nil
}

// readNameInto is readName with the Decoder's label interner and a reusable
// destination slice: labels is truncated and refilled, so a warmed slot
// decodes a name of any previously-seen labels without allocating.
//
//spfail:hotpath
func (d *Decoder) readNameInto(msg []byte, off int, labels []string) ([]string, int, error) {
	labels = labels[:0]
	ptrBudget := len(msg) // any chain longer than the message loops
	jumped := false
	end := off
	total := 1
	for {
		if off >= len(msg) {
			return labels, 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			return labels, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return labels, 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if ptr >= len(msg) {
				return labels, 0, ErrBadPointer
			}
			if !jumped {
				end = off + 2
				jumped = true
			}
			if ptrBudget--; ptrBudget <= 0 {
				return labels, 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return labels, 0, errReservedLabelType
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return labels, 0, ErrTruncatedMessage
			}
			if total += l + 1; total > MaxNameLen {
				return labels, 0, ErrNameTooLong
			}
			labels = append(labels, d.intern(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

// intern returns a string equal to b, reusing a previously-interned copy
// when available so repeated labels cost no allocation.
//
//spfail:hotpath
func (d *Decoder) intern(b []byte) string {
	if d.retained {
		//spfail:allow hotpathalloc retained path copies by contract (Unpack); pooled decoders never take it
		return string(b)
	}
	if s, ok := d.labels[string(b)]; ok {
		return s
	}
	if d.labels == nil {
		d.labels = make(map[string]string, 64)
	}
	//spfail:allow hotpathalloc first sight of a label must materialize it; amortized to zero by the interner
	s := string(b)
	d.labels[s] = s
	return s
}

// decodeRDataCached decodes RDATA, serving A/AAAA/TXT payloads from the
// per-raw-bytes box cache. Only those types are safe to key by RDATA bytes:
// MX/NS/CNAME/PTR/SOA may contain compression pointers that resolve against
// the surrounding message, so identical bytes can mean different names.
func (d *Decoder) decodeRDataCached(msg []byte, off, length int, typ Type) (RData, error) {
	if off+length > len(msg) {
		return nil, ErrTruncatedMessage
	}
	if d.retained {
		return decodeRData(msg, off, length, typ)
	}
	switch typ {
	case TypeA:
		return d.cachedRData(&d.a4, msg, off, length, typ)
	case TypeAAAA:
		return d.cachedRData(&d.a6, msg, off, length, typ)
	case TypeTXT:
		return d.cachedRData(&d.txt, msg, off, length, typ)
	default:
		return decodeRData(msg, off, length, typ)
	}
}

//spfail:hotpath
func (d *Decoder) cachedRData(m *map[string]RData, msg []byte, off, length int, typ Type) (RData, error) {
	body := msg[off : off+length]
	if rd, ok := (*m)[string(body)]; ok {
		return rd, nil
	}
	rd, err := decodeRData(msg, off, length, typ)
	if err != nil {
		return nil, err
	}
	if *m == nil {
		*m = make(map[string]RData, 16)
	}
	//spfail:allow hotpathalloc first sight of an RDATA payload keys the box cache; amortized to zero
	(*m)[string(body)] = rd
	return rd, nil
}
