package dnsmsg

import "sync"

// maxCompressorEntries bounds the number of name offsets a compressor
// tracks. Entries beyond the cap are silently not registered, which only
// degrades compression, never correctness. 64 covers every response the
// probing stack emits (a handful of names per section).
const maxCompressorEntries = 64

// compressorPtrBudget bounds pointer chasing while comparing a candidate
// suffix against already-encoded wire bytes. Encoded names never chain more
// than MaxNameLen/2 pointers; 64 is comfortably above that.
const compressorPtrBudget = 64

// compressor is the RFC 1035 §4.1.4 name-compression state for one message
// encode. Instead of a map from canonical suffix strings to offsets (which
// allocates a key per suffix), it records the buffer offsets at which name
// suffixes begin and matches candidates by walking the wire bytes already
// written — making encode allocation-free.
type compressor struct {
	offs [maxCompressorEntries]uint16
	n    int
}

var compressorPool = sync.Pool{New: func() any { return new(compressor) }}

func (c *compressor) reset() { c.n = 0 }

// add registers off as the start of a freshly-encoded name suffix.
func (c *compressor) add(off int) {
	if c.n < maxCompressorEntries && off < 0x3FFF {
		c.offs[c.n] = uint16(off)
		c.n++
	}
}

// lookup returns the offset of an already-encoded name equal to labels,
// comparing case-insensitively against the wire bytes in buf.
func (c *compressor) lookup(buf []byte, labels []string) (uint16, bool) {
	for i := 0; i < c.n; i++ {
		if wireNameEquals(buf, int(c.offs[i]), labels) {
			return c.offs[i], true
		}
	}
	return 0, false
}

// wireNameEquals reports whether the (possibly compressed) name encoded at
// buf[off:] equals labels, case-insensitively. It only ever follows
// pointers into bytes the encoder itself wrote, so a bounded hop budget is
// a pure belt-and-suspenders check.
func wireNameEquals(buf []byte, off int, labels []string) bool {
	hops := 0
	for _, l := range labels {
		off, hops = followPointers(buf, off, hops)
		if off < 0 || off >= len(buf) {
			return false
		}
		n := int(buf[off])
		if n == 0 || n&0xC0 != 0 || n != len(l) || off+1+n > len(buf) {
			return false
		}
		if !asciiEqualFold(buf[off+1:off+1+n], l) {
			return false
		}
		off += 1 + n
	}
	off, _ = followPointers(buf, off, hops)
	return off >= 0 && off < len(buf) && buf[off] == 0
}

// followPointers resolves a chain of compression pointers starting at off,
// returning the offset of the first non-pointer byte, or -1 on a malformed
// or over-long chain.
func followPointers(buf []byte, off, hops int) (int, int) {
	for off < len(buf) && buf[off]&0xC0 == 0xC0 {
		if off+1 >= len(buf) {
			return -1, hops
		}
		if hops++; hops > compressorPtrBudget {
			return -1, hops
		}
		off = int(buf[off]&0x3F)<<8 | int(buf[off+1])
	}
	return off, hops
}

// asciiEqualFold reports ASCII case-insensitive equality of b and s, the
// comparison RFC 1035 §2.3.3 prescribes for domain names. It never
// allocates, unlike strings.EqualFold on a converted []byte.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		x, y := b[i], s[i]
		if 'A' <= x && x <= 'Z' {
			x += 'a' - 'A'
		}
		if 'A' <= y && y <= 'Z' {
			y += 'a' - 'A'
		}
		if x != y {
			return false
		}
	}
	return true
}
