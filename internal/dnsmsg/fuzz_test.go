package dnsmsg

import (
	"bytes"
	"testing"
)

// FuzzUnpack hammers the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode and re-decode stably.
func FuzzUnpack(f *testing.F) {
	// Seed corpus: real packed messages and adversarial fragments.
	q := NewQuery(0x1234, MustParseName("x7k2.s01.spf-test.dns-lab.org"), TypeTXT)
	if b, err := q.Pack(); err == nil {
		f.Add(b)
	}
	resp := q.Reply()
	resp.Answers = append(resp.Answers, Record{
		Name: MustParseName("x7k2.s01.spf-test.dns-lab.org"), Class: ClassIN, TTL: 1,
		Data: SplitTXT("v=spf1 a:%{d1r}.x7k2.s01.spf-test.dns-lab.org -all"),
	})
	if b, err := resp.Pack(); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0xC0, 0x00})
	f.Add([]byte{0, 0, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0x3F}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. labels
			// recovered from compressed names exceeding limits); that is
			// acceptable as long as decode did not panic.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message does not decode: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				len(m.Questions), len(m.Answers), len(m2.Questions), len(m2.Answers))
		}
	})
}

// FuzzParseName checks the name parser and its wire round trip.
func FuzzParseName(f *testing.F) {
	for _, s := range []string{
		"example.com", ".", "", "a.b.c.d.e",
		"%{d1r}.x.s.spf-test.dns-lab.org",
		"org.org.dns-lab.spf-test.s.x.x.s.spf-test.dns-lab.org",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return
		}
		buf, err := appendName(nil, n, nil)
		if err != nil {
			t.Fatalf("parsed name fails to encode: %v", err)
		}
		back, _, err := readName(buf, 0)
		if err != nil {
			t.Fatalf("encoded name fails to decode: %v", err)
		}
		if !back.Equal(n) {
			t.Fatalf("round trip changed name: %q vs %q", n, back)
		}
	})
}
