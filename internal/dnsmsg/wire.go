package dnsmsg

import "encoding/binary"

// WireQuery is an allocation-free view of a simple DNS query packet: one
// question, no other sections, uncompressed qname. It is the input of the
// dnsserver template fast path, which answers without ever materializing a
// Message.
type WireQuery struct {
	ID               uint16
	RecursionDesired bool
	Type             Type
	Class            Class
	// NameWire is the qname's wire encoding including the terminating root
	// byte. It aliases the packet and is only valid while the packet is.
	NameWire []byte
}

// ParseWireQuery validates pkt as a plain query eligible for the template
// fast path. Anything unusual — responses, non-query opcodes, multiple
// questions, extra sections (e.g. EDNS OPT), compressed or oversized
// qnames, trailing bytes — returns ok == false so the caller falls back to
// the full decoder.
func ParseWireQuery(pkt []byte) (wq WireQuery, ok bool) {
	if len(pkt) < 12 {
		return WireQuery{}, false
	}
	flags := binary.BigEndian.Uint16(pkt[2:])
	if flags&flagQR != 0 || OpCode(flags>>11&0xF) != OpCodeQuery {
		return WireQuery{}, false
	}
	if binary.BigEndian.Uint16(pkt[4:]) != 1 {
		return WireQuery{}, false
	}
	if pkt[6]|pkt[7]|pkt[8]|pkt[9]|pkt[10]|pkt[11] != 0 {
		return WireQuery{}, false
	}
	off := 12
	total := 1
	for {
		if off >= len(pkt) {
			return WireQuery{}, false
		}
		b := pkt[off]
		if b == 0 {
			off++
			break
		}
		if b&0xC0 != 0 {
			return WireQuery{}, false
		}
		l := int(b)
		if off+1+l > len(pkt) {
			return WireQuery{}, false
		}
		if total += l + 1; total > MaxNameLen {
			return WireQuery{}, false
		}
		off += 1 + l
	}
	if off+4 != len(pkt) {
		return WireQuery{}, false
	}
	return WireQuery{
		ID:               binary.BigEndian.Uint16(pkt),
		RecursionDesired: flags&flagRD != 0,
		Type:             Type(binary.BigEndian.Uint16(pkt[off:])),
		Class:            Class(binary.BigEndian.Uint16(pkt[off+2:])),
		NameWire:         pkt[12:off],
	}, true
}

// WireNameHasSuffix reports whether the uncompressed wire-encoded name
// equals suffix or is a subdomain of it, comparing ASCII
// case-insensitively and never allocating. wire is in NameWire form (the
// terminating root byte is permitted but not required).
func WireNameHasSuffix(wire []byte, suffix Name) bool {
	cnt := 0
	for off := 0; off < len(wire) && wire[off] != 0; {
		l := int(wire[off])
		if l&0xC0 != 0 || off+1+l > len(wire) {
			return false
		}
		cnt++
		off += 1 + l
	}
	if cnt < len(suffix.labels) {
		return false
	}
	off := 0
	for i := cnt - len(suffix.labels); i > 0; i-- {
		off += 1 + int(wire[off])
	}
	for _, l := range suffix.labels {
		n := int(wire[off])
		if n != len(l) || !asciiEqualFold(wire[off+1:off+1+n], l) {
			return false
		}
		off += 1 + n
	}
	return true
}

// AppendWireName appends the uncompressed wire encoding of n to buf.
func AppendWireName(buf []byte, n Name) ([]byte, error) {
	return appendName(buf, n, nil)
}

// ReadWireName decodes a wire-format name starting at wire[0], returning
// the name and the offset just past its encoding.
func ReadWireName(wire []byte) (Name, int, error) {
	return readName(wire, 0)
}
