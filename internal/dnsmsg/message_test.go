package dnsmsg

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return b
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, MustParseName("example.com"), TypeTXT)
	got, err := Unpack(mustPack(t, q))
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if q := got.Questions[0]; !q.Name.Equal(MustParseName("example.com")) || q.Type != TypeTXT || q.Class != ClassIN {
		t.Errorf("question = %v", q)
	}
}

func TestReplyEchoesQuery(t *testing.T) {
	q := NewQuery(7, MustParseName("example.com"), TypeMX)
	r := q.Reply()
	if !r.Header.Response || r.Header.ID != 7 || !r.Header.RecursionDesired {
		t.Errorf("reply header = %+v", r.Header)
	}
	if len(r.Questions) != 1 || !r.Questions[0].Name.Equal(q.Questions[0].Name) {
		t.Errorf("reply questions = %v", r.Questions)
	}
}

func TestFullResponseRoundTrip(t *testing.T) {
	name := MustParseName("example.com")
	mx1 := MustParseName("mail1.example.com")
	m := &Message{
		Header:    Header{ID: 42, Response: true, Authoritative: true, RCode: RCodeNoError},
		Questions: []Question{{Name: name, Type: TypeANY, Class: ClassIN}},
		Answers: []Record{
			{Name: name, Class: ClassIN, TTL: 300, Data: MX{Preference: 10, Host: mx1}},
			{Name: name, Class: ClassIN, TTL: 300, Data: TXT{Strings: []string{"v=spf1 ip4:192.0.2.1 -all"}}},
			{Name: mx1, Class: ClassIN, TTL: 60, Data: A{Addr: netip.MustParseAddr("192.0.2.1")}},
			{Name: mx1, Class: ClassIN, TTL: 60, Data: AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
			{Name: name, Class: ClassIN, TTL: 60, Data: CNAME{Target: mx1}},
			{Name: name, Class: ClassIN, TTL: 60, Data: NS{Host: mx1}},
			{Name: name, Class: ClassIN, TTL: 60, Data: PTR{Target: mx1}},
		},
		Authority: []Record{
			{Name: name, Class: ClassIN, TTL: 3600, Data: SOA{
				MName: mx1, RName: MustParseName("hostmaster.example.com"),
				Serial: 2021101100, Refresh: 7200, Retry: 900, Expire: 86400, Minimum: 60,
			}},
		},
	}
	got, err := Unpack(mustPack(t, m))
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !got.Header.Authoritative || !got.Header.Response || got.Header.ID != 42 {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Answers) != len(m.Answers) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(m.Answers))
	}
	for i := range m.Answers {
		if got.Answers[i].String() != m.Answers[i].String() {
			t.Errorf("answer %d = %q, want %q", i, got.Answers[i], m.Answers[i])
		}
	}
	if len(got.Authority) != 1 || got.Authority[0].String() != m.Authority[0].String() {
		t.Errorf("authority = %v", got.Authority)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	name := MustParseName("really-long-label-here.example-domain-name.com")
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: name, Type: TypeMX, Class: ClassIN}},
	}
	for i := 0; i < 5; i++ {
		m.Answers = append(m.Answers, Record{
			Name: name, Class: ClassIN, TTL: 60,
			Data: MX{Preference: uint16(i), Host: name},
		})
	}
	packed := mustPack(t, m)
	// The 48-byte name appears 11 times; uncompressed this message is
	// ~600 bytes, compressed each repeat is a 2-byte pointer (144 total).
	if len(packed) > 160 {
		t.Errorf("packed message is %d bytes; compression ineffective", len(packed))
	}
	got, err := Unpack(packed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	for i, a := range got.Answers {
		if !a.Data.(MX).Host.Equal(name) {
			t.Errorf("answer %d host = %v", i, a.Data)
		}
	}
}

func TestTXTJoinedAndSplit(t *testing.T) {
	long := strings.Repeat("x", 600)
	txt := SplitTXT(long)
	if len(txt.Strings) != 3 {
		t.Fatalf("SplitTXT chunks = %d, want 3", len(txt.Strings))
	}
	if txt.Joined() != long {
		t.Error("Joined != original")
	}
	buf, err := txt.appendTo(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := decodeRData(buf, 0, len(buf), TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if rd.(TXT).Joined() != long {
		t.Error("wire round trip lost TXT data")
	}
}

func TestTXTTooLongString(t *testing.T) {
	txt := TXT{Strings: []string{strings.Repeat("a", 256)}}
	if _, err := txt.appendTo(nil, nil); err == nil {
		t.Fatal("oversized TXT string should error")
	}
}

func TestUnpackTruncated(t *testing.T) {
	q := NewQuery(9, MustParseName("example.com"), TypeA)
	b := mustPack(t, q)
	for cut := 1; cut < len(b); cut += 3 {
		if _, err := Unpack(b[:cut]); err == nil && cut < 12 {
			t.Errorf("Unpack of %d-byte prefix should error", cut)
		}
	}
	if _, err := Unpack(nil); err != ErrTruncatedMessage {
		t.Errorf("Unpack(nil) = %v", err)
	}
}

func TestARecordRejectsV6(t *testing.T) {
	a := A{Addr: netip.MustParseAddr("2001:db8::1")}
	if _, err := a.appendTo(nil, nil); err == nil {
		t.Fatal("A with IPv6 addr should error")
	}
	aaaa := AAAA{Addr: netip.MustParseAddr("192.0.2.1")}
	if _, err := aaaa.appendTo(nil, nil); err == nil {
		t.Fatal("AAAA with IPv4 addr should error")
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || TypeAAAA.String() != "AAAA" || Type(62000).String() != "TYPE62000" {
		t.Error("Type.String mismatch")
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("Class.String mismatch")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(9).String() != "RCODE9" {
		t.Error("RCode.String mismatch")
	}
}

// randomMessage builds an arbitrary valid message for property testing.
func randomMessage(r *rand.Rand) *Message {
	m := &Message{Header: Header{
		ID:               uint16(r.Intn(1 << 16)),
		Response:         r.Intn(2) == 0,
		Authoritative:    r.Intn(2) == 0,
		RecursionDesired: r.Intn(2) == 0,
		RCode:            RCode(r.Intn(6)),
	}}
	m.Questions = append(m.Questions, Question{Name: quickName(r), Type: TypeTXT, Class: ClassIN})
	n := r.Intn(6)
	for i := 0; i < n; i++ {
		name := quickName(r)
		var data RData
		switch r.Intn(5) {
		case 0:
			var b [4]byte
			r.Read(b[:])
			data = A{Addr: netip.AddrFrom4(b)}
		case 1:
			var b [16]byte
			r.Read(b[:])
			b[0] = 0x20 // avoid v4-mapped forms
			data = AAAA{Addr: netip.AddrFrom16(b)}
		case 2:
			data = MX{Preference: uint16(r.Intn(100)), Host: quickName(r)}
		case 3:
			data = TXT{Strings: []string{"v=spf1 a:%{d1r}.foo.example -all"}}
		default:
			data = CNAME{Target: quickName(r)}
		}
		m.Answers = append(m.Answers, Record{Name: name, Class: ClassIN, TTL: uint32(r.Intn(3600)), Data: data})
	}
	return m
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		b, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			return false
		}
		if got.Header != m.Header {
			return false
		}
		if len(got.Answers) != len(m.Answers) {
			return false
		}
		for i := range m.Answers {
			if got.Answers[i].String() != m.Answers[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnpackNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		// Decoder must reject or accept garbage without panicking.
		_, _ = Unpack(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
