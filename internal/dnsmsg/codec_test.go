package dnsmsg

import (
	"fmt"
	"net/netip"
	"testing"
)

// spfExchangeMessages builds the representative SPF probe exchange: a TXT
// query for a target domain and the authoritative response carrying the
// macro-bearing SPF policy the paper's test domains serve (§5.1).
func spfExchangeMessages() (query, response *Message) {
	name := MustParseName("target-domain.example")
	q := NewQuery(0x1234, name, TypeTXT)
	r := q.Reply()
	r.Header.Authoritative = true
	policy := "v=spf1 a:%{d1r}.x7k2.s01.spf-test.dns-lab.org a:b.x7k2.s01.spf-test.dns-lab.org -all"
	r.Answers = append(r.Answers, Record{Name: name, Class: ClassIN, TTL: 300, Data: SplitTXT(policy)})
	return q, r
}

func spfExchangeWire(t testing.TB) (query, response []byte) {
	t.Helper()
	q, r := spfExchangeMessages()
	qb, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return qb, rb
}

// mixedResponseWire packs a response exercising every modelled RData type,
// so decoder comparisons cover the cached and uncached paths alike.
func mixedResponseWire(t testing.TB) []byte {
	t.Helper()
	name := MustParseName("example.com")
	mx1 := MustParseName("mail1.example.com")
	m := &Message{
		Header:    Header{ID: 42, Response: true, Authoritative: true},
		Questions: []Question{{Name: name, Type: TypeANY, Class: ClassIN}},
		Answers: []Record{
			{Name: name, Class: ClassIN, TTL: 300, Data: MX{Preference: 10, Host: mx1}},
			{Name: name, Class: ClassIN, TTL: 300, Data: TXT{Strings: []string{"v=spf1 mx -all"}}},
			{Name: mx1, Class: ClassIN, TTL: 60, Data: A{Addr: netip.MustParseAddr("192.0.2.1")}},
			{Name: mx1, Class: ClassIN, TTL: 60, Data: AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
			{Name: name, Class: ClassIN, TTL: 60, Data: CNAME{Target: mx1}},
			{Name: name, Class: ClassIN, TTL: 60, Data: NS{Host: mx1}},
			{Name: name, Class: ClassIN, TTL: 60, Data: PTR{Target: mx1}},
		},
		Authority: []Record{
			{Name: name, Class: ClassIN, TTL: 3600, Data: SOA{
				MName: mx1, RName: MustParseName("hostmaster.example.com"),
				Serial: 2021101100, Refresh: 7200, Retry: 900, Expire: 86400, Minimum: 60,
			}},
		},
	}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameMessage(t *testing.T, got, want *Message) {
	t.Helper()
	if got.Header != want.Header {
		t.Errorf("header = %+v, want %+v", got.Header, want.Header)
	}
	if len(got.Questions) != len(want.Questions) {
		t.Fatalf("questions = %d, want %d", len(got.Questions), len(want.Questions))
	}
	for i := range want.Questions {
		if got.Questions[i].String() != want.Questions[i].String() {
			t.Errorf("question %d = %q, want %q", i, got.Questions[i], want.Questions[i])
		}
	}
	for s, secs := range map[string][2][]Record{
		"answers":    {got.Answers, want.Answers},
		"authority":  {got.Authority, want.Authority},
		"additional": {got.Additional, want.Additional},
	} {
		g, w := secs[0], secs[1]
		if len(g) != len(w) {
			t.Fatalf("%s = %d records, want %d", s, len(g), len(w))
		}
		for i := range w {
			if g[i].String() != w[i].String() {
				t.Errorf("%s %d = %q, want %q", s, i, g[i], w[i])
			}
		}
	}
}

// TestDecoderReuseMatchesUnpack checks that a single reused Decoder yields
// the same messages as independent Unpack calls, across repeated decodes
// that recycle the internal slots.
func TestDecoderReuseMatchesUnpack(t *testing.T) {
	qb, rb := spfExchangeWire(t)
	mixed := mixedResponseWire(t)
	d := NewDecoder()
	for i := 0; i < 3; i++ {
		for _, pkt := range [][]byte{qb, rb, mixed, qb} {
			want, err := Unpack(pkt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Decode(pkt)
			if err != nil {
				t.Fatal(err)
			}
			sameMessage(t, got, want)
		}
	}
}

// TestDecoderRejectsGarbage mirrors the Unpack truncation tests on the
// reused decoder: errors must not corrupt later decodes.
func TestDecoderRejectsGarbage(t *testing.T) {
	qb, rb := spfExchangeWire(t)
	d := NewDecoder()
	for cut := 0; cut < len(rb); cut += 5 {
		if cut < 12 {
			if _, err := d.Decode(rb[:cut]); err == nil {
				t.Errorf("Decode of %d-byte prefix should error", cut)
			}
		} else {
			_, _ = d.Decode(rb[:cut]) // must not panic
		}
		want, err := Unpack(qb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decode(qb)
		if err != nil {
			t.Fatalf("decode after error: %v", err)
		}
		sameMessage(t, got, want)
	}
}

// TestDecoderInternBound floods the decoder with unique probe-style labels
// and checks the interning tables stay bounded while decodes stay correct —
// the memory profile a long SPFail campaign imposes.
func TestDecoderInternBound(t *testing.T) {
	d := NewDecoder()
	for i := 0; i < maxInternedLabels+500; i++ {
		name := MustParseName(fmt.Sprintf("u%06d.probe.example", i))
		pkt, err := NewQuery(uint16(i), name, TypeTXT).Pack()
		if err != nil {
			t.Fatal(err)
		}
		m, err := d.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Questions[0].Name.Equal(name) {
			t.Fatalf("decode %d: name = %v, want %v", i, m.Questions[0].Name, name)
		}
	}
	if len(d.labels) > maxInternedLabels+3 {
		t.Errorf("interner grew to %d entries, bound is %d", len(d.labels), maxInternedLabels)
	}
}

// TestDecoderPool checks the Get/Put cycle and that Unpack's messages are
// never backed by pooled state.
func TestDecoderPool(t *testing.T) {
	qb, _ := spfExchangeWire(t)
	d := GetDecoder()
	if _, err := d.Decode(qb); err != nil {
		t.Fatal(err)
	}
	PutDecoder(d)
	PutDecoder(nil) // must be a no-op

	// Unpack must hand out retained messages: decoding other packets
	// through the pool afterwards must not disturb them.
	m1, err := Unpack(qb)
	if err != nil {
		t.Fatal(err)
	}
	before := m1.Questions[0].String()
	for i := 0; i < 8; i++ {
		d := GetDecoder()
		other, err := NewQuery(9, MustParseName("other.example"), TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Decode(other); err != nil {
			t.Fatal(err)
		}
		PutDecoder(d)
	}
	if got := m1.Questions[0].String(); got != before {
		t.Errorf("Unpack message mutated by pooled decodes: %q != %q", got, before)
	}
}

// TestCompressorFull checks that overflowing the offset table only loses
// compression, never correctness.
func TestCompressorFull(t *testing.T) {
	m := &Message{Header: Header{ID: 3, Response: true}}
	m.Questions = append(m.Questions, Question{Name: MustParseName("q.example"), Type: TypeTXT, Class: ClassIN})
	for i := 0; i < maxCompressorEntries+20; i++ {
		n := MustParseName(fmt.Sprintf("h%03d.example", i))
		m.Answers = append(m.Answers, Record{Name: n, Class: ClassIN, TTL: 1, Data: A{Addr: netip.MustParseAddr("192.0.2.7")}})
	}
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Answers {
		if got.Answers[i].String() != m.Answers[i].String() {
			t.Fatalf("answer %d = %q, want %q", i, got.Answers[i], m.Answers[i])
		}
	}
}

// BenchmarkDecode measures pooled decode of the representative SPF TXT
// response (the packet every probe's policy fetch receives).
func BenchmarkDecode(b *testing.B) {
	_, rb := spfExchangeWire(b)
	d := NewDecoder()
	if _, err := d.Decode(rb); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(rb)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(rb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode measures append-style encode of the same response into a
// reused buffer.
func BenchmarkEncode(b *testing.B) {
	_, r := spfExchangeMessages()
	buf := make([]byte, 0, 512)
	var err error
	if buf, err = r.Append(buf[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = r.Append(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
