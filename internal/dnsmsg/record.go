package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record.
type RData interface {
	// Type returns the RR type this payload encodes.
	Type() Type
	// appendTo appends the wire-format RDATA (without the length prefix).
	// cmp carries the message compression state; only record types whose
	// RDATA names are compressible per RFC 3597 §4 may use it.
	appendTo(buf []byte, cmp *compressor) ([]byte, error)
	// String renders the payload in presentation format.
	String() string
}

// Record is a DNS resource record.
type Record struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file style.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Data.Type(), r.Data)
}

// A is an IPv4 address record.
type A struct{ Addr netip.Addr }

// Type implements RData.
func (A) Type() Type { return TypeA }

func (a A) appendTo(buf []byte, _ *compressor) ([]byte, error) {
	if !a.Addr.Is4() {
		return buf, fmt.Errorf("dnsmsg: A record with non-IPv4 address %s", a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

// String implements RData.
func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record.
type AAAA struct{ Addr netip.Addr }

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

func (a AAAA) appendTo(buf []byte, _ *compressor) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return buf, fmt.Errorf("dnsmsg: AAAA record with non-IPv6 address %s", a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

// String implements RData.
func (a AAAA) String() string { return a.Addr.String() }

// MX is a mail-exchanger record.
type MX struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

func (m MX) appendTo(buf []byte, cmp *compressor) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, m.Preference)
	return appendName(buf, m.Host, cmp)
}

// String implements RData.
func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, m.Host) }

// TXT is a text record: one or more character strings of up to 255 bytes.
type TXT struct{ Strings []string }

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

func (t TXT) appendTo(buf []byte, _ *compressor) ([]byte, error) {
	if len(t.Strings) == 0 {
		return buf, errors.New("dnsmsg: TXT record with no strings")
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return buf, fmt.Errorf("dnsmsg: TXT string of %d bytes exceeds 255", len(s))
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// String implements RData.
func (t TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// Joined returns the concatenation of the record's character strings, the
// form in which SPF policies are interpreted (RFC 7208 §3.3).
func (t TXT) Joined() string { return strings.Join(t.Strings, "") }

// SplitTXT splits a long string into 255-byte chunks suitable for TXT.
func SplitTXT(s string) TXT {
	var out []string
	for len(s) > 255 {
		out = append(out, s[:255])
		s = s[255:]
	}
	out = append(out, s)
	return TXT{Strings: out}
}

// NS is a name-server record.
type NS struct{ Host Name }

// Type implements RData.
func (NS) Type() Type { return TypeNS }

func (n NS) appendTo(buf []byte, cmp *compressor) ([]byte, error) {
	return appendName(buf, n.Host, cmp)
}

// String implements RData.
func (n NS) String() string { return n.Host.String() }

// CNAME is a canonical-name record.
type CNAME struct{ Target Name }

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

func (c CNAME) appendTo(buf []byte, cmp *compressor) ([]byte, error) {
	return appendName(buf, c.Target, cmp)
}

// String implements RData.
func (c CNAME) String() string { return c.Target.String() }

// PTR is a pointer record (reverse mapping).
type PTR struct{ Target Name }

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

func (p PTR) appendTo(buf []byte, cmp *compressor) ([]byte, error) {
	return appendName(buf, p.Target, cmp)
}

// String implements RData.
func (p PTR) String() string { return p.Target.String() }

// SOA is a start-of-authority record.
type SOA struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

func (s SOA) appendTo(buf []byte, cmp *compressor) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, s.MName, cmp); err != nil {
		return buf, err
	}
	if buf, err = appendName(buf, s.RName, cmp); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	buf = binary.BigEndian.AppendUint32(buf, s.Minimum)
	return buf, nil
}

// String implements RData.
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// Unknown carries the raw RDATA of a type the codec does not model.
type Unknown struct {
	T    Type
	Data []byte
}

// Type implements RData.
func (u Unknown) Type() Type { return u.T }

func (u Unknown) appendTo(buf []byte, _ *compressor) ([]byte, error) {
	return append(buf, u.Data...), nil
}

// String implements RData.
func (u Unknown) String() string { return fmt.Sprintf("\\# %d %x", len(u.Data), u.Data) }

// decodeRData parses the RDATA of a record of the given type occupying
// msg[off:off+length]. Compressed names inside RDATA may point anywhere in
// msg.
func decodeRData(msg []byte, off, length int, typ Type) (RData, error) {
	if off+length > len(msg) {
		return nil, ErrTruncatedMessage
	}
	body := msg[off : off+length]
	switch typ {
	case TypeA:
		if len(body) != 4 {
			return nil, fmt.Errorf("dnsmsg: A RDATA of %d bytes", len(body))
		}
		return A{Addr: netip.AddrFrom4([4]byte(body))}, nil
	case TypeAAAA:
		if len(body) != 16 {
			return nil, fmt.Errorf("dnsmsg: AAAA RDATA of %d bytes", len(body))
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(body))}, nil
	case TypeMX:
		if len(body) < 3 {
			return nil, fmt.Errorf("dnsmsg: MX RDATA of %d bytes", len(body))
		}
		pref := binary.BigEndian.Uint16(body[:2])
		host, _, err := readName(msg, off+2)
		if err != nil {
			return nil, err
		}
		return MX{Preference: pref, Host: host}, nil
	case TypeTXT, TypeSPF:
		var ss []string
		for i := 0; i < len(body); {
			l := int(body[i])
			if i+1+l > len(body) {
				return nil, ErrTruncatedMessage
			}
			ss = append(ss, string(body[i+1:i+1+l]))
			i += 1 + l
		}
		if len(ss) == 0 {
			return nil, errors.New("dnsmsg: empty TXT RDATA")
		}
		if typ == TypeSPF {
			return Unknown{T: TypeSPF, Data: append([]byte(nil), body...)}, nil
		}
		return TXT{Strings: ss}, nil
	case TypeNS:
		host, _, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		return NS{Host: host}, nil
	case TypeCNAME:
		target, _, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		return CNAME{Target: target}, nil
	case TypePTR:
		target, _, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		return PTR{Target: target}, nil
	case TypeSOA:
		mname, n1, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, n2, err := readName(msg, n1)
		if err != nil {
			return nil, err
		}
		if n2+20 > off+length {
			return nil, ErrTruncatedMessage
		}
		return SOA{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(msg[n2:]),
			Refresh: binary.BigEndian.Uint32(msg[n2+4:]),
			Retry:   binary.BigEndian.Uint32(msg[n2+8:]),
			Expire:  binary.BigEndian.Uint32(msg[n2+12:]),
			Minimum: binary.BigEndian.Uint32(msg[n2+16:]),
		}, nil
	default:
		return Unknown{T: typ, Data: append([]byte(nil), body...)}, nil
	}
}
