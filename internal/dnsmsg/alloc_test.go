//go:build !race

package dnsmsg

import "testing"

// The zero-allocation contract for the probe hot path (ISSUE 4): decoding
// and encoding a representative SPF TXT exchange must not allocate once the
// codec is warm. The race detector instruments allocations, so these
// assertions are compiled out under -race (the behavior itself is covered
// race-enabled by the functional codec tests).

func TestDecodeZeroAllocs(t *testing.T) {
	qb, rb := spfExchangeWire(t)
	d := NewDecoder()
	for i := 0; i < 4; i++ { // warm slots, interner, and RData caches
		if _, err := d.Decode(qb); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Decode(rb); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := d.Decode(qb); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Decode(rb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Decode of SPF TXT exchange allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEncodeZeroAllocs(t *testing.T) {
	q, r := spfExchangeMessages()
	buf := make([]byte, 0, 1024)
	var err error
	for i := 0; i < 4; i++ { // warm the compressor pool and buffer
		if buf, err = q.Append(buf[:0]); err != nil {
			t.Fatal(err)
		}
		if buf, err = r.Append(buf[:0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if buf, err = q.Append(buf[:0]); err != nil {
			t.Fatal(err)
		}
		if buf, err = r.Append(buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Append of SPF TXT exchange allocates %.1f objects/op, want 0", allocs)
	}
}
