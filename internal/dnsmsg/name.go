// Package dnsmsg implements the DNS wire format (RFC 1035): domain names
// with message compression, resource records, and full message
// encoding/decoding.
//
// The codec is deliberately strict on decode (rejecting malformed
// compression loops, truncated records, and oversized names) because the
// SPFail detection pipeline treats every inbound query at the authoritative
// server as evidence; a sloppy parser would mis-attribute fingerprints.
package dnsmsg

import (
	"errors"
	"fmt"
	"strings"
)

// Wire-format size limits from RFC 1035 §2.3.4.
const (
	MaxLabelLen = 63  // maximum length of a single label
	MaxNameLen  = 255 // maximum length of an encoded name
)

// Errors returned by the name codec.
var (
	ErrNameTooLong      = errors.New("dnsmsg: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnsmsg: label exceeds 63 octets")
	ErrEmptyLabel       = errors.New("dnsmsg: empty label")
	ErrBadPointer       = errors.New("dnsmsg: bad compression pointer")
	ErrPointerLoop      = errors.New("dnsmsg: compression pointer loop")
	ErrTruncatedMessage = errors.New("dnsmsg: truncated message")

	errReservedLabelType = errors.New("dnsmsg: reserved label type")
)

// Name is a fully-qualified domain name held as a sequence of labels.
// The zero Name is the DNS root. Names compare case-insensitively;
// CanonicalKey returns a stable comparison key.
type Name struct {
	labels []string
}

// NewName builds a Name from labels, validating wire-format limits.
func NewName(labels ...string) (Name, error) {
	n := Name{labels: append([]string(nil), labels...)}
	if err := n.validate(); err != nil {
		return Name{}, err
	}
	return n, nil
}

// ParseName parses a presentation-format name such as "example.com." or
// "example.com". An empty string or "." yields the root. Labels containing
// arbitrary bytes (e.g. a literal "%{d1r}") are accepted — the DNS itself is
// 8-bit clean, and SPFail's fingerprint taxonomy depends on names that are
// invalid hostnames but valid DNS names.
func ParseName(s string) (Name, error) {
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return Name{}, nil
	}
	labels := strings.Split(s, ".")
	return NewName(labels...)
}

// MustParseName is ParseName that panics on error, for constants in tests
// and zone setup.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(fmt.Sprintf("dnsmsg: MustParseName(%q): %v", s, err))
	}
	return n
}

func (n Name) validate() error {
	total := 1 // trailing root byte
	for _, l := range n.labels {
		if l == "" {
			return ErrEmptyLabel
		}
		if len(l) > MaxLabelLen {
			return ErrLabelTooLong
		}
		total += len(l) + 1
	}
	if total > MaxNameLen {
		return ErrNameTooLong
	}
	return nil
}

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return len(n.labels) == 0 }

// Labels returns a copy of the name's labels, left to right.
func (n Name) Labels() []string { return append([]string(nil), n.labels...) }

// NumLabels returns the number of labels in the name.
func (n Name) NumLabels() int { return len(n.labels) }

// Label returns the i-th label (0 = leftmost).
func (n Name) Label(i int) string { return n.labels[i] }

// String renders the name in presentation format with a trailing dot.
func (n Name) String() string {
	if n.IsRoot() {
		return "."
	}
	return strings.Join(n.labels, ".") + "."
}

// CanonicalKey returns a case-folded comparison key for map lookups.
func (n Name) CanonicalKey() string { return strings.ToLower(n.String()) }

// Equal reports case-insensitive equality.
func (n Name) Equal(o Name) bool {
	if len(n.labels) != len(o.labels) {
		return false
	}
	for i := range n.labels {
		if !strings.EqualFold(n.labels[i], o.labels[i]) {
			return false
		}
	}
	return true
}

// HasSuffix reports whether n equals suffix or is a subdomain of it.
func (n Name) HasSuffix(suffix Name) bool {
	if len(suffix.labels) > len(n.labels) {
		return false
	}
	off := len(n.labels) - len(suffix.labels)
	for i := range suffix.labels {
		if !strings.EqualFold(n.labels[off+i], suffix.labels[i]) {
			return false
		}
	}
	return true
}

// Parent returns the name with the leftmost label removed. Parent of the
// root is the root.
func (n Name) Parent() Name {
	if n.IsRoot() {
		return n
	}
	return Name{labels: n.labels[1:]}
}

// Child returns label + "." + n, validating limits.
func (n Name) Child(label string) (Name, error) {
	labels := append([]string{label}, n.labels...)
	return NewName(labels...)
}

// TLD returns the rightmost label, lower-cased, or "" for the root.
func (n Name) TLD() string {
	if n.IsRoot() {
		return ""
	}
	return strings.ToLower(n.labels[len(n.labels)-1])
}

// appendName encodes n at the end of buf. When cmp is non-nil it carries
// the RFC 1035 §4.1.4 compression state: suffixes already on the wire are
// replaced by pointers, and newly-written suffix offsets are registered as
// a side effect. The compressor matches against wire bytes directly, so
// this path performs no allocation.
func appendName(buf []byte, n Name, cmp *compressor) ([]byte, error) {
	if err := n.validate(); err != nil {
		return buf, err
	}
	for i := range n.labels {
		if cmp != nil {
			if off, ok := cmp.lookup(buf, n.labels[i:]); ok {
				return append(buf, 0xC0|byte(off>>8), byte(off)), nil
			}
			cmp.add(len(buf))
		}
		l := n.labels[i]
		buf = append(buf, byte(len(l)))
		buf = append(buf, l...)
	}
	return append(buf, 0), nil
}

// readName decodes a possibly-compressed name starting at off in msg.
// It returns the name and the offset just past the name's first encoding.
func readName(msg []byte, off int) (Name, int, error) {
	var labels []string
	ptrBudget := len(msg) // any chain longer than the message loops
	jumped := false
	end := off
	total := 1
	for {
		if off >= len(msg) {
			return Name{}, 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			return Name{labels: labels}, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return Name{}, 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if ptr >= len(msg) {
				return Name{}, 0, ErrBadPointer
			}
			if !jumped {
				end = off + 2
				jumped = true
			}
			if ptrBudget--; ptrBudget <= 0 {
				return Name{}, 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return Name{}, 0, fmt.Errorf("dnsmsg: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return Name{}, 0, ErrTruncatedMessage
			}
			if total += l + 1; total > MaxNameLen {
				return Name{}, 0, ErrNameTooLong
			}
			labels = append(labels, string(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}
