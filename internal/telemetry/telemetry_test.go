package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the workers resolve the counter by name each time,
			// exercising the registry's read path concurrently.
			for j := 0; j < perWorker; j++ {
				r.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("value = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Fatalf("max = %d, want 5", got)
	}
	g.Set(7)
	if g.Value() != 7 || g.Max() != 7 {
		t.Fatalf("after set: value=%d max=%d", g.Value(), g.Max())
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("value = %d, want 0", g.Value())
	}
	if max := g.Max(); max < 1 || max > 8 {
		t.Fatalf("max = %d, want within [1,8]", max)
	}
}

func TestHistogramBasics(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	samples := []time.Duration{
		500 * time.Nanosecond, // clamps into the first bucket
		time.Millisecond,
		2 * time.Millisecond,
		10 * time.Millisecond,
		time.Second,
	}
	for _, d := range samples {
		h.Record(d)
	}
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", s.Count, len(samples))
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	if got := s.SumSeconds; got != sum.Seconds() {
		t.Errorf("sum = %v, want %v", got, sum.Seconds())
	}
	if s.MinSeconds != samples[0].Seconds() {
		t.Errorf("min = %v, want %v", s.MinSeconds, samples[0].Seconds())
	}
	if s.MaxSeconds != time.Second.Seconds() {
		t.Errorf("max = %v, want 1s", s.MaxSeconds)
	}
	// Quantiles are bucket approximations: p50 must land near the median
	// sample (2ms falls in the (2ms,4ms] ... actually (1.024ms–2.048ms]
	// bucket), p99 near the max.
	if s.P50Seconds <= 0 || s.P50Seconds > 0.01 {
		t.Errorf("p50 = %v, want within (0, 10ms]", s.P50Seconds)
	}
	if s.P99Seconds < 0.5 || s.P99Seconds > 2.1 {
		t.Errorf("p99 = %v, want ~1s bucket", s.P99Seconds)
	}
	if s.P50Seconds > s.P95Seconds || s.P95Seconds > s.P99Seconds {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50Seconds, s.P95Seconds, s.P99Seconds)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := New().Histogram("h")
	h.Record(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.MinSeconds != 0 || s.MaxSeconds != 0 {
		t.Fatalf("snapshot = %+v, want one zero-valued sample", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := New().Histogram("h")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Record(time.Duration(i+1) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestBucketForMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		0, time.Microsecond, 3 * time.Microsecond, time.Millisecond,
		time.Second, time.Minute, time.Hour, 48 * time.Hour, 365 * 24 * time.Hour,
	} {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor(%v) = %d < previous %d", d, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketFor(%v) = %d out of range", d, b)
		}
		prev = b
	}
	// Bucket upper bounds must actually contain what bucketFor assigns.
	for i := 0; i < histBuckets-1; i++ {
		if got := bucketFor(bucketUpper(i)); got != i {
			t.Fatalf("bucketFor(upper(%d)) = %d", i, got)
		}
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(3)
	r.Gauge("g").Set(9)
	r.Histogram("h").Record(5 * time.Millisecond)

	s1, s2 := r.Snapshot(), r.Snapshot()
	var b1, b2 bytes.Buffer
	if err := s1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("snapshots differ:\n%s\n%s", b1.String(), b2.String())
	}
	// JSON must round-trip into the same structure.
	var back Snapshot
	if err := json.Unmarshal(b1.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.b"] != 3 || back.Gauges["g"].Value != 9 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := New()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter(n).Inc()
	}
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestEvents(t *testing.T) {
	r := New()
	var got []Event
	r.OnEvent(func(ev Event) { got = append(got, ev) })
	r.Emit("batch.done", map[string]any{"n": 5})
	if len(got) != 1 || got[0].Name != "batch.done" || got[0].Fields["n"] != 5 {
		t.Fatalf("events = %+v", got)
	}
}

// TestNilSafety: every operation must be a no-op on a nil registry and on
// the nil metrics it hands out — this is what lets the hot paths record
// unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h").Record(time.Second)
	r.Emit("e", nil)
	r.OnEvent(func(Event) {})
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Gauge("g").Max() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if r.Histogram("h").Count() != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if r.CounterNames() != nil {
		t.Fatal("nil CounterNames must be nil")
	}
}
