package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("dns.server.queries").Add(5)
	r.Counter("dns.server.qtype.TXT").Add(3)
	r.Gauge("campaign.inflight").Set(7)
	r.Gauge("campaign.inflight").Set(2)
	for i := 0; i < 100; i++ {
		r.Histogram("probe.latency").Record(time.Duration(i+1) * time.Millisecond)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE spfail_dns_server_queries counter\nspfail_dns_server_queries 5\n",
		"spfail_dns_server_qtype_TXT 3\n",
		"# TYPE spfail_campaign_inflight gauge\nspfail_campaign_inflight 2\n",
		"spfail_campaign_inflight_max 7\n",
		"# TYPE spfail_probe_latency summary\n",
		`spfail_probe_latency{quantile="0.5"} `,
		`spfail_probe_latency{quantile="0.95"} `,
		`spfail_probe_latency{quantile="0.99"} `,
		"spfail_probe_latency_count 100\n",
		"spfail_probe_latency_sum ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Rendering the same snapshot twice must be byte-identical (sorted).
	var again bytes.Buffer
	if err := WritePrometheus(&again, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same registry state differ")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New()
	r.Counter("probe.total").Add(9)
	h := HTTPHandler(r, func() Health {
		return Health{OK: true, Stage: "round 3/7", Round: 3, Rounds: 7, Probed: 120, Total: 400}
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "spfail_probe_total 9") {
		t.Errorf("/metrics body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var got Health
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.OK || got.Stage != "round 3/7" || got.Probed != 120 {
		t.Errorf("/healthz = %+v", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", rec.Code)
	}
}

// TestHTTPHandlerUnhealthy pins the 503 contract for failed processes.
func TestHTTPHandlerUnhealthy(t *testing.T) {
	h := HTTPHandler(New(), func() Health { return Health{OK: false, Stage: "failed"} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("/healthz status = %d, want 503", rec.Code)
	}
}
