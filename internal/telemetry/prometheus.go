package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName converts a dotted registry name to a Prometheus metric name:
// the "spfail_" namespace prefix, with every character outside
// [a-zA-Z0-9_:] mapped to '_' (dots, dashes, and the uppercase qtype
// segments such as "dns.server.qtype.TXT" all survive as underscores or
// verbatim letters).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("spfail_"))
	b.WriteString("spfail_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus text exposition expects.
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples (gauges
// additionally export a <name>_max companion carrying the high-water
// mark), histograms as summaries with p50/p95/p99 quantile samples plus
// _sum and _count. Output is sorted by metric name within each family
// kind, so two snapshots of the same registry state render byte-identically.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		g := s.Gauges[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n# TYPE %s_max gauge\n%s_max %d\n",
			pn, pn, g.Value, pn, pn, g.Max); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.95\"} %s\n%s{quantile=\"0.99\"} %s\n%s_sum %s\n%s_count %d\n",
			pn,
			pn, promFloat(h.P50Seconds),
			pn, promFloat(h.P95Seconds),
			pn, promFloat(h.P99Seconds),
			pn, promFloat(h.SumSeconds),
			pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
