package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Health is the point-in-time campaign state served by /healthz. Producers
// (the study driver, the scan loop) update a copy and install it via a
// HealthFunc; zero values render as absent-but-valid JSON, so a binary that
// has not started its campaign yet still answers.
type Health struct {
	// OK is false only when the process considers itself failed.
	OK bool `json:"ok"`
	// Stage names the current phase ("resolve", "round 3/7", "report").
	Stage string `json:"stage,omitempty"`
	// Round and Rounds report longitudinal progress (0/0 outside a study).
	Round  int `json:"round,omitempty"`
	Rounds int `json:"rounds,omitempty"`
	// Probed and Total count probe units completed vs planned in the
	// current stage, when known.
	Probed int `json:"probed,omitempty"`
	Total  int `json:"total,omitempty"`
	// CheckpointSegments and CheckpointRounds report the durable
	// checkpoint store position — committed segments and completed
	// measurement rounds — when the binary runs with a checkpoint
	// store configured. They count only what would survive a crash.
	CheckpointSegments int `json:"checkpoint_segments,omitempty"`
	CheckpointRounds   int `json:"checkpoint_rounds,omitempty"`
}

// HealthFunc supplies the current Health; it must be safe for concurrent
// use. A nil HealthFunc serves {"ok":true}.
type HealthFunc func() Health

// HTTPHandler serves the live observability surface for a running
// campaign binary:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       JSON Health from the installed HealthFunc
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Wire it to an http.Server on the -listen address; the registry may be
// shared with a concurrently running campaign (all metric reads are
// atomic snapshots).
func HTTPHandler(reg *Registry, health HealthFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{OK: true}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
