// Package telemetry is a dependency-free metrics layer for the probing
// stack: atomic counters, gauges with high-water marks, bounded latency
// histograms with quantile snapshots, and a structured event hook.
//
// Every serving layer (DNS server, DNS client, SMTP, the prober, the
// campaign scheduler) takes an optional *Registry and records into it on
// the hot path. All methods are safe on nil receivers, so an unwired
// component pays only a predictable-branch per call and no registry needs
// to be plumbed through tests that do not care.
//
// The package is deliberately clock-agnostic: histograms record
// time.Duration values measured by the caller (wall or simulated clock),
// and events carry no implicit timestamp, which keeps snapshots
// deterministic under the virtual clock.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that also tracks its high-water mark
// (e.g. "SMTP connections in flight, and the most we ever had").
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.raiseMax(n)
}

// Add shifts the value by delta (use negative delta to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raiseMax(g.v.Add(delta))
}

func (g *Gauge) raiseMax(n int64) {
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets bounds the histogram: bucket i covers durations up to
// histBase<<i, so the range spans 1µs .. ~1.6 days and memory per
// histogram is fixed regardless of sample count.
const (
	histBuckets = 48
	histBase    = time.Microsecond
)

// Histogram is a bounded exponential-bucket latency histogram. Recording
// is lock-free; quantiles are approximated by linear interpolation inside
// the matched bucket (exact min/max are tracked separately).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid when count > 0
	max     atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d < histBase {
		return 0
	}
	i := 0
	for b := histBase; d > b && i < histBuckets-1; b <<= 1 {
		i++
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration { return histBase << uint(i) }

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.buckets[bucketFor(d)].Add(1)
	h.sum.Add(ns)
	if h.count.Add(1) == 1 {
		h.min.Store(ns)
		h.max.Store(ns)
		return
	}
	for {
		m := h.min.Load()
		if ns >= m || h.min.CompareAndSwap(m, ns) {
			break
		}
	}
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// RecordN adds n identical observations in one shot. Bulk feeders (the
// runtime-metrics collector folds whole runtime histogram buckets in per
// poll) use it to avoid n CAS loops; the result is indistinguishable from
// calling Record(d) n times.
func (h *Histogram) RecordN(d time.Duration, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if n == 1 {
		h.Record(d)
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.buckets[bucketFor(d)].Add(n)
	h.sum.Add(ns * n)
	if h.count.Add(n) == n {
		h.min.Store(ns)
		h.max.Store(ns)
		return
	}
	for {
		m := h.min.Load()
		if ns >= m || h.min.CompareAndSwap(m, ns) {
			break
		}
	}
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is the exported view of a histogram. Durations are in
// seconds for readability in the JSON report.
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	MinSeconds float64 `json:"min_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// Snapshot computes the exported view. It is consistent enough for
// reporting: buckets are read once, in order.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count:      total,
		SumSeconds: time.Duration(h.sum.Load()).Seconds(),
	}
	if total == 0 {
		return s
	}
	s.MinSeconds = time.Duration(h.min.Load()).Seconds()
	s.MaxSeconds = time.Duration(h.max.Load()).Seconds()
	s.P50Seconds = quantile(counts[:], total, 0.50)
	s.P95Seconds = quantile(counts[:], total, 0.95)
	s.P99Seconds = quantile(counts[:], total, 0.99)
	return s
}

// quantile locates the bucket holding the q-th sample and interpolates
// linearly inside it.
func quantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = bucketUpper(i - 1).Seconds()
			}
			hi := bucketUpper(i).Seconds()
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	return bucketUpper(histBuckets - 1).Seconds()
}

// Event is one structured occurrence published to hooks (campaign batch
// finished, notification sent, ...). Fields are free-form; emitters keep
// them small and flat.
type Event struct {
	Name   string
	Fields map[string]any
}

// Registry holds named metrics. Names are dotted lowercase paths; dynamic
// dimensions (qtype, outcome status, SMTP verb) go in the final segment,
// e.g. "dns.server.qtype.TXT".
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu

	hookMu sync.RWMutex
	hooks  []func(Event) // guarded by hookMu
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns a
// no-op nil counter when the registry itself is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// OnEvent registers a hook invoked synchronously for every Emit. Hooks
// must be fast and must not call back into Emit.
func (r *Registry) OnEvent(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.hookMu.Lock()
	r.hooks = append(r.hooks, fn)
	r.hookMu.Unlock()
}

// Emit publishes a structured event to all hooks. It is a no-op (and does
// not build fields maps' consumers) when no hook is registered or the
// registry is nil.
func (r *Registry) Emit(name string, fields map[string]any) {
	if r == nil {
		return
	}
	r.hookMu.RLock()
	hooks := r.hooks
	r.hookMu.RUnlock()
	if len(hooks) == 0 {
		return
	}
	ev := Event{Name: name, Fields: fields}
	for _, fn := range hooks {
		fn(ev)
	}
}

// GaugeSnapshot is the exported view of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of every metric, ready for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Map iteration is unordered
// but the result is value-deterministic; use WriteJSON for stable output.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), suitable for the --metrics report.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
