package telemetry

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramRecordN(t *testing.T) {
	h := New().Histogram("runtime.gc.pause")
	h.RecordN(time.Millisecond, 5)
	h.RecordN(4*time.Millisecond, 0)  // no-op
	h.RecordN(4*time.Millisecond, -2) // no-op
	h.RecordN(2*time.Millisecond, 1)  // n==1 takes the Record path
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s := h.Snapshot()
	if want := 7 * time.Millisecond; time.Duration(s.SumSeconds*float64(time.Second)).Round(time.Microsecond) != want {
		t.Errorf("sum = %fs, want %v", s.SumSeconds, want)
	}

	// A batch into an empty histogram must establish min/max.
	h2 := New().Histogram("runtime.sched.latency")
	h2.RecordN(3*time.Millisecond, 4)
	s2 := h2.Snapshot()
	if s2.MinSeconds <= 0 || s2.MaxSeconds <= 0 {
		t.Errorf("batch first-record min/max = %f/%f, want > 0", s2.MinSeconds, s2.MaxSeconds)
	}
}

// TestHistogramRecordNEquivalence checks that one RecordN(d, n) lands in
// the same bucket with the same totals as n Record(d) calls.
func TestHistogramRecordNEquivalence(t *testing.T) {
	a := New().Histogram("runtime.gc.pause")
	b := New().Histogram("runtime.gc.pause")
	for _, d := range []time.Duration{time.Microsecond, 750 * time.Microsecond, 80 * time.Millisecond} {
		a.RecordN(d, 37)
		for i := 0; i < 37; i++ {
			b.Record(d)
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != sb.Count || sa.SumSeconds != sb.SumSeconds ||
		sa.P50Seconds != sb.P50Seconds || sa.P99Seconds != sb.P99Seconds {
		t.Errorf("RecordN snapshot %+v != repeated Record snapshot %+v", sa, sb)
	}
}

// TestHTTPHandlerConcurrentScrapes hammers /metrics from several
// scrapers while a writer goroutine mutates the registry the way a live
// campaign does — new counters, gauge swings, histogram batches. Run
// under -race this pins the lock discipline of the whole read path.
func TestHTTPHandlerConcurrentScrapes(t *testing.T) {
	r := New()
	h := HTTPHandler(r, func() Health { return Health{OK: true} })
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter(fmt.Sprintf("probe.batch_%d", i%17)).Inc()
			r.Gauge("runtime.mem.rss_bytes").Set(int64(i))
			r.Histogram("runtime.gc.pause").RecordN(time.Duration(i%1000)*time.Microsecond, int64(i%3+1))
		}
	}()

	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != 200 {
					t.Errorf("/metrics status = %d", rec.Code)
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

// TestPrometheusRuntimeFamiliesGolden pins the exact rendering of the
// collector's runtime.* families: sorted within each kind, byte-stable
// across renders, spfail_-prefixed, dots mapped to underscores.
func TestPrometheusRuntimeFamiliesGolden(t *testing.T) {
	r := New()
	r.Gauge("runtime.mem.rss_bytes").Set(1024)
	r.Gauge("runtime.heap.live_bytes").Set(512)
	r.Counter("runtime.obs.samples").Add(3)
	r.Counter("runtime.gc.cycles").Add(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := strings.Join([]string{
		"# TYPE spfail_runtime_gc_cycles counter",
		"spfail_runtime_gc_cycles 2",
		"# TYPE spfail_runtime_obs_samples counter",
		"spfail_runtime_obs_samples 3",
		"# TYPE spfail_runtime_heap_live_bytes gauge",
		"spfail_runtime_heap_live_bytes 512",
		"# TYPE spfail_runtime_heap_live_bytes_max gauge",
		"spfail_runtime_heap_live_bytes_max 512",
		"# TYPE spfail_runtime_mem_rss_bytes gauge",
		"spfail_runtime_mem_rss_bytes 1024",
		"# TYPE spfail_runtime_mem_rss_bytes_max gauge",
		"spfail_runtime_mem_rss_bytes_max 1024",
		"",
	}, "\n")
	if got := buf.String(); got != golden {
		t.Errorf("runtime.* exposition drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	var again bytes.Buffer
	if err := WritePrometheus(&again, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same runtime.* state differ")
	}
}
