package clock

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestPropertySimWakeOrder: under arbitrary sets of sleepers, every
// goroutine wakes exactly at its deadline and virtual time never runs
// backwards.
func TestPropertySimWakeOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSim(epoch)
		defer s.Close()
		n := 2 + r.Intn(6)
		durations := make([]time.Duration, n)
		for i := range durations {
			durations[i] = time.Duration(1+r.Intn(10_000)) * time.Millisecond
		}
		type wake struct {
			idx int
			at  time.Time
		}
		var mu sync.Mutex
		var wakes []wake
		var wg sync.WaitGroup
		s.Add(n)
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer s.Done()
				defer wg.Done()
				s.Sleep(context.Background(), durations[i])
				mu.Lock()
				wakes = append(wakes, wake{idx: i, at: s.Now()})
				mu.Unlock()
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return false
		}
		// Every sleeper woke at or after its deadline, and observed
		// times are consistent with deadline order.
		for _, w := range wakes {
			if s := epoch.Add(durations[w.idx]); w.at.Before(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAdvanceMonotonic: Advance never moves time backwards and
// fires every timer whose deadline is crossed.
func TestPropertyAdvanceMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSim(epoch)
		defer s.Close()
		type timer struct {
			ch <-chan time.Time
			at time.Time
		}
		var timers []timer
		now := epoch
		for step := 0; step < 20; step++ {
			switch r.Intn(2) {
			case 0:
				d := time.Duration(r.Intn(5000)) * time.Millisecond
				timers = append(timers, timer{ch: s.After(d), at: now.Add(d)})
			case 1:
				d := time.Duration(r.Intn(3000)) * time.Millisecond
				s.Advance(d)
				if s.Now().Before(now) {
					return false
				}
				now = s.Now()
			}
		}
		s.Advance(10 * time.Second)
		for _, tm := range timers {
			select {
			case at := <-tm.ch:
				if at.Before(tm.at) {
					return false // fired early
				}
			default:
				return false // due timer never fired
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
