// Package clock abstracts time so that the measurement pipeline can run
// either against the wall clock or against a simulated clock that advances
// virtual months in milliseconds.
//
// Every sleep, cadence, and timestamp in this repository flows through a
// Clock. The simulated implementation keeps a priority queue of waiters and
// advances time only when all runnable goroutines registered with it are
// blocked, which makes four-month longitudinal campaigns deterministic and
// instantaneous.
package clock

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks until d has elapsed or ctx is done. It returns ctx.Err()
	// when interrupted, nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that receives the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// waiter is a pending timer in the simulated clock. sleeper marks waiters
// created by Sleep, whose goroutine must be re-credited as runnable at fire
// time so the scheduler does not race ahead of it.
type waiter struct {
	at      time.Time
	ch      chan time.Time
	idx     int
	sleeper bool
}

type waiterQueue []*waiter

func (q waiterQueue) Len() int            { return len(q) }
func (q waiterQueue) Less(i, j int) bool  { return q[i].at.Before(q[j].at) }
func (q waiterQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *waiterQueue) Push(x interface{}) { w := x.(*waiter); w.idx = len(*q); *q = append(*q, w) }
func (q *waiterQueue) Pop() interface{} {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return w
}

// Sim is a deterministic virtual clock.
//
// Goroutines that intend to block on virtual time must be accounted for with
// Add/Done (or be created via Go). When every accounted goroutine is blocked
// in Sleep/After, the clock jumps to the earliest pending deadline. A Sim
// with no accounted goroutines only advances via explicit Advance calls.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterQueue
	// active counts accounted goroutines that are currently runnable
	// (i.e. not blocked in Sleep). When it reaches zero the clock advances.
	active int
	total  int
	cond   *sync.Cond
	closed bool
}

// NewSim returns a simulated clock starting at the given time.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves virtual time forward by d, firing any timers that come due.
// It is the explicit driver for code that does not use Go/Add accounting.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for len(s.waiters) > 0 && !s.waiters[0].at.After(target) {
		w := heap.Pop(&s.waiters).(*waiter)
		s.now = w.at
		s.fireLocked(w)
	}
	s.now = target
	s.mu.Unlock()
}

// Add registers n runnable goroutines with the auto-advance scheduler.
func (s *Sim) Add(n int) {
	s.mu.Lock()
	s.active += n
	s.total += n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Done unregisters a goroutine previously registered with Add.
func (s *Sim) Done() {
	s.mu.Lock()
	s.active--
	s.total--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Go runs fn on a new goroutine accounted for by the auto-advance scheduler.
func (s *Sim) Go(fn func()) {
	s.Add(1)
	go func() {
		defer s.Done()
		fn()
	}()
}

// Close stops the background scheduler.
func (s *Sim) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// run is the auto-advance loop: whenever all accounted goroutines are
// blocked on virtual timers, jump to the earliest deadline.
func (s *Sim) run() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if s.total > 0 && s.active == 0 && len(s.waiters) > 0 {
			w := heap.Pop(&s.waiters).(*waiter)
			if w.at.After(s.now) {
				s.now = w.at
			}
			s.fireLocked(w)
			continue
		}
		s.cond.Wait()
	}
}

// fireLocked delivers a due timer. Sleepers are credited as runnable before
// the send so the scheduler will not fire later timers until the woken
// goroutine blocks again. Caller must hold s.mu.
func (s *Sim) fireLocked(w *waiter) {
	if w.sleeper {
		s.active++
	}
	w.ch <- s.now // buffered; never blocks
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	w := &waiter{at: s.now.Add(d), ch: ch}
	heap.Push(&s.waiters, w)
	s.cond.Broadcast()
	return ch
}

// Sleep implements Clock. A goroutine accounted with Add/Go marks itself
// blocked for the duration so the scheduler can advance time past it.
func (s *Sim) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	s.mu.Lock()
	ch := make(chan time.Time, 1)
	w := &waiter{at: s.now.Add(d), ch: ch, sleeper: true}
	heap.Push(&s.waiters, w)
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()

	select {
	case <-ctx.Done():
		s.mu.Lock()
		if w.idx >= 0 && w.idx < len(s.waiters) && s.waiters[w.idx] == w {
			// Not fired yet: withdraw the timer and reclaim runnability.
			heap.Remove(&s.waiters, w.idx)
			s.active++
			s.cond.Broadcast()
		}
		// If already fired, fireLocked credited active for us.
		s.mu.Unlock()
		return ctx.Err()
	case <-ch:
		// fireLocked already credited active on our behalf.
		return nil
	}
}

// Go runs fn on a new goroutine, registering it with the auto-advance
// scheduler when c is a *Sim so that virtual time cannot run past it.
func Go(c Clock, fn func()) {
	if s, ok := c.(*Sim); ok {
		s.Go(fn)
		return
	}
	go fn()
}

// Yield runs fn, marking the calling goroutine as blocked for its duration
// when c is a *Sim. Accounted goroutines (started via Go/Add) must wrap any
// wait on non-clock primitives — channel sends, WaitGroup waits — whose
// completion depends on goroutines that sleep on the simulated clock;
// otherwise the scheduler would consider the caller runnable and never
// advance virtual time.
func Yield(c Clock, fn func()) {
	s, ok := c.(*Sim)
	if !ok {
		fn()
		return
	}
	s.mu.Lock()
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active++
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	fn()
}

var (
	_ Clock = Real{}
	_ Clock = (*Sim)(nil)
)
