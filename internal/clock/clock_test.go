package clock

import (
	"context"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2021, 10, 11, 0, 0, 0, 0, time.UTC)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealSleepZero(t *testing.T) {
	if err := (Real{}).Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v, want nil", err)
	}
}

func TestRealSleepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (Real{}).Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	if got := s.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	s.Advance(48 * time.Hour)
	if got, want := s.Now(), epoch.Add(48*time.Hour); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestSimAdvanceFiresTimers(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	ch := s.After(time.Minute)
	s.Advance(2 * time.Minute)
	select {
	case at := <-ch:
		if want := epoch.Add(time.Minute); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire after Advance past deadline")
	}
}

func TestSimAdvanceDoesNotFireEarly(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	ch := s.After(time.Hour)
	s.Advance(time.Minute)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
}

func TestSimAutoAdvanceSleep(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	done := make(chan time.Time, 1)
	s.Go(func() {
		if err := s.Sleep(context.Background(), 90*time.Second); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		done <- s.Now()
	})
	select {
	case at := <-done:
		if want := epoch.Add(90 * time.Second); !at.Equal(want) {
			t.Fatalf("woke at %v, want %v", at, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("auto-advance never woke the sleeper")
	}
}

func TestSimManySleepersOrdered(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	s.Add(5) // register all sleepers before any can block
	for i := 5; i >= 1; i-- {
		i := i
		wg.Add(1)
		go func() {
			defer s.Done()
			defer wg.Done()
			s.Sleep(context.Background(), time.Duration(i)*time.Hour)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("sleepers never completed")
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("wake order %v not sorted by deadline", order)
		}
	}
	if got, want := s.Now(), epoch.Add(5*time.Hour); got.Before(want) {
		t.Fatalf("clock at %v, want at least %v", got, want)
	}
}

func TestSimSleepCancelled(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	s.Add(1)
	go func() {
		defer s.Done()
		errCh <- s.Sleep(ctx, time.Hour)
	}()
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Sleep never returned")
	}
}

func TestSimAfterZeroFiresImmediately(t *testing.T) {
	s := NewSim(epoch)
	defer s.Close()
	select {
	case at := <-s.After(0):
		if !at.Equal(epoch) {
			t.Fatalf("After(0) fired at %v, want %v", at, epoch)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimSequentialCampaignCadence(t *testing.T) {
	// Emulates the longitudinal cadence: one goroutine sleeping 2 days, 10x.
	s := NewSim(epoch)
	defer s.Close()
	done := make(chan time.Time, 1)
	s.Go(func() {
		for i := 0; i < 10; i++ {
			s.Sleep(context.Background(), 48*time.Hour)
		}
		done <- s.Now()
	})
	select {
	case at := <-done:
		if want := epoch.Add(20 * 24 * time.Hour); !at.Equal(want) {
			t.Fatalf("campaign ended at %v, want %v", at, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("campaign never completed")
	}
}
