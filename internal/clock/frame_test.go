package clock

import (
	"context"
	"testing"
	"time"
)

func TestFrameAdvancesOnlyThroughItsOwnSleeps(t *testing.T) {
	base := time.Date(2021, 10, 11, 0, 0, 0, 0, time.UTC)
	sim := NewSim(base)
	defer sim.Close()

	clk := NewFrame(sim, base)
	f, ok := clk.(*Frame)
	if !ok {
		t.Fatalf("NewFrame over *Sim returned %T, want *Frame", clk)
	}
	if got := f.Now(); !got.Equal(base) {
		t.Fatalf("fresh frame Now() = %v, want %v", got, base)
	}
	if err := f.Sleep(context.Background(), 90*time.Second); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if got, want := f.Now(), base.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("after Sleep Now() = %v, want %v", got, want)
	}
	// The underlying sim must not have moved: frames are detached.
	if got := sim.Now(); !got.Equal(base) {
		t.Fatalf("sim advanced to %v, want untouched %v", got, base)
	}
	// Advancing the sim must not leak into the frame either.
	sim.Advance(time.Hour)
	if got, want := f.Now(), base.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("frame followed the sim to %v, want %v", got, want)
	}
}

func TestFrameSleepHonoursCancelledContext(t *testing.T) {
	base := time.Unix(0, 0)
	sim := NewSim(base)
	defer sim.Close()
	f := NewFrame(sim, base)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Sleep(ctx, time.Second); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if got := f.Now(); !got.Equal(base) {
		t.Fatalf("cancelled Sleep advanced the frame to %v", got)
	}
}

func TestFrameAfterDeliversImmediately(t *testing.T) {
	base := time.Unix(1000, 0)
	sim := NewSim(base)
	defer sim.Close()
	f := NewFrame(sim, base)

	select {
	case got := <-f.After(time.Minute):
		if want := base.Add(time.Minute); !got.Equal(want) {
			t.Fatalf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After channel was not immediately ready")
	}
	if got, want := f.Now(), base.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("After did not advance the frame: Now() = %v, want %v", got, want)
	}
}

func TestFrameOverRealClockIsIdentity(t *testing.T) {
	real := Real{}
	if got := NewFrame(real, time.Unix(0, 0)); got != Clock(real) {
		t.Fatalf("NewFrame over Real returned %T, want the real clock unchanged", got)
	}
}
