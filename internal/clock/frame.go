package clock

import (
	"context"
	"sync"
	"time"
)

// Frame is a probe-local virtual timeline layered over a simulated clock.
//
// A Frame starts at a fixed base instant and advances only through its own
// Sleep/After calls: sleeping d moves the frame forward by d and returns
// immediately, without touching the underlying scheduler. Handing each
// campaign probe its own Frame anchored at the measurement pass's shared
// asOf makes every probe's timeline a pure function of the probe itself —
// politeness gaps, greylist backoffs, and retry waits land at the same
// virtual offsets no matter how the batch is partitioned or how many
// shards execute it. That is what keeps traced span timestamps (and
// therefore trace bytes) independent of execution geometry: BatchSize and
// Concurrency become wall-time knobs that a memory-budget watchdog can
// turn mid-run without perturbing deterministic output.
//
// Frames are only meaningful on a simulated clock; NewFrame returns the
// underlying clock unchanged when it is not a *Sim, so real-socket runs
// keep genuine politeness pacing and wall-time deadlines.
type Frame struct {
	base time.Time

	mu     sync.Mutex
	offset time.Duration // guarded by mu
}

// NewFrame returns a detached virtual timeline starting at base when under
// is a simulated clock, or under itself otherwise.
func NewFrame(under Clock, base time.Time) Clock {
	if _, ok := under.(*Sim); !ok {
		return under
	}
	return &Frame{base: base}
}

// Now implements Clock.
func (f *Frame) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.base.Add(f.offset)
}

// Sleep implements Clock: the frame jumps forward by d and returns
// immediately. A cancelled context is still honoured so callers observe
// the same contract as a scheduled sleep.
func (f *Frame) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	f.mu.Lock()
	f.offset += d
	f.mu.Unlock()
	return nil
}

// After implements Clock: the returned channel already holds the frame
// time d past now, and the frame advances by d exactly as Sleep does.
func (f *Frame) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	if d > 0 {
		f.offset += d
	}
	ch <- f.base.Add(f.offset)
	f.mu.Unlock()
	return ch
}

var _ Clock = (*Frame)(nil)
