package core

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/spfimpl"
)

const (
	dnsIP   = "192.0.2.53"
	probeIP = "198.51.100.9"
)

// rig is a complete measurement rig: fabric, logging DNS server with the
// test zone, collector, classifier, and a prober.
type rig struct {
	fabric     *netsim.Fabric
	zone       *dnsserver.SPFTestZone
	collector  *Collector
	classifier *Classifier
	prober     *Prober
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		fabric: netsim.NewFabric(),
		zone: &dnsserver.SPFTestZone{
			Base:  dnsmsg.MustParseName("spf-test.dns-lab.org"),
			Addr4: netip.MustParseAddr("192.0.2.80"),
		},
	}
	r.collector = NewCollector(r.zone)
	r.classifier = NewClassifier(r.zone)
	handler := &dnsserver.LoggingHandler{Inner: r.zone, Sink: r.collector, Now: time.Now}
	srv := &dnsserver.Server{Net: r.fabric.Host(dnsIP), Addr: ":53", Handler: handler}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	r.prober = &Prober{
		Net:           r.fabric.Host(probeIP),
		HELO:          "probe.dns-lab.org",
		Clock:         clock.Real{},
		Zone:          r.zone,
		Labels:        NewLabelAllocator(1),
		Collector:     r.collector,
		Classifier:    r.classifier,
		Suite:         "s01",
		GreylistWait:  10 * time.Millisecond,
		ReconnectWait: time.Millisecond,
		IOTimeout:     2 * time.Second,
	}
	return r
}

func (r *rig) addHost(t *testing.T, ip string, cfg mta.Config) *mta.Host {
	t.Helper()
	cfg.Hostname = "mx." + ip
	cfg.IP = netip.MustParseAddr(ip)
	cfg.Net = r.fabric.Host(ip)
	cfg.DNSServer = dnsIP + ":53"
	cfg.DNSTimeout = time.Second
	h := mta.New(cfg)
	if err := h.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	return h
}

func TestDetectVulnerableViaNoMsg(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.30", mta.Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: mta.ValidateAtMailFrom,
	})
	out := r.prober.TestIP(context.Background(), "203.0.113.30:25", "example.com")
	if out.Status != StatusSPFMeasured {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if out.Method != MethodNoMsg {
		t.Errorf("method = %s, want NoMsg", out.Method)
	}
	if !out.Vulnerable() {
		t.Errorf("vulnerable = false; observation %+v", out.Observation)
	}
	if out.Observation.DominantClass() != ClassVulnerable {
		t.Errorf("class = %s", out.Observation.DominantClass())
	}
	if out.BlankMsgRan {
		t.Error("BlankMsg should not run after conclusive NoMsg")
	}
}

func TestDetectCompliantHost(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.31", mta.Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorCompliant},
		ValidateAt: mta.ValidateAtMailFrom,
	})
	out := r.prober.TestIP(context.Background(), "203.0.113.31:25", "example.com")
	if out.Status != StatusSPFMeasured || out.Vulnerable() {
		t.Fatalf("out = %+v", out)
	}
	if !out.Observation.Compliant() {
		t.Errorf("observation = %+v", out.Observation)
	}
}

func TestDetectViaBlankMsgEscalation(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.32", mta.Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: mta.ValidateAtData,
	})
	out := r.prober.TestIP(context.Background(), "203.0.113.32:25", "example.com")
	if out.Status != StatusSPFMeasured {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if out.Method != MethodBlankMsg || !out.NoMsgRan || !out.BlankMsgRan {
		t.Errorf("ladder = %+v", out)
	}
	if !out.Vulnerable() {
		t.Error("vulnerable not detected via BlankMsg")
	}
}

func TestConnectionRefusedOutcome(t *testing.T) {
	r := newRig(t)
	out := r.prober.TestIP(context.Background(), "203.0.113.99:25", "example.com")
	if out.Status != StatusConnectionRefused {
		t.Fatalf("status = %s", out.Status)
	}
	if out.BlankMsgRan {
		t.Error("refused connections must not be retried with BlankMsg")
	}
}

func TestSMTPFailureOutcome(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.33", mta.Config{RefuseSMTP: true})
	out := r.prober.TestIP(context.Background(), "203.0.113.33:25", "example.com")
	if out.Status != StatusSMTPFailure {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if out.FailStage != StageBanner {
		t.Errorf("fail stage = %s", out.FailStage)
	}
}

func TestSPFNotMeasuredOutcome(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.34", mta.Config{ValidateAt: mta.ValidateNever})
	out := r.prober.TestIP(context.Background(), "203.0.113.34:25", "example.com")
	if out.Status != StatusSPFNotMeasured {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if !out.NoMsgRan || !out.BlankMsgRan {
		t.Error("both rungs should have run")
	}
}

func TestGreylistedHostEventuallyMeasured(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.35", mta.Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: mta.ValidateAtData,
		Greylist:   true,
	})
	out := r.prober.TestIP(context.Background(), "203.0.113.35:25", "example.com")
	if out.Status != StatusSPFMeasured {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if !out.Vulnerable() {
		t.Error("greylisted vulnerable host not detected")
	}
	if len(out.IDs) < 3 {
		t.Errorf("expected multiple probe ids across greylist retry, got %v", out.IDs)
	}
}

func TestUsernameIterationOnRejectingHost(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.36", mta.Config{
		Behaviors:      []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt:     mta.ValidateAtMailFrom,
		AcceptedLocals: map[string]bool{"postmaster": true},
	})
	out := r.prober.TestIP(context.Background(), "203.0.113.36:25", "example.com")
	if out.Status != StatusSPFMeasured {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if out.Username != "postmaster" {
		t.Errorf("accepted username = %q", out.Username)
	}
}

func TestMultiImplementationHostObservation(t *testing.T) {
	r := newRig(t)
	r.addHost(t, "203.0.113.37", mta.Config{
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2, spfimpl.BehaviorNoTruncate},
		ValidateAt: mta.ValidateAtMailFrom,
	})
	out := r.prober.TestIP(context.Background(), "203.0.113.37:25", "example.com")
	if out.Status != StatusSPFMeasured {
		t.Fatalf("status = %s", out.Status)
	}
	if !out.Observation.MultiplePatterns() {
		t.Errorf("multiple patterns not observed: %+v", out.Observation)
	}
	if !out.Vulnerable() {
		t.Error("vulnerable pattern should dominate")
	}
}

func TestClassifierTaxonomy(t *testing.T) {
	r := newRig(t)
	behaviors := map[string]struct {
		b    spfimpl.Behavior
		want BehaviorClass
	}{
		"203.0.113.40": {spfimpl.BehaviorCompliant, ClassCompliant},
		"203.0.113.41": {spfimpl.BehaviorVulnLibSPF2, ClassVulnerable},
		"203.0.113.42": {spfimpl.BehaviorNoReverse, ClassNoReverse},
		"203.0.113.43": {spfimpl.BehaviorNoTruncate, ClassNoTruncate},
		"203.0.113.44": {spfimpl.BehaviorRawValue, ClassRawValue},
		"203.0.113.45": {spfimpl.BehaviorNoExpansion, ClassNoExpansion},
		"203.0.113.46": {spfimpl.BehaviorPatchedLibSPF2, ClassCompliant},
	}
	for ip, tc := range behaviors {
		r.addHost(t, ip, mta.Config{
			Behaviors:  []spfimpl.Behavior{tc.b},
			ValidateAt: mta.ValidateAtMailFrom,
		})
	}
	for ip, tc := range behaviors {
		out := r.prober.TestIP(context.Background(), ip+":25", "example.com")
		if out.Status != StatusSPFMeasured {
			t.Errorf("%s (%s): status %s (err %v)", ip, tc.b, out.Status, out.Err)
			continue
		}
		if got := out.Observation.DominantClass(); got != tc.want {
			t.Errorf("%s (%s): class %s, want %s; patterns %v",
				ip, tc.b, got, tc.want, out.Observation.Patterns)
		}
	}
}

// TestDeterministicLabelsUniqueAndStable checks the campaign label stream:
// labels must be unique across (index, ordinal) pairs by construction,
// identical across two streams with the same inputs, and different under a
// different seed.
func TestDeterministicLabelsUniqueAndStable(t *testing.T) {
	seen := make(map[string]bool)
	for index := uint64(0); index < 500; index++ {
		next := DeterministicLabels(7, index, nil)
		again := DeterministicLabels(7, index, nil)
		for ord := 0; ord < 8; ord++ {
			l := next()
			if l != again() {
				t.Fatalf("stream for index %d diverged at ordinal %d", index, ord)
			}
			if seen[l] {
				t.Fatalf("duplicate label %q at index %d ordinal %d", l, index, ord)
			}
			seen[l] = true
			if len(l) != 8 || l[0] < 'a' || l[0] > 'z' {
				t.Fatalf("label %q is not 8 chars with an alphabetic lead", l)
			}
		}
	}
	if a, b := DeterministicLabels(1, 42, nil)(), DeterministicLabels(2, 42, nil)(); a == b {
		t.Fatalf("seeds 1 and 2 produced the same label %q", a)
	}
}

func TestLabelAllocatorUnique(t *testing.T) {
	a := NewLabelAllocator(7)
	seen := make(map[string]bool)
	for i := 0; i < 20000; i++ {
		l := a.Next()
		if seen[l] {
			t.Fatalf("duplicate label %q at %d", l, i)
		}
		if len(l) < 4 || len(l) > 5 {
			t.Fatalf("label %q has bad length", l)
		}
		seen[l] = true
	}
}

func TestLabelAllocatorDeterministic(t *testing.T) {
	a, b := NewLabelAllocator(42), NewLabelAllocator(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed should produce same labels")
		}
	}
}

func TestCollectorIndexesAndForgets(t *testing.T) {
	zone := &dnsserver.SPFTestZone{Base: dnsmsg.MustParseName("spf-test.dns-lab.org")}
	c := NewCollector(zone)
	ev := dnsserver.QueryEvent{
		Name: dnsmsg.MustParseName("xk.s01.spf-test.dns-lab.org"),
		Type: dnsmsg.TypeTXT,
	}
	c.Observe(ev)
	c.Observe(dnsserver.QueryEvent{ // out of zone: ignored
		Name: dnsmsg.MustParseName("example.com"),
		Type: dnsmsg.TypeTXT,
	})
	if got := len(c.QueriesFor("xk")); got != 1 {
		t.Fatalf("QueriesFor = %d", got)
	}
	if c.Total() != 1 {
		t.Fatalf("Total = %d", c.Total())
	}
	c.Forget("xk")
	if got := len(c.QueriesFor("xk")); got != 0 {
		t.Fatal("Forget did not clear")
	}
}

func TestBehaviorClassErroneous(t *testing.T) {
	if ClassCompliant.Erroneous() || ClassMacroSkipped.Erroneous() {
		t.Error("compliant/skipped should not be erroneous")
	}
	for _, c := range []BehaviorClass{ClassVulnerable, ClassNoReverse, ClassNoTruncate, ClassRawValue, ClassNoExpansion, ClassOther} {
		if !c.Erroneous() {
			t.Errorf("%s should be erroneous", c)
		}
	}
}
