// Package core implements SPFail's primary contribution: benign remote
// detection of the libSPF2 vulnerabilities. A Prober drives the NoMsg →
// BlankMsg SMTP probe ladder against a target mail server; a Collector
// gathers the DNS queries the target makes against the measurement zone;
// and the classifier maps each observed macro expansion onto the behaviour
// taxonomy of paper §4.2 / §7.9 — compliant, the unique vulnerable-libSPF2
// fingerprint, or one of the non-compliant variants.
package core

import (
	"context"
	"sort"
	"strings"

	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/spf"
	"spfail/internal/spfimpl"
)

// BehaviorClass is the detector's verdict about one observed expansion
// pattern.
type BehaviorClass string

// The fingerprint taxonomy (Table 7).
const (
	// ClassCompliant is the RFC 7208 expansion.
	ClassCompliant BehaviorClass = "compliant"
	// ClassVulnerable is the unique expansion of unpatched libSPF2.
	ClassVulnerable BehaviorClass = "vulnerable-libspf2"
	// ClassNoReverse truncated but did not reverse.
	ClassNoReverse BehaviorClass = "no-reverse"
	// ClassNoTruncate reversed but did not truncate.
	ClassNoTruncate BehaviorClass = "no-truncate"
	// ClassRawValue substituted the raw domain, no transformers.
	ClassRawValue BehaviorClass = "raw-value"
	// ClassNoExpansion sent the macro text literally.
	ClassNoExpansion BehaviorClass = "no-expansion"
	// ClassMacroSkipped only resolved the macro-free liveness term.
	ClassMacroSkipped BehaviorClass = "macro-skipped"
	// ClassOther is an expansion matching no modeled behavior.
	ClassOther BehaviorClass = "other-erroneous"
)

// Erroneous reports whether the class deviates from RFC 7208 (the paper's
// "incorrect macro expansion" population, which includes the vulnerable
// pattern).
func (c BehaviorClass) Erroneous() bool {
	switch c {
	case ClassCompliant, ClassMacroSkipped:
		return false
	}
	return true
}

// probeMacroSpec is the macro portion of the policy the test zone serves.
const probeMacroSpec = "%{d1r}"

// Classifier maps observed expansion prefixes onto behaviour classes by
// running each modeled behaviour's expander over the probe macro — the
// same code the simulated hosts run, so predictions and observations can
// never drift apart.
type Classifier struct {
	zone *dnsserver.SPFTestZone
}

// NewClassifier builds a classifier for the given test zone.
func NewClassifier(zone *dnsserver.SPFTestZone) *Classifier {
	return &Classifier{zone: zone}
}

// expectations returns the map from expected expansion prefix to class for
// a probe with the given id and suite.
func (c *Classifier) expectations(id, suite string) map[string]BehaviorClass {
	md, err := c.zone.MailDomain(id, suite)
	if err != nil {
		return nil
	}
	domain := strings.TrimSuffix(md.String(), ".")
	env := &spf.MacroEnv{Sender: "probe@" + domain, Domain: domain}
	out := make(map[string]BehaviorClass)
	add := func(b spfimpl.Behavior, cls BehaviorClass) {
		exp, err := spfimpl.ExpanderFor(b).Expand(context.Background(), probeMacroSpec, env, false)
		if err == nil && exp != "" {
			if _, taken := out[exp]; !taken {
				out[exp] = cls
			}
		}
	}
	// Order matters only for identical expansions; vulnerable first so it
	// is never shadowed.
	add(spfimpl.BehaviorVulnLibSPF2, ClassVulnerable)
	add(spfimpl.BehaviorCompliant, ClassCompliant)
	add(spfimpl.BehaviorNoReverse, ClassNoReverse)
	add(spfimpl.BehaviorNoTruncate, ClassNoTruncate)
	add(spfimpl.BehaviorRawValue, ClassRawValue)
	add(spfimpl.BehaviorNoExpansion, ClassNoExpansion)
	return out
}

// Observation is the classified evidence from one probe's DNS queries.
type Observation struct {
	// PolicyFetched reports whether the TXT policy was retrieved at all.
	PolicyFetched bool
	// LivenessSeen reports whether the macro-free a:b.<id> term was
	// resolved, proving the policy was parsed past the macro term.
	LivenessSeen bool
	// Patterns are the distinct non-liveness expansion prefixes observed,
	// sorted.
	Patterns []string
	// Classes are the classified verdicts for Patterns (same order).
	Classes []BehaviorClass
}

// Vulnerable reports whether any observed pattern is the libSPF2
// fingerprint.
func (o *Observation) Vulnerable() bool {
	for _, c := range o.Classes {
		if c == ClassVulnerable {
			return true
		}
	}
	return false
}

// Compliant reports whether the host expanded compliantly and nothing else.
func (o *Observation) Compliant() bool {
	return len(o.Classes) == 1 && o.Classes[0] == ClassCompliant
}

// MultiplePatterns reports hosts running more than one SPF implementation
// (paper §7.9: 6% of measurable IPs).
func (o *Observation) MultiplePatterns() bool { return len(o.Patterns) > 1 }

// Conclusive reports whether macro behaviour was determined.
func (o *Observation) Conclusive() bool {
	return len(o.Patterns) > 0 || o.LivenessSeen
}

// DominantClass summarizes the observation for taxonomy tables: the most
// severe class observed (vulnerable > erroneous > compliant), or
// macro-skipped when only the liveness term resolved.
func (o *Observation) DominantClass() BehaviorClass {
	if len(o.Classes) == 0 {
		if o.LivenessSeen {
			return ClassMacroSkipped
		}
		return ""
	}
	best := o.Classes[0]
	rank := func(c BehaviorClass) int {
		switch c {
		case ClassVulnerable:
			return 3
		case ClassCompliant:
			return 0
		default:
			return 2
		}
	}
	for _, c := range o.Classes[1:] {
		if rank(c) > rank(best) {
			best = c
		}
	}
	return best
}

// Classify analyses the queries recorded for a probe id.
func (c *Classifier) Classify(id, suite string, events []dnsserver.QueryEvent) Observation {
	md, err := c.zone.MailDomain(id, suite)
	if err != nil {
		return Observation{}
	}
	var obs Observation
	var seen map[string]bool
	for _, ev := range events {
		prefix, ok := expansionPrefix(ev.Name, md)
		if !ok {
			continue
		}
		switch {
		case prefix == "":
			if ev.Type == dnsmsg.TypeTXT || ev.Type == dnsmsg.TypeSPF {
				obs.PolicyFetched = true
			}
		case prefix == "b":
			if ev.Type == dnsmsg.TypeA || ev.Type == dnsmsg.TypeAAAA {
				obs.LivenessSeen = true
			}
		default:
			if ev.Type != dnsmsg.TypeA && ev.Type != dnsmsg.TypeAAAA {
				continue
			}
			if seen == nil {
				seen = make(map[string]bool, 4)
			}
			if !seen[prefix] {
				seen[prefix] = true
				obs.Patterns = append(obs.Patterns, prefix)
			}
		}
	}
	if len(obs.Patterns) == 0 {
		return obs
	}
	sort.Strings(obs.Patterns)
	// The expectation table (six modeled expansions) is only needed once a
	// pattern was actually observed; most transactions observe none.
	expect := c.expectations(id, suite)
	for _, p := range obs.Patterns {
		cls, ok := expect[p]
		if !ok {
			cls = ClassOther
		}
		obs.Classes = append(obs.Classes, cls)
	}
	return obs
}

// expansionPrefix strips the mail-domain suffix from a query name and
// returns the leading expansion labels joined with dots. ok is false when
// the name is not under the probe's mail domain.
func expansionPrefix(qname, mailDomain dnsmsg.Name) (string, bool) {
	if !qname.HasSuffix(mailDomain) {
		return "", false
	}
	extra := qname.NumLabels() - mailDomain.NumLabels()
	if extra == 0 {
		return "", true
	}
	return strings.Join(qname.Labels()[:extra], "."), true
}
