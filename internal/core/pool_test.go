package core

import (
	"errors"
	"testing"

	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
)

// Poison-then-reuse hygiene for the collector's recycled event slices: a
// probe's evidence, once forgotten, must never resurface under another
// probe's id even though the backing array is reused.
func TestCollectorRecycledSlicesDoNotLeakAcrossProbes(t *testing.T) {
	zone := &dnsserver.SPFTestZone{Base: dnsmsg.MustParseName("spf-test.dns-lab.org")}
	c := NewCollector(zone)

	for i := 0; i < 3; i++ {
		c.Observe(dnsserver.QueryEvent{
			Name: dnsmsg.MustParseName("poison.aaaa.s01.spf-test.dns-lab.org"),
			Type: dnsmsg.TypeA,
		})
	}
	if got := len(c.QueriesFor("aaaa")); got != 3 {
		t.Fatalf("QueriesFor(aaaa) = %d, want 3", got)
	}
	c.Forget("aaaa")

	// The next probe id gets the recycled backing array; it must see only
	// its own single event, and the forgotten id must stay empty.
	c.Observe(dnsserver.QueryEvent{
		Name: dnsmsg.MustParseName("fresh.bbbb.s01.spf-test.dns-lab.org"),
		Type: dnsmsg.TypeA,
	})
	got := c.QueriesFor("bbbb")
	if len(got) != 1 {
		t.Fatalf("QueriesFor(bbbb) = %d events, want 1", len(got))
	}
	if got[0].Name.String() != "fresh.bbbb.s01.spf-test.dns-lab.org." {
		t.Fatalf("recycled slice leaked a poisoned event: %s", got[0].Name)
	}
	if leak := c.QueriesFor("aaaa"); len(leak) != 0 {
		t.Fatalf("forgotten id still has %d events", len(leak))
	}
}

// AppendQueriesFor must append into the caller's scratch without retaining
// it: mutating the returned slice cannot corrupt the collector's records.
func TestCollectorAppendQueriesForUsesCallerScratch(t *testing.T) {
	zone := &dnsserver.SPFTestZone{Base: dnsmsg.MustParseName("spf-test.dns-lab.org")}
	c := NewCollector(zone)
	c.Observe(dnsserver.QueryEvent{
		Name: dnsmsg.MustParseName("x.cccc.s01.spf-test.dns-lab.org"),
		Type: dnsmsg.TypeA,
	})

	scratch := make([]dnsserver.QueryEvent, 0, 8)
	out := c.AppendQueriesFor(scratch[:0], "cccc")
	if len(out) != 1 {
		t.Fatalf("AppendQueriesFor = %d events, want 1", len(out))
	}
	out[0].Name = dnsmsg.MustParseName("scribbled.example.com")
	if got := c.QueriesFor("cccc"); got[0].Name.String() != "x.cccc.s01.spf-test.dns-lab.org." {
		t.Fatal("mutating the returned scratch corrupted the collector's record")
	}
}

// The prober's transactionResult scratch must scrub every field on reset so
// one probe's SMTP evidence (ids, observation, errors) can never bleed into
// the next probe served by the same shard prober.
func TestTransactionResultResetScrubsAllState(t *testing.T) {
	res := &transactionResult{
		ids: []string{"poison1", "poison2"},
		obs: Observation{
			PolicyFetched: true,
			LivenessSeen:  true,
			Patterns:      []string{"poison.pattern"},
			Classes:       []BehaviorClass{ClassVulnerable},
		},
		err:      errors.New("poison error"),
		stage:    StageData,
		refused:  true,
		username: "poisonuser",
	}
	res.reset()

	if len(res.ids) != 0 || len(res.obs.Patterns) != 0 || len(res.obs.Classes) != 0 {
		t.Fatalf("reset kept slice contents: %+v", res)
	}
	if res.obs.PolicyFetched || res.obs.LivenessSeen {
		t.Fatalf("reset kept observation flags: %+v", res.obs)
	}
	if res.err != nil || res.stage != "" || res.refused || res.username != "" {
		t.Fatalf("reset kept scalar state: %+v", res)
	}
	// Capacity is retained — that is the point of the scratch.
	if cap(res.ids) < 2 || cap(res.obs.Patterns) < 1 {
		t.Fatal("reset dropped slice capacity")
	}
}

// LabelStream.Reset must reproduce exactly the stream DeterministicLabels
// hands out for the same (seed, index), regardless of what the stream
// emitted before the reset.
func TestLabelStreamResetMatchesDeterministicLabels(t *testing.T) {
	fallback := NewLabelAllocator(1)
	stream := NewLabelStream(99, fallback)

	// Burn some draws on another index to poison the cursor.
	stream.Reset(7)
	for i := 0; i < 5; i++ {
		stream.Next()
	}

	stream.Reset(3)
	fresh := DeterministicLabels(99, 3, NewLabelAllocator(1))
	for i := 0; i < 10; i++ {
		if got, want := stream.Next(), fresh(); got != want {
			t.Fatalf("draw %d: reused stream = %q, fresh stream = %q", i, got, want)
		}
	}
}
