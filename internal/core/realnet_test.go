package core

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/spfimpl"
)

// TestDetectionOverRealLoopback runs the complete detection — measurement
// DNS zone, vulnerable mail server, NoMsg probe — over genuine OS sockets
// on 127.0.0.1, proving the pipeline is not tied to the in-memory fabric.
func TestDetectionOverRealLoopback(t *testing.T) {
	const (
		dnsAddr  = "127.0.0.1:15391"
		smtpAddr = "127.0.0.1:12591"
	)
	real := netsim.Real{}

	zone := &dnsserver.SPFTestZone{
		Base:  dnsmsg.MustParseName("spf-test.dns-lab.org"),
		Addr4: netip.MustParseAddr("192.0.2.80"),
	}
	collector := NewCollector(zone)
	dns := &dnsserver.Server{
		Net:  real,
		Addr: dnsAddr,
		Handler: &dnsserver.LoggingHandler{
			Inner: zone, Sink: collector, Now: time.Now,
		},
	}
	if err := dns.Start(context.Background()); err != nil {
		t.Skipf("cannot bind loopback DNS (%v)", err)
	}
	defer dns.Stop()

	host := mta.New(mta.Config{
		Hostname:   "victim.loopback",
		IP:         netip.MustParseAddr("127.0.0.1"),
		Net:        real,
		ListenAddr: smtpAddr,
		DNSServer:  dnsAddr,
		DNSTimeout: 2 * time.Second,
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: mta.ValidateAtMailFrom,
	})
	if err := host.Start(context.Background()); err != nil {
		t.Skipf("cannot bind loopback SMTP (%v)", err)
	}
	defer host.Stop()

	prober := &Prober{
		Net:        real,
		HELO:       "probe.dns-lab.org",
		Clock:      clock.Real{},
		Zone:       zone,
		Labels:     NewLabelAllocator(99),
		Collector:  collector,
		Classifier: NewClassifier(zone),
		Suite:      "lo",
		IOTimeout:  5 * time.Second,
	}
	out := prober.TestIP(context.Background(), smtpAddr, "victim.loopback")
	if out.Status != StatusSPFMeasured {
		t.Fatalf("status = %s (err %v)", out.Status, out.Err)
	}
	if !out.Vulnerable() {
		t.Fatalf("loopback detection missed the fingerprint: %+v", out.Observation)
	}
	if out.Method != MethodNoMsg {
		t.Errorf("method = %s, want NoMsg", out.Method)
	}
}
