package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"spfail/internal/dnsserver"
)

// Collector is a dnsserver.Sink that indexes inbound queries by the probe
// id embedded in their names, so each probe's evidence can be retrieved in
// O(1) regardless of campaign size.
type Collector struct {
	zone *dnsserver.SPFTestZone

	mu    sync.Mutex
	byID  map[string][]dnsserver.QueryEvent
	total int
	// free recycles the per-id event slices released by Forget, bounding
	// steady-state allocation to the campaign's peak in-flight probe count.
	free [][]dnsserver.QueryEvent
}

// maxFreeEventSlices bounds the Forget freelist; beyond it, slices are left
// to the garbage collector.
const maxFreeEventSlices = 512

// NewCollector builds a collector for the given zone.
func NewCollector(zone *dnsserver.SPFTestZone) *Collector {
	return &Collector{zone: zone, byID: make(map[string][]dnsserver.QueryEvent)}
}

// Observe implements dnsserver.Sink.
func (c *Collector) Observe(ev dnsserver.QueryEvent) {
	id, _, ok := c.zone.ExtractIDSuite(ev.Name)
	if !ok {
		return
	}
	c.mu.Lock()
	evs, ok := c.byID[id]
	if !ok && len(c.free) > 0 {
		evs = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	}
	c.byID[id] = append(evs, ev)
	c.total++
	c.mu.Unlock()
}

// QueriesFor returns a copy of the events recorded for a probe id.
func (c *Collector) QueriesFor(id string) []dnsserver.QueryEvent {
	return c.AppendQueriesFor(nil, id)
}

// AppendQueriesFor appends the events recorded for a probe id to dst and
// returns the extended slice, letting hot callers reuse one scratch buffer
// across probes instead of allocating a copy per transaction.
func (c *Collector) AppendQueriesFor(dst []dnsserver.QueryEvent, id string) []dnsserver.QueryEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append(dst, c.byID[id]...)
}

// Total returns the number of in-zone queries observed.
func (c *Collector) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Forget releases the evidence for a probe id (campaigns drop evidence
// once an outcome is recorded, bounding memory across hundreds of
// thousands of probes).
func (c *Collector) Forget(id string) {
	c.mu.Lock()
	if evs, ok := c.byID[id]; ok {
		delete(c.byID, id)
		// Recycle the backing array. Safe because QueriesFor and
		// AppendQueriesFor hand out copies, never the stored slice.
		if cap(evs) > 0 && len(c.free) < maxFreeEventSlices {
			c.free = append(c.free, evs[:0])
		}
	}
	c.mu.Unlock()
}

// LabelAllocator hands out the unique 4–5 character alphanumeric labels
// that tie each probed server to the DNS queries it performs (paper §5.1).
// Labels also defeat resolver caching: every probe's names are globally
// fresh.
type LabelAllocator struct {
	mu   sync.Mutex
	rng  *rand.Rand
	used map[string]bool
}

// NewLabelAllocator builds an allocator seeded deterministically.
func NewLabelAllocator(seed int64) *LabelAllocator {
	return &LabelAllocator{
		rng:  rand.New(rand.NewSource(seed)),
		used: make(map[string]bool),
	}
}

const labelAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// Next returns a fresh label: 4 characters until the space gets crowded,
// then 5.
func (a *LabelAllocator) Next() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	length := 4
	if len(a.used) > 800_000 { // 36^4 ≈ 1.68M; switch early to avoid loops
		length = 5
	}
	for {
		b := make([]byte, length)
		// First character alphabetic so labels never look numeric-only.
		b[0] = labelAlphabet[a.rng.Intn(26)]
		for i := 1; i < length; i++ {
			b[i] = labelAlphabet[a.rng.Intn(len(labelAlphabet))]
		}
		s := string(b)
		if !a.used[s] {
			a.used[s] = true
			return s
		}
	}
}

// NewSuiteLabel derives a short suite label from a test-suite counter.
func NewSuiteLabel(n int) string { return fmt.Sprintf("s%02d", n) }

// DeterministicLabels returns a per-probe label stream: the n-th call
// yields the label for (seed, probe index, n), derived through a seeded
// 40-bit Feistel permutation so labels are globally unique within a
// campaign by construction yet look random. Unlike LabelAllocator.Next,
// the stream does not depend on how probe shards interleave their draws
// from a shared source — the property traced campaigns need for
// byte-identical same-seed output. fallback serves the (practically
// unreachable) case of a probe running more than 256 transactions.
func DeterministicLabels(seed int64, index uint64, fallback *LabelAllocator) func() string {
	s := NewLabelStream(seed, fallback)
	s.Reset(index)
	return s.Next
}

// LabelStream is the reusable form of DeterministicLabels: one stream per
// worker, Reset to a probe index before each probe. Streams are not safe
// for concurrent use; campaigns keep one per shard.
type LabelStream struct {
	seed     int64
	index    uint64
	ord      uint64
	fallback *LabelAllocator
}

// NewLabelStream builds a stream positioned at probe index 0.
func NewLabelStream(seed int64, fallback *LabelAllocator) *LabelStream {
	return &LabelStream{seed: seed, fallback: fallback}
}

// Reset repositions the stream at the start of a probe's label sequence.
func (s *LabelStream) Reset(index uint64) {
	s.index, s.ord = index, 0
}

// Next returns the stream's next label.
func (s *LabelStream) Next() string {
	if s.ord >= 256 || s.index >= 1<<32 {
		return s.fallback.Next()
	}
	n := s.index<<8 | s.ord
	s.ord++
	return deterministicLabel(s.seed, n)
}

// deterministicLabel encodes the permuted 40-bit value as a fixed-width
// 8-character label: one alphabetic lead character plus seven base-36
// digits. Both the permutation and the encoding are injective, so distinct
// (index, ord) pairs can never collide.
func deterministicLabel(seed int64, n uint64) string {
	v := feistel40(seed, n)
	var b [8]byte
	b[0] = labelAlphabet[v%26]
	v /= 26
	for i := 7; i >= 1; i-- {
		b[i] = labelAlphabet[v%36]
		v /= 36
	}
	return string(b[:])
}

// feistel40 is a 4-round Feistel permutation of the 40-bit input, keyed by
// seed. Bijective for any seed, which is what makes the labels unique.
func feistel40(seed int64, n uint64) uint64 {
	const mask = 0xFFFFF // 20-bit halves
	l, r := (n>>20)&mask, n&mask
	for round := 0; round < 4; round++ {
		f := labelRound(seed, round, r)
		l, r = r, (l^f)&mask
	}
	return l<<20 | r
}

// labelRound mixes (seed, round, half) with FNV-1a into a 20-bit value.
func labelRound(seed int64, round int, half uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte{byte(round)})
	for i := 0; i < 8; i++ {
		b[i] = byte(half >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64() & 0xFFFFF
}
