package core

import (
	"fmt"
	"math/rand"
	"sync"

	"spfail/internal/dnsserver"
)

// Collector is a dnsserver.Sink that indexes inbound queries by the probe
// id embedded in their names, so each probe's evidence can be retrieved in
// O(1) regardless of campaign size.
type Collector struct {
	zone *dnsserver.SPFTestZone

	mu    sync.Mutex
	byID  map[string][]dnsserver.QueryEvent
	total int
}

// NewCollector builds a collector for the given zone.
func NewCollector(zone *dnsserver.SPFTestZone) *Collector {
	return &Collector{zone: zone, byID: make(map[string][]dnsserver.QueryEvent)}
}

// Observe implements dnsserver.Sink.
func (c *Collector) Observe(ev dnsserver.QueryEvent) {
	id, _, ok := c.zone.ExtractIDSuite(ev.Name)
	if !ok {
		return
	}
	c.mu.Lock()
	c.byID[id] = append(c.byID[id], ev)
	c.total++
	c.mu.Unlock()
}

// QueriesFor returns a copy of the events recorded for a probe id.
func (c *Collector) QueriesFor(id string) []dnsserver.QueryEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]dnsserver.QueryEvent(nil), c.byID[id]...)
}

// Total returns the number of in-zone queries observed.
func (c *Collector) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Forget releases the evidence for a probe id (campaigns drop evidence
// once an outcome is recorded, bounding memory across hundreds of
// thousands of probes).
func (c *Collector) Forget(id string) {
	c.mu.Lock()
	delete(c.byID, id)
	c.mu.Unlock()
}

// LabelAllocator hands out the unique 4–5 character alphanumeric labels
// that tie each probed server to the DNS queries it performs (paper §5.1).
// Labels also defeat resolver caching: every probe's names are globally
// fresh.
type LabelAllocator struct {
	mu   sync.Mutex
	rng  *rand.Rand
	used map[string]bool
}

// NewLabelAllocator builds an allocator seeded deterministically.
func NewLabelAllocator(seed int64) *LabelAllocator {
	return &LabelAllocator{
		rng:  rand.New(rand.NewSource(seed)),
		used: make(map[string]bool),
	}
}

const labelAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// Next returns a fresh label: 4 characters until the space gets crowded,
// then 5.
func (a *LabelAllocator) Next() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	length := 4
	if len(a.used) > 800_000 { // 36^4 ≈ 1.68M; switch early to avoid loops
		length = 5
	}
	for {
		b := make([]byte, length)
		// First character alphabetic so labels never look numeric-only.
		b[0] = labelAlphabet[a.rng.Intn(26)]
		for i := 1; i < length; i++ {
			b[i] = labelAlphabet[a.rng.Intn(len(labelAlphabet))]
		}
		s := string(b)
		if !a.used[s] {
			a.used[s] = true
			return s
		}
	}
}

// NewSuiteLabel derives a short suite label from a test-suite counter.
func NewSuiteLabel(n int) string { return fmt.Sprintf("s%02d", n) }
