package core

import (
	"context"
	"net/netip"

	"spfail/internal/dmarc"
	"spfail/internal/spf"
)

// Spoof outcomes: what a policy-honoring receiver does with a forged
// message, judged from SPF and the discovered DMARC policy alone.
const (
	// OutcomeRejectedSPF: the apex policy failed the forged source and
	// an SPF-enforcing receiver refuses the transaction.
	OutcomeRejectedSPF = "rejected-spf"
	// OutcomeRejectedDMARC: a discovered reject/quarantine policy fired
	// on the unaligned (or failing) identifier.
	OutcomeRejectedDMARC = "rejected-dmarc"
	// OutcomeDelivered: nothing authenticated the From identity strongly
	// enough to stop the message — +all passes, permerror limbo, p=none
	// monitoring, a missing DMARC record, or an attacker-achieved
	// aligned pass.
	OutcomeDelivered = "delivered"
)

// SpoofVerdict is the receiver-perspective judgment of one domain's
// spoofability: the attacker forges a message whose RFC5322.From is
// Domain while sending from an address no policy authorizes, choosing
// MailFromDomain as the RFC5321.MailFrom identity (the apex, unless an
// alignment-gap subdomain offers a better move).
type SpoofVerdict struct {
	// Domain is the spoofed RFC5322.From domain.
	Domain string
	// MailFromDomain is the RFC5321.MailFrom domain the attacker chose.
	MailFromDomain string
	// Scenario is the domain's ScenarioPack name ("" baseline).
	Scenario string
	// SPF is the check_host result for the forged envelope.
	SPF spf.Result
	// SPFMechanism is the matched mechanism, when any.
	SPFMechanism string
	// SPFErr explains temperror/permerror results.
	SPFErr string
	// DMARC is the policy evaluation for the From identity.
	DMARC dmarc.Result
	// DMARCErr is a non-empty discovery error (DNS trouble), in which
	// case DMARC is the zero Result.
	DMARCErr string
}

// PermError reports whether SPF evaluation died in policy limbo.
func (v SpoofVerdict) PermError() bool { return v.SPF == spf.ResultPermError }

// DMARCBlocked reports whether the discovered DMARC policy stops the
// forged message: a failing evaluation with a reject or quarantine
// disposition.
func (v SpoofVerdict) DMARCBlocked() bool {
	return v.DMARC.Found && !v.DMARC.Pass &&
		(v.DMARC.Disposition == dmarc.PolicyReject || v.DMARC.Disposition == dmarc.PolicyQuarantine)
}

// Delivered reports whether the forged message gets through a receiver
// that honors both protocols: DMARC did not block it and SPF did not
// hard-fail it.
func (v SpoofVerdict) Delivered() bool {
	if v.DMARCBlocked() {
		return false
	}
	return v.SPF != spf.ResultFail
}

// Outcome collapses the verdict to one of the Outcome* labels.
func (v SpoofVerdict) Outcome() string {
	switch {
	case v.DMARCBlocked():
		return OutcomeRejectedDMARC
	case v.SPF == spf.ResultFail:
		return OutcomeRejectedSPF
	default:
		return OutcomeDelivered
	}
}

// VerdictEvaluator computes SpoofVerdicts through the real resolution
// path: check_host consumes its lookup and void budgets against live
// DNS, then DMARC discovery runs over the same resolver.
type VerdictEvaluator struct {
	// Checker evaluates SPF; its Resolver also serves DMARC discovery.
	Checker *spf.Checker
	// HELO is the attacker's HELO identity.
	HELO string
}

// Evaluate judges a forged message from ip with the given identities.
// fromDomain is the spoofed RFC5322.From domain; mailFromDomain is the
// attacker-chosen RFC5321.MailFrom domain (usually the same).
func (e *VerdictEvaluator) Evaluate(ctx context.Context, ip netip.Addr, fromDomain, mailFromDomain, scenario string) SpoofVerdict {
	v := SpoofVerdict{
		Domain:         fromDomain,
		MailFromDomain: mailFromDomain,
		Scenario:       scenario,
	}
	res := e.Checker.CheckHost(ctx, ip, mailFromDomain, "forged@"+mailFromDomain, e.HELO)
	v.SPF = res.Result
	v.SPFMechanism = res.Mechanism
	if res.Err != nil {
		v.SPFErr = res.Err.Error()
	}
	dres, err := dmarc.Evaluate(ctx, e.Checker.Resolver, fromDomain, res.Result, mailFromDomain)
	if err != nil {
		v.DMARCErr = err.Error()
		return v
	}
	v.DMARC = dres
	return v
}
