package core

import (
	"context"
	"errors"
	"net"
	"strings"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsserver"
	"spfail/internal/netsim"
	"spfail/internal/retry"
	"spfail/internal/smtp"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// ProbeMethod is one of the two probe transaction shapes (paper §5.1).
type ProbeMethod string

// The two probe methods.
const (
	// MethodNoMsg terminates the connection after the DATA command is
	// accepted, before any message content — guaranteeing no email is
	// delivered.
	MethodNoMsg ProbeMethod = "NoMsg"
	// MethodBlankMsg transmits an entirely empty message, for servers
	// that defer SPF validation until a message has been received.
	MethodBlankMsg ProbeMethod = "BlankMsg"
)

// Status is the outcome category of a probe, mirroring Table 3's rows.
type Status string

// The outcome categories.
const (
	// StatusConnectionRefused: no TCP connection could be established.
	StatusConnectionRefused Status = "connection-refused"
	// StatusSMTPFailure: connected, but the SMTP dialogue failed before
	// any SPF lookup was observed.
	StatusSMTPFailure Status = "smtp-failure"
	// StatusSPFMeasured: SPF macro behaviour was conclusively observed.
	StatusSPFMeasured Status = "spf-measured"
	// StatusSPFNotMeasured: the dialogue succeeded but the server never
	// performed an attributable SPF lookup.
	StatusSPFNotMeasured Status = "spf-not-measured"
	// StatusInconclusive: the probe exhausted its retry budget (or was
	// skipped by an open circuit breaker) without a conclusive dialogue;
	// Outcome.FailReason says why. Only produced when a retry policy is
	// configured.
	StatusInconclusive Status = "inconclusive"
)

// transientStatus reports whether a status is worth retrying: the
// connection or dialogue failed in a way a transient network fault could
// explain. Measured and not-measured outcomes are terminal (the dialogue
// completed).
func transientStatus(s Status) bool {
	return s == StatusConnectionRefused || s == StatusSMTPFailure
}

// Stage names where an SMTP dialogue can fail.
const (
	StageDial    = "dial"
	StageBanner  = "banner"
	StageHello   = "hello"
	StageMail    = "mail"
	StageRcpt    = "rcpt"
	StageData    = "data"
	StageMessage = "message"
)

// DefaultUsernames is the curated recipient list of paper §6.3, in trial
// order: a random mailbox and no-reply variants first to minimize the
// chance of a probe reaching a human inbox, then administrative accounts.
var DefaultUsernames = []string{
	"mmj7yzdm0tbk",
	"noreply",
	"donotreply",
	"no-reply",
	"postmaster",
	"abuse",
	"admin",
	"administrator",
	"newsletters",
	"alerts",
	"info",
	"auto-confirm",
	"appointments",
	"service",
}

// Outcome is the result of probing one IP address.
type Outcome struct {
	Addr   string
	Status Status
	// Method is the probe that produced conclusive data ("" when none).
	Method ProbeMethod
	// NoMsgRan/BlankMsgRan record which rungs of the ladder executed.
	NoMsgRan    bool
	BlankMsgRan bool
	// Observation holds the classified DNS evidence.
	Observation Observation
	// FailStage and Err describe the last SMTP failure, if any.
	FailStage string
	Err       error
	// IDs are the probe labels used (one per transaction attempt).
	IDs []string
	// Username is the recipient local-part that was finally accepted.
	Username string
	// Attempts is how many full probe attempts ran (0 when the circuit
	// breaker skipped the address; 1 without a retry policy).
	Attempts int
	// FailReason explains an Inconclusive status.
	FailReason string
}

// Vulnerable is a convenience for Observation.Vulnerable on measured
// outcomes.
func (o *Outcome) Vulnerable() bool {
	return o.Status == StatusSPFMeasured && o.Observation.Vulnerable()
}

// Prober runs the NoMsg → BlankMsg detection ladder against mail servers.
type Prober struct {
	// Net supplies outbound connectivity (the measurement vantage).
	Net netsim.Network
	// HELO is the identity our client announces.
	HELO string
	// Clock paces greylist retries and inter-connection waits, stamps
	// breaker decisions, and measures probe latency. Campaigns hand each
	// probe a detached clock.Frame here so those timestamps are a pure
	// function of the probe, independent of batch partitioning.
	Clock clock.Clock
	// IOClock, when non-nil, supplies the timeline SMTP I/O deadlines
	// are computed on. Campaigns keep it on the rig's shared clock even
	// while Clock is a per-probe frame: the network fabric translates
	// deadline budgets against its own clock, so deadlines must be
	// minted on that same timeline to preserve the configured budget.
	IOClock clock.Clock
	// Zone describes the measurement DNS zone (for label → domain
	// construction); Collector receives its query stream.
	Zone       *dnsserver.SPFTestZone
	Labels     *LabelAllocator
	Collector  *Collector
	Classifier *Classifier
	// Suite tags all of this prober's labels.
	Suite string
	// Usernames overrides DefaultUsernames when non-nil.
	Usernames []string
	// GreylistWait is the pause before retrying a 450 (paper: 8 min).
	GreylistWait time.Duration
	// ReconnectWait is the minimum pause between connections to the same
	// address (paper: 90 s).
	ReconnectWait time.Duration
	// IOTimeout bounds SMTP I/O.
	IOTimeout time.Duration
	// Retry, when enabled (MaxAttempts > 1), reruns transiently-failed
	// probes (refused connections, SMTP failures) with the policy's
	// jittered backoff slept on Clock. The zero value keeps the legacy
	// single-attempt behaviour.
	Retry retry.Policy
	// Breakers, when non-nil, is the shared per-address circuit-breaker
	// set: addresses whose breaker is open are skipped (Inconclusive)
	// until the cooldown elapses. Typically one set per campaign.
	Breakers *retry.Breakers
	// Metrics, when non-nil, receives probe outcome/stage counters and
	// the probe latency histogram (see docs/telemetry.md). Latency is
	// measured on Clock, so virtual campaigns report virtual durations.
	Metrics *telemetry.Registry
	// NextLabel, when non-nil, supplies transaction labels instead of
	// Labels. Campaigns install a per-probe DeterministicLabels stream so
	// label assignment is independent of shard scheduling — drawing from
	// the shared allocator would make same-seed traced runs diverge.
	NextLabel func() string

	// Scratch state reused across probes. A Prober runs one probe at a
	// time (campaigns keep one prober per shard), so plain fields suffice.
	cli       *smtp.Client
	txScratch transactionResult
	evScratch []dnsserver.QueryEvent
}

// nextLabel returns the next transaction label for this prober.
func (p *Prober) nextLabel() string {
	if p.NextLabel != nil {
		return p.NextLabel()
	}
	return p.Labels.Next()
}

func (p *Prober) usernames() []string {
	if p.Usernames != nil {
		return p.Usernames
	}
	return DefaultUsernames
}

func (p *Prober) greylistWait() time.Duration {
	if p.GreylistWait > 0 {
		return p.GreylistWait
	}
	return 8 * time.Minute
}

func (p *Prober) reconnectWait() time.Duration {
	if p.ReconnectWait > 0 {
		return p.ReconnectWait
	}
	return 90 * time.Second
}

// TestIP probes the mail server at addr ("ip:port"), using rcptDomain in
// recipient addresses. It runs NoMsg first and escalates to BlankMsg only
// when NoMsg connected but elicited no SPF lookup, per the paper's
// minimization methodology. With a retry policy configured, transiently
// failed probes are rerun with backoff; an exhausted budget degrades to
// StatusInconclusive rather than reporting the last transient failure as
// the host's behaviour.
//
//spfail:hotpath
func (p *Prober) TestIP(ctx context.Context, addr, rcptDomain string) Outcome {
	start := p.Clock.Now()
	out := p.testIPRetrying(ctx, addr, rcptDomain)
	p.Metrics.Histogram("probe.latency").Record(p.Clock.Now().Sub(start))
	p.Metrics.Counter("probe.total").Inc()
	p.Metrics.Counter("probe.outcome." + string(out.Status)).Inc()
	if out.FailStage != "" {
		p.Metrics.Counter("probe.fail_stage." + out.FailStage).Inc()
	}
	if out.Vulnerable() {
		p.Metrics.Counter("probe.vulnerable").Inc()
	}
	return out
}

// testIPRetrying runs the probe ladder under the retry policy and circuit
// breaker. Without a policy (MaxAttempts ≤ 1) it is exactly one testIP
// call, preserving the pre-retry behaviour bit for bit.
//
//spfail:hotpath
func (p *Prober) testIPRetrying(ctx context.Context, addr, rcptDomain string) Outcome {
	max := p.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var out Outcome
	allRefused := true
	for attempt := 1; attempt <= max; attempt++ {
		if !p.Breakers.Allow(addr, p.Clock.Now()) {
			p.Metrics.Counter("probe.breaker_skips").Inc()
			if sp := trace.SpanFromContext(ctx); sp != nil {
				sp.Event("probe.breaker_open", trace.Int("attempt", attempt))
			}
			return Outcome{
				Addr:       addr,
				Status:     StatusInconclusive,
				FailReason: "circuit breaker open",
				Attempts:   attempt - 1,
			}
		}
		attemptCtx, asp := trace.StartSpan(ctx, "probe.attempt")
		if asp != nil {
			asp.SetAttrs(trace.Int("attempt", attempt))
		}
		out = p.testIP(attemptCtx, addr, rcptDomain)
		out.Attempts = attempt
		if asp != nil {
			asp.SetAttrs(trace.String("status", string(out.Status)))
			asp.End()
		}
		if !transientStatus(out.Status) {
			p.Breakers.Success(addr)
			return out
		}
		allRefused = allRefused && out.Status == StatusConnectionRefused
		p.Breakers.Failure(addr, p.Clock.Now())
		if attempt == max || ctx.Err() != nil {
			break
		}
		p.Metrics.Counter("probe.retries").Inc()
		if err := p.Retry.Wait(ctx, p.Clock, addr, attempt); err != nil {
			break
		}
	}
	if max > 1 && transientStatus(out.Status) {
		p.Metrics.Counter("probe.retry_exhausted").Inc()
		// A host that refused every single attempt is a refusing host
		// (Table 3's connection-refused row), not an inconclusive one;
		// anything else transient — timeouts, resets, 4xx churn — is.
		if !allRefused {
			out.FailReason = exhaustReason(out)
			out.Status = StatusInconclusive
		}
	}
	return out
}

// exhaustReason renders a stable failure description for an exhausted
// retry budget.
func exhaustReason(out Outcome) string {
	reason := "retry budget exhausted"
	if out.FailStage != "" {
		reason += " at stage " + out.FailStage
	}
	if out.Err != nil {
		reason += ": " + out.Err.Error()
	}
	return reason
}

// testIP is TestIP's uninstrumented body.
//
//spfail:hotpath
func (p *Prober) testIP(ctx context.Context, addr, rcptDomain string) Outcome {
	out := Outcome{Addr: addr}

	noMsg := p.runTransaction(ctx, addr, rcptDomain, MethodNoMsg)
	out.NoMsgRan = true
	out.IDs = append(out.IDs, noMsg.ids...)
	p.mergeObservation(&out, noMsg)
	if out.Observation.Conclusive() {
		out.Status = StatusSPFMeasured
		out.Method = MethodNoMsg
		out.Username = noMsg.username
		return out
	}
	if noMsg.refused {
		out.Status = StatusConnectionRefused
		out.Err = noMsg.err
		out.FailStage = StageDial
		return out
	}
	if noMsg.err != nil && noMsg.stage != StageData && noMsg.stage != StageMessage {
		// Hard SMTP failure before the transaction could complete, with
		// no SPF evidence: record and stop (retrying with BlankMsg would
		// fail at the same stage).
		out.Status = StatusSMTPFailure
		out.Err = noMsg.err
		out.FailStage = noMsg.stage
		return out
	}

	// Politeness gap between connections to the same server.
	if err := p.Clock.Sleep(ctx, p.reconnectWait()); err != nil {
		out.Status = StatusSPFNotMeasured
		return out
	}

	blank := p.runTransaction(ctx, addr, rcptDomain, MethodBlankMsg)
	out.BlankMsgRan = true
	out.IDs = append(out.IDs, blank.ids...)
	p.mergeObservation(&out, blank)
	if out.Observation.Conclusive() {
		out.Status = StatusSPFMeasured
		out.Method = MethodBlankMsg
		out.Username = blank.username
		return out
	}
	if blank.err != nil {
		out.Status = StatusSMTPFailure
		out.Err = blank.err
		out.FailStage = blank.stage
		return out
	}
	out.Status = StatusSPFNotMeasured
	return out
}

// mergeObservation folds a transaction's classified evidence into the
// outcome, keeping the union of observed patterns.
func (p *Prober) mergeObservation(out *Outcome, tr *transactionResult) {
	o := &out.Observation
	o.PolicyFetched = o.PolicyFetched || tr.obs.PolicyFetched
	o.LivenessSeen = o.LivenessSeen || tr.obs.LivenessSeen
	for i, pat := range tr.obs.Patterns {
		dup := false
		for _, existing := range o.Patterns {
			if existing == pat {
				dup = true
				break
			}
		}
		if !dup {
			o.Patterns = append(o.Patterns, pat)
			o.Classes = append(o.Classes, tr.obs.Classes[i])
		}
	}
}

type transactionResult struct {
	ids      []string
	obs      Observation
	err      error
	stage    string
	refused  bool
	username string
}

// reset clears the result for reuse, keeping slice capacity.
func (res *transactionResult) reset() {
	res.ids = res.ids[:0]
	res.obs.PolicyFetched = false
	res.obs.LivenessSeen = false
	res.obs.Patterns = res.obs.Patterns[:0]
	res.obs.Classes = res.obs.Classes[:0]
	res.err = nil
	res.stage = ""
	res.refused = false
	res.username = ""
}

// client returns the prober's cached SMTP client, built once from the
// prober's configuration.
func (p *Prober) client() *smtp.Client {
	if p.cli == nil {
		clk := p.IOClock
		if clk == nil {
			clk = p.Clock
		}
		p.cli = &smtp.Client{Net: p.Net, HELO: p.HELO, IOTimeout: p.IOTimeout, Metrics: p.Metrics, Clk: clk}
	}
	return p.cli
}

// runTransaction performs one probe transaction (with a single greylist
// retry) and classifies the DNS evidence it produced. The returned result
// is the prober's reusable scratch: it is valid only until the next
// runTransaction call on this prober, so callers must copy out whatever
// they keep before starting another transaction (testIP does).
//
//spfail:hotpath
func (p *Prober) runTransaction(ctx context.Context, addr, rcptDomain string, method ProbeMethod) *transactionResult {
	res := &p.txScratch
	res.reset()
	for attempt := 0; attempt < 2; attempt++ {
		id := p.nextLabel()
		res.ids = append(res.ids, id)
		p.Metrics.Counter("probe.transactions").Inc()
		txCtx, tsp := trace.StartSpan(ctx, "smtp.transaction")
		if tsp != nil {
			tsp.SetAttrs(trace.String("method", string(method)), trace.String("id", id))
			// Adopt the target host for the transaction so MTA-side work
			// (SPF evaluation, its DNS lookups, injected faults) nests
			// under this span instead of the probe root.
			if host, _, err := net.SplitHostPort(addr); err == nil {
				release := tsp.Adopt(host)
				defer release()
			}
		}
		greylisted := p.attempt(txCtx, res, id, addr, rcptDomain, method)
		// Classify whatever evidence this attempt produced. The event copy
		// lands in a per-prober scratch buffer; Classify does not retain it.
		p.evScratch = p.Collector.AppendQueriesFor(p.evScratch[:0], id)
		obs := p.Classifier.Classify(id, p.Suite, p.evScratch)
		p.Collector.Forget(id)
		mergeObs(&res.obs, obs)
		if tsp != nil {
			tsp.SetAttrs(
				trace.Bool("greylisted", greylisted),
				trace.Bool("conclusive", obs.Conclusive()),
				trace.Int("patterns", len(obs.Patterns)),
			)
			tsp.End()
		}
		if res.obs.Conclusive() || !greylisted {
			return res
		}
		p.Metrics.Counter("probe.greylist_waits").Inc()
		if sp := trace.SpanFromContext(ctx); sp != nil {
			sp.Event("probe.greylist_wait", trace.Duration("wait", p.greylistWait()))
		}
		if err := p.Clock.Sleep(ctx, p.greylistWait()); err != nil {
			return res
		}
	}
	return res
}

func mergeObs(dst *Observation, src Observation) {
	dst.PolicyFetched = dst.PolicyFetched || src.PolicyFetched
	dst.LivenessSeen = dst.LivenessSeen || src.LivenessSeen
	for i, pat := range src.Patterns {
		dup := false
		for _, existing := range dst.Patterns {
			if existing == pat {
				dup = true
				break
			}
		}
		if !dup {
			dst.Patterns = append(dst.Patterns, pat)
			dst.Classes = append(dst.Classes, src.Classes[i])
		}
	}
}

// attempt runs a single SMTP dialogue. It returns true when the server
// greylisted us (450) and a retry is worthwhile.
//
//spfail:hotpath
func (p *Prober) attempt(ctx context.Context, tr *transactionResult, id, addr, rcptDomain string, method ProbeMethod) bool {
	mailDomain, err := p.Zone.MailDomain(id, p.Suite)
	if err != nil {
		tr.err, tr.stage = err, StageDial
		return false
	}
	from := p.usernames()[0] + "@" + strings.TrimSuffix(mailDomain.String(), ".")

	conn, err := p.client().Dial(ctx, addr)
	if err != nil {
		if code := smtp.ReplyCode(err); code != 0 {
			tr.err, tr.stage = err, StageBanner
			return code == 421 || code/100 == 4
		}
		tr.err, tr.stage, tr.refused = err, StageDial, isRefused(err)
		return false
	}
	defer conn.Close()

	if err := conn.Hello(); err != nil {
		tr.err, tr.stage = err, StageHello
		return smtp.ReplyCode(err)/100 == 4
	}
	if err := conn.Mail(from); err != nil {
		tr.err, tr.stage = err, StageMail
		return smtp.ReplyCode(err)/100 == 4
	}

	// Try recipient usernames in order until one is accepted.
	var accepted bool
	var lastErr error
	for _, u := range p.usernames() {
		err := conn.Rcpt(u + "@" + rcptDomain)
		if err == nil {
			accepted = true
			tr.username = u
			break
		}
		lastErr = err
		code := smtp.ReplyCode(err)
		if code/100 == 4 {
			tr.err, tr.stage = err, StageRcpt
			return true // greylisted
		}
		if code == 0 {
			tr.err, tr.stage = err, StageRcpt
			return false // connection-level failure
		}
		// 5xx: try the next username.
	}
	if !accepted {
		tr.err, tr.stage = lastErr, StageRcpt
		return false
	}

	if err := conn.Data(); err != nil {
		tr.err, tr.stage = err, StageData
		return smtp.ReplyCode(err)/100 == 4
	}

	if method == MethodNoMsg {
		conn.Close() // deliberate mid-transaction termination
		return false
	}
	r, err := conn.SendMessage(nil)
	if err != nil {
		tr.err, tr.stage = err, StageMessage
		return false
	}
	if !r.Positive() {
		tr.err, tr.stage = &smtp.ReplyError{Reply: *r}, StageMessage
		return r.Transient()
	}
	conn.Quit()
	return false
}

// isRefused detects a TCP-level refusal.
func isRefused(err error) bool {
	return errors.Is(err, netsim.ErrRefused) || strings.Contains(err.Error(), "refused")
}
