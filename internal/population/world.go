package population

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/geo"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/spfimpl"
	"spfail/internal/trace"
)

// Set is a bitmask of domain-set membership.
type Set uint8

// The four domain sets of the study.
const (
	SetAlexaTopList Set = 1 << iota
	SetAlexa1000
	SetTwoWeekMX
	SetTopProviders
)

// Has reports whether s includes the given set bit.
func (s Set) Has(bit Set) bool { return s&bit != 0 }

// String implements fmt.Stringer.
func (s Set) String() string {
	names := ""
	add := func(n string) {
		if names != "" {
			names += "+"
		}
		names += n
	}
	if s.Has(SetAlexaTopList) {
		add("alexa")
	}
	if s.Has(SetAlexa1000) {
		add("alexa1000")
	}
	if s.Has(SetTwoWeekMX) {
		add("2weekmx")
	}
	if s.Has(SetTopProviders) {
		add("providers")
	}
	if names == "" {
		return "none"
	}
	return names
}

// PatchChannel says what drove a host's patch.
type PatchChannel string

// Patch channels observed in the study.
const (
	PatchNone         PatchChannel = "none"
	PatchProactive    PatchChannel = "proactive"
	PatchNotification PatchChannel = "notification"
	PatchDisclosure   PatchChannel = "disclosure"
	PatchSnapshotOnly PatchChannel = "snapshot-only"
)

// Domain is one measured email domain.
type Domain struct {
	Name string
	TLD  string
	// Rank is the Alexa rank (1-based); 0 for 2-Week-MX-only domains.
	Rank int
	// MXQueries is the 2-Week MX usage metric (DNS MX query count).
	MXQueries int
	Sets      Set
	// Hosts are the domain's mail server addresses (MX targets, or the
	// A fallback when HasMX is false).
	Hosts []netip.Addr
	HasMX bool
	// Provider is the shared-hosting provider id, "" when dedicated.
	Provider string
	// Scenario is the ScenarioPack applied to this domain ("" baseline).
	Scenario string
	// SPF holds the SPF policy TXT records published at the apex.
	// Baseline domains publish none; scenario packs populate it.
	SPF []string
	// DMARC is the record published at _dmarc.<Name> ("" none).
	DMARC string
	// Extra holds additional scenario-generated records (include-chain
	// targets, subdomain policies, …) served by the domain's zone.
	Extra []ZoneRecord
}

// ZoneRecord is one extra DNS record a scenario pack publishes under a
// domain: a TXT payload, an address record, or both on the same owner.
type ZoneRecord struct {
	// Owner is the fully-qualified owner name.
	Owner string
	// TXT, when non-empty, adds a TXT record with this payload.
	TXT string
	// Addr, when valid, adds an A/AAAA record.
	Addr netip.Addr
}

// HostSpec is the ground-truth behaviour plan for one mail-server address.
type HostSpec struct {
	Addr    netip.Addr
	Country geo.Country
	// Listens is false for addresses refusing TCP entirely.
	Listens bool
	// RefuseSMTP makes the host 421 every session.
	RefuseSMTP bool
	// ValidateAt is the SPF trigger point (never when no validation).
	ValidateAt mta.ValidationPoint
	// Behaviors is the SPF implementation stack (ground truth).
	Behaviors []spfimpl.Behavior
	// BlankMsgFails makes the host reject at the message stage.
	BlankMsgFails bool
	Greylist      bool
	RejectOnFail  bool
	// Distro is the package source for libSPF2 (Table 6 uptake).
	Distro string
	// PatchAt is when the host upgrades (zero: never).
	PatchAt  time.Time
	PatchVia PatchChannel
	// BlacklistProbesAt is when the host starts rejecting probe sessions
	// (zero: never).
	BlacklistProbesAt time.Time
	// BlacklistProbesUntil ends the blacklist window (zero: never lifts).
	// Alexa 1000 hosts lift theirs before the final snapshot (§7.5).
	BlacklistProbesUntil time.Time
	// EnforceDMARC makes the host honor sender DMARC policies at
	// end-of-data (discarding the study's blank probes, §6.2).
	EnforceDMARC bool
	// FlakyRate is the per-session probability of a 421 (zero: stable).
	FlakyRate float64
	// FlakySeed feeds the host's deterministic flakiness stream.
	FlakySeed int64
}

// Vulnerable reports ground-truth vulnerability at time t.
func (h *HostSpec) Vulnerable(t time.Time) bool {
	if !h.PatchAt.IsZero() && !t.Before(h.PatchAt) {
		return false
	}
	for _, b := range h.Behaviors {
		if b.Vulnerable() {
			return true
		}
	}
	return false
}

// EverVulnerable reports whether the host starts out vulnerable.
func (h *HostSpec) EverVulnerable() bool {
	for _, b := range h.Behaviors {
		if b.Vulnerable() {
			return true
		}
	}
	return false
}

// BehaviorsAt returns the implementation stack effective at time t.
func (h *HostSpec) BehaviorsAt(t time.Time) []spfimpl.Behavior {
	out := append([]spfimpl.Behavior(nil), h.Behaviors...)
	if !h.PatchAt.IsZero() && !t.Before(h.PatchAt) {
		for i, b := range out {
			if b == spfimpl.BehaviorVulnLibSPF2 {
				out[i] = spfimpl.BehaviorPatchedLibSPF2
			}
		}
	}
	return out
}

// World is a generated synthetic Internet.
type World struct {
	Spec    Spec
	Domains []*Domain
	ByName  map[string]*Domain
	Hosts   map[netip.Addr]*HostSpec
	Geo     *geo.DB
}

// DomainsIn returns the domains belonging to a set, in generation order
// (rank order for Alexa).
func (w *World) DomainsIn(set Set) []*Domain {
	var out []*Domain
	for _, d := range w.Domains {
		if d.Sets.Has(set) {
			out = append(out, d)
		}
	}
	return out
}

// AllAddrs returns every distinct host address, sorted.
func (w *World) AllAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(w.Hosts))
	for a := range w.Hosts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AddrsIn returns the distinct addresses backing a domain set, sorted.
func (w *World) AddrsIn(set Set) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	for _, d := range w.Domains {
		if !d.Sets.Has(set) {
			continue
		}
		for _, a := range d.Hosts {
			seen[a] = true
		}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Host behaviour classes as named by HostClass, for fault-plan targeting.
const (
	ClassUnreachable = "unreachable"
	ClassRefusing    = "refusing"
	ClassGreylisting = "greylisting"
	ClassFlaky       = "flaky"
	ClassSilent      = "silent"
	ClassValidating  = "validating"
)

// HostClass names the fault-relevant behaviour class of a host address so
// fault plans can target "all greylisting hosts" instead of enumerating
// IPs. Unknown addresses (e.g. the probe vantage) return "".
func (w *World) HostClass(a netip.Addr) string {
	h := w.Hosts[a]
	if h == nil {
		return ""
	}
	switch {
	case !h.Listens:
		return ClassUnreachable
	case h.RefuseSMTP:
		return ClassRefusing
	case h.Greylist:
		return ClassGreylisting
	case h.FlakyRate > 0:
		return ClassFlaky
	case len(h.Behaviors) == 0 || h.ValidateAt == mta.ValidateNever:
		return ClassSilent
	default:
		return ClassValidating
	}
}

// FaultClassifier adapts HostClass to the string-keyed host classifier the
// fault engine consumes. The returned func is safe for concurrent use.
func (w *World) FaultClassifier() func(host string) string {
	return func(host string) string {
		a, err := netip.ParseAddr(host)
		if err != nil {
			return ""
		}
		return w.HostClass(a)
	}
}

// DomainsOn returns the domains hosted on an address.
func (w *World) DomainsOn(addr netip.Addr) []*Domain {
	var out []*Domain
	for _, d := range w.Domains {
		for _, a := range d.Hosts {
			if a == addr {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// BuildZones constructs the authoritative DNS content for every domain:
// MX records pointing at mail hosts (or bare A records for MX-less
// domains), A records for the mail hosts themselves, an SOA per domain
// for clean negative answers, and — for scenario domains — the apex SPF
// TXT records, the _dmarc TXT record, and any extra pack-published
// records.
func (w *World) BuildZones() *dnsserver.ZoneSet {
	z := dnsserver.NewZoneSet()
	for _, d := range w.Domains {
		name, err := dnsmsg.ParseName(d.Name)
		if err != nil {
			continue
		}
		z.Add(dnsmsg.Record{Name: name, Class: dnsmsg.ClassIN, TTL: 3600,
			Data: dnsmsg.SOA{
				MName:  dnsmsg.MustParseName("ns1." + d.Name),
				RName:  dnsmsg.MustParseName("hostmaster." + d.Name),
				Serial: 2021101100,
			}})
		if d.HasMX {
			for i, a := range d.Hosts {
				mx, err := dnsmsg.ParseName(fmt.Sprintf("mx%d.%s", i+1, d.Name))
				if err != nil {
					continue
				}
				z.AddMX(name, uint16(10*(i+1)), mx)
				z.AddA(mx, a)
			}
		} else {
			for _, a := range d.Hosts {
				z.AddA(name, a)
			}
		}
		for _, txt := range d.SPF {
			z.AddTXT(name, txt)
		}
		if d.DMARC != "" {
			if owner, err := dnsmsg.ParseName("_dmarc." + d.Name); err == nil {
				z.AddTXT(owner, d.DMARC)
			}
		}
		for _, rr := range d.Extra {
			owner, err := dnsmsg.ParseName(rr.Owner)
			if err != nil {
				continue
			}
			if rr.TXT != "" {
				z.AddTXT(owner, rr.TXT)
			}
			if rr.Addr.IsValid() {
				z.AddA(owner, rr.Addr)
			}
		}
	}
	return z
}

// HostManager instantiates mta.Hosts from HostSpecs on demand, applying
// the spec's patch state as of the supplied clock. The measurement
// campaign brings hosts up in waves to bound memory at large scales.
type HostManager struct {
	World     *World
	Fabric    *netsim.Fabric
	Clock     clock.Clock
	DNSServer string
	// DNSTimeout for host resolvers (keep small in simulation).
	DNSTimeout time.Duration
	// Trace, when non-nil, is handed to every started host so MTA-side SPF
	// evaluation attributes its spans to the owning probe.
	Trace *trace.Tracer

	mu      sync.Mutex
	running map[netip.Addr]*mta.Host
}

// Ensure starts hosts for every listening address in addrs that is not
// already running, with behaviour effective at the current clock time.
func (m *HostManager) Ensure(ctx context.Context, addrs []netip.Addr) error {
	return m.EnsureAt(ctx, addrs, m.Clock.Now())
}

// EnsureAt is Ensure with an explicit effective time. Campaigns pass the
// round's grid time here: the virtual instant at which a mid-round batch
// comes up depends on how probe sleeps interleaved with the scheduler, so
// deriving behaviour (and the flakiness seed) from the live clock would
// make same-seed runs diverge.
func (m *HostManager) EnsureAt(ctx context.Context, addrs []netip.Addr, now time.Time) error {
	m.mu.Lock()
	if m.running == nil {
		m.running = make(map[netip.Addr]*mta.Host)
	}
	m.mu.Unlock()
	for _, a := range addrs {
		spec := m.World.Hosts[a]
		if spec == nil || !spec.Listens {
			continue
		}
		m.mu.Lock()
		_, up := m.running[a]
		m.mu.Unlock()
		if up {
			continue
		}
		behaviors := spec.BehaviorsAt(now)
		validateAt := spec.ValidateAt
		if len(behaviors) == 0 {
			validateAt = mta.ValidateNever
		}
		h := mta.New(mta.Config{
			Hostname:             "mx-" + a.String(),
			IP:                   a,
			Net:                  m.Fabric.Host(a.String()),
			Clock:                m.Clock,
			DNSServer:            m.DNSServer,
			DNSTimeout:           m.DNSTimeout,
			Trace:                m.Trace,
			Behaviors:            behaviors,
			ValidateAt:           validateAt,
			RejectOnFail:         spec.RejectOnFail,
			Greylist:             spec.Greylist,
			RefuseSMTP:           spec.RefuseSMTP,
			RejectData:           spec.BlankMsgFails,
			EnforceDMARC:         spec.EnforceDMARC,
			BlacklistProbesAt:    spec.BlacklistProbesAt,
			BlacklistProbesUntil: spec.BlacklistProbesUntil,
			FlakyRate:            spec.FlakyRate,
			// Hosts are recreated each measurement wave; folding the
			// virtual time into the seed varies the failure pattern
			// across rounds while staying reproducible.
			FlakySeed: spec.FlakySeed ^ now.UnixNano(),
		})
		if err := h.Start(ctx); err != nil {
			return fmt.Errorf("population: starting host %s: %w", a, err)
		}
		m.mu.Lock()
		m.running[a] = h
		m.mu.Unlock()
	}
	return nil
}

// StopAll shuts down every running host.
func (m *HostManager) StopAll() {
	m.mu.Lock()
	hosts := m.running
	m.running = make(map[netip.Addr]*mta.Host)
	m.mu.Unlock()
	for _, h := range hosts {
		h.Stop()
	}
}

// Stop shuts down the hosts for the given addresses only.
func (m *HostManager) Stop(addrs []netip.Addr) {
	m.mu.Lock()
	var toStop []*mta.Host
	for _, a := range addrs {
		if h, ok := m.running[a]; ok {
			toStop = append(toStop, h)
			delete(m.running, a)
		}
	}
	m.mu.Unlock()
	for _, h := range toStop {
		h.Stop()
	}
}

// RunningCount returns the number of live hosts.
func (m *HostManager) RunningCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.running)
}
