package population

import (
	"math"
	"testing"

	"spfail/internal/dnsmsg"
	"spfail/internal/mta"
	"spfail/internal/spfimpl"
)

func testSpec() Spec {
	s := DefaultSpec()
	s.Scale = 0.02
	s.Seed = 7
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(testSpec())
	b := MustGenerate(testSpec())
	if len(a.Domains) != len(b.Domains) || len(a.Hosts) != len(b.Hosts) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.Domains), len(a.Hosts), len(b.Domains), len(b.Hosts))
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name || a.Domains[i].Sets != b.Domains[i].Sets {
			t.Fatalf("domain %d differs: %+v vs %+v", i, a.Domains[i], b.Domains[i])
		}
	}
	for addr, ha := range a.Hosts {
		hb := b.Hosts[addr]
		if hb == nil {
			t.Fatalf("host %s missing in second world", addr)
		}
		if !ha.PatchAt.Equal(hb.PatchAt) || ha.PatchVia != hb.PatchVia ||
			!ha.BlacklistProbesAt.Equal(hb.BlacklistProbesAt) {
			t.Fatalf("host %s plans differ: %+v vs %+v", addr, ha, hb)
		}
	}
}

func TestSetSizesScale(t *testing.T) {
	spec := testSpec()
	w := MustGenerate(spec)
	alexa := len(w.DomainsIn(SetAlexaTopList))
	wantAlexa := int(float64(spec.AlexaTopListSize)*spec.Scale + 0.5)
	// Top providers may add a handful of Alexa members.
	if alexa < wantAlexa || alexa > wantAlexa+spec.TopProviderSize {
		t.Errorf("alexa size = %d, want ≈%d", alexa, wantAlexa)
	}
	twoWeek := len(w.DomainsIn(SetTwoWeekMX))
	wantTW := int(float64(spec.TwoWeekMXSize)*spec.Scale + 0.5)
	if twoWeek != wantTW {
		t.Errorf("2-week size = %d, want %d", twoWeek, wantTW)
	}
	if got := len(w.DomainsIn(SetTopProviders)); got != spec.TopProviderSize {
		t.Errorf("providers = %d", got)
	}
}

func TestOverlapsMatchTable1Shape(t *testing.T) {
	spec := testSpec()
	w := MustGenerate(spec)
	countBoth := func(a, b Set) int {
		n := 0
		for _, d := range w.Domains {
			if d.Sets.Has(a) && d.Sets.Has(b) {
				n++
			}
		}
		return n
	}
	overlap := countBoth(SetAlexaTopList, SetTwoWeekMX)
	want := int(float64(spec.OverlapAlexaTwoWeek)*spec.Scale + 0.5)
	if math.Abs(float64(overlap-want)) > float64(want)/2+2 {
		t.Errorf("alexa∩2week = %d, want ≈%d", overlap, want)
	}
	o1000 := countBoth(SetAlexa1000, SetTwoWeekMX)
	want1000 := int(float64(spec.OverlapAlexa1000TwoWeek)*spec.Scale + 0.5)
	if o1000 < want1000 {
		t.Errorf("alexa1000∩2week = %d, want ≥%d", o1000, want1000)
	}
	// Alexa 1000 is a strict subset of the Alexa Top List.
	for _, d := range w.Domains {
		if d.Sets.Has(SetAlexa1000) && !d.Sets.Has(SetAlexaTopList) {
			t.Fatalf("%s in Alexa1000 but not AlexaTopList", d.Name)
		}
	}
}

func TestTLDDistributionComDominates(t *testing.T) {
	w := MustGenerate(testSpec())
	count := func(set Set) map[string]int {
		m := map[string]int{}
		for _, d := range w.DomainsIn(set) {
			m[d.TLD]++
		}
		return m
	}
	alexa := count(SetAlexaTopList)
	total := len(w.DomainsIn(SetAlexaTopList))
	if frac := float64(alexa["com"]) / float64(total); frac < 0.45 || frac > 0.65 {
		t.Errorf("alexa com share = %.2f, want ≈0.55", frac)
	}
	tw := count(SetTwoWeekMX)
	twTotal := len(w.DomainsIn(SetTwoWeekMX))
	if frac := float64(tw["com"]) / float64(twTotal); frac < 0.38 || frac > 0.60 {
		t.Errorf("2week com share = %.2f, want ≈0.49", frac)
	}
	if tw["org"] == 0 || tw["edu"] == 0 {
		t.Error("2week should contain org and edu domains")
	}
}

func TestEveryDomainHasHosts(t *testing.T) {
	w := MustGenerate(testSpec())
	for _, d := range w.Domains {
		if len(d.Hosts) == 0 {
			t.Fatalf("domain %s has no hosts", d.Name)
		}
		for _, a := range d.Hosts {
			if w.Hosts[a] == nil {
				t.Fatalf("domain %s references unknown host %s", d.Name, a)
			}
		}
	}
}

func TestAddressConsolidation(t *testing.T) {
	// Table 3: unique addresses ≈ 40–60% of domain count for the Alexa
	// set (shared provider hosting).
	w := MustGenerate(testSpec())
	nd := len(w.DomainsIn(SetAlexaTopList))
	na := len(w.AddrsIn(SetAlexaTopList))
	ratio := float64(na) / float64(nd)
	if ratio < 0.30 || ratio > 0.75 {
		t.Errorf("addr/domain ratio = %.2f (%d/%d), want ≈0.42", ratio, na, nd)
	}
}

func TestFunnelRatesRoughlyCalibrated(t *testing.T) {
	spec := testSpec()
	spec.Scale = 0.05
	w := MustGenerate(spec)
	addrs := w.AddrsIn(SetAlexaTopList)
	var refused, smtpFail, mailFrom, data, never, blankFail int
	for _, a := range addrs {
		h := w.Hosts[a]
		switch {
		case !h.Listens:
			refused++
		case h.RefuseSMTP:
			smtpFail++
		case h.BlankMsgFails:
			blankFail++
		case h.ValidateAt == mta.ValidateAtMailFrom:
			mailFrom++
		case h.ValidateAt == mta.ValidateAtData:
			data++
		default:
			never++
		}
	}
	total := float64(len(addrs))
	if f := float64(refused) / total; f < 0.33 || f > 0.55 {
		t.Errorf("refused = %.2f, want ≈0.44 (provider hosts dilute 0.47)", f)
	}
	connected := total - float64(refused)
	if f := float64(smtpFail) / connected; f < 0.25 || f > 0.45 {
		t.Errorf("smtp failure of connected = %.2f, want ≈0.35", f)
	}
	if mailFrom == 0 || data == 0 || never == 0 {
		t.Error("funnel should populate every branch")
	}
}

func TestVulnerabilityRateAndRankEffect(t *testing.T) {
	spec := testSpec()
	spec.Scale = 0.1
	w := MustGenerate(spec)
	domains := w.DomainsIn(SetAlexaTopList)
	n := len(domains)
	var topVuln, bottomVuln, topN, bottomN int
	for _, d := range domains {
		if d.Rank == 0 {
			continue
		}
		vuln := false
		for _, a := range d.Hosts {
			if w.Hosts[a].EverVulnerable() {
				vuln = true
			}
		}
		if d.Rank <= n/4 {
			topN++
			if vuln {
				topVuln++
			}
		} else if d.Rank > 3*n/4 {
			bottomN++
			if vuln {
				bottomVuln++
			}
		}
	}
	topRate := float64(topVuln) / float64(topN)
	bottomRate := float64(bottomVuln) / float64(bottomN)
	if bottomRate <= topRate {
		t.Errorf("rank effect missing: top %.3f, bottom %.3f", topRate, bottomRate)
	}
}

func TestTopProvidersVulnerability(t *testing.T) {
	w := MustGenerate(testSpec())
	wantVuln := map[string]bool{
		"naver.com": true, "mail.ru": true, "vk.com": true,
		"wp.pl": true, "seznam.cz": true, "email.cz": true,
	}
	wantSafe := []string{"gmail.com", "outlook.com", "icloud.com", "yahoo.com"}
	for name := range wantVuln {
		d := w.ByName[name]
		if d == nil {
			t.Fatalf("provider %s missing", name)
		}
		anyVuln := false
		for _, a := range d.Hosts {
			if w.Hosts[a].EverVulnerable() {
				anyVuln = true
			}
			if !w.Hosts[a].PatchAt.IsZero() {
				t.Errorf("%s host %s has a patch plan; §7.5 says providers never patched", name, a)
			}
		}
		if !anyVuln {
			t.Errorf("provider %s should be vulnerable", name)
		}
	}
	for _, name := range wantSafe {
		d := w.ByName[name]
		if d == nil {
			t.Fatalf("provider %s missing", name)
		}
		for _, a := range d.Hosts {
			if w.Hosts[a].EverVulnerable() {
				t.Errorf("provider %s should not be vulnerable", name)
			}
		}
	}
}

func TestPatchPlansRespectTLDProfiles(t *testing.T) {
	spec := testSpec()
	spec.Scale = 0.2 // enough za/tw hosts for stable rates
	w := MustGenerate(spec)
	rates := map[string][2]int{} // tld → [patched, vulnerable]
	for _, h := range w.Hosts {
		if !h.EverVulnerable() {
			continue
		}
		domains := w.DomainsOn(h.Addr)
		if len(domains) != 1 {
			continue // skip shared hosts for clean attribution
		}
		tld := domains[0].TLD
		c := rates[tld]
		c[1]++
		if !h.PatchAt.IsZero() {
			c[0]++
		}
		rates[tld] = c
	}
	check := func(tld string, lo, hi float64) {
		c := rates[tld]
		if c[1] < 8 {
			t.Logf("skipping %s: only %d vulnerable hosts", tld, c[1])
			return
		}
		r := float64(c[0]) / float64(c[1])
		if r < lo || r > hi {
			t.Errorf("%s patch rate = %.2f (%d/%d), want [%.2f,%.2f]", tld, r, c[0], c[1], lo, hi)
		}
	}
	check("za", 0.5, 1.0)
	check("ru", 0.0, 0.15)
	check("tw", 0.0, 0.05)
	check("com", 0.05, 0.30)
}

func TestZoneSetServesMXAndA(t *testing.T) {
	w := MustGenerate(testSpec())
	z := w.BuildZones()
	var checked int
	for _, d := range w.Domains {
		if !d.HasMX {
			continue
		}
		name := dnsmsg.MustParseName(d.Name)
		rrs, exists := z.Lookup(name, dnsmsg.TypeMX)
		if !exists || len(rrs) != len(d.Hosts) {
			t.Fatalf("%s: MX = %v (exists %v), want %d", d.Name, rrs, exists, len(d.Hosts))
		}
		mx := rrs[0].Data.(dnsmsg.MX)
		arrs, _ := z.Lookup(mx.Host, dnsmsg.TypeA)
		aaaa, _ := z.Lookup(mx.Host, dnsmsg.TypeAAAA)
		if len(arrs)+len(aaaa) == 0 {
			t.Fatalf("%s: MX host %s has no address", d.Name, mx.Host)
		}
		checked++
		if checked > 50 {
			break
		}
	}
}

func TestHostSpecPatchSemantics(t *testing.T) {
	h := &HostSpec{
		Behaviors: []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		PatchAt:   TDisclosure,
	}
	if !h.Vulnerable(TInitial) {
		t.Error("should be vulnerable before patch")
	}
	if h.Vulnerable(TEnd) {
		t.Error("should be patched at study end")
	}
	bs := h.BehaviorsAt(TEnd)
	if bs[0] != spfimpl.BehaviorPatchedLibSPF2 {
		t.Errorf("BehaviorsAt(end) = %v", bs)
	}
	if h.BehaviorsAt(TInitial)[0] != spfimpl.BehaviorVulnLibSPF2 {
		t.Error("BehaviorsAt(start) should be vulnerable")
	}
}

func TestGeoRegistered(t *testing.T) {
	w := MustGenerate(testSpec())
	if w.Geo.Len() != len(w.Hosts) {
		t.Errorf("geo has %d entries for %d hosts", w.Geo.Len(), len(w.Hosts))
	}
	for a := range w.Hosts {
		if _, ok := w.Geo.Locate(a); !ok {
			t.Fatalf("host %s not geolocated", a)
		}
		break
	}
}

func TestSetStringAndHas(t *testing.T) {
	s := SetAlexaTopList | SetTwoWeekMX
	if !s.Has(SetAlexaTopList) || s.Has(SetAlexa1000) {
		t.Error("Has broken")
	}
	if s.String() != "alexa+2weekmx" {
		t.Errorf("String = %q", s.String())
	}
	if Set(0).String() != "none" {
		t.Error("zero set string")
	}
}
