package population

import (
	"strings"
	"testing"

	"spfail/internal/dnsmsg"
)

func scenarioSpec(refs ...ScenarioPackRef) Spec {
	s := testSpec()
	s.Scenarios = refs
	return s
}

func TestParseScenarioRefs(t *testing.T) {
	refs, err := ParseScenarioRefs("plus-all:0.1, dangling-include:0.05 ,no-dmarc")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScenarioPackRef{
		{Name: "plus-all", Weight: 0.1},
		{Name: "dangling-include", Weight: 0.05},
		{Name: "no-dmarc"},
	}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("ref %d = %+v, want %+v", i, refs[i], want[i])
		}
	}
	if refs, err := ParseScenarioRefs(""); err != nil || refs != nil {
		t.Errorf("empty string: refs=%v err=%v, want nil/nil", refs, err)
	}
	for _, bad := range []string{
		"plus-all:zero",
		"plus-all:0",
		"plus-all:-0.3",
		"plus-all:1.5",
		"plus-all,,no-dmarc",
	} {
		if _, err := ParseScenarioRefs(bad); err == nil {
			t.Errorf("ParseScenarioRefs(%q) = nil error, want error", bad)
		}
	}
}

func TestSpecValidateScenarios(t *testing.T) {
	if err := scenarioSpec(ScenarioPackRef{Name: "plus-all"}).Validate(); err != nil {
		t.Errorf("valid ref rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
		frag string
	}{
		{"unknown pack", scenarioSpec(ScenarioPackRef{Name: "not-a-pack"}), "unknown"},
		{"duplicate pack", scenarioSpec(
			ScenarioPackRef{Name: "plus-all"}, ScenarioPackRef{Name: "plus-all"}), "twice"},
		{"weight too big", scenarioSpec(ScenarioPackRef{Name: "plus-all", Weight: 1.5}), "weight"},
		{"weights sum past 1", scenarioSpec(
			ScenarioPackRef{Name: "plus-all", Weight: 0.6},
			ScenarioPackRef{Name: "no-dmarc", Weight: 0.6}), "exceed"},
		{"empty name", scenarioSpec(ScenarioPackRef{}), "name"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate = nil, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
	bad := testSpec()
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Error("Scale=0 accepted")
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	if _, err := Generate(scenarioSpec(ScenarioPackRef{Name: "not-a-pack"})); err == nil {
		t.Fatal("Generate accepted an invalid spec")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate accepted an invalid spec")
		}
	}()
	MustGenerate(scenarioSpec(ScenarioPackRef{Name: "not-a-pack"}))
}

// TestScenarioBaseWorldUnchanged: enabling scenarios must leave the base
// world bit-identical — same domains, sets, hosts, and patch plans — with
// only policy fields added on assigned domains.
func TestScenarioBaseWorldUnchanged(t *testing.T) {
	base := MustGenerate(testSpec())
	scen := MustGenerate(scenarioSpec(
		ScenarioPackRef{Name: "plus-all", Weight: 0.2},
		ScenarioPackRef{Name: "alignment-gap", Weight: 0.2},
	))
	if len(base.Domains) != len(scen.Domains) || len(base.Hosts) != len(scen.Hosts) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(base.Domains), len(base.Hosts), len(scen.Domains), len(scen.Hosts))
	}
	for i := range base.Domains {
		a, b := base.Domains[i], scen.Domains[i]
		if a.Name != b.Name || a.Sets != b.Sets || a.Rank != b.Rank || len(a.Hosts) != len(b.Hosts) {
			t.Fatalf("domain %d base fields differ: %+v vs %+v", i, a, b)
		}
	}
	for addr, ha := range base.Hosts {
		hb := scen.Hosts[addr]
		if hb == nil {
			t.Fatalf("host %s missing in scenario world", addr)
		}
		if !ha.PatchAt.Equal(hb.PatchAt) || ha.PatchVia != hb.PatchVia {
			t.Fatalf("host %s patch plan differs", addr)
		}
	}
}

// TestScenarioAssignmentDeterministicAndStable: same seed+mix → identical
// assignments, and adding a pack to the mix never reshuffles which
// domains the existing packs got (cumulative hash-slot walk).
func TestScenarioAssignmentDeterministicAndStable(t *testing.T) {
	mixA := scenarioSpec(ScenarioPackRef{Name: "plus-all", Weight: 0.15})
	w1 := MustGenerate(mixA)
	w2 := MustGenerate(mixA)
	assigned := func(w *World, pack string) map[string]bool {
		m := map[string]bool{}
		for _, d := range w.Domains {
			if d.Scenario == pack {
				m[d.Name] = true
			}
		}
		return m
	}
	a1, a2 := assigned(w1, "plus-all"), assigned(w2, "plus-all")
	if len(a1) == 0 {
		t.Fatal("no domains assigned plus-all at weight 0.15")
	}
	if len(a1) != len(a2) {
		t.Fatalf("same-seed assignment differs: %d vs %d", len(a1), len(a2))
	}
	for name := range a1 {
		if !a2[name] {
			t.Fatalf("%s assigned in run 1 only", name)
		}
	}
	// Growing the mix appends a slot; plus-all's slice of the hash space
	// is untouched.
	w3 := MustGenerate(scenarioSpec(
		ScenarioPackRef{Name: "plus-all", Weight: 0.15},
		ScenarioPackRef{Name: "void-lookup-heavy", Weight: 0.15},
	))
	a3 := assigned(w3, "plus-all")
	if len(a3) != len(a1) {
		t.Fatalf("adding a pack reshuffled plus-all: %d vs %d domains", len(a3), len(a1))
	}
	for name := range a1 {
		if !a3[name] {
			t.Fatalf("%s lost plus-all after mix growth", name)
		}
	}
	if len(assigned(w3, "void-lookup-heavy")) == 0 {
		t.Fatal("second pack got no domains")
	}
}

func TestTopProvidersExemptFromScenarios(t *testing.T) {
	w := MustGenerate(scenarioSpec(ScenarioPackRef{Name: "plus-all", Weight: 1}))
	for _, d := range w.Domains {
		if d.Sets.Has(SetTopProviders) {
			if d.Scenario != "" {
				t.Errorf("top provider %s got scenario %s", d.Name, d.Scenario)
			}
			continue
		}
		if d.Scenario != "plus-all" {
			t.Errorf("%s unassigned at weight 1", d.Name)
		}
	}
}

// TestBuildZonesServesScenarioRecords: pack-published policies are real
// zone data — apex SPF TXT, _dmarc TXT, and extra include-target records
// all resolve through the authoritative ZoneSet.
func TestBuildZonesServesScenarioRecords(t *testing.T) {
	w := MustGenerate(scenarioSpec(
		ScenarioPackRef{Name: "lookup-limit-buster", Weight: 0.5},
		ScenarioPackRef{Name: "alignment-gap", Weight: 0.5},
	))
	z := w.BuildZones()
	txtAt := func(owner string) string {
		rrs, ok := z.Lookup(dnsmsg.MustParseName(owner), dnsmsg.TypeTXT)
		if !ok || len(rrs) == 0 {
			return ""
		}
		return rrs[0].Data.(dnsmsg.TXT).Joined()
	}
	var busters, gaps int
	for _, d := range w.Domains {
		switch d.Scenario {
		case "lookup-limit-buster":
			busters++
			apex := txtAt(d.Name)
			if !strings.HasPrefix(apex, "v=spf1 include:") || strings.Count(apex, "include:") != 11 {
				t.Fatalf("%s apex = %q, want 11 includes", d.Name, apex)
			}
			// The long policy crosses the 255-byte TXT chunk limit and
			// must round-trip through SplitTXT/Joined.
			if len(apex) <= 255 {
				t.Fatalf("%s: policy %d bytes, expected >255", d.Name, len(apex))
			}
			for _, sub := range []string{"spf-c0", "spf-c10"} {
				if got := txtAt(sub + "." + d.Name); got != "v=spf1 -all" {
					t.Fatalf("%s.%s = %q, want include target record", sub, d.Name, got)
				}
			}
		case "alignment-gap":
			gaps++
			if got := txtAt("_dmarc." + d.Name); !strings.Contains(got, "p=reject") {
				t.Fatalf("_dmarc.%s = %q, want p=reject", d.Name, got)
			}
			if got := txtAt("outbound." + d.Name); got != "v=spf1 +all" {
				t.Fatalf("outbound.%s = %q", d.Name, got)
			}
		}
		if busters > 3 && gaps > 3 {
			return
		}
	}
	if busters == 0 || gaps == 0 {
		t.Fatalf("assignment empty: busters=%d gaps=%d", busters, gaps)
	}
}

func TestRegisterPackRejectsBadPacks(t *testing.T) {
	mustPanic := func(name string, p ScenarioPack) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterPack did not panic", name)
			}
		}()
		RegisterPack(p)
	}
	mustPanic("empty name", ScenarioPack{Mutators: []Mutator{func(*Mutation) {}}})
	mustPanic("no mutators", ScenarioPack{Name: "hollow"})
	mustPanic("duplicate", PlusAll())
}

func TestPackRegistryInventory(t *testing.T) {
	names := PackNames()
	if len(names) < 6 {
		t.Fatalf("only %d packs registered, want ≥6: %v", len(names), names)
	}
	for _, want := range []string{
		"plus-all", "dangling-include", "nested-include", "lookup-limit-buster",
		"void-lookup-heavy", "no-dmarc", "dmarc-none-relaxed", "alignment-gap",
		"alignment-strict",
	} {
		p, ok := PackByName(want)
		if !ok {
			t.Errorf("pack %s not registered", want)
			continue
		}
		if p.Description == "" || p.Weight <= 0 {
			t.Errorf("pack %s missing description or weight: %+v", want, p)
		}
	}
	byName := PacksByName()
	if len(byName) != len(names) {
		t.Errorf("PacksByName has %d entries, PackNames %d", len(byName), len(names))
	}
}
