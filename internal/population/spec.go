// Package population generates the synthetic Internet the SPFail
// reproduction measures: the domain sets (Alexa Top List, Alexa Top 1000,
// 2-Week MX, Top Email Providers) with the overlaps and TLD mixes of
// Tables 1–2, the mail-host population behind them with the reachability
// and SPF-behaviour mix of Tables 3–4, rank-dependent vulnerability
// (Figure 4), per-TLD patch propensities (Table 5), and the event-driven
// patch/notification/blacklist plans that shape the longitudinal series
// (Figures 5–8).
//
// Per the substitution rule in DESIGN.md, the generator is calibrated to
// the paper's observed marginals; the measurement pipeline never reads
// generator internals — it probes the resulting hosts over the wire.
package population

import (
	"fmt"
	"strings"
	"time"
)

// Study timeline (paper §5.3/§6.4). All midnight UTC.
var (
	TInitial      = time.Date(2021, 10, 11, 0, 0, 0, 0, time.UTC)
	TLongitudinal = time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC)
	TNotification = time.Date(2021, 11, 15, 0, 0, 0, 0, time.UTC)
	TPause        = time.Date(2021, 11, 30, 0, 0, 0, 0, time.UTC)
	TResume       = time.Date(2022, 1, 15, 0, 0, 0, 0, time.UTC)
	TDisclosure   = time.Date(2022, 1, 19, 0, 0, 0, 0, time.UTC)
	TEnd          = time.Date(2022, 2, 14, 0, 0, 0, 0, time.UTC)
)

// SetFunnel holds the per-address outcome rates for one domain set,
// matching the funnel of Table 3.
type SetFunnel struct {
	// RefuseTCP is the fraction of addresses accepting no connection.
	RefuseTCP float64
	// SMTPFailure is the fraction of *connected* addresses that fail the
	// dialogue outright (421 at banner).
	SMTPFailure float64
	// ValidateAtMailFrom is the fraction of connected addresses whose SPF
	// runs at MAIL FROM (measurable by NoMsg).
	ValidateAtMailFrom float64
	// ValidateAtData is the fraction of the *remaining* connected
	// addresses (those reaching the BlankMsg rung) that validate at
	// end-of-data.
	ValidateAtData float64
	// BlankMsgFailure is the fraction of BlankMsg-rung addresses that
	// fail at the message stage.
	BlankMsgFailure float64
}

// BehaviorMix describes the macro-expansion behaviour mix among
// SPF-validating addresses in a set (Table 4 / Table 7).
type BehaviorMix struct {
	// Vulnerable is the fraction running unpatched libSPF2.
	Vulnerable float64
	// ErroneousOther is the fraction with some other non-compliant
	// expansion; the remainder is compliant.
	ErroneousOther float64
	// MultiImpl is the fraction running a second, different SPF
	// implementation on the same box (≥2 expansion patterns).
	MultiImpl float64
	// SkipMacros is the fraction that resolve only macro-free terms
	// (observable solely through the probe policy's liveness mechanism).
	SkipMacros float64
	// ErroneousSplit apportions ErroneousOther across the non-vulnerable
	// error classes; must sum to 1.
	NoExpansion float64
	NoTruncate  float64
	NoReverse   float64
	RawValue    float64
}

// TLDShare is one row of a TLD frequency table.
type TLDShare struct {
	TLD   string
	Share float64
}

// PatchProfile captures a TLD's patching behaviour (Table 5).
type PatchProfile struct {
	// Rate is the probability an initially vulnerable host patches by
	// the study's end.
	Rate float64
	// ProactiveShare is, of patching hosts, the fraction patching in the
	// pre-notification window (za: ~98%).
	ProactiveShare float64
}

// Spec parameterizes world generation. DefaultSpec returns values
// calibrated to the paper; Scale shrinks all set sizes proportionally.
// Call Validate before handing a hand-built Spec to Generate: Generate
// panics on an invalid spec rather than silently fixing it up.
type Spec struct {
	// Seed drives every random draw; same seed, same world.
	Seed int64
	// Scale multiplies all set sizes (1.0 = the paper's population).
	// Must be positive; per-set minimum floors keep tiny worlds usable.
	Scale float64

	// Scenarios is the misconfiguration mix applied after base
	// generation: each ref assigns its pack to a deterministic,
	// weight-sized fraction of eligible domains (top providers are
	// exempt). Empty means a pure baseline world. The base world is
	// bit-identical with and without scenarios; packs only add policy
	// records and zone content on top.
	Scenarios []ScenarioPackRef

	// Set sizes at Scale = 1.0 (Table 1 diagonal).
	AlexaTopListSize int
	Alexa1000Size    int
	TwoWeekMXSize    int
	TopProviderSize  int

	// Overlaps at Scale = 1.0 (Table 1 off-diagonal).
	OverlapAlexaTwoWeek     int // domains in both Alexa Top List and 2-Week MX
	OverlapAlexa1000TwoWeek int // domains in both Alexa 1000 and 2-Week MX

	// DedicatedHostShare is the fraction of domains hosted on their own
	// address; the rest share provider infrastructure (calibrates the
	// domains-per-address ratio of Table 3).
	DedicatedHostShare float64
	// SharedProvidersPerDomain scales the shared-provider pool size.
	SharedProvidersPerDomain float64

	// Funnels per set.
	AlexaFunnel   SetFunnel
	TwoWeekFunnel SetFunnel

	// Behaviour mixes per set.
	AlexaMix   BehaviorMix
	TwoWeekMix BehaviorMix

	// RankEffect is the multiplicative vulnerability spread across ranks:
	// the bottom of the list is RankEffect× more likely vulnerable than
	// the top (Figure 4a shows ≈2).
	RankEffect float64

	// TLD shares per set (Table 2); remainders spread over a long tail.
	AlexaTLDs   []TLDShare
	TwoWeekTLDs []TLDShare

	// PatchProfiles keyed by TLD; "" is the default profile.
	PatchProfiles map[string]PatchProfile

	// PatchTimingDisclosureShare is, for non-proactive patchers, the
	// fraction patching after public disclosure (vs. during the
	// notification window).
	PatchTimingDisclosureShare float64
	// TwoWeekRateBoost and TwoWeekProactiveBoost raise the patch rate
	// and its proactive share for hosts serving only 2-Week MX domains —
	// operationally active mail domains patched earlier and more
	// (Figure 6: −10% in window 1 vs Alexa's −4%).
	TwoWeekRateBoost      float64
	TwoWeekProactiveBoost float64

	// BlacklistShare is the fraction of initially vulnerable hosts that
	// begin rejecting probe sessions partway through the study
	// (Figure 5's inconclusive growth).
	BlacklistShare float64
	// Alexa1000BlacklistShare is the same for Alexa Top 1000 hosts,
	// which went dark much more aggressively (Figure 8).
	Alexa1000BlacklistShare float64
	// Alexa1000PatchRate caps patching among Alexa 1000 domains (<10%,
	// and effectively invisible until the final snapshot — §7.5).
	Alexa1000PatchRate float64

	// NotificationBounceRate is the fraction of notification emails
	// returned undelivered (31.6%).
	NotificationBounceRate float64
	// NotificationOpenRate is the fraction of delivered notifications
	// opened (12%).
	NotificationOpenRate float64
	// GreylistShare is the fraction of hosts that greylist first
	// delivery attempts.
	GreylistShare float64
	// DMARCEnforceShare is the fraction of validating hosts that honor
	// sender DMARC policies at end-of-data (these reject the study's
	// blank probes rather than delivering them, per §6.2).
	DMARCEnforceShare float64
	// FlakyShare is the fraction of hosts with intermittent availability
	// (sessions randomly answered 421) — the source of the fluctuating
	// conclusiveness in Figure 5.
	FlakyShare float64
	// FlakyRate is the per-session failure probability of flaky hosts.
	FlakyRate float64
	// RejectOnFailShare is the fraction of validating hosts rejecting
	// the transaction when SPF fails.
	RejectOnFailShare float64
}

// DefaultSpec returns the paper-calibrated specification.
func DefaultSpec() Spec {
	return Spec{
		Seed:  1,
		Scale: 0.05,

		AlexaTopListSize: 418842,
		Alexa1000Size:    1000,
		TwoWeekMXSize:    22911,
		TopProviderSize:  20,

		OverlapAlexaTwoWeek:     2922,
		OverlapAlexa1000TwoWeek: 135,

		DedicatedHostShare:       0.40,
		SharedProvidersPerDomain: 0.02,

		// Alexa Top List address funnel (Table 3): 47% refused; of the
		// 93,164 connected — 37% SMTP failure, 13% SPF at NoMsg; of the
		// 46,469 reaching BlankMsg — 58% measured, 4.8% failed.
		AlexaFunnel: SetFunnel{
			RefuseTCP:          0.47,
			SMTPFailure:        0.367,
			ValidateAtMailFrom: 0.134,
			ValidateAtData:     0.584,
			BlankMsgFailure:    0.048,
		},
		// 2-Week MX funnel: 25% refused; of connected — 24% failure,
		// 23% at MAIL FROM; of BlankMsg rung — 53% measured, 7.9% failed.
		TwoWeekFunnel: SetFunnel{
			RefuseTCP:          0.25,
			SMTPFailure:        0.241,
			ValidateAtMailFrom: 0.232,
			ValidateAtData:     0.526,
			BlankMsgFailure:    0.079,
		},

		// Table 4: ~1 in 6 measured Alexa IPs vulnerable; 1 in 10 for
		// 2-Week MX; ~6% other-erroneous; ~6% multi-implementation.
		AlexaMix: BehaviorMix{
			Vulnerable:     0.175,
			ErroneousOther: 0.062,
			MultiImpl:      0.06,
			SkipMacros:     0.02,
			NoExpansion:    0.40,
			NoTruncate:     0.25,
			NoReverse:      0.15,
			RawValue:       0.20,
		},
		TwoWeekMix: BehaviorMix{
			Vulnerable:     0.10,
			ErroneousOther: 0.065,
			MultiImpl:      0.06,
			SkipMacros:     0.02,
			NoExpansion:    0.40,
			NoTruncate:     0.25,
			NoReverse:      0.15,
			RawValue:       0.20,
		},

		RankEffect: 2.0,

		AlexaTLDs: []TLDShare{
			{"com", 0.5511}, {"ru", 0.0474}, {"ir", 0.0411}, {"net", 0.0398},
			{"org", 0.0344}, {"in", 0.0188}, {"io", 0.0122}, {"au", 0.0112},
			{"vn", 0.0103}, {"co", 0.0101}, {"ua", 0.0099}, {"tr", 0.0098},
			{"uk", 0.0082}, {"id", 0.0072}, {"ca", 0.0068},
			// Long tail including the patch-rate table's TLDs.
			{"de", 0.0062}, {"br", 0.0060}, {"pl", 0.0055}, {"fr", 0.0050},
			{"it", 0.0048}, {"jp", 0.0045}, {"nl", 0.0040}, {"es", 0.0038},
			{"cz", 0.0035}, {"kr", 0.0032}, {"cn", 0.0030}, {"tw", 0.0026},
			{"il", 0.0024}, {"gr", 0.0022}, {"mx", 0.0022}, {"ar", 0.0020},
			{"by", 0.0015}, {"za", 0.0035}, {"eu", 0.0018}, {"us", 0.0090},
		},
		TwoWeekTLDs: []TLDShare{
			{"com", 0.4880}, {"org", 0.1722}, {"edu", 0.0920}, {"net", 0.0629},
			{"us", 0.0361}, {"gov", 0.0111}, {"uk", 0.0105}, {"cam", 0.0101},
			{"ca", 0.0075}, {"de", 0.0065}, {"work", 0.0062}, {"cn", 0.0043},
			{"au", 0.0040}, {"it", 0.0039}, {"top", 0.0038},
			{"ru", 0.0035}, {"ir", 0.0030}, {"tr", 0.0028}, {"za", 0.0012},
			{"gr", 0.0010}, {"tw", 0.0012}, {"il", 0.0012}, {"by", 0.0008},
			{"eu", 0.0010}, {"fr", 0.0020}, {"jp", 0.0015},
		},

		// Table 5 plus the com benchmark; "" is the long-tail default.
		PatchProfiles: map[string]PatchProfile{
			"za":  {Rate: 0.79, ProactiveShare: 0.98},
			"gr":  {Rate: 0.75, ProactiveShare: 0.30},
			"de":  {Rate: 0.46, ProactiveShare: 0.25},
			"eu":  {Rate: 0.29, ProactiveShare: 0.20},
			"tr":  {Rate: 0.28, ProactiveShare: 0.20},
			"com": {Rate: 0.20, ProactiveShare: 0.35},
			"ir":  {Rate: 0.03, ProactiveShare: 0.10},
			"il":  {Rate: 0.03, ProactiveShare: 0.10},
			"by":  {Rate: 0.02, ProactiveShare: 0.10},
			"ru":  {Rate: 0.02, ProactiveShare: 0.10},
			"tw":  {Rate: 0.00, ProactiveShare: 0},
			"":    {Rate: 0.16, ProactiveShare: 0.35},
		},
		PatchTimingDisclosureShare: 0.85,
		TwoWeekRateBoost:           1.4,
		TwoWeekProactiveBoost:      2.0,

		BlacklistShare:          0.07,
		Alexa1000BlacklistShare: 0.55,
		Alexa1000PatchRate:      0.08,

		NotificationBounceRate: 0.316,
		NotificationOpenRate:   0.12,
		GreylistShare:          0.05,
		DMARCEnforceShare:      0.40,
		FlakyShare:             0.15,
		FlakyRate:              0.35,
		RejectOnFailShare:      0.30,
	}
}

// Validate reports whether the spec can be generated. It replaces the
// silent fixups Generate used to apply: callers constructing specs from
// untrusted input (flags, config files) should call it and surface the
// error; Generate itself panics on an invalid spec.
func (s Spec) Validate() error {
	if s.Scale <= 0 {
		return fmt.Errorf("population: Spec.Scale must be positive, got %g", s.Scale)
	}
	total := 0.0
	seen := make(map[string]bool, len(s.Scenarios))
	for _, ref := range s.Scenarios {
		if ref.Name == "" {
			return fmt.Errorf("population: scenario ref with empty pack name")
		}
		p, ok := PackByName(ref.Name)
		if !ok {
			return fmt.Errorf("population: unknown scenario pack %q (registered: %s)",
				ref.Name, strings.Join(PackNames(), ", "))
		}
		if seen[ref.Name] {
			return fmt.Errorf("population: scenario pack %q listed twice", ref.Name)
		}
		seen[ref.Name] = true
		w := ref.refWeight(p)
		if w <= 0 || w > 1 {
			return fmt.Errorf("population: scenario pack %q: weight %g outside (0,1]", ref.Name, w)
		}
		total += w
	}
	if total > 1 {
		return fmt.Errorf("population: scenario weights sum to %g, must not exceed 1", total)
	}
	return nil
}

// scaled applies Scale to a base count, with a floor of min.
func (s *Spec) scaled(base, min int) int {
	n := int(float64(base)*s.Scale + 0.5)
	if n < min {
		n = min
	}
	return n
}
