package population

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"spfail/internal/geo"
	"spfail/internal/mta"
	"spfail/internal/spfimpl"
)

// Generate builds a deterministic world from the spec, or reports the
// spec's validation error. Generation itself cannot fail: every knob a
// caller can set wrong is caught by Spec.Validate up front.
func Generate(spec Spec) (*World, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("population: %w", err)
	}
	g := &generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		w: &World{
			Spec:   spec,
			ByName: make(map[string]*Domain),
			Hosts:  make(map[netip.Addr]*HostSpec),
			Geo:    geo.NewDB(),
		},
		usedNames: make(map[string]bool),
	}
	g.buildProviders()
	g.buildAlexa()
	g.buildTopProviders()
	g.buildTwoWeekMX()
	g.assignPatchPlans()
	g.applyScenarios()
	return g.w, nil
}

// MustGenerate is Generate for specs known valid at compile time (tests,
// examples); it panics on a validation error.
func MustGenerate(spec Spec) *World {
	w, err := Generate(spec)
	if err != nil {
		panic(err.Error())
	}
	return w
}

type provider struct {
	id      string
	country geo.Country
	hosts   []netip.Addr
	weight  float64
}

type generator struct {
	spec      Spec
	rng       *rand.Rand
	w         *World
	usedNames map[string]bool

	providers   []provider
	provWeights []float64 // cumulative
	nextV4      uint32
	nextV6      uint64
}

// ---- primitive samplers ----

var syllables = []string{
	"al", "an", "ar", "ba", "be", "bo", "ca", "ce", "co", "da", "de", "di",
	"do", "el", "en", "er", "fa", "fi", "fo", "ga", "go", "ha", "he", "in",
	"ka", "ki", "ko", "la", "le", "li", "lo", "ma", "me", "mi", "mo", "na",
	"ne", "ni", "no", "or", "pa", "pe", "po", "ra", "re", "ri", "ro", "sa",
	"se", "si", "so", "ta", "te", "ti", "to", "un", "va", "ve", "vi", "vo",
	"wa", "we", "za", "zo",
}

// ccSecondLevel lists registry-conventional second-level public suffixes
// per ccTLD: domains under these TLDs mostly register at the third level
// (example.co.za). dmarc.OrganizationalDomain must know every suffix
// generated here or relaxed-alignment verdicts come out wrong.
var ccSecondLevel = map[string][]string{
	"za": {"co.za", "org.za", "web.za"},
	"br": {"com.br", "net.br", "org.br"},
	"uk": {"co.uk", "org.uk", "ac.uk"},
	"au": {"com.au", "net.au", "org.au"},
	"jp": {"co.jp", "ne.jp"},
	"il": {"co.il", "org.il"},
	"tr": {"com.tr"},
	"tw": {"com.tw"},
	"in": {"co.in"},
	"kr": {"co.kr"},
	"cn": {"com.cn"},
	"mx": {"com.mx"},
	"ar": {"com.ar"},
}

// name invents a unique domain name under tld, registering under a
// second-level public suffix when the ccTLD's registry conventions say
// so (e.g. example.co.za rather than example.za).
func (g *generator) name(tld string) string {
	suffix := tld
	if alts, ok := ccSecondLevel[tld]; ok && g.rng.Float64() < 0.8 {
		suffix = alts[g.rng.Intn(len(alts))]
	}
	for {
		n := 2 + g.rng.Intn(3)
		s := ""
		for i := 0; i < n; i++ {
			s += syllables[g.rng.Intn(len(syllables))]
		}
		if g.rng.Intn(4) == 0 {
			s += fmt.Sprintf("%d", g.rng.Intn(100))
		}
		full := s + "." + suffix
		if !g.usedNames[full] {
			g.usedNames[full] = true
			return full
		}
	}
}

// sampleTLD draws from a share table; the residual probability goes to a
// generic tail.
var tailTLDs = []string{"info", "biz", "xyz", "online", "site", "club", "shop", "app", "dev", "me"}

func (g *generator) sampleTLD(shares []TLDShare) string {
	r := g.rng.Float64()
	acc := 0.0
	for _, s := range shares {
		acc += s.Share
		if r < acc {
			return s.TLD
		}
	}
	return tailTLDs[g.rng.Intn(len(tailTLDs))]
}

// gTLD country mix for domains without a ccTLD.
var gtldCountries = []struct {
	code   string
	weight float64
}{
	{"us", 0.42}, {"de", 0.08}, {"gb", 0.05}, {"ru", 0.05}, {"cn", 0.05},
	{"in", 0.04}, {"fr", 0.04}, {"br", 0.04}, {"ca", 0.03}, {"nl", 0.03},
	{"jp", 0.03}, {"au", 0.03}, {"kr", 0.02}, {"it", 0.02}, {"es", 0.02},
	{"pl", 0.02}, {"tr", 0.01}, {"ua", 0.01}, {"tw", 0.01},
}

func (g *generator) countryForTLD(tld string) geo.Country {
	if c, ok := geo.ByTLD(tld); ok {
		return c
	}
	r := g.rng.Float64()
	acc := 0.0
	for _, gc := range gtldCountries {
		acc += gc.weight
		if r < acc {
			c, _ := geo.ByCode(gc.code)
			return c
		}
	}
	c, _ := geo.ByCode("us")
	return c
}

// allocV4 hands out addresses from 100.64.0.0/10-like space.
func (g *generator) allocAddr() netip.Addr {
	// ~5% IPv6.
	if g.rng.Float64() < 0.05 {
		g.nextV6++
		var b [16]byte
		b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
		v := g.nextV6
		for i := 15; i >= 8; i-- {
			b[i] = byte(v)
			v >>= 8
		}
		return netip.AddrFrom16(b)
	}
	g.nextV4++
	v := g.nextV4
	return netip.AddrFrom4([4]byte{100, byte(64 + (v>>16)&0x3F), byte(v >> 8), byte(v)})
}

// ---- hosting infrastructure ----

func (g *generator) buildProviders() {
	nDomains := g.spec.scaled(g.spec.AlexaTopListSize+g.spec.TwoWeekMXSize, 50)
	n := int(float64(nDomains) * g.spec.SharedProvidersPerDomain)
	if n < 5 {
		n = 5
	}
	cum := 0.0
	for i := 0; i < n; i++ {
		country := g.countryForTLD("com")
		p := provider{
			id:      fmt.Sprintf("prov%04d", i),
			country: country,
			// Sub-Zipf popularity: hosting is concentrated, but no
			// single provider should carry a fifth of the vulnerable
			// population (domain-level series would show giant cliffs
			// the paper does not have).
			weight: 1 / math.Pow(float64(i+4), 0.8),
		}
		nHosts := 1 + g.rng.Intn(3)
		for j := 0; j < nHosts; j++ {
			a := g.allocAddr()
			p.hosts = append(p.hosts, a)
			// Provider infrastructure is better run than the long tail:
			// scale down refusal, failure, and vulnerability rates.
			f := g.spec.AlexaFunnel
			f.RefuseTCP *= 0.25
			f.SMTPFailure *= 0.5
			mix := g.spec.AlexaMix
			mix.Vulnerable *= 0.6
			g.makeHost(a, country, f, mix, 0.5)
		}
		cum += p.weight
		g.providers = append(g.providers, p)
		g.provWeights = append(g.provWeights, cum)
	}
}

func (g *generator) pickProvider() *provider {
	r := g.rng.Float64() * g.provWeights[len(g.provWeights)-1]
	i := sort.SearchFloat64s(g.provWeights, r)
	if i >= len(g.providers) {
		i = len(g.providers) - 1
	}
	return &g.providers[i]
}

// makeHost creates (or returns) the HostSpec for an address, drawing its
// behaviour from a funnel and mix. rankFrac ∈ [0,1] (0 = top rank) drives
// the vulnerability multiplier of Figure 4.
func (g *generator) makeHost(a netip.Addr, country geo.Country, f SetFunnel, mix BehaviorMix, rankFrac float64) *HostSpec {
	if h, ok := g.w.Hosts[a]; ok {
		return h
	}
	h := &HostSpec{Addr: a, Country: country, ValidateAt: mta.ValidateNever}
	g.w.Hosts[a] = h
	g.w.Geo.Register(a, country)

	if g.rng.Float64() < f.RefuseTCP {
		h.Listens = false
		return h
	}
	h.Listens = true
	r := g.rng.Float64()
	switch {
	case r < f.SMTPFailure:
		h.RefuseSMTP = true
		return h
	case r < f.SMTPFailure+f.ValidateAtMailFrom:
		h.ValidateAt = mta.ValidateAtMailFrom
	default:
		// BlankMsg rung.
		r2 := g.rng.Float64()
		switch {
		case r2 < f.BlankMsgFailure:
			h.BlankMsgFails = true
			return h
		case r2 < f.BlankMsgFailure+f.ValidateAtData:
			h.ValidateAt = mta.ValidateAtData
		default:
			return h // never validates
		}
	}

	// The host validates: choose its implementation stack.
	h.Behaviors = []spfimpl.Behavior{g.sampleBehavior(mix, rankFrac)}
	if g.rng.Float64() < mix.MultiImpl {
		second := spfimpl.BehaviorCompliant
		if h.Behaviors[0] == spfimpl.BehaviorCompliant {
			second = spfimpl.BehaviorNoTruncate
		}
		h.Behaviors = append(h.Behaviors, second)
	}
	h.Greylist = g.rng.Float64() < g.spec.GreylistShare
	h.RejectOnFail = g.rng.Float64() < g.spec.RejectOnFailShare
	h.EnforceDMARC = g.rng.Float64() < g.spec.DMARCEnforceShare
	h.Distro = g.sampleDistro()
	return h
}

func (g *generator) sampleBehavior(mix BehaviorMix, rankFrac float64) spfimpl.Behavior {
	mult := 1.0
	if g.spec.RankEffect > 1 {
		// Linear ramp whose mean is 1: top of list gets 2/(1+E), bottom
		// gets 2E/(1+E) — a spread of RankEffect×.
		e := g.spec.RankEffect
		mult = (2 + 2*(e-1)*rankFrac) / (1 + e)
	}
	pVuln := mix.Vulnerable * mult
	r := g.rng.Float64()
	switch {
	case r < pVuln:
		return spfimpl.BehaviorVulnLibSPF2
	case r < pVuln+mix.SkipMacros:
		return spfimpl.BehaviorSkipMacros
	case r < pVuln+mix.SkipMacros+mix.ErroneousOther:
		r2 := g.rng.Float64()
		switch {
		case r2 < mix.NoExpansion:
			return spfimpl.BehaviorNoExpansion
		case r2 < mix.NoExpansion+mix.NoTruncate:
			return spfimpl.BehaviorNoTruncate
		case r2 < mix.NoExpansion+mix.NoTruncate+mix.NoReverse:
			return spfimpl.BehaviorNoReverse
		default:
			return spfimpl.BehaviorRawValue
		}
	default:
		return spfimpl.BehaviorCompliant
	}
}

var distros = []struct {
	name   string
	weight float64
}{
	{"debian", 0.30}, {"ubuntu", 0.20}, {"redhat", 0.12}, {"alpine", 0.08},
	{"arch", 0.05}, {"suse", 0.05}, {"freebsd", 0.04}, {"gentoo", 0.03},
	{"netbsd", 0.01}, {"other", 0.12},
}

func (g *generator) sampleDistro() string {
	r := g.rng.Float64()
	acc := 0.0
	for _, d := range distros {
		acc += d.weight
		if r < acc {
			return d.name
		}
	}
	return "other"
}

// hostDomain attaches hosting to a domain: dedicated or shared.
func (g *generator) hostDomain(d *Domain, f SetFunnel, mix BehaviorMix, rankFrac float64) {
	country := g.countryForTLD(d.TLD)
	d.HasMX = g.rng.Float64() < 0.85
	if g.rng.Float64() < g.spec.DedicatedHostShare || len(g.providers) == 0 {
		a := g.allocAddr()
		g.makeHost(a, country, f, mix, rankFrac)
		d.Hosts = append(d.Hosts, a)
		if d.HasMX && g.rng.Float64() < 0.15 {
			b := g.allocAddr()
			g.makeHost(b, country, f, mix, rankFrac)
			d.Hosts = append(d.Hosts, b)
		}
		return
	}
	p := g.pickProvider()
	d.Provider = p.id
	n := 1
	if d.HasMX && len(p.hosts) > 1 && g.rng.Float64() < 0.5 {
		n = 2
	}
	start := g.rng.Intn(len(p.hosts))
	for i := 0; i < n; i++ {
		d.Hosts = append(d.Hosts, p.hosts[(start+i)%len(p.hosts)])
	}
}

// ---- domain sets ----

func (g *generator) buildAlexa() {
	n := g.spec.scaled(g.spec.AlexaTopListSize, 40)
	n1000 := g.spec.scaled(g.spec.Alexa1000Size, 10)
	if n1000 > n {
		n1000 = n
	}
	for rank := 1; rank <= n; rank++ {
		tld := g.sampleTLD(g.spec.AlexaTLDs)
		d := &Domain{
			Name: g.name(tld),
			TLD:  tld,
			Rank: rank,
			Sets: SetAlexaTopList,
		}
		if rank <= n1000 {
			d.Sets |= SetAlexa1000
		}
		rankFrac := float64(rank-1) / float64(n)
		g.hostDomain(d, g.spec.AlexaFunnel, g.spec.AlexaMix, rankFrac)
		g.w.Domains = append(g.w.Domains, d)
		g.w.ByName[d.Name] = d
	}
}

// topProviderSeed describes the notable email providers of §7.5.
type topProviderSeed struct {
	name       string
	tld        string
	country    string
	vulnerable bool
	alexaRank  int // 0: not on the Alexa list
}

var topProviderSeeds = []topProviderSeed{
	{"gmail.com", "com", "us", false, 0},
	{"outlook.com", "com", "us", false, 0},
	{"icloud.com", "com", "us", false, 0},
	{"yahoo.com", "com", "us", false, 0},
	{"naver.com", "com", "kr", true, 25},
	{"mail.ru", "ru", "ru", true, 40},
	{"vk.com", "com", "ru", true, 20},
	{"wp.pl", "pl", "pl", true, 310},
	{"seznam.cz", "cz", "cz", true, 420},
	{"email.cz", "cz", "cz", true, 890},
	{"qq.com", "com", "cn", false, 60},
	{"163.com", "com", "cn", false, 110},
	{"gmx.de", "de", "de", false, 0},
	{"web.de", "de", "de", false, 0},
	{"aol.com", "com", "us", false, 0},
	{"zoho.com", "com", "in", false, 0},
	{"protonmail.com", "com", "ch", false, 0},
	{"yandex.ru", "ru", "ru", false, 75},
	{"daum.net", "net", "kr", false, 0},
	{"rediffmail.com", "com", "in", false, 0},
}

func (g *generator) buildTopProviders() {
	nProviders := g.spec.TopProviderSize
	if nProviders > len(topProviderSeeds) {
		nProviders = len(topProviderSeeds)
	}
	n1000 := g.spec.scaled(g.spec.Alexa1000Size, 10)
	for _, seed := range topProviderSeeds[:nProviders] {
		country, ok := geo.ByCode(seed.country)
		if !ok {
			country, _ = geo.ByCode("us")
		}
		d := &Domain{
			Name:  seed.name,
			TLD:   seed.tld,
			Sets:  SetTopProviders,
			HasMX: true,
		}
		if seed.alexaRank > 0 {
			// Scale the rank into our (possibly shrunken) top-1000.
			rank := 1 + seed.alexaRank*n1000/1000
			if rank <= n1000 {
				d.Rank = rank
				d.Sets |= SetAlexaTopList | SetAlexa1000
			}
		}
		// Dedicated, well-run cluster of 3 mail hosts.
		behavior := spfimpl.BehaviorCompliant
		if seed.vulnerable {
			behavior = spfimpl.BehaviorVulnLibSPF2
		}
		for i := 0; i < 3; i++ {
			a := g.allocAddr()
			h := &HostSpec{
				Addr:       a,
				Country:    country,
				Listens:    true,
				ValidateAt: mta.ValidateAtMailFrom,
				Behaviors:  []spfimpl.Behavior{behavior},
				Distro:     g.sampleDistro(),
			}
			g.w.Hosts[a] = h
			g.w.Geo.Register(a, country)
			d.Hosts = append(d.Hosts, a)
		}
		g.w.Domains = append(g.w.Domains, d)
		g.w.ByName[d.Name] = d
	}
}

func (g *generator) buildTwoWeekMX() {
	n := g.spec.scaled(g.spec.TwoWeekMXSize, 30)
	overlapAll := g.spec.scaled(g.spec.OverlapAlexaTwoWeek, 3)
	overlap1000 := g.spec.scaled(g.spec.OverlapAlexa1000TwoWeek, 1)
	if overlap1000 > overlapAll {
		overlap1000 = overlapAll
	}

	alexa := g.w.DomainsIn(SetAlexaTopList)
	var top1000, rest []*Domain
	for _, d := range alexa {
		if d.Sets.Has(SetAlexa1000) {
			top1000 = append(top1000, d)
		} else {
			rest = append(rest, d)
		}
	}
	added := 0
	// Overlap with the Alexa 1000 first (Table 1: 135 domains).
	g.rng.Shuffle(len(top1000), func(i, j int) { top1000[i], top1000[j] = top1000[j], top1000[i] })
	for i := 0; i < overlap1000 && i < len(top1000); i++ {
		top1000[i].Sets |= SetTwoWeekMX
		top1000[i].MXQueries = 1 + g.rng.Intn(5000)
		added++
	}
	// Then overlap with the rest of the Alexa list.
	g.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for i := 0; i < overlapAll-overlap1000 && i < len(rest); i++ {
		rest[i].Sets |= SetTwoWeekMX
		rest[i].MXQueries = 1 + g.rng.Intn(2000)
		added++
	}
	// Fresh 2-Week-MX-only domains.
	for ; added < n; added++ {
		tld := g.sampleTLD(g.spec.TwoWeekTLDs)
		d := &Domain{
			Name:      g.name(tld),
			TLD:       tld,
			Sets:      SetTwoWeekMX,
			MXQueries: 1 + int(float64(10000)/float64(1+g.rng.Intn(500))),
		}
		g.hostDomain(d, g.spec.TwoWeekFunnel, g.spec.TwoWeekMix, 0.5)
		g.w.Domains = append(g.w.Domains, d)
		g.w.ByName[d.Name] = d
	}
}

// ---- patch, blacklist, and notification plans ----

func (g *generator) assignPatchPlans() {
	// Index domains by host once; DomainsOn would be quadratic here.
	onHost := make(map[netip.Addr][]*Domain, len(g.w.Hosts))
	for _, d := range g.w.Domains {
		for _, a := range d.Hosts {
			onHost[a] = append(onHost[a], d)
		}
	}
	// Iterate hosts in deterministic order so plans are reproducible.
	addrs := g.w.AllAddrs()
	for _, addr := range addrs {
		h := g.w.Hosts[addr]
		if !h.EverVulnerable() {
			continue
		}
		domains := onHost[h.Addr]
		inAlexa1000 := false
		isProvider := false
		tld := ""
		for _, d := range domains {
			if d.Sets.Has(SetAlexa1000) {
				inAlexa1000 = true
			}
			if d.Sets.Has(SetTopProviders) {
				isProvider = true
			}
			if tld == "" {
				tld = d.TLD
			}
		}

		// Intermittent availability (Figure 5's fluctuation).
		if g.rng.Float64() < g.spec.FlakyShare {
			h.FlakyRate = g.spec.FlakyRate
			h.FlakySeed = g.rng.Int63()
		}

		// Blacklisting plan.
		switch {
		case inAlexa1000:
			if g.rng.Float64() < g.spec.Alexa1000BlacklistShare {
				// Figure 8: Alexa 1000 conclusive results collapse around
				// mid-November, but the final snapshot with re-resolved
				// addresses was conclusive again (§7.5) — the blacklist
				// lifts shortly before the study's end.
				h.BlacklistProbesAt = TNotification.Add(-time.Duration(g.rng.Intn(10*24)) * time.Hour)
				h.BlacklistProbesUntil = TEnd.Add(-36 * time.Hour)
			}
		default:
			if g.rng.Float64() < g.spec.BlacklistShare {
				span := TResume.Sub(TLongitudinal)
				h.BlacklistProbesAt = TLongitudinal.Add(time.Duration(g.rng.Int63n(int64(span))))
			}
		}

		// Patch plan.
		if isProvider {
			h.PatchVia = PatchNone // §7.5: the notable providers never patched
			continue
		}
		if inAlexa1000 {
			if g.rng.Float64() < g.spec.Alexa1000PatchRate {
				// Visible only in the final snapshot (§7.6).
				h.PatchVia = PatchSnapshotOnly
				h.PatchAt = TEnd.Add(-time.Duration(1+g.rng.Intn(4*24)) * time.Hour)
			} else {
				h.PatchVia = PatchNone
			}
			continue
		}
		prof, ok := g.spec.PatchProfiles[tld]
		if !ok {
			prof = g.spec.PatchProfiles[""]
		}
		rate, proactive := prof.Rate, prof.ProactiveShare
		onlyTwoWeek := true
		for _, d := range domains {
			if d.Sets != SetTwoWeekMX {
				onlyTwoWeek = false
				break
			}
		}
		if onlyTwoWeek && g.spec.TwoWeekRateBoost > 0 {
			rate *= g.spec.TwoWeekRateBoost
			proactive *= g.spec.TwoWeekProactiveBoost
			if proactive > 1 {
				proactive = 1
			}
		}
		if g.rng.Float64() >= rate {
			h.PatchVia = PatchNone
			continue
		}
		switch {
		case g.rng.Float64() < proactive:
			h.PatchVia = PatchProactive
			span := TNotification.Sub(TInitial)
			h.PatchAt = TInitial.Add(24*time.Hour + time.Duration(g.rng.Int63n(int64(span-24*time.Hour))))
		case g.rng.Float64() < g.spec.PatchTimingDisclosureShare:
			h.PatchVia = PatchDisclosure
			// Exponential-ish decay after disclosure day.
			days := g.rng.ExpFloat64() * 6
			if days > 25 {
				days = 25
			}
			h.PatchAt = TDisclosure.Add(time.Duration(days*24) * time.Hour)
		default:
			h.PatchVia = PatchNotification
			span := TDisclosure.Sub(TNotification)
			h.PatchAt = TNotification.Add(24*time.Hour + time.Duration(g.rng.Int63n(int64(span-24*time.Hour))))
		}
	}
}
