package population

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// A ScenarioPack is a declarative, seed-deterministic misconfiguration
// class: a named bundle of mutators that rewrites a domain's SPF record
// set, DNS zone content, and (if the pack wants) host behaviour after
// base generation. Packs are pure data in, deterministic world mutation
// out — applying the same pack mix to the same seed yields byte-identical
// worlds, which is what the study's same-seed determinism regressions
// assert end to end.
type ScenarioPack struct {
	// Name identifies the pack in Spec.Scenarios refs, report rows, and
	// trace attributes. Lowercase kebab-case by convention.
	Name string
	// Weight is the default fraction of eligible domains that receive
	// this pack when a ScenarioPackRef does not override it.
	Weight float64
	// Description is a one-line summary for docs and inventories.
	Description string
	// Mutators run in order against each assigned domain.
	Mutators []Mutator
	// SpoofMailFromLabel, when non-empty, names the subdomain label a
	// spoofing-verdict survey should use as the RFC5321.MailFrom domain
	// (<label>.<domain>) instead of the domain apex — the attacker's
	// best move against alignment-gap style configurations.
	SpoofMailFromLabel string
}

// A Mutator applies one deterministic rewrite to a domain.
type Mutator func(*Mutation)

// Mutation is the context handed to a pack's mutators for one domain.
// All helpers write only generator-owned state (the Domain's policy
// fields and extra zone records), so mutation order across domains never
// matters; mutators that reach shared hosts through World must accept
// that a host serving several scenario domains sees every pack's edits.
type Mutation struct {
	// Domain is the domain being rewritten.
	Domain *Domain
	// World is the full world, for mutators that need host specs.
	World *World
	// Rand is a deterministic stream derived from (seed, pack, domain);
	// same-seed worlds replay it exactly.
	Rand *rand.Rand
}

// SetSPF replaces the SPF policy TXT records published at the apex.
func (m *Mutation) SetSPF(policies ...string) {
	m.Domain.SPF = append([]string(nil), policies...)
}

// SetDMARC sets the record published at _dmarc.<domain>.
func (m *Mutation) SetDMARC(record string) { m.Domain.DMARC = record }

// Sub returns label.<domain>.
func (m *Mutation) Sub(label string) string { return label + "." + m.Domain.Name }

// AddTXT publishes an extra TXT record in the domain's zone.
func (m *Mutation) AddTXT(owner, text string) {
	m.Domain.Extra = append(m.Domain.Extra, ZoneRecord{Owner: owner, TXT: text})
}

// AddA publishes an extra address record in the domain's zone.
func (m *Mutation) AddA(owner string, addr netip.Addr) {
	m.Domain.Extra = append(m.Domain.Extra, ZoneRecord{Owner: owner, Addr: addr})
}

// HostMechanisms renders ip4:/ip6: terms authorizing the domain's real
// mail hosts, so a "legitimate" policy passes for traffic from them.
func (m *Mutation) HostMechanisms() string {
	var b strings.Builder
	for i, a := range m.Domain.Hosts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if a.Is4() {
			b.WriteString("ip4:")
		} else {
			b.WriteString("ip6:")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// ScenarioPackRef selects a registered pack for a world mix.
type ScenarioPackRef struct {
	// Name of a pack registered with RegisterPack.
	Name string
	// Weight overrides the pack's default weight when > 0.
	Weight float64
}

// refWeight resolves the effective weight of a ref.
func (r ScenarioPackRef) refWeight(p ScenarioPack) float64 {
	if r.Weight > 0 {
		return r.Weight
	}
	return p.Weight
}

// ParseScenarioRefs parses a cmd-line scenario mix of the form
// "pack1:0.1,pack2:0.05,pack3" (weight omitted = pack default).
func ParseScenarioRefs(s string) ([]ScenarioPackRef, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var refs []ScenarioPackRef
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("population: empty scenario ref in %q", s)
		}
		ref := ScenarioPackRef{Name: part}
		if name, w, ok := strings.Cut(part, ":"); ok {
			var weight float64
			if _, err := fmt.Sscanf(w, "%g", &weight); err != nil {
				return nil, fmt.Errorf("population: scenario ref %q: bad weight %q", part, w)
			}
			if weight <= 0 || weight > 1 {
				return nil, fmt.Errorf("population: scenario ref %q: weight must be in (0,1]", part)
			}
			ref = ScenarioPackRef{Name: name, Weight: weight}
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

// ---- registry ----

var (
	packMu sync.RWMutex
	packs  = make(map[string]ScenarioPack)
)

// RegisterPack adds a pack to the global registry. It panics on an empty
// name, a pack with no mutators, or a duplicate registration — all
// programming errors, caught at init time.
func RegisterPack(p ScenarioPack) {
	if p.Name == "" {
		panic("population: RegisterPack: empty pack name")
	}
	if len(p.Mutators) == 0 {
		panic("population: RegisterPack: pack " + p.Name + " has no mutators")
	}
	packMu.Lock()
	defer packMu.Unlock()
	if _, dup := packs[p.Name]; dup {
		panic("population: RegisterPack: duplicate pack " + p.Name)
	}
	packs[p.Name] = p
}

// PackByName looks up a registered pack.
func PackByName(name string) (ScenarioPack, bool) {
	packMu.RLock()
	defer packMu.RUnlock()
	p, ok := packs[name]
	return p, ok
}

// PacksByName returns a copy of the registry.
func PacksByName() map[string]ScenarioPack {
	packMu.RLock()
	defer packMu.RUnlock()
	out := make(map[string]ScenarioPack, len(packs))
	for k, v := range packs {
		out[k] = v
	}
	return out
}

// PackNames returns the registered pack names, sorted.
func PackNames() []string {
	packMu.RLock()
	defer packMu.RUnlock()
	out := make([]string, 0, len(packs))
	for k := range packs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- deterministic assignment ----

// scenarioHash mixes the world seed and a string with FNV-1a. Assignment
// hashes by domain name rather than consuming the generator's rng stream,
// so enabling scenarios leaves the base world bit-identical and adding a
// pack to the mix never reshuffles which domains the other packs got.
func scenarioHash(seed int64, s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(seed >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// scenarioFloat maps a hash to [0,1).
func scenarioFloat(seed int64, s string) float64 {
	return float64(scenarioHash(seed, s)>>11) / (1 << 53)
}

// applyScenarios assigns packs to eligible domains and runs their
// mutators. Top-provider domains (gmail.com etc.) are exempt: the paper's
// notable providers keep their real-world posture.
func (g *generator) applyScenarios() {
	refs := g.spec.Scenarios
	if len(refs) == 0 {
		return
	}
	type slot struct {
		pack ScenarioPack
		cum  float64
	}
	slots := make([]slot, 0, len(refs))
	acc := 0.0
	for _, ref := range refs {
		p, ok := PackByName(ref.Name)
		if !ok {
			// Validate rejects unknown names; Generate panics there first.
			panic("population: unknown scenario pack " + ref.Name)
		}
		acc += ref.refWeight(p)
		slots = append(slots, slot{pack: p, cum: acc})
	}
	for _, d := range g.w.Domains {
		if d.Sets.Has(SetTopProviders) {
			continue
		}
		r := scenarioFloat(g.spec.Seed, d.Name)
		for _, s := range slots {
			if r < s.cum {
				g.applyPack(s.pack, d)
				break
			}
		}
	}
}

func (g *generator) applyPack(p ScenarioPack, d *Domain) {
	d.Scenario = p.Name
	m := &Mutation{
		Domain: d,
		World:  g.w,
		Rand:   rand.New(rand.NewSource(int64(scenarioHash(g.spec.Seed, p.Name+"|"+d.Name)))),
	}
	for _, mut := range p.Mutators {
		mut(m)
	}
}

// ---- built-in packs ----

// The built-in taxonomy follows the misconfiguration classes catalogued
// by the Lazy Gatekeepers and Weak Links lines of work: policies that
// authorize everyone, broken include graphs that evaluate to permerror
// through the RFC 7208 §4.6.4 processing limits, and DMARC postures that
// leave an SPF-passing spoof deliverable. Every effect is realized
// through real DNS zone data served by the sim — the SPF evaluator's
// lookup and void budgets are genuinely consumed over the wire.

// PlusAll publishes "v=spf1 +all": any source address passes.
func PlusAll() ScenarioPack {
	return ScenarioPack{
		Name:        "plus-all",
		Weight:      0.05,
		Description: "apex policy authorizes the entire Internet (+all)",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF("v=spf1 +all")
		}},
	}
}

// DanglingInclude publishes an include of a name with no SPF record;
// RFC 7208 §5.2 makes an include whose target evaluates to none a
// permerror, so the domain's mail is unverifiable.
func DanglingInclude() ScenarioPack {
	return ScenarioPack{
		Name:        "dangling-include",
		Weight:      0.05,
		Description: "include: points at a name with no SPF record (permerror)",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF("v=spf1 include:" + m.Sub("spf-ghost") + " -all")
		}},
	}
}

// NestedIncludeChain publishes a working include chain of the given
// depth ending in a policy that authorizes the real mail hosts. The
// chain resolves — legitimate mail passes — but each hop consumes one
// of the 10-lookup budget.
func NestedIncludeChain(depth int) ScenarioPack {
	if depth < 1 {
		depth = 1
	}
	if depth > 9 {
		depth = 9
	}
	return ScenarioPack{
		Name:        "nested-include",
		Weight:      0.05,
		Description: fmt.Sprintf("%d-level include chain that still resolves", depth),
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF("v=spf1 include:" + m.Sub("spf-l0") + " -all")
			for i := 0; i < depth-1; i++ {
				m.AddTXT(m.Sub(fmt.Sprintf("spf-l%d", i)),
					"v=spf1 include:"+m.Sub(fmt.Sprintf("spf-l%d", i+1))+" -all")
			}
			m.AddTXT(m.Sub(fmt.Sprintf("spf-l%d", depth-1)),
				strings.TrimSpace("v=spf1 "+m.HostMechanisms()+" -all"))
		}},
	}
}

// LookupLimitBuster publishes 11 resolvable includes; the evaluator's
// 10-lookup budget (RFC 7208 §4.6.4) trips on the 11th mechanism and
// every evaluation is a permerror, even though each include target has
// a perfectly valid record.
func LookupLimitBuster() ScenarioPack {
	return ScenarioPack{
		Name:        "lookup-limit-buster",
		Weight:      0.05,
		Description: "11 resolvable includes overrun the 10-lookup budget (permerror)",
		Mutators: []Mutator{func(m *Mutation) {
			terms := make([]string, 0, 12)
			terms = append(terms, "v=spf1")
			for i := 0; i < 11; i++ {
				sub := m.Sub(fmt.Sprintf("spf-c%d", i))
				terms = append(terms, "include:"+sub)
				m.AddTXT(sub, "v=spf1 -all")
			}
			terms = append(terms, "-all")
			m.SetSPF(strings.Join(terms, " "))
		}},
	}
}

// VoidLookupHeavy publishes a policy whose first three mechanisms point
// at names that do not exist; the two-void-lookup budget (RFC 7208
// §4.6.4) trips on the third and the policy is a permerror.
func VoidLookupHeavy() ScenarioPack {
	return ScenarioPack{
		Name:        "void-lookup-heavy",
		Weight:      0.05,
		Description: "three nonexistent a: targets overrun the void-lookup budget (permerror)",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF("v=spf1 a:" + m.Sub("void-a") + " a:" + m.Sub("void-b") +
				" a:" + m.Sub("void-c") + " ~all")
		}},
	}
}

// NoDMARC publishes a strict, correct SPF policy but no DMARC record:
// SPF rejects spoofed MAIL FROM, but nothing binds the RFC5322.From
// header, and receivers get no disposition advice.
func NoDMARC() ScenarioPack {
	return ScenarioPack{
		Name:        "no-dmarc",
		Weight:      0.05,
		Description: "strict SPF, no DMARC record published",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF(strings.TrimSpace("v=spf1 " + m.HostMechanisms() + " -all"))
		}},
	}
}

// DMARCNoneRelaxed publishes strict SPF plus a monitoring-only DMARC
// record (p=none): failures are reported, never acted on.
func DMARCNoneRelaxed() ScenarioPack {
	return ScenarioPack{
		Name:        "dmarc-none-relaxed",
		Weight:      0.05,
		Description: "strict SPF with p=none DMARC (monitoring only)",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF(strings.TrimSpace("v=spf1 " + m.HostMechanisms() + " -all"))
			m.SetDMARC("v=DMARC1; p=none; aspf=r; sp=none")
		}},
	}
}

// AlignmentGap publishes a strict apex policy and p=reject DMARC with
// relaxed SPF alignment — but an "outbound" subdomain publishes +all.
// An attacker using MAIL FROM outbound.<domain> gets an SPF pass that
// relaxed alignment accepts for the apex From header, so DMARC passes
// and the spoof is deliverable despite p=reject.
func AlignmentGap() ScenarioPack {
	return ScenarioPack{
		Name:               "alignment-gap",
		Weight:             0.05,
		Description:        "p=reject with relaxed alignment defeated by a +all subdomain",
		SpoofMailFromLabel: "outbound",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF(strings.TrimSpace("v=spf1 " + m.HostMechanisms() + " -all"))
			m.SetDMARC("v=DMARC1; p=reject; aspf=r")
			m.AddTXT(m.Sub("outbound"), "v=spf1 +all")
		}},
	}
}

// AlignmentStrict is the hardened twin of AlignmentGap: the same +all
// subdomain exists, but aspf=s means the subdomain pass does not align
// with the apex From header and the spoof is rejected.
func AlignmentStrict() ScenarioPack {
	return ScenarioPack{
		Name:               "alignment-strict",
		Weight:             0.05,
		Description:        "p=reject with strict alignment: subdomain pass does not align",
		SpoofMailFromLabel: "outbound",
		Mutators: []Mutator{func(m *Mutation) {
			m.SetSPF(strings.TrimSpace("v=spf1 " + m.HostMechanisms() + " -all"))
			m.SetDMARC("v=DMARC1; p=reject; aspf=s; sp=reject")
			m.AddTXT(m.Sub("outbound"), "v=spf1 +all")
		}},
	}
}

func init() {
	RegisterPack(PlusAll())
	RegisterPack(DanglingInclude())
	RegisterPack(NestedIncludeChain(4))
	RegisterPack(LookupLimitBuster())
	RegisterPack(VoidLookupHeavy())
	RegisterPack(NoDMARC())
	RegisterPack(DMARCNoneRelaxed())
	RegisterPack(AlignmentGap())
	RegisterPack(AlignmentStrict())
}
