package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// appendRecord renders one span as a single JSON line. The encoder is
// hand-rolled (append-style, quoted via strconv) so flushing a trace does
// not depend on encoding/json field ordering and reuses the tracer's
// scratch buffer across spans.
func appendRecord(dst []byte, traceID string, sp *Span) []byte {
	dst = append(dst, `{"trace":`...)
	dst = strconv.AppendQuote(dst, traceID)
	dst = append(dst, `,"span":`...)
	dst = strconv.AppendUint(dst, uint64(sp.id), 10)
	if sp.parent != 0 {
		dst = append(dst, `,"parent":`...)
		dst = strconv.AppendUint(dst, uint64(sp.parent), 10)
	}
	dst = append(dst, `,"name":`...)
	dst = strconv.AppendQuote(dst, sp.name)
	dst = append(dst, `,"start":`...)
	dst = appendTime(dst, sp.start)
	dst = append(dst, `,"end":`...)
	//spfail:allow lockguard span is frozen: FlushBuffer set closed under b.mu, so every gen-checked writer now no-ops
	dst = appendTime(dst, sp.end)
	//spfail:allow lockguard span is frozen once the buffer is closed (see end above)
	if len(sp.attrs) > 0 {
		dst = append(dst, `,"attrs":{`...)
		//spfail:allow lockguard span is frozen once the buffer is closed (see end above)
		for i, a := range sp.attrs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendQuote(dst, a.Key)
			dst = append(dst, ':')
			dst = strconv.AppendQuote(dst, a.Value)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, "}\n"...)
	return dst
}

func appendTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.UTC().AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, '"')
	return dst
}

// Record is the decoded form of one JSONL trace line, shared by
// cmd/spfail-trace and the determinism tests.
type Record struct {
	Trace  string            `json:"trace"`
	Span   uint32            `json:"span"`
	Parent uint32            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// ReadAll decodes every record of a JSONL trace stream, skipping blank
// lines and reporting the line number of the first malformed record.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
