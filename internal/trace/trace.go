// Package trace is the probing stack's causal span tracer: every probe can
// record the full chain of SMTP verbs, SPF evaluation steps, DNS
// transactions, fault injections, and retry decisions that led to its
// classification, exported as JSONL for the spfail-trace explain tool.
//
// The tracer is built for the same determinism contract as the rest of the
// pipeline (see docs/static-analysis.md): trace identifiers are FNV-1a
// hashes of (campaign seed, scope, probe sequence) — never wall clock or
// math/rand — and timestamps come from the injected clock.Clock, so a
// same-seed campaign on the simulated clock produces byte-identical trace
// files. Spans buffer per probe and are flushed in the campaign's merged
// input order, which is what keeps the JSONL stable regardless of how the
// probe shards interleave.
//
// Everything is nil-safe: a nil *Tracer, *Buffer, or *Span turns every
// operation into a cheap no-op, so instrumented code pays only a
// predictable branch when tracing is disabled. Hot paths should guard
// attribute construction behind a nil check:
//
//	if sp := trace.SpanFromContext(ctx); sp != nil {
//		sp.Event("dns.cache.hit", trace.String("name", name.String()))
//	}
package trace

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"time"

	"spfail/internal/clock"
)

// Attr is one structured key/value attribute on a span or event. Values
// are pre-rendered strings so records need no type switch at encode time.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Duration builds a duration attribute in Go's duration notation.
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// Options parameterizes a Tracer.
type Options struct {
	// Seed feeds the trace-ID and sampling hashes; use the campaign/world
	// seed so same-seed runs share identifiers.
	Seed int64
	// Sample is the fraction of probes traced, decided deterministically
	// per probe index. Values <= 0 or >= 1 trace everything.
	Sample float64
}

// Tracer owns the trace output stream and the host-routing table that lets
// simulated-MTA-side layers (SPF evaluation, the DNS server, the fault
// engine) attribute their work to the probe currently talking to that host.
type Tracer struct {
	opts Options

	mu      sync.Mutex
	w       io.Writer // guarded by mu
	capture io.Writer // guarded by mu
	scratch []byte    // guarded by mu
	err     error     // guarded by mu

	routeMu sync.RWMutex
	routes  map[string]*Span // guarded by routeMu
}

// New builds a tracer writing JSONL records to w. Callers buffering w are
// responsible for flushing it after the run.
func New(w io.Writer, opts Options) *Tracer {
	return &Tracer{opts: opts, w: w, routes: make(map[string]*Span)}
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// SetCapture installs (nil: removes) a secondary writer that receives a
// copy of every record FlushBuffer emits from now on. The checkpoint
// layer uses it to tee each study stage's trace bytes into that stage's
// segment. Capture writers are expected to be in-memory buffers; their
// errors are ignored, and only primary-stream errors latch into Err.
func (t *Tracer) SetCapture(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.capture = w
	t.mu.Unlock()
}

// WriteRaw appends pre-encoded JSONL bytes to the primary output stream,
// bypassing the capture tee. Resume replays the trace bytes stored in
// committed segments through here, so a resumed run's trace file is the
// byte-concatenation of the original stages' output plus the live tail.
func (t *Tracer) WriteRaw(p []byte) {
	if t == nil || len(p) == 0 {
		return
	}
	t.mu.Lock()
	if t.err == nil {
		if _, err := t.w.Write(p); err != nil {
			t.err = err
		}
	}
	t.mu.Unlock()
}

// Sampled reports whether the probe at index within scope is traced. The
// decision is a pure hash of (seed, scope, index), so it is stable across
// runs and independent of scheduling.
func (t *Tracer) Sampled(scope string, index uint64) bool {
	if t == nil {
		return false
	}
	if t.opts.Sample <= 0 || t.opts.Sample >= 1 {
		return true
	}
	h := traceHash(t.opts.Seed, "sample|"+scope, index)
	return float64(h%1_000_000)/1_000_000 < t.opts.Sample
}

// ProbeBuffer creates the span buffer for one probe, or nil when the probe
// is sampled out. scope is the campaign suite; index is the probe's
// absolute sequence number within the campaign.
func (t *Tracer) ProbeBuffer(clk clock.Clock, scope string, index uint64) *Buffer {
	if t == nil || !t.Sampled(scope, index) {
		return nil
	}
	return t.NewBuffer(clk, scope, index)
}

// bufferPool recycles Buffers across probes. A recycled Buffer bumps its
// generation counter, so spans handed out in a previous life fail the
// generation check and degrade to no-ops — the same contract a closed
// buffer gives late writers today.
var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// NewBuffer creates an unsampled (always-on) span buffer, used for
// campaign- and batch-level spans. Buffers are pooled: FlushBuffer recycles
// them, so a flushed buffer must not be flushed again.
func (t *Tracer) NewBuffer(clk clock.Clock, scope string, index uint64) *Buffer {
	if t == nil {
		return nil
	}
	if clk == nil {
		clk = clock.Real{}
	}
	b := bufferPool.Get().(*Buffer)
	// Late writers from the buffer's previous life may still be calling
	// span methods, so reinitialization happens under the buffer lock.
	b.mu.Lock()
	b.gen++
	b.t = t
	b.clk = clk
	b.id = fmt.Sprintf("%s-%06d-%016x", scope, index, traceHash(t.opts.Seed, scope, index))
	b.next = 0
	b.closed = false
	b.mu.Unlock()
	return b
}

// FlushBuffer serializes every span of b as JSONL, closes the buffer, and
// recycles it; later operations on its spans become no-ops, and the buffer
// itself must not be used again. Campaigns call this in merged input
// order, which is what makes traced runs byte-deterministic.
func (t *Tracer) FlushBuffer(b *Buffer) {
	if t == nil || b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		// Double flush: the buffer may already live a new life; touching
		// it again would corrupt the pool.
		b.mu.Unlock()
		return
	}
	b.closed = true
	id := b.id
	spans := b.spans
	for _, sp := range spans {
		if !sp.ended {
			// Defensive: an instrumentation site failed to End; pin the
			// span to its start so output stays deterministic.
			sp.end, sp.ended = sp.start, true
		}
	}
	b.mu.Unlock()

	t.mu.Lock()
	if t.err == nil {
		for _, sp := range spans {
			t.scratch = appendRecord(t.scratch[:0], id, sp)
			if _, err := t.w.Write(t.scratch); err != nil {
				t.err = err
				break
			}
			if t.capture != nil {
				_, _ = t.capture.Write(t.scratch)
			}
		}
	}
	t.mu.Unlock()

	b.scrub()
	bufferPool.Put(b)
}

// HostSpan returns the span currently adopted for host, or nil. The host
// key is the bare IP string (no port).
func (t *Tracer) HostSpan(host string) *Span {
	if t == nil {
		return nil
	}
	t.routeMu.RLock()
	sp := t.routes[host]
	t.routeMu.RUnlock()
	return sp
}

// HostEvent records an instantaneous event on the span adopted for host,
// if any — the hook for layers that know the subject host but have no
// context (the fault engine, the DNS server's fast path).
func (t *Tracer) HostEvent(host, name string, attrs ...Attr) {
	t.HostSpan(host).Event(name, attrs...)
}

// traceHash mixes (seed, scope, index) with FNV-1a.
func traceHash(seed int64, scope string, index uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(scope))
	for i := 0; i < 8; i++ {
		b[i] = byte(index >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// Buffer accumulates the spans of one trace (typically one probe). Spans
// are appended in creation order and serialized in that order at flush.
// Buffers are safe for concurrent use, but within one probe the writers
// are naturally sequential: the prober blocks on the SMTP reply while the
// MTA validates, so MTA-side spans interleave deterministically.
type Buffer struct {
	t   *Tracer     // guarded by mu (rewritten on every recycle)
	clk clock.Clock // guarded by mu (rewritten on every recycle)
	id  string      // guarded by mu (rewritten on every recycle)

	mu     sync.Mutex
	gen    uint64  // guarded by mu
	next   uint32  // guarded by mu
	spans  []*Span // guarded by mu
	closed bool    // guarded by mu
	// slab and attrSlab are the buffer's per-generation arenas: spans and
	// their initial attributes are carved out of chunked arrays, so a probe
	// with N spans costs a handful of chunk allocations instead of ~2N.
	// Handed-out memory is never reclaimed for the next generation (late
	// writers may still hold it); the chunks are simply dropped at flush.
	slab     []Span // guarded by mu
	attrSlab []Attr // guarded by mu
}

// scrub readies the buffer for recycling. The span pointer slice is
// reused; span structs and their attrs are NOT (late writers may still
// hold them — the generation bump is what neutralizes those), so the
// slabs are dropped whole. The tracer and clock are dropped too: a span
// that outlived its buffer must not be able to reach a stale tracer.
func (b *Buffer) scrub() {
	b.mu.Lock()
	for i := range b.spans {
		b.spans[i] = nil
	}
	b.spans = b.spans[:0]
	b.slab = nil
	b.attrSlab = nil
	b.t = nil
	b.clk = nil
	b.gen++
	b.mu.Unlock()
}

// TraceID returns the buffer's deterministic trace identifier.
func (b *Buffer) TraceID() string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.id
}

// allocSpan carves one span out of the buffer's current slab chunk,
// starting a fresh chunk when it is full. Must hold b.mu.
//
//spfail:locked b.mu
func (b *Buffer) allocSpan() *Span {
	if len(b.slab) == cap(b.slab) {
		n := 2 * cap(b.slab)
		if n < 16 {
			n = 16
		}
		if n > 256 {
			n = 256
		}
		b.slab = make([]Span, 0, n)
	}
	b.slab = b.slab[:len(b.slab)+1]
	return &b.slab[len(b.slab)-1]
}

// allocAttrs carves an empty attribute slice with capacity n out of the
// attr slab. The full slice expression caps it at its region, so growing
// past n reallocates instead of clobbering a neighbour. Must hold b.mu.
//
//spfail:locked b.mu
func (b *Buffer) allocAttrs(n int) []Attr {
	if len(b.attrSlab)+n > cap(b.attrSlab) {
		sz := 64
		if n > sz {
			sz = n
		}
		b.attrSlab = make([]Attr, 0, sz)
	}
	off := len(b.attrSlab)
	b.attrSlab = b.attrSlab[:off+n]
	return b.attrSlab[off : off : off+n]
}

// Root starts the buffer's root span (parent 0).
func (b *Buffer) Root(name string, attrs ...Attr) *Span {
	return b.start(nil, name, false, attrs)
}

func (b *Buffer) start(parent *Span, name string, instant bool, attrs []Attr) *Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	if b.closed || (parent != nil && parent.gen != b.gen) {
		b.mu.Unlock()
		return nil
	}
	// b.clk is rewritten on every recycle, so it may only be read under
	// the lock, after the generation check.
	now := b.clk.Now()
	b.next++
	sp := b.allocSpan()
	*sp = Span{b: b, gen: b.gen, id: b.next, name: name, start: now}
	if parent != nil {
		sp.parent = parent.id
	}
	if len(attrs) > 0 {
		// Two spare slots cover the common post-hoc SetAttrs without
		// leaving slab space behind when none arrive.
		sp.attrs = append(b.allocAttrs(len(attrs)+2), attrs...)
	}
	if instant {
		sp.end, sp.ended = now, true
	}
	b.spans = append(b.spans, sp)
	b.mu.Unlock()
	return sp
}

// Span is one timed operation in a trace. All methods are safe on nil
// receivers and after the owning buffer has been flushed or recycled: a
// span carries the buffer generation it was created under, and every
// operation re-checks it under the buffer lock.
type Span struct {
	b      *Buffer
	gen    uint64
	id     uint32
	parent uint32
	name   string
	start  time.Time
	end    time.Time // guarded by b.mu
	ended  bool      // guarded by b.mu
	attrs  []Attr    // guarded by b.mu
}

// Child starts a sub-span.
func (sp *Span) Child(name string, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	return sp.b.start(sp, name, false, attrs)
}

// Event records an instantaneous child span (start == end).
func (sp *Span) Event(name string, attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.b.start(sp, name, true, attrs)
}

// SetAttrs appends attributes to the span.
func (sp *Span) SetAttrs(attrs ...Attr) {
	if sp == nil || len(attrs) == 0 {
		return
	}
	sp.b.mu.Lock()
	if !sp.b.closed && sp.gen == sp.b.gen {
		sp.attrs = append(sp.attrs, attrs...)
	}
	sp.b.mu.Unlock()
}

// End stamps the span's end time (idempotent).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.b.mu.Lock()
	if !sp.b.closed && sp.gen == sp.b.gen && !sp.ended {
		sp.end, sp.ended = sp.b.clk.Now(), true
	}
	sp.b.mu.Unlock()
}

// Adopt routes host-keyed events (Tracer.HostSpan/HostEvent) to this span
// until the returned release function runs. Nested adoptions restore the
// previous route on release, so a transaction span can temporarily shadow
// the probe root.
func (sp *Span) Adopt(host string) (release func()) {
	if sp == nil || sp.b == nil {
		return func() {}
	}
	// Snapshot the tracer under the buffer lock: recycling rewrites b.t,
	// so the previous unlocked read here raced NewBuffer on a recycled
	// buffer (found by the lockguard pass). A span that outlived its
	// buffer sees nil and degrades to a no-op, matching the generation
	// contract everywhere else.
	sp.b.mu.Lock()
	t := sp.b.t
	sp.b.mu.Unlock()
	if t == nil {
		return func() {}
	}
	t.routeMu.Lock()
	prev := t.routes[host]
	t.routes[host] = sp
	t.routeMu.Unlock()
	return func() {
		t.routeMu.Lock()
		if t.routes[host] == sp {
			if prev != nil {
				t.routes[host] = prev
			} else {
				delete(t.routes, host)
			}
		}
		t.routeMu.Unlock()
	}
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil. It never
// allocates, so hot paths can call it unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan starts a child of the context's span, returning the derived
// context and the new span. When ctx carries no span (tracing disabled) it
// returns ctx unchanged and a nil span without allocating.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(name, attrs...)
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp), sp
}
