package trace

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"spfail/internal/clock"
)

// fixedClock always returns the same instant, so span content depends only
// on the recorded structure — handy for byte-comparison tests.
type fixedClock struct{ t time.Time }

func (f fixedClock) Now() time.Time { return f.t }

func (f fixedClock) Sleep(context.Context, time.Duration) error { return nil }

func (f fixedClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- f.t
	return ch
}

func t0() time.Time { return time.Date(2021, 10, 11, 0, 0, 0, 0, time.UTC) }

func writeSampleTrace(t *testing.T, tr *Tracer, clk clock.Clock) {
	t.Helper()
	b := tr.ProbeBuffer(clk, "s01", 42)
	if b == nil {
		t.Fatal("ProbeBuffer returned nil for unsampled tracer")
	}
	root := b.Root("probe", String("addr", "192.0.2.1"))
	smtp := root.Child("smtp.attempt", Int("attempt", 1))
	smtp.Event("smtp.cmd", String("verb", "MAIL"), Int("code", 250))
	smtp.End()
	root.SetAttrs(String("status", "vulnerable"))
	root.End()
	tr.FlushBuffer(b)
}

func TestSameSeedProducesIdenticalJSONL(t *testing.T) {
	clk := fixedClock{t0()}
	var a, b bytes.Buffer
	ta := New(&a, Options{Seed: 7})
	tb := New(&b, Options{Seed: 7})
	writeSampleTrace(t, ta, clk)
	writeSampleTrace(t, tb, clk)
	if a.Len() == 0 {
		t.Fatal("no trace output")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed traces differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestDifferentSeedChangesTraceID(t *testing.T) {
	clk := fixedClock{t0()}
	a := New(&bytes.Buffer{}, Options{Seed: 1}).NewBuffer(clk, "s01", 3)
	b := New(&bytes.Buffer{}, Options{Seed: 2}).NewBuffer(clk, "s01", 3)
	if a.TraceID() == b.TraceID() {
		t.Fatalf("trace IDs should differ across seeds: %s", a.TraceID())
	}
	if !strings.HasPrefix(a.TraceID(), "s01-000003-") {
		t.Fatalf("unexpected trace ID shape: %s", a.TraceID())
	}
}

func TestSamplingIsDeterministicAndFractional(t *testing.T) {
	tr := New(&bytes.Buffer{}, Options{Seed: 9, Sample: 0.25})
	kept := 0
	for i := uint64(0); i < 4000; i++ {
		s1 := tr.Sampled("s01", i)
		s2 := tr.Sampled("s01", i)
		if s1 != s2 {
			t.Fatalf("sampling decision unstable for index %d", i)
		}
		if s1 {
			kept++
		}
	}
	if kept < 800 || kept > 1200 {
		t.Fatalf("expected ~1000/4000 sampled at 0.25, got %d", kept)
	}
	if tr.ProbeBuffer(fixedClock{t0()}, "s01", firstUnsampled(tr)) != nil {
		t.Fatal("ProbeBuffer should be nil for an unsampled probe")
	}
}

func firstUnsampled(tr *Tracer) uint64 {
	for i := uint64(0); ; i++ {
		if !tr.Sampled("s01", i) {
			return i
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Sampled("x", 1) {
		t.Fatal("nil tracer should sample nothing")
	}
	b := tr.ProbeBuffer(fixedClock{t0()}, "x", 1)
	if b != nil {
		t.Fatal("nil tracer should hand out nil buffers")
	}
	sp := b.Root("root")
	if sp != nil {
		t.Fatal("nil buffer should hand out nil spans")
	}
	sp.SetAttrs(String("k", "v"))
	sp.Event("evt")
	sp.End()
	if c := sp.Child("child"); c != nil {
		t.Fatal("nil span should hand out nil children")
	}
	release := sp.Adopt("192.0.2.1")
	release()
	tr.FlushBuffer(b)
	tr.HostEvent("192.0.2.1", "evt")
	if tr.HostSpan("192.0.2.1") != nil {
		t.Fatal("nil tracer should route no hosts")
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	ctx, sp2 := StartSpan(context.Background(), "noop")
	if sp2 != nil || ctx != context.Background() {
		t.Fatal("StartSpan on a bare context must be a no-op")
	}
}

func TestDisabledPathDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		if sp := SpanFromContext(ctx); sp != nil {
			t.Fatal("unexpected span")
		}
		_, sp := StartSpan(ctx, "noop")
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled trace path allocates %v allocs/op, want 0", n)
	}
}

func TestHostRoutingIsLIFO(t *testing.T) {
	tr := New(&bytes.Buffer{}, Options{Seed: 1})
	b := tr.NewBuffer(fixedClock{t0()}, "s01", 0)
	outer := b.Root("outer")
	inner := outer.Child("inner")

	releaseOuter := outer.Adopt("192.0.2.9")
	releaseInner := inner.Adopt("192.0.2.9")
	if got := tr.HostSpan("192.0.2.9"); got != inner {
		t.Fatal("inner adoption should shadow outer")
	}
	releaseInner()
	if got := tr.HostSpan("192.0.2.9"); got != outer {
		t.Fatal("release should restore the previous route")
	}
	releaseOuter()
	if got := tr.HostSpan("192.0.2.9"); got != nil {
		t.Fatal("final release should clear the route")
	}
	tr.HostEvent("192.0.2.9", "dropped") // routes to nobody; must not panic
}

func TestClosedBufferDropsLateWrites(t *testing.T) {
	var out bytes.Buffer
	tr := New(&out, Options{Seed: 1})
	b := tr.NewBuffer(fixedClock{t0()}, "s01", 0)
	root := b.Root("probe")
	tr.FlushBuffer(b)
	before := out.String()

	root.Event("late") // must be dropped
	root.SetAttrs(String("late", "x"))
	if c := root.Child("late-child"); c != nil {
		t.Fatal("closed buffer should refuse new spans")
	}
	tr.FlushBuffer(b) // idempotent
	if out.String() != before {
		t.Fatal("writes after flush changed the output")
	}
	recs, err := ReadAll(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "probe" {
		t.Fatalf("unexpected records: %+v", recs)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var out bytes.Buffer
	tr := New(&out, Options{Seed: 7})
	writeSampleTrace(t, tr, fixedClock{t0()})
	recs, err := ReadAll(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	root := recs[0]
	if root.Parent != 0 || root.Name != "probe" || root.Attrs["addr"] != "192.0.2.1" || root.Attrs["status"] != "vulnerable" {
		t.Fatalf("bad root record: %+v", root)
	}
	if recs[1].Parent != root.Span || recs[1].Name != "smtp.attempt" {
		t.Fatalf("bad child record: %+v", recs[1])
	}
	evt := recs[2]
	if evt.Parent != recs[1].Span || !evt.Start.Equal(evt.End) || evt.Attrs["verb"] != "MAIL" {
		t.Fatalf("bad event record: %+v", evt)
	}
	if !root.Start.Equal(t0()) {
		t.Fatalf("timestamp should come from the injected clock: %v", root.Start)
	}
}

// TestConcurrentBuffersDoNotShareState is the race-detector guard for the
// per-shard buffer invariant: many goroutines writing to distinct buffers
// (plus host events routed to them) must not trip the race detector.
func TestConcurrentBuffersDoNotShareState(t *testing.T) {
	var out bytes.Buffer
	tr := New(&out, Options{Seed: 3})
	clk := fixedClock{t0()}
	var wg sync.WaitGroup
	bufs := make([]*Buffer, 16)
	for i := range bufs {
		bufs[i] = tr.NewBuffer(clk, "race", uint64(i))
	}
	for i, b := range bufs {
		wg.Add(1)
		go func(i int, b *Buffer) {
			defer wg.Done()
			root := b.Root("probe", Int("shard", i))
			host := "192.0.2." + string(rune('0'+i%10))
			release := root.Adopt(host)
			for j := 0; j < 50; j++ {
				sp := root.Child("op", Int("j", j))
				tr.HostEvent(host, "hostev", Int("j", j))
				sp.End()
			}
			release()
			root.End()
		}(i, b)
	}
	wg.Wait()
	for _, b := range bufs {
		tr.FlushBuffer(b)
	}
	recs, err := ReadAll(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16*(1+50+50) {
		t.Fatalf("want %d records, got %d", 16*101, len(recs))
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}
