package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// Poison-then-reuse hygiene for recycled span buffers: spans handed out in
// a buffer's previous life must be inert after the flush — no event, no
// attribute, no child may reach the buffer's next occupant, even when the
// pool hands the very same Buffer to the next probe.
func TestRecycledBufferRejectsLateWriters(t *testing.T) {
	var out bytes.Buffer
	tr := New(&out, Options{Seed: 7})
	clk := fixedClock{time.Unix(100, 0).UTC()}

	b1 := tr.NewBuffer(clk, "s01", 1)
	root1 := b1.Root("probe", String("k", "POISON-root"))
	child1 := root1.Child("spf.eval", String("k", "POISON-child"))
	child1.End()
	root1.End()
	tr.FlushBuffer(b1)
	if first := out.String(); !strings.Contains(first, "POISON-child") {
		t.Fatalf("sanity: first flush missing its own span: %q", first)
	}

	// Second probe. The pool may or may not return the same Buffer object;
	// the generation guard must neutralize probe 1's spans either way.
	out.Reset()
	b2 := tr.NewBuffer(clk, "s01", 2)
	child1.Event("late.event", String("k", "LEAK"))
	child1.SetAttrs(String("late", "LEAK"))
	if sp := child1.Child("late.child"); sp != nil {
		t.Fatal("stale parent span produced a live child")
	}
	child1.End()
	root1.Event("late.root.event", String("k", "LEAK"))

	root2 := b2.Root("probe", String("k", "fresh"))
	root2.End()
	tr.FlushBuffer(b2)

	second := out.String()
	for _, poison := range []string{"LEAK", "late.", "POISON"} {
		if strings.Contains(second, poison) {
			t.Fatalf("recycled buffer leaked %q across probes: %s", poison, second)
		}
	}
	if got := strings.Count(second, "\n"); got != 1 {
		t.Fatalf("second flush has %d span records, want exactly 1: %s", got, second)
	}
	if !strings.Contains(second, "fresh") {
		t.Fatalf("second flush lost its own span: %s", second)
	}
}

// Attribute slab isolation: growing one span's attributes past its arena
// reservation must never clobber a sibling span's attributes.
func TestAttrSlabNeighborsStayIsolated(t *testing.T) {
	var out bytes.Buffer
	tr := New(&out, Options{Seed: 1})
	b := tr.NewBuffer(fixedClock{time.Unix(100, 0).UTC()}, "s01", 0)
	root := b.Root("probe")

	a := root.Child("a", String("a0", "va0"))
	bsp := root.Child("b", String("b0", "vb0"))
	// Push a past its reservation (creation + 2 spare): the append must
	// reallocate rather than overwrite b's slab region.
	for i := 0; i < 8; i++ {
		a.SetAttrs(String("ax", "overflow"))
	}
	a.End()
	bsp.End()
	root.End()
	tr.FlushBuffer(b)

	rec := out.String()
	if !strings.Contains(rec, `"b0":"vb0"`) {
		t.Fatalf("sibling attribute clobbered by overflowing neighbor: %s", rec)
	}
	if strings.Count(rec, "overflow") != 8 {
		t.Fatalf("overflowing span lost attributes: %s", rec)
	}
}

// A late writer racing the flush/recycle/reissue cycle must never corrupt
// buffers or deadlock. Run with -race (CI does) to verify the generation
// handshake is properly synchronized.
func TestBufferRecycleRacesLateWriters(t *testing.T) {
	tr := New(&bytes.Buffer{}, Options{Seed: 3})
	clk := fixedClock{time.Unix(100, 0).UTC()}

	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		b := tr.NewBuffer(clk, "race", uint64(i))
		root := b.Root("probe")
		sp := root.Child("work")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sp.Event("late", Int("j", j))
				sp.SetAttrs(Int("j", j))
				sp.Child("late.child").End()
			}
		}()
		root.End()
		tr.FlushBuffer(b) // races the writer above
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}
