package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"spfail/internal/core"
	"spfail/internal/faults"
	"spfail/internal/retry"
)

// Stage is one segment's payload: everything the study needs to fast-
// forward past a completed stage and leave the campaign's mutable state
// exactly where an uninterrupted run would have it. Aggregated results
// (vulnerable sets, analysis, report tables) are deliberately absent —
// the resumed run recomputes them from these rows, so aggregation bugs
// cannot be frozen into checkpoints.
type Stage struct {
	// Clock is the virtual-clock position when the stage finished; resume
	// sleeps the simulated clock forward to it.
	Clock time.Time `json:"clock"`
	// ProbeSeq is the campaign's probe-label counter after the stage
	// (label generation consumes one slot per probed address).
	ProbeSeq uint64 `json:"probe_seq,omitempty"`
	// Breakers is the campaign's circuit-breaker state after the stage.
	Breakers []retry.BreakerSnapshot `json:"breakers,omitempty"`
	// Faults is the fault engine's per-(rule, host) event counters after
	// the stage; later rounds hash these to draw injection decisions.
	Faults []faults.SeqEntry `json:"faults,omitempty"`
	// Targets is the stage's DNS resolution result, when it resolved.
	Targets []TargetRow `json:"targets,omitempty"`
	// Outcomes is the stage's probe results, when it probed.
	Outcomes []OutcomeRow `json:"outcomes,omitempty"`
	// Extra carries stage-specific results (spoof verdicts, the
	// notification record) the generic fields cannot.
	Extra json.RawMessage `json:"extra,omitempty"`
	// Trace is the raw trace-stream bytes the stage emitted, replayed
	// verbatim on resume so the trace file stays byte-identical.
	Trace []byte `json:"trace,omitempty"`
	// Resources is the stage's resource accounting (obs.StageResources),
	// kept as an opaque side channel: it records what the stage cost when
	// it actually executed, is restored verbatim on resume, and never
	// feeds any seeded output byte.
	Resources json.RawMessage `json:"resources,omitempty"`
}

// EncodeStage serializes a stage payload for Store.Commit.
func EncodeStage(st *Stage) ([]byte, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding stage: %w", err)
	}
	return b, nil
}

// DecodeStage parses a segment payload previously produced by
// EncodeStage. Unknown fields are rejected: a payload this build cannot
// fully interpret cannot seed a byte-identical resume.
func DecodeStage(payload []byte) (*Stage, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var st Stage
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: %w: malformed stage payload: %v", ErrResumeImpossible, err)
	}
	return &st, nil
}

// TargetRow is the serialized form of one resolved measurement target.
// It mirrors measure.Target without importing measure (which sits above
// this package in the dependency order).
type TargetRow struct {
	Domain string   `json:"domain"`
	Addrs  []string `json:"addrs,omitempty"`
	HasMX  bool     `json:"has_mx,omitempty"`
}

// TargetAddrs parses a row's addresses back to netip form.
func (t TargetRow) TargetAddrs() ([]netip.Addr, error) {
	if len(t.Addrs) == 0 {
		return nil, nil
	}
	out := make([]netip.Addr, 0, len(t.Addrs))
	for _, s := range t.Addrs {
		a, err := netip.ParseAddr(s)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w: target %s address %q: %v", ErrResumeImpossible, t.Domain, s, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// OutcomeRow is the serialized form of one probe outcome. core.Outcome
// carries an error value, which does not survive a JSON round trip, so
// the row stores its message and restores a plain error; nothing
// downstream of the campaign inspects the error beyond its text.
type OutcomeRow struct {
	Addr        string           `json:"addr"`
	Status      core.Status      `json:"status"`
	Method      core.ProbeMethod `json:"method,omitempty"`
	NoMsgRan    bool             `json:"no_msg_ran,omitempty"`
	BlankMsgRan bool             `json:"blank_msg_ran,omitempty"`
	Observation core.Observation `json:"observation"`
	FailStage   string           `json:"fail_stage,omitempty"`
	Err         string           `json:"err,omitempty"`
	IDs         []string         `json:"ids,omitempty"`
	Username    string           `json:"username,omitempty"`
	Attempts    int              `json:"attempts,omitempty"`
	FailReason  string           `json:"fail_reason,omitempty"`
}

// OutcomeRows converts campaign outcomes to their serialized form.
func OutcomeRows(outs []core.Outcome) []OutcomeRow {
	if len(outs) == 0 {
		return nil
	}
	rows := make([]OutcomeRow, len(outs))
	for i, o := range outs {
		rows[i] = OutcomeRow{
			Addr:        o.Addr,
			Status:      o.Status,
			Method:      o.Method,
			NoMsgRan:    o.NoMsgRan,
			BlankMsgRan: o.BlankMsgRan,
			Observation: o.Observation,
			FailStage:   o.FailStage,
			IDs:         o.IDs,
			Username:    o.Username,
			Attempts:    o.Attempts,
			FailReason:  o.FailReason,
		}
		if o.Err != nil {
			rows[i].Err = o.Err.Error()
		}
	}
	return rows
}

// Restore converts serialized rows back to campaign outcomes.
func RestoreOutcomes(rows []OutcomeRow) []core.Outcome {
	if len(rows) == 0 {
		return nil
	}
	outs := make([]core.Outcome, len(rows))
	for i, r := range rows {
		outs[i] = core.Outcome{
			Addr:        r.Addr,
			Status:      r.Status,
			Method:      r.Method,
			NoMsgRan:    r.NoMsgRan,
			BlankMsgRan: r.BlankMsgRan,
			Observation: r.Observation,
			FailStage:   r.FailStage,
			IDs:         r.IDs,
			Username:    r.Username,
			Attempts:    r.Attempts,
			FailReason:  r.FailReason,
		}
		if r.Err != "" {
			outs[i].Err = errors.New(r.Err)
		}
	}
	return outs
}
