// Package checkpoint is the study's durable incremental progress store:
// an append-only sequence of per-stage segments (resolve, spoof survey,
// initial measurement, notification, one per longitudinal round, final
// snapshot) under a manifest that names, sizes, and checksums each one.
// It replaces the ad-hoc per-probe CSV stream spfail-study used to call
// a checkpoint: instead of a flat row log that could only be grepped, a
// killed study restarts from the manifest and replays to a final report,
// scenarios table, and trace JSONL byte-identical to an uninterrupted
// same-seed run (see docs/checkpoints.md for the determinism model).
//
// Commit protocol, in order, per segment:
//
//  1. the payload is written to a temporary file in the store directory,
//     fsynced, and renamed to its final segments/ name;
//  2. the manifest — now listing the new segment with its FNV-1a
//     checksum — is written to a temporary file, fsynced, and renamed
//     over manifest.json.
//
// The manifest is the sole source of truth: a crash between the two
// renames leaves an orphan segment file that the next resume ignores and
// the next commit overwrites. Corruption detected at resume (missing or
// truncated segment, checksum mismatch, malformed manifest) fails with
// ErrResumeImpossible rather than silently dropping rounds.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"spfail/internal/telemetry"
)

// ErrResumeImpossible is wrapped by every error that means the store
// cannot seed a byte-identical resume: a corrupt or missing segment, a
// malformed manifest, or a fingerprint from a different configuration.
// Callers should start a fresh run (losing the checkpoint) or restore
// the directory; nothing in this package ever repairs silently.
var ErrResumeImpossible = errors.New("resume impossible")

// manifestVersion is bumped on any incompatible layout change.
const manifestVersion = 1

// manifestName is the store's root file; segments live in segmentsDir.
const (
	manifestName = "manifest.json"
	segmentsDir  = "segments"
)

// Manifest is the store's committed state: the configuration fingerprint
// it was created under and the ordered segment list.
type Manifest struct {
	Version     int           `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	Segments    []SegmentMeta `json:"segments"`
}

// SegmentMeta describes one committed segment. Checksum is the FNV-1a
// (64-bit) hash of the payload bytes, hex-encoded; Probes counts the
// measurement outcomes inside, so readers can report durable progress
// without decoding payloads.
type SegmentMeta struct {
	Seq      int    `json:"seq"`
	Name     string `json:"name"`
	File     string `json:"file"`
	Size     int64  `json:"size"`
	Checksum string `json:"checksum_fnv64a"`
	Probes   int    `json:"probes,omitempty"`
}

// Store is the writer half: an append-only segment log under one
// directory. A Store is safe for use from one writer goroutine;
// concurrent readers use Reader, which snapshots the manifest file and
// never sees a half-committed segment.
type Store struct {
	dir string
	reg *telemetry.Registry

	mu       sync.Mutex
	manifest Manifest // guarded by mu
}

// Create initializes dir as a fresh store stamped with fingerprint,
// removing any segments and manifest a previous run left behind.
func Create(dir, fingerprint string, reg *telemetry.Registry) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, segmentsDir), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := clearStale(dir); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, reg: reg, manifest: Manifest{Version: manifestVersion, Fingerprint: fingerprint}}
	if err := s.writeManifestLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads dir for resume, verifying the manifest, the fingerprint,
// and every committed segment's size and checksum up front, so a
// corrupt store fails before any probing starts.
func Open(dir, fingerprint string, reg *telemetry.Registry) (*Store, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint: %w: store fingerprint %s does not match this run's %s (spec or config drift)",
			ErrResumeImpossible, m.Fingerprint, fingerprint)
	}
	s := &Store{dir: dir, reg: reg, manifest: m}
	for _, meta := range m.Segments {
		if _, err := s.Read(meta); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Segments returns a copy of the committed segment list in commit order.
func (s *Store) Segments() []SegmentMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentMeta(nil), s.manifest.Segments...)
}

// Commit appends one segment: payload becomes segment file number
// len(segments) named name, and the manifest is atomically replaced to
// include it. probes is recorded for progress reporting.
func (s *Store) Commit(name string, probes int, payload []byte) (SegmentMeta, error) {
	if err := validSegmentName(name); err != nil {
		return SegmentMeta{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := len(s.manifest.Segments)
	meta := SegmentMeta{
		Seq:      seq,
		Name:     name,
		File:     fmt.Sprintf("%04d-%s.seg", seq, name),
		Size:     int64(len(payload)),
		Checksum: fmt.Sprintf("%016x", checksum(payload)),
		Probes:   probes,
	}
	if err := atomicWrite(filepath.Join(s.dir, segmentsDir, meta.File), payload); err != nil {
		return SegmentMeta{}, fmt.Errorf("checkpoint: committing segment %s: %w", name, err)
	}
	s.manifest.Segments = append(s.manifest.Segments, meta)
	if err := s.writeManifestLocked(); err != nil {
		s.manifest.Segments = s.manifest.Segments[:seq]
		return SegmentMeta{}, err
	}
	s.reg.Counter("checkpoint.store.commits").Inc()
	s.reg.Counter("checkpoint.store.bytes").Add(int64(len(payload)))
	return meta, nil
}

// Read returns a committed segment's payload, verifying its checksum.
func (s *Store) Read(meta SegmentMeta) ([]byte, error) {
	return readSegment(s.dir, meta)
}

// writeManifestLocked atomically replaces manifest.json with the current
// in-memory manifest. Callers hold s.mu.
//
//spfail:locked s.mu
func (s *Store) writeManifestLocked() error {
	b, err := json.MarshalIndent(&s.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	if err := atomicWrite(filepath.Join(s.dir, manifestName), b); err != nil {
		return fmt.Errorf("checkpoint: committing manifest: %w", err)
	}
	return nil
}

// readManifest loads and sanity-checks dir's manifest.
func readManifest(dir string) (Manifest, error) {
	var m Manifest
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, fmt.Errorf("checkpoint: %w: reading manifest: %v", ErrResumeImpossible, err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("checkpoint: %w: malformed manifest: %v", ErrResumeImpossible, err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("checkpoint: %w: manifest version %d, this build writes %d",
			ErrResumeImpossible, m.Version, manifestVersion)
	}
	for i, meta := range m.Segments {
		if meta.Seq != i {
			return m, fmt.Errorf("checkpoint: %w: manifest segment %d carries seq %d", ErrResumeImpossible, i, meta.Seq)
		}
	}
	return m, nil
}

// readSegment loads one segment payload and verifies size and checksum.
func readSegment(dir string, meta SegmentMeta) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(dir, segmentsDir, meta.File))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w: segment %s: %v", ErrResumeImpossible, meta.Name, err)
	}
	if int64(len(b)) != meta.Size {
		return nil, fmt.Errorf("checkpoint: %w: segment %s is %d bytes, manifest records %d (truncated write?)",
			ErrResumeImpossible, meta.Name, len(b), meta.Size)
	}
	if got := fmt.Sprintf("%016x", checksum(b)); got != meta.Checksum {
		return nil, fmt.Errorf("checkpoint: %w: segment %s checksum %s, manifest records %s",
			ErrResumeImpossible, meta.Name, got, meta.Checksum)
	}
	return b, nil
}

// clearStale removes the manifest and any segment files from a previous
// run so a fresh Create cannot interleave old and new segments.
func clearStale(dir string) error {
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: clearing stale manifest: %w", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, segmentsDir))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, segmentsDir, e.Name())); err != nil {
			return fmt.Errorf("checkpoint: clearing stale segment: %w", err)
		}
	}
	return nil
}

// validSegmentName keeps segment names path-safe (they become file name
// components).
func validSegmentName(name string) error {
	if name == "" {
		return fmt.Errorf("checkpoint: empty segment name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("checkpoint: segment name %q contains %q; use lowercase, digits, - and _", name, r)
		}
	}
	return nil
}

// atomicWrite writes data to path via a temporary file in the same
// directory, fsyncing before the rename so the rename never publishes a
// partially-written file, then fsyncs the directory so the rename itself
// is durable.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory; filesystems that do not support directory
// sync (some CI overlays) report that as success.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// checksum is the store's segment hash: FNV-1a over the payload bytes.
func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
