package checkpoint

import (
	"strings"

	"spfail/internal/telemetry"
)

// Reader is the concurrent-observer half of the store: it loads one
// committed manifest and serves segments from that snapshot. Because a
// Commit publishes the segment file before the manifest rename, every
// segment a Reader's manifest lists is fully on disk — a reader opened
// mid-commit simply does not see the in-flight segment yet. Open a new
// Reader to observe later commits; an existing Reader's view never
// changes.
type Reader struct {
	dir      string
	manifest Manifest
}

// OpenReader snapshots dir's committed state. Unlike Open it does not
// pre-verify segment payloads (readers poll while a writer is live;
// verification happens on Read) and does not check the fingerprint
// (observers do not need the run's config).
func OpenReader(dir string, reg *telemetry.Registry) (*Reader, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	reg.Counter("checkpoint.reader.opens").Inc()
	return &Reader{dir: dir, manifest: m}, nil
}

// Fingerprint returns the configuration fingerprint the store was
// created under.
func (r *Reader) Fingerprint() string { return r.manifest.Fingerprint }

// Segments returns the snapshot's committed segment list in commit order.
func (r *Reader) Segments() []SegmentMeta {
	return append([]SegmentMeta(nil), r.manifest.Segments...)
}

// Read returns one segment's payload, verifying size and checksum
// against the snapshot's manifest.
func (r *Reader) Read(meta SegmentMeta) ([]byte, error) {
	return readSegment(r.dir, meta)
}

// Progress summarizes durable progress for health endpoints.
type Progress struct {
	// Segments is the number of committed segments.
	Segments int
	// Rounds is the number of committed longitudinal rounds (segments
	// named round-*).
	Rounds int
	// Probes is the total probe count across committed segments.
	Probes int
}

// Progress computes the snapshot's durable-progress summary from
// manifest metadata alone (no payload reads).
func (r *Reader) Progress() Progress {
	var p Progress
	p.Segments = len(r.manifest.Segments)
	for _, meta := range r.manifest.Segments {
		p.Probes += meta.Probes
		if strings.HasPrefix(meta.Name, "round-") {
			p.Rounds++
		}
	}
	return p
}
