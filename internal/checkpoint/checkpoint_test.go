package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spfail/internal/core"
	"spfail/internal/faults"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
)

// goldenStage is a fixed fully-populated payload; the encoding tests pin
// its byte form so accidental schema drift (renamed field, changed
// omitempty) fails loudly instead of silently invalidating old stores.
func goldenStage(t *testing.T) *Stage {
	t.Helper()
	return &Stage{
		Clock:    time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC),
		ProbeSeq: 42,
		Breakers: []retry.BreakerSnapshot{
			{Key: "203.0.113.5", State: retry.BreakerOpen, Failures: 3,
				OpenUntil: time.Date(2022, 3, 1, 0, 30, 0, 0, time.UTC)},
		},
		Faults: []faults.SeqEntry{{Key: "dns-timeout|0|mx1.example.org", Seq: 7}},
		Targets: []TargetRow{
			{Domain: "example.org", Addrs: []string{"203.0.113.5", "2001:db8::5"}, HasMX: true},
			{Domain: "no-mx.example", Addrs: []string{"203.0.113.9"}},
		},
		Outcomes: []OutcomeRow{
			{Addr: "203.0.113.5", Status: core.StatusSPFMeasured, Method: core.MethodNoMsg,
				NoMsgRan: true, Observation: core.Observation{PolicyFetched: true, LivenessSeen: true},
				IDs: []string{"k7f2q"}, Username: "mmj7yzdm0tbk", Attempts: 1},
			{Addr: "203.0.113.9", Status: core.StatusSMTPFailure, FailStage: core.StageHello,
				Err: "rig: banner timeout", Attempts: 2, FailReason: "attempts exhausted"},
		},
		Extra: []byte(`{"note":"spoof"}`),
		Trace: []byte(`{"probe":"k7f2q"}` + "\n"),
	}
}

const goldenStageJSON = `{"clock":"2022-03-01T00:00:00Z","probe_seq":42,` +
	`"breakers":[{"key":"203.0.113.5","state":"open","failures":3,"open_until":"2022-03-01T00:30:00Z"}],` +
	`"faults":[{"key":"dns-timeout|0|mx1.example.org","seq":7}],` +
	`"targets":[{"domain":"example.org","addrs":["203.0.113.5","2001:db8::5"],"has_mx":true},` +
	`{"domain":"no-mx.example","addrs":["203.0.113.9"]}],` +
	`"outcomes":[{"addr":"203.0.113.5","status":"spf-measured","method":"NoMsg","no_msg_ran":true,` +
	`"observation":{"PolicyFetched":true,"LivenessSeen":true,"Patterns":null,"Classes":null},` +
	`"ids":["k7f2q"],"username":"mmj7yzdm0tbk","attempts":1},` +
	`{"addr":"203.0.113.9","status":"smtp-failure",` +
	`"observation":{"PolicyFetched":false,"LivenessSeen":false,"Patterns":null,"Classes":null},` +
	`"fail_stage":"hello","err":"rig: banner timeout","attempts":2,"fail_reason":"attempts exhausted"}],` +
	`"extra":{"note":"spoof"},` +
	`"trace":"eyJwcm9iZSI6Ims3ZjJxIn0K"}`

func TestStageEncodingGolden(t *testing.T) {
	b, err := EncodeStage(goldenStage(t))
	if err != nil {
		t.Fatalf("EncodeStage: %v", err)
	}
	if string(b) != goldenStageJSON {
		t.Errorf("stage encoding drifted:\n got %s\nwant %s", b, goldenStageJSON)
	}
	st, err := DecodeStage(b)
	if err != nil {
		t.Fatalf("DecodeStage: %v", err)
	}
	round, err := EncodeStage(st)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(round) != string(b) {
		t.Errorf("encode/decode/encode not stable:\n got %s\nwant %s", round, b)
	}
}

func TestDecodeStageRejectsUnknownFields(t *testing.T) {
	_, err := DecodeStage([]byte(`{"clock":"2022-03-01T00:00:00Z","mystery":1}`))
	if !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("unknown field: got %v, want ErrResumeImpossible", err)
	}
}

func TestOutcomeRowRoundTrip(t *testing.T) {
	in := []core.Outcome{
		{Addr: "203.0.113.5", Status: core.StatusSPFMeasured, Method: core.MethodBlankMsg,
			NoMsgRan: true, BlankMsgRan: true,
			Observation: core.Observation{PolicyFetched: true, Patterns: []string{"p"}, Classes: []core.BehaviorClass{core.ClassVulnerable}},
			IDs:         []string{"a", "b"}, Username: "abuse", Attempts: 2},
		{Addr: "203.0.113.9", Status: core.StatusConnectionRefused, FailStage: core.StageDial,
			Err: errors.New("connection refused"), Attempts: 1},
	}
	out := RestoreOutcomes(OutcomeRows(in))
	if len(out) != len(in) {
		t.Fatalf("round trip length: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.Addr != want.Addr || got.Status != want.Status || got.Method != want.Method ||
			got.NoMsgRan != want.NoMsgRan || got.BlankMsgRan != want.BlankMsgRan ||
			got.FailStage != want.FailStage || got.Username != want.Username ||
			got.Attempts != want.Attempts || got.FailReason != want.FailReason {
			t.Errorf("outcome %d mismatch: got %+v, want %+v", i, got, want)
		}
		switch {
		case want.Err == nil && got.Err != nil:
			t.Errorf("outcome %d: restored error %v, want nil", i, got.Err)
		case want.Err != nil && (got.Err == nil || got.Err.Error() != want.Err.Error()):
			t.Errorf("outcome %d: restored error %v, want %v", i, got.Err, want.Err)
		}
	}
}

func TestTargetRowAddrs(t *testing.T) {
	row := TargetRow{Domain: "example.org", Addrs: []string{"203.0.113.5", "2001:db8::5"}}
	addrs, err := row.TargetAddrs()
	if err != nil {
		t.Fatalf("TargetAddrs: %v", err)
	}
	if len(addrs) != 2 || addrs[0].String() != "203.0.113.5" || addrs[1].String() != "2001:db8::5" {
		t.Errorf("parsed addrs: %v", addrs)
	}
	if _, err := (TargetRow{Domain: "d", Addrs: []string{"not-an-ip"}}).TargetAddrs(); !errors.Is(err, ErrResumeImpossible) {
		t.Errorf("bad addr: got %v, want ErrResumeImpossible", err)
	}
}

func TestStoreCommitAndReopen(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	s, err := Create(dir, "fp-1", reg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	m1, err := s.Commit("resolve", 0, []byte("targets"))
	if err != nil {
		t.Fatalf("Commit resolve: %v", err)
	}
	m2, err := s.Commit("round-000", 12, []byte("outcomes"))
	if err != nil {
		t.Fatalf("Commit round: %v", err)
	}
	if m1.Seq != 0 || m1.File != "0000-resolve.seg" || m2.Seq != 1 || m2.File != "0001-round-000.seg" {
		t.Errorf("segment metas: %+v, %+v", m1, m2)
	}
	if got := reg.Counter("checkpoint.store.commits").Value(); got != 2 {
		t.Errorf("checkpoint.store.commits = %d, want 2", got)
	}
	if got := reg.Counter("checkpoint.store.bytes").Value(); got != int64(len("targets")+len("outcomes")) {
		t.Errorf("checkpoint.store.bytes = %d", got)
	}

	re, err := Open(dir, "fp-1", telemetry.New())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	segs := re.Segments()
	if len(segs) != 2 || segs[0].Name != "resolve" || segs[1].Name != "round-000" {
		t.Fatalf("reopened segments: %+v", segs)
	}
	b, err := re.Read(segs[1])
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(b) != "outcomes" {
		t.Errorf("payload: %q", b)
	}
}

func TestCreateClearsStaleStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "fp-1", telemetry.New())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Commit("resolve", 0, []byte("old")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	s2, err := Create(dir, "fp-2", telemetry.New())
	if err != nil {
		t.Fatalf("re-Create: %v", err)
	}
	if n := len(s2.Segments()); n != 0 {
		t.Errorf("fresh store has %d segments", n)
	}
	entries, err := os.ReadDir(filepath.Join(dir, segmentsDir))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 0 {
		t.Errorf("stale segment files survived: %v", entries)
	}
}

func TestOpenFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "fp-1", telemetry.New()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	_, err := Open(dir, "fp-2", telemetry.New())
	if !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("fingerprint mismatch: got %v, want ErrResumeImpossible", err)
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("error should name the fingerprint: %v", err)
	}
}

func TestOpenMissingManifest(t *testing.T) {
	_, err := Open(t.TempDir(), "fp", telemetry.New())
	if !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("missing manifest: got %v, want ErrResumeImpossible", err)
	}
}

// corruptStore builds a two-segment store and returns its directory and
// the second segment's path for the corruption tests to mangle.
func corruptStore(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Create(dir, "fp", telemetry.New())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Commit("resolve", 0, []byte("targets-payload")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	meta, err := s.Commit("round-000", 3, []byte("outcomes-payload"))
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return dir, filepath.Join(dir, segmentsDir, meta.File)
}

func TestOpenTruncatedSegment(t *testing.T) {
	dir, seg := corruptStore(t)
	if err := os.Truncate(seg, 4); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	_, err := Open(dir, "fp", telemetry.New())
	if !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("truncated segment: got %v, want ErrResumeImpossible", err)
	}
	if !strings.Contains(err.Error(), "round-000") {
		t.Errorf("error should name the segment: %v", err)
	}
}

func TestOpenBitFlippedSegment(t *testing.T) {
	dir, seg := corruptStore(t)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, err = Open(dir, "fp", telemetry.New())
	if !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("bit flip: got %v, want ErrResumeImpossible", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("error should name the checksum: %v", err)
	}
}

func TestOpenMissingSegment(t *testing.T) {
	dir, seg := corruptStore(t)
	if err := os.Remove(seg); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := Open(dir, "fp", telemetry.New()); !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("missing segment: got %v, want ErrResumeImpossible", err)
	}
}

func TestOpenMalformedManifest(t *testing.T) {
	dir, _ := corruptStore(t)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{nope"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Open(dir, "fp", telemetry.New()); !errors.Is(err, ErrResumeImpossible) {
		t.Fatalf("malformed manifest: got %v, want ErrResumeImpossible", err)
	}
}

func TestCommitRejectsBadNames(t *testing.T) {
	s, err := Create(t.TempDir(), "fp", telemetry.New())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, name := range []string{"", "Round-1", "a/b", "a.b", "rø"} {
		if _, err := s.Commit(name, 0, nil); err == nil {
			t.Errorf("Commit(%q) succeeded, want error", name)
		}
	}
}

func TestGoldenManifestBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "0011223344556677", telemetry.New())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Commit("resolve", 0, []byte("hello")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	want := `{
  "version": 1,
  "fingerprint": "0011223344556677",
  "segments": [
    {
      "seq": 0,
      "name": "resolve",
      "file": "0000-resolve.seg",
      "size": 5,
      "checksum_fnv64a": "a430d84680aabd0b"
    }
  ]
}
`
	if string(got) != want {
		t.Errorf("manifest bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// TestReaderSnapshotIsolation drives a writer committing rounds while
// readers poll: every reader must see a prefix of the final segment list
// and be able to read every segment it sees, even as later commits land.
func TestReaderSnapshotIsolation(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	s, err := Create(dir, "fp", reg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	const rounds = 40
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			name := "round-" + string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
			payload := []byte(strings.Repeat("x", 100+i))
			if _, err := s.Commit(name, i, payload); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var last int
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("writer: %v", err)
			}
			r, err := OpenReader(dir, reg)
			if err != nil {
				t.Fatalf("final OpenReader: %v", err)
			}
			if got := r.Progress(); got.Segments != rounds || got.Rounds != rounds {
				t.Fatalf("final progress: %+v, want %d segments", got, rounds)
			}
			return
		default:
		}
		r, err := OpenReader(dir, reg)
		if err != nil {
			t.Fatalf("OpenReader: %v", err)
		}
		segs := r.Segments()
		if len(segs) < last {
			t.Fatalf("snapshot went backwards: %d then %d segments", last, len(segs))
		}
		last = len(segs)
		for _, meta := range segs {
			b, err := r.Read(meta)
			if err != nil {
				t.Fatalf("reader saw committed segment %s but cannot read it: %v", meta.Name, err)
			}
			if int64(len(b)) != meta.Size {
				t.Fatalf("segment %s: %d bytes, meta says %d", meta.Name, len(b), meta.Size)
			}
		}
	}
}

func TestReaderProgressAndCounter(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "fp", telemetry.New())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, c := range []struct {
		name   string
		probes int
	}{{"resolve", 0}, {"initial", 100}, {"round-000", 7}, {"round-001", 5}} {
		if _, err := s.Commit(c.name, c.probes, []byte(c.name)); err != nil {
			t.Fatalf("Commit %s: %v", c.name, err)
		}
	}
	reg := telemetry.New()
	r, err := OpenReader(dir, reg)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if got := r.Progress(); got.Segments != 4 || got.Rounds != 2 || got.Probes != 112 {
		t.Errorf("Progress = %+v, want {4 2 112}", got)
	}
	if got := reg.Counter("checkpoint.reader.opens").Value(); got != 1 {
		t.Errorf("checkpoint.reader.opens = %d, want 1", got)
	}
	if r.Fingerprint() != "fp" {
		t.Errorf("Fingerprint = %q", r.Fingerprint())
	}
}
