package spfail_test

import (
	"context"
	"fmt"
	"net/netip"
	"strings"

	"spfail"
	"spfail/internal/spf"
)

// exampleResolver is a minimal in-memory spfail.Resolver.
type exampleResolver struct{ txt map[string][]string }

func (r exampleResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := r.txt[strings.TrimSuffix(name, ".")]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (exampleResolver) LookupIP(context.Context, string, string) ([]netip.Addr, error) {
	return nil, spf.ErrNotFound
}

func (exampleResolver) LookupMX(context.Context, string) ([]spf.MX, error) {
	return nil, spf.ErrNotFound
}

func (exampleResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}

func ExampleParseRecord() {
	rec, err := spfail.ParseRecord("v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all")
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rec.Mechanisms), "mechanisms,", rec.LookupTerms(), "DNS terms")
	// Output: 4 mechanisms, 2 DNS terms
}

func ExampleCheckHost() {
	resolver := exampleResolver{txt: map[string][]string{
		"example.com": {"v=spf1 ip4:192.0.2.0/24 -all"},
	}}
	res := spfail.CheckHost(context.Background(), resolver,
		netip.MustParseAddr("192.0.2.7"), "example.com",
		"user@example.com", "mta.example.com")
	fmt.Println(res.Result, "via", res.Mechanism)
	// Output: pass via ip4:192.0.2.0/24
}

func ExampleExpandMacros() {
	env := &spfail.MacroEnv{Sender: "user@example.com", Domain: "example.com"}
	out, _ := spfail.ExpandMacros(context.Background(), "%{d1r}.foo.com", env)
	fmt.Println(out)
	// Output: example.foo.com
}

func ExampleLibSPF2Expander() {
	// The vulnerable expansion that SPFail detects remotely: the
	// truncation prefix of the reversed domain is duplicated ahead of
	// the whole reversed value (compare ExampleExpandMacros).
	exp := &spfail.LibSPF2Expander{}
	env := &spfail.MacroEnv{Sender: "user@example.com", Domain: "example.com"}
	out, _ := exp.Expand(context.Background(), "%{d1r}.foo.com", env, false)
	fmt.Println(out)
	// Output: com.com.example.foo.com
}
