module spfail

go 1.22
