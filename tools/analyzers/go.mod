module spfail/tools/analyzers

go 1.22
