// Package telemetry seeds a metricnames violation: a registration whose
// literal does not follow the layer.subsystem.name convention.
package telemetry

// Registry mimics the real registry's registration surface.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name string) *int { return nil }

// Register mints a metric with a malformed name.
func Register(r *Registry) {
	r.Counter("BadName")
}
