// Package hot seeds hotpathalloc violations: a function marked
// //spfail:hotpath that converts bytes to string and calls fmt.
package hot

import "fmt"

// Bad allocates on the marked hot path.
//
//spfail:hotpath
func Bad(b []byte) string {
	return fmt.Sprintf("%q", string(b))
}
