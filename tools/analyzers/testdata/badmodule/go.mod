module badmodule

go 1.22
