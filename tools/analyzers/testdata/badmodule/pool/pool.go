// Package pool seeds a poolhygiene violation: a pointer-bearing pooled
// type with no scrub method and a Put that recycles it dirty.
package pool

import "sync"

type buf struct {
	data []byte
	next *buf
}

var p = sync.Pool{New: func() any { return new(buf) }}

// Get checks a buffer out of the pool.
func Get() *buf { return p.Get().(*buf) }

// Put recycles b without clearing data or next.
func Put(b *buf) { p.Put(b) }
