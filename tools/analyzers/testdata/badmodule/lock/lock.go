// Package lock seeds a lockguard violation: a guarded field read without
// holding its annotated mutex.
package lock

import "sync"

// S pairs a mutex with the field it protects.
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Bad reads s.n lock-free.
func (s *S) Bad() int { return s.n }

// Good is the control: same access, correctly locked.
func (s *S) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
