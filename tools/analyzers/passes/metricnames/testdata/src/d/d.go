// Package telemetry exercises the metricnames pass. The fixture plays
// both roles: it defines the Registry shape the pass keys on and makes
// the registration calls under test. The reconciled inventory lives in
// docs/telemetry.md next to this file.
package telemetry

// Registry mimics the real telemetry registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name string) *int   { return nil }
func (r *Registry) Gauge(name string) *int     { return nil }
func (r *Registry) Histogram(name string) *int { return nil }

// other has the same method names but is not a Registry: ignored.
type other struct{}

func (o *other) Counter(name string) *int { return nil }

func dynName(s string) string { return "dyn." + s }

func register(r *Registry, o *other, status, dyn string) {
	r.Counter("probe.total")
	r.Counter("dns.client.queries")
	r.Counter("dns.client.queries") // same name, same kind: dedup is the registry's job
	r.Histogram("probe.latency_ms")
	o.Counter("whatever!") // not a Registry

	r.Gauge("dns.client.queries")      // want `metric "dns\.client\.queries" registered as Gauge here but as Counter elsewhere`
	r.Counter("dns.client_queries")    // want `metric names "dns\.client_queries" and "dns\.client\.queries" collide after prometheus mangling`
	r.Counter("BadName")               // want `metric name "BadName" does not match layer\.subsystem\.name`
	r.Counter("too.many.dots.in.here") // want `metric name "too\.many\.dots\.in\.here" does not match layer\.subsystem\.name`
	r.Counter("campaign.undocumented") // want `metric "campaign\.undocumented" has no row in docs/telemetry\.md`

	r.Counter("probe.outcome." + status) // wildcard row documents the family
	r.Counter("dyn." + dyn)              // want `no docs/telemetry\.md row documents the metric family "dyn\.\*"`
	r.Counter("probe" + status)          // want `dynamic metric name prefix "probe" must end in "\."`
	r.Counter(dyn)                       // want `metric name is not a string literal or literal-prefixed concatenation`

	//spfail:allow metricnames qtype helper mints names from a documented wildcard family
	r.Counter(dynName(dyn))
}
