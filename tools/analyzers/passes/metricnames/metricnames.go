// Package metricnames keeps the telemetry namespace coherent and the
// metric inventory in docs/telemetry.md honest. Metrics are registered
// ad hoc at call sites (`s.Metrics.Counter("dns.server.queries")`), so
// nothing structural stops two packages from claiming the same name for
// different kinds, a typo from minting `dns.clientqueries`, or a new
// counter from shipping without a docs row — the doc table silently rots
// (PR 6 added five pipeline metrics and documented none of them).
//
// For every Counter/Gauge/Histogram registration on a telemetry.Registry
// the pass checks:
//
//   - the name is a string literal, or a concatenation whose literal
//     prefix ends in "." (the `"probe.outcome." + status` dynamic-suffix
//     form); anything else defeats static checking and takes an allow;
//   - literal names match the layer.subsystem.name convention: two to
//     four lowercase dot-separated segments of [a-z0-9_];
//   - a name is registered with one kind only (a counter in one file and
//     a gauge in another is a bug, not a naming choice);
//   - distinct names must stay distinct after prometheus mangling
//     (dots -> underscores), since the /metrics exporter flattens them;
//   - every name (or dynamic prefix) has a row in docs/telemetry.md,
//     located by walking up from the source file. Wildcard rows like
//     `dns.server.qtype.<TYPE>` document whole families.
//
// Deleting a docs row for a live metric therefore fails the lint job —
// the doc-drift gate runs in CI, not in review.
package metricnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the metricnames pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc: "telemetry registration names must be literal, unique per kind, follow " +
		"layer.subsystem.name, and appear in docs/telemetry.md",
	Run: run,
}

// nameRE is the layer.subsystem.name convention: 2-4 lowercase segments.
var nameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+){1,3}$`)

// docFile is the metric inventory the pass reconciles against.
const docFile = "telemetry.md"

func run(p *analysis.Pass) error {
	kinds := map[string]regSite{}  // name -> first registration
	mangle := map[string]regSite{} // prometheus-mangled -> first registration
	docs := newDocIndex()

	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registration(p, call)
			if !ok {
				return true
			}
			name, prefix, lit := metricNameArg(p, call.Args[0])
			switch {
			case lit:
				checkLiteral(p, call.Pos(), name, kind, kinds, mangle, docs)
			case prefix != "":
				if !strings.HasSuffix(prefix, ".") {
					p.Reportf(call.Pos(), "dynamic metric name prefix %q must end in \".\" so the family is greppable", prefix)
					return true
				}
				if doc, ok := docs.lookup(p, call.Pos()); ok && !doc.hasPrefix(prefix) {
					p.Reportf(call.Pos(), "no %s row documents the metric family %q", doc.rel, prefix+"*")
				}
			default:
				p.Reportf(call.Pos(), "metric name is not a string literal or literal-prefixed concatenation; static checks cannot see it")
			}
			return true
		})
	}
	return nil
}

type regSite struct {
	name string
	kind string
	pos  token.Pos
}

func checkLiteral(p *analysis.Pass, pos token.Pos, name, kind string, kinds, mangle map[string]regSite, docs *docIndex) {
	if !nameRE.MatchString(name) {
		p.Reportf(pos, "metric name %q does not match layer.subsystem.name (2-4 lowercase dot-separated segments)", name)
		return
	}
	if prev, ok := kinds[name]; ok && prev.kind != kind {
		p.Reportf(pos, "metric %q registered as %s here but as %s elsewhere", name, kind, prev.kind)
	} else if !ok {
		kinds[name] = regSite{name: name, kind: kind, pos: pos}
	}
	m := strings.ReplaceAll(name, ".", "_")
	if prev, ok := mangle[m]; ok && prev.name != name {
		p.Reportf(pos, "metric names %q and %q collide after prometheus mangling (both export as %q)", name, prev.name, m)
	} else if !ok {
		mangle[m] = regSite{name: name, kind: kind, pos: pos}
	}
	if doc, ok := docs.lookup(p, pos); ok && !doc.hasName(name) {
		p.Reportf(pos, "metric %q has no row in %s", name, doc.rel)
	}
}

// registration classifies a call as a metric registration and returns its
// kind. It matches methods Counter/Gauge/Histogram whose receiver is the
// telemetry Registry type.
func registration(p *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	t := p.TypesInfo.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	path := named.Obj().Pkg().Path()
	return sel.Sel.Name, path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}

// metricNameArg evaluates the name argument: a full literal value, or the
// leading literal prefix of a "+" concatenation, or neither.
func metricNameArg(p *analysis.Pass, e ast.Expr) (name, prefix string, lit bool) {
	e = ast.Unparen(e)
	if v := litString(p, e); v != "" {
		return v, "", true
	}
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		// Leftmost operand of the concat chain.
		left := ast.Unparen(bin.X)
		for {
			b, ok := left.(*ast.BinaryExpr)
			if !ok || b.Op != token.ADD {
				break
			}
			left = ast.Unparen(b.X)
		}
		if v := litString(p, left); v != "" {
			return "", v, false
		}
	}
	return "", "", false
}

// litString returns the constant string value of e, or "".
func litString(p *analysis.Pass, e ast.Expr) string {
	if bl, ok := e.(*ast.BasicLit); ok && bl.Kind == token.STRING {
		if v, err := strconv.Unquote(bl.Value); err == nil {
			return v
		}
	}
	// Named string constants count as literals too.
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Value != nil {
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
			return s
		}
	}
	return ""
}

// docIndex lazily loads the nearest docs/telemetry.md for the package.
type docIndex struct {
	loaded bool
	doc    *docContent
}

type docContent struct {
	rel  string // how diagnostics refer to the file, e.g. docs/telemetry.md
	text string
}

func newDocIndex() *docIndex { return &docIndex{} }

// lookup finds docs/telemetry.md by walking up from the file containing
// pos. Missing doc file disables doc checks (the format and collision
// checks still run) — fixtures without an inventory stay usable.
func (d *docIndex) lookup(p *analysis.Pass, pos token.Pos) (*docContent, bool) {
	if d.loaded {
		return d.doc, d.doc != nil
	}
	d.loaded = true
	dir := filepath.Dir(p.Fset.Position(pos).Filename)
	for {
		cand := filepath.Join(dir, "docs", docFile)
		if b, err := os.ReadFile(cand); err == nil {
			d.doc = &docContent{rel: "docs/" + docFile, text: string(b)}
			return d.doc, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, false
		}
		dir = parent
	}
}

// hasName reports whether the doc documents the exact name, either as a
// backticked literal or via a wildcard row (`prefix.<VAR>`).
func (c *docContent) hasName(name string) bool {
	if strings.Contains(c.text, "`"+name+"`") {
		return true
	}
	// Wildcard rows: `dns.server.qtype.<TYPE>` covers dns.server.qtype.a.
	for _, row := range wildcardPrefixes(c.text) {
		if strings.HasPrefix(name, row) {
			return true
		}
	}
	return false
}

// hasPrefix reports whether the doc has any row for the dynamic family.
func (c *docContent) hasPrefix(prefix string) bool {
	return strings.Contains(c.text, "`"+prefix)
}

// wildcardPrefixes extracts the literal prefixes of backticked wildcard
// rows like `dns.server.qtype.<TYPE>`.
func wildcardPrefixes(text string) []string {
	var out []string
	for {
		i := strings.Index(text, "`")
		if i < 0 {
			return out
		}
		text = text[i+1:]
		j := strings.Index(text, "`")
		if j < 0 {
			return out
		}
		row := text[:j]
		text = text[j+1:]
		if k := strings.Index(row, "<"); k > 0 {
			out = append(out, row[:k])
		}
	}
}
