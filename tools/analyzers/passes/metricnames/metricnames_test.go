package metricnames_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/metricnames"
)

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, "testdata/src/d", "d/telemetry", metricnames.Analyzer)
}
