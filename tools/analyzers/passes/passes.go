// Package passes aggregates the spfail-vet analyzer suite.
package passes

import (
	"spfail/tools/analyzers/analysis"
	"spfail/tools/analyzers/passes/deadlinecheck"
	"spfail/tools/analyzers/passes/decodepanic"
	"spfail/tools/analyzers/passes/hotpathalloc"
	"spfail/tools/analyzers/passes/lockguard"
	"spfail/tools/analyzers/passes/metricnames"
	"spfail/tools/analyzers/passes/nilsafe"
	"spfail/tools/analyzers/passes/poolhygiene"
	"spfail/tools/analyzers/passes/seededrand"
	"spfail/tools/analyzers/passes/wallclock"
)

// All returns every pass in the suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		seededrand.Analyzer,
		nilsafe.Analyzer,
		decodepanic.Analyzer,
		deadlinecheck.Analyzer,
		poolhygiene.Analyzer,
		lockguard.Analyzer,
		hotpathalloc.Analyzer,
		metricnames.Analyzer,
	}
}
