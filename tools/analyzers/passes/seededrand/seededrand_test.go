package seededrand_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "a", seededrand.Analyzer)
}
