// Package seededrand forbids the global math/rand source in non-test code.
// Campaign replay requires every random decision (flaky sessions, bounce
// sampling, label allocation) to come from an explicitly seeded *rand.Rand;
// the global functions draw from a process-wide source whose state depends
// on everything else that ran. Constructors (rand.New, rand.NewSource,
// rand.NewZipf, ...) remain legal — they are how seeded generators are
// built at the wiring edge.
package seededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions (rand.Intn, rand.Float64, rand.Seed, ...); " +
		"thread a seeded *rand.Rand so campaigns replay",
	Run: run,
}

func randPackage(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(p *analysis.Pass) error {
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPackage(fn.Pkg().Path()) {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // *rand.Rand method: the injected generator
			}
			if strings.HasPrefix(fn.Name(), "New") {
				return true // seeded-source constructor
			}
			p.Reportf(sel.Pos(), "global math/rand source via rand.%s; use an injected, seeded *rand.Rand", fn.Name())
			return true
		})
	}
	return nil
}
