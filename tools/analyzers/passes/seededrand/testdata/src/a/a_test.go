package a

import "math/rand"

// Test files are exempt: unseeded randomness is fine in tests.
func helperForTests() {
	_ = rand.Intn(10)
	_ = rand.Float64()
}
